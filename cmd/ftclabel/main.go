// Command ftclabel turns the labeling scheme into a standalone tool: build a
// label database for a graph file, inspect it, and answer connectivity
// queries — the decoder side touches only the label database, never the
// graph, mirroring the scheme's information model.
//
//	ftclabel build  -graph g.txt -out labels.db [-f 3] [-scheme det|greedy|rand|agm] [-seed 1]
//	ftclabel stats  -labels labels.db
//	ftclabel query  -labels labels.db -s 0 -t 5 -faults 3,7,12
//
// Fault arguments are edge indices (the insertion order of the graph file's
// `e` lines).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graphio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		buildCmd(os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	case "query":
		queryCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ftclabel build|stats|query [flags]")
	os.Exit(2)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ftclabel: "+format+"\n", args...)
	os.Exit(1)
}

func buildCmd(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	graphPath := fs.String("graph", "", "input graph file (text format)")
	outPath := fs.String("out", "", "output label database")
	f := fs.Int("f", 2, "fault budget")
	scheme := fs.String("scheme", "det", "det|greedy|rand|agm")
	seed := fs.Int64("seed", 1, "seed for randomized schemes")
	if err := fs.Parse(args); err != nil {
		fatalf("%v", err)
	}
	if *graphPath == "" || *outPath == "" {
		fatalf("build requires -graph and -out")
	}
	in, err := os.Open(*graphPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer in.Close()
	g, err := graphio.ReadGraph(in)
	if err != nil {
		fatalf("%v", err)
	}
	params := core.Params{MaxFaults: *f, Seed: *seed}
	switch *scheme {
	case "det":
		params.Kind = core.KindDetNetFind
	case "greedy":
		params.Kind = core.KindDetGreedy
	case "rand":
		params.Kind = core.KindRandRS
	case "agm":
		params.Kind = core.KindAGM
	default:
		fatalf("unknown scheme %q", *scheme)
	}
	s, err := core.Build(g, params)
	if err != nil {
		fatalf("%v", err)
	}
	out, err := os.Create(*outPath)
	if err != nil {
		fatalf("%v", err)
	}
	if err := graphio.WriteLabels(out, s, g); err != nil {
		fatalf("writing labels: %v", err)
	}
	if err := out.Close(); err != nil {
		fatalf("closing output: %v", err)
	}
	fmt.Printf("labeled n=%d m=%d f=%d scheme=%s: max edge label %d bits\n",
		g.N(), g.M(), *f, *scheme, s.MaxEdgeLabelBits())
}

func loadDB(path string) *graphio.LabelDB {
	in, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer in.Close()
	db, err := graphio.ReadLabels(in)
	if err != nil {
		fatalf("%v", err)
	}
	return db
}

func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	labelPath := fs.String("labels", "", "label database")
	if err := fs.Parse(args); err != nil {
		fatalf("%v", err)
	}
	if *labelPath == "" {
		fatalf("stats requires -labels")
	}
	db := loadDB(*labelPath)
	maxBits, totalBits := 0, 0
	for i := range db.Edges {
		b := core.EdgeLabelBits(db.Edges[i])
		totalBits += b
		if b > maxBits {
			maxBits = b
		}
	}
	fmt.Printf("vertices: %d (label %d bits each)\n", len(db.Vertices), vertexBits(db))
	fmt.Printf("edges:    %d (max label %d bits, total %d bits)\n", len(db.Edges), maxBits, totalBits)
	if len(db.Edges) > 0 {
		spec := db.Edges[0].Spec
		fmt.Printf("scheme:   %s f=%d k=%d levels=%d\n",
			spec.Kind, db.Edges[0].MaxFaults, spec.K, spec.Levels)
	}
}

func vertexBits(db *graphio.LabelDB) int {
	if len(db.Vertices) == 0 {
		return 0
	}
	return core.VertexLabelBits(db.Vertices[0])
}

func queryCmd(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	labelPath := fs.String("labels", "", "label database")
	s := fs.Int("s", -1, "source vertex")
	t := fs.Int("t", -1, "target vertex")
	faultsArg := fs.String("faults", "", "comma-separated faulty edge indices")
	if err := fs.Parse(args); err != nil {
		fatalf("%v", err)
	}
	if *labelPath == "" || *s < 0 || *t < 0 {
		fatalf("query requires -labels, -s, -t")
	}
	db := loadDB(*labelPath)
	if *s >= len(db.Vertices) || *t >= len(db.Vertices) {
		fatalf("vertex out of range (n=%d)", len(db.Vertices))
	}
	var faults []core.EdgeLabel
	if *faultsArg != "" {
		for _, part := range strings.Split(*faultsArg, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || idx < 0 || idx >= len(db.Edges) {
				fatalf("bad fault index %q", part)
			}
			faults = append(faults, db.Edges[idx])
		}
	}
	ok, err := core.Connected(db.Vertices[*s], db.Vertices[*t], faults)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("connected(%d, %d | %d faults) = %v\n", *s, *t, len(faults), ok)
}
