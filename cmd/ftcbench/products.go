package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	ftc "repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// productMode selects one query product for `ftcbench query -product ...`:
// route, vertex, or edge. Empty runs the classic query section.
var productMode string

// productRecord is one row of the per-product serving-cost table (E21):
// steady-state (cache-hit) and first-event (cache-miss) request latency
// through the HTTP handler, plus server-side allocations on the warm path.
type productRecord struct {
	Product    string  `json:"product"`
	Endpoint   string  `json:"endpoint"`
	N          int     `json:"n"`
	M          int     `json:"m"`
	F          int     `json:"f"`
	Batch      int     `json:"batch"`
	WarmNs     int64   `json:"warm_ns_per_op"`
	ColdNs     int64   `json:"cold_ns_per_op"`
	WarmAllocs float64 `json:"warm_allocs_per_op"`
}

// codeRW is discardRW plus the status code, so a product bench cannot
// silently time a stream of 4xx rejections.
type codeRW struct {
	discardRW
	code int
}

func (w *codeRW) WriteHeader(c int) { w.code = c }

// productBench measures one query product end to end through the JSON
// handler: warm ops replay a single compiled fault set (the "one failure
// event, many probes" steady state), cold ops present a fresh fault set per
// request (compile + insert on every call). With -json the row merges into
// BENCH_query.json under "products", keyed by product, without disturbing
// the probe-grid results.
func productBench(product string) {
	endpoints := map[string]string{
		"edge":   "/connected",
		"route":  "/route",
		"vertex": "/vconnected",
	}
	endpoint, ok := endpoints[product]
	if !ok {
		fmt.Fprintf(os.Stderr, "ftcbench: -product must be route, vertex, or edge (got %q)\n", product)
		os.Exit(2)
	}

	n, warmOps, coldOps := 512, 4000, 256
	if smokeMode {
		n, warmOps, coldOps = 128, 400, 64
	}
	const batch = 16
	rng := rand.New(rand.NewSource(int64(n) + 3))
	g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	// The vertex product needs edge headroom for a failed hub; the edge and
	// route products only need the paper-scale budget.
	budget := 8
	if product == "vertex" {
		budget = 2 * maxDeg
	}
	sch, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(budget))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: product build: %v\n", err)
		os.Exit(1)
	}
	srv := serve.New(sch, 2*coldOps)
	h := srv.Handler()
	fmt.Printf("E21 — query product %q via %s (det-netfind n=%d m=%d f=%d, batch %d)\n",
		product, endpoint, n, g.M(), budget, batch)

	prng := rand.New(rand.NewSource(int64(n) + 4))
	pairs := make([][2]int, batch)
	for i := range pairs {
		pairs[i] = [2]int{prng.Intn(n), prng.Intn(n)}
	}
	makeBody := func(faults []int) []byte {
		var req any
		switch product {
		case "edge":
			req = serve.ConnectedRequest{FaultEdges: faults, Pairs: pairs}
		case "route":
			req = serve.RouteRequest{FaultEdges: faults, Pairs: pairs}
		case "vertex":
			req = serve.VConnectedRequest{FaultVertices: faults, Pairs: pairs}
		}
		body, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: product request: %v\n", err)
			os.Exit(1)
		}
		return body
	}
	freshFaults := func() []int {
		size := 1 + prng.Intn(3)
		faults := make([]int, size)
		for i := range faults {
			if product == "vertex" {
				faults[i] = prng.Intn(n)
			} else {
				faults[i] = prng.Intn(g.M())
			}
		}
		return faults
	}

	proto := httptest.NewRequest(http.MethodPost, endpoint, http.NoBody)
	post := func(body []byte) {
		var w codeRW
		r := proto.Clone(proto.Context())
		r.Body = io.NopCloser(bytes.NewReader(body))
		h.ServeHTTP(&w, r)
		if w.code != 0 && w.code != http.StatusOK {
			fmt.Fprintf(os.Stderr, "ftcbench: %s answered %d\n", endpoint, w.code)
			os.Exit(1)
		}
	}

	// Warm: one fault set, compiled once before the clock starts.
	warmBody := makeBody(freshFaults())
	post(warmBody)
	t0 := time.Now()
	for i := 0; i < warmOps; i++ {
		post(warmBody)
	}
	warm := time.Since(t0) / time.Duration(warmOps)
	warmAllocs := testing.AllocsPerRun(200, func() { post(warmBody) })

	// Cold: a fresh fault set every request — compile-and-insert per op.
	coldBodies := make([][]byte, coldOps)
	for i := range coldBodies {
		coldBodies[i] = makeBody(freshFaults())
	}
	t1 := time.Now()
	for _, body := range coldBodies {
		post(body)
	}
	cold := time.Since(t1) / time.Duration(coldOps)

	rec := productRecord{
		Product: product, Endpoint: endpoint,
		N: n, M: g.M(), F: budget, Batch: batch,
		WarmNs: warm.Nanoseconds(), ColdNs: cold.Nanoseconds(), WarmAllocs: warmAllocs,
	}
	fmt.Printf("   %-8s %12s %12s %14.0f\n", "product", "warm", "cold", warmAllocs)
	fmt.Printf("   %-8s %12s %12s %14s\n", product, round(warm), round(cold), "allocs/op ↑")
	if !jsonOut {
		return
	}
	mergeBenchJSON("BENCH_query.json", func(doc map[string]json.RawMessage) {
		products := map[string]productRecord{}
		if raw, ok := doc["products"]; ok {
			if err := json.Unmarshal(raw, &products); err != nil {
				products = map[string]productRecord{}
			}
		}
		products[product] = rec
		raw, err := json.Marshal(products)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: marshal products: %v\n", err)
			os.Exit(1)
		}
		doc["products"] = raw
	})
}

// mergeBenchJSON read-modify-writes path as a generic JSON object, so
// sections that own different top-level keys never clobber each other.
func mergeBenchJSON(path string, update func(doc map[string]json.RawMessage)) {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: %s exists but is not a JSON object (%v); rewriting\n", path, err)
			doc = map[string]json.RawMessage{}
		}
	}
	update(doc)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: marshal %s: %v\n", path, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("   wrote %s\n", path)
}
