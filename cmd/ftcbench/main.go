// Command ftcbench regenerates every table and figure of the paper's
// evaluation as measurements (see DESIGN.md §4 for the experiment index):
//
//	ftcbench table1     — E1: the scheme-comparison table (label size,
//	                      query time, correctness regime, construction time)
//	ftcbench labelsize  — E4: label-size scaling vs n and vs f
//	ftcbench query      — E5: query time vs |F| (fast vs basic, adaptive)
//	                      + E15: the probe-path grid (per-call vs FaultSet)
//	ftcbench construct  — E6: construction time vs m and f
//	ftcbench support    — E7: full-query-support stress (error counts)
//	ftcbench distance   — E8: Corollary 1 bounds quality and stretch
//	ftcbench routing    — E9: Corollary 2 delivery, stretch, table sizes
//	ftcbench congest    — E10: Theorem 3 round counts vs √m·D + f²
//	ftcbench hierarchy  — E11/E12: ε-net and hierarchy quality
//	ftcbench build      — E14: construction hot-path grid (kind × n × f)
//	ftcbench serve      — E16: HTTP serving path (snapshot load + ftcserve
//	                      handler + fault-set LRU, cold vs warm)
//	ftcbench update     — E17: dynamic network updates (incremental commit
//	                      vs full rebuild, plus the /update HTTP path)
//	ftcbench load       — E18: closed-loop serving load (concurrent-client
//	                      probe QPS and latency, single-lock vs sharded
//	                      cache; v2-eager vs v3-lazy snapshot load)
//	                      + E19: the protocol grid (JSON HTTP vs the binary
//	                      frame protocol, pipelined, at 1/4/16 clients, with
//	                      allocs/op and a mutex-wait contention proxy)
//	ftcbench replicate  — E20: the replicated tier (generation-log shipping
//	                      to tailing replicas, kill/restart catch-up from
//	                      the log alone, hedged-front p99 vs a straggler)
//	ftcbench chaos      — E22: deterministic fault injection over the full
//	                      tier (conn resets, snapshot failures, a replica
//	                      kill/restart) with every answer verified against
//	                      a per-generation oracle; -seed=N picks the
//	                      schedule, -smoke shrinks it for CI
//	ftcbench binsmoke   — CI gate: drive a live ftcserve's binary listener
//	                      (FTCSERVE_HTTP / FTCSERVE_BIN env) with pipelined
//	                      probes and verify the /metrics counters moved
//	ftcbench frontsmoke — CI gate: fan hedged probes across a live replica
//	                      fleet (FTC_FRONT_REPLICAS env, comma-separated bin
//	                      addresses) and cross-check answers against the
//	                      primary's JSON surface (FTCSERVE_HTTP)
//	ftcbench all        — everything above
//
// The -json flag makes the build section additionally write BENCH_build.json
// (one record per grid cell, plus the recorded pre-overhaul baselines), the
// query section write BENCH_query.json (the probe-path grid), the serve
// section write BENCH_serve.json, and the load section write
// BENCH_load.json: the machine-readable perf trajectories tracked PR over
// PR. -smoke shrinks the load grid so CI can run it in seconds.
//
// All randomness is seeded; output is deterministic modulo wall-clock
// timings.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	ftc "repro"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/distlabel"
	"repro/internal/epsnet"
	"repro/internal/euler"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/ptsketch"
	"repro/internal/routing"
	"repro/internal/serve"
	"repro/internal/serve/front"
	"repro/internal/serve/genlog"
	"repro/internal/serve/wire"
	"repro/internal/serve/wireclient"
	"repro/internal/workload"
)

func main() {
	which := "all"
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		arg := args[i]
		if arg == "-json" || arg == "--json" {
			jsonOut = true
			continue
		}
		if arg == "-smoke" || arg == "--smoke" {
			smokeMode = true
			continue
		}
		if v, ok := strings.CutPrefix(arg, "-proto="); ok {
			protoMode = v
			continue
		}
		if v, ok := strings.CutPrefix(arg, "--proto="); ok {
			protoMode = v
			continue
		}
		if (arg == "-proto" || arg == "--proto") && i+1 < len(args) {
			i++
			protoMode = args[i]
			continue
		}
		if v, ok := strings.CutPrefix(arg, "-product="); ok {
			productMode = v
			continue
		}
		if v, ok := strings.CutPrefix(arg, "--product="); ok {
			productMode = v
			continue
		}
		if (arg == "-product" || arg == "--product") && i+1 < len(args) {
			i++
			productMode = args[i]
			continue
		}
		if v, ok := strings.CutPrefix(arg, "-seed="); ok {
			fmt.Sscanf(v, "%d", &chaosSeed)
			continue
		}
		if v, ok := strings.CutPrefix(arg, "--seed="); ok {
			fmt.Sscanf(v, "%d", &chaosSeed)
			continue
		}
		which = arg
	}
	if protoMode != "json" && protoMode != "bin" && protoMode != "both" {
		fmt.Fprintf(os.Stderr, "ftcbench: -proto must be json, bin, or both (got %q)\n", protoMode)
		os.Exit(2)
	}
	if productMode != "" && productMode != "route" && productMode != "vertex" && productMode != "edge" {
		fmt.Fprintf(os.Stderr, "ftcbench: -product must be route, vertex, or edge (got %q)\n", productMode)
		os.Exit(2)
	}
	sections := map[string]func(){
		"table1":     table1,
		"labelsize":  labelSize,
		"query":      queryTime,
		"construct":  constructTime,
		"support":    support,
		"distance":   distance,
		"routing":    routingBench,
		"congest":    congestBench,
		"hierarchy":  hierarchyBench,
		"ablation":   ablation,
		"build":      buildGrid,
		"serve":      serveBench,
		"update":     updateBench,
		"load":       loadBench,
		"binsmoke":   binSmoke,
		"frontsmoke": frontSmoke,
		"replicate":  replicateBench,
		"chaos":      chaosBench,
	}
	if which == "all" {
		for _, name := range []string{"table1", "labelsize", "query", "construct", "support", "distance", "routing", "congest", "hierarchy", "ablation", "build", "serve", "update", "load"} {
			sections[name]()
			fmt.Println()
		}
		return
	}
	fn, ok := sections[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "usage: ftcbench [-json] [-smoke] [-seed=N] [-proto json|bin|both] [table1|labelsize|query|construct|support|distance|routing|congest|hierarchy|build|serve|update|load|binsmoke|frontsmoke|replicate|chaos|all]\n")
		os.Exit(2)
	}
	fn()
}

// jsonOut makes the build section write BENCH_build.json.
var jsonOut bool

// smokeMode shrinks the load section's grid so CI can run it in seconds.
var smokeMode bool

// protoMode restricts the load section's protocol grid: json, bin, or both.
var protoMode = "both"

// ---------------------------------------------------------------- table1

// table1 reproduces Table 1: one measured row per scheme on a common
// workload. Paper columns: label size, query time, Det./Rand., correctness,
// construction.
func table1() {
	const (
		n    = 300
		p    = 0.06
		f    = 3
		seed = 42
	)
	rng := rand.New(rand.NewSource(seed))
	g := workload.ErdosRenyi(n, p, true, rng)
	forest := graph.SpanningForest(g)
	fmt.Printf("E1 / Table 1 — scheme comparison (ER n=%d m=%d, f=%d, 2000 queries)\n", n, g.M(), f)
	fmt.Printf("%-22s %12s %12s %10s %12s %12s %8s\n",
		"scheme", "edge-bits", "vert-bits", "build", "query", "basic-query", "errors")

	type queryCase struct {
		s, t   int
		faults []int
	}
	cases := make([]queryCase, 0, 2000)
	qrng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		var faults []int
		if i%2 == 0 {
			faults = workload.TreeEdgeFaults(g, forest, 1+qrng.Intn(f), qrng)
		} else {
			faults = workload.RandomFaults(g, 1+qrng.Intn(f), qrng)
		}
		cases = append(cases, queryCase{s: qrng.Intn(n), t: qrng.Intn(n), faults: faults})
	}

	runCore := func(name string, params core.Params) {
		t0 := time.Now()
		s, err := core.Build(g, params)
		if err != nil {
			fmt.Printf("%-22s build error: %v\n", name, err)
			return
		}
		build := time.Since(t0)
		var wrong, failed int
		t1 := time.Now()
		for _, c := range cases {
			fl := make([]core.EdgeLabel, len(c.faults))
			for i, e := range c.faults {
				fl[i] = s.EdgeLabel(e)
			}
			got, err := core.Connected(s.VertexLabel(c.s), s.VertexLabel(c.t), fl)
			if err != nil {
				failed++
				continue
			}
			if got != graph.ConnectedUnder(g, workload.FaultSet(c.faults), c.s, c.t) {
				wrong++
			}
		}
		fast := time.Since(t1) / time.Duration(len(cases))
		t2 := time.Now()
		for _, c := range cases[:400] {
			fl := make([]core.EdgeLabel, len(c.faults))
			for i, e := range c.faults {
				fl[i] = s.EdgeLabel(e)
			}
			_, _ = core.ConnectedBasic(s.VertexLabel(c.s), s.VertexLabel(c.t), fl)
		}
		basic := time.Since(t2) / 400
		fmt.Printf("%-22s %12d %12d %10s %12s %12s %4d/%d\n",
			name, s.MaxEdgeLabelBits(), core.VertexLabelBits(s.VertexLabel(0)),
			round(build), round(fast), round(basic), wrong+failed, len(cases))
	}

	runPT := func(name string, params ptsketch.Params) {
		t0 := time.Now()
		s, err := ptsketch.Build(g, params)
		if err != nil {
			fmt.Printf("%-22s build error: %v\n", name, err)
			return
		}
		build := time.Since(t0)
		var wrong, failed int
		t1 := time.Now()
		for _, c := range cases {
			fl := make([]ptsketch.EdgeLabel, len(c.faults))
			for i, e := range c.faults {
				fl[i] = s.EdgeLabel(e)
			}
			got, err := ptsketch.Connected(s.VertexLabel(c.s), s.VertexLabel(c.t), fl)
			if err != nil {
				failed++
				continue
			}
			if got != graph.ConnectedUnder(g, workload.FaultSet(c.faults), c.s, c.t) {
				wrong++
			}
		}
		dur := time.Since(t1) / time.Duration(len(cases))
		fmt.Printf("%-22s %12d %12d %10s %12s %12s %4d/%d\n",
			name, s.LabelBits(), 96, round(build), round(dur), "-", wrong+failed, len(cases))
	}

	runPT("DP21-1 (whp)", ptsketch.Params{MaxFaults: f, Seed: 1})
	runPT("DP21-1 (full)", ptsketch.Params{MaxFaults: f, Seed: 1, Full: true})
	runCore("DP21-2 agm (whp)", core.Params{MaxFaults: f, Kind: core.KindAGM, Seed: 2})
	runCore("DP21-2 agm (full)", core.Params{MaxFaults: f, Kind: core.KindAGM, Seed: 2, AGMReps: 4 * f * 9})
	runCore("ours rand-rs", core.Params{MaxFaults: f, Kind: core.KindRandRS, Seed: 3})
	runCore("ours det-netfind", core.Params{MaxFaults: f, Kind: core.KindDetNetFind})
	fmt.Println("\n(det rows are deterministic/full support by construction; error column counts")
	fmt.Println(" wrong answers + decode failures over the 2000 queries — expected 0 except AGM-whp)")
}

// ------------------------------------------------------------- labelsize

func labelSize() {
	fmt.Println("E4 / Theorems 1-2 — label size scaling")
	fmt.Printf("%-28s %8s %8s %14s %14s %10s\n", "graph", "f", "k", "edge-bits", "vert-bits", "levels")
	show := func(tag string, g *graph.Graph, f int, kind core.Kind) {
		s, err := core.Build(g, core.Params{MaxFaults: f, Kind: kind, Seed: 9})
		if err != nil {
			fmt.Printf("%-28s error: %v\n", tag, err)
			return
		}
		fmt.Printf("%-28s %8d %8d %14d %14d %10d\n",
			tag, f, s.Spec().K, s.MaxEdgeLabelBits(),
			core.VertexLabelBits(s.VertexLabel(0)), s.Spec().Levels)
	}
	fmt.Println(" deterministic scheme, n sweep (f=2, ER p=8/n):")
	for _, n := range []int{64, 128, 256, 512, 1024} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
		show(fmt.Sprintf("  er n=%d m=%d", n, g.M()), g, 2, core.KindDetNetFind)
	}
	fmt.Println(" deterministic scheme, f sweep (n=256):")
	rng := rand.New(rand.NewSource(77))
	g := workload.ErdosRenyi(256, 0.05, true, rng)
	for _, f := range []int{1, 2, 3, 4, 6, 8} {
		show(fmt.Sprintf("  er n=256 f=%d", f), g, f, core.KindDetNetFind)
	}
	fmt.Println(" randomized scheme (smaller k = O(f log n)), f sweep (n=256):")
	for _, f := range []int{1, 2, 4, 8} {
		show(fmt.Sprintf("  er n=256 f=%d", f), g, f, core.KindRandRS)
	}
}

// ------------------------------------------------------------- queryTime

func queryTime() {
	if productMode != "" {
		productBench(productMode)
		return
	}
	fmt.Println("E5 / Theorem 1 + E13 / Appendix B — query time vs |F|")
	const n, f = 400, 8
	rng := rand.New(rand.NewSource(11))
	g := workload.ErdosRenyi(n, 0.04, true, rng)
	forest := graph.SpanningForest(g)
	for _, kindRow := range []struct {
		name string
		kind core.Kind
	}{
		{"det-netfind", core.KindDetNetFind},
		{"rand-rs", core.KindRandRS},
	} {
		s, err := core.Build(g, core.Params{MaxFaults: f, Kind: kindRow.kind, Seed: 5})
		if err != nil {
			fmt.Printf("  %s: %v\n", kindRow.name, err)
			continue
		}
		fmt.Printf(" %s (k=%d):\n", kindRow.name, s.Spec().K)
		fmt.Printf("   %4s %14s %14s\n", "|F|", "fast-query", "basic-query")
		for _, fs := range []int{1, 2, 4, 8} {
			var cases [][]int
			for i := 0; i < 60; i++ {
				cases = append(cases, workload.TreeEdgeFaults(g, forest, fs, rng))
			}
			measure := func(fn func(a, b core.VertexLabel, fl []core.EdgeLabel) (bool, error)) time.Duration {
				t0 := time.Now()
				count := 0
				for _, faults := range cases {
					fl := make([]core.EdgeLabel, len(faults))
					for i, e := range faults {
						fl[i] = s.EdgeLabel(e)
					}
					for q := 0; q < 5; q++ {
						sv, tv := rng.Intn(n), rng.Intn(n)
						if _, err := fn(s.VertexLabel(sv), s.VertexLabel(tv), fl); err != nil {
							panic(err)
						}
						count++
					}
				}
				return time.Since(t0) / time.Duration(count)
			}
			fast := measure(core.Connected)
			basic := measure(core.ConnectedBasic)
			fmt.Printf("   %4d %14s %14s\n", fs, round(fast), round(basic))
		}
	}
	fmt.Println(" (adaptive prefix decoding: per-query cost grows with |F|, not with the f=8 budget)")
	fmt.Println()
	probeGrid()
}

// queryRecord is one cell of the probe-path grid (E15). per_call_ns_per_op
// is the historical serving cost (every probe re-validates, re-deduplicates,
// and re-compiles the fault slice — the only decoder path before the
// FaultSet redesign); probe_ns_per_op is the steady-state cost against the
// FaultSet compiled once.
type queryRecord struct {
	Scheme    string  `json:"scheme"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	F         int     `json:"f"`
	PerCallNs int64   `json:"per_call_ns_per_op"`
	ProbeNs   int64   `json:"probe_ns_per_op"`
	CompileNs int64   `json:"compile_ns"`
	Speedup   float64 `json:"amortized_speedup"`
}

// probeGrid measures the probe path across the scheme × n × f grid (E15)
// and, with -json, writes BENCH_query.json for PR-over-PR tracking.
func probeGrid() {
	fmt.Println("E15 — probe path: per-call decode vs compiled FaultSet (seeded graphs p=8/n)")
	fmt.Printf("   %-12s %6s %6s %3s %12s %12s %12s %10s\n",
		"scheme", "n", "m", "f", "per-call", "probe", "compile", "speedup")
	kinds := []struct {
		name   string
		params func(f int) core.Params
	}{
		{"det-netfind", func(f int) core.Params {
			return core.Params{MaxFaults: f, Kind: core.KindDetNetFind}
		}},
		{"rand-rs", func(f int) core.Params {
			return core.Params{MaxFaults: f, Kind: core.KindRandRS, Seed: 17}
		}},
		{"agm-full", func(f int) core.Params {
			return core.Params{MaxFaults: f, Kind: core.KindAGM, Seed: 17, AGMReps: 4 * f * 8}
		}},
	}
	var records []queryRecord
	for _, kr := range kinds {
		for _, n := range []int{256, 1024, 4096} {
			rng := rand.New(rand.NewSource(int64(n)))
			g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
			for _, f := range []int{2, 3, 4} {
				s, err := core.Build(g, kr.params(f))
				if err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: build %s n=%d f=%d: %v\n", kr.name, n, f, err)
					os.Exit(1)
				}
				faults := workload.TreeEdgeFaults(g, s.Forest, f, rng)
				fl := make([]core.EdgeLabel, len(faults))
				for i, e := range faults {
					fl[i] = s.EdgeLabel(e)
				}
				const perCallOps = 2000
				t0 := time.Now()
				for i := 0; i < perCallOps; i++ {
					if _, err := core.Connected(s.VertexLabel(i%n), s.VertexLabel((i*7)%n), fl); err != nil {
						fmt.Fprintf(os.Stderr, "ftcbench: per-call probe: %v\n", err)
						os.Exit(1)
					}
				}
				perCall := time.Since(t0) / perCallOps
				t1 := time.Now()
				fs, err := core.CompileFaults(fl)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: CompileFaults: %v\n", err)
					os.Exit(1)
				}
				if _, err := fs.Connected(s.VertexLabel(0), s.VertexLabel(1)); err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: closure: %v\n", err)
					os.Exit(1)
				}
				compile := time.Since(t1)
				const probeOps = 2_000_000
				t2 := time.Now()
				for i := 0; i < probeOps; i++ {
					if _, err := fs.Connected(s.VertexLabel(i%n), s.VertexLabel((i*7)%n)); err != nil {
						fmt.Fprintf(os.Stderr, "ftcbench: probe: %v\n", err)
						os.Exit(1)
					}
				}
				probe := time.Since(t2) / probeOps
				rec := queryRecord{
					Scheme:    kr.name,
					N:         n,
					M:         g.M(),
					F:         f,
					PerCallNs: perCall.Nanoseconds(),
					ProbeNs:   probe.Nanoseconds(),
					CompileNs: compile.Nanoseconds(),
					Speedup:   float64(perCall.Nanoseconds()) / float64(probe.Nanoseconds()),
				}
				records = append(records, rec)
				fmt.Printf("   %-12s %6d %6d %3d %12s %12s %12s %9.0fx\n",
					rec.Scheme, rec.N, rec.M, rec.F, round(perCall), round(probe), round(compile), rec.Speedup)
			}
		}
	}
	fmt.Println("   (per-call re-compiles the fault slice every probe; probe is the steady state")
	fmt.Println("    against a FaultSet compiled once — the \"one failure event, many probes\" pattern)")
	if !jsonOut {
		return
	}
	doc := struct {
		Benchmark string        `json:"benchmark"`
		Note      string        `json:"note"`
		Results   []queryRecord `json:"results"`
	}{
		Benchmark: "FaultSet.Connected",
		Note: "per_call_ns_per_op is the pre-redesign serving cost (core.Connected compiles a " +
			"throwaway fault set on every probe); probe_ns_per_op is the amortized steady state " +
			"against a FaultSet compiled once (compile_ns, including the first-probe closure). " +
			"Regenerated by `ftcbench query -json`. Wall times on shared hardware are noisy — " +
			"compare like-for-like runs.",
		Results: records,
	}
	// Merge rather than overwrite: `ftcbench query -product ...` owns the
	// sibling "products" key in the same file.
	mergeBenchJSON("BENCH_query.json", func(out map[string]json.RawMessage) {
		raw, err := json.Marshal(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: marshal BENCH_query.json: %v\n", err)
			os.Exit(1)
		}
		var top map[string]json.RawMessage
		_ = json.Unmarshal(raw, &top)
		for k, v := range top {
			out[k] = v
		}
	})
}

// ----------------------------------------------------------- constructTime

func constructTime() {
	fmt.Println("E6 / Theorem 1 — construction time scaling (det-netfind)")
	fmt.Printf("   %8s %8s %4s %12s\n", "n", "m", "f", "build")
	for _, n := range []int{128, 256, 512, 1024} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
		t0 := time.Now()
		if _, err := core.Build(g, core.Params{MaxFaults: 2}); err != nil {
			fmt.Printf("   n=%d: %v\n", n, err)
			continue
		}
		fmt.Printf("   %8d %8d %4d %12s\n", n, g.M(), 2, round(time.Since(t0)))
	}
	rng := rand.New(rand.NewSource(123))
	g := workload.ErdosRenyi(256, 0.06, true, rng)
	for _, f := range []int{1, 2, 4, 8} {
		t0 := time.Now()
		if _, err := core.Build(g, core.Params{MaxFaults: f}); err != nil {
			fmt.Printf("   f=%d: %v\n", f, err)
			continue
		}
		fmt.Printf("   %8d %8d %4d %12s\n", 256, g.M(), f, round(time.Since(t0)))
	}
}

// ---------------------------------------------------------------- support

func support() {
	fmt.Println("E7 — full query support stress (deterministic scheme, ground-truth check)")
	rng := rand.New(rand.NewSource(13))
	totalQueries, errors := 0, 0
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(120)
		g := workload.ErdosRenyi(n, 0.05+rng.Float64()*0.1, true, rng)
		f := 1 + rng.Intn(5)
		s, err := core.Build(g, core.Params{MaxFaults: f})
		if err != nil {
			fmt.Printf("   build error: %v\n", err)
			return
		}
		forest := s.Forest
		for q := 0; q < 200; q++ {
			var faults []int
			switch q % 3 {
			case 0:
				faults = workload.TreeEdgeFaults(g, forest, rng.Intn(f+1), rng)
			case 1:
				faults = workload.RandomFaults(g, rng.Intn(f+1), rng)
			default:
				faults = workload.VertexCutFaults(g, f, rng)
			}
			sv, tv := rng.Intn(n), rng.Intn(n)
			fl := make([]core.EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = s.EdgeLabel(e)
			}
			got, err := core.Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
			totalQueries++
			if err != nil || got != graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv) {
				errors++
			}
		}
	}
	fmt.Printf("   %d randomized trials × 200 queries: %d/%d incorrect\n", 20, errors, totalQueries)
}

// --------------------------------------------------------------- distance

func distance() {
	fmt.Println("E8 / Corollary 1 — fault-tolerant approximate distance labeling")
	rng := rand.New(rand.NewSource(17))
	g := workload.ErdosRenyi(120, 0.08, true, rng)
	workload.AssignRandomWeights(g, 200, rng)
	const f, kappa = 2, 2
	t0 := time.Now()
	s, err := distlabel.Build(g, distlabel.Params{MaxFaults: f, Kappa: kappa})
	if err != nil {
		fmt.Printf("   build: %v\n", err)
		return
	}
	vb, eb := s.LabelBits()
	fmt.Printf("   n=%d m=%d f=%d κ=%d: %d scales, build %s, vertex label %d bits, max edge label %d bits\n",
		g.N(), g.M(), f, kappa, s.Scales(), round(time.Since(t0)), vb, eb)
	var ratios []float64
	var bottleneckOK, boundsOK, total int
	for q := 0; q < 400; q++ {
		faults := workload.RandomFaults(g, rng.Intn(f+1), rng)
		set := workload.FaultSet(faults)
		sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
		if sv == tv {
			continue
		}
		fl := make([]distlabel.EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = s.EdgeLabel(e)
		}
		res, err := distlabel.Query(s.VertexLabel(sv), s.VertexLabel(tv), fl, g.N(), kappa)
		if err != nil {
			fmt.Printf("   query error: %v\n", err)
			return
		}
		if !res.Connected {
			continue
		}
		total++
		bottleneck := graph.BottleneckDistanceUnder(g, set, sv, tv)
		dist := graph.WeightedDistancesUnder(g, set, sv)[tv]
		if res.BottleneckLower <= bottleneck && bottleneck <= res.BottleneckUpper {
			bottleneckOK++
		}
		if res.DistanceLower <= dist && dist <= res.DistanceUpper {
			boundsOK++
		}
		ratios = append(ratios, float64(res.Scale)/float64(bottleneck))
	}
	fmt.Printf("   bottleneck bracket held %d/%d; distance bracket held %d/%d\n",
		bottleneckOK, total, boundsOK, total)
	fmt.Printf("   scale/bottleneck ratio: median %.2f, p95 %.2f (guarantee ≤ %d)\n",
		percentile(ratios, 0.5), percentile(ratios, 0.95), 2*(2*kappa-1))
}

// ---------------------------------------------------------------- routing

func routingBench() {
	fmt.Println("E9 / Corollary 2 — forbidden-set compact routing")
	rng := rand.New(rand.NewSource(19))
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 10x10", workload.Grid(10, 10)},
		{"er n=100", workload.ErdosRenyi(100, 0.08, true, rng)},
	} {
		const f = 3
		net, err := routing.Build(tc.g, f)
		if err != nil {
			fmt.Printf("   %s: %v\n", tc.name, err)
			continue
		}
		total, maxLocal := net.TableBits()
		var stretches []float64
		delivered, reachable := 0, 0
		for q := 0; q < 300; q++ {
			faults := workload.RandomFaults(tc.g, rng.Intn(f+1), rng)
			set := workload.FaultSet(faults)
			s, d := rng.Intn(tc.g.N()), rng.Intn(tc.g.N())
			if s == d {
				continue
			}
			want := graph.ConnectedUnder(tc.g, set, s, d)
			path, ok, err := net.Route(s, d, faults)
			if err != nil {
				fmt.Printf("   %s: routing error: %v\n", tc.name, err)
				return
			}
			if ok != want {
				fmt.Printf("   %s: reachability mismatch\n", tc.name)
				return
			}
			if !want {
				continue
			}
			reachable++
			delivered++
			opt := graph.HopDistancesUnder(tc.g, set, s)[d]
			if opt > 0 {
				stretches = append(stretches, float64(len(path)-1)/float64(opt))
			}
		}
		fmt.Printf("   %-12s delivered %d/%d, stretch median %.2f p95 %.2f max %.2f, tables: total %d bits, max local %d bits\n",
			tc.name, delivered, reachable,
			percentile(stretches, 0.5), percentile(stretches, 0.95), percentile(stretches, 1.0),
			total, maxLocal)
	}
}

// ---------------------------------------------------------------- congest

func congestBench() {
	fmt.Println("E10 / Theorem 3 — CONGEST construction rounds (measured vs √m·D + f² shape)")
	fmt.Printf("   %-14s %6s %6s %5s %8s %8s %8s %8s %8s %10s\n",
		"graph", "n", "m", "D", "bfs", "sizes", "anc", "netfind", "sketch", "√m·D+f²")
	run := func(name string, g *graph.Graph, sketchChunks int) {
		net := congest.NewNet(g)
		rep, _, _, _, err := congest.BuildLabels(net, 0, sketchChunks)
		if err != nil {
			fmt.Printf("   %s: %v\n", name, err)
			return
		}
		bound := int(math.Sqrt(float64(g.M()))*float64(rep.Depth)) + sketchChunks
		fmt.Printf("   %-14s %6d %6d %5d %8d %8d %8d %8d %8d %10d\n",
			name, g.N(), g.M(), rep.Depth, rep.BFSRounds, rep.SizeRounds,
			rep.AncestryRounds, rep.HierarchyRounds, rep.SketchRounds, bound)
	}
	rng := rand.New(rand.NewSource(23))
	run("grid 8x8", workload.Grid(8, 8), 16)
	run("grid 16x16", workload.Grid(16, 16), 16)
	run("er n=128", workload.ErdosRenyi(128, 0.06, true, rng), 16)
	run("er n=256", workload.ErdosRenyi(256, 0.04, true, rng), 16)
	run("torus 12x12", workload.Torus(12, 12), 16)
}

// --------------------------------------------------------------- hierarchy

func hierarchyBench() {
	fmt.Println("E11 / Lemma 12 — NetFind ε-net quality")
	rng := rand.New(rand.NewSource(29))
	fmt.Printf("   %8s %10s %12s %12s\n", "|P|", "net size", "bound", "threshold")
	for _, n := range []int{500, 2000, 8000} {
		pts := make([]euler.Point, n)
		for i := range pts {
			pts[i] = euler.Point{X: rng.Int31n(int32(4 * n)), Y: rng.Int31n(int32(4 * n)), Edge: i}
		}
		net := epsnet.NetFind(n, pts)
		bound := float64(n) / 2
		fmt.Printf("   %8d %10d %12.0f %12d\n", n, len(net), bound, epsnet.NetFindThreshold(n))
	}
	fmt.Println("E12 / Proposition 5 — hierarchy depth and goodness (sampled)")
	g := workload.ErdosRenyi(200, 0.15, true, rng)
	forest := graph.SpanningForest(g)
	tour := euler.Build(forest)
	pts := euler.EmbedNonTree(g, forest, tour)
	const f = 3
	kDet := hierarchy.DefaultThreshold(f, g.M())
	kRand := hierarchy.SamplingThreshold(f, g.N())
	det := hierarchy.BuildNetFind(pts, kDet)
	rnd := hierarchy.BuildSampling(pts, kRand, rng)
	fmt.Printf("   det-netfind: depth %d (k=%d); sampling: depth %d (k=%d); non-tree edges %d\n",
		det.Depth(), kDet, rnd.Depth(), kRand, len(pts))
}

// --------------------------------------------------------------- ablation

// ablation sweeps the two design knobs DESIGN.md §3.4 calls out: the
// Reed–Solomon threshold multiplier (label size vs detected-failure rate)
// and the AGM repetition count (the whp→full blow-up of DP21 footnote 4).
func ablation() {
	fmt.Println("Ablation A — practical threshold k = c·f²·⌈log₂m⌉ (det scheme, f=4)")
	fmt.Printf("   %8s %6s %12s %10s %10s\n", "c", "k", "edge-bits", "failures", "wrong")
	rng := rand.New(rand.NewSource(37))
	g := workload.ErdosRenyi(150, 0.15, true, rng)
	const f = 4
	base := hierarchy.DefaultThreshold(f, g.M())
	for _, c := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		c := c
		s, err := core.Build(g, core.Params{
			MaxFaults: f,
			Threshold: func(f, m int) int {
				k := int(c * float64(base))
				if k < 2 {
					k = 2
				}
				return k
			},
		})
		if err != nil {
			fmt.Printf("   c=%.2f: %v\n", c, err)
			continue
		}
		forest := s.Forest
		var failures, wrong int
		qrng := rand.New(rand.NewSource(38))
		for q := 0; q < 500; q++ {
			faults := workload.TreeEdgeFaults(g, forest, 1+qrng.Intn(f), qrng)
			fl := make([]core.EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = s.EdgeLabel(e)
			}
			sv, tv := qrng.Intn(g.N()), qrng.Intn(g.N())
			got, err := core.Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
			if err != nil {
				failures++
				continue
			}
			if got != graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv) {
				wrong++
			}
		}
		fmt.Printf("   %8.2f %6d %12d %7d/500 %7d/500\n",
			c, s.Spec().K, s.MaxEdgeLabelBits(), failures, wrong)
	}
	fmt.Println("   (failures are *detected* decode errors; wrong answers must stay 0)")

	fmt.Println("Ablation B — AGM repetitions (whp→full trade-off, f=3)")
	fmt.Printf("   %8s %12s %10s %10s\n", "reps", "edge-bits", "failures", "wrong")
	for _, reps := range []int{2, 4, 8, 16, 48} {
		s, err := core.Build(g, core.Params{MaxFaults: 3, Kind: core.KindAGM, Seed: 40, AGMReps: reps})
		if err != nil {
			fmt.Printf("   reps=%d: %v\n", reps, err)
			continue
		}
		forest := s.Forest
		var failures, wrong int
		qrng := rand.New(rand.NewSource(41))
		for q := 0; q < 500; q++ {
			faults := workload.TreeEdgeFaults(g, forest, 1+qrng.Intn(3), qrng)
			fl := make([]core.EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = s.EdgeLabel(e)
			}
			sv, tv := qrng.Intn(g.N()), qrng.Intn(g.N())
			got, err := core.Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
			if err != nil {
				failures++
				continue
			}
			if got != graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv) {
				wrong++
			}
		}
		fmt.Printf("   %8d %12d %7d/500 %7d/500\n",
			reps, s.MaxEdgeLabelBits(), failures, wrong)
	}
}

// ------------------------------------------------------------------ build

// buildRecord is one cell of the construction-perf grid (E14).
type buildRecord struct {
	Scheme   string `json:"scheme"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	F        int    `json:"f"`
	K        int    `json:"k,omitempty"`
	Levels   int    `json:"levels,omitempty"`
	EdgeBits int    `json:"edge_bits"`
	NsPerOp  int64  `json:"ns_per_op"`
}

// baselineRecord is a pre-overhaul measurement kept for trajectory tracking.
type baselineRecord struct {
	Scheme  string `json:"scheme"`
	N       int    `json:"n"`
	F       int    `json:"f"`
	NsPerOp int64  `json:"ns_per_op"`
}

// buildBaselines are the BenchmarkBuild figures measured on the seed
// construction pipeline (per-call gf.Mul window tables, per-level power
// recomputation, map-based slot lookup, dense sequential folding)
// immediately before the hot-path overhaul landed. An interleaved A/B run
// on the same machine put det-netfind n=1024 f=3 at ~166ms pre-overhaul vs
// ~41ms post-overhaul (≈4×).
var buildBaselines = []baselineRecord{
	{Scheme: "det-netfind", N: 256, F: 3, NsPerOp: 33262180},
	{Scheme: "det-netfind", N: 1024, F: 2, NsPerOp: 179000660},
	{Scheme: "det-netfind", N: 1024, F: 3, NsPerOp: 185327198},
	{Scheme: "det-netfind", N: 1024, F: 4, NsPerOp: 262494395},
	{Scheme: "det-netfind", N: 4096, F: 3, NsPerOp: 1005498628},
	{Scheme: "rand-rs", N: 1024, F: 3, NsPerOp: 193113442},
	{Scheme: "agm", N: 1024, F: 3, NsPerOp: 13847690},
}

// buildGrid measures core.Build across the scheme × n × f grid (E14) and,
// with -json, writes BENCH_build.json for PR-over-PR tracking.
func buildGrid() {
	fmt.Println("E14 — construction hot path (best of reps, seeded graphs p=8/n)")
	fmt.Printf("   %-12s %6s %6s %3s %6s %7s %12s %12s\n",
		"scheme", "n", "m", "f", "k", "levels", "edge-bits", "build")
	kinds := []struct {
		name string
		kind core.Kind
		// maxN caps the grid per kind: det-greedy's ε-net construction is
		// polynomial (~3 min per Build already at n=256), so it is tracked
		// at n=96 where a cell is seconds.
		maxN int
	}{
		{"det-netfind", core.KindDetNetFind, 4096},
		{"det-greedy", core.KindDetGreedy, 96},
		{"rand-rs", core.KindRandRS, 4096},
		{"agm", core.KindAGM, 4096},
	}
	var records []buildRecord
	for _, kr := range kinds {
		for _, n := range []int{96, 256, 1024, 4096} {
			if n > kr.maxN || (n == 96 && kr.maxN > 96) {
				continue
			}
			rng := rand.New(rand.NewSource(int64(n)))
			g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
			for _, f := range []int{2, 3, 4} {
				reps := 3
				if n >= 4096 {
					reps = 1
				}
				var best time.Duration
				var s *core.Scheme
				for r := 0; r < reps; r++ {
					t0 := time.Now()
					var err error
					s, err = core.Build(g, core.Params{MaxFaults: f, Kind: kr.kind, Seed: 17})
					if err != nil {
						fmt.Fprintf(os.Stderr, "ftcbench: build %s n=%d f=%d: %v\n", kr.name, n, f, err)
						os.Exit(1)
					}
					if d := time.Since(t0); r == 0 || d < best {
						best = d
					}
				}
				rec := buildRecord{
					Scheme:   kr.name,
					N:        n,
					M:        g.M(),
					F:        f,
					K:        s.Spec().K,
					Levels:   s.Spec().Levels,
					EdgeBits: s.MaxEdgeLabelBits(),
					NsPerOp:  best.Nanoseconds(),
				}
				records = append(records, rec)
				fmt.Printf("   %-12s %6d %6d %3d %6d %7d %12d %12s\n",
					rec.Scheme, rec.N, rec.M, rec.F, rec.K, rec.Levels, rec.EdgeBits, round(best))
			}
		}
	}
	if !jsonOut {
		return
	}
	doc := struct {
		Benchmark string           `json:"benchmark"`
		Note      string           `json:"note"`
		Baseline  []baselineRecord `json:"baseline_pre_overhaul"`
		Results   []buildRecord    `json:"results"`
	}{
		Benchmark: "core.Build",
		Note: "baseline_pre_overhaul rows were measured on the seed pipeline before the " +
			"cached-kernel/power-arena/parallel-folding overhaul; results rows are " +
			"regenerated by `ftcbench build -json`. Wall times on shared hardware are " +
			"noisy — compare like-for-like runs.",
		Baseline: buildBaselines,
		Results:  records,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: marshal BENCH_build.json: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile("BENCH_build.json", data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: write BENCH_build.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("   wrote BENCH_build.json")
}

// ----------------------------------------------------------------- serve

// serveRecord is one cell of the serving-path grid (E16): the full fleet
// pipeline — build, snapshot, load, then batched HTTP probes against the
// ftcserve handler — with the fault-set LRU cold vs warm.
type serveRecord struct {
	Scheme        string  `json:"scheme"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	F             int     `json:"f"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	LoadNs        int64   `json:"load_ns"`
	Events        int     `json:"events"`
	Batch         int     `json:"batch"`
	WarmRequests  int     `json:"warm_requests"`
	ColdNsPerReq  int64   `json:"cold_ns_per_req"`
	WarmNsPerReq  int64   `json:"warm_ns_per_req"`
	WarmQPS       float64 `json:"warm_qps"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
}

// serveBench measures the serving daemon end to end (E16) and, with -json,
// writes BENCH_serve.json for PR-over-PR tracking. Cold requests are the
// first probe of each failure event (LRU miss: compile + closure); warm
// requests replay the same events round-robin and ride the cached
// FaultSets' zero-alloc probe path.
func serveBench() {
	const (
		f        = 3
		events   = 16
		batch    = 16
		warmReqs = 400
	)
	fmt.Println("E16 — serving path: ftcserve handler, fault-set LRU cold vs warm (batched HTTP probes)")
	fmt.Printf("   %-12s %6s %6s %3s %10s %10s %12s %12s %10s %10s\n",
		"scheme", "n", "m", "f", "snapshot", "load", "cold/req", "warm/req", "warm qps", "hit rate")
	var records []serveRecord
	for _, n := range []int{256, 1024} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
		sch, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: serve build n=%d: %v\n", n, err)
			os.Exit(1)
		}
		var snap bytes.Buffer
		if err := sch.Save(&snap); err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: serve snapshot: %v\n", err)
			os.Exit(1)
		}
		// LoadBytes is the daemon's load path (ftcserve reads the file and
		// hands the buffer over zero-copy): with the v3 lazy arena this is
		// O(1) in label bytes.
		t0 := time.Now()
		loaded, err := ftc.LoadBytes(snap.Bytes())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: serve load: %v\n", err)
			os.Exit(1)
		}
		loadDur := time.Since(t0)

		srv := serve.New(loaded, events)
		ts := httptest.NewServer(srv.Handler())
		faultSets := make([][]int, events)
		erng := rand.New(rand.NewSource(int64(n) + 1))
		for i := range faultSets {
			faultSets[i] = workload.TreeEdgeFaults(g, loaded.Inner().Forest, 1+erng.Intn(f), erng)
		}
		post := func(ev int) {
			req := serve.ConnectedRequest{FaultEdges: faultSets[ev]}
			for q := 0; q < batch; q++ {
				req.Pairs = append(req.Pairs, [2]int{erng.Intn(n), erng.Intn(n)})
			}
			body, err := json.Marshal(req)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ftcbench: serve request: %v\n", err)
				os.Exit(1)
			}
			resp, err := http.Post(ts.URL+"/connected", "application/json", bytes.NewReader(body))
			if err != nil {
				fmt.Fprintf(os.Stderr, "ftcbench: serve post: %v\n", err)
				os.Exit(1)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fmt.Fprintf(os.Stderr, "ftcbench: serve post: status %d\n", resp.StatusCode)
				os.Exit(1)
			}
		}
		t1 := time.Now()
		for ev := range faultSets {
			post(ev)
		}
		cold := time.Since(t1) / events
		t2 := time.Now()
		for i := 0; i < warmReqs; i++ {
			post(i % events)
		}
		warmTotal := time.Since(t2)
		warm := warmTotal / warmReqs
		ts.Close()

		st := srv.Stats()
		rec := serveRecord{
			Scheme:        "det-netfind",
			N:             n,
			M:             g.M(),
			F:             f,
			SnapshotBytes: snap.Len(),
			LoadNs:        loadDur.Nanoseconds(),
			Events:        events,
			Batch:         batch,
			WarmRequests:  warmReqs,
			ColdNsPerReq:  cold.Nanoseconds(),
			WarmNsPerReq:  warm.Nanoseconds(),
			WarmQPS:       float64(warmReqs) / warmTotal.Seconds(),
			CacheHits:     st.CacheHits,
			CacheMisses:   st.CacheMisses,
		}
		records = append(records, rec)
		fmt.Printf("   %-12s %6d %6d %3d %9dB %10s %12s %12s %10.0f %9.2f%%\n",
			rec.Scheme, rec.N, rec.M, rec.F, rec.SnapshotBytes, round(loadDur),
			round(cold), round(warm), rec.WarmQPS,
			100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses))
	}
	fmt.Println("   (cold = first probe of each failure event: LRU miss, CompileFaults + closure;")
	fmt.Println("    warm = same events replayed: cached FaultSet, zero-alloc probe path)")
	if !jsonOut {
		return
	}
	doc := struct {
		Benchmark string        `json:"benchmark"`
		Note      string        `json:"note"`
		Results   []serveRecord `json:"results"`
	}{
		Benchmark: "serve.Server (ftcserve handler)",
		Note: "End-to-end serving path: build → Save → Load → batched POST /connected against " +
			"the ftcserve handler over HTTP. cold_ns_per_req is the first probe of each failure " +
			"event (fault-set LRU miss: compile + closure); warm_ns_per_req replays the same " +
			"events against cached FaultSets. Regenerated by `ftcbench serve -json`. Wall times " +
			"on shared hardware are noisy — compare like-for-like runs.",
		Results: records,
	}
	mergeBenchServe(func(out map[string]json.RawMessage) {
		raw, err := json.Marshal(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: marshal BENCH_serve.json: %v\n", err)
			os.Exit(1)
		}
		var top map[string]json.RawMessage
		_ = json.Unmarshal(raw, &top)
		for k, v := range top {
			out[k] = v
		}
	})
}

// mergeBenchServe read-modify-writes BENCH_serve.json as a generic JSON
// object, so sections that own different top-level keys (serve → results,
// replicate → replication) never clobber each other's data.
func mergeBenchServe(update func(doc map[string]json.RawMessage)) {
	mergeBenchJSON("BENCH_serve.json", update)
}

// ------------------------------------------------------------------- load

// loadCacheCell is one cell of the serving-load grid (E18): one cache
// variant at one client count, closed-loop.
type loadCacheCell struct {
	Cache        string  `json:"cache"`
	Shards       int     `json:"shards"`
	Clients      int     `json:"clients"`
	WarmOps      int     `json:"warm_ops"`
	WarmQPS      float64 `json:"warm_probe_qps"`
	WarmP50Ns    int64   `json:"warm_p50_ns"`
	WarmP99Ns    int64   `json:"warm_p99_ns"`
	WarmMutexNs  int64   `json:"warm_mutex_wait_ns"`
	ColdEvents   int     `json:"cold_events"`
	ColdQPS      float64 `json:"cold_probe_qps"`
	HTTPRequests int     `json:"http_requests"`
	HTTPBatch    int     `json:"http_batch"`
	HTTPQPS      float64 `json:"http_qps"`
	HTTPP50Ns    int64   `json:"http_p50_ns"`
	HTTPP99Ns    int64   `json:"http_p99_ns"`
}

// loadProtoCell is one cell of the protocol grid (E19): one protocol
// surface at one client count, batch-16 probes against the same warm
// sharded server end to end over loopback TCP.
type loadProtoCell struct {
	Proto    string  `json:"proto"`
	Clients  int     `json:"clients"`
	Conns    int     `json:"conns,omitempty"`    // bin: pipelined connections
	Inflight int     `json:"inflight,omitempty"` // bin: in-flight bound per connection
	Requests int     `json:"requests"`
	Batch    int     `json:"batch"`
	QPS      float64 `json:"qps"`
	P50Ns    int64   `json:"p50_ns"`
	P99Ns    int64   `json:"p99_ns"`
}

// loadProtoSpeedup is one bin-vs-json summary row of the protocol grid.
type loadProtoSpeedup struct {
	Clients int     `json:"clients"`
	JSONQPS float64 `json:"json_qps"`
	BinQPS  float64 `json:"bin_qps"`
	Speedup float64 `json:"bin_vs_json_speedup"`
}

// loadShardSpeedup is one sharded-vs-single-lock summary row — emitted
// only on multicore hosts, where the comparison measures contention.
type loadShardSpeedup struct {
	Clients   int     `json:"clients"`
	SingleQPS float64 `json:"single_lock_qps"`
	ShardQPS  float64 `json:"sharded_qps"`
	Speedup   float64 `json:"sharded_vs_single_speedup"`
}

// loadContentionRow is the single-CPU stand-in for loadShardSpeedup: with
// one core goroutines never truly contend, so instead of an unmeasurable
// speedup the benchmark reports how long the process spent blocked on
// mutexes during each cache variant's 16-client warm run.
type loadContentionRow struct {
	Cache       string `json:"cache"`
	Clients     int    `json:"clients"`
	MutexWaitNs int64  `json:"mutex_wait_ns"`
}

// loadSnapshotRecord compares v2 (eager) against v3 (lazy arena) snapshot
// loading of the same scheme.
type loadSnapshotRecord struct {
	N              int     `json:"n"`
	M              int     `json:"m"`
	F              int     `json:"f"`
	V2Bytes        int     `json:"v2_bytes"`
	V3Bytes        int     `json:"v3_bytes"`
	V2LoadNs       int64   `json:"v2_load_ns"`
	V3LoadNs       int64   `json:"v3_load_ns"`
	Speedup        float64 `json:"load_speedup_v3_vs_v2"`
	LabelsVerified bool    `json:"labels_verified_lazily_equal"`
}

// loadBench is the closed-loop serving load generator (E18): concurrent
// clients drive the serve layer's probe path (fault-set resolution through
// the cache plus a connectivity probe) and the full HTTP handler, warm and
// cold, against the historical single-lock cache and the sharded cache, at
// 1/4/16 clients; plus the snapshot-load comparison (v2 eager vs v3 lazy
// arena). With -json it writes BENCH_load.json.
//
// The probe-path op is one Server.FaultSet resolution (canonicalize, hash,
// cache stab) plus one FaultSet.Connected probe; warm cells first compile
// AND close every event (the first probe of a component pays the §7.6
// closure, ~ms — leaving it inside the timed region would measure compile
// churn, not the cache). Cold cells measure exactly that first-touch cost:
// every op is a distinct never-seen event.
func loadBench() {
	n, events, cacheCap, newShards := 1024, 256, 1024, 64
	warmOps, httpReqs := 1_000_000, 10_000
	snapN := 4096
	if smokeMode {
		n, events, cacheCap, newShards = 256, 64, 256, 16
		warmOps, httpReqs = 100_000, 2_000
		snapN = 1024
	}
	const f = 3
	const httpBatch = 16
	fmt.Printf("E18 — serving load: closed-loop probe QPS, old vs new cache (det-netfind n=%d f=%d, %d events)\n", n, f, events)

	rng := rand.New(rand.NewSource(int64(n)))
	g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
	sch, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(f))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: load build: %v\n", err)
		os.Exit(1)
	}
	labels := make([]ftc.VertexLabel, n)
	for i := range labels {
		labels[i] = sch.VertexLabel(i)
	}
	erng := rand.New(rand.NewSource(int64(n) + 1))
	faultSets := make([][]int, events)
	for i := range faultSets {
		faultSets[i] = workload.TreeEdgeFaults(g, sch.Inner().Forest, 1+erng.Intn(f), erng)
	}
	// The same per-event batch drives both protocol surfaces: JSON bodies
	// for HTTP, (faults, pairs) for the frame client — identical probes, so
	// the E19 grid compares serialization, not workload.
	bodies := make([][]byte, events)
	pairsPerEvent := make([][][2]int, events)
	for i, fe := range faultSets {
		req := serve.ConnectedRequest{FaultEdges: fe}
		for q := 0; q < httpBatch; q++ {
			req.Pairs = append(req.Pairs, [2]int{erng.Intn(n), erng.Intn(n)})
		}
		pairsPerEvent[i] = req.Pairs
		if bodies[i], err = json.Marshal(req); err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: load request: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("   %-12s %8s %10s %10s %10s %10s %10s %10s %10s\n",
		"cache", "clients", "warm qps", "warm p50", "warm p99", "cold qps", "http qps", "http p50", "http p99")
	var cells []loadCacheCell
	for _, variant := range []struct {
		name   string
		shards int
	}{
		{"single-lock", 1},
		{fmt.Sprintf("sharded-%d", newShards), newShards},
	} {
		for _, clients := range []int{1, 4, 16} {
			cell := loadCacheCell{
				Cache: variant.name, Shards: variant.shards, Clients: clients,
				WarmOps: warmOps, ColdEvents: events,
				HTTPRequests: httpReqs, HTTPBatch: httpBatch,
			}

			// Warm: every event compiled and closed before the clock starts.
			srv := serve.NewWithShards(sch, cacheCap, variant.shards)
			for _, fe := range faultSets {
				fs, _, err := srv.FaultSet(fe)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: load warmup: %v\n", err)
					os.Exit(1)
				}
				for q := 0; q < 32; q++ {
					if _, err := fs.Connected(labels[(q*31)%n], labels[(q*17+5)%n]); err != nil {
						fmt.Fprintf(os.Stderr, "ftcbench: load warmup probe: %v\n", err)
						os.Exit(1)
					}
				}
			}
			var lat [][]int64
			mutexBefore := mutexWaitNs()
			cell.WarmQPS, lat = closedLoop(clients, warmOps, func(client, i int, prng *rand.Rand) {
				fs, _, err := srv.FaultSet(faultSets[prng.Intn(events)])
				if err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: load probe: %v\n", err)
					os.Exit(1)
				}
				if _, err := fs.Connected(labels[prng.Intn(n)], labels[prng.Intn(n)]); err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: load probe: %v\n", err)
					os.Exit(1)
				}
			})
			cell.WarmMutexNs = mutexWaitNs() - mutexBefore
			cell.WarmP50Ns, cell.WarmP99Ns = latPercentiles(lat)

			// Cold: a fresh cache; every op is the first touch of a distinct
			// event (compile + closure), clients draining disjoint slices.
			cold := serve.NewWithShards(sch, cacheCap, variant.shards)
			per := events / clients
			coldQPS, _ := closedLoop(clients, per*clients, func(client, i int, _ *rand.Rand) {
				fe := faultSets[client*per+i]
				fs, _, err := cold.FaultSet(fe)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: load cold: %v\n", err)
					os.Exit(1)
				}
				if _, err := fs.Connected(labels[3], labels[11%n]); err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: load cold probe: %v\n", err)
					os.Exit(1)
				}
			})
			cell.ColdQPS = coldQPS

			// HTTP: the full handler end to end over loopback TCP, warm.
			ts := httptest.NewServer(srv.Handler())
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients * 2}}
			cell.HTTPQPS, lat = closedLoop(clients, httpReqs, func(c, i int, prng *rand.Rand) {
				resp, err := client.Post(ts.URL+"/connected", "application/json",
					bytes.NewReader(bodies[prng.Intn(events)]))
				if err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: load http: %v\n", err)
					os.Exit(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fmt.Fprintf(os.Stderr, "ftcbench: load http: status %d\n", resp.StatusCode)
					os.Exit(1)
				}
			})
			cell.HTTPP50Ns, cell.HTTPP99Ns = latPercentiles(lat)
			ts.Close()
			client.CloseIdleConnections()

			cells = append(cells, cell)
			fmt.Printf("   %-12s %8d %10.0f %10s %10s %10.0f %10.0f %10s %10s\n",
				cell.Cache, cell.Clients, cell.WarmQPS,
				round(time.Duration(cell.WarmP50Ns)), round(time.Duration(cell.WarmP99Ns)),
				cell.ColdQPS, cell.HTTPQPS,
				round(time.Duration(cell.HTTPP50Ns)), round(time.Duration(cell.HTTPP99Ns)))
		}
	}
	// The sharded-vs-single comparison only measures what it claims to —
	// lock contention — when goroutines actually run in parallel. On a
	// single-CPU host the numbers would be noise presented as a speedup, so
	// the benchmark refuses to emit them and reports the mutex-wait
	// contention proxy instead (how long the warm runs actually sat blocked
	// on locks).
	var shardRows []loadShardSpeedup
	var contentionRows []loadContentionRow
	if runtime.NumCPU() >= 2 {
		for _, clients := range []int{1, 4, 16} {
			row := loadShardSpeedup{Clients: clients}
			for _, c := range cells {
				if c.Clients == clients {
					if c.Shards == 1 {
						row.SingleQPS = c.WarmQPS
					} else {
						row.ShardQPS = c.WarmQPS
					}
				}
			}
			row.Speedup = row.ShardQPS / row.SingleQPS
			shardRows = append(shardRows, row)
			fmt.Printf("   warm speedup at %2d clients: %.2fx (sharded vs single-lock)\n", clients, row.Speedup)
		}
	} else {
		for _, c := range cells {
			if c.Clients == 16 {
				contentionRows = append(contentionRows, loadContentionRow{
					Cache: c.Cache, Clients: c.Clients, MutexWaitNs: c.WarmMutexNs,
				})
				fmt.Printf("   contention proxy (%s, 16 clients): %s mutex wait over %d warm ops\n",
					c.Cache, round(time.Duration(c.WarmMutexNs)), c.WarmOps)
			}
		}
		fmt.Printf("   (single CPU: goroutines serialize, the global mutex never truly contends, and a\n")
		fmt.Println("    sharded-vs-single speedup would be noise — reporting mutex-wait instead)")
	}

	protoCells, protoSpeedups, jsonAllocs, binAllocs := protocolGrid(sch, faultSets, pairsPerEvent, bodies, cacheCap, newShards, httpReqs, httpBatch)

	snap := snapshotLoadBench(snapN, f)
	fmt.Printf("   snapshot load (n=%d m=%d f=%d): v2 eager %s (%d MB) vs v3 lazy %s (%d MB) — %.0fx, labels lazily-equal: %v\n",
		snap.N, snap.M, snap.F,
		round(time.Duration(snap.V2LoadNs)), snap.V2Bytes>>20,
		round(time.Duration(snap.V3LoadNs)), snap.V3Bytes>>20,
		snap.Speedup, snap.LabelsVerified)

	if !jsonOut {
		return
	}
	doc := struct {
		Benchmark       string              `json:"benchmark"`
		Note            string              `json:"note"`
		NumCPU          int                 `json:"num_cpu"`
		GoMaxProcs      int                 `json:"gomaxprocs"`
		N               int                 `json:"n"`
		M               int                 `json:"m"`
		F               int                 `json:"f"`
		Events          int                 `json:"events"`
		CacheCap        int                 `json:"cache_capacity"`
		Smoke           bool                `json:"smoke,omitempty"`
		Cache           []loadCacheCell     `json:"cache"`
		ShardedVsSingle []loadShardSpeedup  `json:"sharded_vs_single,omitempty"`
		ContentionProxy []loadContentionRow `json:"contention_proxy,omitempty"`
		Protocols       []loadProtoCell     `json:"protocols,omitempty"`
		BinVsJSON       []loadProtoSpeedup  `json:"bin_vs_json,omitempty"`
		JSONAllocsPerOp float64             `json:"json_allocs_per_op"`
		BinAllocsPerOp  float64             `json:"bin_allocs_per_op"`
		SnapshotLoad    loadSnapshotRecord  `json:"snapshot_load"`
	}{
		Benchmark: "serve load (closed loop)",
		Note: "warm_probe_qps is the steady-state probe path (Server.FaultSet cache stab + one " +
			"FaultSet.Connected) under closed-loop concurrent clients; cold_probe_qps is the " +
			"first touch of each event (compile + closure); http_* drives the full POST " +
			"/connected handler over loopback TCP. cache=single-lock is the pre-sharding LRU " +
			"(one global mutex); sharded-N is the new cache. sharded_vs_single is emitted only " +
			"on multicore hosts (num_cpu>=2): with one CPU goroutines time-share a core, the " +
			"global mutex never actually contends, and the comparison would be noise — " +
			"contention_proxy (process mutex-wait during each 16-client warm run, from " +
			"runtime/metrics /sync/mutex/wait/total) is recorded instead. protocols is the E19 " +
			"grid: the same warm sharded server probed end to end over loopback TCP through " +
			"the JSON HTTP surface and the binary frame protocol (persistent pipelined " +
			"connections, internal/serve/wire); bin_vs_json summarizes the QPS ratio per " +
			"client count, and *_allocs_per_op counts server-side allocations per batch-16 " +
			"probe through each surface (testing.AllocsPerRun over the handler itself). " +
			"snapshot_load compares ftc.Load of the same scheme written as v2 (eager per-label " +
			"decode) and v3 (lazy zero-copy arena; O(1) in label bytes), with every label then " +
			"decoded and verified byte-identical. Regenerated by `ftcbench load -json` (smoke: " +
			"`-smoke`; one surface only: `-proto json|bin`). Wall times on shared hardware are " +
			"noisy — compare like-for-like runs.",
		NumCPU:          runtime.NumCPU(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		N:               n,
		M:               g.M(),
		F:               f,
		Events:          events,
		CacheCap:        cacheCap,
		Smoke:           smokeMode,
		Cache:           cells,
		ShardedVsSingle: shardRows,
		ContentionProxy: contentionRows,
		Protocols:       protoCells,
		BinVsJSON:       protoSpeedups,
		JSONAllocsPerOp: jsonAllocs,
		BinAllocsPerOp:  binAllocs,
		SnapshotLoad:    snap,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: marshal BENCH_load.json: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile("BENCH_load.json", data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: write BENCH_load.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("   wrote BENCH_load.json")
}

// mutexWaitNs reads the process-cumulative time goroutines have spent
// blocked on sync.Mutex/RWMutex, from runtime/metrics — the contention
// proxy reported when a single-CPU host makes speedup comparisons
// meaningless.
func mutexWaitNs() int64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return int64(sample[0].Value.Float64() * 1e9)
}

// protocolGrid is the E19 measurement: the same warm sharded server probed
// end to end over loopback TCP through both protocol surfaces — the JSON
// HTTP handler and the binary frame listener (persistent pipelined
// connections) — at 1/4/16 closed-loop clients, plus server-side
// allocs/op through each surface. Returns the cells, the per-client-count
// bin-vs-json summary (when both surfaces ran), and the two allocs/op
// numbers (always measured; they need no concurrency).
func protocolGrid(sch *ftc.Scheme, faultSets [][]int, pairsPerEvent [][][2]int, bodies [][]byte, cacheCap, shards, reqs, batch int) ([]loadProtoCell, []loadProtoSpeedup, float64, float64) {
	events := len(faultSets)
	clientCounts := []int{1, 4, 16}
	const binInflight = 64

	srv := serve.NewWithShards(sch, cacheCap, shards)
	for _, fe := range faultSets {
		fs, _, err := srv.FaultSet(fe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: proto warmup: %v\n", err)
			os.Exit(1)
		}
		for q := 0; q < 32; q++ {
			if _, err := fs.Connected(sch.VertexLabel((q*31)%sch.Graph().N()), sch.VertexLabel((q*17+5)%sch.Graph().N())); err != nil {
				fmt.Fprintf(os.Stderr, "ftcbench: proto warmup probe: %v\n", err)
				os.Exit(1)
			}
		}
	}

	fmt.Printf("   E19 — protocol grid: batch-%d probes end to end over loopback TCP (proto=%s)\n", batch, protoMode)
	fmt.Printf("   %-6s %8s %6s %10s %10s %10s\n", "proto", "clients", "conns", "qps", "p50", "p99")
	var cells []loadProtoCell

	if protoMode != "bin" {
		ts := httptest.NewServer(srv.Handler())
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 32}}
		for _, clients := range clientCounts {
			cell := loadProtoCell{Proto: "json", Clients: clients, Requests: reqs, Batch: batch}
			var lat [][]int64
			cell.QPS, lat = closedLoop(clients, reqs, func(c, i int, prng *rand.Rand) {
				resp, err := client.Post(ts.URL+"/connected", "application/json",
					bytes.NewReader(bodies[prng.Intn(events)]))
				if err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: proto json: %v\n", err)
					os.Exit(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fmt.Fprintf(os.Stderr, "ftcbench: proto json: status %d\n", resp.StatusCode)
					os.Exit(1)
				}
			})
			cell.P50Ns, cell.P99Ns = latPercentiles(lat)
			cells = append(cells, cell)
			fmt.Printf("   %-6s %8d %6s %10.0f %10s %10s\n", cell.Proto, cell.Clients, "-",
				cell.QPS, round(time.Duration(cell.P50Ns)), round(time.Duration(cell.P99Ns)))
		}
		ts.Close()
		client.CloseIdleConnections()
	}

	if protoMode != "json" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: proto bin listen: %v\n", err)
			os.Exit(1)
		}
		go srv.ServeBin(ln)
		for _, clients := range clientCounts {
			// A few pipelined clients per connection: the point of the frame
			// protocol is that one connection carries many in-flight batches,
			// so connections grow slower than clients.
			conns := (clients + 3) / 4
			cl, err := wireclient.Dial(ln.Addr().String(), wireclient.Options{Conns: conns, Inflight: binInflight})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ftcbench: proto bin dial: %v\n", err)
				os.Exit(1)
			}
			cell := loadProtoCell{Proto: "bin", Clients: clients, Conns: conns, Inflight: binInflight, Requests: reqs, Batch: batch}
			outs := make([][]bool, clients)
			var lat [][]int64
			cell.QPS, lat = closedLoop(clients, reqs, func(c, i int, prng *rand.Rand) {
				e := prng.Intn(events)
				var perr error
				outs[c], _, _, perr = cl.ProbeInto(faultSets[e], pairsPerEvent[e], outs[c], 0)
				if perr != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: proto bin probe: %v\n", perr)
					os.Exit(1)
				}
			})
			cell.P50Ns, cell.P99Ns = latPercentiles(lat)
			cl.Close()
			cells = append(cells, cell)
			fmt.Printf("   %-6s %8d %6d %10.0f %10s %10s\n", cell.Proto, cell.Clients, cell.Conns,
				cell.QPS, round(time.Duration(cell.P50Ns)), round(time.Duration(cell.P99Ns)))
		}
		ln.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.ShutdownBin(ctx)
		cancel()
	}

	var speedups []loadProtoSpeedup
	if protoMode == "both" {
		for _, clients := range clientCounts {
			row := loadProtoSpeedup{Clients: clients}
			for _, c := range cells {
				if c.Clients != clients {
					continue
				}
				if c.Proto == "json" {
					row.JSONQPS = c.QPS
				} else {
					row.BinQPS = c.QPS
				}
			}
			row.Speedup = row.BinQPS / row.JSONQPS
			speedups = append(speedups, row)
			fmt.Printf("   bin vs json at %2d clients: %.2fx\n", clients, row.Speedup)
		}
	}

	jsonAllocs, binAllocs := protocolAllocs(srv, faultSets[0], pairsPerEvent[0], bodies[0])
	fmt.Printf("   server-side allocs per batch-%d probe: json %.0f, bin %.0f\n", batch, jsonAllocs, binAllocs)
	return cells, speedups, jsonAllocs, binAllocs
}

// discardRW swallows HTTP responses so the allocs measurement counts the
// serving pipeline, not recorder bookkeeping.
type discardRW struct{ h http.Header }

func (w *discardRW) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}
func (w *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardRW) WriteHeader(int)             {}

// protocolAllocs measures server-side allocations per batch probe through
// each surface, driving the handlers directly (no socket) the same way
// BenchmarkHandleConnected does, so the numbers are comparable PR over PR.
// This is the acceptance bar of the binary protocol: ≤4 allocs/op at batch
// 16 against JSON's 16.
func protocolAllocs(srv *serve.Server, faults []int, pairs [][2]int, body []byte) (jsonAllocs, binAllocs float64) {
	h := srv.Handler()
	proto := httptest.NewRequest(http.MethodPost, "/connected", http.NoBody)
	var w discardRW
	reader := bytes.NewReader(body)
	jsonAllocs = testing.AllocsPerRun(200, func() {
		reader.Reset(body)
		r := proto.Clone(proto.Context())
		r.Body = io.NopCloser(reader)
		h.ServeHTTP(&w, r)
	})

	canon := append([]int(nil), faults...)
	sort.Ints(canon)
	w2 := 0
	for i, e := range canon {
		if i == 0 || e != canon[i-1] {
			canon[w2] = e
			w2++
		}
	}
	frame := wire.AppendProbe(nil, 1, 0, canon[:w2], pairs)
	payload := frame[5:] // skip the u32 length prefix + opcode header
	var sc serve.FrameScratch
	if _, fatal := srv.HandleFrame(&sc, wire.OpProbe, payload); fatal {
		fmt.Fprintf(os.Stderr, "ftcbench: allocs warmup frame rejected\n")
		os.Exit(1)
	}
	binAllocs = testing.AllocsPerRun(200, func() {
		if _, fatal := srv.HandleFrame(&sc, wire.OpProbe, payload); fatal {
			fmt.Fprintf(os.Stderr, "ftcbench: allocs frame rejected\n")
			os.Exit(1)
		}
	})
	return jsonAllocs, binAllocs
}

// binSmoke is the CI gate for the binary protocol: against a live ftcserve
// (addresses from FTCSERVE_HTTP and FTCSERVE_BIN), it drives pipelined
// concurrent probes through the frame listener, cross-checks a probe
// against the JSON surface, and verifies the /metrics exposition counted
// the traffic. Exits nonzero on any failure.
func binSmoke() {
	httpBase := os.Getenv("FTCSERVE_HTTP")
	binAddr := os.Getenv("FTCSERVE_BIN")
	if httpBase == "" || binAddr == "" {
		fmt.Fprintln(os.Stderr, "ftcbench binsmoke: set FTCSERVE_HTTP (e.g. http://127.0.0.1:8337) and FTCSERVE_BIN (e.g. 127.0.0.1:8338)")
		os.Exit(2)
	}
	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ftcbench binsmoke: "+format+"\n", args...)
		os.Exit(1)
	}

	var health serve.Healthz
	resp, err := http.Get(httpBase + "/healthz")
	if err != nil {
		die("healthz: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		die("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.N < 2 || health.M < 1 {
		die("healthz reports n=%d m=%d — nothing to probe", health.N, health.M)
	}

	cl, err := wireclient.Dial(binAddr, wireclient.Options{Conns: 2, Inflight: 16})
	if err != nil {
		die("dial %s: %v", binAddr, err)
	}
	defer cl.Close()

	// Pipelined concurrent probes: more in-flight batches than connections,
	// so the smoke actually exercises the FIFO matching under interleaving.
	const workers, probesPer = 8, 100
	nFaults := 1
	if health.MaxFaults < 1 {
		nFaults = 0
	}
	qps, _ := closedLoop(workers, workers*probesPer, func(c, i int, prng *rand.Rand) {
		faults := make([]int, nFaults)
		for j := range faults {
			faults[j] = prng.Intn(health.M)
		}
		pairs := [][2]int{{prng.Intn(health.N), prng.Intn(health.N)}, {prng.Intn(health.N), prng.Intn(health.N)}}
		out, err := cl.Probe(faults, pairs)
		if err != nil {
			die("probe: %v", err)
		}
		if len(out) != len(pairs) {
			die("probe returned %d answers for %d pairs", len(out), len(pairs))
		}
	})

	// Cross-check one probe against the JSON surface.
	faults := []int{0}[:nFaults]
	pairs := [][2]int{{0, health.N - 1}}
	binOut, err := cl.Probe(faults, pairs)
	if err != nil {
		die("cross-check bin probe: %v", err)
	}
	body, _ := json.Marshal(serve.ConnectedRequest{FaultEdges: faults, Pairs: pairs})
	hresp, err := http.Post(httpBase+"/connected", "application/json", bytes.NewReader(body))
	if err != nil {
		die("cross-check http probe: %v", err)
	}
	var conn serve.ConnectedResponse
	if err := json.NewDecoder(hresp.Body).Decode(&conn); err != nil {
		die("cross-check decode (status %d): %v", hresp.StatusCode, err)
	}
	hresp.Body.Close()
	if len(conn.Connected) != 1 || conn.Connected[0] != binOut[0] {
		die("surfaces disagree: bin=%v json=%v", binOut, conn.Connected)
	}

	// Query products on both surfaces: one route plan and one vertex-fault
	// probe, each answered identically by the JSON and binary handlers.
	var rresp wire.RouteResp
	if err := cl.Route(faults, pairs, &rresp, 0); err != nil {
		die("bin route: %v", err)
	}
	body, _ = json.Marshal(serve.RouteRequest{FaultEdges: faults, Pairs: pairs})
	rhresp, err := http.Post(httpBase+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		die("http route: %v", err)
	}
	var hroute serve.RouteResponse
	if err := json.NewDecoder(rhresp.Body).Decode(&hroute); err != nil {
		die("route decode (status %d): %v", rhresp.StatusCode, err)
	}
	rhresp.Body.Close()
	if len(hroute.Routes) != 1 || rresp.Reachable[0] != hroute.Routes[0].Reachable ||
		rresp.Approx != (hroute.Confidence == serve.ConfidenceApprox) {
		die("route surfaces disagree: bin=%+v json=%+v", rresp, hroute)
	}

	verts := []int{0}
	vOut, _, vApprox, _, err := cl.VProbeInto(verts, pairs, nil, 0)
	if err != nil {
		die("bin vprobe: %v", err)
	}
	body, _ = json.Marshal(serve.VConnectedRequest{FaultVertices: verts, Pairs: pairs})
	vhresp, err := http.Post(httpBase+"/vconnected", "application/json", bytes.NewReader(body))
	if err != nil {
		die("http vconnected: %v", err)
	}
	var hv serve.VConnectedResponse
	if err := json.NewDecoder(vhresp.Body).Decode(&hv); err != nil {
		die("vconnected decode (status %d): %v", vhresp.StatusCode, err)
	}
	vhresp.Body.Close()
	if len(hv.Connected) != 1 || vOut[0] != hv.Connected[0] || vApprox != (hv.Confidence == serve.ConfidenceApprox) {
		die("vconnected surfaces disagree: bin=%v(approx=%v) json=%+v", vOut, vApprox, hv)
	}

	// The metrics exposition must have counted the frame traffic.
	mresp, err := http.Get(httpBase + "/metrics")
	if err != nil {
		die("metrics scrape: %v", err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		die("metrics read: %v", err)
	}
	exposition := string(raw)
	counted := false
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, "ftcserve_bin_requests_total "); ok {
			counted = rest != "0"
		}
	}
	if !counted {
		die("ftcserve_bin_requests_total missing or zero after %d probes:\n%s", workers*probesPer, exposition)
	}
	if !strings.Contains(exposition, "ftcserve_bin_connections") || !strings.Contains(exposition, `ftcserve_cache_hits_total{shard="`) {
		die("metrics exposition missing expected series:\n%s", exposition)
	}
	for _, series := range []string{"ftcserve_route_plans_total ", "ftcserve_vprobes_total "} {
		if !strings.Contains(exposition, series) || strings.Contains(exposition, series+"0\n") {
			die("metrics did not count the query products (%s):\n%s", strings.TrimSpace(series), exposition)
		}
	}

	fmt.Printf("binsmoke ok: %d pipelined probes at %.0f qps, query products on both surfaces agree, metrics counted\n",
		workers*probesPer, qps)
}

// frontSmoke is the CI gate for the replicated tier's probe front: it fans
// hedged probes across a live replica fleet (FTC_FRONT_REPLICAS, a
// comma-separated list of binary-listener addresses) and cross-checks a
// sample of answers against the primary's JSON surface (FTCSERVE_HTTP).
func frontSmoke() {
	httpBase := os.Getenv("FTCSERVE_HTTP")
	replicaList := os.Getenv("FTC_FRONT_REPLICAS")
	if httpBase == "" || replicaList == "" {
		fmt.Fprintln(os.Stderr, "ftcbench frontsmoke: set FTCSERVE_HTTP (primary, e.g. http://127.0.0.1:8337) and FTC_FRONT_REPLICAS (e.g. 127.0.0.1:8348,127.0.0.1:8358)")
		os.Exit(2)
	}
	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ftcbench frontsmoke: "+format+"\n", args...)
		os.Exit(1)
	}
	addrs := strings.Split(replicaList, ",")

	var health serve.Healthz
	resp, err := http.Get(httpBase + "/healthz")
	if err != nil {
		die("healthz: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		die("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.N < 2 || health.M < 1 {
		die("healthz reports n=%d m=%d — nothing to probe", health.N, health.M)
	}

	f, err := front.Dial(addrs, front.Options{})
	if err != nil {
		die("dial fleet %v: %v", addrs, err)
	}
	defer f.Close()

	prng := rand.New(rand.NewSource(61))
	nFaults := 1
	if health.MaxFaults < 1 {
		nFaults = 0
	}
	const probes = 200
	for i := 0; i < probes; i++ {
		faults := make([]int, nFaults)
		for j := range faults {
			faults[j] = prng.Intn(health.M)
		}
		pairs := [][2]int{{prng.Intn(health.N), prng.Intn(health.N)}, {prng.Intn(health.N), prng.Intn(health.N)}}
		out, _, err := f.ConnectedBatch(faults, pairs)
		if err != nil {
			die("probe %d: %v", i, err)
		}
		if len(out) != len(pairs) {
			die("probe %d returned %d answers for %d pairs", i, len(out), len(pairs))
		}
		// Cross-check a sample against the primary's JSON surface: the
		// replicas must answer exactly as the primary would.
		if i%40 != 0 {
			continue
		}
		body, _ := json.Marshal(serve.ConnectedRequest{FaultEdges: faults, Pairs: pairs})
		hresp, err := http.Post(httpBase+"/connected", "application/json", bytes.NewReader(body))
		if err != nil {
			die("cross-check probe %d: %v", i, err)
		}
		var conn serve.ConnectedResponse
		if err := json.NewDecoder(hresp.Body).Decode(&conn); err != nil {
			die("cross-check decode (status %d): %v", hresp.StatusCode, err)
		}
		hresp.Body.Close()
		for j := range pairs {
			if conn.Connected[j] != out[j] {
				die("probe %d pair %d: front=%v primary=%v (faults=%v pairs=%v)", i, j, out[j], conn.Connected[j], faults, pairs)
			}
		}
	}

	st := f.Stats()
	if st.Probes != probes {
		die("front counted %d probes, want %d", st.Probes, probes)
	}
	fmt.Printf("frontsmoke ok: %d probes across %d replicas, answers match primary (p50 %v, p99 %v, %d hedges, %d hedge wins)\n",
		probes, f.Replicas(), st.P50, st.P99, st.Hedges, st.HedgeWins)
}

// closedLoop runs totalOps across the given number of client goroutines,
// returning aggregate ops/sec and per-client latency samples (every 16th
// op is timed, so the timer overhead does not distort throughput).
func closedLoop(clients, totalOps int, op func(client, i int, prng *rand.Rand)) (float64, [][]int64) {
	per := totalOps / clients
	lat := make([][]int64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(int64(1000 + c)))
			samples := make([]int64, 0, per/16+1)
			for i := 0; i < per; i++ {
				if i%16 == 0 {
					t0 := time.Now()
					op(c, i, prng)
					samples = append(samples, time.Since(t0).Nanoseconds())
				} else {
					op(c, i, prng)
				}
			}
			lat[c] = samples
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(per*clients) / elapsed.Seconds(), lat
}

// latPercentiles merges per-client latency samples and returns p50/p99,
// sorting once (the sample counts here are far past what percentile()'s
// small-slice insertion sort is for).
func latPercentiles(lat [][]int64) (p50, p99 int64) {
	var all []int64
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all[int(0.5*float64(len(all)-1))], all[int(0.99*float64(len(all)-1))]
}

// snapshotLoadBench builds one scheme and times ftc.Load on its v2 (eager)
// and v3 (lazy) snapshot encodings, then proves lazy equality: every label
// of the v3-loaded scheme, decoded on first touch, marshals byte-identical
// to the v2-loaded scheme's.
func snapshotLoadBench(n, f int) loadSnapshotRecord {
	rng := rand.New(rand.NewSource(int64(n)))
	g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
	sch, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(f))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: snapshot build: %v\n", err)
		os.Exit(1)
	}
	v2, err := sch.Inner().MarshalBinaryVersion(2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: marshal v2: %v\n", err)
		os.Exit(1)
	}
	v3, err := sch.Inner().MarshalBinaryVersion(3)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: marshal v3: %v\n", err)
		os.Exit(1)
	}
	timeLoad := func(data []byte, reps int) (*ftc.LoadedScheme, int64) {
		var best int64
		var loaded *ftc.LoadedScheme
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			l, err := ftc.LoadBytes(data)
			d := time.Since(t0).Nanoseconds()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ftcbench: load: %v\n", err)
				os.Exit(1)
			}
			if r == 0 || d < best {
				best = d
			}
			loaded = l
		}
		return loaded, best
	}
	eager, v2ns := timeLoad(v2, 3)
	lazy, v3ns := timeLoad(v3, 5)
	verified := true
	for v := 0; v < g.N() && verified; v++ {
		verified = bytes.Equal(ftc.MarshalVertexLabel(eager.VertexLabel(v)), ftc.MarshalVertexLabel(lazy.VertexLabel(v)))
	}
	for e := 0; e < g.M() && verified; e++ {
		verified = bytes.Equal(ftc.MarshalEdgeLabel(eager.EdgeLabelByIndex(e)), ftc.MarshalEdgeLabel(lazy.EdgeLabelByIndex(e)))
	}
	return loadSnapshotRecord{
		N: n, M: g.M(), F: f,
		V2Bytes: len(v2), V3Bytes: len(v3),
		V2LoadNs: v2ns, V3LoadNs: v3ns,
		Speedup:        float64(v2ns) / float64(v3ns),
		LabelsVerified: verified,
	}
}

// ----------------------------------------------------------------- update

// updateRecord is one cell of the dynamic-update grid (E17): the cost of
// maintaining the labeling under topology churn, against the cost of
// rebuilding the world.
type updateRecord struct {
	Scheme        string  `json:"scheme"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	F             int     `json:"f"`
	RebuildNs     int64   `json:"full_rebuild_ns"`
	AddCommitNs   int64   `json:"incremental_add_commit_ns"`
	RemCommitNs   int64   `json:"incremental_remove_commit_ns"`
	Batch8Ns      int64   `json:"incremental_batch8_commit_ns"`
	RelabeledAvg  float64 `json:"relabeled_edges_avg"`
	Speedup       float64 `json:"speedup_add_vs_rebuild"`
	HTTPUpdateNs  int64   `json:"http_update_ns,omitempty"`
	HTTPRebasedOK bool    `json:"http_cache_rebased,omitempty"`
}

// addableEdges returns up to want absent same-component edges with
// distinct attach vertices (so per-vertex headroom is not the bottleneck).
func addableEdges(sch *ftc.Scheme, want int, rng *rand.Rand) [][2]int {
	g := sch.Graph()
	forest := sch.Inner().Forest
	used := map[int]bool{}
	var out [][2]int
	for try := 0; try < 50000 && len(out) < want; try++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u > v {
			u, v = v, u
		}
		if u == v || g.HasEdge(u, v) || forest.Comp[u] != forest.Comp[v] || used[u] {
			continue
		}
		used[u] = true
		out = append(out, [2]int{u, v})
	}
	return out
}

// updateBench measures the dynamic-network update path (E17): per-kind and
// per-size, the latency of a single-edge incremental commit (insert and
// delete) and of an 8-edge batch, against a full rebuild of the same
// graph; then a smoke pass over the served POST /update path. With -json
// it writes BENCH_update.json. The acceptance bar tracked PR over PR:
// single-edge incremental commit ≥ 10× faster than full rebuild at
// n=1024, f=3 for det-netfind.
func updateBench() {
	const f = 3
	fmt.Println("E17 — dynamic updates: incremental commit vs full rebuild (seeded graphs p=8/n)")
	fmt.Printf("   %-12s %6s %6s %3s %12s %12s %12s %12s %9s %9s\n",
		"scheme", "n", "m", "f", "rebuild", "add-commit", "rem-commit", "batch8", "dirty", "speedup")
	kinds := []struct {
		name string
		opts []ftc.Option
	}{
		{"det-netfind", []ftc.Option{ftc.WithDeterministic()}},
		{"rand-rs", []ftc.Option{ftc.WithRandomized(17)}},
		{"agm", []ftc.Option{ftc.WithAGM(17)}},
	}
	var records []updateRecord
	for _, kr := range kinds {
		for _, n := range []int{256, 1024, 4096} {
			rng := rand.New(rand.NewSource(int64(n)))
			g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
			edges := make([][2]int, g.M())
			for i, e := range g.Edges {
				edges[i] = [2]int{e.U, e.V}
			}
			opts := append([]ftc.Option{ftc.WithMaxFaults(f), ftc.WithHeadroom(64)}, kr.opts...)

			// Full rebuild cost: the best of a few from-scratch builds.
			reps := 3
			if n >= 4096 {
				reps = 1
			}
			var rebuild time.Duration
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				if _, err := ftc.New(n, edges, opts...); err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: update build %s n=%d: %v\n", kr.name, n, err)
					os.Exit(1)
				}
				if d := time.Since(t0); r == 0 || d < rebuild {
					rebuild = d
				}
			}

			nw, err := ftc.Open(n, edges, opts...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ftcbench: update open %s n=%d: %v\n", kr.name, n, err)
				os.Exit(1)
			}
			commit := func(add, rem [][2]int) (time.Duration, *ftc.CommitReport) {
				t0 := time.Now()
				rep, err := nw.CommitBatch(add, rem)
				d := time.Since(t0)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: update commit: %v\n", err)
					os.Exit(1)
				}
				if !rep.Incremental {
					fmt.Fprintf(os.Stderr, "ftcbench: commit fell back to rebuild (%s) — grid assumes the incremental path\n", rep.Reason)
					os.Exit(1)
				}
				return d, rep
			}
			// Measure single-edge insert commits (median of 5), then delete
			// the same edges back (median of 5), then one 8-edge batch.
			cand := addableEdges(nw.Snapshot(), 13, rng)
			if len(cand) < 13 {
				fmt.Fprintf(os.Stderr, "ftcbench: update: only %d candidate edges at n=%d\n", len(cand), n)
				os.Exit(1)
			}
			var addDur, remDur []time.Duration
			var dirty int
			for i := 0; i < 5; i++ {
				d, rep := commit([][2]int{cand[i]}, nil)
				addDur = append(addDur, d)
				dirty += len(rep.Relabeled)
			}
			for i := 0; i < 5; i++ {
				d, _ := commit(nil, [][2]int{cand[i]})
				remDur = append(remDur, d)
			}
			batch8, _ := commit(cand[5:13], nil)

			rec := updateRecord{
				Scheme:       kr.name,
				N:            n,
				M:            g.M(),
				F:            f,
				RebuildNs:    rebuild.Nanoseconds(),
				AddCommitNs:  median(addDur).Nanoseconds(),
				RemCommitNs:  median(remDur).Nanoseconds(),
				Batch8Ns:     batch8.Nanoseconds(),
				RelabeledAvg: float64(dirty) / 5,
			}
			rec.Speedup = float64(rec.RebuildNs) / float64(rec.AddCommitNs)

			// Serve-path smoke at n=1024: one warm probe, one /update over
			// HTTP (generation bump + selective cache sweep), one probe of
			// the rebased cache entry.
			if n == 1024 {
				srv := serve.NewDynamic(func() serve.Scheme { return nw.Snapshot() }, nw, 16)
				ts := httptest.NewServer(srv.Handler())
				probeBody, _ := json.Marshal(serve.ConnectedRequest{
					FaultEdges: []int{0, 1},
					Pairs:      [][2]int{{0, 1}, {2, 3}},
				})
				postOK := func(path string, body []byte) []byte {
					resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
					if err != nil {
						fmt.Fprintf(os.Stderr, "ftcbench: update smoke %s: %v\n", path, err)
						os.Exit(1)
					}
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fmt.Fprintf(os.Stderr, "ftcbench: update smoke %s: status %d: %s\n", path, resp.StatusCode, data)
						os.Exit(1)
					}
					return data
				}
				postOK("/connected", probeBody)
				extra := addableEdges(nw.Snapshot(), 1, rng)
				upBody, _ := json.Marshal(serve.UpdateRequest{Add: extra})
				t0 := time.Now()
				raw := postOK("/update", upBody)
				rec.HTTPUpdateNs = time.Since(t0).Nanoseconds()
				var up serve.UpdateResponse
				if err := json.Unmarshal(raw, &up); err != nil {
					fmt.Fprintf(os.Stderr, "ftcbench: update smoke: %v\n", err)
					os.Exit(1)
				}
				rec.HTTPRebasedOK = up.CacheRebased > 0
				postOK("/connected", probeBody)
				ts.Close()
			}

			records = append(records, rec)
			fmt.Printf("   %-12s %6d %6d %3d %12s %12s %12s %12s %9.1f %8.0fx\n",
				rec.Scheme, rec.N, rec.M, rec.F,
				round(time.Duration(rec.RebuildNs)), round(time.Duration(rec.AddCommitNs)),
				round(time.Duration(rec.RemCommitNs)), round(time.Duration(rec.Batch8Ns)),
				rec.RelabeledAvg, rec.Speedup)
		}
	}
	fmt.Println("   (rebuild = full from-scratch construction of the same graph; add/rem-commit =")
	fmt.Println("    one-edge incremental Commit incl. COW publish; dirty = labels rewritten per commit)")
	if !jsonOut {
		return
	}
	doc := struct {
		Benchmark string         `json:"benchmark"`
		Note      string         `json:"note"`
		Results   []updateRecord `json:"results"`
	}{
		Benchmark: "ftc.Network.Commit",
		Note: "full_rebuild_ns is a from-scratch ftc.New of the mutated graph (what serving a " +
			"topology change cost before the dynamic-network API); incremental_*_commit_ns is " +
			"ftc.Network.Commit on the incremental path, including the copy-on-write publish of " +
			"the new generation. http_update_ns is the served POST /update path (commit + " +
			"selective fault-set cache sweep). Acceptance bar: speedup_add_vs_rebuild ≥ 10 at " +
			"n=1024 f=3 det-netfind. Regenerated by `ftcbench update -json`. Wall times on " +
			"shared hardware are noisy — compare like-for-like runs.",
		Results: records,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: marshal BENCH_update.json: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile("BENCH_update.json", data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: write BENCH_update.json: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("   wrote BENCH_update.json")
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// ------------------------------------------------------------------ util

func round(d time.Duration) string {
	switch {
	case d > time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d > time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d > time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	default:
		return d.String()
	}
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// -------------------------------------------------------------- replicate

// replicateRecord is the "replication" entry of BENCH_serve.json: the
// replicated-tier scenario — log shipping under load, replica kill/restart
// catch-up, and the hedged probe front's tail latency against a straggler.
type replicateRecord struct {
	N              int   `json:"n"`
	M              int   `json:"m"`
	F              int   `json:"f"`
	Replicas       int   `json:"replicas"`
	GensShipped    int   `json:"generations_shipped"`
	CatchupGens    int   `json:"catchup_generations"`
	CatchupMs      int64 `json:"catchup_ms"`
	SnapshotLoads  int64 `json:"snapshot_loads_during_catchup"`
	FinalLagGens   int64 `json:"final_lag_generations"`
	ProbesPerMode  int   `json:"probes_per_mode"`
	UnhedgedP99Ns  int64 `json:"unhedged_p99_ns"`
	HedgedP99Ns    int64 `json:"hedged_p99_ns"`
	Hedges         int64 `json:"hedges"`
	HedgeWins      int64 `json:"hedge_wins"`
	StragglerStall int64 `json:"straggler_stall_ns"`

	// Phase 4 — retention/compaction: the bounded-log scenario.
	RetainedRecords  int    `json:"genlog_retained_records"`
	GenlogFileBytes  int64  `json:"genlog_file_bytes"`
	Compactions      uint64 `json:"genlog_compactions"`
	BytesReclaimed   uint64 `json:"genlog_bytes_reclaimed"`
	CheckpointGen    uint64 `json:"genlog_checkpoint_generation"`
	CompactCatchupMs int64  `json:"compaction_catchup_ms"`
	CompactRefetches int64  `json:"compaction_snapshot_refetches"`
}

// replicateBench runs the replicated serving tier in-process: a dynamic
// primary with a generation log, two tailing replicas, and the hedged
// probe front. Phase 1 ships generations under concurrent probe load;
// phase 2 kills one replica, commits more generations, restarts it, and
// times log-only catch-up (no snapshot refetch); phase 3 measures the
// front's p99 with one replica stalled behind a slow proxy, hedged vs
// unhedged. With -json the record merges into BENCH_serve.json under
// "replication", preserving the serve section's keys.
func replicateBench() {
	const (
		n = 192
		f = 3
	)
	gens, probes := 24, 300
	if smokeMode {
		gens, probes = 8, 60
	}
	fmt.Println("E20 — replicated tier: genlog shipping, replica catch-up, hedged front")

	rng := rand.New(rand.NewSource(40))
	g := workload.ErdosRenyi(n, 8.0/n, true, rng)
	edges := make([][2]int, g.M())
	for i, e := range g.Edges {
		edges[i] = [2]int{e.U, e.V}
	}
	nw, err := ftc.Open(n, edges, ftc.WithMaxFaults(f), ftc.WithHeadroom(64))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate open: %v\n", err)
		os.Exit(1)
	}
	primary := serve.NewDynamic(func() serve.Scheme { return nw.Snapshot() }, nw, 64)
	dir, err := os.MkdirTemp("", "ftcbench-replicate")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate tmp: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	glog, err := genlog.Open(dir + "/gen.log")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate genlog: %v\n", err)
		os.Exit(1)
	}
	defer glog.Close()
	if err := primary.AttachGenLog(glog); err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate attach: %v\n", err)
		os.Exit(1)
	}
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate listen: %v\n", err)
		os.Exit(1)
	}
	go primary.ServeBin(binLn)
	defer binLn.Close()
	primary.SetBinAddr(binLn.Addr().String())
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()

	newReplica := func() *serve.Replicator {
		rep, err := serve.NewReplicator(ts.URL, serve.ReplicatorOptions{
			CacheSize:       64,
			RedialBase:      2 * time.Millisecond,
			RedialMax:       20 * time.Millisecond,
			SnapRefetchBase: 10 * time.Millisecond,
			SnapRefetchMax:  100 * time.Millisecond,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: replicate replica: %v\n", err)
			os.Exit(1)
		}
		if err := rep.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: replicate replica: %v\n", err)
			os.Exit(1)
		}
		return rep
	}
	serveReplicaBin := func(rep *serve.Replicator) (string, net.Listener) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: replicate listen: %v\n", err)
			os.Exit(1)
		}
		go rep.Server().ServeBin(ln)
		return ln.Addr().String(), ln
	}
	rep1, rep2 := newReplica(), newReplica()
	defer rep1.Stop()
	defer rep2.Stop()
	addr1, ln1 := serveReplicaBin(rep1)
	addr2, ln2 := serveReplicaBin(rep2)
	defer ln1.Close()
	defer ln2.Close()

	commitOne := func() bool {
		inner := nw.Snapshot().Inner()
		cg, forest := inner.Graph(), inner.Forest
		var add, remove [][2]int
		for try := 0; try < 300; try++ {
			u, v := rng.Intn(cg.N()), rng.Intn(cg.N())
			if u != v && !cg.HasEdge(u, v) && forest.Comp[u] == forest.Comp[v] {
				add = append(add, [2]int{u, v})
				break
			}
		}
		for try := 0; try < 300; try++ {
			e := rng.Intn(cg.M())
			if !forest.IsTreeEdge[e] {
				remove = append(remove, [2]int{cg.Edges[e].U, cg.Edges[e].V})
				break
			}
		}
		if len(add) == 0 && len(remove) == 0 {
			return false
		}
		// Commit through POST /update — the path that appends to the
		// generation log — not the network directly.
		body, _ := json.Marshal(serve.UpdateRequest{Add: add, Remove: remove})
		resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: replicate commit: %v\n", err)
			os.Exit(1)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "ftcbench: replicate commit: status %d\n", resp.StatusCode)
			os.Exit(1)
		}
		return true
	}
	waitReplica := func(rep *serve.Replicator) {
		want := nw.Generation()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if rep.Scheme().Generation() >= want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		fmt.Fprintf(os.Stderr, "ftcbench: replicate: replica stuck at %d, primary %d\n",
			rep.Scheme().Generation(), want)
		os.Exit(1)
	}

	// Phase 1: ship generations while the front keeps probing.
	fr, err := front.Dial([]string{addr1, addr2}, front.Options{NoHedge: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate front: %v\n", err)
		os.Exit(1)
	}
	shipped := 0
	for i := 0; i < gens; i++ {
		if commitOne() {
			shipped++
		}
		cg := nw.Snapshot().Graph()
		faults := workload.RandomFaults(cg, 1+rng.Intn(f), rng)
		if _, _, err := fr.ConnectedBatch(faults, [][2]int{{rng.Intn(n), rng.Intn(n)}}); err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: replicate probe: %v\n", err)
			os.Exit(1)
		}
	}
	waitReplica(rep1)
	waitReplica(rep2)
	fr.Close()
	fmt.Printf("   shipped %d generations to 2 replicas (log %d records)\n", shipped, glog.Len())

	// Phase 2: kill replica 2, drift the primary, restart, time catch-up.
	// The incremental path has a churn budget (hierarchy.UpdateBudget):
	// crossing it forces a full rebuild, which ships as a marker that
	// legitimately sends replicas back to /snapshot. Phase 2 asserts
	// log-only catch-up, so it stays inside the remaining budget.
	budget := hierarchy.UpdateBudget(nw.Snapshot().Inner().Spec().K)
	loadsBefore := rep2.Status().SnapshotLoads
	rep2.Stop()
	catchupGens := 0
	for i := 0; i < gens/2 && nw.Churn()+2 <= budget; i++ {
		if commitOne() {
			catchupGens++
		}
	}
	if catchupGens == 0 {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate: churn budget exhausted before the kill/restart phase (shrink gens)\n")
		os.Exit(1)
	}
	t0 := time.Now()
	if err := rep2.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate restart: %v\n", err)
		os.Exit(1)
	}
	waitReplica(rep2)
	catchup := time.Since(t0)
	loadsAfter := rep2.Status().SnapshotLoads
	if loadsAfter != loadsBefore {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate: restart refetched a snapshot (%d -> %d)\n",
			loadsBefore, loadsAfter)
		os.Exit(1)
	}
	fmt.Printf("   kill/restart: caught up %d generations in %s from the log alone (snapshot loads unchanged)\n",
		catchupGens, round(catchup))

	// Phase 3: tail latency with one replica stalled, hedged vs unhedged.
	const stall = 25 * time.Millisecond
	slowAddr := slowBinProxy(addr2, stall)
	measure := func(opts front.Options) (p99 time.Duration, st front.Stats) {
		fr, err := front.Dial([]string{slowAddr, addr1}, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: replicate front: %v\n", err)
			os.Exit(1)
		}
		defer fr.Close()
		cg := nw.Snapshot().Graph()
		lats := make([]time.Duration, 0, probes)
		prng := rand.New(rand.NewSource(41))
		for i := 0; i < probes; i++ {
			faults := workload.RandomFaults(cg, 1, prng)
			t := time.Now()
			if _, _, err := fr.ConnectedBatch(faults, [][2]int{{prng.Intn(n), prng.Intn(n)}}); err != nil {
				fmt.Fprintf(os.Stderr, "ftcbench: replicate probe: %v\n", err)
				os.Exit(1)
			}
			lats = append(lats, time.Since(t))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)*99/100], fr.Stats()
	}
	unhedgedP99, _ := measure(front.Options{NoHedge: true})
	hedgedP99, hst := measure(front.Options{HedgeAfter: 2 * time.Millisecond})
	fmt.Printf("   straggler (%s stall): p99 unhedged %s vs hedged %s (%d hedges, %d wins)\n",
		round(stall), round(unhedgedP99), round(hedgedP99), hst.Hedges, hst.HedgeWins)
	fmt.Println("   (single-CPU caveat: hedging adds goroutines; its p99 win is only")
	fmt.Println("    representative when replicas have their own cores — see README)")

	// Phase 4: retention + compaction. Enable the policy, stop replica 1,
	// churn the primary across at least two compaction boundaries (so the
	// stopped replica falls below the retained window), restart it, and
	// time convergence through checkpoint + CodeGone-triggered snapshot
	// refetch — the bounded-log acceptance path.
	glog.SetRetention(genlog.Retention{MaxRecords: 6, MinRetain: 2})
	loads1Before := rep1.Status().SnapshotLoads
	rep1.Stop()
	genAtStop := rep1.Scheme().Generation()
	compactBefore := glog.Stats().Compactions
	for i := 0; i < 8*gens; i++ {
		st := glog.Stats()
		if st.Compactions >= compactBefore+2 && genAtStop+1 < st.FirstGen {
			break
		}
		commitOne()
	}
	lst := glog.Stats()
	if lst.Compactions < compactBefore+2 || genAtStop+1 >= lst.FirstGen {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate: could not push the stopped replica below the retained window (window [%d,%d], %d compactions)\n",
			lst.FirstGen, lst.LastGen, lst.Compactions-compactBefore)
		os.Exit(1)
	}
	t1 := time.Now()
	if err := rep1.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate restart: %v\n", err)
		os.Exit(1)
	}
	waitReplica(rep1)
	compactCatchup := time.Since(t1)
	compactRefetches := int64(rep1.Status().SnapshotLoads - loads1Before)
	if compactRefetches == 0 {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate: replica below the retained window converged without a snapshot refetch\n")
		os.Exit(1)
	}
	waitReplica(rep2) // rep2 tailed (or refetched) through the same churn
	fmt.Printf("   compaction: %d compactions reclaimed %d bytes, window bounded at %d records (%d bytes on disk, checkpoint gen %d);\n",
		lst.Compactions, lst.BytesReclaimed, lst.Records, lst.FileBytes, lst.CheckpointGen)
	fmt.Printf("   fell-behind replica converged in %s via %d snapshot refetch(es)\n",
		round(compactCatchup), compactRefetches)

	if !jsonOut {
		return
	}
	rec := replicateRecord{
		N:              n,
		M:              g.M(),
		F:              f,
		Replicas:       2,
		GensShipped:    shipped,
		CatchupGens:    catchupGens,
		CatchupMs:      catchup.Milliseconds(),
		SnapshotLoads:  int64(loadsAfter - loadsBefore),
		FinalLagGens:   int64(rep2.Status().LagGenerations()),
		ProbesPerMode:  probes,
		UnhedgedP99Ns:  unhedgedP99.Nanoseconds(),
		HedgedP99Ns:    hedgedP99.Nanoseconds(),
		Hedges:         int64(hst.Hedges),
		HedgeWins:      int64(hst.HedgeWins),
		StragglerStall: stall.Nanoseconds(),

		RetainedRecords:  lst.Records,
		GenlogFileBytes:  lst.FileBytes,
		Compactions:      lst.Compactions,
		BytesReclaimed:   lst.BytesReclaimed,
		CheckpointGen:    lst.CheckpointGen,
		CompactCatchupMs: compactCatchup.Milliseconds(),
		CompactRefetches: compactRefetches,
	}
	mergeBenchServe(func(doc map[string]json.RawMessage) {
		raw, err := json.Marshal(rec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftcbench: marshal replication record: %v\n", err)
			os.Exit(1)
		}
		doc["replication"] = raw
	})
}

// slowBinProxy forwards a TCP stream to backend, stalling every
// backend-to-client write — an in-process straggling replica for the
// hedging measurement.
func slowBinProxy(backend string, stall time.Duration) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftcbench: replicate proxy: %v\n", err)
		os.Exit(1)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				continue
			}
			go func() { io.Copy(up, c); up.Close() }()
			go func() {
				defer c.Close()
				buf := make([]byte, 32<<10)
				for {
					n, err := up.Read(buf)
					if n > 0 {
						time.Sleep(stall)
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}
