package main

// E22 — the chaos harness: a full in-process serving tier (primary with a
// generation log, two tailing replicas with HTTP + binary listeners, a
// self-healing front) driven through a seeded fault schedule — injected
// connection resets, snapshot-stream failures, fsync latency, and a
// replica kill/restart — while every answer the front returns is checked
// against a per-generation oracle. The invariant under test is the one
// DESIGN.md §3.16 promises: faults may slow or shed requests, but a
// served answer is always exactly correct for the generation the server
// reports. Fault policies that would corrupt the live primary's log
// (error/torn-write on genlog.append) are deliberately absent from the
// schedule — a published generation whose record is missing wedges
// replication permanently; crash-atomicity of the log itself is covered
// by a separate torn-write sub-check on a scratch log.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	ftc "repro"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/serve/front"
	"repro/internal/serve/genlog"
	"repro/internal/workload"
)

// chaosSeed drives the whole schedule: workload, fault points, kill
// timing. CI runs two fixed seeds.
var chaosSeed int64 = 1

func chaosFatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "ftcbench: chaos: "+format+"\n", a...)
	os.Exit(1)
}

// chaosReplica is one replica "process": the Replicator plus its two
// listeners, restartable on the same addresses so the front's fixed
// membership view sees the same backend come back.
type chaosReplica struct {
	rep      *serve.Replicator
	binAddr  string
	httpAddr string

	mu      sync.Mutex
	binLn   *trackedListener
	httpSrv *http.Server
}

// trackedListener records accepted connections so a simulated process
// kill can sever live connections, not just stop accepting — a closed
// listener alone leaves established conns serving, and the front would
// never see the backend die.
type trackedListener struct {
	net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func (t *trackedListener) Accept() (net.Conn, error) {
	c, err := t.Listener.Accept()
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.conns == nil {
		t.conns = make(map[net.Conn]struct{})
	}
	t.conns[c] = struct{}{}
	t.mu.Unlock()
	return c, nil
}

func (t *trackedListener) CloseAll() {
	t.Listener.Close()
	t.mu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.conns = nil
	t.mu.Unlock()
}

func (r *chaosReplica) start(binAddr, httpAddr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	bln, err := net.Listen("tcp", binAddr)
	if err != nil {
		chaosFatalf("replica bin listen %s: %v", binAddr, err)
	}
	hln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		chaosFatalf("replica http listen %s: %v", httpAddr, err)
	}
	r.binLn = &trackedListener{Listener: bln}
	r.binAddr = bln.Addr().String()
	r.httpAddr = hln.Addr().String()
	r.httpSrv = &http.Server{Handler: r.rep.Server().Handler()}
	go r.rep.Server().ServeBin(r.binLn)
	go r.httpSrv.Serve(hln)
}

// kill simulates the process dying: stop the tail, sever every live
// connection on both surfaces, free the ports for the restart.
func (r *chaosReplica) kill() {
	r.rep.Stop()
	r.mu.Lock()
	binLn, httpSrv := r.binLn, r.httpSrv
	r.mu.Unlock()
	if httpSrv != nil {
		httpSrv.Close()
	}
	if binLn != nil {
		binLn.CloseAll()
	}
}

func (r *chaosReplica) restart() {
	r.start(r.binAddr, r.httpAddr)
	if err := r.rep.Start(); err != nil {
		chaosFatalf("replica restart: %v", err)
	}
}

// chaosTornWrite is the crash-atomicity sub-check that must never run
// against a live log: a torn append on a scratch genlog, then reopen and
// verify the clean prefix survived and the log accepts appends again.
func chaosTornWrite(dir string) int {
	g := workload.Petersen()
	d, err := core.NewDynamic(g.Clone(), core.Params{MaxFaults: 2, Kind: core.KindDetNetFind})
	if err != nil {
		chaosFatalf("torn-write dynamic: %v", err)
	}
	var deltas []*core.GenDelta
	for _, batch := range [][]core.Update{
		{{Add: true, U: 0, V: 2}, {Add: true, U: 1, V: 3}},
		{{U: 0, V: 2}},
		{{Add: true, U: 0, V: 2}},
	} {
		_, delta, _, err := d.CommitWithDelta(batch)
		if err != nil || delta == nil {
			chaosFatalf("torn-write commit: delta=%v err=%v", delta, err)
		}
		deltas = append(deltas, delta)
	}
	path := dir + "/scratch.log"
	l, err := genlog.Open(path)
	if err != nil {
		chaosFatalf("torn-write open: %v", err)
	}
	for _, dl := range deltas[:2] {
		if _, err := l.Append(dl); err != nil {
			chaosFatalf("torn-write append: %v", err)
		}
	}
	reg := faultinject.New(chaosSeed)
	if err := reg.Set("genlog.append", "torn-write"); err != nil {
		chaosFatalf("torn-write policy: %v", err)
	}
	faultinject.Arm(reg)
	_, terr := l.Append(deltas[2])
	faultinject.Disarm()
	if terr == nil {
		chaosFatalf("torn-write: append under torn-write failpoint succeeded")
	}
	l.Close()
	l2, err := genlog.Open(path)
	if err != nil {
		chaosFatalf("torn-write reopen: %v", err)
	}
	defer l2.Close()
	if l2.Len() != 2 {
		chaosFatalf("torn-write reopen: %d records, want the 2-record clean prefix", l2.Len())
	}
	if _, err := l2.Append(deltas[2]); err != nil {
		chaosFatalf("torn-write re-append after recovery: %v", err)
	}
	return l2.Len()
}

type chaosRecord struct {
	Seed            int64  `json:"seed"`
	N               int    `json:"n"`
	M               int    `json:"m"`
	F               int    `json:"f"`
	Rounds          int    `json:"rounds"`
	Probes          uint64 `json:"probes"`
	Commits         int    `json:"commits"`
	WrongAnswers    uint64 `json:"wrong_answers"`
	ProbeErrors     uint64 `json:"probe_errors"`
	Ejections       uint64 `json:"ejections"`
	Readmits        uint64 `json:"readmits"`
	Unavailable     uint64 `json:"unavailable_sheds_seen"`
	Failovers       uint64 `json:"failovers"`
	TimeToEjectMs   int64  `json:"time_to_eject_ms"`
	TimeToReadmitMs int64  `json:"time_to_readmit_ms"`
	TornWriteRecs   int    `json:"torn_write_recovered_records"`
}

func chaosBench() {
	const (
		n = 160
		f = 3
	)
	rounds, probesPerRound, pairsPerProbe := 60, 6, 4
	if smokeMode {
		rounds = 24
	}
	fmt.Printf("E22 — chaos: seeded fault injection, membership self-healing, no-wrong-answers (seed %d)\n", chaosSeed)

	dir, err := os.MkdirTemp("", "ftcbench-chaos")
	if err != nil {
		chaosFatalf("tmp: %v", err)
	}
	defer os.RemoveAll(dir)

	tornRecs := chaosTornWrite(dir)
	fmt.Printf("   torn-write: scratch log recovered to %d records after a torn append (crash-atomic)\n", tornRecs)

	// --- cluster ---
	rng := rand.New(rand.NewSource(chaosSeed))
	g := workload.ErdosRenyi(n, 8.0/n, true, rng)
	edges := make([][2]int, g.M())
	for i, e := range g.Edges {
		edges[i] = [2]int{e.U, e.V}
	}
	nw, err := ftc.Open(n, edges, ftc.WithMaxFaults(f), ftc.WithHeadroom(64))
	if err != nil {
		chaosFatalf("open: %v", err)
	}
	primary := serve.NewDynamic(func() serve.Scheme { return nw.Snapshot() }, nw, 64)
	glog, err := genlog.Open(dir + "/gen.log")
	if err != nil {
		chaosFatalf("genlog: %v", err)
	}
	defer glog.Close()
	if err := primary.AttachGenLog(glog); err != nil {
		chaosFatalf("attach: %v", err)
	}
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		chaosFatalf("listen: %v", err)
	}
	go primary.ServeBin(binLn)
	defer binLn.Close()
	primary.SetBinAddr(binLn.Addr().String())
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()

	// The oracle: every generation's graph, recorded before the commit
	// that creates it returns to the driver, so any generation a replica
	// can serve is already checkable. Answers are verified against the
	// generation the server REPORTS, which is exactly the degraded-answer
	// contract: a lagging replica may answer from an older world, but
	// never incorrectly for that world.
	var oracleMu sync.RWMutex
	oracle := map[uint64]*graph.Graph{nw.Generation(): nw.Snapshot().Graph()}
	recordGen := func() {
		oracleMu.Lock()
		oracle[nw.Generation()] = nw.Snapshot().Graph()
		oracleMu.Unlock()
	}

	newReplica := func() *chaosReplica {
		rep, err := serve.NewReplicator(ts.URL, serve.ReplicatorOptions{
			CacheSize:       64,
			RedialBase:      2 * time.Millisecond,
			RedialMax:       50 * time.Millisecond,
			SnapRefetchBase: 5 * time.Millisecond,
			SnapRefetchMax:  100 * time.Millisecond,
		})
		if err != nil {
			chaosFatalf("replicator: %v", err)
		}
		if err := rep.Start(); err != nil {
			chaosFatalf("replica start: %v", err)
		}
		cr := &chaosReplica{rep: rep}
		cr.start("127.0.0.1:0", "127.0.0.1:0")
		return cr
	}
	waitReplica := func(rep *serve.Replicator) {
		want := nw.Generation()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if s := rep.Scheme(); s != nil && s.Generation() >= want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		chaosFatalf("replica stuck below generation %d", want)
	}
	r1, r2 := newReplica(), newReplica()
	defer r1.rep.Stop()
	defer r2.rep.Stop()
	waitReplica(r1.rep)
	waitReplica(r2.rep)

	fr, err := front.Dial([]string{r1.binAddr, r2.binAddr}, front.Options{
		HedgeAfter:     2 * time.Millisecond,
		FailThreshold:  2,
		Probation:      250 * time.Millisecond,
		LagThreshold:   16,
		HealthURLs:     []string{"http://" + r1.httpAddr, "http://" + r2.httpAddr},
		HealthInterval: 50 * time.Millisecond,
		RequestBudget:  5 * time.Second,
		ReconnectBase:  2 * time.Millisecond,
		ReconnectMax:   50 * time.Millisecond,
	})
	if err != nil {
		chaosFatalf("front: %v", err)
	}
	defer fr.Close()

	commits := 0
	commitOne := func() {
		inner := nw.Snapshot().Inner()
		cg, forest := inner.Graph(), inner.Forest
		var add, remove [][2]int
		for try := 0; try < 300; try++ {
			u, v := rng.Intn(cg.N()), rng.Intn(cg.N())
			if u != v && !cg.HasEdge(u, v) && forest.Comp[u] == forest.Comp[v] {
				add = append(add, [2]int{u, v})
				break
			}
		}
		for try := 0; try < 300; try++ {
			e := rng.Intn(cg.M())
			if !forest.IsTreeEdge[e] {
				remove = append(remove, [2]int{cg.Edges[e].U, cg.Edges[e].V})
				break
			}
		}
		if len(add) == 0 && len(remove) == 0 {
			return
		}
		body, _ := json.Marshal(serve.UpdateRequest{Add: add, Remove: remove})
		resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			chaosFatalf("commit: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			chaosFatalf("commit: status %d", resp.StatusCode)
		}
		recordGen()
		commits++
	}

	var probes, wrong, probeErrs atomic.Uint64
	// probeRound fires probesPerRound concurrent probes built against the
	// primary's current graph and verifies each answer against the
	// responder's generation. Transport errors are tolerated (counted);
	// wrong answers are not.
	probeRound := func(seed int64) {
		var wg sync.WaitGroup
		for p := 0; p < probesPerRound; p++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				prng := rand.New(rand.NewSource(seed))
				cg := nw.Snapshot().Graph()
				faults := workload.RandomFaults(cg, 1+prng.Intn(f), prng)
				pairs := make([][2]int, pairsPerProbe)
				for i := range pairs {
					pairs[i] = [2]int{prng.Intn(n), prng.Intn(n)}
				}
				probes.Add(1)
				ans, gen, err := fr.ConnectedBatch(faults, pairs)
				if err != nil {
					probeErrs.Add(1)
					return
				}
				oracleMu.RLock()
				og := oracle[gen]
				oracleMu.RUnlock()
				if og == nil {
					wrong.Add(1)
					fmt.Fprintf(os.Stderr, "ftcbench: chaos: answer from unknown generation %d\n", gen)
					return
				}
				set := map[int]bool{}
				bad := false
				for _, e := range faults {
					if e >= og.M() {
						bad = true // index from a newer graph; server should have rejected it
						break
					}
					set[e] = true
				}
				if bad {
					wrong.Add(1)
					fmt.Fprintf(os.Stderr, "ftcbench: chaos: gen %d served a fault index outside its graph\n", gen)
					return
				}
				for i, pr := range pairs {
					if ans[i] != graph.ConnectedUnder(og, set, pr[0], pr[1]) {
						wrong.Add(1)
						fmt.Fprintf(os.Stderr, "ftcbench: chaos: WRONG ANSWER gen %d faults %v pair %v: got %v\n",
							gen, faults, pr, ans[i])
					}
				}
			}(seed + int64(p)*7919)
		}
		wg.Wait()
	}

	// --- the schedule ---
	armRound, killRound, healRound := rounds/4, rounds/3, 2*rounds/3
	var killAt, restartAt time.Time
	var timeToEject, timeToReadmit time.Duration
	waitBackend := func(idx int, state string, deadline time.Duration) time.Duration {
		t0 := time.Now()
		for time.Since(t0) < deadline {
			if fr.Backends()[idx].State == state {
				return time.Since(t0)
			}
			time.Sleep(2 * time.Millisecond)
		}
		chaosFatalf("backend %d never reached state %q (now %q)", idx, state, fr.Backends()[idx].State)
		return 0
	}

	for step := 0; step < rounds; step++ {
		switch step {
		case armRound:
			// Fault schedule. genlog.append error policies are forbidden on
			// a live primary (see the package comment); fsync gets latency
			// only.
			reg, err := faultinject.Parse(
				"wireclient.conn.read=error-rate:0.03;"+
					"binserver.conn.write=error-rate:0.03;"+
					"snapshot.stream=error-rate:0.3;"+
					"genlog.fsync=latency:2ms", chaosSeed)
			if err != nil {
				chaosFatalf("parse failpoints: %v", err)
			}
			faultinject.Arm(reg)
			fmt.Printf("   round %d: armed conn resets (3%%), snapshot failures (30%%), fsync latency\n", step)
		case killRound:
			r2.kill()
			killAt = time.Now()
			timeToEject = waitBackend(1, "ejected", 10*time.Second)
			fmt.Printf("   round %d: killed replica 2 — ejected after %s\n", step, round(timeToEject))
		case healRound:
			faultinject.Disarm()
			r2.restart()
			restartAt = time.Now()
			timeToReadmit = waitBackend(1, "healthy", 10*time.Second)
			fmt.Printf("   round %d: disarmed faults, restarted replica 2 — readmitted after %s\n", step, round(timeToReadmit))
		}
		if rng.Intn(2) == 0 {
			commitOne()
		}
		probeRound(chaosSeed*1_000_003 + int64(step)*104_729)
	}
	_ = killAt
	_ = restartAt

	// Heal check: both replicas converge to the primary's generation and a
	// final error-free sweep answers correctly everywhere.
	waitReplica(r1.rep)
	waitReplica(r2.rep)
	finalDeadline := time.Now().Add(15 * time.Second)
	for {
		errsBefore, wrongBefore := probeErrs.Load(), wrong.Load()
		probeRound(chaosSeed * 999_983)
		if wrong.Load() != wrongBefore {
			break // reported below
		}
		if probeErrs.Load() == errsBefore {
			break // one fully clean sweep
		}
		if time.Now().After(finalDeadline) {
			chaosFatalf("fleet never produced an error-free sweep after heal")
		}
	}

	st := fr.Stats()
	fmt.Printf("   %d rounds, %d commits, %d probes: %d wrong answers, %d probe errors tolerated\n",
		rounds, commits, probes.Load(), wrong.Load(), probeErrs.Load())
	fmt.Printf("   front: %d ejections, %d readmits, %d failovers, %d sheds seen, %d hedges (%d wins)\n",
		st.Ejections, st.Readmits, st.Failovers, st.Unavailable, st.Hedges, st.HedgeWins)

	if wrong.Load() != 0 {
		chaosFatalf("%d WRONG ANSWERS — the no-wrong-answers invariant is broken", wrong.Load())
	}
	if st.Ejections < 1 {
		chaosFatalf("dead replica was never ejected")
	}
	if st.Readmits < 1 {
		chaosFatalf("restarted replica was never readmitted")
	}

	if !jsonOut {
		return
	}
	rec := chaosRecord{
		Seed:            chaosSeed,
		N:               n,
		M:               g.M(),
		F:               f,
		Rounds:          rounds,
		Probes:          probes.Load(),
		Commits:         commits,
		WrongAnswers:    wrong.Load(),
		ProbeErrors:     probeErrs.Load(),
		Ejections:       st.Ejections,
		Readmits:        st.Readmits,
		Unavailable:     st.Unavailable,
		Failovers:       st.Failovers,
		TimeToEjectMs:   timeToEject.Milliseconds(),
		TimeToReadmitMs: timeToReadmit.Milliseconds(),
		TornWriteRecs:   tornRecs,
	}
	mergeBenchServe(func(doc map[string]json.RawMessage) {
		raw, err := json.Marshal(rec)
		if err != nil {
			chaosFatalf("marshal chaos record: %v", err)
		}
		doc[fmt.Sprintf("chaos_seed%d", chaosSeed)] = raw
	})
}
