// Command congestsim runs the distributed label construction of §8 on the
// CONGEST simulator and prints a per-phase round budget (Theorem 3):
//
//	congestsim [topology] [sketch-chunks]
//
// where topology is one of grid, torus, er, hypercube (default: a sweep of
// all four) and sketch-chunks scales the outdetect aggregation width (the f²
// term; default 16).
package main

import (
	"fmt"
	"math"
	"os"
	"strconv"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/workload"

	"math/rand"
)

func main() {
	topo := "all"
	chunks := 16
	if len(os.Args) > 1 {
		topo = os.Args[1]
	}
	if len(os.Args) > 2 {
		c, err := strconv.Atoi(os.Args[2])
		if err != nil || c < 1 {
			fmt.Fprintf(os.Stderr, "bad sketch-chunks %q\n", os.Args[2])
			os.Exit(2)
		}
		chunks = c
	}
	rng := rand.New(rand.NewSource(1))
	graphs := map[string]*graph.Graph{
		"grid":      workload.Grid(16, 16),
		"torus":     workload.Torus(12, 12),
		"er":        workload.ErdosRenyi(200, 0.05, true, rng),
		"hypercube": workload.Hypercube(8),
	}
	names := []string{"grid", "torus", "er", "hypercube"}
	if topo != "all" {
		if _, ok := graphs[topo]; !ok {
			fmt.Fprintf(os.Stderr, "usage: congestsim [grid|torus|er|hypercube|all] [sketch-chunks]\n")
			os.Exit(2)
		}
		names = []string{topo}
	}
	fmt.Printf("CONGEST construction (Theorem 3): per-phase rounds, message budget enforced\n\n")
	fmt.Printf("%-10s %6s %6s %4s | %6s %6s %6s %8s %7s %7s | %9s %8s\n",
		"topology", "n", "m", "D", "bfs", "sizes", "anc", "netfind", "sketch", "total", "√m·D+f²", "maxmsg")
	for _, name := range names {
		g := graphs[name]
		net := congest.NewNet(g)
		rep, _, _, _, err := congest.BuildLabels(net, 0, chunks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		bound := int(math.Sqrt(float64(g.M()))*float64(rep.Depth)) + chunks
		fmt.Printf("%-10s %6d %6d %4d | %6d %6d %6d %8d %7d %7d | %9d %5db/%db\n",
			name, g.N(), g.M(), rep.Depth,
			rep.BFSRounds, rep.SizeRounds, rep.AncestryRounds,
			rep.HierarchyRounds, rep.SketchRounds, rep.TotalRounds,
			bound, rep.MaxMessageBits, net.BudgetBits)
	}
}
