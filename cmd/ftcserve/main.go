// Command ftcserve is the probe-serving daemon: it loads a scheme snapshot
// (or builds one from a graph file) and answers batched s–t connectivity
// probes over HTTP, caching compiled fault sets in an LRU so repeated
// probes of one failure event hit the zero-alloc steady-state path.
//
//	ftcserve -snapshot scheme.ftcsnap [-addr :8337] [-cache 256]
//	ftcserve -graph g.txt [-f 3] [-scheme det|greedy|rand|agm] [-seed 1] [-save scheme.ftcsnap]
//	ftcserve -graph g.txt -dynamic [-headroom 8]
//
// Endpoints:
//
//	POST /connected  {"faults":[[2,3]], "fault_edges":[7], "pairs":[[0,5],[1,4]]}
//	                 → {"connected":[true,false], "faults":2, "cache_hit":false, "generation":1}
//	POST /update     {"add":[[0,9]], "remove":[[2,3]]}   (-dynamic only)
//	                 → {"generation":2, "incremental":true, "relabeled":5, ...}
//	GET  /healthz    liveness, scheme shape, and generation
//	GET  /stats      serving and cache counters
//
// Faults may be given as [u,v] endpoint pairs or as edge indices (the
// insertion order of the graph); both forms of the same failure event share
// one cache entry. On a dynamic server edge indices are generation-scoped
// (an update that removes an edge shifts higher indices down); clients
// holding indices across updates should pin them by adding
// "generation": <g> to the probe, which is rejected with 409 when stale.
// With -dynamic the daemon serves a mutable ftc.Network:
// each /update batch commits a new generation — incrementally relabeling
// only what the batch dirties when it can — and evicts only the cached
// fault sets that contain a relabeled edge. The "one build, many decoders"
// pattern is: build once, -save the snapshot, then start any number of
// ftcserve replicas from it.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener closes
// immediately and in-flight batch probes drain for up to 10 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	ftc "repro"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	snapshot := flag.String("snapshot", "", "scheme snapshot to load (from ftcserve -save or ftc.Save)")
	graphPath := flag.String("graph", "", "graph file to build a scheme from (alternative to -snapshot)")
	f := flag.Int("f", 2, "fault budget when building from -graph")
	schemeKind := flag.String("scheme", "det", "det|greedy|rand|agm (with -graph)")
	seed := flag.Int64("seed", 1, "seed for randomized schemes (with -graph)")
	savePath := flag.String("save", "", "write the built scheme's snapshot here (with -graph)")
	cacheSize := flag.Int("cache", 256, "compiled fault-set LRU capacity")
	dynamic := flag.Bool("dynamic", false, "serve a mutable network with POST /update (with -graph)")
	headroom := flag.Int("headroom", 0, "per-vertex incremental insertion headroom (with -dynamic; 0 = default)")
	flag.Parse()

	srv, err := openServer(*snapshot, *graphPath, *f, *schemeKind, *seed, *savePath, *cacheSize, *dynamic, *headroom)
	if err != nil {
		log.Fatalf("ftcserve: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("listening on %s", *addr)

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, drain in-flight
	// batch probes, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("ftcserve: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("shutting down: draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("ftcserve: forced shutdown: %v", err)
			_ = httpSrv.Close()
		}
	}
	log.Printf("bye")
}

func schemeOptions(f int, kind string, seed int64, headroom int) ([]ftc.Option, error) {
	opts := []ftc.Option{ftc.WithMaxFaults(f)}
	switch kind {
	case "det":
		opts = append(opts, ftc.WithDeterministic())
	case "greedy":
		opts = append(opts, ftc.WithGreedyNet())
	case "rand":
		opts = append(opts, ftc.WithRandomized(seed))
	case "agm":
		opts = append(opts, ftc.WithAGM(seed))
	default:
		return nil, fmt.Errorf("unknown scheme %q", kind)
	}
	if headroom > 0 {
		opts = append(opts, ftc.WithHeadroom(headroom))
	}
	return opts, nil
}

func openServer(snapshot, graphPath string, f int, kind string, seed int64, savePath string, cacheSize int, dynamic bool, headroom int) (*serve.Server, error) {
	switch {
	case snapshot != "" && graphPath != "":
		return nil, fmt.Errorf("-snapshot and -graph are mutually exclusive")
	case snapshot != "" && savePath != "":
		return nil, fmt.Errorf("-save only applies when building from -graph")
	case dynamic && graphPath == "":
		return nil, fmt.Errorf("-dynamic requires -graph (a snapshot is a frozen generation)")
	case snapshot != "":
		in, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer in.Close()
		sch, err := ftc.Load(in)
		if err != nil {
			return nil, err
		}
		banner(sch.Stats(), sch.Graph(), sch.MaxFaults(), false)
		return serve.New(sch, cacheSize), nil
	case graphPath != "":
		in, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer in.Close()
		g, err := graphio.ReadGraph(in)
		if err != nil {
			return nil, err
		}
		opts, err := schemeOptions(f, kind, seed, headroom)
		if err != nil {
			return nil, err
		}
		if dynamic {
			nw, err := ftc.OpenFromGraph(g, opts...)
			if err != nil {
				return nil, err
			}
			if savePath != "" {
				if err := saveSnapshot(nw.Snapshot(), savePath); err != nil {
					return nil, err
				}
			}
			banner(nw.Stats(), nw.Graph(), nw.MaxFaults(), true)
			return serve.NewDynamic(func() serve.Scheme { return nw.Snapshot() }, nw, cacheSize), nil
		}
		sch, err := ftc.NewFromGraph(g, opts...)
		if err != nil {
			return nil, err
		}
		if savePath != "" {
			if err := saveSnapshot(sch, savePath); err != nil {
				return nil, err
			}
		}
		banner(sch.Stats(), sch.Graph(), sch.MaxFaults(), false)
		return serve.New(sch, cacheSize), nil
	default:
		return nil, fmt.Errorf("one of -snapshot or -graph is required")
	}
}

func saveSnapshot(sch *ftc.Scheme, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sch.Save(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	log.Printf("saved snapshot to %s", path)
	return nil
}

func banner(st ftc.Stats, g *graph.Graph, f int, dynamic bool) {
	mode := "static"
	if dynamic {
		mode = "dynamic"
	}
	log.Printf("serving %s %s scheme: n=%d m=%d f=%d (max edge label %d bits)",
		mode, st.Kind, g.N(), g.M(), f, st.MaxEdgeLabelBits)
}
