// Command ftcserve is the probe-serving daemon: it loads a scheme snapshot
// (or builds one from a graph file) and answers batched s–t connectivity
// probes over HTTP, caching compiled fault sets in a sharded LRU so
// repeated probes of one failure event hit the zero-alloc steady-state
// path and concurrent probes of different events scale with cores.
//
//	ftcserve -snapshot scheme.ftcsnap [-addr :8337] [-cache 256] [-cache-shards 16]
//	ftcserve -graph g.txt [-f 3] [-scheme det|greedy|rand|agm] [-seed 1] [-save scheme.ftcsnap]
//	ftcserve -graph g.txt -dynamic [-headroom 8]
//	ftcserve -snapshot scheme.ftcsnap -pprof localhost:6060
//	ftcserve -snapshot scheme.ftcsnap -listen-bin :8338
//	ftcserve -graph g.txt -dynamic -genlog gen.log -listen-bin :8338   (primary)
//	ftcserve -replica-of http://primary:8337 [-listen-bin :8339]       (replica)
//
// Loading a current-format (v3) snapshot is O(1) in label bytes: the label
// arena is mapped lazily and each label is decoded on its first probe, so
// a replica is serving within milliseconds even when the labels run to
// hundreds of megabytes. Legacy v1/v2 snapshots load eagerly.
//
// Endpoints:
//
//	POST /connected  {"faults":[[2,3]], "fault_edges":[7], "pairs":[[0,5],[1,4]]}
//	                 → {"connected":[true,false], "faults":2, "cache_hit":false, "generation":1}
//	POST /update     {"add":[[0,9]], "remove":[[2,3]]}   (-dynamic only)
//	                 → {"generation":2, "incremental":true, "relabeled":5, ...}
//	GET  /healthz    liveness, scheme shape, and generation
//	GET  /stats      serving and cache counters, incl. per-shard occupancy/hits/misses
//	GET  /metrics    the same counters in Prometheus text exposition format
//
// With -listen-bin the daemon additionally serves the binary frame protocol
// (internal/serve/wire) on a second listener: length-prefixed probe frames
// over persistent pipelined connections, sharing the fault-set cache and
// generation semantics with the HTTP surface while skipping JSON entirely —
// the hot path for probe-heavy clients (see ftcbench load -proto bin).
//
// With -pprof the daemon additionally serves net/http/pprof on a separate
// side listener (keep it bound to localhost), so CPU and heap profiles can
// be scraped without occupying a serving connection.
//
// Faults may be given as [u,v] endpoint pairs or as edge indices (the
// insertion order of the graph); both forms of the same failure event share
// one cache entry. On a dynamic server edge indices are generation-scoped
// (an update that removes an edge shifts higher indices down); clients
// holding indices across updates should pin them by adding
// "generation": <g> to the probe, which is rejected with 409 when stale.
// With -dynamic the daemon serves a mutable ftc.Network:
// each /update batch commits a new generation — incrementally relabeling
// only what the batch dirties when it can — and evicts only the cached
// fault sets that contain a relabeled edge. The "one build, many decoders"
// pattern is: build once, -save the snapshot, then start any number of
// ftcserve replicas from it.
//
// Replication (DESIGN.md §3.13): a dynamic daemon started with -genlog
// becomes a primary — every committed generation is appended to the log
// file as a replayable delta and streamed to subscribers over the binary
// listener (OpLogSub), so -genlog wants -listen-bin. A daemon started with
// -replica-of bootstraps from the primary's GET /snapshot and tails its
// generation log, replaying each delta to byte-identical labels; its
// /healthz reports role "replica" with the replication lag, and /metrics
// exports it as ftcserve_replica_lag_generations.
//
// Retention (DESIGN.md §3.14): -genlog-retain-records / -genlog-retain-bytes
// / -genlog-retain-age bound the log. When one trips after a commit, the
// primary writes a
// checkpoint (its current snapshot, to <log>.ckpt) and truncates the log
// down to the newest -genlog-retain-min records; /snapshot then serves the
// checkpoint, and a replica that fell behind the retained window refetches
// it (CodeGone) and tails from there.
//
// Overload protection (DESIGN.md §3.16): -max-inflight caps concurrently
// served probes across both surfaces — excess HTTP probes get 503 with
// Retry-After, excess binary frames get a CodeUnavailable error frame,
// and either way the connection survives for the retry. -max-conn-queue
// bounds one binary connection's pipelined backlog in bytes. Probe frames
// may carry a deadline budget; a frame whose budget was already spent
// queueing is shed instead of served dead. Shed counts appear in /stats
// and /metrics (ftcserve_requests_shed_total).
//
// -failpoints arms the deterministic fault-injection registry
// (internal/faultinject) inside this daemon — connection resets, fsync
// latency, torn writes — for chaos drills; never set it in production.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener closes
// immediately and in-flight batch probes drain for up to 10 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	ftc "repro"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/serve"
	"repro/internal/serve/genlog"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	snapshot := flag.String("snapshot", "", "scheme snapshot to load (from ftcserve -save or ftc.Save)")
	graphPath := flag.String("graph", "", "graph file to build a scheme from (alternative to -snapshot)")
	f := flag.Int("f", 2, "fault budget when building from -graph")
	schemeKind := flag.String("scheme", "det", "det|greedy|rand|agm (with -graph)")
	seed := flag.Int64("seed", 1, "seed for randomized schemes (with -graph)")
	savePath := flag.String("save", "", "write the built scheme's snapshot here (with -graph)")
	cacheSize := flag.Int("cache", 256, "compiled fault-set cache capacity (spread over -cache-shards)")
	cacheShards := flag.Int("cache-shards", 0, "fault-set cache shard count (power of two, max 64; 0 = auto from capacity, 1 = single-lock)")
	dynamic := flag.Bool("dynamic", false, "serve a mutable network with POST /update (with -graph)")
	headroom := flag.Int("headroom", 0, "per-vertex incremental insertion headroom (with -dynamic; 0 = default)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty = off)")
	listenBin := flag.String("listen-bin", "", "additionally serve the binary frame protocol on this address (e.g. :8338; empty = off)")
	genlogPath := flag.String("genlog", "", "append committed generations to this log file and stream them to replicas (primary role; requires -dynamic and wants -listen-bin)")
	retainRecords := flag.Int("genlog-retain-records", 0, "compact the generation log when it holds more than this many records (0 = unbounded; with -genlog)")
	retainBytes := flag.Int64("genlog-retain-bytes", 0, "compact the generation log when the file exceeds this many bytes (0 = unbounded; with -genlog)")
	retainAge := flag.Duration("genlog-retain-age", 0, "compact generation-log records older than this (e.g. 6h; 0 = unbounded; ages run from append, checked on the commit path; with -genlog)")
	retainMin := flag.Int("genlog-retain-min", 16, "generations kept in the log across a compaction (with -genlog-retain-*)")
	replicaOf := flag.String("replica-of", "", "tail this primary's generation log (HTTP base URL, e.g. http://host:8337); mutually exclusive with -snapshot/-graph")
	maxInflight := flag.Int("max-inflight", 0, "admission cap on concurrently served probes across both surfaces; excess is shed with 503/CodeUnavailable (0 = unbounded)")
	maxConnQueue := flag.Int("max-conn-queue", 0, "per-connection cap in bytes on a binary connection's pipelined backlog; frames over it are shed (0 = unbounded)")
	failpoints := flag.String("failpoints", "", "arm deterministic failpoints, e.g. 'genlog.fsync=latency:5ms;binserver.conn.read=error-rate:0.01' (chaos testing only; see internal/faultinject)")
	failpointSeed := flag.Int64("failpoint-seed", 1, "seed for failpoint randomness (with -failpoints)")
	flag.Parse()

	if *failpoints != "" {
		reg, err := faultinject.Parse(*failpoints, *failpointSeed)
		if err != nil {
			log.Fatalf("ftcserve: -failpoints: %v", err)
		}
		faultinject.Arm(reg)
		log.Printf("FAILPOINTS ARMED (seed %d): %s — this daemon will misbehave on purpose", *failpointSeed, *failpoints)
	}

	var srv *serve.Server
	var replicator *serve.Replicator
	if *replicaOf != "" {
		if *snapshot != "" || *graphPath != "" || *dynamic || *genlogPath != "" {
			log.Fatalf("ftcserve: -replica-of is mutually exclusive with -snapshot/-graph/-dynamic/-genlog")
		}
		primary := *replicaOf
		if !strings.Contains(primary, "://") {
			primary = "http://" + primary
		}
		rep, err := serve.NewReplicator(primary, serve.ReplicatorOptions{
			CacheSize:   *cacheSize,
			CacheShards: *cacheShards,
		})
		if err != nil {
			log.Fatalf("ftcserve: %v", err)
		}
		replicator = rep
		srv = rep.Server()
		s := rep.Scheme()
		log.Printf("replica of %s: bootstrapped at generation %d (n=%d m=%d f=%d)",
			primary, s.Generation(), s.N(), s.Graph().M(), s.MaxFaults())
		if err := rep.Start(); err != nil {
			log.Fatalf("ftcserve: %v", err)
		}
	} else {
		var err error
		srv, err = openServer(*snapshot, *graphPath, *f, *schemeKind, *seed, *savePath, *cacheSize, *cacheShards, *dynamic, *headroom)
		if err != nil {
			log.Fatalf("ftcserve: %v", err)
		}
		if *genlogPath == "" && (*retainRecords > 0 || *retainBytes > 0 || *retainAge > 0) {
			log.Fatalf("ftcserve: -genlog-retain-* requires -genlog")
		}
		if *genlogPath != "" {
			if !*dynamic {
				log.Fatalf("ftcserve: -genlog requires -dynamic (a static scheme never commits generations)")
			}
			l, err := genlog.Open(*genlogPath)
			if err != nil {
				log.Fatalf("ftcserve: genlog: %v", err)
			}
			l.SetRetention(genlog.Retention{
				MaxRecords: *retainRecords,
				MaxBytes:   *retainBytes,
				MaxAge:     *retainAge,
				MinRetain:  *retainMin,
			})
			if err := srv.AttachGenLog(l); err != nil {
				log.Fatalf("ftcserve: genlog: %v", err)
			}
			if *listenBin == "" {
				log.Printf("warning: -genlog without -listen-bin: replicas tail the log over the binary listener")
			}
			// A pre-existing log may already exceed the policy; compact it
			// now rather than waiting for the first commit.
			srv.MaybeCompactGenLog()
			st := l.Stats()
			if st.CheckpointGen > 0 {
				log.Printf("generation log %s: %d records (generations %d..%d), checkpoint at generation %d, retention {records>%d bytes>%d keep %d}",
					*genlogPath, st.Records, st.FirstGen, st.LastGen, st.CheckpointGen, *retainRecords, *retainBytes, *retainMin)
			} else {
				log.Printf("generation log %s: %d records (generations %d..%d)", *genlogPath, st.Records, st.FirstGen, st.LastGen)
			}
		}
	}

	if *maxInflight > 0 || *maxConnQueue > 0 {
		srv.SetAdmission(*maxInflight, *maxConnQueue)
		log.Printf("admission gate: max %d in-flight probes, %d bytes of per-connection backlog (0 = unbounded)",
			*maxInflight, *maxConnQueue)
	}

	// The profiling listener is deliberately separate from the serving
	// listener: it can stay bound to localhost while the daemon serves
	// publicly, and a profile scrape can never occupy a serving connection.
	// Importing net/http/pprof registers its handlers on the default mux,
	// which the main server below never uses.
	if *pprofAddr != "" {
		// With profiling on, also sample lock contention: the mutex and block
		// profiles are what the load benchmark's contention proxy points at
		// when a single-lock cache (or a saturated shard) is the bottleneck.
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(100_000) // sample blocks ≥100µs
		go func() {
			log.Printf("pprof listening on %s (/debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("ftcserve: pprof listener: %v", err)
			}
		}()
	}

	// The binary frame listener shares the Server — and therefore the
	// fault-set cache, the generation-aware retry, and the update path —
	// with the HTTP handler; it only swaps the serialization.
	var binLn net.Listener
	if *listenBin != "" {
		var err error
		binLn, err = net.Listen("tcp", *listenBin)
		if err != nil {
			log.Fatalf("ftcserve: bin listener: %v", err)
		}
		// Advertise the concrete listener address on /healthz so replicas
		// pointed at the HTTP address can find the log-tail endpoint.
		srv.SetBinAddr(binLn.Addr().String())
		go func() {
			log.Printf("binary protocol listening on %s", *listenBin)
			if err := srv.ServeBin(binLn); err != nil {
				log.Printf("ftcserve: bin listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("listening on %s", *addr)

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, drain in-flight
	// batch probes, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("ftcserve: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("shutting down: draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Both protocol surfaces drain concurrently under one deadline: the
		// bin side closes its listener, wakes idle connections, and lets
		// frames already in flight finish and flush.
		var wg sync.WaitGroup
		if binLn != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = binLn.Close()
				srv.ShutdownBin(shutdownCtx)
			}()
		}
		if replicator != nil {
			replicator.Stop()
		}
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("ftcserve: forced shutdown: %v", err)
			_ = httpSrv.Close()
		}
		wg.Wait()
		if l := srv.GenLog(); l != nil {
			_ = l.Close()
		}
	}
	log.Printf("bye")
}

func schemeOptions(f int, kind string, seed int64, headroom int) ([]ftc.Option, error) {
	opts := []ftc.Option{ftc.WithMaxFaults(f)}
	switch kind {
	case "det":
		opts = append(opts, ftc.WithDeterministic())
	case "greedy":
		opts = append(opts, ftc.WithGreedyNet())
	case "rand":
		opts = append(opts, ftc.WithRandomized(seed))
	case "agm":
		opts = append(opts, ftc.WithAGM(seed))
	default:
		return nil, fmt.Errorf("unknown scheme %q", kind)
	}
	if headroom > 0 {
		opts = append(opts, ftc.WithHeadroom(headroom))
	}
	return opts, nil
}

func openServer(snapshot, graphPath string, f int, kind string, seed int64, savePath string, cacheSize, cacheShards int, dynamic bool, headroom int) (*serve.Server, error) {
	switch {
	case snapshot != "" && graphPath != "":
		return nil, fmt.Errorf("-snapshot and -graph are mutually exclusive")
	case snapshot != "" && savePath != "":
		return nil, fmt.Errorf("-save only applies when building from -graph")
	case dynamic && graphPath == "":
		return nil, fmt.Errorf("-dynamic requires -graph (a snapshot is a frozen generation)")
	case snapshot != "":
		// One pre-sized read, then a zero-copy load: a v3 snapshot's label
		// arena aliases this buffer and decodes lazily per probe, so the
		// daemon is serving as soon as the graph section is parsed.
		data, err := os.ReadFile(snapshot)
		if err != nil {
			return nil, err
		}
		sch, err := ftc.LoadBytes(data)
		if err != nil {
			return nil, err
		}
		banner(sch.Stats(), sch.Graph(), sch.MaxFaults(), false)
		return serve.NewWithShards(sch, cacheSize, cacheShards), nil
	case graphPath != "":
		in, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer in.Close()
		g, err := graphio.ReadGraph(in)
		if err != nil {
			return nil, err
		}
		opts, err := schemeOptions(f, kind, seed, headroom)
		if err != nil {
			return nil, err
		}
		if dynamic {
			nw, err := ftc.OpenFromGraph(g, opts...)
			if err != nil {
				return nil, err
			}
			if savePath != "" {
				if err := saveSnapshot(nw.Snapshot(), savePath); err != nil {
					return nil, err
				}
			}
			banner(nw.Stats(), nw.Graph(), nw.MaxFaults(), true)
			return serve.NewDynamicWithShards(func() serve.Scheme { return nw.Snapshot() }, nw, cacheSize, cacheShards), nil
		}
		sch, err := ftc.NewFromGraph(g, opts...)
		if err != nil {
			return nil, err
		}
		if savePath != "" {
			if err := saveSnapshot(sch, savePath); err != nil {
				return nil, err
			}
		}
		banner(sch.Stats(), sch.Graph(), sch.MaxFaults(), false)
		return serve.NewWithShards(sch, cacheSize, cacheShards), nil
	default:
		return nil, fmt.Errorf("one of -snapshot or -graph is required")
	}
}

func saveSnapshot(sch *ftc.Scheme, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sch.Save(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	log.Printf("saved snapshot to %s", path)
	return nil
}

func banner(st ftc.Stats, g *graph.Graph, f int, dynamic bool) {
	mode := "static"
	if dynamic {
		mode = "dynamic"
	}
	log.Printf("serving %s %s scheme: n=%d m=%d f=%d (max edge label %d bits)",
		mode, st.Kind, g.N(), g.M(), f, st.MaxEdgeLabelBits)
}
