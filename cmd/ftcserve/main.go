// Command ftcserve is the probe-serving daemon: it loads a scheme snapshot
// (or builds one from a graph file) and answers batched s–t connectivity
// probes over HTTP, caching compiled fault sets in an LRU so repeated
// probes of one failure event hit the zero-alloc steady-state path.
//
//	ftcserve -snapshot scheme.ftcsnap [-addr :8337] [-cache 256]
//	ftcserve -graph g.txt [-f 3] [-scheme det|greedy|rand|agm] [-seed 1] [-save scheme.ftcsnap]
//
// Endpoints:
//
//	POST /connected  {"faults":[[2,3]], "fault_edges":[7], "pairs":[[0,5],[1,4]]}
//	                 → {"connected":[true,false], "faults":2, "cache_hit":false}
//	GET  /healthz    liveness and scheme shape
//	GET  /stats      serving and cache counters
//
// Faults may be given as [u,v] endpoint pairs or as edge indices (the
// insertion order of the graph); both forms of the same failure event share
// one cache entry. The "one build, many decoders" pattern is: build once,
// -save the snapshot, then start any number of ftcserve replicas from it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	ftc "repro"
	"repro/internal/graphio"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8337", "listen address")
	snapshot := flag.String("snapshot", "", "scheme snapshot to load (from ftcserve -save or ftc.Save)")
	graphPath := flag.String("graph", "", "graph file to build a scheme from (alternative to -snapshot)")
	f := flag.Int("f", 2, "fault budget when building from -graph")
	schemeKind := flag.String("scheme", "det", "det|greedy|rand|agm (with -graph)")
	seed := flag.Int64("seed", 1, "seed for randomized schemes (with -graph)")
	savePath := flag.String("save", "", "write the built scheme's snapshot here (with -graph)")
	cacheSize := flag.Int("cache", 256, "compiled fault-set LRU capacity")
	flag.Parse()

	sch, err := openScheme(*snapshot, *graphPath, *f, *schemeKind, *seed, *savePath)
	if err != nil {
		log.Fatalf("ftcserve: %v", err)
	}
	st := sch.Stats()
	g := sch.Graph()
	log.Printf("serving %s scheme: n=%d m=%d f=%d (max edge label %d bits) on %s",
		st.Kind, g.N(), g.M(), sch.MaxFaults(), st.MaxEdgeLabelBits, *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(sch, *cacheSize).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Fatal(srv.ListenAndServe())
}

// schemeHandle is what the daemon needs from either a built or a loaded
// scheme: the serving surface plus size accounting for the startup banner.
type schemeHandle interface {
	serve.Scheme
	Stats() ftc.Stats
}

func openScheme(snapshot, graphPath string, f int, kind string, seed int64, savePath string) (schemeHandle, error) {
	switch {
	case snapshot != "" && graphPath != "":
		return nil, fmt.Errorf("-snapshot and -graph are mutually exclusive")
	case snapshot != "" && savePath != "":
		return nil, fmt.Errorf("-save only applies when building from -graph")
	case snapshot != "":
		in, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer in.Close()
		return ftc.Load(in)
	case graphPath != "":
		in, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer in.Close()
		g, err := graphio.ReadGraph(in)
		if err != nil {
			return nil, err
		}
		opts := []ftc.Option{ftc.WithMaxFaults(f)}
		switch kind {
		case "det":
			opts = append(opts, ftc.WithDeterministic())
		case "greedy":
			opts = append(opts, ftc.WithGreedyNet())
		case "rand":
			opts = append(opts, ftc.WithRandomized(seed))
		case "agm":
			opts = append(opts, ftc.WithAGM(seed))
		default:
			return nil, fmt.Errorf("unknown scheme %q", kind)
		}
		sch, err := ftc.NewFromGraph(g, opts...)
		if err != nil {
			return nil, err
		}
		if savePath != "" {
			out, err := os.Create(savePath)
			if err != nil {
				return nil, err
			}
			if err := sch.Save(out); err != nil {
				out.Close()
				return nil, err
			}
			if err := out.Close(); err != nil {
				return nil, err
			}
			log.Printf("saved snapshot to %s", savePath)
		}
		return sch, nil
	default:
		return nil, fmt.Errorf("one of -snapshot or -graph is required")
	}
}
