// Command ftcdemo regenerates the paper's construction figures on the
// running example of §3.2/§4.3:
//
//	ftcdemo fig1   — the auxiliary-graph transform of Figure 1
//	ftcdemo fig2   — the Euler-tour geometric embedding of Figure 2
//	ftcdemo query  — a worked end-to-end query on the same instance
//
// With no argument all three sections are printed.
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/euler"
	"repro/internal/graph"
	"repro/internal/paperfig"
)

func main() {
	which := "all"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	g, _ := paperfig.Instance()
	view := core.NewAuxView(g)
	switch which {
	case "fig1":
		fig1(g, view)
	case "fig2":
		fig2(g, view)
	case "query":
		query(g)
	case "all":
		fig1(g, view)
		fmt.Println()
		fig2(g, view)
		fmt.Println()
		query(g)
	default:
		fmt.Fprintf(os.Stderr, "usage: ftcdemo [fig1|fig2|query|all]\n")
		os.Exit(2)
	}
}

// fig1 prints the input graph and its auxiliary graph G′: every non-tree
// edge e = (u, v) is subdivided into the tree half e = (u, x_e) and the
// non-tree half e′ = (x_e, v).
func fig1(g *graph.Graph, view *core.AuxView) {
	fmt.Println("Figure 1 — auxiliary graph G′ (non-tree edges subdivided)")
	fmt.Println()
	fmt.Println("  input graph G (r = vertex 0):")
	for e, edge := range g.Edges {
		kind := "tree    "
		if !view.Forest.IsTreeEdge[e] {
			kind = "non-tree"
		}
		fmt.Printf("    %-4s (%d,%d)  %s\n", paperfig.EdgeName(e), edge.U, edge.V, kind)
	}
	fmt.Println()
	fmt.Println("  auxiliary graph G′ / spanning tree T′:")
	fmt.Printf("    %d original vertices + %d subdivision vertices\n", g.N(), len(view.NonTree))
	for slot, e := range view.NonTree {
		edge := g.Edges[e]
		name := paperfig.EdgeName(e)
		fmt.Printf("    %-4s (%d,%d)  →  tree edge %s = (%d, x%s) + non-tree edge %s′ = (x%s, %d)\n",
			name, edge.U, edge.V,
			name, view.TPrime.Parent[view.XVertex[slot]], name,
			name, name, view.FarEnd[slot])
	}
	fmt.Printf("\n  T′ has %d tree edges; Euler tour length %d directed edges.\n",
		len(view.TPrime.Parent)-1, view.Tour.Len)
}

// fig2 prints the Euler-tour coordinates and the planar points of the
// non-tree edges, plus one cutset's checkered region, mirroring Figure 2.
func fig2(g *graph.Graph, view *core.AuxView) {
	fmt.Println("Figure 2 — Euler-tour embedding of non-tree edges")
	fmt.Println()
	fmt.Println("  1-D coordinates c(v) on T′ (0 = root, has no coordinate):")
	type cv struct {
		v int
		c int32
	}
	var coords []cv
	for v := 0; v < len(view.TPrime.Parent); v++ {
		coords = append(coords, cv{v, view.Tour.C[v]})
	}
	sort.Slice(coords, func(i, j int) bool { return coords[i].c < coords[j].c })
	for _, c := range coords {
		name := fmt.Sprintf("v%d", c.v)
		if c.v >= g.N() {
			name = "x" + paperfig.EdgeName(view.NonTree[c.v-g.N()])
		}
		fmt.Printf("    c(%-4s) = %2d\n", name, c.c)
	}
	fmt.Println()
	fmt.Println("  2-D points (one per non-tree edge, x < y):")
	for _, p := range view.Points {
		fmt.Printf("    %s′ → (%2d, %2d)\n", paperfig.EdgeName(p.Edge), p.X, p.Y)
	}
	fmt.Println()
	// Illustrate Lemma 3 on the cut S = subtree of vertex 1.
	inS := make([]bool, g.N())
	f := view.Forest
	var mark func(v int)
	mark = func(v int) {
		inS[v] = true
		for _, c := range f.Children[v] {
			mark(c)
		}
	}
	mark(1)
	// The checkered-region test needs the directed boundary on T′.
	inSPrime := make([]bool, len(view.TPrime.Parent))
	copy(inSPrime, inS)
	for slot, x := range view.XVertex {
		inSPrime[x] = inS[view.TPrime.Parent[x]]
		_ = slot
	}
	boundary := euler.DirectedBoundary(view.TPrime, view.Tour, inSPrime)
	fmt.Println("  Lemma 3 check for S = subtree(v1):")
	fmt.Printf("    directed boundary tour positions: %v\n", boundary)
	for _, p := range view.Points {
		edge := g.Edges[p.Edge]
		out := inS[edge.U] != inS[edge.V]
		region := euler.CutRegionContains(boundary, p.X, p.Y)
		status := "agrees"
		if out != region {
			status = "MISMATCH"
		}
		fmt.Printf("    %s′ at (%2d,%2d): outgoing=%-5v inRegion=%-5v  %s\n",
			paperfig.EdgeName(p.Edge), p.X, p.Y, out, region, status)
	}
}

// query walks one end-to-end labeled connectivity query.
func query(g *graph.Graph) {
	fmt.Println("Worked query on the Figure 1 instance")
	fmt.Println()
	s, err := core.Build(g, core.Params{MaxFaults: 2})
	if err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  deterministic scheme: k=%d, %d hierarchy levels, max edge label %d bits\n",
		s.Spec().K, s.Spec().Levels, s.MaxEdgeLabelBits())
	cases := []struct {
		s, t   int
		faults []int
	}{
		{3, 7, nil},
		{3, 7, []int{5, 2}},    // cut e6 (1,3) and e3 (3,4)
		{3, 7, []int{5, 2, 9}}, // … plus e10 (3,6): 3 faults exceeds f=2
		{0, 5, []int{3, 7}},    // cut e4 (0,2) and e8 (2,5)
		{0, 5, []int{3}},       // cut e4 only: 5 still reachable via e1
	}
	for _, c := range cases {
		fl := make([]core.EdgeLabel, len(c.faults))
		names := make([]string, len(c.faults))
		for i, e := range c.faults {
			fl[i] = s.EdgeLabel(e)
			names[i] = paperfig.EdgeName(e)
		}
		got, err := core.Connected(s.VertexLabel(c.s), s.VertexLabel(c.t), fl)
		if err != nil {
			fmt.Printf("  connected(v%d, v%d | F=%v) → error: %v\n", c.s, c.t, names, err)
			continue
		}
		want := graph.ConnectedUnder(g, toSet(c.faults), c.s, c.t)
		fmt.Printf("  connected(v%d, v%d | F=%v) = %-5v (ground truth %v)\n", c.s, c.t, names, got, want)
	}

	// The serving pattern: compile one failure event into a FaultSet, then
	// probe every vertex pair against it (each probe is a lookup).
	fmt.Println()
	faults := []int{1, 3} // cut e2 and e4 — the only 2-cut of the instance
	fl := make([]core.EdgeLabel, len(faults))
	names := make([]string, len(faults))
	for i, e := range faults {
		fl[i] = s.EdgeLabel(e)
		names[i] = paperfig.EdgeName(e)
	}
	fs, err := core.CompileFaults(fl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compile: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  FaultSet F=%v compiled once (%d faults, %d component(s)); all-pairs probes:\n",
		names, fs.Faults(), fs.FaultComponents())
	for u := 0; u < g.N(); u++ {
		fmt.Printf("   v%d:", u)
		for v := 0; v < g.N(); v++ {
			ok, err := fs.Connected(s.VertexLabel(u), s.VertexLabel(v))
			if err != nil {
				fmt.Fprintf(os.Stderr, "probe: %v\n", err)
				os.Exit(1)
			}
			mark := "·"
			if ok {
				mark = "x"
			}
			fmt.Printf(" %s", mark)
		}
		fmt.Println()
	}
	fmt.Println("  (x = still connected under F; rows/columns in vertex order)")
}

func toSet(faults []int) map[int]bool {
	m := map[int]bool{}
	for _, e := range faults {
		m[e] = true
	}
	return m
}
