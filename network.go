package ftc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
)

// Network is a mutable, generation-versioned f-FTC labeling: the
// construction-side counterpart of the "one failure event, many probes"
// decoder objects, for deployments whose topology changes faster than full
// rebuilds are affordable.
//
// Mutations are batched: AddEdge and RemoveEdge stage changes, Commit
// applies the whole batch as one new generation. A committed batch that
// leaves the spanning forest intact — inserting edges between
// already-connected vertices, deleting redundant (non-tree) edges — is
// applied incrementally, relabeling only the tree-path labels the update
// dirties; anything that breaks the forest or the ε-net hierarchy
// invariants (component merges, tree-edge deletions, slot exhaustion,
// churn past the invalidation budget) falls back to a full parallel
// rebuild. Either way the result is exact: every committed generation
// answers queries identically to a from-scratch New on the same graph.
//
// Each generation is an immutable Scheme published atomically: Snapshot is
// safe to call (and its labels safe to probe) concurrently with staged
// mutations and commits, and snapshots taken before a commit remain fully
// consistent views of their own generation. Labels are stamped with their
// generation; mixing labels across generations fails fast with
// ErrStaleLabel instead of silently answering against a graph that no
// longer exists.
type Network struct {
	mu      sync.Mutex // guards dyn and the staged batch
	dyn     *core.Dynamic
	staged  []core.Update
	inBatch map[graph.Edge]bool
	cur     atomic.Pointer[Scheme]
}

// Update is one staged mutation of a Network's edge set.
type Update = core.Update

// CommitReport describes one committed batch: the generation and token it
// produced, whether the incremental path applied, which edges were
// relabeled, and how edge indices moved.
type CommitReport = core.CommitReport

// Open builds the initial labeling (generation 1) for the undirected
// simple graph on n vertices and returns the mutable Network. Options are
// as for New, plus WithHeadroom.
func Open(n int, edges [][2]int, opts ...Option) (*Network, error) {
	g := graph.New(n)
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("ftc: %w", err)
		}
	}
	return OpenFromGraph(g, opts...)
}

// OpenFromGraph is Open over an already-assembled internal graph — the
// entry point for the daemon and harness layers that hold a *graph.Graph.
// The Network takes ownership of g as its generation-1 graph; the caller
// must not modify it afterwards.
func OpenFromGraph(g *graph.Graph, opts ...Option) (*Network, error) {
	o := options{params: core.Params{MaxFaults: 2, Kind: core.KindDetNetFind}}
	for _, opt := range opts {
		opt(&o)
	}
	dyn, err := core.NewDynamic(g, o.params)
	if err != nil {
		return nil, fmt.Errorf("ftc: %w", err)
	}
	nw := &Network{dyn: dyn, inBatch: map[graph.Edge]bool{}}
	nw.publish()
	return nw, nil
}

// publish swaps the current immutable snapshot; callers hold nw.mu.
func (nw *Network) publish() {
	inner := nw.dyn.Scheme()
	nw.cur.Store(&Scheme{g: inner.Graph(), inner: inner})
}

// Snapshot returns the current generation as an immutable Scheme. The
// snapshot never changes — later commits publish new snapshots — so it can
// be probed, saved, or handed to a serving layer without synchronization.
func (nw *Network) Snapshot() *Scheme { return nw.cur.Load() }

// Generation returns the committed generation (1 after Open).
func (nw *Network) Generation() uint64 { return nw.Snapshot().Generation() }

// stage validates and stages one mutation. Each unordered endpoint pair
// may appear at most once per batch.
func (nw *Network) stage(u, v int, add bool) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	g := nw.dyn.Scheme().Graph()
	if u > v {
		u, v = v, u
	}
	if u < 0 || v >= g.N() {
		return fmt.Errorf("ftc: endpoint out of range (%d,%d) with n=%d", u, v, g.N())
	}
	if u == v {
		return fmt.Errorf("ftc: self-loop at %d", u)
	}
	e := graph.Edge{U: u, V: v}
	if nw.inBatch[e] {
		return fmt.Errorf("ftc: edge (%d,%d) already staged in this batch", u, v)
	}
	if add && g.HasEdge(u, v) {
		return fmt.Errorf("ftc: edge (%d,%d) already present", u, v)
	}
	if !add && !g.HasEdge(u, v) {
		return fmt.Errorf("ftc: no edge (%d,%d) to remove", u, v)
	}
	nw.inBatch[e] = true
	nw.staged = append(nw.staged, core.Update{Add: add, U: u, V: v})
	return nil
}

// AddEdge stages the insertion of edge {u, v} for the next Commit.
func (nw *Network) AddEdge(u, v int) error { return nw.stage(u, v, true) }

// RemoveEdge stages the deletion of edge {u, v} for the next Commit.
func (nw *Network) RemoveEdge(u, v int) error { return nw.stage(u, v, false) }

// Pending returns the number of staged, uncommitted mutations.
func (nw *Network) Pending() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return len(nw.staged)
}

// Discard drops every staged mutation without committing.
func (nw *Network) Discard() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.staged = nil
	nw.inBatch = map[graph.Edge]bool{}
}

// Commit applies the staged batch as one new generation and publishes the
// resulting snapshot. With nothing staged it is a no-op reporting the
// current generation. On error the staged batch is kept so the caller can
// inspect or Discard it; the committed state is unchanged either way.
func (nw *Network) Commit() (*CommitReport, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	rep, _, err := nw.dyn.Commit(nw.staged)
	if err != nil {
		return nil, fmt.Errorf("ftc: %w", err)
	}
	nw.staged = nil
	nw.inBatch = map[graph.Edge]bool{}
	nw.publish()
	return rep, nil
}

// CommitBatch stages and commits one batch of endpoint pairs in a single
// critical section — the entry point used by the serving layer's /update
// endpoint, where concurrent batches must serialize cleanly.
func (nw *Network) CommitBatch(add, remove [][2]int) (*CommitReport, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if len(nw.staged) > 0 {
		return nil, fmt.Errorf("ftc: %d mutations already staged; commit or discard them first", len(nw.staged))
	}
	batch := make([]core.Update, 0, len(add)+len(remove))
	for _, e := range add {
		batch = append(batch, core.Update{Add: true, U: e[0], V: e[1]})
	}
	for _, e := range remove {
		batch = append(batch, core.Update{U: e[0], V: e[1]})
	}
	rep, _, err := nw.dyn.Commit(batch)
	if err != nil {
		return nil, fmt.Errorf("ftc: %w", err)
	}
	nw.publish()
	return rep, nil
}

// GenDelta is a committed generation exported for replication log
// shipping: the op batch plus the XOR label deltas (or a full-rebuild
// marker) a replica replays to reproduce the generation byte-for-byte.
type GenDelta = core.GenDelta

// CommitBatchWithDelta is CommitBatch, additionally exporting the commit as
// a GenDelta for a generation log. The delta is nil for a no-op batch.
func (nw *Network) CommitBatchWithDelta(add, remove [][2]int) (*CommitReport, *GenDelta, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if len(nw.staged) > 0 {
		return nil, nil, fmt.Errorf("ftc: %d mutations already staged; commit or discard them first", len(nw.staged))
	}
	batch := make([]core.Update, 0, len(add)+len(remove))
	for _, e := range add {
		batch = append(batch, core.Update{Add: true, U: e[0], V: e[1]})
	}
	for _, e := range remove {
		batch = append(batch, core.Update{U: e[0], V: e[1]})
	}
	rep, delta, _, err := nw.dyn.CommitWithDelta(batch)
	if err != nil {
		return nil, nil, fmt.Errorf("ftc: %w", err)
	}
	nw.publish()
	return rep, delta, nil
}

// Churn returns the incremental updates absorbed since the last full
// rebuild — the budget consumed against the hierarchy invalidation
// predicate.
func (nw *Network) Churn() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.dyn.Churn()
}

// The read-side accessors below delegate to the current snapshot, so a
// Network can be used directly wherever a read-only scheme is expected.
// Each call reads the latest generation independently; callers that need
// one consistent view across several calls should take a Snapshot first.

// N returns the vertex count.
func (nw *Network) N() int { return nw.Snapshot().N() }

// M returns the current edge count.
func (nw *Network) M() int { return nw.Snapshot().M() }

// MaxFaults returns the fault budget f.
func (nw *Network) MaxFaults() int { return nw.Snapshot().MaxFaults() }

// Graph exposes the current generation's graph (read-only).
func (nw *Network) Graph() *graph.Graph { return nw.Snapshot().Graph() }

// VertexLabel returns the label of vertex v at the current generation.
func (nw *Network) VertexLabel(v int) VertexLabel { return nw.Snapshot().VertexLabel(v) }

// EdgeLabel returns an independent copy of the current label of {u, v}.
func (nw *Network) EdgeLabel(u, v int) (EdgeLabel, error) { return nw.Snapshot().EdgeLabel(u, v) }

// EdgeLabelByIndex returns an independent copy of the current label of the
// i-th edge.
func (nw *Network) EdgeLabelByIndex(i int) EdgeLabel { return nw.Snapshot().EdgeLabelByIndex(i) }

// Stats returns the size accounting of the current generation.
func (nw *Network) Stats() Stats { return nw.Snapshot().Stats() }
