package ftc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// testNetworkEdges is a 2-connected 12-vertex graph with redundant edges,
// so both incremental insertions (within the one component) and incremental
// deletions (non-tree edges) are available.
func testNetworkEdges() [][2]int {
	var edges [][2]int
	for i := 0; i < 12; i++ {
		edges = append(edges, [2]int{i, (i + 1) % 12})
	}
	edges = append(edges, [2]int{0, 6}, [2]int{2, 9}, [2]int{4, 10})
	return edges
}

func TestNetworkLifecycle(t *testing.T) {
	nw, err := Open(12, testNetworkEdges(), WithMaxFaults(3))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Generation() != 1 {
		t.Fatalf("fresh network at generation %d, want 1", nw.Generation())
	}
	snap1 := nw.Snapshot()

	// Pick a genuinely redundant (non-tree) edge to delete, so the whole
	// batch is incremental-eligible.
	forest := snap1.Inner().Forest
	ru, rv := -1, -1
	for e, tree := range forest.IsTreeEdge {
		if !tree {
			ru, rv = snap1.Graph().Edges[e].U, snap1.Graph().Edges[e].V
			break
		}
	}
	if ru < 0 {
		t.Fatal("test graph has no non-tree edge")
	}

	// Stage a batch; the snapshot must not move until Commit.
	if err := nw.AddEdge(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := nw.RemoveEdge(ru, rv); err != nil {
		t.Fatal(err)
	}
	if nw.Pending() != 2 {
		t.Fatalf("pending %d, want 2", nw.Pending())
	}
	if nw.Generation() != 1 || nw.M() != len(testNetworkEdges()) {
		t.Fatal("staging must not change the committed generation")
	}

	rep, err := nw.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gen != 2 || nw.Generation() != 2 || nw.Pending() != 0 {
		t.Fatalf("after commit: rep.Gen=%d gen=%d pending=%d", rep.Gen, nw.Generation(), nw.Pending())
	}
	if !rep.Incremental {
		t.Fatalf("redundant add+remove should commit incrementally (reason %q)", rep.Reason)
	}
	if !nw.Graph().HasEdge(1, 7) || nw.Graph().HasEdge(ru, rv) {
		t.Fatal("committed topology wrong")
	}

	// The old snapshot is immutable: generation 1, original topology.
	if snap1.Generation() != 1 || !snap1.Graph().HasEdge(ru, rv) || snap1.Graph().HasEdge(1, 7) {
		t.Fatal("pre-commit snapshot mutated")
	}

	// Empty commit: no-op.
	rep, err = nw.Commit()
	if err != nil || rep.Gen != 2 {
		t.Fatalf("empty commit: rep=%+v err=%v", rep, err)
	}

	// Answers match the BFS oracle on the mutated graph, and a fresh New.
	g := nw.Graph()
	fresh, err := New(12, edgeList(g), WithMaxFaults(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	snap := nw.Snapshot()
	for trial := 0; trial < 50; trial++ {
		faults := workload.RandomFaults(g, 1+rng.Intn(3), rng)
		fl := make([]EdgeLabel, len(faults))
		freshFl := make([]EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = snap.EdgeLabelByIndex(e)
			freshFl[i] = fresh.EdgeLabelByIndex(e)
		}
		sv, tv := rng.Intn(12), rng.Intn(12)
		want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
		got, err := Connected(snap.VertexLabel(sv), snap.VertexLabel(tv), fl)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		freshGot, err := Connected(fresh.VertexLabel(sv), fresh.VertexLabel(tv), freshFl)
		if err != nil {
			t.Fatalf("trial %d: fresh: %v", trial, err)
		}
		if got != want || freshGot != want {
			t.Fatalf("trial %d: network=%v fresh=%v oracle=%v", trial, got, freshGot, want)
		}
	}
}

func edgeList(g *graph.Graph) [][2]int {
	out := make([][2]int, g.M())
	for i, e := range g.Edges {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

func TestNetworkStagingValidation(t *testing.T) {
	nw, err := Open(12, testNetworkEdges())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		do   func() error
	}{
		{"add existing", func() error { return nw.AddEdge(0, 1) }},
		{"remove missing", func() error { return nw.RemoveEdge(1, 5) }},
		{"self-loop", func() error { return nw.AddEdge(4, 4) }},
		{"out of range", func() error { return nw.AddEdge(3, 99) }},
	} {
		if err := tc.do(); err == nil {
			t.Errorf("%s: staged without error", tc.name)
		}
	}
	if err := nw.AddEdge(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddEdge(7, 1); err == nil {
		t.Error("same endpoint pair staged twice in one batch")
	}
	nw.Discard()
	if nw.Pending() != 0 {
		t.Fatal("discard left staged mutations")
	}
	// CommitBatch refuses to bypass a half-staged batch.
	if err := nw.AddEdge(1, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.CommitBatch([][2]int{{2, 7}}, nil); err == nil {
		t.Error("CommitBatch ignored staged mutations")
	}
	nw.Discard()
	if _, err := nw.CommitBatch([][2]int{{2, 7}}, [][2]int{{0, 6}}); err != nil {
		t.Fatal(err)
	}
	if nw.Generation() != 2 {
		t.Fatalf("generation %d after CommitBatch, want 2", nw.Generation())
	}
}

// TestNetworkStaleSnapshots: labels taken from superseded snapshots must be
// rejected with ErrStaleLabel at the public API.
func TestNetworkStaleSnapshots(t *testing.T) {
	nw, err := Open(12, testNetworkEdges())
	if err != nil {
		t.Fatal(err)
	}
	old := nw.Snapshot()
	if _, err := nw.CommitBatch([][2]int{{1, 7}}, nil); err != nil {
		t.Fatal(err)
	}
	cur := nw.Snapshot()
	if _, err := Connected(old.VertexLabel(0), cur.VertexLabel(1), nil); !errors.Is(err, ErrStaleLabel) {
		t.Fatalf("got %v, want ErrStaleLabel", err)
	}
	fl := []EdgeLabel{old.MustEdgeLabel(0, 1)}
	if _, err := NewFaultSet(append(fl, cur.MustEdgeLabel(2, 3))); !errors.Is(err, ErrStaleLabel) {
		t.Fatalf("mixed-generation fault set: got %v, want ErrStaleLabel", err)
	}
	// ...and ErrStaleLabel still reads as a label mismatch for old callers.
	if _, err := Connected(old.VertexLabel(0), cur.VertexLabel(1), nil); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("ErrStaleLabel does not match ErrLabelMismatch: %v", err)
	}
	// Probing entirely within the old snapshot still works.
	if _, err := Connected(old.VertexLabel(0), old.VertexLabel(5), fl); err != nil {
		t.Fatalf("self-consistent old-generation probe: %v", err)
	}
}

// TestNetworkRoundTrippedLabelsInteroperate: the wire codecs omit the
// in-memory generation stamp, so a label that went through
// Marshal/Unmarshal (Gen 0) must keep validating against live labels of
// the same generation — the token carries the generation. Regression for
// the advisory use case (marshaled fault labels probed against live
// vertex labels).
func TestNetworkRoundTrippedLabelsInteroperate(t *testing.T) {
	nw, err := Open(12, testNetworkEdges())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.CommitBatch([][2]int{{1, 7}}, nil); err != nil {
		t.Fatal(err)
	}
	snap := nw.Snapshot()
	el, err := UnmarshalEdgeLabel(MarshalEdgeLabel(snap.EdgeLabelByIndex(5)))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFaultSet([]EdgeLabel{el})
	if err != nil {
		t.Fatalf("fault set over round-tripped label: %v", err)
	}
	if _, err := fs.Connected(snap.VertexLabel(0), snap.VertexLabel(3)); err != nil {
		t.Fatalf("round-tripped fault label vs live vertex labels: %v", err)
	}
	vl, err := UnmarshalVertexLabel(MarshalVertexLabel(snap.VertexLabel(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Connected(vl, snap.VertexLabel(3)); err != nil {
		t.Fatalf("round-tripped vertex label: %v", err)
	}
}

// TestNetworkSnapshotPersistence: a dynamic generation survives Save/Load
// with its generation stamp and byte-identical labels, and the loaded
// scheme still interoperates (stale-rejects) correctly.
func TestNetworkSnapshotPersistence(t *testing.T) {
	nw, err := Open(12, testNetworkEdges(), WithMaxFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.CommitBatch([][2]int{{1, 7}, {3, 8}}, [][2]int{{2, 9}}); err != nil {
		t.Fatal(err)
	}
	snap := nw.Snapshot()
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Generation() != snap.Generation() {
		t.Fatalf("loaded generation %d, want %d", loaded.Generation(), snap.Generation())
	}
	for v := 0; v < snap.N(); v++ {
		if !bytes.Equal(MarshalVertexLabel(snap.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
			t.Fatalf("vertex %d label differs after round trip", v)
		}
	}
	for e := 0; e < snap.M(); e++ {
		if !bytes.Equal(MarshalEdgeLabel(snap.EdgeLabelByIndex(e)), MarshalEdgeLabel(loaded.EdgeLabelByIndex(e))) {
			t.Fatalf("edge %d label differs after round trip", e)
		}
	}
	// Loaded labels interoperate with the live generation they were saved
	// from, and stale-reject against later generations.
	if _, err := Connected(loaded.VertexLabel(0), snap.VertexLabel(5), nil); err != nil {
		t.Fatalf("loaded + live same-generation labels: %v", err)
	}
	if _, err := nw.CommitBatch([][2]int{{5, 11}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Connected(loaded.VertexLabel(0), nw.VertexLabel(5), nil); !errors.Is(err, ErrStaleLabel) {
		t.Fatalf("loaded labels vs newer generation: got %v, want ErrStaleLabel", err)
	}
}

// TestEdgeLabelByIndexAliasing is the copy-semantics audit: a label handed
// out by EdgeLabelByIndex (static scheme, network snapshot, and a snapshot
// after an incremental commit, whose dirty labels live in fresh arenas)
// must share no mutable state with the scheme — writing to any field of
// the returned label, including every Out word, must not change what the
// scheme hands out next. Parent/Child ancestry labels are plain value
// structs (three uint32s, no backing storage), so assignment copies them;
// this test pins that reasoning against future representation changes.
func TestEdgeLabelByIndexAliasing(t *testing.T) {
	nw, err := Open(12, testNetworkEdges(), WithMaxFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.CommitBatch([][2]int{{1, 7}}, nil); err != nil { // dirty some labels incrementally
		t.Fatal(err)
	}
	static, err := New(12, testNetworkEdges(), WithMaxFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	for name, sch := range map[string]interface {
		M() int
		EdgeLabelByIndex(int) EdgeLabel
	}{
		"static":           static,
		"network-snapshot": nw.Snapshot(),
	} {
		for e := 0; e < sch.M(); e++ {
			before := MarshalEdgeLabel(sch.EdgeLabelByIndex(e))
			l := sch.EdgeLabelByIndex(e)
			// Scribble over every field of the returned copy.
			l.Token, l.Gen, l.MaxFaults = ^l.Token, ^l.Gen, -1
			l.Spec.K, l.Spec.Levels = l.Spec.K+1, l.Spec.Levels+1
			l.Parent.Pre, l.Parent.Post, l.Parent.Root = 0, 0, 0
			l.Child.Pre, l.Child.Post, l.Child.Root = ^uint32(0), 0, 1
			for w := range l.Out {
				l.Out[w] = ^l.Out[w]
			}
			after := MarshalEdgeLabel(sch.EdgeLabelByIndex(e))
			if !bytes.Equal(before, after) {
				t.Fatalf("%s: edge %d label aliases scheme storage", name, e)
			}
		}
	}
}

// TestNetworkConcurrentProbesDuringCommit hammers snapshots with probes
// while commits run — the library-level counterpart of the serving layer's
// churn test; run under -race in CI.
func TestNetworkConcurrentProbesDuringCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := workload.ErdosRenyi(100, 0.08, true, rng)
	nw, err := Open(g.N(), edgeList(g), WithMaxFaults(3))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			prng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := nw.Snapshot()
				sg := snap.Graph()
				e := prng.Intn(sg.M())
				fs, err := NewFaultSet([]EdgeLabel{snap.EdgeLabelByIndex(e)})
				if err != nil {
					errc <- err
					return
				}
				tv := prng.Intn(sg.N())
				want := graph.ConnectedUnder(sg, map[int]bool{e: true}, 0, tv)
				got, err := fs.Connected(snap.VertexLabel(0), snap.VertexLabel(tv))
				if err != nil {
					errc <- err
					return
				}
				if got != want {
					errc <- errors.New("probe diverged from oracle during churn")
					return
				}
			}
		}(int64(w))
	}
	for i := 0; i < 30; i++ {
		snap := nw.Snapshot()
		sg := snap.Graph()
		var add, rem [][2]int
		for try := 0; try < 50 && add == nil; try++ {
			u, v := rng.Intn(sg.N()), rng.Intn(sg.N())
			if u != v && !sg.HasEdge(u, v) {
				add = [][2]int{{u, v}}
			}
		}
		for try := 0; try < 50 && rem == nil; try++ {
			e := rng.Intn(sg.M())
			rem = [][2]int{{sg.Edges[e].U, sg.Edges[e].V}}
		}
		if _, err := nw.CommitBatch(add, rem); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
