package ftc

// One testing.B benchmark per paper table/figure, matching the experiment
// index in DESIGN.md §4 (E-numbers). Custom metrics are attached with
// b.ReportMetric so `go test -bench` output records the paper's quantities
// (label bits, rounds, stretch), not just wall time.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/distlabel"
	"repro/internal/graph"
	"repro/internal/ptsketch"
	"repro/internal/routing"
	"repro/internal/workload"
)

// benchGraph builds the shared Table 1 workload.
func benchGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return workload.ErdosRenyi(n, 8/float64(n), true, rng)
}

// BenchmarkTable1 measures every scheme row of Table 1 on a common
// workload: construction once (setup), then per-op query cost; label sizes
// are reported as metrics.
func BenchmarkTable1(b *testing.B) {
	g := benchGraph(256, 1)
	const f = 3
	forest := graph.SpanningForest(g)
	rng := rand.New(rand.NewSource(2))
	faultSets := make([][]int, 64)
	for i := range faultSets {
		faultSets[i] = workload.TreeEdgeFaults(g, forest, 1+i%f, rng)
	}

	coreRows := []struct {
		name   string
		params core.Params
	}{
		{"ours-det-netfind", core.Params{MaxFaults: f, Kind: core.KindDetNetFind}},
		{"ours-rand-rs", core.Params{MaxFaults: f, Kind: core.KindRandRS, Seed: 3}},
		{"dp21-2-agm-whp", core.Params{MaxFaults: f, Kind: core.KindAGM, Seed: 4}},
		{"dp21-2-agm-full", core.Params{MaxFaults: f, Kind: core.KindAGM, Seed: 4, AGMReps: 4 * f * 8}},
	}
	for _, row := range coreRows {
		row := row
		b.Run(row.name, func(b *testing.B) {
			s, err := core.Build(g, row.params)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(s.MaxEdgeLabelBits()), "edgebits")
			b.ReportMetric(float64(core.VertexLabelBits(s.VertexLabel(0))), "vertbits")
			// Fault-label slices are resolved outside the timed loop so the
			// per-op figure measures decoding, not slice allocation.
			labelSets := make([][]core.EdgeLabel, len(faultSets))
			for i, faults := range faultSets {
				fl := make([]core.EdgeLabel, len(faults))
				for j, e := range faults {
					fl[j] = s.EdgeLabel(e)
				}
				labelSets[i] = fl
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl := labelSets[i%len(labelSets)]
				if _, err := core.Connected(s.VertexLabel(i%g.N()), s.VertexLabel((i*7)%g.N()), fl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, full := range []bool{false, true} {
		name := "dp21-1-whp"
		if full {
			name = "dp21-1-full"
		}
		full := full
		b.Run(name, func(b *testing.B) {
			s, err := ptsketch.Build(g, ptsketch.Params{MaxFaults: f, Seed: 5, Full: full})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(s.LabelBits()), "edgebits")
			labelSets := make([][]ptsketch.EdgeLabel, len(faultSets))
			for i, faults := range faultSets {
				fl := make([]ptsketch.EdgeLabel, len(faults))
				for j, e := range faults {
					fl[j] = s.EdgeLabel(e)
				}
				labelSets[i] = fl
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl := labelSets[i%len(labelSets)]
				if _, err := ptsketch.Connected(s.VertexLabel(i%g.N()), s.VertexLabel((i*7)%g.N()), fl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuild is the construction-hot-path series (E14): every scheme
// kind × n × f combination, measuring one full core.Build. This is the
// benchmark behind BENCH_build.json (cmd/ftcbench -json) and the ≥3×
// construction-speed acceptance gate of the hot-path overhaul.
func BenchmarkBuild(b *testing.B) {
	kinds := []struct {
		name string
		kind core.Kind
	}{
		{"det-netfind", core.KindDetNetFind},
		{"det-greedy", core.KindDetGreedy},
		{"rand-rs", core.KindRandRS},
		{"agm", core.KindAGM},
	}
	for _, kr := range kinds {
		kr := kr
		for _, n := range []int{256, 1024, 4096} {
			n := n
			g := benchGraph(n, int64(n))
			for _, f := range []int{2, 3, 4} {
				f := f
				b.Run(kr.name+"/n="+itoa(n)+"/f="+itoa(f), func(b *testing.B) {
					if kr.kind == core.KindDetGreedy && n >= 256 {
						// The greedy ε-net construction is polynomial in m
						// (~3 min per Build already at n=256); its
						// trajectory is tracked by `ftcbench build` at
						// n=96 instead.
						b.Skip("det-greedy hierarchy construction takes minutes at this size")
					}
					b.ReportAllocs()
					var s *core.Scheme
					for i := 0; i < b.N; i++ {
						var err error
						s, err = core.Build(g, core.Params{MaxFaults: f, Kind: kr.kind, Seed: 17})
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(g.M()), "edges")
					b.ReportMetric(float64(s.MaxEdgeLabelBits()), "edgebits")
				})
			}
		}
	}
}

// BenchmarkProbe is the probe-path series (E15): the serving pattern of one
// failure event probed many times, per scheme kind × n × f. "per-call" pays
// the full per-query compile (the historical ftc.Connected path), "faultset"
// probes a FaultSet compiled once (lazy closure, pooled scratch, zero allocs
// in the steady state), "session" the eagerly closed view. This is the
// benchmark behind BENCH_query.json (cmd/ftcbench query -json) and the ≥5×
// amortized-speedup acceptance gate of the decoder-side API redesign.
func BenchmarkProbe(b *testing.B) {
	kinds := []struct {
		name   string
		params func(f int) core.Params
	}{
		{"det-netfind", func(f int) core.Params {
			return core.Params{MaxFaults: f, Kind: core.KindDetNetFind}
		}},
		{"rand-rs", func(f int) core.Params {
			return core.Params{MaxFaults: f, Kind: core.KindRandRS, Seed: 17}
		}},
		// Full-support repetitions so whp decode failures cannot abort
		// the measurement loop.
		{"agm-full", func(f int) core.Params {
			return core.Params{MaxFaults: f, Kind: core.KindAGM, Seed: 17, AGMReps: 4 * f * 8}
		}},
	}
	for _, kr := range kinds {
		kr := kr
		for _, n := range []int{256, 1024} {
			n := n
			g := benchGraph(n, int64(n))
			for _, f := range []int{2, 3, 4} {
				f := f
				// The cell's scheme is built inside the named b.Run so
				// that -bench filters skip the construction cost of
				// non-matching cells.
				b.Run(kr.name+"/n="+itoa(n)+"/f="+itoa(f), func(b *testing.B) {
					s, err := core.Build(g, kr.params(f))
					if err != nil {
						b.Fatal(err)
					}
					rng := rand.New(rand.NewSource(23))
					faults := workload.TreeEdgeFaults(g, s.Forest, f, rng)
					fl := make([]core.EdgeLabel, len(faults))
					for i, e := range faults {
						fl[i] = s.EdgeLabel(e)
					}
					b.Run("per-call", func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							if _, err := core.Connected(s.VertexLabel(i%g.N()), s.VertexLabel((i*7)%g.N()), fl); err != nil {
								b.Fatal(err)
							}
						}
					})
					b.Run("faultset", func(b *testing.B) {
						fs, err := core.CompileFaults(fl)
						if err != nil {
							b.Fatal(err)
						}
						// Warm the component closure so the loop measures
						// the steady state the acceptance gate is about.
						if _, err := fs.Connected(s.VertexLabel(0), s.VertexLabel(1)); err != nil {
							b.Fatal(err)
						}
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if _, err := fs.Connected(s.VertexLabel(i%g.N()), s.VertexLabel((i*7)%g.N())); err != nil {
								b.Fatal(err)
							}
						}
					})
					b.Run("session", func(b *testing.B) {
						fs, err := core.CompileFaults(fl)
						if err != nil {
							b.Fatal(err)
						}
						sess, err := fs.Session()
						if err != nil {
							b.Fatal(err)
						}
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if _, err := sess.Connected(s.VertexLabel(i%g.N()), s.VertexLabel((i*7)%g.N())); err != nil {
								b.Fatal(err)
							}
						}
					})
				})
			}
		}
	}
}

// BenchmarkFig1AuxTransform measures the §3.2 auxiliary-graph transform
// (the Figure 1 construction) at scale.
func BenchmarkFig1AuxTransform(b *testing.B) {
	g := benchGraph(2048, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.NewAuxView(g)
	}
}

// BenchmarkFig2Embedding measures the Euler-tour embedding (Figure 2) plus
// one NetFind hierarchy level on it.
func BenchmarkFig2Embedding(b *testing.B) {
	g := benchGraph(2048, 7)
	view := core.NewAuxView(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.NewAuxView(g)
	}
	b.ReportMetric(float64(len(view.Points)), "points")
}

// BenchmarkLabelSizeVsN records the E4 scaling series: max edge label bits
// as n grows (fixed f=2).
func BenchmarkLabelSizeVsN(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		n := n
		b.Run(itoa(n), func(b *testing.B) {
			g := benchGraph(n, int64(n))
			var bits int
			for i := 0; i < b.N; i++ {
				s, err := core.Build(g, core.Params{MaxFaults: 2})
				if err != nil {
					b.Fatal(err)
				}
				bits = s.MaxEdgeLabelBits()
			}
			b.ReportMetric(float64(bits), "edgebits")
			b.ReportMetric(float64(bits)/math.Pow(math.Log2(float64(g.M())), 3), "bits/log³m")
		})
	}
}

// BenchmarkLabelSizeVsF records the E4 series in f (fixed n).
func BenchmarkLabelSizeVsF(b *testing.B) {
	g := benchGraph(256, 99)
	for _, f := range []int{1, 2, 4, 8} {
		f := f
		b.Run(itoa(f), func(b *testing.B) {
			var bits int
			for i := 0; i < b.N; i++ {
				s, err := core.Build(g, core.Params{MaxFaults: f})
				if err != nil {
					b.Fatal(err)
				}
				bits = s.MaxEdgeLabelBits()
			}
			b.ReportMetric(float64(bits), "edgebits")
			b.ReportMetric(float64(bits)/float64(f*f), "bits/f²")
		})
	}
}

// BenchmarkQueryVsF records the E5 series: decode time as |F| grows, for
// the fast (§7.6) and basic (§7.2) algorithms.
func BenchmarkQueryVsF(b *testing.B) {
	g := benchGraph(512, 11)
	const budget = 8
	s, err := core.Build(g, core.Params{MaxFaults: budget})
	if err != nil {
		b.Fatal(err)
	}
	forest := s.Forest
	rng := rand.New(rand.NewSource(12))
	for _, fs := range []int{1, 2, 4, 8} {
		fs := fs
		faults := workload.TreeEdgeFaults(g, forest, fs, rng)
		fl := make([]core.EdgeLabel, len(faults))
		for j, e := range faults {
			fl[j] = s.EdgeLabel(e)
		}
		b.Run("fast/F="+itoa(fs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Connected(s.VertexLabel(i%g.N()), s.VertexLabel((i*13)%g.N()), fl); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("basic/F="+itoa(fs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ConnectedBasic(s.VertexLabel(i%g.N()), s.VertexLabel((i*13)%g.N()), fl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConstructVsM records the E6 construction-time series.
func BenchmarkConstructVsM(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		n := n
		b.Run(itoa(n), func(b *testing.B) {
			g := benchGraph(n, int64(3*n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(g, core.Params{MaxFaults: 2}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.M()), "edges")
		})
	}
}

// BenchmarkAdaptiveDecode contrasts adaptive prefix decoding (Appendix B,
// E13) against always-full-threshold decoding by issuing queries with tiny
// |F| against labels built for a large budget.
func BenchmarkAdaptiveDecode(b *testing.B) {
	g := benchGraph(512, 21)
	s, err := core.Build(g, core.Params{MaxFaults: 8})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	faults := workload.TreeEdgeFaults(g, s.Forest, 1, rng)
	fl := []core.EdgeLabel{s.EdgeLabel(faults[0])}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Connected(s.VertexLabel(i%g.N()), s.VertexLabel((i*3)%g.N()), fl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistanceLabeling measures the Corollary 1 oracle (E8): build
// cost amortized into setup, per-op query, bounds quality as metrics.
func BenchmarkDistanceLabeling(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	g := workload.ErdosRenyi(96, 0.1, true, rng)
	workload.AssignRandomWeights(g, 100, rng)
	const f, kappa = 2, 2
	s, err := distlabel.Build(g, distlabel.Params{MaxFaults: f, Kappa: kappa})
	if err != nil {
		b.Fatal(err)
	}
	vb, eb := s.LabelBits()
	b.ReportMetric(float64(vb), "vertbits")
	b.ReportMetric(float64(eb), "edgebits")
	faults := workload.RandomFaults(g, f, rng)
	fl := make([]distlabel.EdgeLabel, len(faults))
	for i, e := range faults {
		fl[i] = s.EdgeLabel(e)
	}
	sv := s.VertexLabel(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tv := s.VertexLabel(1 + i%(g.N()-1))
		if _, err := distlabel.Query(sv, tv, fl, g.N(), kappa); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouting measures the Corollary 2 scheme (E9): per-op plan+deliver
// cost with stretch and table sizes as metrics.
func BenchmarkRouting(b *testing.B) {
	g := workload.Grid(10, 10)
	const f = 2
	net, err := routing.Build(g, f)
	if err != nil {
		b.Fatal(err)
	}
	total, maxLocal := net.TableBits()
	b.ReportMetric(float64(total), "tablebits")
	b.ReportMetric(float64(maxLocal), "maxlocalbits")
	rng := rand.New(rand.NewSource(41))
	faults := workload.RandomFaults(g, f, rng)
	var hops, opt float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, d := i%g.N(), (i*37+13)%g.N()
		path, ok, err := net.Route(s, d, faults)
		if err != nil {
			b.Fatal(err)
		}
		if ok && s != d {
			hops += float64(len(path) - 1)
			opt += float64(graph.HopDistancesUnder(g, workload.FaultSet(faults), s)[d])
		}
	}
	b.StopTimer()
	if opt > 0 {
		b.ReportMetric(hops/opt, "stretch")
	}
}

// BenchmarkCongestRounds measures the Theorem 3 construction (E10): rounds
// are the metric; wall time is incidental.
func BenchmarkCongestRounds(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid12x12", workload.Grid(12, 12)},
		{"er192", benchGraph(192, 51)},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var rep *congest.ConstructionReport
			for i := 0; i < b.N; i++ {
				n := congest.NewNet(tc.g)
				var err error
				rep, _, _, _, err = congest.BuildLabels(n, 0, 16)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.TotalRounds), "rounds")
			b.ReportMetric(math.Sqrt(float64(tc.g.M()))*float64(rep.Depth), "sqrtM*D")
		})
	}
}

// BenchmarkRandHierarchy measures the Proposition 5 construction (E12).
func BenchmarkRandHierarchy(b *testing.B) {
	g := benchGraph(1024, 61)
	s, err := core.Build(g, core.Params{MaxFaults: 3, Kind: core.KindRandRS, Seed: 62})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Spec().Levels), "depth")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Params{MaxFaults: 3, Kind: core.KindRandRS, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
