package ftc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestQuickstartFlow(t *testing.T) {
	scheme, err := New(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, WithMaxFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	s, u := scheme.VertexLabel(0), scheme.VertexLabel(2)
	ok, err := Connected(s, u, nil)
	if err != nil || !ok {
		t.Fatalf("no faults: ok=%v err=%v", ok, err)
	}
	f := []EdgeLabel{scheme.MustEdgeLabel(1, 2), scheme.MustEdgeLabel(2, 3)}
	ok, err = Connected(s, u, f)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("vertex 2 should be cut off")
	}
}

func TestAllVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := workload.ErdosRenyi(40, 0.12, true, rng)
	variants := map[string][]Option{
		"det":    {WithMaxFaults(3), WithDeterministic()},
		"greedy": {WithMaxFaults(3), WithGreedyNet()},
		"rand":   {WithMaxFaults(3), WithRandomized(5)},
	}
	schemes := map[string]*Scheme{}
	for name, opts := range variants {
		s, err := NewFromGraph(g, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		schemes[name] = s
	}
	for q := 0; q < 150; q++ {
		faults := workload.RandomFaults(g, rng.Intn(4), rng)
		sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
		want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
		for name, s := range schemes {
			fl := make([]EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = s.EdgeLabelByIndex(e)
			}
			got, err := Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got != want {
				t.Fatalf("%s: Connected(%d,%d,%v) = %v, want %v", name, sv, tv, faults, got, want)
			}
		}
	}
}

func TestEdgeLabelCopyIsIndependent(t *testing.T) {
	s, err := New(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, WithMaxFaults(1))
	if err != nil {
		t.Fatal(err)
	}
	l := s.EdgeLabelByIndex(0)
	for i := range l.Out {
		l.Out[i] = ^uint64(0)
	}
	fresh := s.EdgeLabelByIndex(0)
	for _, w := range fresh.Out {
		if w == ^uint64(0) {
			t.Fatal("mutating a returned label corrupted scheme storage")
		}
	}
}

func TestEdgeLabelLookup(t *testing.T) {
	s, err := New(3, [][2]int{{0, 1}, {1, 2}}, WithMaxFaults(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EdgeLabel(0, 2); err == nil {
		t.Fatal("missing edge accepted")
	}
	a, err := s.EdgeLabel(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.EdgeLabel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Child != b.Child {
		t.Fatal("edge lookup must be orientation independent")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, [][2]int{{0, 0}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := New(2, [][2]int{{0, 3}}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := New(3, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestStats(t *testing.T) {
	s, err := NewFromGraph(workload.Grid(6, 6), WithMaxFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Kind != "det-netfind" {
		t.Fatalf("Kind = %q", st.Kind)
	}
	if st.VertexLabelBits <= 0 || st.MaxEdgeLabelBits <= st.VertexLabelBits {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Threshold < 2 || st.HierarchyDepth < 1 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

func TestMarshalThroughPublicAPI(t *testing.T) {
	s, err := New(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}, WithMaxFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	vb := MarshalVertexLabel(s.VertexLabel(1))
	v, err := UnmarshalVertexLabel(vb)
	if err != nil {
		t.Fatal(err)
	}
	eb := MarshalEdgeLabel(s.MustEdgeLabel(0, 2))
	e, err := UnmarshalEdgeLabel(eb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Connected(v, s.VertexLabel(3), []EdgeLabel{e})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ConnectedUnder(s.Graph(), map[int]bool{s.Graph().EdgeIndex(0, 2): true}, 1, 3)
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestErrorsAreExported(t *testing.T) {
	s1, err := New(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(3, [][2]int{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Connected(s1.VertexLabel(0), s2.VertexLabel(1), nil); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("err = %v, want ErrLabelMismatch", err)
	}
}
