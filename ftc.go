// Package ftc is a Go implementation of the deterministic fault-tolerant
// connectivity (f-FTC) labeling scheme of Izumi, Emek, Wadayama, and
// Masuzawa (PODC 2023, arXiv:2208.11459).
//
// An f-FTC labeling assigns every vertex and edge of a graph a short label
// such that, for any vertices s, t and any set F of at most f faulty edges,
// the connectivity of s and t in G − F is decided from the labels of s, t,
// and the edges of F alone — no access to the graph. The scheme here is
// deterministic (every query is answered correctly, not just with high
// probability), with O(f²·polylog n)-bit edge labels and O(log n)-bit
// vertex labels.
//
// # Quick start
//
//	scheme, err := ftc.New(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
//	    ftc.WithMaxFaults(2))
//	if err != nil { ... }
//	s := scheme.VertexLabel(0)
//	t := scheme.VertexLabel(2)
//	f := []ftc.EdgeLabel{scheme.MustEdgeLabel(1, 2), scheme.MustEdgeLabel(2, 3)}
//	ok, err := ftc.Connected(s, t, f) // false: 2 is cut off from 0
//
// # Serving many probes of one failure event
//
// Connected re-validates and re-compiles its fault slice on every call. The
// deployment pattern is "one failure event, many probes", so compile the
// fault set once and probe it:
//
//	fs, err := ftc.NewFaultSet(f)
//	if err != nil { ... }
//	ok, err := fs.Connected(s, t)        // zero-alloc steady state
//	oks, err := fs.ConnectedBatch(pairs) // many probes in one call
//	sess, err := fs.Session()            // eager closure, multi-component
//
// FaultSet probes are safe from concurrent goroutines.
//
// # Scheme variants
//
// Four constructions share the same framework and query machinery, matching
// the rows of Table 1 in the paper:
//
//   - WithDeterministic (default): Reed–Solomon outdetect sketches over the
//     deterministic NetFind ε-net hierarchy. Full query support,
//     deterministic, near-linear construction.
//   - WithGreedyNet: the polynomial-time alternative deterministic
//     sparsification (the paper's second variant slot).
//   - WithRandomized: Reed–Solomon sketches over a random sampling
//     hierarchy — the paper's improved randomized scheme (full support,
//     smaller labels).
//   - WithAGM: the Dory–Parter graph-sketch baseline (whp query support;
//     see WithAGMReps to trade label size for failure probability).
package ftc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hierarchy"
)

// VertexLabel is the O(log n)-bit label assigned to a vertex.
type VertexLabel = core.VertexLabel

// EdgeLabel is the label assigned to an edge; for the deterministic scheme
// it is O(f² log³ n) bits.
type EdgeLabel = core.EdgeLabel

// Re-exported sentinel errors; test with errors.Is.
var (
	// ErrLabelMismatch: labels from different graphs/constructions mixed
	// in one query.
	ErrLabelMismatch = core.ErrLabelMismatch
	// ErrStaleLabel: labels from different generations of one dynamic
	// Network mixed in one query — the topology changed under the older
	// label, so the decoder fails fast instead of answering against a
	// graph that no longer exists. Wraps ErrLabelMismatch.
	ErrStaleLabel = core.ErrStaleLabel
	// ErrTooManyFaults: more (distinct) faults than the construction's
	// budget f.
	ErrTooManyFaults = core.ErrTooManyFaults
	// ErrDecode: outdetect decoding failed — the measured whp failure of
	// the AGM baseline, or a practical-threshold overflow surfaced as an
	// error instead of a wrong answer (DESIGN.md §3.4).
	ErrDecode = core.ErrDecode
)

// Scheme is a built f-FTC labeling of one graph.
type Scheme struct {
	g     *graph.Graph
	inner *core.Scheme
}

type options struct {
	params core.Params
}

// Option configures New.
type Option func(*options)

// WithMaxFaults sets the fault budget f (default 2).
func WithMaxFaults(f int) Option {
	return func(o *options) { o.params.MaxFaults = f }
}

// WithDeterministic selects the headline deterministic scheme (NetFind
// hierarchy). This is the default.
func WithDeterministic() Option {
	return func(o *options) { o.params.Kind = core.KindDetNetFind }
}

// WithGreedyNet selects the polynomial-time greedy ε-net deterministic
// variant.
func WithGreedyNet() Option {
	return func(o *options) { o.params.Kind = core.KindDetGreedy }
}

// WithRandomized selects the randomized Reed–Solomon scheme (sampling
// hierarchy) with the given seed. Full query support; smaller labels than
// the deterministic scheme.
func WithRandomized(seed int64) Option {
	return func(o *options) {
		o.params.Kind = core.KindRandRS
		o.params.Seed = seed
	}
}

// WithAGM selects the Dory–Parter AGM-sketch baseline with the given seed
// (whp query support).
func WithAGM(seed int64) Option {
	return func(o *options) {
		o.params.Kind = core.KindAGM
		o.params.Seed = seed
	}
}

// WithAGMReps overrides the AGM repetition count: larger values push the
// failure probability down (the whp→full blow-up of DP21 footnote 4 scales
// repetitions by f).
func WithAGMReps(reps int) Option {
	return func(o *options) { o.params.AGMReps = reps }
}

// WithThreshold overrides the Reed–Solomon threshold function k(f, m). The
// default is the practical hierarchy.DefaultThreshold; pass
// WithStrictTheoryThreshold for the worst-case Lemma 5 constant.
func WithThreshold(fn func(f, m int) int) Option {
	return func(o *options) { o.params.Threshold = fn }
}

// WithStrictTheoryThreshold uses the full worst-case threshold
// 6(2f+1)²·log₂m of Lemma 5. Labels become very large; meant for
// small-instance validation.
func WithStrictTheoryThreshold() Option {
	return WithThreshold(hierarchy.StrictTheoryThreshold)
}

// WithHeadroom sets how many incrementally-inserted edges a dynamic
// Network can attach at any one vertex before a commit falls back to a
// full rebuild (default core.DefaultAuxSlack). Only meaningful with Open;
// schemes built by New always use dense numbering.
func WithHeadroom(slots int) Option {
	return func(o *options) { o.params.AuxSlack = slots }
}

// New builds an f-FTC labeling scheme for the undirected simple graph on n
// vertices with the given edges. The graph may be disconnected; self-loops
// and duplicate edges are rejected.
func New(n int, edges [][2]int, opts ...Option) (*Scheme, error) {
	g := graph.New(n)
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("ftc: %w", err)
		}
	}
	return NewFromGraph(g, opts...)
}

// NewFromGraph builds a scheme over an already-assembled internal graph. It
// is the entry point used by the benchmark harness and the application
// layers; New is the friendlier public constructor.
func NewFromGraph(g *graph.Graph, opts ...Option) (*Scheme, error) {
	o := options{params: core.Params{MaxFaults: 2, Kind: core.KindDetNetFind}}
	for _, opt := range opts {
		opt(&o)
	}
	// Static schemes always use dense numbering: WithHeadroom only applies
	// to Open, and a stray headroom option must not silently change the
	// labeling (and its token) of a one-shot build.
	o.params.AuxSlack = 0
	inner, err := core.Build(g, o.params)
	if err != nil {
		return nil, fmt.Errorf("ftc: %w", err)
	}
	return &Scheme{g: g, inner: inner}, nil
}

// N returns the vertex count.
func (s *Scheme) N() int { return s.g.N() }

// M returns the edge count.
func (s *Scheme) M() int { return s.g.M() }

// MaxFaults returns the fault budget f.
func (s *Scheme) MaxFaults() int { return s.inner.MaxFaults() }

// Generation returns the scheme's generation stamp: 0 for schemes built by
// New, and the committed generation for snapshots of a dynamic Network.
func (s *Scheme) Generation() uint64 { return s.inner.Generation() }

// VertexLabel returns the label of vertex v.
func (s *Scheme) VertexLabel(v int) VertexLabel { return s.inner.VertexLabel(v) }

// EdgeLabel returns an independent copy of the label of edge {u, v}.
func (s *Scheme) EdgeLabel(u, v int) (EdgeLabel, error) {
	idx := s.g.EdgeIndex(u, v)
	if idx < 0 {
		return EdgeLabel{}, fmt.Errorf("ftc: no edge (%d,%d)", u, v)
	}
	return s.EdgeLabelByIndex(idx), nil
}

// MustEdgeLabel is EdgeLabel that panics on a missing edge — convenient in
// examples and tests.
func (s *Scheme) MustEdgeLabel(u, v int) EdgeLabel {
	l, err := s.EdgeLabel(u, v)
	if err != nil {
		panic(err)
	}
	return l
}

// EdgeLabelByIndex returns an independent copy of the label of the i-th
// inserted edge.
func (s *Scheme) EdgeLabelByIndex(i int) EdgeLabel {
	l := s.inner.EdgeLabel(i)
	l.Out = append([]uint64(nil), l.Out...)
	return l
}

// FaultSet is a compiled, immutable fault set: the fault labels are parsed,
// validated, and deduplicated once (per spanning-forest component), after
// which Connected/ConnectedBatch/Session probes are cheap, allocation-free
// in the steady state, and safe from concurrent goroutines. Like every
// decoder-side object, it is built purely from labels.
type FaultSet = core.FaultSet

// NewFaultSet compiles fault-edge labels into a reusable FaultSet. It
// enforces the global fault budget |F| ≤ f (ErrTooManyFaults) and rejects
// mixed-scheme labels (ErrLabelMismatch). An empty slice yields the trivial
// FaultSet under which connectivity degenerates to same-component.
func NewFaultSet(faults []EdgeLabel) (*FaultSet, error) {
	return core.CompileFaults(faults)
}

// Connected is the universal decoder: it decides s–t connectivity under the
// fault set F given only labels. Works for labels produced by any Scheme of
// this package (the scheme variant is encoded in the labels themselves).
//
// Connected compiles a throwaway FaultSet per call; when the same fault set
// is probed repeatedly, build it once with NewFaultSet and probe that.
func Connected(s, t VertexLabel, faults []EdgeLabel) (bool, error) {
	return core.Connected(s, t, faults)
}

// ConnectedBasic answers with the unoptimized §7.2 query algorithm. Results
// always match Connected; exposed for the query-time experiments.
func ConnectedBasic(s, t VertexLabel, faults []EdgeLabel) (bool, error) {
	return core.ConnectedBasic(s, t, faults)
}

// MarshalVertexLabel encodes a vertex label as a self-contained byte string.
func MarshalVertexLabel(l VertexLabel) []byte { return core.MarshalVertexLabel(l) }

// UnmarshalVertexLabel decodes a vertex label.
func UnmarshalVertexLabel(b []byte) (VertexLabel, error) { return core.UnmarshalVertexLabel(b) }

// MarshalEdgeLabel encodes an edge label as a self-contained byte string.
func MarshalEdgeLabel(l EdgeLabel) []byte { return core.MarshalEdgeLabel(l) }

// UnmarshalEdgeLabel decodes an edge label.
func UnmarshalEdgeLabel(b []byte) (EdgeLabel, error) { return core.UnmarshalEdgeLabel(b) }

// Stats summarizes label sizes — the paper's headline metric.
type Stats struct {
	VertexLabelBits  int // per-vertex label size (constant across vertices)
	MaxEdgeLabelBits int // maximum per-edge label size
	Kind             string
	Threshold        int // Reed–Solomon threshold k (0 for AGM)
	HierarchyDepth   int // number of sparsification levels (0 for AGM)
}

// Stats returns the size accounting of the scheme.
func (s *Scheme) Stats() Stats {
	spec := s.inner.Spec()
	st := Stats{
		MaxEdgeLabelBits: s.inner.MaxEdgeLabelBits(),
		Kind:             spec.Kind.String(),
		Threshold:        spec.K,
		HierarchyDepth:   spec.Levels,
	}
	if s.g.N() > 0 {
		st.VertexLabelBits = core.VertexLabelBits(s.inner.VertexLabel(0))
	}
	return st
}

// Graph exposes the underlying internal graph (read-only) for the harness
// and application layers.
func (s *Scheme) Graph() *graph.Graph { return s.g }

// Inner exposes the core scheme for white-box experiments (hierarchy depth,
// spanning forest, etc.). Not part of the stable API surface.
func (s *Scheme) Inner() *core.Scheme { return s.inner }
