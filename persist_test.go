package ftc

import (
	"bytes"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden snapshot fixture under testdata/")

// persistTestEdges is a fixed 12-vertex graph (a Petersen graph plus a
// pendant path) used by the round-trip and golden tests: it has tree edges,
// non-tree edges, and a degree-1 tail, and the deterministic construction
// over it is reproducible bit-for-bit.
var persistTestEdges = [][2]int{
	{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, // outer pentagon
	{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}, // inner pentagram
	{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}, // spokes
	{9, 10}, {10, 11}, // pendant path
}

func persistSchemes(t *testing.T, f int) map[string]*Scheme {
	t.Helper()
	out := map[string]*Scheme{}
	for name, opts := range map[string][]Option{
		"det-netfind": {WithMaxFaults(f), WithDeterministic()},
		"det-greedy":  {WithMaxFaults(f), WithGreedyNet()},
		"rand-rs":     {WithMaxFaults(f), WithRandomized(23)},
		"agm":         {WithMaxFaults(f), WithAGM(23), WithAGMReps(4 * f * 6)},
	} {
		s, err := New(12, persistTestEdges, opts...)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out[name] = s
	}
	return out
}

// TestSaveLoadRoundTripAllKinds is the acceptance gate for the snapshot
// subsystem: for every scheme kind, Save→Load must yield byte-identical
// per-label marshalings and identical Connected answers.
func TestSaveLoadRoundTripAllKinds(t *testing.T) {
	const f = 3
	for name, s := range persistSchemes(t, f) {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if loaded.N() != s.N() || loaded.M() != s.M() || loaded.MaxFaults() != s.MaxFaults() {
			t.Fatalf("%s: scheme shape differs after load", name)
		}
		if loaded.Stats() != s.Stats() {
			t.Fatalf("%s: stats differ after load: %+v vs %+v", name, loaded.Stats(), s.Stats())
		}
		for v := 0; v < s.N(); v++ {
			if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
				t.Fatalf("%s: vertex %d marshaling differs", name, v)
			}
		}
		for e := 0; e < s.M(); e++ {
			if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabelByIndex(e)), MarshalEdgeLabel(loaded.EdgeLabelByIndex(e))) {
				t.Fatalf("%s: edge %d marshaling differs", name, e)
			}
		}
		// FaultSets compiled from loaded labels answer like the original
		// scheme's and like the BFS oracle.
		g := s.Graph()
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 100; trial++ {
			var faults []int
			for len(faults) < 1+rng.Intn(f) {
				faults = append(faults, rng.Intn(s.M()))
			}
			fl := make([]EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = loaded.EdgeLabelByIndex(e)
			}
			fs, err := NewFaultSet(fl)
			if err != nil {
				t.Fatalf("%s: NewFaultSet over loaded labels: %v", name, err)
			}
			set := map[int]bool{}
			for _, e := range faults {
				set[e] = true
			}
			for q := 0; q < 10; q++ {
				sv, tv := rng.Intn(s.N()), rng.Intn(s.N())
				got, err := fs.Connected(loaded.VertexLabel(sv), loaded.VertexLabel(tv))
				if err != nil {
					t.Fatalf("%s: probe: %v", name, err)
				}
				orig, err := Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
				if err != nil {
					t.Fatalf("%s: original probe: %v", name, err)
				}
				if want := graph.ConnectedUnder(g, set, sv, tv); got != want || orig != want {
					t.Fatalf("%s: probe (%d,%d|%v): loaded=%v original=%v oracle=%v",
						name, sv, tv, faults, got, orig, want)
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("got %v, want ErrBadSnapshot", err)
	}
}

// goldenPath is the checked-in current-version snapshot fixture. The test
// guarantees that any change to the wire format either keeps old snapshots
// loadable or bumps core.SnapshotVersion (making old readers fail loudly) —
// it can never silently re-interpret old bytes. goldenV1Path is the legacy
// version-1 fixture, kept to prove v1 snapshots still load.
const (
	goldenPath   = "testdata/golden_v2.ftcsnap"
	goldenV1Path = "testdata/golden_v1.ftcsnap"
)

func goldenScheme(t *testing.T) *Scheme {
	t.Helper()
	s, err := New(12, persistTestEdges, WithMaxFaults(2), WithDeterministic())
	if err != nil {
		t.Fatalf("golden build: %v", err)
	}
	return s
}

func TestGoldenSnapshotCompatibility(t *testing.T) {
	if *updateGolden {
		s := goldenScheme(t)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, buf.Len())
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with `go test -run TestGolden -update .`): %v", err)
	}
	if got := data[6]; got != core.SnapshotVersion {
		t.Fatalf("golden fixture carries version %d, build writes %d — check in a new fixture for the new version and keep this one loadable or rejected via ErrSnapshotVersion", got, core.SnapshotVersion)
	}
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("golden snapshot no longer loads — the wire format changed without bumping core.SnapshotVersion: %v", err)
	}
	// The deterministic construction is reproducible, so the fixture must
	// decode to exactly what a fresh build produces today.
	s := goldenScheme(t)
	for v := 0; v < s.N(); v++ {
		if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
			t.Fatalf("golden vertex %d label differs from fresh build", v)
		}
	}
	for e := 0; e < s.M(); e++ {
		if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabelByIndex(e)), MarshalEdgeLabel(loaded.EdgeLabelByIndex(e))) {
			t.Fatalf("golden edge %d label differs from fresh build", e)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("fresh snapshot differs from golden fixture bytes — wire format drifted; bump core.SnapshotVersion and regenerate")
	}
}

// TestGoldenV1SnapshotStillLoads pins the version-1 compatibility promise:
// snapshots written before the dynamic-network extension (no generation /
// aux-slack fields) keep loading, with both fields defaulting to zero, and
// decode to exactly what a fresh static build produces today.
func TestGoldenV1SnapshotStillLoads(t *testing.T) {
	data, err := os.ReadFile(goldenV1Path)
	if err != nil {
		t.Fatalf("missing legacy v1 fixture: %v", err)
	}
	if got := data[6]; got != 1 {
		t.Fatalf("legacy fixture carries version %d, want 1", got)
	}
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v1 snapshot no longer loads: %v", err)
	}
	if loaded.Generation() != 0 {
		t.Fatalf("v1 snapshot restored generation %d, want 0", loaded.Generation())
	}
	s := goldenScheme(t)
	for v := 0; v < s.N(); v++ {
		if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
			t.Fatalf("v1 vertex %d label differs from fresh build", v)
		}
	}
	for e := 0; e < s.M(); e++ {
		if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabelByIndex(e)), MarshalEdgeLabel(loaded.EdgeLabelByIndex(e))) {
			t.Fatalf("v1 edge %d label differs from fresh build", e)
		}
	}
}
