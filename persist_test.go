package ftc

import (
	"bytes"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden snapshot fixture under testdata/")

// persistTestEdges is a fixed 12-vertex graph (a Petersen graph plus a
// pendant path) used by the round-trip and golden tests: it has tree edges,
// non-tree edges, and a degree-1 tail, and the deterministic construction
// over it is reproducible bit-for-bit.
var persistTestEdges = [][2]int{
	{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, // outer pentagon
	{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}, // inner pentagram
	{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}, // spokes
	{9, 10}, {10, 11}, // pendant path
}

func persistSchemes(t *testing.T, f int) map[string]*Scheme {
	t.Helper()
	out := map[string]*Scheme{}
	for name, opts := range map[string][]Option{
		"det-netfind": {WithMaxFaults(f), WithDeterministic()},
		"det-greedy":  {WithMaxFaults(f), WithGreedyNet()},
		"rand-rs":     {WithMaxFaults(f), WithRandomized(23)},
		"agm":         {WithMaxFaults(f), WithAGM(23), WithAGMReps(4 * f * 6)},
	} {
		s, err := New(12, persistTestEdges, opts...)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out[name] = s
	}
	return out
}

// TestSaveLoadRoundTripAllKinds is the acceptance gate for the snapshot
// subsystem: for every scheme kind, Save→Load must yield byte-identical
// per-label marshalings and identical Connected answers.
func TestSaveLoadRoundTripAllKinds(t *testing.T) {
	const f = 3
	for name, s := range persistSchemes(t, f) {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if loaded.N() != s.N() || loaded.M() != s.M() || loaded.MaxFaults() != s.MaxFaults() {
			t.Fatalf("%s: scheme shape differs after load", name)
		}
		if loaded.Stats() != s.Stats() {
			t.Fatalf("%s: stats differ after load: %+v vs %+v", name, loaded.Stats(), s.Stats())
		}
		for v := 0; v < s.N(); v++ {
			if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
				t.Fatalf("%s: vertex %d marshaling differs", name, v)
			}
		}
		for e := 0; e < s.M(); e++ {
			if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabelByIndex(e)), MarshalEdgeLabel(loaded.EdgeLabelByIndex(e))) {
				t.Fatalf("%s: edge %d marshaling differs", name, e)
			}
		}
		// FaultSets compiled from loaded labels answer like the original
		// scheme's and like the BFS oracle.
		g := s.Graph()
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 100; trial++ {
			var faults []int
			for len(faults) < 1+rng.Intn(f) {
				faults = append(faults, rng.Intn(s.M()))
			}
			fl := make([]EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = loaded.EdgeLabelByIndex(e)
			}
			fs, err := NewFaultSet(fl)
			if err != nil {
				t.Fatalf("%s: NewFaultSet over loaded labels: %v", name, err)
			}
			set := map[int]bool{}
			for _, e := range faults {
				set[e] = true
			}
			for q := 0; q < 10; q++ {
				sv, tv := rng.Intn(s.N()), rng.Intn(s.N())
				got, err := fs.Connected(loaded.VertexLabel(sv), loaded.VertexLabel(tv))
				if err != nil {
					t.Fatalf("%s: probe: %v", name, err)
				}
				orig, err := Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
				if err != nil {
					t.Fatalf("%s: original probe: %v", name, err)
				}
				if want := graph.ConnectedUnder(g, set, sv, tv); got != want || orig != want {
					t.Fatalf("%s: probe (%d,%d|%v): loaded=%v original=%v oracle=%v",
						name, sv, tv, faults, got, orig, want)
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("got %v, want ErrBadSnapshot", err)
	}
}

// goldenPath is the checked-in current-version snapshot fixture. The test
// guarantees that any change to the wire format either keeps old snapshots
// loadable or bumps core.SnapshotVersion (making old readers fail loudly) —
// it can never silently re-interpret old bytes. goldenV1Path and
// goldenV2Path are the legacy fixtures, kept to prove old snapshots still
// load.
const (
	goldenPath   = "testdata/golden_v3.ftcsnap"
	goldenV1Path = "testdata/golden_v1.ftcsnap"
	goldenV2Path = "testdata/golden_v2.ftcsnap"
)

func goldenScheme(t *testing.T) *Scheme {
	t.Helper()
	s, err := New(12, persistTestEdges, WithMaxFaults(2), WithDeterministic())
	if err != nil {
		t.Fatalf("golden build: %v", err)
	}
	return s
}

func TestGoldenSnapshotCompatibility(t *testing.T) {
	if *updateGolden {
		s := goldenScheme(t)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, buf.Len())
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with `go test -run TestGolden -update .`): %v", err)
	}
	if got := data[6]; got != core.SnapshotVersion {
		t.Fatalf("golden fixture carries version %d, build writes %d — check in a new fixture for the new version and keep this one loadable or rejected via ErrSnapshotVersion", got, core.SnapshotVersion)
	}
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("golden snapshot no longer loads — the wire format changed without bumping core.SnapshotVersion: %v", err)
	}
	// The deterministic construction is reproducible, so the fixture must
	// decode to exactly what a fresh build produces today.
	s := goldenScheme(t)
	for v := 0; v < s.N(); v++ {
		if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
			t.Fatalf("golden vertex %d label differs from fresh build", v)
		}
	}
	for e := 0; e < s.M(); e++ {
		if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabelByIndex(e)), MarshalEdgeLabel(loaded.EdgeLabelByIndex(e))) {
			t.Fatalf("golden edge %d label differs from fresh build", e)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("fresh snapshot differs from golden fixture bytes — wire format drifted; bump core.SnapshotVersion and regenerate")
	}
}

// TestGoldenLegacySnapshotsStillLoad pins the backward-compatibility
// promise for every historical wire version: the v1 fixture (written
// before the dynamic-network extension; generation and aux slack default
// to zero) and the v2 fixture (eager length-prefixed label sections) keep
// loading and decode to exactly what a fresh static build produces today.
func TestGoldenLegacySnapshotsStillLoad(t *testing.T) {
	s := goldenScheme(t)
	for _, tc := range []struct {
		path    string
		version byte
	}{
		{goldenV1Path, 1},
		{goldenV2Path, 2},
	} {
		data, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatalf("missing legacy fixture: %v", err)
		}
		if got := data[6]; got != tc.version {
			t.Fatalf("%s carries version %d, want %d", tc.path, got, tc.version)
		}
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("v%d snapshot no longer loads: %v", tc.version, err)
		}
		if loaded.Generation() != 0 {
			t.Fatalf("v%d snapshot restored generation %d, want 0", tc.version, loaded.Generation())
		}
		for v := 0; v < s.N(); v++ {
			if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
				t.Fatalf("v%d vertex %d label differs from fresh build", tc.version, v)
			}
		}
		for e := 0; e < s.M(); e++ {
			if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabelByIndex(e)), MarshalEdgeLabel(loaded.EdgeLabelByIndex(e))) {
				t.Fatalf("v%d edge %d label differs from fresh build", tc.version, e)
			}
		}
	}
}

// TestSnapshotVersionMatrix is the cross-version equivalence gate: one
// scheme written at every wire version this build speaks must load back —
// eagerly for v1/v2, lazily for v3 — to byte-identical per-label
// marshalings and identical metadata. It also pins the laziness itself:
// loading a v3 snapshot decodes no labels until one is touched.
func TestSnapshotVersionMatrix(t *testing.T) {
	for name, s := range persistSchemes(t, 3) {
		inner := s.Inner()
		loads := map[byte]*LoadedScheme{}
		for _, version := range []byte{1, 2, 3} {
			data, err := inner.MarshalBinaryVersion(version)
			if err != nil {
				t.Fatalf("%s: marshal v%d: %v", name, version, err)
			}
			if got := data[6]; got != version {
				t.Fatalf("%s: wrote version byte %d, want %d", name, got, version)
			}
			loaded, err := Load(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s: load v%d: %v", name, version, err)
			}
			loads[version] = loaded
		}
		if lazy, _, _ := loads[2].Inner().LazyLabels(); lazy {
			t.Fatalf("%s: v2 load is lazy, want eager", name)
		}
		lazy, verts, edges := loads[3].Inner().LazyLabels()
		if !lazy || verts != 0 || edges != 0 {
			t.Fatalf("%s: v3 load not lazy-and-untouched (lazy=%v verts=%d edges=%d)",
				name, lazy, verts, edges)
		}
		for v := 0; v < s.N(); v++ {
			want := MarshalVertexLabel(s.VertexLabel(v))
			for version, loaded := range loads {
				if !bytes.Equal(want, MarshalVertexLabel(loaded.VertexLabel(v))) {
					t.Fatalf("%s: v%d vertex %d label differs", name, version, v)
				}
			}
		}
		for e := 0; e < s.M(); e++ {
			want := MarshalEdgeLabel(s.EdgeLabelByIndex(e))
			for version, loaded := range loads {
				if !bytes.Equal(want, MarshalEdgeLabel(loaded.EdgeLabelByIndex(e))) {
					t.Fatalf("%s: v%d edge %d label differs", name, version, e)
				}
			}
		}
		if _, verts, edges := loads[3].Inner().LazyLabels(); verts != s.N() || edges != s.M() {
			t.Fatalf("%s: v3 arena did not materialize on touch (verts=%d edges=%d)", name, verts, edges)
		}
		for version, loaded := range loads {
			if loaded.Stats() != s.Stats() {
				t.Fatalf("%s: v%d stats differ: %+v vs %+v", name, version, loaded.Stats(), s.Stats())
			}
		}
	}
}
