GO ?= go

.PHONY: build test vet bench bench-build bench-query bench-serve bench-update bench-load bench-load-full chaos fuzz clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full benchmark sweep (one iteration each; see DESIGN.md §4 for E-numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Construction hot-path grid + BENCH_build.json (E14).
bench-build:
	$(GO) run ./cmd/ftcbench build -json

# Probe-path grid (per-call vs compiled FaultSet) + BENCH_query.json (E15).
bench-query:
	$(GO) run ./cmd/ftcbench query -json

# Serving path (snapshot load + ftcserve handler, LRU cold vs warm) +
# BENCH_serve.json (E16).
bench-serve:
	$(GO) run ./cmd/ftcbench serve -json

# Dynamic-network update path (incremental Commit vs full rebuild, plus the
# served POST /update smoke) + BENCH_update.json (E17).
bench-update:
	$(GO) run ./cmd/ftcbench update -json

# Closed-loop serving load in smoke mode, both protocol surfaces (E18 cache
# grid + E19 json-vs-bin protocol grid) — seconds, suitable for CI and quick
# local sanity. Writes a smoke-sized BENCH_load.json; use bench-load-full to
# regenerate the checked-in one.
bench-load:
	$(GO) run ./cmd/ftcbench load -smoke -proto both -json

# The full E18+E19 load run that regenerates the checked-in BENCH_load.json
# (1M warm ops, 10k requests per protocol cell; minutes, not seconds).
bench-load-full:
	$(GO) run ./cmd/ftcbench load -proto both -json

# Chaos drill (E22): seeded fault injection over the full serving tier —
# conn resets, snapshot failures, a replica kill/restart — with every
# answer checked against a per-generation oracle and the front's
# ejection/readmit counters asserted. Two fixed seeds, smoke-sized;
# writes the chaos sections of BENCH_serve.json.
chaos:
	$(GO) run ./cmd/ftcbench chaos -smoke -json -seed=1
	$(GO) run ./cmd/ftcbench chaos -smoke -json -seed=2

# Short fuzz runs of the label and snapshot codecs (the CI smoke; drop the
# -fuzztime to explore for real).
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshalVertexLabel' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshalEdgeLabel' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeOutgoing' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshalScheme' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz 'FuzzWireFrame' -fuzztime 10s ./internal/serve/wire

clean:
	$(GO) clean ./...
