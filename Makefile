GO ?= go

.PHONY: build test vet bench bench-build bench-query clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full benchmark sweep (one iteration each; see DESIGN.md §4 for E-numbers).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Construction hot-path grid + BENCH_build.json (E14).
bench-build:
	$(GO) run ./cmd/ftcbench build -json

# Probe-path grid (per-call vs compiled FaultSet) + BENCH_query.json (E15).
bench-query:
	$(GO) run ./cmd/ftcbench query -json

clean:
	$(GO) clean ./...
