package ftc

import (
	"fmt"

	"repro/internal/core"
)

// Vertex-fault tolerance via the trivial reduction the paper describes in
// §1.4: the failure of a vertex v is the failure of all edges incident to v,
// giving Õ(Δ·f)-bit "vertex fault labels" (Δ = max degree). The paper notes
// this is the best generic bound known without the specialized machinery of
// Parter–Petruschka; it is exposed here because it falls out of the edge
// scheme for free and is frequently what deployments actually need (a dead
// router, not a dead link).

// VertexFaultLabel bundles the edge labels incident to one vertex.
type VertexFaultLabel struct {
	// Vertex is the failed vertex's own label (used to reject queries
	// whose endpoints are themselves failed).
	Vertex VertexLabel
	// Incident holds the labels of every incident edge.
	Incident []EdgeLabel
}

// VertexFaultLabel returns the fault label of vertex v.
func (s *Scheme) VertexFaultLabel(v int) VertexFaultLabel {
	adj := s.g.Adj(v)
	out := VertexFaultLabel{Vertex: s.VertexLabel(v)}
	out.Incident = make([]EdgeLabel, len(adj))
	for i, h := range adj {
		out.Incident[i] = s.EdgeLabelByIndex(h.Edge)
	}
	return out
}

// Bits returns the wire size of the fault label — the Õ(Δ·f) cost of the
// trivial reduction.
func (l VertexFaultLabel) Bits() int {
	bits := 8 * len(MarshalVertexLabel(l.Vertex))
	for _, e := range l.Incident {
		bits += 8 * len(MarshalEdgeLabel(e))
	}
	return bits
}

// VertexFaultSet is the compiled form of a set of failed vertices: the
// incident edge labels are deduplicated (an edge shared by two failed
// vertices is counted once against the budget) and compiled into a FaultSet
// exactly once, so repeated probes never re-copy or re-validate the
// incident-label bundles. Probes are allocation-free in the steady state
// and safe from concurrent goroutines.
type VertexFaultSet struct {
	fs     *FaultSet
	token  uint64
	hasTok bool
	failed []VertexLabel
}

// NewVertexFaultSet compiles vertex fault labels into a reusable probe
// object. The deduplicated incident edge count must fit the edge budget f;
// overflow surfaces as ErrTooManyFaults.
func NewVertexFaultSet(faults []VertexFaultLabel) (*VertexFaultSet, error) {
	v := &VertexFaultSet{}
	var edges []EdgeLabel
	seen := map[uint32]bool{}
	for i := range faults {
		f := &faults[i]
		if i == 0 {
			v.token = f.Vertex.Token
			v.hasTok = true
		}
		if f.Vertex.Token != v.token {
			return nil, fmt.Errorf("ftc: vertex fault %d: %w", i, ErrLabelMismatch)
		}
		v.failed = append(v.failed, f.Vertex)
		for j := range f.Incident {
			el := &f.Incident[j]
			if el.Token != v.token {
				return nil, fmt.Errorf("ftc: vertex fault %d: %w", i, ErrLabelMismatch)
			}
			// A tree edge of the auxiliary forest is determined by its
			// child endpoint, so the child preorder dedupes the edge
			// shared by two adjacent failed vertices.
			if seen[el.Child.Pre] {
				continue
			}
			seen[el.Child.Pre] = true
			edges = append(edges, *el)
		}
	}
	fs, err := core.CompileFaults(edges)
	if err != nil {
		return nil, fmt.Errorf("ftc: %w", err)
	}
	v.fs = fs
	return v, nil
}

// Faults returns the deduplicated incident edge count charged against the
// budget.
func (v *VertexFaultSet) Faults() int { return v.fs.Faults() }

// Connected decides s–t connectivity in G − V(F). Querying a failed
// endpoint returns false (a dead vertex reaches nothing).
func (v *VertexFaultSet) Connected(s, t VertexLabel) (bool, error) {
	if v.hasTok && (s.Token != v.token || t.Token != v.token) {
		return false, fmt.Errorf("ftc: %w", ErrLabelMismatch)
	}
	for i := range v.failed {
		if v.failed[i].Anc == s.Anc || v.failed[i].Anc == t.Anc {
			return false, nil
		}
	}
	return v.fs.Connected(s, t)
}

// ConnectedVertexFaults decides s–t connectivity in G − V(F) where V(F) is a
// set of failed vertices. Querying a failed endpoint returns false (a dead
// vertex reaches nothing). The underlying edge budget must cover the
// deduplicated incident edge count: budget errors surface as
// ErrTooManyFaults.
//
// This is the one-shot form; to probe one failure event repeatedly, compile
// it once with NewVertexFaultSet.
func ConnectedVertexFaults(s, t VertexLabel, faults []VertexFaultLabel) (bool, error) {
	for i := range faults {
		if faults[i].Vertex.Token != s.Token {
			return false, fmt.Errorf("ftc: vertex fault %d: %w", i, ErrLabelMismatch)
		}
		if faults[i].Vertex.Anc == s.Anc || faults[i].Vertex.Anc == t.Anc {
			return false, nil
		}
	}
	vfs, err := NewVertexFaultSet(faults)
	if err != nil {
		return false, err
	}
	return vfs.Connected(s, t)
}
