package ftc

import "fmt"

// Vertex-fault tolerance via the trivial reduction the paper describes in
// §1.4: the failure of a vertex v is the failure of all edges incident to v,
// giving Õ(Δ·f)-bit "vertex fault labels" (Δ = max degree). The paper notes
// this is the best generic bound known without the specialized machinery of
// Parter–Petruschka; it is exposed here because it falls out of the edge
// scheme for free and is frequently what deployments actually need (a dead
// router, not a dead link).

// VertexFaultLabel bundles the edge labels incident to one vertex.
type VertexFaultLabel struct {
	// Vertex is the failed vertex's own label (used to reject queries
	// whose endpoints are themselves failed).
	Vertex VertexLabel
	// Incident holds the labels of every incident edge.
	Incident []EdgeLabel
}

// VertexFaultLabel returns the fault label of vertex v.
func (s *Scheme) VertexFaultLabel(v int) VertexFaultLabel {
	adj := s.g.Adj(v)
	out := VertexFaultLabel{Vertex: s.VertexLabel(v)}
	out.Incident = make([]EdgeLabel, len(adj))
	for i, h := range adj {
		out.Incident[i] = s.EdgeLabelByIndex(h.Edge)
	}
	return out
}

// Bits returns the wire size of the fault label — the Õ(Δ·f) cost of the
// trivial reduction.
func (l VertexFaultLabel) Bits() int {
	bits := 8 * len(MarshalVertexLabel(l.Vertex))
	for _, e := range l.Incident {
		bits += 8 * len(MarshalEdgeLabel(e))
	}
	return bits
}

// ConnectedVertexFaults decides s–t connectivity in G − V(F) where V(F) is a
// set of failed vertices. Querying a failed endpoint returns false (a dead
// vertex reaches nothing). The underlying edge budget must cover the total
// incident edge count: budget errors surface as ErrTooManyFaults.
func ConnectedVertexFaults(s, t VertexLabel, faults []VertexFaultLabel) (bool, error) {
	var edges []EdgeLabel
	for i := range faults {
		if faults[i].Vertex.Token != s.Token {
			return false, fmt.Errorf("ftc: vertex fault %d: %w", i, ErrLabelMismatch)
		}
		if faults[i].Vertex.Anc == s.Anc || faults[i].Vertex.Anc == t.Anc {
			return false, nil
		}
		edges = append(edges, faults[i].Incident...)
	}
	return Connected(s, t, edges)
}
