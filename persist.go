package ftc

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Snapshot persistence: a built scheme can be written once and loaded by
// any number of decoder processes ("one build, many decoders" — the fleet
// pattern cmd/ftcserve serves). The wire format is the versioned binary
// layout of internal/core (DESIGN.md §3.9); per-label encodings inside the
// snapshot are exactly MarshalVertexLabel / MarshalEdgeLabel.

// Re-exported snapshot sentinel errors; test with errors.Is.
var (
	// ErrBadSnapshot: the bytes are not a well-formed scheme snapshot.
	ErrBadSnapshot = core.ErrBadSnapshot
	// ErrSnapshotVersion: a well-formed header with a version byte this
	// build does not speak.
	ErrSnapshotVersion = core.ErrSnapshotVersion
)

// Save writes a versioned binary snapshot of the scheme: graph, hierarchy,
// and every label. Load restores it without re-running construction.
func (s *Scheme) Save(w io.Writer) error {
	data, err := s.inner.MarshalBinary()
	if err != nil {
		return fmt.Errorf("ftc: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("ftc: writing snapshot: %w", err)
	}
	return nil
}

// LoadedScheme is a scheme restored from a snapshot. It supports the full
// read-side API of Scheme — VertexLabel, EdgeLabel, Stats, and producing
// labels for NewFaultSet — and its per-label marshalings are byte-identical
// to those of the scheme that was saved.
//
// A scheme loaded from a current-format (v3) snapshot is lazy: the label
// sections are aliased zero-copy and each label is decoded the first time
// it is touched, so loading is O(1) in label bytes and a serving replica
// only ever pays for the labels its traffic actually probes. Laziness is
// invisible to the API — labels, queries, and marshalings are identical to
// an eager load — and concurrent first touches are safe.
type LoadedScheme struct {
	Scheme
}

// Load reads a snapshot written by Save and restores the scheme without
// re-running construction. It verifies the magic, version, and token
// fingerprint, and fails with ErrBadSnapshot / ErrSnapshotVersion rather
// than returning a scheme that answers queries differently from the one
// saved.
//
// Load buffers the whole stream first; when the snapshot is already in
// memory (or memory-mapped), LoadBytes skips that copy.
func Load(r io.Reader) (*LoadedScheme, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ftc: reading snapshot: %w", err)
	}
	return LoadBytes(data)
}

// LoadBytes is Load over an in-memory snapshot, without copying it. For a
// v3 snapshot the returned scheme's label arena aliases data, so the
// caller must not modify data for the lifetime of the scheme; this is what
// makes loading O(1) in label bytes (cmd/ftcserve reads the snapshot file
// with os.ReadFile and hands it straight here).
func LoadBytes(data []byte) (*LoadedScheme, error) {
	inner, err := core.UnmarshalScheme(data)
	if err != nil {
		return nil, fmt.Errorf("ftc: %w", err)
	}
	return &LoadedScheme{Scheme{g: inner.Graph(), inner: inner}}, nil
}
