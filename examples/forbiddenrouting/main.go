// Forbiddenrouting: the forbidden-set routing application (Corollary 2).
// A source that learns which links are administratively forbidden (or
// failed) computes a route plan from labels alone; packets then hop through
// compact per-node tables, provably avoiding every forbidden link.
//
//	go run ./examples/forbiddenrouting
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/workload"
)

func main() {
	// A 7×5 metro grid: high diameter, many alternative paths.
	g := workload.Grid(7, 5)
	const f = 3
	net, err := routing.Build(g, f)
	if err != nil {
		log.Fatal(err)
	}
	total, maxLocal := net.TableBits()
	fmt.Printf("grid 7x5: %d nodes, %d links; routing tables: %d bits total, %d bits max per node\n\n",
		g.N(), g.M(), total, maxLocal)

	rng := rand.New(rand.NewSource(7))
	scheme := net.Scheme()
	for scenario := 1; scenario <= 5; scenario++ {
		faults := workload.RandomFaults(g, 1+rng.Intn(f), rng)
		s, d := rng.Intn(g.N()), rng.Intn(g.N())
		fmt.Printf("scenario %d: forbid", scenario)
		for _, e := range faults {
			fmt.Printf(" (%d-%d)", g.Edges[e].U, g.Edges[e].V)
		}
		fmt.Printf("; route %d → %d\n", s, d)
		// The source pre-checks reachability from labels alone: the
		// forbidden set is compiled once, so screening any number of
		// candidate destinations costs a lookup each.
		fl := make([]core.EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = scheme.EdgeLabel(e)
		}
		fs, err := core.CompileFaults(fl)
		if err != nil {
			log.Fatalf("compile forbidden set: %v", err)
		}
		reach, err := fs.Connected(scheme.VertexLabel(s), scheme.VertexLabel(d))
		if err != nil {
			log.Fatalf("precheck: %v", err)
		}
		fmt.Printf("  label-only precheck: reachable=%v\n", reach)
		path, ok, err := net.Route(s, d, faults)
		if err != nil {
			log.Fatalf("routing malfunction: %v", err)
		}
		if ok != reach {
			log.Fatalf("precheck disagrees with routing outcome")
		}
		if !ok {
			fmt.Printf("  destination unreachable (verified: %v)\n\n",
				!graph.ConnectedUnder(g, workload.FaultSet(faults), s, d))
			continue
		}
		opt := graph.HopDistancesUnder(g, workload.FaultSet(faults), s)[d]
		fmt.Printf("  delivered in %d hops (optimal %d): %v\n\n", len(path)-1, opt, path)
	}
}
