// Distanceoracle: the fault-tolerant approximate distance labeling of
// Corollary 1. Labels bracket both the bottleneck distance (provable
// 2(2κ−1)-approximation) and the true shortest-path distance of G − F.
//
//	go run ./examples/distanceoracle
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/distlabel"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	// A weighted backbone: torus with weights 1..100.
	g := workload.Torus(6, 6)
	workload.AssignRandomWeights(g, 100, rng)
	const f, kappa = 2, 2
	s, err := distlabel.Build(g, distlabel.Params{MaxFaults: f, Kappa: kappa})
	if err != nil {
		log.Fatal(err)
	}
	vb, eb := s.LabelBits()
	fmt.Printf("torus 6x6 (weights 1..100): %d scales; labels %d bits/vertex, ≤%d bits/edge\n\n",
		s.Scales(), vb, eb)

	for q := 1; q <= 6; q++ {
		faults := workload.RandomFaults(g, rng.Intn(f+1), rng)
		sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
		if sv == tv {
			tv = (tv + 1) % g.N()
		}
		fl := make([]distlabel.EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = s.EdgeLabel(e)
		}
		res, err := distlabel.Query(s.VertexLabel(sv), s.VertexLabel(tv), fl, g.N(), kappa)
		if err != nil {
			log.Fatal(err)
		}
		set := workload.FaultSet(faults)
		trueBottleneck := graph.BottleneckDistanceUnder(g, set, sv, tv)
		trueDist := graph.WeightedDistancesUnder(g, set, sv)[tv]
		fmt.Printf("query %d: %2d → %2d, %d faults\n", q, sv, tv, len(faults))
		if !res.Connected {
			fmt.Printf("  disconnected (truth: bottleneck=%d)\n\n", trueBottleneck)
			continue
		}
		fmt.Printf("  bottleneck ∈ [%d, %d]   (truth %d)\n",
			res.BottleneckLower, res.BottleneckUpper, trueBottleneck)
		fmt.Printf("  distance   ∈ [%d, %d] (truth %d)\n\n",
			res.DistanceLower, res.DistanceUpper, trueDist)
	}
}
