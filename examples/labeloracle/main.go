// Labeloracle: labels as a persistent artifact. Build a label database for a
// mid-size network, write it to disk, reload it in a fresh "query site" that
// never sees the graph, and serve a burst of reachability probes for one
// failure event through a Session (fragment discovery runs once; each probe
// is then a lookup).
//
//	go run ./examples/labeloracle
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	g := workload.RandomRegular(64, 4, rng)
	const f = 3

	// ---- build side: has the graph, produces the label database.
	scheme, err := core.Build(g, core.Params{MaxFaults: f})
	if err != nil {
		log.Fatal(err)
	}
	var db bytes.Buffer
	if err := graphio.WriteLabels(&db, scheme, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built label database: %d vertices, %d edges, %d KiB\n",
		g.N(), g.M(), db.Len()/1024)

	// ---- query side: only the database.
	loaded, err := graphio.ReadLabels(bytes.NewReader(db.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	// One failure event: three links go down.
	down := workload.RandomFaults(g, f, rng)
	advisory := make([]core.EdgeLabel, len(down))
	for i, e := range down {
		advisory[i] = loaded.Edges[e]
	}
	fmt.Printf("failure event:")
	for _, e := range down {
		fmt.Printf(" (%d-%d)", g.Edges[e].U, g.Edges[e].V)
	}
	fmt.Println()

	// Compile the failure event once; serve the burst through the eagerly
	// closed session view (each probe is an allocation-free lookup).
	fs, err := core.CompileFaults(advisory)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := fs.Session()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: %d fragments → %d components\n\n", sess.Fragments(), sess.Components())

	// A burst of probes, validated against ground truth.
	mismatches := 0
	for probe := 0; probe < 2000; probe++ {
		s, t := rng.Intn(g.N()), rng.Intn(g.N())
		ok, err := sess.Connected(loaded.Vertices[s], loaded.Vertices[t])
		if err != nil {
			log.Fatal(err)
		}
		if ok != graph.ConnectedUnder(g, workload.FaultSet(down), s, t) {
			mismatches++
		}
	}
	fmt.Printf("2000 probes served from the session: %d mismatches vs ground truth\n", mismatches)
}
