// Netmonitor: the paper's motivating scenario — a distributed network where
// nodes must answer "can I still reach X?" during link failures without any
// global view. Each node holds only its own O(log n)-bit label; link-failure
// advisories carry the failed links' labels; any node can then decide
// reachability locally with the universal decoder.
//
// The example simulates a 48-node ISP-like topology (preferential
// attachment, hub-heavy) through a sequence of failure waves and compares
// every decision against ground truth.
//
//	go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	ftc "repro"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	g := workload.PreferentialAttachment(48, 2, rng)
	const f = 4
	scheme, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(f))
	if err != nil {
		log.Fatal(err)
	}
	st := scheme.Stats()
	fmt.Printf("network: %d nodes, %d links; labels: %d bits/node, ≤%d bits/link\n\n",
		g.N(), g.M(), st.VertexLabelBits, st.MaxEdgeLabelBits)

	monitor := 0 // the NOC node running reachability checks
	targets := []int{12, 23, 34, 45, 47}

	for wave := 1; wave <= 4; wave++ {
		// A failure wave: up to f random links go down at once. The NOC
		// compiles the advisory once per wave — every probe of the wave is
		// then an allocation-free lookup against the same FaultSet.
		down := workload.RandomFaults(g, 1+rng.Intn(f), rng)
		advisory := make([]ftc.EdgeLabel, len(down))
		for i, e := range down {
			advisory[i] = scheme.EdgeLabelByIndex(e)
		}
		fs, err := ftc.NewFaultSet(advisory)
		if err != nil {
			log.Fatalf("advisory: %v", err)
		}
		fmt.Printf("wave %d: links down:", wave)
		for _, e := range down {
			fmt.Printf(" (%d-%d)", g.Edges[e].U, g.Edges[e].V)
		}
		fmt.Println()
		for _, tgt := range targets {
			ok, err := fs.Connected(scheme.VertexLabel(monitor), scheme.VertexLabel(tgt))
			if err != nil {
				log.Fatalf("decoder: %v", err)
			}
			truth := graph.ConnectedUnder(g, workload.FaultSet(down), monitor, tgt)
			status := "reachable  "
			if !ok {
				status = "UNREACHABLE"
			}
			agree := "✓"
			if ok != truth {
				agree = "✗ (decoder bug!)"
			}
			fmt.Printf("  node %2d → %2d: %s %s\n", monitor, tgt, status, agree)
		}
		fmt.Println()
	}
}
