// Netmonitor: the paper's motivating scenario — a distributed network where
// nodes must answer "can I still reach X?" during link failures without any
// global view — extended to a network whose topology itself changes. Each
// node holds only its own O(log n)-bit label; link-failure advisories carry
// the failed links' labels; any node decides reachability locally with the
// universal decoder.
//
// The example simulates a 48-node ISP-like topology (preferential
// attachment, hub-heavy) through alternating phases:
//
//   - failure waves: up to f random links go down at once; the NOC compiles
//     the advisory once per wave and probes it, checked against ground
//     truth;
//   - maintenance windows: links are provisioned and decommissioned through
//     the mutable ftc.Network — single-link changes commit incrementally
//     (only the dirtied tree-path labels are rewritten), bigger surgery
//     falls back to a full rebuild — bumping the generation each time;
//   - a stale-advisory incident: a probe mixing labels from a superseded
//     generation fails fast with ErrStaleLabel instead of answering against
//     a topology that no longer exists.
//
//	go run ./examples/netmonitor
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	ftc "repro"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	g := workload.PreferentialAttachment(48, 2, rng)
	const f = 4
	net, err := ftc.OpenFromGraph(g, ftc.WithMaxFaults(f))
	if err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	fmt.Printf("network: %d nodes, %d links (generation %d); labels: %d bits/node, ≤%d bits/link\n\n",
		net.N(), net.M(), net.Generation(), st.VertexLabelBits, st.MaxEdgeLabelBits)

	monitor := 0 // the NOC node running reachability checks
	targets := []int{12, 23, 34, 45, 47}
	var staleAdvisory []ftc.EdgeLabel // kept across a topology change below

	for wave := 1; wave <= 4; wave++ {
		// Every wave probes the *current* generation's labels.
		snap := net.Snapshot()
		sg := snap.Graph()

		// A failure wave: up to f random links go down at once. The NOC
		// compiles the advisory once per wave — every probe of the wave is
		// then an allocation-free lookup against the same FaultSet.
		down := workload.RandomFaults(sg, 1+rng.Intn(f), rng)
		advisory := make([]ftc.EdgeLabel, len(down))
		for i, e := range down {
			advisory[i] = snap.EdgeLabelByIndex(e)
		}
		if wave == 1 {
			staleAdvisory = advisory
		}
		fs, err := ftc.NewFaultSet(advisory)
		if err != nil {
			log.Fatalf("advisory: %v", err)
		}
		fmt.Printf("wave %d (generation %d): links down:", wave, snap.Generation())
		for _, e := range down {
			fmt.Printf(" (%d-%d)", sg.Edges[e].U, sg.Edges[e].V)
		}
		fmt.Println()
		for _, tgt := range targets {
			ok, err := fs.Connected(snap.VertexLabel(monitor), snap.VertexLabel(tgt))
			if err != nil {
				log.Fatalf("decoder: %v", err)
			}
			truth := graph.ConnectedUnder(sg, workload.FaultSet(down), monitor, tgt)
			status := "reachable  "
			if !ok {
				status = "UNREACHABLE"
			}
			agree := "✓"
			if ok != truth {
				agree = "✗ (decoder bug!)"
			}
			fmt.Printf("  node %2d → %2d: %s %s\n", monitor, tgt, status, agree)
		}

		// A maintenance window between waves: provision one redundant link
		// and decommission one, committed as a single generation.
		cur := net.Graph()
		for tries := 0; tries < 500; tries++ {
			u, v := rng.Intn(cur.N()), rng.Intn(cur.N())
			if u != v && !cur.HasEdge(u, v) {
				if err := net.AddEdge(u, v); err == nil {
					fmt.Printf("  maintenance: provisioning link (%d-%d)", u, v)
					break
				}
			}
		}
		e := cur.Edges[rng.Intn(cur.M())]
		if err := net.RemoveEdge(e.U, e.V); err == nil {
			fmt.Printf(", decommissioning (%d-%d)", e.U, e.V)
		}
		rep, err := net.Commit()
		if err != nil {
			log.Fatalf("commit: %v", err)
		}
		mode := "full rebuild"
		if rep.Incremental {
			mode = fmt.Sprintf("incremental, %d labels rewritten", len(rep.Relabeled))
		}
		fmt.Printf(" → generation %d (%s)\n\n", rep.Gen, mode)
	}

	// The stale-advisory incident: the wave-1 advisory against today's
	// labels. The decoder refuses — the topology it described is gone.
	fs, err := ftc.NewFaultSet(staleAdvisory)
	if err != nil {
		log.Fatalf("stale advisory compile: %v", err)
	}
	_, err = fs.Connected(net.VertexLabel(monitor), net.VertexLabel(targets[0]))
	if errors.Is(err, ftc.ErrStaleLabel) {
		fmt.Printf("stale wave-1 advisory vs generation %d: correctly rejected (%v)\n", net.Generation(), err)
	} else {
		log.Fatalf("stale advisory was not rejected: %v", err)
	}
}
