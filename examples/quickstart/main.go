// Quickstart: build f-FTC labels for a small network and answer
// connectivity queries under edge faults using labels only.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ftc "repro"
)

func main() {
	// A ring of 6 routers with two chords.
	//
	//        0 ── 1
	//      / |     \
	//     5  |      2
	//      \ |     /|
	//        4 ── 3 ┘   (chords: 0-4, 1-3)
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, // ring
		{0, 4}, {1, 3}, // chords
	}
	scheme, err := ftc.New(6, edges, ftc.WithMaxFaults(3))
	if err != nil {
		log.Fatal(err)
	}
	st := scheme.Stats()
	fmt.Printf("labels built: %d bits/vertex, ≤%d bits/edge (k=%d, %d levels)\n\n",
		st.VertexLabelBits, st.MaxEdgeLabelBits, st.Threshold, st.HierarchyDepth)

	// The decoder sees labels only — in a deployment, each node stores its
	// own label and link labels travel with failure notifications. Each
	// failure event is compiled into a FaultSet once; probes against it are
	// then allocation-free lookups.
	s, t := scheme.VertexLabel(0), scheme.VertexLabel(3)

	check := func(desc string, faults ...ftc.EdgeLabel) {
		fs, err := ftc.NewFaultSet(faults)
		if err != nil {
			log.Fatalf("%s: %v", desc, err)
		}
		ok, err := fs.Connected(s, t)
		if err != nil {
			log.Fatalf("%s: %v", desc, err)
		}
		fmt.Printf("%-46s connected=%v\n", desc, ok)
	}

	check("no faults:")
	check("links 2-3 and 3-4 down:",
		scheme.MustEdgeLabel(2, 3), scheme.MustEdgeLabel(3, 4))
	check("links 2-3, 3-4 and 1-3 down (3 isolated):",
		scheme.MustEdgeLabel(2, 3), scheme.MustEdgeLabel(3, 4), scheme.MustEdgeLabel(1, 3))

	// Batch form: one failure event, many probes.
	fs, err := ftc.NewFaultSet([]ftc.EdgeLabel{
		scheme.MustEdgeLabel(2, 3), scheme.MustEdgeLabel(3, 4),
	})
	if err != nil {
		log.Fatal(err)
	}
	pairs := make([][2]ftc.VertexLabel, 0, 5)
	for v := 1; v <= 5; v++ {
		pairs = append(pairs, [2]ftc.VertexLabel{scheme.VertexLabel(0), scheme.VertexLabel(v)})
	}
	oks, err := fs.ConnectedBatch(pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch probe from node 0 with links 2-3, 3-4 down: %v\n", oks)
}
