package workload

import (
	"math/rand"

	"repro/internal/graph"
)

// PowerLawCluster returns a Holme–Kim power-law clustered graph: growing
// preferential attachment (as in PreferentialAttachment) where each
// additional edge of a new vertex closes a triangle with probability p by
// attaching to a random neighbor of the previous target. The result keeps
// the hub-heavy degree tail of Barabási–Albert while adding the local
// clustering of real networks — dense overlapping triangles around hubs are
// exactly the fault-set shape that makes many non-tree edges share
// fragments, the regime the differential harness wants to stress.
//
// Each new vertex attaches with k edges (clamped to the vertices available);
// the graph is connected by construction for k ≥ 1 and n ≥ 1. All
// randomness flows through rng.
func PowerLawCluster(n, k int, p float64, rng *rand.Rand) *graph.Graph {
	if k < 1 {
		k = 1
	}
	g := graph.New(n)
	if n == 0 {
		return g
	}
	// Degree-proportional endpoint pool, as in PreferentialAttachment.
	pool := []int{0}
	for v := 1; v < n; v++ {
		prev := -1
		attempts := 0
		added := 0
		for added < k && added < v && attempts < 50*k {
			attempts++
			var u int
			if prev >= 0 && rng.Float64() < p {
				// Triad step: close a triangle through the previous target.
				nbrs := g.Adj(prev)
				if len(nbrs) == 0 {
					continue
				}
				u = nbrs[rng.Intn(len(nbrs))].To
			} else {
				u = pool[rng.Intn(len(pool))]
			}
			if u == v || g.HasEdge(u, v) {
				continue
			}
			mustAdd(g, u, v)
			pool = append(pool, u, v)
			prev = u
			added++
		}
		if added == 0 {
			// Degenerate fallback so the graph stays connected.
			mustAdd(g, v-1, v)
			pool = append(pool, v-1, v)
		}
	}
	return g
}
