package workload

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// FatTree returns the switch fabric of a k-ary fat-tree (Clos) data-center
// topology: (k/2)² core switches, and k pods of k/2 aggregation plus k/2
// edge switches each. Every edge switch links to every aggregation switch
// in its pod; aggregation switch j of each pod links to core switches
// [j·k/2, (j+1)·k/2). The result is deterministic — no randomness — with
// exact degrees: core and aggregation switches have degree k, edge switches
// degree k/2. Fault-tolerance-wise it is the opposite regime from the
// hub-heavy AS graphs: massive path multiplicity, every vertex cut wide.
//
// k must be even and ≥ 2; odd k is rounded down. Vertex layout:
// cores 0..(k/2)²-1, then per pod p its aggregation switches followed by
// its edge switches.
func FatTree(k int) *graph.Graph {
	k &^= 1
	if k < 2 {
		return graph.New(0)
	}
	half := k / 2
	cores := half * half
	g := graph.New(cores + k*k)
	for p := 0; p < k; p++ {
		aggBase := cores + p*k
		edgeBase := aggBase + half
		for j := 0; j < half; j++ {
			for i := 0; i < half; i++ {
				mustAdd(g, aggBase+j, edgeBase+i) // pod bipartite mesh
				mustAdd(g, j*half+i, aggBase+j)   // core uplinks of agg j
			}
		}
	}
	return g
}

// ASGraph returns an AS-like internet topology: preferential-attachment
// growth (each new AS buys transit from m degree-proportional providers, as
// in PreferentialAttachment) interleaved with degree-proportional peering —
// after each arrival, with probability peerProb one extra edge is added
// between two existing ASes, both chosen proportionally to degree. The
// peering step thickens the core beyond a pure Barabási–Albert tree-of-hubs
// while keeping the heavy degree tail, which is the shape that concentrates
// many non-tree edges in few fragments. Connected by construction for
// m ≥ 1; all randomness flows through rng.
func ASGraph(n, m int, peerProb float64, rng *rand.Rand) *graph.Graph {
	if m < 1 {
		m = 1
	}
	g := graph.New(n)
	if n == 0 {
		return g
	}
	pool := []int{0}
	for v := 1; v < n; v++ {
		providers := map[int]bool{}
		attempts := 0
		for len(providers) < m && len(providers) < v && attempts < 50*m {
			providers[pool[rng.Intn(len(pool))]] = true
			attempts++
		}
		if len(providers) == 0 {
			providers[v-1] = true
		}
		// Sorted order keeps the edge list seed-deterministic (map
		// iteration order is not).
		ordered := make([]int, 0, len(providers))
		for u := range providers {
			ordered = append(ordered, u)
		}
		sort.Ints(ordered)
		for _, u := range ordered {
			mustAdd(g, u, v)
			pool = append(pool, u, v)
		}
		if rng.Float64() < peerProb {
			// Degree-proportional peering between existing ASes.
			for try := 0; try < 20; try++ {
				a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
				if a == b || g.HasEdge(a, b) {
					continue
				}
				mustAdd(g, a, b)
				pool = append(pool, a, b)
				break
			}
		}
	}
	return g
}
