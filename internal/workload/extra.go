package workload

import (
	"math/rand"

	"repro/internal/graph"
)

// RandomRegular returns a (near-)d-regular graph on n vertices via the
// permutation-union model: d/2 random perfect matchings over 2·⌈n/2⌉ stubs,
// discarding collisions. Expander-like for d ≥ 4 — the low-diameter,
// no-small-cuts regime that stresses the sparsification hierarchy least and
// the fragment merging most.
func RandomRegular(n, d int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	if n < 2 || d < 1 {
		return g
	}
	target := n * d / 2
	attempts := 0
	for g.M() < target && attempts < 50*target {
		attempts++
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) || g.Degree(u) >= d || g.Degree(v) >= d {
			continue
		}
		mustAdd(g, u, v)
	}
	// Stitch any isolated vertices to keep the instance usable.
	for v := 0; v < n; v++ {
		if g.Degree(v) == 0 {
			u := (v + 1) % n
			if !g.HasEdge(u, v) && u != v {
				mustAdd(g, u, v)
			}
		}
	}
	return g
}

// Barbell returns two k-cliques joined by a path of pathLen edges — the
// classic worst case for fault-tolerant connectivity: every path edge is a
// bridge, and clique-internal faults never disconnect anything.
func Barbell(k, pathLen int) *graph.Graph {
	n := 2*k + pathLen - 1
	if pathLen < 1 {
		pathLen = 1
		n = 2 * k
	}
	g := graph.New(n)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			mustAdd(g, u, v)
		}
	}
	right := k + pathLen - 1
	for u := right; u < right+k; u++ {
		for v := u + 1; v < right+k; v++ {
			mustAdd(g, u, v)
		}
	}
	// Path from clique A's vertex k-1 through the middle to clique B's
	// vertex `right`.
	prev := k - 1
	for i := 0; i < pathLen; i++ {
		var next int
		if i == pathLen-1 {
			next = right
		} else {
			next = k + i
		}
		mustAdd(g, prev, next)
		prev = next
	}
	return g
}

// Caterpillar returns a path of spine vertices each carrying `legs` pendant
// leaves — a deep-tree workload where every edge is a tree edge and the
// fragment structure is maximally nested.
func Caterpillar(spine, legs int) *graph.Graph {
	n := spine * (legs + 1)
	g := graph.New(n)
	for i := 0; i < spine; i++ {
		v := i * (legs + 1)
		if i > 0 {
			mustAdd(g, (i-1)*(legs+1), v)
		}
		for l := 1; l <= legs; l++ {
			mustAdd(g, v, v+l)
		}
	}
	return g
}

// Wheel returns the wheel graph: a cycle of n−1 vertices plus a hub adjacent
// to all of them. Hub faults are the vertex-fault worst case the paper's
// §1.4 reduction pays Δ for.
func Wheel(n int) *graph.Graph {
	g := graph.New(n)
	if n < 4 {
		return g
	}
	for v := 1; v < n; v++ {
		mustAdd(g, 0, v)
		next := v + 1
		if next == n {
			next = 1
		}
		mustAdd(g, v, next)
	}
	return g
}
