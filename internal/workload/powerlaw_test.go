package workload

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestPowerLawClusterConnectedAndSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := PowerLawCluster(300, 3, 0.5, rng)
	if g.N() != 300 {
		t.Fatalf("n=%d, want 300", g.N())
	}
	if g.M() < 299 {
		t.Fatalf("m=%d, too sparse to be connected", g.M())
	}
	if !graph.ConnectedUnder(g, nil, 0, g.N()-1) {
		t.Fatal("graph not connected")
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			t.Fatalf("isolated vertex %d", v)
		}
	}
}

func TestPowerLawClusterDegreeSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := PowerLawCluster(500, 2, 0.4, rng)
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	// Preferential attachment produces hubs far above the mean degree; a
	// homogeneous random graph of this density would not.
	if float64(maxDeg) < 4*avg {
		t.Fatalf("no hubs: max degree %d vs average %.1f", maxDeg, avg)
	}
}

func TestPowerLawClusterHasTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PowerLawCluster(200, 3, 0.8, rng)
	triangles := 0
	for _, e := range g.Edges {
		for _, h := range g.Adj(e.U) {
			if h.To != e.V && g.HasEdge(h.To, e.V) {
				triangles++
			}
		}
	}
	// The triad steps must actually close triangles (p=0.8 here); this
	// distinguishes the family from plain PreferentialAttachment.
	if triangles < g.N()/2 {
		t.Fatalf("only %d triangle wedges in a p=0.8 clustered graph", triangles)
	}
}

func TestPowerLawClusterDeterministicAndEdgeCases(t *testing.T) {
	a := PowerLawCluster(100, 2, 0.3, rand.New(rand.NewSource(7)))
	b := PowerLawCluster(100, 2, 0.3, rand.New(rand.NewSource(7)))
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("same seed, different edge %d", i)
		}
	}
	if g := PowerLawCluster(0, 3, 0.5, rand.New(rand.NewSource(1))); g.N() != 0 || g.M() != 0 {
		t.Fatal("n=0 should be empty")
	}
	if g := PowerLawCluster(1, 3, 0.5, rand.New(rand.NewSource(1))); g.N() != 1 || g.M() != 0 {
		t.Fatal("n=1 should be a single vertex")
	}
	if g := PowerLawCluster(50, 0, 0.5, rand.New(rand.NewSource(1))); g.M() < 49 {
		t.Fatal("k clamps to 1; the graph must stay connected")
	}
}
