// Package workload generates the graph families and fault sets used by the
// test suites and the benchmark harness. All randomness flows through an
// injected *rand.Rand so every experiment is reproducible from a seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyi returns a G(n, p) random graph. If connect is true, a uniform
// random spanning tree worth of extra edges is added first so the result is
// connected (the standard workload of the paper's setting, which assumes a
// spanning tree of the component under study).
func ErdosRenyi(n int, p float64, connect bool, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	if connect && n > 1 {
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			u, v := perm[i], perm[rng.Intn(i)]
			mustAdd(g, u, v)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) {
				continue
			}
			if rng.Float64() < p {
				mustAdd(g, u, v)
			}
		}
	}
	return g
}

// Grid returns the w×h grid graph (large diameter, planar).
func Grid(w, h int) *graph.Graph {
	g := graph.New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				mustAdd(g, id(x, y), id(x+1, y))
			}
			if y+1 < h {
				mustAdd(g, id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

// Torus returns the w×h torus (grid with wraparound), 4-regular for w,h ≥ 3.
func Torus(w, h int) *graph.Graph {
	g := graph.New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if w > 2 || x+1 < w {
				mustAdd(g, id(x, y), id((x+1)%w, y))
			}
			if h > 2 || y+1 < h {
				mustAdd(g, id(x, y), id(x, (y+1)%h))
			}
		}
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAdd(g, u, v)
		}
	}
	return g
}

// Cycle returns C_n.
func Cycle(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		mustAdd(g, u, (u+1)%n)
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *graph.Graph {
	n := 1 << uint(d)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				mustAdd(g, u, v)
			}
		}
	}
	return g
}

// Petersen returns the Petersen graph (3-regular, girth 5) — a classic
// adversarial instance for connectivity schemes.
func Petersen() *graph.Graph {
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		mustAdd(g, i, (i+1)%5)     // outer pentagon
		mustAdd(g, 5+i, 5+(i+2)%5) // inner pentagram
		mustAdd(g, i, 5+i)         // spokes
	}
	return g
}

// PreferentialAttachment returns a Barabási–Albert-style graph: each new
// vertex attaches to k distinct existing vertices chosen proportionally to
// degree. Produces skewed degree distributions (hub-heavy networks).
func PreferentialAttachment(n, k int, rng *rand.Rand) *graph.Graph {
	if k < 1 {
		k = 1
	}
	g := graph.New(n)
	if n == 0 {
		return g
	}
	// Endpoint pool: every edge contributes both endpoints, so sampling
	// from the pool is degree-proportional.
	pool := []int{0}
	for v := 1; v < n; v++ {
		targets := map[int]bool{}
		attempts := 0
		for len(targets) < k && len(targets) < v && attempts < 50*k {
			targets[pool[rng.Intn(len(pool))]] = true
			attempts++
		}
		if len(targets) == 0 {
			targets[v-1] = true
		}
		for u := range targets {
			mustAdd(g, u, v)
			pool = append(pool, u, v)
		}
	}
	return g
}

// RandomTreePlus returns a uniform random recursive tree plus extra random
// non-tree edges (controls the tree/non-tree edge balance precisely).
func RandomTreePlus(n, extra int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		mustAdd(g, rng.Intn(v), v)
	}
	for added, attempts := 0, 0; added < extra && attempts < 100*extra+100; attempts++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		mustAdd(g, u, v)
		added++
	}
	return g
}

// AssignRandomWeights sets integer edge weights uniform in [1, maxW].
func AssignRandomWeights(g *graph.Graph, maxW int64, rng *rand.Rand) {
	g.Weights = make([]int64, g.M())
	for i := range g.Weights {
		g.Weights[i] = 1 + rng.Int63n(maxW)
	}
}

// RandomFaults picks size distinct edge indices uniformly at random.
func RandomFaults(g *graph.Graph, size int, rng *rand.Rand) []int {
	m := g.M()
	if size > m {
		size = m
	}
	perm := rng.Perm(m)
	out := make([]int, size)
	copy(out, perm[:size])
	return out
}

// TreeEdgeFaults picks faults biased toward spanning-tree edges: these are
// the faults that actually fragment T and exercise the interesting code
// paths (a non-tree fault never splits a fragment).
func TreeEdgeFaults(g *graph.Graph, f *graph.Forest, size int, rng *rand.Rand) []int {
	var tree, rest []int
	for e := range g.Edges {
		if f.IsTreeEdge[e] {
			tree = append(tree, e)
		} else {
			rest = append(rest, e)
		}
	}
	rng.Shuffle(len(tree), func(i, j int) { tree[i], tree[j] = tree[j], tree[i] })
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	out := make([]int, 0, size)
	out = append(out, tree[:min(size, len(tree))]...)
	if len(out) < size {
		out = append(out, rest[:min(size-len(out), len(rest))]...)
	}
	return out
}

// VertexCutFaults picks all edges incident to a random vertex (up to size),
// a targeted attack that tends to disconnect the graph.
func VertexCutFaults(g *graph.Graph, size int, rng *rand.Rand) []int {
	if g.N() == 0 {
		return nil
	}
	v := rng.Intn(g.N())
	var out []int
	for _, h := range g.Adj(v) {
		if len(out) == size {
			break
		}
		out = append(out, h.Edge)
	}
	return out
}

// FaultSet converts a slice of edge indices into the set form used by the
// ground-truth helpers.
func FaultSet(faults []int) map[int]bool {
	m := make(map[int]bool, len(faults))
	for _, e := range faults {
		m[e] = true
	}
	return m
}

func mustAdd(g *graph.Graph, u, v int) {
	if _, err := g.AddEdge(u, v); err != nil {
		panic(fmt.Sprintf("workload: generator produced invalid edge: %v", err))
	}
}
