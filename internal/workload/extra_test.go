package workload

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomRegular(60, 4, rng)
	if g.N() != 60 {
		t.Fatalf("n = %d", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d < 1 || d > 5 {
			t.Fatalf("degree(%d) = %d outside [1,5]", v, d)
		}
	}
	if g.M() < 100 {
		t.Fatalf("too few edges: %d", g.M())
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 3)
	if g.N() != 12 {
		t.Fatalf("n = %d, want 12", g.N())
	}
	// 2·C(5,2) clique edges + 3 path edges.
	if g.M() != 23 {
		t.Fatalf("m = %d, want 23", g.M())
	}
	if _, cnt := graph.Components(g, nil); cnt != 1 {
		t.Fatal("barbell should be connected")
	}
	// Cutting any path edge disconnects the cliques.
	f := graph.SpanningForest(g)
	_ = f
	pathEdge := g.EdgeIndex(4, 5)
	if pathEdge < 0 {
		t.Fatal("missing path edge")
	}
	if graph.ConnectedUnder(g, map[int]bool{pathEdge: true}, 0, g.N()-1) {
		t.Fatal("path edge should be a bridge")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 || g.M() != 19 {
		t.Fatalf("n=%d m=%d, want tree with 20 vertices", g.N(), g.M())
	}
	if _, cnt := graph.Components(g, nil); cnt != 1 {
		t.Fatal("caterpillar should be connected")
	}
}

func TestWheel(t *testing.T) {
	g := Wheel(8)
	if g.N() != 8 || g.M() != 14 {
		t.Fatalf("n=%d m=%d, want 8, 14", g.N(), g.M())
	}
	if g.Degree(0) != 7 {
		t.Fatalf("hub degree = %d, want 7", g.Degree(0))
	}
	for v := 1; v < 8; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("rim degree(%d) = %d, want 3", v, g.Degree(v))
		}
	}
}
