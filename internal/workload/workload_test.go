package workload

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestErdosRenyiConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		g := ErdosRenyi(n, 0.05, true, rng)
		if g.N() != n {
			t.Fatalf("n = %d, want %d", g.N(), n)
		}
		if _, cnt := graph.Components(g, nil); cnt != 1 {
			t.Fatalf("connect=true produced %d components (n=%d)", cnt, n)
		}
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(4, 3)
	if g.N() != 12 {
		t.Fatalf("N = %d, want 12", g.N())
	}
	// Edges: 3 rows × 3 horizontal + 4 cols × 2 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	if _, cnt := graph.Components(g, nil); cnt != 1 {
		t.Fatal("grid should be connected")
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestCompleteAndCycle(t *testing.T) {
	if m := Complete(6).M(); m != 15 {
		t.Errorf("K6 edges = %d, want 15", m)
	}
	c := Cycle(7)
	if c.M() != 7 {
		t.Errorf("C7 edges = %d, want 7", c.M())
	}
	for v := 0; v < 7; v++ {
		if c.Degree(v) != 2 {
			t.Errorf("cycle degree(%d) = %d, want 2", v, c.Degree(v))
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d, want 16, 32", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Q4 degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("Petersen: n=%d m=%d, want 10, 15", g.N(), g.M())
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("Petersen degree(%d) = %d, want 3", v, g.Degree(v))
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := PreferentialAttachment(100, 2, rng)
	if g.N() != 100 {
		t.Fatalf("n = %d", g.N())
	}
	if _, cnt := graph.Components(g, nil); cnt != 1 {
		t.Fatal("preferential attachment graph should be connected")
	}
}

func TestRandomTreePlus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomTreePlus(50, 20, rng)
	if g.M() < 49 || g.M() > 69 {
		t.Fatalf("M = %d, want in [49, 69]", g.M())
	}
	if _, cnt := graph.Components(g, nil); cnt != 1 {
		t.Fatal("tree-plus graph should be connected")
	}
}

func TestFaultGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := ErdosRenyi(40, 0.2, true, rng)
	f := graph.SpanningForest(g)

	faults := RandomFaults(g, 5, rng)
	if len(faults) != 5 {
		t.Fatalf("RandomFaults len = %d", len(faults))
	}
	set := FaultSet(faults)
	if len(set) != 5 {
		t.Fatalf("faults not distinct: %v", faults)
	}

	tf := TreeEdgeFaults(g, f, 4, rng)
	if len(tf) != 4 {
		t.Fatalf("TreeEdgeFaults len = %d", len(tf))
	}
	for _, e := range tf {
		if !f.IsTreeEdge[e] {
			t.Fatalf("TreeEdgeFaults returned non-tree edge %d with plenty of tree edges available", e)
		}
	}

	vc := VertexCutFaults(g, 3, rng)
	if len(vc) == 0 || len(vc) > 3 {
		t.Fatalf("VertexCutFaults len = %d", len(vc))
	}

	// Oversized requests clamp.
	all := RandomFaults(g, g.M()+10, rng)
	if len(all) != g.M() {
		t.Fatalf("oversized RandomFaults len = %d, want %d", len(all), g.M())
	}
}

func TestAssignRandomWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Grid(5, 5)
	AssignRandomWeights(g, 100, rng)
	for e := 0; e < g.M(); e++ {
		w := g.Weight(e)
		if w < 1 || w > 100 {
			t.Fatalf("weight %d out of range", w)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	g1 := ErdosRenyi(30, 0.1, true, rand.New(rand.NewSource(42)))
	g2 := ErdosRenyi(30, 0.1, true, rand.New(rand.NewSource(42)))
	if g1.M() != g2.M() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", g1.M(), g2.M())
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
