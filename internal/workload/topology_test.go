package workload

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestFatTreeShapeAndDegrees(t *testing.T) {
	const k = 4
	g := FatTree(k)
	half := k / 2
	cores := half * half
	if want := cores + k*k; g.N() != want {
		t.Fatalf("N = %d, want %d", g.N(), want)
	}
	if want := k * k * k / 2; g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
	if _, cnt := graph.Components(g, nil); cnt != 1 {
		t.Fatal("fat-tree should be connected")
	}
	// Exact degree distribution: cores and aggs are k-regular, edges k/2.
	for v := 0; v < cores; v++ {
		if g.Degree(v) != k {
			t.Fatalf("core %d degree = %d, want %d", v, g.Degree(v), k)
		}
	}
	for p := 0; p < k; p++ {
		base := cores + p*k
		for j := 0; j < half; j++ {
			if d := g.Degree(base + j); d != k {
				t.Fatalf("agg %d/%d degree = %d, want %d", p, j, d, k)
			}
			if d := g.Degree(base + half + j); d != half {
				t.Fatalf("edge switch %d/%d degree = %d, want %d", p, j, d, half)
			}
		}
	}
	// Deterministic: two builds are edge-for-edge identical.
	h := FatTree(k)
	for i := range g.Edges {
		if g.Edges[i] != h.Edges[i] {
			t.Fatalf("edge %d differs between builds", i)
		}
	}
	// Degenerate sizes do not panic.
	if FatTree(0).N() != 0 || FatTree(1).N() != 0 {
		t.Fatal("k < 2 should yield the empty graph")
	}
	if g := FatTree(5); g.N() != FatTree(4).N() {
		t.Fatal("odd k should round down")
	}
}

func TestASGraphDegreeTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ASGraph(400, 2, 0.5, rng)
	if g.N() != 400 {
		t.Fatalf("N = %d, want 400", g.N())
	}
	if _, cnt := graph.Components(g, nil); cnt != 1 {
		t.Fatal("AS graph should be connected")
	}
	// Simple: no duplicate edges or self-loops.
	seen := map[[2]int]bool{}
	for _, e := range g.Edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if u == v || seen[[2]int{u, v}] {
			t.Fatalf("non-simple edge (%d,%d)", e.U, e.V)
		}
		seen[[2]int{u, v}] = true
	}
	// Peering thickens the graph beyond the m(n-1) attachment floor.
	if g.M() <= 2*(g.N()-1) {
		t.Fatalf("M = %d, peering added no edges", g.M())
	}
	// Heavy tail: the top hub dwarfs the median degree.
	degs := make([]int, g.N())
	for v := range degs {
		degs[v] = g.Degree(v)
	}
	sort.Ints(degs)
	median, max := degs[len(degs)/2], degs[len(degs)-1]
	if max < 5*median {
		t.Fatalf("degree tail too flat: max %d, median %d", max, median)
	}
}

func TestASGraphDeterministic(t *testing.T) {
	g1 := ASGraph(120, 2, 0.3, rand.New(rand.NewSource(11)))
	g2 := ASGraph(120, 2, 0.3, rand.New(rand.NewSource(11)))
	if g1.M() != g2.M() {
		t.Fatalf("same seed, different sizes: %d vs %d", g1.M(), g2.M())
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge %d differs under the same seed", i)
		}
	}
	if g := ASGraph(0, 2, 0.3, rand.New(rand.NewSource(1))); g.N() != 0 {
		t.Fatal("n=0 should yield the empty graph")
	}
	if g := ASGraph(1, 2, 0.3, rand.New(rand.NewSource(1))); g.M() != 0 {
		t.Fatal("n=1 should have no edges")
	}
}
