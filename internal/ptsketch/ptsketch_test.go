package ptsketch

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func mustBuild(t testing.TB, g *graph.Graph, p Params) *Scheme {
	t.Helper()
	s, err := Build(g, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func query(s *Scheme, sv, tv int, faults []int) (bool, error) {
	fl := make([]EdgeLabel, len(faults))
	for i, e := range faults {
		fl[i] = s.EdgeLabel(e)
	}
	return Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
}

// TestExhaustiveSmallGraphs: with generous sketch width the whp scheme
// should answer every query on small graphs correctly (the failure
// probability at b ≈ 40 bits is ~2^-30 per query).
func TestExhaustiveSmallGraphs(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"k4":      workload.Complete(4),
		"cycle6":  workload.Cycle(6),
		"grid3x3": workload.Grid(3, 3),
	} {
		g := g
		t.Run(name, func(t *testing.T) {
			s := mustBuild(t, g, Params{MaxFaults: 2, Seed: 3})
			var faults []int
			var rec func(start int)
			rec = func(start int) {
				set := workload.FaultSet(faults)
				for sv := 0; sv < g.N(); sv++ {
					for tv := sv + 1; tv < g.N(); tv++ {
						want := graph.ConnectedUnder(g, set, sv, tv)
						got, err := query(s, sv, tv, faults)
						if err != nil {
							t.Fatalf("query(%d,%d,%v): %v", sv, tv, faults, err)
						}
						if got != want {
							t.Fatalf("query(%d,%d,%v) = %v, want %v", sv, tv, faults, got, want)
						}
					}
				}
				if len(faults) == 2 {
					return
				}
				for e := start; e < g.M(); e++ {
					faults = append(faults, e)
					rec(e + 1)
					faults = faults[:len(faults)-1]
				}
			}
			rec(0)
		})
	}
}

func TestStressVsGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	wrong, total := 0, 0
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(50)
		g := workload.ErdosRenyi(n, 0.1, true, rng)
		f := 1 + rng.Intn(4)
		s := mustBuild(t, g, Params{MaxFaults: f, Seed: int64(trial), Full: trial%2 == 0})
		forest := graph.SpanningForest(g)
		for qn := 0; qn < 100; qn++ {
			var faults []int
			if qn%2 == 0 {
				faults = workload.TreeEdgeFaults(g, forest, rng.Intn(f+1), rng)
			} else {
				faults = workload.RandomFaults(g, rng.Intn(f+1), rng)
			}
			sv, tv := rng.Intn(n), rng.Intn(n)
			want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
			got, err := query(s, sv, tv, faults)
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			total++
			if got != want {
				wrong++
			}
		}
	}
	// whp semantics: allow a sliver of silent failures, though with the
	// default widths none are expected.
	if wrong > total/200 {
		t.Fatalf("error rate too high: %d/%d", wrong, total)
	}
}

// TestNarrowSketchFailsSometimes demonstrates the whp-vs-deterministic gap
// the paper closes: with a deliberately tiny sketch width the scheme
// produces wrong answers at a visible rate.
func TestNarrowSketchFailsSometimes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	wrong, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		g := workload.ErdosRenyi(24, 0.15, true, rng)
		forest := graph.SpanningForest(g)
		s := mustBuild(t, g, Params{MaxFaults: 4, Bits: 2, Seed: int64(trial)})
		for qn := 0; qn < 50; qn++ {
			faults := workload.TreeEdgeFaults(g, forest, 1+rng.Intn(4), rng)
			sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
			want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
			got, err := query(s, sv, tv, faults)
			if err != nil {
				continue
			}
			total++
			if got != want {
				wrong++
			}
		}
	}
	if wrong == 0 {
		t.Fatalf("2-bit sketches answered all %d queries correctly — failure injection broken", total)
	}
	t.Logf("narrow sketch error rate: %d/%d", wrong, total)
}

func TestNonTreeFaultsOnly(t *testing.T) {
	// Removing only non-tree edges never disconnects a component.
	rng := rand.New(rand.NewSource(9))
	g := workload.ErdosRenyi(30, 0.3, true, rng)
	forest := graph.SpanningForest(g)
	s := mustBuild(t, g, Params{MaxFaults: 5, Seed: 1})
	var nonTree []int
	for e := range g.Edges {
		if !forest.IsTreeEdge[e] {
			nonTree = append(nonTree, e)
		}
	}
	if len(nonTree) < 3 {
		t.Skip("not enough non-tree edges")
	}
	got, err := query(s, 0, g.N()-1, nonTree[:3])
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("non-tree faults cannot disconnect, but query said they did")
	}
}

func TestCrossComponentAndErrors(t *testing.T) {
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	s := mustBuild(t, g, Params{MaxFaults: 2, Seed: 1})
	got, err := query(s, 0, 4, nil)
	if err != nil || got {
		t.Fatalf("cross-component: got=%v err=%v", got, err)
	}
	// Token mismatch.
	other := mustBuild(t, workload.Cycle(5), Params{MaxFaults: 2, Seed: 1})
	if _, err := Connected(s.VertexLabel(0), other.VertexLabel(1), nil); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("err = %v, want ErrLabelMismatch", err)
	}
	// Budget exceeded (faults must be in the queried component to count).
	tight := mustBuild(t, workload.Cycle(6), Params{MaxFaults: 1, Seed: 2})
	if _, err := query(tight, 0, 3, []int{0, 2}); !errors.Is(err, ErrTooManyFaults) {
		t.Fatalf("err = %v, want ErrTooManyFaults", err)
	}
}

func TestNullspacePartition(t *testing.T) {
	// Hand-built instance: fragments {0,1} share a component (their
	// sketches are equal, so r0+r1 = 0), fragment 2 is alone (nonzero,
	// independent).
	rows := [][]uint64{{0b1010}, {0b1010}, {0b0110}}
	comp := nullspacePartition(rows)
	if comp[0] != comp[1] {
		t.Fatalf("fragments 0,1 should merge: %v", comp)
	}
	if comp[2] == comp[0] {
		t.Fatalf("fragment 2 should be separate: %v", comp)
	}
	// All zero: each fragment has no crossing edges, i.e. every fragment
	// is its own component — all distinct.
	comp = nullspacePartition([][]uint64{{0}, {0}, {0}})
	if comp[0] == comp[1] || comp[1] == comp[2] || comp[0] == comp[2] {
		t.Fatalf("all-zero rows are isolated components, got %v", comp)
	}
}

func TestLabelBitsAccounting(t *testing.T) {
	g := workload.Grid(5, 5)
	whp := mustBuild(t, g, Params{MaxFaults: 3, Seed: 1})
	full := mustBuild(t, g, Params{MaxFaults: 3, Seed: 1, Full: true})
	if whp.LabelBits() >= full.LabelBits() {
		t.Fatalf("full-support labels (%d bits) should exceed whp labels (%d bits)",
			full.LabelBits(), whp.LabelBits())
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Build(workload.Cycle(3), Params{MaxFaults: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}
