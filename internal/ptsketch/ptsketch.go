// Package ptsketch implements the first Dory–Parter scheme (the remaining
// Table 1 baseline): fault-tolerant connectivity labels built on the
// cycle-space sampling of Pritchard–Thurimella [PT11] instead of graph
// sketches (paper §1.4).
//
// Every non-tree edge draws a uniform b-bit string φ(e); every tree edge
// stores the XOR of φ over the non-tree edges whose fundamental cycle
// crosses it (equivalently: whose endpoints straddle its subtree). For a
// fault set F, each fragment's sketch — the XOR of its boundary tree-edge
// sketches, corrected for faulty non-tree edges — equals the XOR of φ over
// the surviving non-tree edges leaving the fragment. A set of fragments is a
// union of G−F components exactly when its sketches XOR to zero (with high
// probability), so the connectivity partition is the coarsest-to-finest
// grouping induced by the left null space of the fragment-sketch matrix,
// computed by GF(2) Gaussian elimination in Õ(f³) time.
//
// Unlike the sketch-based schemes, a failure here is silent (a zero-XOR
// collision merges two components): that is the "whp query support" the
// paper's deterministic construction eliminates, and the benchmark harness
// measures it directly.
package ptsketch

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ancestry"
	"repro/internal/fragments"
	"repro/internal/graph"
)

// ErrLabelMismatch is returned when labels from different schemes are mixed.
var ErrLabelMismatch = errors.New("ptsketch: labels belong to different schemes")

// ErrTooManyFaults is returned when the fault set exceeds the budget.
var ErrTooManyFaults = errors.New("ptsketch: fault set exceeds the labels' budget")

// VertexLabel is the per-vertex label: an ancestry label plus scheme token.
type VertexLabel struct {
	Token uint64
	Anc   ancestry.Label
}

// EdgeLabel is the per-edge label. Tree edges carry the cycle-space sketch
// of their subtree cut; non-tree edges carry their own φ value and both
// endpoint ancestry labels (needed to locate which fragments a faulty
// non-tree edge crossed).
type EdgeLabel struct {
	Token     uint64
	MaxFaults int
	Words     int
	IsTree    bool
	// A is the parent-side endpoint for tree edges; either endpoint for
	// non-tree edges.
	A, B ancestry.Label
	Phi  []uint64
}

// Params configures Build.
type Params struct {
	// MaxFaults is the fault budget f.
	MaxFaults int
	// Bits is the sketch width b. Zero selects the whp default
	// f + 2·⌈log₂ n⌉ + 8; the full-support variant of DP21 multiplies the
	// log term by f.
	Bits int
	// Full selects the full-query-support parameterization (b scaled by
	// f as in DP21 footnote 4).
	Full bool
	// Seed drives the φ sampling.
	Seed int64
}

// Scheme holds the labels of one construction.
type Scheme struct {
	token  uint64
	words  int
	bits   int
	params Params

	vertexLabels []VertexLabel
	edgeLabels   []EdgeLabel
}

// defaultBits returns the sketch width for an n-vertex graph.
func defaultBits(p Params, n int) int {
	if p.Bits > 0 {
		return p.Bits
	}
	logn := int(math.Ceil(math.Log2(float64(n + 2))))
	if p.Full {
		f := p.MaxFaults
		if f < 1 {
			f = 1
		}
		return p.MaxFaults + 2*f*logn + 8
	}
	return p.MaxFaults + 2*logn + 8
}

// Build constructs the DP21-1 labeling for g.
func Build(g *graph.Graph, p Params) (*Scheme, error) {
	if g == nil {
		return nil, fmt.Errorf("ptsketch: nil graph")
	}
	if p.MaxFaults < 0 {
		return nil, fmt.Errorf("ptsketch: negative fault budget")
	}
	f := graph.SpanningForest(g)
	anc := ancestry.Build(f)
	bits := defaultBits(p, g.N())
	words := (bits + 63) / 64
	rng := rand.New(rand.NewSource(p.Seed))

	s := &Scheme{words: words, bits: bits, params: p}
	s.token = token(g, p, bits)

	// φ for non-tree edges; per-vertex XOR accumulator.
	n := g.N()
	acc := make([]uint64, n*words)
	phi := map[int][]uint64{}
	for e, edge := range g.Edges {
		if f.IsTreeEdge[e] {
			continue
		}
		v := make([]uint64, words)
		for i := range v {
			v[i] = rng.Uint64()
		}
		maskTo(v, bits)
		phi[e] = v
		xorInto(acc[edge.U*words:(edge.U+1)*words], v)
		xorInto(acc[edge.V*words:(edge.V+1)*words], v)
	}
	// Subtree XOR: reverse BFS order pushes children into parents.
	order := f.BFSOrder
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if p := f.Parent[v]; p >= 0 {
			xorInto(acc[p*words:(p+1)*words], acc[v*words:(v+1)*words])
		}
	}

	s.vertexLabels = make([]VertexLabel, n)
	for v := 0; v < n; v++ {
		s.vertexLabels[v] = VertexLabel{Token: s.token, Anc: anc.Of(v)}
	}
	s.edgeLabels = make([]EdgeLabel, g.M())
	for e, edge := range g.Edges {
		el := EdgeLabel{
			Token:     s.token,
			MaxFaults: p.MaxFaults,
			Words:     words,
		}
		if f.IsTreeEdge[e] {
			child := edge.V
			if f.Parent[edge.V] != edge.U {
				child = edge.U
			}
			el.IsTree = true
			el.A = anc.Of(edge.Other(child))
			el.B = anc.Of(child)
			el.Phi = append([]uint64(nil), acc[child*words:(child+1)*words]...)
		} else {
			el.A = anc.Of(edge.U)
			el.B = anc.Of(edge.V)
			el.Phi = append([]uint64(nil), phi[e]...)
		}
		s.edgeLabels[e] = el
	}
	return s, nil
}

// VertexLabel returns vertex v's label.
func (s *Scheme) VertexLabel(v int) VertexLabel { return s.vertexLabels[v] }

// EdgeLabel returns edge e's label (shared payload; treat as immutable).
func (s *Scheme) EdgeLabel(e int) EdgeLabel { return s.edgeLabels[e] }

// LabelBits returns the per-edge label size in bits: the b-bit φ sketch (the
// paper's O(f + log n) term) plus the two ancestry labels and the fixed
// header.
func (s *Scheme) LabelBits() int {
	return s.bits + 8*(1+8+4+4+24)
}

// Connected is the universal decoder: s–t connectivity of G − F from labels
// only. Correct with high probability over the construction's randomness; a
// failure is a silent false "connected".
func Connected(sv, tv VertexLabel, faults []EdgeLabel) (bool, error) {
	if sv.Token != tv.Token {
		return false, fmt.Errorf("%w: vertex tokens differ", ErrLabelMismatch)
	}
	if sv.Anc.Root != tv.Anc.Root {
		return false, nil
	}
	if sv.Anc.Pre == tv.Anc.Pre {
		return true, nil
	}
	var treeFaults []fragments.Fault
	var treeLabels []EdgeLabel
	var nonTree []EdgeLabel
	maxFaults := 0
	words := 0
	seenTree := map[uint32]bool{}
	seenNonTree := map[[2]uint32]bool{}
	for i := range faults {
		fl := faults[i]
		if fl.Token != sv.Token {
			return false, fmt.Errorf("%w: fault %d token differs", ErrLabelMismatch, i)
		}
		if fl.A.Root != sv.Anc.Root {
			continue
		}
		maxFaults = fl.MaxFaults
		words = fl.Words
		if fl.IsTree {
			ft, err := fragments.Normalize(fl.A, fl.B)
			if err != nil {
				return false, err
			}
			if seenTree[ft.Child.Pre] {
				continue
			}
			seenTree[ft.Child.Pre] = true
			treeFaults = append(treeFaults, ft)
			treeLabels = append(treeLabels, fl)
		} else {
			key := [2]uint32{fl.A.Pre, fl.B.Pre}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if seenNonTree[key] {
				continue
			}
			seenNonTree[key] = true
			nonTree = append(nonTree, fl)
		}
	}
	if len(treeFaults)+len(nonTree) > maxFaults && maxFaults > 0 {
		return false, fmt.Errorf("%w: %d faults, budget %d", ErrTooManyFaults,
			len(treeFaults)+len(nonTree), maxFaults)
	}
	if len(treeFaults) == 0 {
		// The spanning tree survives intact: the component stays
		// connected no matter which non-tree edges failed.
		return true, nil
	}
	set, err := fragments.Build(treeFaults)
	if err != nil {
		return false, err
	}
	q := len(set.Faults)
	// Fragment sketches: XOR of boundary tree-edge sketches…
	sketches := make([][]uint64, q+1)
	for c := 0; c <= q; c++ {
		sketches[c] = make([]uint64, words)
		for _, fi := range set.Boundary[c] {
			// Find the label whose child preorder matches fault fi.
			for j := range treeFaults {
				if treeFaults[j].Child.Pre == set.Faults[fi].Child.Pre {
					xorInto(sketches[c], treeLabels[j].Phi)
					break
				}
			}
		}
	}
	// …corrected for faulty non-tree edges that crossed fragments.
	for _, fl := range nonTree {
		cu, cv := set.StabLabel(fl.A), set.StabLabel(fl.B)
		if cu == cv {
			continue
		}
		xorInto(sketches[cu], fl.Phi)
		xorInto(sketches[cv], fl.Phi)
	}
	comp := nullspacePartition(sketches)
	return comp[set.StabLabel(sv.Anc)] == comp[set.StabLabel(tv.Anc)], nil
}

// nullspacePartition groups the rows by the left null space of the sketch
// matrix: rows i, j fall in the same G−F component exactly when every null
// vector assigns them the same coefficient (whp).
func nullspacePartition(rows [][]uint64) []int {
	q := len(rows)
	words := 0
	if q > 0 {
		words = len(rows[0])
	}
	// Working rows: payload ++ identity augment.
	augWords := (q + 63) / 64
	work := make([][]uint64, q)
	for i := range work {
		work[i] = make([]uint64, words+augWords)
		copy(work[i], rows[i])
		work[i][words+i/64] |= 1 << uint(i%64)
	}
	// Gaussian elimination on the payload part.
	row := 0
	for col := 0; col < 64*words && row < q; col++ {
		w, b := col/64, uint(col%64)
		pivot := -1
		for r := row; r < q; r++ {
			if work[r][w]>>b&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			continue
		}
		work[row], work[pivot] = work[pivot], work[row]
		for r := 0; r < q; r++ {
			if r != row && work[r][w]>>b&1 == 1 {
				xorInto(work[r], work[row])
			}
		}
		row++
	}
	// Null-space basis: augments of the zero-payload rows.
	var basis [][]uint64
	for r := row; r < q; r++ {
		basis = append(basis, work[r][words:])
	}
	// Group rows by their bit pattern across the basis.
	comp := make([]int, q)
	groups := map[string]int{}
	for i := 0; i < q; i++ {
		sig := make([]byte, len(basis))
		for b := range basis {
			sig[b] = byte(basis[b][i/64] >> uint(i%64) & 1)
		}
		k := string(sig)
		id, ok := groups[k]
		if !ok {
			id = len(groups)
			groups[k] = id
		}
		comp[i] = id
	}
	return comp
}

func xorInto(dst, src []uint64) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

func maskTo(v []uint64, bits int) {
	rem := bits % 64
	if rem == 0 {
		return
	}
	v[len(v)-1] &= (1 << uint(rem)) - 1
}

func token(g *graph.Graph, p Params, bits int) uint64 {
	h := uint64(1469598103934665603) // FNV offset
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(g.N()))
	mix(uint64(g.M()))
	for _, e := range g.Edges {
		mix(uint64(e.U)<<32 | uint64(e.V))
	}
	mix(uint64(p.MaxFaults))
	mix(uint64(p.Seed))
	mix(uint64(bits))
	return h
}
