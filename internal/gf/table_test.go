package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		tab := NewTable(a)
		if got, want := tab.Mul(b), mulSlow(a, b); got != want {
			t.Fatalf("Table(%#x).Mul(%#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestTableMulProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}

	t.Run("matches-mul", func(t *testing.T) {
		if err := quick.Check(func(a, b uint64) bool {
			tab := NewTable(a)
			return tab.Mul(b) == Mul(a, b)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("reuse-across-chain", func(t *testing.T) {
		// One table, many multiplicands — the Horner-chain usage pattern.
		if err := quick.Check(func(a, seed uint64) bool {
			tab := NewTable(a)
			b := seed
			for i := 0; i < 8; i++ {
				if tab.Mul(b) != Mul(a, b) {
					return false
				}
				b = tab.Mul(b) | 1
			}
			return true
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("zero-table", func(t *testing.T) {
		var tab Table // zero value = table of α = 0
		if err := quick.Check(func(b uint64) bool {
			return tab.Mul(b) == 0
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("zero-operand", func(t *testing.T) {
		if err := quick.Check(func(a uint64) bool {
			tab := NewTable(a)
			return tab.Mul(0) == 0
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}

// FuzzTableMul cross-checks the cached-multiplier kernel against both the
// windowed Mul and the bit-serial reference on arbitrary operands.
func FuzzTableMul(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), ^uint64(0))
	f.Add(uint64(2), uint64(1)<<63)
	f.Add(uint64(0xDEADBEEF), uint64(0xC0FFEE))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		tab := NewTable(a)
		got := tab.Mul(b)
		if want := mulSlow(a, b); got != want {
			t.Fatalf("Table(%#x).Mul(%#x) = %#x, reference %#x", a, b, got, want)
		}
		if want := Mul(a, b); got != want {
			t.Fatalf("Table(%#x).Mul(%#x) = %#x, Mul %#x", a, b, got, want)
		}
	})
}

func BenchmarkTableMul(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	tab := NewTable(rng.Uint64())
	x := rng.Uint64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = tab.Mul(x) | 1
	}
	sink = x
}
