package gf

// Poly is a univariate polynomial over GF(2^64). Poly[i] is the coefficient
// of x^i. The canonical form has no trailing zero coefficients; the zero
// polynomial is the empty (or nil) slice. All operations accept non-canonical
// inputs and return canonical outputs.
type Poly []uint64

// PolyTrim returns p with trailing zero coefficients removed.
func PolyTrim(p Poly) Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Deg returns the degree of p, with Deg(0) = -1.
func (p Poly) Deg() int { return len(PolyTrim(p)) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(PolyTrim(p)) == 0 }

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// PolyAdd returns a + b (coefficient-wise XOR).
func PolyAdd(a, b Poly) Poly {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make(Poly, len(a))
	copy(out, a)
	for i, c := range b {
		out[i] ^= c
	}
	return PolyTrim(out)
}

// PolyMul returns the product a·b by schoolbook multiplication. Degrees in
// this library are bounded by the outdetect threshold k, so the quadratic
// algorithm is the right tool.
func PolyMul(a, b Poly) Poly {
	a, b = PolyTrim(a), PolyTrim(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(Poly, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			if cb != 0 {
				out[i+j] ^= Mul(ca, cb)
			}
		}
	}
	return PolyTrim(out)
}

// PolyMod returns a mod m. It panics if m is zero, which is a programming
// error (callers always reduce modulo a known nonzero factor).
func PolyMod(a, m Poly) Poly {
	m = PolyTrim(m)
	if len(m) == 0 {
		panic("gf: PolyMod by zero polynomial")
	}
	r := PolyTrim(a).Clone()
	dm := len(m) - 1
	inv := Inv(m[dm])
	for len(r)-1 >= dm && len(r) > 0 {
		dr := len(r) - 1
		q := Mul(r[dr], inv)
		shift := dr - dm
		for i, c := range m {
			if c != 0 {
				r[i+shift] ^= Mul(q, c)
			}
		}
		r = PolyTrim(r)
	}
	return r
}

// PolyDivExact returns a / m, discarding any remainder. It is used to peel
// factors discovered by gcd splitting, where divisibility is guaranteed.
func PolyDivExact(a, m Poly) Poly {
	m = PolyTrim(m)
	if len(m) == 0 {
		panic("gf: PolyDivExact by zero polynomial")
	}
	r := PolyTrim(a).Clone()
	dm := len(m) - 1
	if len(r)-1 < dm {
		return nil
	}
	inv := Inv(m[dm])
	quo := make(Poly, len(r)-dm)
	for len(r) > 0 && len(r)-1 >= dm {
		dr := len(r) - 1
		q := Mul(r[dr], inv)
		shift := dr - dm
		quo[shift] = q
		for i, c := range m {
			if c != 0 {
				r[i+shift] ^= Mul(q, c)
			}
		}
		r = PolyTrim(r)
	}
	return PolyTrim(quo)
}

// PolyGCD returns the monic greatest common divisor of a and b.
func PolyGCD(a, b Poly) Poly {
	a, b = PolyTrim(a).Clone(), PolyTrim(b).Clone()
	for len(b) > 0 {
		a, b = b, PolyMod(a, b)
	}
	return PolyMonic(a)
}

// PolyMonic scales p so its leading coefficient is 1.
func PolyMonic(p Poly) Poly {
	p = PolyTrim(p)
	if len(p) == 0 {
		return nil
	}
	lead := p[len(p)-1]
	if lead == 1 {
		return p
	}
	inv := Inv(lead)
	out := make(Poly, len(p))
	for i, c := range p {
		out[i] = Mul(c, inv)
	}
	return out
}

// PolyEval evaluates p at x by Horner's rule.
func PolyEval(p Poly, x uint64) uint64 {
	var acc uint64
	for i := len(p) - 1; i >= 0; i-- {
		acc = Mul(acc, x) ^ p[i]
	}
	return acc
}

// PolyDeriv returns the formal derivative of p. In characteristic two the
// even-degree terms vanish.
func PolyDeriv(p Poly) Poly {
	if len(p) < 2 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return PolyTrim(out)
}

// PolySqrMod returns p² mod m, exploiting the linearity of squaring in
// characteristic two: (Σ c_i x^i)² = Σ c_i² x^(2i).
func PolySqrMod(p, m Poly) Poly {
	p = PolyTrim(p)
	if len(p) == 0 {
		return nil
	}
	sq := make(Poly, 2*len(p)-1)
	for i, c := range p {
		if c != 0 {
			sq[2*i] = Sqr(c)
		}
	}
	return PolyMod(sq, m)
}
