package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mulSlow is a reference bit-serial multiplication used to validate the
// windowed implementation.
func mulSlow(a, b uint64) uint64 {
	var p uint64
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & (1 << 63)
		a <<= 1
		if hi != 0 {
			a ^= reduction
		}
		b >>= 1
	}
	return p
}

func TestMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if got, want := Mul(a, b), mulSlow(a, b); got != want {
			t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	cases := []struct {
		a, b, want uint64
	}{
		{0, 0, 0},
		{0, 123, 0},
		{123, 0, 0},
		{1, 1, 1},
		{1, 0xDEADBEEF, 0xDEADBEEF},
		{2, 1 << 63, reduction}, // z * z^63 = z^64 = reduction
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}

	t.Run("commutativity", func(t *testing.T) {
		if err := quick.Check(func(a, b uint64) bool {
			return Mul(a, b) == Mul(b, a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("associativity", func(t *testing.T) {
		if err := quick.Check(func(a, b, c uint64) bool {
			return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("distributivity", func(t *testing.T) {
		if err := quick.Check(func(a, b, c uint64) bool {
			return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("characteristic-two", func(t *testing.T) {
		if err := quick.Check(func(a uint64) bool {
			return Add(a, a) == 0
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("square-is-mul", func(t *testing.T) {
		if err := quick.Check(func(a uint64) bool {
			return Sqr(a) == Mul(a, a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("frobenius-additive", func(t *testing.T) {
		if err := quick.Check(func(a, b uint64) bool {
			return Sqr(Add(a, b)) == Add(Sqr(a), Sqr(b))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestInv(t *testing.T) {
	if Inv(0) != 0 {
		t.Fatalf("Inv(0) = %#x, want 0", Inv(0))
	}
	if Inv(1) != 1 {
		t.Fatalf("Inv(1) = %#x, want 1", Inv(1))
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := rng.Uint64()
		if a == 0 {
			continue
		}
		if got := Mul(a, Inv(a)); got != 1 {
			t.Fatalf("a * Inv(a) = %#x for a = %#x, want 1", got, a)
		}
	}
}

func TestPow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a := rng.Uint64()
		// Pow against iterated multiplication for small exponents.
		acc := uint64(1)
		for e := uint64(0); e < 16; e++ {
			if got := Pow(a, e); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, e, got, acc)
			}
			acc = Mul(acc, a)
		}
	}
	// Fermat: a^(2^64-1) = 1 for a != 0.
	for i := 0; i < 50; i++ {
		a := rng.Uint64() | 1
		if got := Pow(a, ^uint64(0)); got != 1 {
			t.Fatalf("a^(2^64-1) = %#x for a = %#x, want 1", got, a)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x, y := rng.Uint64(), rng.Uint64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = Mul(x, y) | 1
	}
	sink = x
}

func BenchmarkInv(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := rng.Uint64() | 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = Inv(x) | 1
	}
	sink = x
}

var sink uint64
