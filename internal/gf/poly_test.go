package gf

import (
	"math/rand"
	"reflect"
	"testing"
)

func randPoly(rng *rand.Rand, maxDeg int) Poly {
	d := rng.Intn(maxDeg + 1)
	p := make(Poly, d+1)
	for i := range p {
		p[i] = rng.Uint64()
	}
	return PolyTrim(p)
}

func TestPolyTrimAndDeg(t *testing.T) {
	if d := (Poly{}).Deg(); d != -1 {
		t.Errorf("zero poly degree = %d, want -1", d)
	}
	if d := (Poly{0, 0, 0}).Deg(); d != -1 {
		t.Errorf("trimmed zero poly degree = %d, want -1", d)
	}
	if d := (Poly{5, 0, 7, 0}).Deg(); d != 2 {
		t.Errorf("degree = %d, want 2", d)
	}
}

func TestPolyAddSelfIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := randPoly(rng, 20)
		if !PolyAdd(p, p).IsZero() {
			t.Fatalf("p + p != 0 for %v", p)
		}
	}
}

func TestPolyMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a, b, c := randPoly(rng, 12), randPoly(rng, 12), randPoly(rng, 12)
		lhs := PolyMul(a, PolyAdd(b, c))
		rhs := PolyAdd(PolyMul(a, b), PolyMul(a, c))
		if !reflect.DeepEqual(lhs, rhs) {
			t.Fatalf("a(b+c) != ab+ac")
		}
	}
}

func TestPolyModDivRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := randPoly(rng, 30)
		m := randPoly(rng, 10)
		if m.IsZero() {
			continue
		}
		q := PolyDivExact(a, m)
		r := PolyMod(a, m)
		recon := PolyAdd(PolyMul(q, m), r)
		if !reflect.DeepEqual(recon, PolyTrim(a)) {
			t.Fatalf("q*m + r != a\n a=%v\n m=%v\n q=%v\n r=%v", a, m, q, r)
		}
		if r.Deg() >= m.Deg() {
			t.Fatalf("deg(r)=%d >= deg(m)=%d", r.Deg(), m.Deg())
		}
	}
}

func TestPolyGCDOfProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		g := PolyMonic(randPoly(rng, 5))
		if g.IsZero() {
			continue
		}
		a := PolyMul(g, randPoly(rng, 6))
		b := PolyMul(g, randPoly(rng, 6))
		if a.IsZero() || b.IsZero() {
			continue
		}
		d := PolyGCD(a, b)
		// g divides gcd(a,b): check remainder is zero.
		if !PolyMod(d, g).IsZero() && !PolyMod(g, d).IsZero() {
			// gcd must be a multiple of g (or equal up to the random
			// cofactors sharing more); at minimum g | a and g | b so
			// g | gcd.
			if !PolyMod(d, g).IsZero() {
				t.Fatalf("g does not divide gcd: g=%v gcd=%v", g, d)
			}
		}
		if !PolyMod(a, d).IsZero() || !PolyMod(b, d).IsZero() {
			t.Fatalf("gcd does not divide inputs")
		}
	}
}

func TestPolyEvalRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		// Build (x - r1)(x - r2)(x - r3) and check the roots evaluate to 0.
		roots := []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64()}
		p := Poly{1}
		for _, r := range roots {
			p = PolyMul(p, Poly{r, 1}) // x + r == x - r in char 2
		}
		for _, r := range roots {
			if PolyEval(p, r) != 0 {
				t.Fatalf("root %#x does not vanish", r)
			}
		}
		if PolyEval(p, roots[0]^1) == 0 && roots[0]^1 != roots[1] && roots[0]^1 != roots[2] {
			t.Fatalf("non-root vanishes unexpectedly")
		}
	}
}

func TestPolySqrMod(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		p := randPoly(rng, 15)
		m := randPoly(rng, 8)
		if m.IsZero() {
			continue
		}
		want := PolyMod(PolyMul(p, p), m)
		got := PolySqrMod(p, m)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("PolySqrMod mismatch")
		}
	}
}

func TestPolyDeriv(t *testing.T) {
	// d/dx (x^3 + a x^2 + b x + c) = 3x^2 + 2a x + b = x^2 + b (char 2).
	p := Poly{7, 9, 11, 1}
	want := Poly{9, 0, 1}
	if got := PolyDeriv(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("PolyDeriv = %v, want %v", got, want)
	}
}
