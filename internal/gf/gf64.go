// Package gf implements arithmetic over the finite field GF(2^64) of
// characteristic two, together with univariate polynomial arithmetic over
// that field.
//
// The field is the quotient ring GF(2)[z] / (z^64 + z^4 + z^3 + z + 1); an
// element is the uint64 whose bit i is the coefficient of z^i. Addition is
// bitwise XOR. The package is the algebraic substrate of the Reed–Solomon
// syndrome sketches in internal/rs (paper §4.2, §7.4): the edge-ID domain of
// the outdetect labeling scheme is embedded into the nonzero elements of
// this field.
package gf

// reduction is the low part of the irreducible modulus
// z^64 + z^4 + z^3 + z + 1: when a product overflows past z^63, z^64 is
// replaced by z^4 + z^3 + z + 1 = 0x1B.
const reduction uint64 = 0x1B

// Add returns a + b in GF(2^64). Subtraction is identical because the field
// has characteristic two.
func Add(a, b uint64) uint64 { return a ^ b }

// Mul returns the product a·b in GF(2^64).
//
// The implementation is a 4-bit windowed carry-less multiplication followed
// by modular reduction; it is branch-light and constant-bounded (16 window
// steps plus reduction) so that decoding costs measured in field
// multiplications are stable across inputs. The window table of a is built
// per call; when one multiplicand is fixed across many products, build a
// gf.Table once instead.
func Mul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	// Precompute a·w for every 4-bit window value w (carry-less, in
	// GF(2)[z] before reduction). tab[w] holds the low 64 bits and
	// tabHi[w] the overflow bits (window shifts add at most 3 extra bits
	// beyond whatever a itself overflows, handled below).
	var tab [16]uint64
	var tabHi [16]uint64
	tab[1] = a
	for w := 2; w < 16; w += 2 {
		tab[w] = tab[w/2] << 1
		tabHi[w] = tabHi[w/2]<<1 | tab[w/2]>>63
		tab[w+1] = tab[w] ^ a
		tabHi[w+1] = tabHi[w]
	}
	var lo, hi uint64
	for i := 60; i >= 0; i -= 4 {
		if i != 60 {
			hi = hi<<4 | lo>>60
			lo <<= 4
		}
		w := (b >> uint(i)) & 0xF
		lo ^= tab[w]
		hi ^= tabHi[w]
	}
	return reduce128(hi, lo)
}

// reduce128 reduces a 128-bit carry-less product (hi·2^64 + lo) modulo the
// field polynomial. z^64 ≡ z^4 + z^3 + z + 1, so hi folds in as four
// shift-XORs; the ≤4 bits that spill past z^63 (from the z^4/z^3/z shifts)
// fold once more, branchlessly — this sits on every product and squaring.
func reduce128(hi, lo uint64) uint64 {
	lo ^= hi<<4 ^ hi<<3 ^ hi<<1 ^ hi
	spill := hi>>60 ^ hi>>61 ^ hi>>63
	return lo ^ spill<<4 ^ spill<<3 ^ spill<<1 ^ spill
}

// Sqr returns a² in GF(2^64). Squaring is GF(2)-linear (the Frobenius
// endomorphism): it interleaves the bits of a with zeros and reduces.
func Sqr(a uint64) uint64 {
	lo := spreadBits(uint32(a))
	hi := spreadBits(uint32(a >> 32))
	return reduce128(hi, lo)
}

// spreadBits inserts a zero bit between consecutive bits of a
// (carry-less squaring of a 32-bit value).
func spreadBits(a uint32) uint64 {
	x := uint64(a)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// Pow returns a^e in GF(2^64) by square-and-multiply.
func Pow(a uint64, e uint64) uint64 {
	var r uint64 = 1
	base := a
	for e != 0 {
		if e&1 != 0 {
			r = Mul(r, base)
		}
		base = Sqr(base)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a. Inv(0) returns 0; callers
// that must distinguish this case check for zero first (the Reed–Solomon
// decoder never inverts zero on valid inputs and treats a zero root as a
// decoding failure).
func Inv(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	// The multiplicative group has order 2^64 - 1, so a^(2^64 - 2) = a^-1.
	return Pow(a, ^uint64(0)-1)
}
