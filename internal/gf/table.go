package gf

// Table is a precomputed multiplier: the 8-bit window table of a fixed field
// element α, built once and reused across many products α·b. Mul uses a
// 4-bit window rebuilt on every call, which is the right trade-off for a
// single product but wasteful wherever one multiplicand is fixed — above all
// the Horner chains that evaluate power sums (α, α², …, α^2k) in
// internal/rs, where a single Table amortizes the (larger, 256-entry) window
// setup over the whole chain and halves the per-product window steps.
//
// The zero value is the table of α = 0 (every product is 0).
type Table struct {
	lo [256]uint64
	hi [256]uint64
}

// NewTable returns the precomputed multiplier for alpha. The break-even
// point against Mul is a handful of products; below that, call Mul.
func NewTable(alpha uint64) Table {
	var t Table
	t.lo[1] = alpha
	for w := 2; w < 256; w += 2 {
		t.lo[w] = t.lo[w/2] << 1
		t.hi[w] = t.hi[w/2]<<1 | t.lo[w/2]>>63
		t.lo[w+1] = t.lo[w] ^ alpha
		t.hi[w+1] = t.hi[w]
	}
	return t
}

// Mul returns α·b in GF(2^64), where α is the element the table was built
// for. Identical in result to Mul(α, b).
func (t *Table) Mul(b uint64) uint64 {
	var lo, hi uint64
	for i := 56; i >= 0; i -= 8 {
		if i != 56 {
			hi = hi<<8 | lo>>56
			lo <<= 8
		}
		w := (b >> uint(i)) & 0xFF
		lo ^= t.lo[w]
		hi ^= t.hi[w]
	}
	return reduce128(hi, lo)
}
