package paperfig

import (
	"testing"

	"repro/internal/euler"
	"repro/internal/graph"
)

func TestInstanceMatchesFigureParameters(t *testing.T) {
	g, nonTree := Instance()
	if g.N() != 8 || g.M() != 12 {
		t.Fatalf("n=%d m=%d, want 8, 12", g.N(), g.M())
	}
	f := graph.SpanningForest(g)
	if len(f.Roots) != 1 || f.Roots[0] != 0 {
		t.Fatalf("roots = %v, want {0}", f.Roots)
	}
	// Exactly the primed edges of Figure 1 are non-tree.
	want := map[int]bool{0: true, 2: true, 4: true, 8: true, 11: true}
	for e := 0; e < g.M(); e++ {
		if f.IsTreeEdge[e] == want[e] {
			t.Fatalf("edge %s tree status mismatch (tree=%v)", EdgeName(e), f.IsTreeEdge[e])
		}
	}
	if len(nonTree) != 5 {
		t.Fatalf("non-tree list = %v", nonTree)
	}
	for _, e := range nonTree {
		if !want[e] {
			t.Fatalf("edge %s listed non-tree but is a tree edge", EdgeName(e))
		}
	}
}

func TestFigure2CoordinateRange(t *testing.T) {
	// The auxiliary tree T′ has 12 edges (7 tree + 5 subdivision halves),
	// so the Euler tour has 24 directed edges — the 1..24 numbering shown
	// in Figure 2. Here the original tree alone gives 2·7 = 14 positions;
	// the full 24 appears in the demo via the auxiliary transform.
	g, _ := Instance()
	f := graph.SpanningForest(g)
	tour := euler.Build(f)
	if int(tour.Len) != 14 {
		t.Fatalf("tour length = %d, want 14 for the original tree", tour.Len)
	}
	pts := euler.EmbedNonTree(g, f, tour)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	for _, p := range pts {
		if p.X < 1 || p.Y > tour.Len || p.X >= p.Y {
			t.Fatalf("point out of range: %+v", p)
		}
	}
}
