// Package paperfig holds the running example of the paper's Figures 1 and 2:
// a 12-edge graph whose non-tree edges e1, e3, e5, e9, e12 are subdivided by
// the auxiliary-graph transform (Figure 1) and then mapped to planar points
// by the Euler-tour coordinates (Figure 2).
//
// The figures are drawings, so the exact vertex layout is not recoverable
// from the text; this instance reconstructs the figure's parameters exactly
// — 12 edges, 7 of them spanning-tree edges, 5 non-tree edges carrying the
// primed names, and an Euler tour of 24 directed edges on the auxiliary tree
// — so every quantity the figures illustrate (the subdivision, the
// coordinate ranges, the checkered cut regions) is regenerated faithfully.
package paperfig

import (
	"fmt"

	"repro/internal/graph"
)

// EdgeName returns the paper's name for edge index i (e1..e12).
func EdgeName(i int) string { return fmt.Sprintf("e%d", i+1) }

// Instance returns the Figure 1 graph. Vertex 0 is the root r. Edges are
// inserted in name order e1..e12; NonTree lists the indices of the edges
// that are non-tree under the BFS spanning tree from r (matching the primed
// edges of the figure: e1, e3, e5, e9, e12).
func Instance() (*graph.Graph, []int) {
	g := graph.New(8)
	// 0 = r. Tree (BFS from 0): e2 (0-1), e4 (0-2), e6 (1-3), e7 (1-4),
	// e8 (2-5), e10 (3-6), e11 (4-7). Non-tree: e1 (1-2), e3 (3-4),
	// e5 (5-7), e9 (5-6), e12 (6-7).
	edges := [][2]int{
		{1, 2}, // e1  (non-tree)
		{0, 1}, // e2
		{3, 4}, // e3  (non-tree)
		{0, 2}, // e4
		{5, 7}, // e5  (non-tree)
		{1, 3}, // e6
		{1, 4}, // e7
		{2, 5}, // e8
		{5, 6}, // e9  (non-tree)
		{3, 6}, // e10
		{4, 7}, // e11
		{6, 7}, // e12 (non-tree)
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			panic("paperfig: invalid fixed instance: " + err.Error())
		}
	}
	return g, []int{0, 2, 4, 8, 11}
}
