package fragments

import (
	"math/rand"
	"testing"

	"repro/internal/ancestry"
	"repro/internal/graph"
	"repro/internal/workload"
)

// setup builds a random connected graph, forest, and labeling.
func setup(seed int64, n int, p float64) (*graph.Graph, *graph.Forest, *ancestry.Labeling) {
	rng := rand.New(rand.NewSource(seed))
	g := workload.ErdosRenyi(n, p, true, rng)
	f := graph.SpanningForest(g)
	return g, f, ancestry.Build(f)
}

// faultFromEdge converts a tree edge to a Fault via Normalize.
func faultFromEdge(t *testing.T, g *graph.Graph, l *ancestry.Labeling, e int) Fault {
	t.Helper()
	edge := g.Edges[e]
	ft, err := Normalize(l.Of(edge.U), l.Of(edge.V))
	if err != nil {
		t.Fatalf("Normalize edge %d: %v", e, err)
	}
	return ft
}

// refFragment computes the ground-truth fragment id of each vertex: the
// component of the tree after removing the fault edges, re-indexed to match
// the Set convention (0 = root's fragment; i+1 = fragment under fault i).
func refFragments(g *graph.Graph, f *graph.Forest, l *ancestry.Labeling, s *Set, faultEdges []int) []int {
	faults := map[int]bool{}
	for e := range g.Edges {
		if !f.IsTreeEdge[e] {
			faults[e] = true
		}
	}
	for _, e := range faultEdges {
		faults[e] = true
	}
	comp, _ := graph.Components(g, faults)
	// Map each tree component to the Set fragment id via its shallowest
	// vertex: the root fragment contains the tree root; fragment i+1
	// contains fault i's child endpoint.
	fragOfComp := map[int]int{}
	root := f.Roots[0]
	fragOfComp[comp[root]] = 0
	for i, ft := range s.Faults {
		v := l.ByPre[ft.Child.Pre]
		fragOfComp[comp[v]] = i + 1
	}
	out := make([]int, g.N())
	for v := range out {
		out[v] = fragOfComp[comp[v]]
	}
	return out
}

func TestStabMatchesGroundTruth(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		g, f, l := setup(int64(trial), 40+trial, 0.1)
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		faultEdges := workload.TreeEdgeFaults(g, f, 1+rng.Intn(5), rng)
		var treeFaults []int
		for _, e := range faultEdges {
			if f.IsTreeEdge[e] {
				treeFaults = append(treeFaults, e)
			}
		}
		if len(treeFaults) == 0 {
			continue
		}
		var faults []Fault
		for _, e := range treeFaults {
			faults = append(faults, faultFromEdge(t, g, l, e))
		}
		s, err := Build(faults)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if s.Count() != len(treeFaults)+1 {
			t.Fatalf("Count = %d, want %d", s.Count(), len(treeFaults)+1)
		}
		ref := refFragments(g, f, l, s, treeFaults)
		for v := 0; v < g.N(); v++ {
			if got := s.StabLabel(l.Of(v)); got != ref[v] {
				t.Fatalf("trial %d: Stab(%d) = %d, want %d", trial, v, got, ref[v])
			}
		}
	}
}

func TestBoundarySizes(t *testing.T) {
	// Path 0-1-2-3-4 rooted at 0; faults (1,2) and (3,4): fragments
	// {0,1}, {2,3}, {4}. Boundary of middle fragment = both faults.
	g := graph.New(5)
	var eids []int
	for i := 0; i < 4; i++ {
		id, err := g.AddEdge(i, i+1)
		if err != nil {
			t.Fatal(err)
		}
		eids = append(eids, id)
	}
	f := graph.SpanningForest(g)
	l := ancestry.Build(f)
	faults := []Fault{
		faultFromEdge(t, g, l, eids[1]),
		faultFromEdge(t, g, l, eids[3]),
	}
	s, err := Build(faults)
	if err != nil {
		t.Fatal(err)
	}
	// Fragment of vertex 2 should have both faults on its boundary.
	frag2 := s.StabLabel(l.Of(2))
	if len(s.Boundary[frag2]) != 2 {
		t.Fatalf("middle fragment boundary = %v, want 2 faults", s.Boundary[frag2])
	}
	frag0 := s.StabLabel(l.Of(0))
	if frag0 != 0 || len(s.Boundary[0]) != 1 {
		t.Fatalf("root fragment = %d boundary = %v", frag0, s.Boundary[0])
	}
	frag4 := s.StabLabel(l.Of(4))
	if len(s.Boundary[frag4]) != 1 {
		t.Fatalf("leaf fragment boundary = %v", s.Boundary[frag4])
	}
	// Total boundary incidences = 2|F|.
	total := 0
	for _, b := range s.Boundary {
		total += len(b)
	}
	if total != 4 {
		t.Fatalf("total boundary incidences = %d, want 4", total)
	}
}

func TestNormalizeRejectsNonTreePairs(t *testing.T) {
	g, _, l := setup(99, 30, 0.3)
	// Find two vertices with no ancestor relation.
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if ancestry.Compare(l.Of(u), l.Of(v)) == 0 {
				if _, err := Normalize(l.Of(u), l.Of(v)); err == nil {
					t.Fatalf("Normalize accepted unrelated pair %d,%d", u, v)
				}
				return
			}
		}
	}
	t.Skip("no unrelated pair found")
}

func TestNormalizeOrients(t *testing.T) {
	g := graph.New(3)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	f := graph.SpanningForest(g)
	l := ancestry.Build(f)
	ft1, err := Normalize(l.Of(0), l.Of(1))
	if err != nil {
		t.Fatal(err)
	}
	ft2, err := Normalize(l.Of(1), l.Of(0))
	if err != nil {
		t.Fatal(err)
	}
	if ft1 != ft2 {
		t.Fatal("Normalize must be orientation independent")
	}
	if ft1.Parent.Pre > ft1.Child.Pre {
		t.Fatal("parent must have the smaller preorder on a root path")
	}
}

func TestBuildDedupes(t *testing.T) {
	g := graph.New(3)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	f := graph.SpanningForest(g)
	l := ancestry.Build(f)
	ft, err := Normalize(l.Of(0), l.Of(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build([]Fault{ft, ft, ft})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d after dedupe, want 2", s.Count())
	}
}

func TestBuildRejectsMixedComponents(t *testing.T) {
	g := graph.New(4)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	f := graph.SpanningForest(g)
	l := ancestry.Build(f)
	bad := Fault{Parent: l.Of(0), Child: l.Of(3)}
	if _, err := Build([]Fault{bad}); err == nil {
		t.Fatal("Build accepted a cross-component fault")
	}
}
