// Package fragments implements the fragment structure induced by tree-edge
// faults (paper §3.1, §7.2): removing |F| tree edges splits the spanning
// tree into |F|+1 fragments, each identified by a preorder interval. The
// decoder reconstructs this structure purely from the ancestry labels
// embedded in fault-edge labels (Proposition 3) — it never sees the graph.
//
// Fragment 0 is always the root fragment (the component root's residue);
// fragment i ≥ 1 is the subtree of fault i's child endpoint minus the
// subtrees of faults nested inside it.
package fragments

import (
	"fmt"
	"sort"

	"repro/internal/ancestry"
)

// Fault is one faulty tree edge, described by the ancestry labels of its two
// endpoints: Parent is the endpoint closer to the root, Child the farther
// one (the subtree side).
type Fault struct {
	Parent, Child ancestry.Label
}

// Set is the fragment decomposition induced by a fault set within a single
// tree. It is built once per query.
type Set struct {
	// Faults, sorted by Child.Pre. Fault j's fragment index is j+1.
	Faults []Fault
	// ParentFrag[i] is the fragment that fragment i+1's fault edge leaves
	// into (the fragment containing the fault's parent endpoint).
	ParentFrag []int
	// Boundary[c] lists the fault indices (into Faults) on fragment c's
	// tree boundary ∂T: for c ≥ 1, fault c-1 itself plus directly nested
	// faults; for c = 0, the top-level faults.
	Boundary [][]int
}

// Normalize orients a fault edge so that Parent is the ancestor: labels
// arrive from edge labels that already store (parent, child), but queries
// may hand them over in either order. Returns an error when the two labels
// are not in ancestor relation (not a tree edge of this forest) or belong to
// different components.
func Normalize(a, b ancestry.Label) (Fault, error) {
	switch ancestry.Compare(a, b) {
	case 1:
		return Fault{Parent: a, Child: b}, nil
	case -1:
		return Fault{Parent: b, Child: a}, nil
	default:
		return Fault{}, fmt.Errorf("fragments: labels (pre %d, pre %d) are not an ancestor pair", a.Pre, b.Pre)
	}
}

// Build constructs the fragment decomposition for the given faults, which
// must all belong to one component (same Root). Duplicates (same child
// preorder) are collapsed. Runs in O(|F|²) worst case — |F| ≤ f is small by
// assumption, and the quadratic corner only arises for deeply nested faults.
func Build(faults []Fault) (*Set, error) {
	// Dedupe by child preorder: a tree edge is determined by its child.
	dedup := map[uint32]Fault{}
	for _, ft := range faults {
		if !ft.Child.Valid() || !ft.Parent.Valid() {
			return nil, fmt.Errorf("fragments: invalid fault label")
		}
		if ft.Child.Root != ft.Parent.Root {
			return nil, fmt.Errorf("fragments: fault endpoints in different components")
		}
		dedup[ft.Child.Pre] = ft
	}
	s := &Set{}
	for _, ft := range dedup {
		s.Faults = append(s.Faults, ft)
	}
	sort.Slice(s.Faults, func(i, j int) bool { return s.Faults[i].Child.Pre < s.Faults[j].Child.Pre })
	q := len(s.Faults)
	s.ParentFrag = make([]int, q)
	s.Boundary = make([][]int, q+1)
	for i, ft := range s.Faults {
		// The fragment the fault leaves into is the fragment containing
		// the parent endpoint: the deepest *other* fault interval
		// containing Parent.Pre.
		pf := s.stabExcluding(ft.Parent.Pre, i)
		s.ParentFrag[i] = pf
		s.Boundary[pf] = append(s.Boundary[pf], i)
		s.Boundary[i+1] = append(s.Boundary[i+1], i)
	}
	return s, nil
}

// Count returns the number of fragments (|F| + 1).
func (s *Set) Count() int { return len(s.Faults) + 1 }

// Stab returns the fragment index containing the vertex with preorder p
// (Proposition 3). Linear in |F|, which is at most f.
func (s *Set) Stab(p uint32) int { return s.stabExcluding(p, -1) }

// StabLabel returns the fragment containing the vertex with the given
// ancestry label.
func (s *Set) StabLabel(l ancestry.Label) int { return s.Stab(l.Pre) }

func (s *Set) stabExcluding(p uint32, exclude int) int {
	best := -1
	var bestPre uint32
	for i, ft := range s.Faults {
		if i == exclude {
			continue
		}
		if ft.Child.Contains(p) && (best == -1 || ft.Child.Pre > bestPre) {
			best = i
			bestPre = ft.Child.Pre
		}
	}
	return best + 1 // fragment index; 0 when no fault interval contains p
}

// CrossesFragments reports whether the (non-tree) edge with endpoint labels
// a, b leaves the fragment containing a — i.e., whether its endpoints lie in
// different fragments.
func (s *Set) CrossesFragments(a, b ancestry.Label) bool {
	return s.Stab(a.Pre) != s.Stab(b.Pre)
}
