// Package congest implements a synchronous CONGEST-model simulator and the
// distributed construction of the paper's labels (§8, Theorem 3).
//
// The model: computation proceeds in lock-step rounds; in each round every
// vertex may send one message of at most B = O(log n) bits along each
// incident edge direction. The simulator enforces both constraints —
// oversized messages and double sends are hard errors — and counts rounds,
// so the Õ(√m·D + f²) claim is checked against *measured* rounds.
//
// Packet-level phases implemented on the simulator: distributed BFS tree,
// subtree-size convergecast, top-down ancestry-label assignment, and the
// pipelined subtree-XOR aggregation that turns per-vertex outdetect sketches
// into tree-edge labels (the D + f²·polylog term). The recursive NetFind
// phase uses a communication-accurate emulation: the recursion tree and all
// point selections run the exact centralized code while rounds are charged
// per §8 — pipelined convergecast/broadcast within each call's Euler
// segment, with same-level calls composed by max because their segments are
// edge-disjoint. See DESIGN.md §3.5.
package congest

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// ErrModel is returned when an algorithm violates the CONGEST constraints —
// always a bug in the algorithm, never expected at runtime.
var ErrModel = errors.New("congest: model violation")

// Message is one CONGEST message: an opcode plus small integer arguments.
// Its bit size is accounted explicitly.
type Message struct {
	Op   uint8
	Args []uint32
}

// Bits returns the accounted size of m: 8 bits of opcode plus ⌈log₂(n+2)⌉
// bits per argument (arguments are vertex ids, preorders, or counts, all
// polynomially bounded — the standard CONGEST accounting).
func (m Message) Bits(argBits int) int { return 8 + len(m.Args)*argBits }

// incoming pairs a delivered message with the arrival port.
type incoming struct {
	Port int
	Msg  Message
}

// Net is a synchronous message-passing network over a graph.
type Net struct {
	G *graph.Graph
	// BudgetBits is B, the per-edge-direction per-round message budget.
	BudgetBits int
	// ArgBits is the accounted size of one message argument.
	ArgBits int

	round   int
	staged  map[[2]int]Message // (vertex, port) → message staged this round
	inboxes [][]incoming
	// MaxObservedBits tracks the largest message actually sent.
	MaxObservedBits int
	// Messages counts total messages delivered.
	Messages int
}

// NewNet creates a network over g with the standard B = c·⌈log₂ n⌉ budget.
func NewNet(g *graph.Graph) *Net {
	argBits := 1
	for v := g.N() + 2; v > 1; v /= 2 {
		argBits++
	}
	return &Net{
		G:          g,
		ArgBits:    argBits,
		BudgetBits: 8 + 4*argBits, // opcode + up to four log-size arguments
		staged:     map[[2]int]Message{},
		inboxes:    make([][]incoming, g.N()),
	}
}

// Round returns the number of completed rounds.
func (n *Net) Round() int { return n.round }

// AddRounds charges extra rounds computed by a communication-accurate
// emulation phase (the distributed NetFind accounting).
func (n *Net) AddRounds(r int) {
	if r > 0 {
		n.round += r
	}
}

// Send stages a message from v along the given port (index into g.Adj(v))
// for delivery at the end of the current round. Every argument value must
// fit in ArgBits bits — larger quantities must be split across arguments or
// rounds, which is exactly the discipline the CONGEST model imposes.
func (n *Net) Send(v, port int, m Message) error {
	if port < 0 || port >= len(n.G.Adj(v)) {
		return fmt.Errorf("%w: vertex %d has no port %d", ErrModel, v, port)
	}
	key := [2]int{v, port}
	if _, dup := n.staged[key]; dup {
		return fmt.Errorf("%w: vertex %d sent twice on port %d in round %d", ErrModel, v, port, n.round)
	}
	for _, a := range m.Args {
		if bits.Len32(a) > n.ArgBits {
			return fmt.Errorf("%w: argument %d needs %d bits, budget is %d per argument",
				ErrModel, a, bits.Len32(a), n.ArgBits)
		}
	}
	if b := m.Bits(n.ArgBits); b > n.BudgetBits {
		return fmt.Errorf("%w: message of %d bits exceeds budget %d", ErrModel, b, n.BudgetBits)
	} else if b > n.MaxObservedBits {
		n.MaxObservedBits = b
	}
	n.staged[key] = m
	return nil
}

// Step delivers all staged messages (in deterministic sender order) and
// advances the round counter.
func (n *Net) Step() {
	for v := range n.inboxes {
		n.inboxes[v] = n.inboxes[v][:0]
	}
	keys := make([][2]int, 0, len(n.staged))
	for key := range n.staged {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		m := n.staged[key]
		v, port := key[0], key[1]
		half := n.G.Adj(v)[port]
		// Find the reverse port at the receiver.
		rp := -1
		for i, h := range n.G.Adj(half.To) {
			if h.Edge == half.Edge {
				rp = i
				break
			}
		}
		n.inboxes[half.To] = append(n.inboxes[half.To], incoming{Port: rp, Msg: m})
		n.Messages++
	}
	n.staged = map[[2]int]Message{}
	n.round++
}

// Recv returns the messages delivered to v in the last Step.
func (n *Net) Recv(v int) []incoming { return n.inboxes[v] }
