package congest

import (
	"fmt"
	"sort"
)

// Opcodes for the construction phases.
const (
	opJoin  uint8 = iota + 1 // BFS: "I adopt you as parent"
	opSize                   // convergecast: subtree size
	opOrder                  // top-down: preorder/postorder range assignment
	opChunk                  // pipelined vector aggregation: one chunk
	opDone                   // pipelined aggregation: stream end
)

// BFSResult is the distributed BFS tree.
type BFSResult struct {
	Parent     []int // parent vertex, -1 for root/unreached
	ParentPort []int
	Depth      []int
	Children   [][]int
	Rounds     int
}

// BFS builds a BFS tree from root by synchronous flooding: each newly
// reached vertex announces itself to all neighbors in the next round;
// already-claimed vertices ignore late announcements. Terminates after a
// silent round; rounds ≈ eccentricity(root) + 1.
func BFS(n *Net, root int) (*BFSResult, error) {
	g := n.G
	res := &BFSResult{
		Parent:     make([]int, g.N()),
		ParentPort: make([]int, g.N()),
		Depth:      make([]int, g.N()),
		Children:   make([][]int, g.N()),
	}
	for v := range res.Parent {
		res.Parent[v] = -1
		res.ParentPort[v] = -1
		res.Depth[v] = -1
	}
	res.Depth[root] = 0
	start := n.Round()
	frontier := []int{root}
	for len(frontier) > 0 {
		for _, v := range frontier {
			for port := range g.Adj(v) {
				if err := n.Send(v, port, Message{Op: opJoin, Args: []uint32{uint32(v)}}); err != nil {
					return nil, err
				}
			}
		}
		n.Step()
		var next []int
		for v := 0; v < g.N(); v++ {
			if res.Depth[v] != -1 {
				continue
			}
			for _, in := range n.Recv(v) {
				if in.Msg.Op != opJoin {
					continue
				}
				parent := int(in.Msg.Args[0])
				res.Parent[v] = parent
				res.ParentPort[v] = in.Port
				res.Depth[v] = res.Depth[parent] + 1
				next = append(next, v)
				break // first claim wins; port order is deterministic
			}
		}
		// Children lists in deterministic order of child id.
		sort.Ints(next)
		for _, v := range next {
			res.Children[res.Parent[v]] = append(res.Children[res.Parent[v]], v)
		}
		frontier = next
	}
	res.Rounds = n.Round() - start
	return res, nil
}

// SubtreeSizes runs the convergecast of §8: leaves report size 1; an inner
// vertex reports once all children have, so the phase finishes in
// depth+1 rounds.
func SubtreeSizes(n *Net, tree *BFSResult) ([]int, error) {
	g := n.G
	size := make([]int, g.N())
	pending := make([]int, g.N()) // children yet to report
	for v := 0; v < g.N(); v++ {
		size[v] = 1
		pending[v] = len(tree.Children[v])
	}
	reported := make([]bool, g.N())
	for {
		sent := false
		for v := 0; v < g.N(); v++ {
			if reported[v] || pending[v] > 0 || tree.Parent[v] == -1 {
				continue
			}
			if err := n.Send(v, tree.ParentPort[v], Message{Op: opSize, Args: []uint32{uint32(size[v])}}); err != nil {
				return nil, err
			}
			reported[v] = true
			sent = true
		}
		if !sent {
			break
		}
		n.Step()
		for v := 0; v < g.N(); v++ {
			for _, in := range n.Recv(v) {
				if in.Msg.Op != opSize {
					continue
				}
				size[v] += int(in.Msg.Args[0])
				pending[v]--
			}
		}
	}
	return size, nil
}

// AncestryOrders assigns DFS preorder/postorder-style intervals top-down
// exactly as §8 describes: once a vertex knows its own range it hands each
// child a consecutive sub-range sized by the child's subtree. Every vertex
// also learns its component root's preorder. Rounds ≈ depth.
//
// The returned intervals are [pre, post] with post = pre + subtreeSize − 1,
// matching the centralized internal/ancestry convention.
func AncestryOrders(n *Net, tree *BFSResult, size []int, root int) (pre, post []uint32, err error) {
	g := n.G
	pre = make([]uint32, g.N())
	post = make([]uint32, g.N())
	assigned := make([]bool, g.N())
	pre[root] = 1
	post[root] = uint32(size[root])
	assigned[root] = true
	frontier := []int{root}
	for len(frontier) > 0 {
		for _, v := range frontier {
			// Hand out child ranges in Children order.
			next := pre[v] + 1
			for _, c := range tree.Children[v] {
				if err := n.Send(v, portTo(n, v, c), Message{
					Op:   opOrder,
					Args: []uint32{next, next + uint32(size[c]) - 1},
				}); err != nil {
					return nil, nil, err
				}
				next += uint32(size[c])
			}
		}
		n.Step()
		var next []int
		for v := 0; v < g.N(); v++ {
			if assigned[v] {
				continue
			}
			for _, in := range n.Recv(v) {
				if in.Msg.Op != opOrder {
					continue
				}
				pre[v] = in.Msg.Args[0]
				post[v] = in.Msg.Args[1]
				assigned[v] = true
				next = append(next, v)
			}
		}
		sort.Ints(next)
		frontier = next
	}
	return pre, post, nil
}

// portTo returns v's port toward neighbor u.
func portTo(n *Net, v, u int) int {
	for port, h := range n.G.Adj(v) {
		if h.To == u {
			return port
		}
	}
	return -1
}

// PipelinedSubtreeXOR aggregates a W-piece vector per vertex into subtree
// XOR sums, streaming one piece per edge per round (the standard pipeline):
// vertex v's stream to its parent is the piece-wise XOR of its own vector
// and its children's streams. A vertex starts forwarding piece i once every
// child's piece i has arrived, so the phase completes in ≈ depth + W rounds
// — the D + f²·polylog(n) term of Theorem 3 when W = Θ(f²·polylog n / log n).
//
// Each vector element is one message argument and must fit in n.ArgBits
// bits (use SplitWords to chop wider payloads); the piece index is split
// across two arguments, so vectors up to (n+2)² pieces long are supported.
// vec is modified in place to hold the subtree XOR sums.
func PipelinedSubtreeXOR(n *Net, tree *BFSResult, vec [][]uint32) error {
	g := n.G
	if len(vec) != g.N() {
		return fmt.Errorf("%w: vector count %d != n %d", ErrModel, len(vec), g.N())
	}
	w := 0
	for _, v := range vec {
		if len(v) > w {
			w = len(v)
		}
	}
	if w >= 1<<uint(2*n.ArgBits) {
		return fmt.Errorf("%w: vector of %d pieces exceeds the index budget", ErrModel, w)
	}
	for i := range vec {
		for len(vec[i]) < w {
			vec[i] = append(vec[i], 0)
		}
	}
	// sent[v] = chunks already forwarded to the parent; chunk i may go up
	// once every child's chunk i has arrived (vacuously true for leaves).
	sent := make([]int, g.N())
	childDone := make([][]int, g.N()) // per-vertex, chunks received per child port
	for v := 0; v < g.N(); v++ {
		childDone[v] = make([]int, len(g.Adj(v)))
	}
	minChildChunks := func(v int) int {
		m := w
		for _, c := range tree.Children[v] {
			p := portTo(n, v, c)
			if childDone[v][p] < m {
				m = childDone[v][p]
			}
		}
		return m
	}
	for {
		progress := false
		for v := 0; v < g.N(); v++ {
			if tree.Parent[v] == -1 || sent[v] >= w {
				continue
			}
			avail := minChildChunks(v)
			if sent[v] < avail {
				piece := vec[v][sent[v]]
				idxHi := uint32(sent[v]) >> uint(n.ArgBits)
				idxLo := uint32(sent[v]) & (1<<uint(n.ArgBits) - 1)
				if err := n.Send(v, tree.ParentPort[v], Message{Op: opChunk, Args: []uint32{idxHi, idxLo, piece}}); err != nil {
					return err
				}
				sent[v]++
				progress = true
			}
		}
		if !progress {
			break
		}
		n.Step()
		for v := 0; v < g.N(); v++ {
			for _, in := range n.Recv(v) {
				if in.Msg.Op != opChunk {
					continue
				}
				idx := int(in.Msg.Args[0])<<uint(n.ArgBits) | int(in.Msg.Args[1])
				vec[v][idx] ^= in.Msg.Args[2]
				childDone[v][in.Port]++
				progress = true
			}
		}
	}
	return nil
}

// SplitWords chops 64-bit payload words into pieces of at most pieceBits
// bits each (little-endian), the form PipelinedSubtreeXOR transports.
func SplitWords(words []uint64, pieceBits int) []uint32 {
	if pieceBits < 1 {
		pieceBits = 1
	}
	if pieceBits > 31 {
		pieceBits = 31
	}
	per := (64 + pieceBits - 1) / pieceBits
	out := make([]uint32, 0, per*len(words))
	mask := uint64(1)<<uint(pieceBits) - 1
	for _, w := range words {
		for i := 0; i < per; i++ {
			out = append(out, uint32(w>>(uint(i*pieceBits))&mask))
		}
	}
	return out
}

// JoinWords inverts SplitWords.
func JoinWords(pieces []uint32, pieceBits, wordCount int) []uint64 {
	if pieceBits < 1 {
		pieceBits = 1
	}
	if pieceBits > 31 {
		pieceBits = 31
	}
	per := (64 + pieceBits - 1) / pieceBits
	out := make([]uint64, wordCount)
	for w := 0; w < wordCount; w++ {
		for i := 0; i < per; i++ {
			idx := w*per + i
			if idx < len(pieces) {
				out[w] |= uint64(pieces[idx]) << uint(i*pieceBits)
			}
		}
	}
	return out
}
