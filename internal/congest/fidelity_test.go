package congest

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rs"
	"repro/internal/workload"
)

// TestDistributedSketchMatchesCentralizedLabels is the §8 fidelity check:
// aggregate the real per-vertex Reed–Solomon sketches of the auxiliary graph
// through the CONGEST pipeline (32-bit chunks, one per edge per round) and
// compare the resulting tree-edge sums against the centralized scheme's
// edge labels, word for word.
//
// The network simulated is the auxiliary graph G′ itself (its vertices
// include the subdivision vertices; the original nodes simulate them, as the
// paper notes in §8).
func TestDistributedSketchMatchesCentralizedLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := workload.ErdosRenyi(40, 0.12, true, rng)
	const f = 2
	s, err := core.Build(g, core.Params{MaxFaults: f})
	if err != nil {
		t.Fatal(err)
	}
	view := core.NewAuxView(g)
	words := s.Spec().Words()

	// Build G′ as a concrete graph: original edges that are tree edges,
	// plus subdivision tree halves and non-tree halves.
	nPrime := len(view.TPrime.Parent)
	gp := graph.New(nPrime)
	for e, edge := range g.Edges {
		if view.Forest.IsTreeEdge[e] {
			if _, err := gp.AddEdge(edge.U, edge.V); err != nil {
				t.Fatal(err)
			}
		}
	}
	for slot := range view.NonTree {
		x := view.XVertex[slot]
		if _, err := gp.AddEdge(view.TPrime.Parent[x], x); err != nil {
			t.Fatal(err)
		}
		if _, err := gp.AddEdge(x, view.FarEnd[slot]); err != nil {
			t.Fatal(err)
		}
	}

	// Per-vertex payload: the per-level Reed–Solomon sketches exactly as
	// the centralized construction computes them, re-derived here from the
	// scheme's own hierarchy and edge IDs, then split into B-bit pieces
	// for transport.
	net := NewNet(gp)
	raw := make([][]uint64, nPrime)
	for v := range raw {
		raw[v] = make([]uint64, words)
	}
	k := s.Spec().K
	for lvl, level := range s.Hierarchy.Levels {
		for _, e := range level {
			slot := slotOf(view.NonTree, e)
			x, far := view.XVertex[slot], view.FarEnd[slot]
			id := packID(view.Anc.Of(x).Pre, view.Anc.Of(far).Pre)
			addPowersAt(raw[x], id, lvl, k)
			addPowersAt(raw[far], id, lvl, k)
		}
	}
	vecs := make([][]uint32, nPrime)
	for v := range vecs {
		vecs[v] = SplitWords(raw[v], net.ArgBits)
	}

	// The paper fixes the spanning tree first and aggregates over it, so
	// the pipeline runs over T′ itself (not a fresh BFS tree of G′, whose
	// tie-breaking could differ).
	tree := treeFromForest(gp, view)
	if err := PipelinedSubtreeXOR(net, tree, vecs); err != nil {
		t.Fatal(err)
	}

	for e := 0; e < g.M(); e++ {
		el := s.EdgeLabel(e)
		child := view.Anc.ByPre[el.Child.Pre]
		got := JoinWords(vecs[child], net.ArgBits, words)
		for w := 0; w < words; w++ {
			if got[w] != el.Out[w] {
				t.Fatalf("edge %d word %d: distributed %#x vs centralized %#x", e, w, got[w], el.Out[w])
			}
		}
	}
	t.Logf("distributed sums matched centralized labels on all %d edges", g.M())
}

// treeFromForest adapts the centralized T′ into the BFSResult shape the
// pipeline consumes, with ports resolved against the concrete G′ graph.
func treeFromForest(gp *graph.Graph, view *core.AuxView) *BFSResult {
	n := len(view.TPrime.Parent)
	res := &BFSResult{
		Parent:     append([]int(nil), view.TPrime.Parent...),
		ParentPort: make([]int, n),
		Depth:      make([]int, n),
		Children:   view.TPrime.Children,
	}
	for v := 0; v < n; v++ {
		res.ParentPort[v] = -1
		res.Depth[v] = -1
	}
	// Depths and parent ports by walking preorder (parents first).
	for p := 1; p <= n; p++ {
		v := view.Anc.ByPre[uint32(p)]
		par := res.Parent[v]
		if par == -1 {
			res.Depth[v] = 0
			continue
		}
		res.Depth[v] = res.Depth[par] + 1
		for port, h := range gp.Adj(v) {
			if h.To == par {
				res.ParentPort[v] = port
				break
			}
		}
	}
	return res
}

func slotOf(nonTree []int, e int) int {
	for i, x := range nonTree {
		if x == e {
			return i
		}
	}
	return -1
}

func packID(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// addPowersAt folds the 2k power sums of id into the level-lvl slice of the
// word vector.
func addPowersAt(words []uint64, id uint64, lvl, k int) {
	rs.Sketch(words[lvl*2*k : (lvl+1)*2*k]).AddEdge(id)
}
