package congest

import (
	"math/rand"
	"testing"

	"repro/internal/ancestry"
	"repro/internal/epsnet"
	"repro/internal/euler"
	"repro/internal/graph"
	"repro/internal/workload"
)

func TestBFSMatchesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := workload.ErdosRenyi(30+trial*5, 0.1, true, rng)
		n := NewNet(g)
		tree, err := BFS(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.HopDistancesUnder(g, nil, 0)
		for v := 0; v < g.N(); v++ {
			if tree.Depth[v] != want[v] {
				t.Fatalf("depth[%d] = %d, want %d", v, tree.Depth[v], want[v])
			}
		}
		// BFS rounds ≈ eccentricity + 1 wave rounds.
		ecc := 0
		for _, d := range want {
			if d > ecc {
				ecc = d
			}
		}
		if tree.Rounds < ecc || tree.Rounds > ecc+3 {
			t.Fatalf("BFS rounds = %d, eccentricity = %d", tree.Rounds, ecc)
		}
	}
}

func TestSubtreeSizes(t *testing.T) {
	g := workload.Grid(5, 4)
	n := NewNet(g)
	tree, err := BFS(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := SubtreeSizes(n, tree)
	if err != nil {
		t.Fatal(err)
	}
	if sizes[0] != g.N() {
		t.Fatalf("root subtree size = %d, want %d", sizes[0], g.N())
	}
	// Every vertex: size = 1 + sum over children.
	for v := 0; v < g.N(); v++ {
		sum := 1
		for _, c := range tree.Children[v] {
			sum += sizes[c]
		}
		if sizes[v] != sum {
			t.Fatalf("size[%d] = %d, want %d", v, sizes[v], sum)
		}
	}
}

func TestAncestryOrdersMatchCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := workload.ErdosRenyi(40, 0.12, true, rng)
	n := NewNet(g)
	tree, err := BFS(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := SubtreeSizes(n, tree)
	if err != nil {
		t.Fatal(err)
	}
	pre, post, err := AncestryOrders(n, tree, sizes, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Build the centralized labeling over the SAME tree and compare.
	forest := toForest(n, tree, 0)
	want := ancestry.Build(forest)
	for v := 0; v < g.N(); v++ {
		wl := want.Of(v)
		if pre[v] != wl.Pre || post[v] != wl.Post {
			t.Fatalf("vertex %d: distributed (%d,%d) vs centralized (%d,%d)",
				v, pre[v], post[v], wl.Pre, wl.Post)
		}
	}
}

func TestPipelinedSubtreeXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.ErdosRenyi(35, 0.12, true, rng)
	n := NewNet(g)
	tree, err := BFS(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	const w = 12
	mask := uint32(1)<<uint(n.ArgBits) - 1
	vec := make([][]uint32, g.N())
	orig := make([][]uint32, g.N())
	for v := range vec {
		vec[v] = make([]uint32, w)
		orig[v] = make([]uint32, w)
		for i := range vec[v] {
			x := rng.Uint32() & mask
			vec[v][i] = x
			orig[v][i] = x
		}
	}
	start := n.Round()
	if err := PipelinedSubtreeXOR(n, tree, vec); err != nil {
		t.Fatal(err)
	}
	rounds := n.Round() - start
	// Ground truth: subtree XOR per vertex.
	want := make([][]uint32, g.N())
	var fill func(v int) []uint32
	fill = func(v int) []uint32 {
		acc := append([]uint32(nil), orig[v]...)
		for _, c := range tree.Children[v] {
			sub := fill(c)
			for i := range acc {
				acc[i] ^= sub[i]
			}
		}
		want[v] = acc
		return acc
	}
	fill(0)
	for v := 0; v < g.N(); v++ {
		for i := 0; i < w; i++ {
			if vec[v][i] != want[v][i] {
				t.Fatalf("subtree xor mismatch at vertex %d chunk %d", v, i)
			}
		}
	}
	// Pipelining bound: depth + w + slack.
	depth := 0
	for _, d := range tree.Depth {
		if d > depth {
			depth = d
		}
	}
	if rounds > depth+w+4 {
		t.Fatalf("pipelined aggregation took %d rounds, want ≤ depth(%d)+w(%d)+4", rounds, depth, w)
	}
}

func TestMessageBudgetEnforced(t *testing.T) {
	g := workload.Cycle(4)
	n := NewNet(g)
	big := Message{Op: 1, Args: make([]uint32, 100)}
	if err := n.Send(0, 0, big); err == nil {
		t.Fatal("oversized message accepted")
	}
	ok := Message{Op: 1, Args: []uint32{1}}
	if err := n.Send(0, 0, ok); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(0, 0, ok); err == nil {
		t.Fatal("double send on one port accepted")
	}
	if err := n.Send(0, 5, ok); err == nil {
		t.Fatal("bad port accepted")
	}
}

// TestNetFindRoundsMatchesCentralizedSelection keeps the emulated
// distributed NetFind selection in lock-step with epsnet.NetFind.
func TestNetFindRoundsMatchesCentralizedSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := workload.ErdosRenyi(120, 0.15, true, rng)
	f := graph.SpanningForest(g)
	tour := euler.Build(f)
	pts := euler.EmbedNonTree(g, f, tour)
	want := epsnet.NetFind(len(pts), pts)
	got, rounds := NetFindRounds(pts, 10)
	if len(got) != len(want) {
		t.Fatalf("selection size %d vs centralized %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("selection differs at %d", i)
		}
	}
	if rounds <= 0 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestBuildLabelsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := workload.ErdosRenyi(60, 0.1, true, rng)
	n := NewNet(g)
	rep, tree, pre, post, err := BuildLabels(n, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRounds <= 0 || rep.MaxMessageBits > n.BudgetBits {
		t.Fatalf("report: %+v", rep)
	}
	// Phases all contributed.
	if rep.BFSRounds <= 0 || rep.SizeRounds <= 0 || rep.AncestryRounds <= 0 || rep.SketchRounds <= 0 {
		t.Fatalf("missing phase rounds: %+v", rep)
	}
	// Ancestry sanity: preorders are a permutation of 1..n.
	seen := map[uint32]bool{}
	for v := 0; v < g.N(); v++ {
		if pre[v] < 1 || pre[v] > uint32(g.N()) || seen[pre[v]] {
			t.Fatalf("bad preorder %d at %d", pre[v], v)
		}
		seen[pre[v]] = true
		if post[v] < pre[v] {
			t.Fatalf("post < pre at %d", v)
		}
	}
	_ = tree
}

// TestRoundScaling sanity-checks the Theorem 3 shape: grids (large D) are
// dominated by the D-dependent phases, with total rounds well below m.
func TestRoundScaling(t *testing.T) {
	g := workload.Grid(12, 12)
	n := NewNet(g)
	rep, _, _, _, err := BuildLabels(n, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Depth < 11 {
		t.Fatalf("grid depth = %d", rep.Depth)
	}
	if rep.TotalRounds < rep.Depth {
		t.Fatalf("total rounds %d below depth %d", rep.TotalRounds, rep.Depth)
	}
}
