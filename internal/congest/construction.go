package congest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/euler"
	"repro/internal/graph"
)

// NetFindRounds computes the CONGEST round cost of the distributed NetFind
// of §8 by communication-accurate emulation: the recursion and point
// selection run the exact centralized algorithm while rounds are charged per
// the paper's in-network implementation. One call costs O(D + ε⁻¹) rounds —
// computing the y-orders of its points like the ancestry labels (O(D)) and
// then resolving p±ᵢ by information exchange inside each chunk's Euler
// segment (O(D + ε⁻¹) with ε⁻¹ = Θ(log N)). Calls at the same recursion
// level own edge-disjoint segments: deep levels (every call of size ≤ √m)
// run in parallel and cost the level maximum; shallow levels (at most O(√m)
// calls in total) are processed sequentially, which is where the Õ(√m·D)
// term comes from.
//
// diameter is the BFS-tree depth bound D used for the per-call cost.
func NetFindRounds(pts []euler.Point, diameter int) (net []euler.Point, rounds int) {
	if len(pts) == 0 {
		return nil, 0
	}
	work := append([]euler.Point(nil), pts...)
	sort.Slice(work, func(i, j int) bool {
		if work[i].X != work[j].X {
			return work[i].X < work[j].X
		}
		if work[i].Y != work[j].Y {
			return work[i].Y < work[j].Y
		}
		return work[i].Edge < work[j].Edge
	})
	logN := math.Log2(float64(maxInt(len(pts), 2)))
	sqrtM := int(math.Sqrt(float64(len(pts)))) + 1
	chunk := int(math.Ceil(4 * logN)) // ε⁻¹·2 with ε = 1/(2·log N)
	callCost := 2*(diameter+1) + chunk

	// Walk the recursion level by level; at each level collect call sizes.
	type call struct{ lo, hi int } // half-open range into work
	level := []call{{0, len(work)}}
	selected := map[int]euler.Point{}
	for len(level) > 0 {
		active := 0
		var next []call
		parallel := true
		for _, c := range level {
			sz := c.hi - c.lo
			if float64(sz) < 12*logN {
				continue
			}
			active++
			if sz > sqrtM {
				parallel = false
			}
			// Exact selection (Lemma 11 net for the bisecting line).
			mid := c.lo + sz/2
			crossNetSelect(work[c.lo:c.hi], work[mid].X, chunk, selected)
			next = append(next, call{c.lo, mid}, call{mid, c.hi})
		}
		if active == 0 {
			break
		}
		// Deep levels (all calls of size ≤ √m): the segments are
		// edge-disjoint, so the level costs one call. Shallow levels run
		// their calls sequentially per §8.
		if parallel {
			rounds += callCost
		} else {
			rounds += active * callCost
		}
		level = next
	}
	out := make([]euler.Point, 0, len(selected))
	for _, p := range selected {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Edge < out[j].Edge })
	return out, rounds
}

// crossNetSelect mirrors the Lemma 11 selection of internal/epsnet for one
// bisecting line (kept in sync by the cross-validation test against
// epsnet.NetFind).
func crossNetSelect(pts []euler.Point, m int32, chunk int, selected map[int]euler.Point) {
	if chunk < 1 {
		chunk = 1
	}
	byY := append([]euler.Point(nil), pts...)
	sort.Slice(byY, func(i, j int) bool {
		if byY[i].Y != byY[j].Y {
			return byY[i].Y < byY[j].Y
		}
		if byY[i].X != byY[j].X {
			return byY[i].X < byY[j].X
		}
		return byY[i].Edge < byY[j].Edge
	})
	for start := 0; start < len(byY); start += chunk {
		end := start + chunk
		if end > len(byY) {
			end = len(byY)
		}
		var lo, hi *euler.Point
		for i := start; i < end; i++ {
			p := byY[i]
			if p.X <= m && (lo == nil || p.X > lo.X) {
				q := p
				lo = &q
			}
			if p.X >= m && (hi == nil || p.X < hi.X) {
				q := p
				hi = &q
			}
		}
		if lo != nil {
			selected[lo.Edge] = *lo
		}
		if hi != nil {
			selected[hi.Edge] = *hi
		}
	}
}

// ConstructionReport summarizes a full distributed label construction.
type ConstructionReport struct {
	BFSRounds       int
	SizeRounds      int
	AncestryRounds  int
	HierarchyRounds int
	SketchRounds    int
	TotalRounds     int
	MaxMessageBits  int
	Depth           int
}

// BuildLabels runs the §8 distributed construction end to end on the
// simulator for fault budget f: BFS tree, subtree sizes, ancestry orders,
// the NetFind hierarchy (emulated rounds), and the pipelined aggregation of
// one outdetect sketch of width sketchChunks (≈ f²·polylog/logn chunks).
// It returns the per-phase round counts plus the computed ancestry orders
// so tests can compare against the centralized construction.
func BuildLabels(n *Net, root int, sketchChunks int) (*ConstructionReport, *BFSResult, []uint32, []uint32, error) {
	rep := &ConstructionReport{}
	r0 := n.Round()
	tree, err := BFS(n, root)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("congest: bfs: %w", err)
	}
	rep.BFSRounds = n.Round() - r0

	r1 := n.Round()
	sizes, err := SubtreeSizes(n, tree)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("congest: sizes: %w", err)
	}
	rep.SizeRounds = n.Round() - r1

	r2 := n.Round()
	pre, post, err := AncestryOrders(n, tree, sizes, root)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("congest: ancestry: %w", err)
	}
	rep.AncestryRounds = n.Round() - r2

	// Hierarchy construction: embed non-tree edges with the just-computed
	// coordinates and charge the emulated NetFind rounds per level.
	depth := 0
	for _, d := range tree.Depth {
		if d > depth {
			depth = d
		}
	}
	rep.Depth = depth
	forest := toForest(n, tree, root)
	tour := euler.Build(forest)
	pts := euler.EmbedNonTree(n.G, forest, tour)
	r3 := n.Round()
	cur := pts
	for len(cur) > 0 {
		next, rounds := NetFindRounds(cur, depth)
		n.AddRounds(rounds)
		if len(next) >= len(cur) {
			break
		}
		cur = next
	}
	rep.HierarchyRounds = n.Round() - r3

	// Sketch aggregation: one pipelined subtree-XOR of sketchChunks chunks
	// (the real construction repeats this per hierarchy level; levels are
	// pipelined back to back, which multiplies the chunk count, so tests
	// pass the total).
	r4 := n.Round()
	mask := uint32(1)<<uint(n.ArgBits) - 1
	vec := make([][]uint32, n.G.N())
	for v := range vec {
		vec[v] = make([]uint32, sketchChunks)
		for i := range vec[v] {
			vec[v][i] = (uint32(v*31+i) | 1) & mask
		}
	}
	if err := PipelinedSubtreeXOR(n, tree, vec); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("congest: sketch aggregation: %w", err)
	}
	rep.SketchRounds = n.Round() - r4
	rep.TotalRounds = n.Round()
	rep.MaxMessageBits = n.MaxObservedBits
	return rep, tree, pre, post, nil
}

// toForest converts a BFS result into the graph.Forest shape consumed by
// the Euler-tour embedding. Only root's component is populated; the congest
// experiments run on connected graphs.
func toForest(n *Net, tree *BFSResult, root int) *graph.Forest {
	f := &graph.Forest{
		Parent:     tree.Parent,
		Children:   tree.Children,
		Roots:      []int{root},
		Comp:       make([]int, n.G.N()),
		IsTreeEdge: make([]bool, n.G.M()),
	}
	for v := 0; v < n.G.N(); v++ {
		if tree.Depth[v] == -1 {
			f.Comp[v] = -1
			continue
		}
		if p := tree.ParentPort[v]; p >= 0 {
			f.IsTreeEdge[n.G.Adj(v)[p].Edge] = true
		}
	}
	return f
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
