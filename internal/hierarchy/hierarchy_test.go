package hierarchy

import (
	"math/rand"
	"testing"

	"repro/internal/euler"
	"repro/internal/graph"
	"repro/internal/workload"
)

// buildEmbedding constructs a graph, its forest, and the non-tree embedding.
func buildEmbedding(n int, p float64, seed int64) (*graph.Graph, *graph.Forest, *euler.Tour, []euler.Point) {
	rng := rand.New(rand.NewSource(seed))
	g := workload.ErdosRenyi(n, p, true, rng)
	f := graph.SpanningForest(g)
	tour := euler.Build(f)
	return g, f, tour, euler.EmbedNonTree(g, f, tour)
}

func TestSubsetChain(t *testing.T) {
	_, _, _, pts := buildEmbedding(200, 0.1, 1)
	for name, h := range map[string]*Hierarchy{
		"netfind":  BuildNetFind(pts, 10),
		"sampling": BuildSampling(pts, 10, rand.New(rand.NewSource(2))),
	} {
		for i := 1; i < len(h.Levels); i++ {
			prev := map[int]bool{}
			for _, e := range h.Levels[i-1] {
				prev[e] = true
			}
			for _, e := range h.Levels[i] {
				if !prev[e] {
					t.Fatalf("%s: level %d contains edge %d absent from level %d", name, i, e, i-1)
				}
			}
			if len(h.Levels[i]) >= len(h.Levels[i-1]) {
				t.Fatalf("%s: level %d did not shrink (%d -> %d)", name, i, len(h.Levels[i-1]), len(h.Levels[i]))
			}
		}
		if h.Depth() < 2 {
			t.Fatalf("%s: depth = %d, want a multi-level hierarchy", name, h.Depth())
		}
		if h.Depth() > 40 {
			t.Fatalf("%s: depth = %d exceeds any log bound", name, h.Depth())
		}
	}
}

func TestLevelZeroIsAllNonTree(t *testing.T) {
	g, f, _, pts := buildEmbedding(100, 0.15, 3)
	h := BuildNetFind(pts, 8)
	nonTree := 0
	for e := range g.Edges {
		if !f.IsTreeEdge[e] {
			nonTree++
		}
	}
	if len(h.Levels[0]) != nonTree {
		t.Fatalf("level 0 has %d edges, want %d", len(h.Levels[0]), nonTree)
	}
}

func boundaryCount(g *graph.Graph, level []int, inS []bool) int {
	cnt := 0
	for _, e := range level {
		edge := g.Edges[e]
		if inS[edge.U] != inS[edge.V] {
			cnt++
		}
	}
	return cnt
}

func TestNetFindHierarchyGoodness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, f, _, pts := buildEmbedding(150, 0.2, 5)
	const maxF = 4
	k := DefaultThreshold(maxF, g.M())
	h := BuildNetFind(pts, k)
	// Fragments must come from the tree: overlay non-tree edges as faults.
	v := goodnessViolationsWithTreeFragments(t, g, f, h, maxF, k, 400, rng)
	if v != 0 {
		t.Fatalf("%d goodness violations with practical k=%d", v, k)
	}
}

func TestSamplingHierarchyGoodness(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, f, _, pts := buildEmbedding(150, 0.2, 7)
	const maxF = 4
	k := SamplingThreshold(maxF, g.N())
	h := BuildSampling(pts, k, rng)
	v := goodnessViolationsWithTreeFragments(t, g, f, h, maxF, k, 400, rng)
	if v != 0 {
		t.Fatalf("%d goodness violations with sampling k=%d", v, k)
	}
}

// goodnessViolationsWithTreeFragments is like goodnessViolations but builds
// S from fragments of the spanning tree (the actual S_{f,T} family).
func goodnessViolationsWithTreeFragments(t *testing.T, g *graph.Graph, f *graph.Forest, h *Hierarchy, maxF, k, trials int, rng *rand.Rand) int {
	t.Helper()
	var treeEdges []int
	overlay := map[int]bool{}
	for e := range g.Edges {
		if f.IsTreeEdge[e] {
			treeEdges = append(treeEdges, e)
		} else {
			overlay[e] = true
		}
	}
	violations := 0
	for trial := 0; trial < trials; trial++ {
		nf := 1 + rng.Intn(maxF)
		faults := map[int]bool{}
		for e := range overlay {
			faults[e] = true
		}
		chosen := 0
		for chosen < nf && chosen < len(treeEdges) {
			e := treeEdges[rng.Intn(len(treeEdges))]
			if !faults[e] {
				faults[e] = true
				chosen++
			}
		}
		comp, cnt := graph.Components(g, faults)
		pick := make([]bool, cnt)
		for c := range pick {
			pick[c] = rng.Intn(2) == 0
		}
		inS := make([]bool, g.N())
		for v := range inS {
			inS[v] = pick[comp[v]]
		}
		for i := 0; i < len(h.Levels); i++ {
			cur := boundaryCount(g, h.Levels[i], inS)
			if cur <= k {
				continue
			}
			nextCount := 0
			if i+1 < len(h.Levels) {
				nextCount = boundaryCount(g, h.Levels[i+1], inS)
			}
			if nextCount == 0 {
				violations++
			}
		}
	}
	return violations
}

func TestGreedyHierarchy(t *testing.T) {
	_, _, _, pts := buildEmbedding(60, 0.25, 8)
	h := BuildGreedy(pts, 6, 12)
	if h.Depth() < 1 {
		t.Fatal("greedy hierarchy empty")
	}
	for i := 1; i < len(h.Levels); i++ {
		if len(h.Levels[i]) >= len(h.Levels[i-1]) {
			t.Fatalf("greedy level %d did not shrink", i)
		}
	}
}

func TestThresholds(t *testing.T) {
	if k := DefaultThreshold(1, 100); k < 4 {
		t.Fatalf("DefaultThreshold(1,100) = %d too small", k)
	}
	if DefaultThreshold(4, 1000) <= DefaultThreshold(1, 1000) {
		t.Fatal("threshold must grow with f")
	}
	if StrictTheoryThreshold(2, 100) <= DefaultThreshold(2, 100) {
		t.Fatal("strict threshold should dominate the practical one")
	}
	if SamplingThreshold(3, 1024) != 150 {
		t.Fatalf("SamplingThreshold(3,1024) = %d, want 150", SamplingThreshold(3, 1024))
	}
}

func TestEmptyInput(t *testing.T) {
	h := BuildNetFind(nil, 5)
	if h.Depth() != 0 {
		t.Fatalf("empty input depth = %d", h.Depth())
	}
	hs := BuildSampling(nil, 5, rand.New(rand.NewSource(1)))
	if hs.Depth() != 0 {
		t.Fatalf("empty sampling depth = %d", hs.Depth())
	}
}
