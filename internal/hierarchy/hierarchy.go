// Package hierarchy constructs the (S_{f,T}, k)-good sparsification
// hierarchies of Definition 1: a chain E_0 ⊇ E_1 ⊇ … ⊇ E_h = ∅ of non-tree
// edge sets such that (i) each level is a constant fraction of the previous
// one, so h = O(log n), and (ii) whenever a vertex set S with small tree
// boundary has more than k outgoing edges at level i, it still has at least
// one outgoing edge at level i+1. Property (ii) is what lets the decoder
// scan levels top-down and trust the first nonzero syndrome (DESIGN.md
// §3.3).
//
// Three constructions are provided, matching Lemma 5 and Appendix A:
//
//   - BuildNetFind — deterministic, near-linear time, k = O(f² log n)
//     (Lemma 5, first bullet), via epsnet.NetFind on the Euler-tour
//     embedding of non-tree edges.
//   - BuildGreedy — deterministic, polynomial time, the stand-in for the
//     [MDG18]-based second bullet (see DESIGN.md §3.5).
//   - BuildSampling — randomized, k = O(f log n) (Proposition 5), by
//     independent halving.
package hierarchy

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/epsnet"
	"repro/internal/euler"
)

// Hierarchy is the chain of edge levels. Levels[0] is the full non-tree edge
// set; the implicit final level is empty. Each entry is a sorted slice of
// edge indices.
type Hierarchy struct {
	Levels [][]int
}

// Depth returns the number of non-empty levels.
func (h *Hierarchy) Depth() int { return len(h.Levels) }

// lg2 returns log₂(max(n,2)).
func lg2(n int) float64 {
	if n < 2 {
		n = 2
	}
	return math.Log2(float64(n))
}

// BuildNetFind builds the deterministic hierarchy of Lemma 5 (first
// construction). pts is the Euler-tour embedding of the non-tree edges;
// stopAt is the threshold k the consuming sketch will use — once a level has
// at most stopAt edges, every S trivially has |∂_{E_i}(S)| ≤ k there, so the
// next level may be empty.
func BuildNetFind(pts []euler.Point, stopAt int) *Hierarchy {
	h := &Hierarchy{}
	cur := append([]euler.Point(nil), pts...)
	for len(cur) > 0 {
		h.Levels = append(h.Levels, edgeIDs(cur))
		if len(cur) <= stopAt {
			break
		}
		next := epsnet.NetFind(len(cur), cur)
		if len(next) >= len(cur) {
			// Cannot happen (NetFind returns ≤ half), but never loop.
			break
		}
		cur = next
	}
	return h
}

// BuildGreedy builds a deterministic hierarchy using the greedy canonical
// ε-net (polynomial-time alternative construction). gamma is the rectangle
// weight the net must hit; the resulting hierarchy is good for
// k = gamma·(2f+1)²/2 by the shape-decomposition argument of §4.3.
func BuildGreedy(pts []euler.Point, gamma, stopAt int) *Hierarchy {
	h := &Hierarchy{}
	cur := append([]euler.Point(nil), pts...)
	for len(cur) > 0 {
		h.Levels = append(h.Levels, edgeIDs(cur))
		if len(cur) <= stopAt {
			break
		}
		next := epsnet.GreedyCanonicalNet(cur, gamma)
		if len(next) >= len(cur) {
			// The greedy net is not guaranteed to halve; force progress
			// by dropping to a strict subset (keep every other point of
			// the net). This preserves the subset chain; the goodness
			// property for the forced level is validated empirically
			// (EXPERIMENTS.md E2).
			next = next[:len(cur)/2]
		}
		cur = next
	}
	return h
}

// BuildSampling builds the randomized hierarchy of Proposition 5: level i+1
// keeps each edge of level i independently with probability 1/2, and the
// chain is cut once a level has at most stopAt edges.
func BuildSampling(pts []euler.Point, stopAt int, rng *rand.Rand) *Hierarchy {
	h := &Hierarchy{}
	cur := append([]euler.Point(nil), pts...)
	for len(cur) > 0 {
		h.Levels = append(h.Levels, edgeIDs(cur))
		if len(cur) <= stopAt {
			break
		}
		var next []euler.Point
		for _, p := range cur {
			if rng.Intn(2) == 0 {
				next = append(next, p)
			}
		}
		if len(next) == len(cur) {
			next = next[:len(cur)-1]
		}
		cur = next
	}
	return h
}

// UpdateBudget returns the number of incremental point insertions or
// deletions a k-good hierarchy can absorb before it must be rebuilt.
//
// An insertion joins level 0 only and a deletion leaves every level it was
// a member of, so after d updates the goodness guarantee of Definition 1
// degrades from "more than k outgoing edges at level i implies one at level
// i+1" to the same with k shifted by at most d: each update changes any
// boundary ∂(S) by at most one edge per level. The practical threshold
// (DefaultThreshold) already carries a large constant-factor margin over
// what the decoder needs on real instances (DESIGN.md §3.4), so a quarter
// of k is a conservative churn budget; on overflow the update path falls
// back to a full rebuild, which restores an exactly k-good hierarchy and
// resets the budget.
func UpdateBudget(k int) int {
	b := k / 4
	if b < 1 {
		b = 1
	}
	return b
}

// Invalidated is the level invalidation predicate of the dynamic update
// path: it reports whether absorbing pending more incremental updates, on
// top of churn already absorbed since the last rebuild, would erode the
// hierarchy's goodness margin for threshold k past UpdateBudget.
func (h *Hierarchy) Invalidated(churn, pending, k int) bool {
	if h == nil {
		return true
	}
	return churn+pending > UpdateBudget(k)
}

// DefaultThreshold is the practical sketch threshold k(f, m) used by the
// deterministic scheme: f²·⌈log₂ m⌉ clamped below by 2f+2 and by the
// NetFind hitting weight, so the final-level cut-off in BuildNetFind is
// sound. See DESIGN.md §3.4 for why this is deliberately far below the
// worst-case constant 6(2f+1)²·log₂ m of Lemma 5.
func DefaultThreshold(f, m int) int {
	k := f * f * int(math.Ceil(lg2(m)))
	if low := 2*f + 2; k < low {
		k = low
	}
	if nf := epsnet.NetFindThreshold(m); k < nf {
		k = nf
	}
	return k
}

// StrictTheoryThreshold is the worst-case threshold 6(2f+1)²·⌈log₂ m⌉ from
// Lemma 5 — the value under which the ε-net argument proves goodness for
// every S ∈ S_{f,T}. Only practical for very small graphs.
func StrictTheoryThreshold(f, m int) int {
	return 6 * (2*f + 1) * (2*f + 1) * int(math.Ceil(lg2(m)))
}

// SamplingThreshold is the randomized threshold ⌈5·f·log₂ n⌉ of
// Proposition 5.
func SamplingThreshold(f, n int) int {
	return int(math.Ceil(5 * float64(f) * lg2(n)))
}

func edgeIDs(pts []euler.Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = p.Edge
	}
	sort.Ints(out)
	return out
}
