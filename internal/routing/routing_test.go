package routing

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestRouteNoFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := workload.ErdosRenyi(30, 0.15, true, rng)
	net, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		s, d := rng.Intn(g.N()), rng.Intn(g.N())
		path, ok, err := net.Route(s, d, nil)
		if err != nil {
			t.Fatalf("Route(%d,%d): %v", s, d, err)
		}
		if !ok {
			t.Fatalf("Route(%d,%d) unreachable in connected graph", s, d)
		}
		validatePath(t, g, path, s, d, nil)
	}
}

// validatePath checks the hop sequence is a real walk avoiding faults.
func validatePath(t *testing.T, g *graph.Graph, path []int, s, d int, faults map[int]bool) {
	t.Helper()
	if len(path) == 0 || path[0] != s || path[len(path)-1] != d {
		t.Fatalf("path %v does not go %d → %d", path, s, d)
	}
	for i := 1; i < len(path); i++ {
		idx := g.EdgeIndex(path[i-1], path[i])
		if idx < 0 {
			t.Fatalf("path uses non-edge (%d,%d)", path[i-1], path[i])
		}
		if faults[idx] {
			t.Fatalf("path crosses forbidden edge (%d,%d)", path[i-1], path[i])
		}
	}
}

func TestRouteUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(40)
		g := workload.ErdosRenyi(n, 0.12, true, rng)
		f := 1 + rng.Intn(3)
		net, err := Build(g, f)
		if err != nil {
			t.Fatal(err)
		}
		forest := graph.SpanningForest(g)
		for q := 0; q < 40; q++ {
			var faults []int
			if q%2 == 0 {
				faults = workload.TreeEdgeFaults(g, forest, rng.Intn(f+1), rng)
			} else {
				faults = workload.RandomFaults(g, rng.Intn(f+1), rng)
			}
			set := workload.FaultSet(faults)
			s, d := rng.Intn(n), rng.Intn(n)
			want := graph.ConnectedUnder(g, set, s, d)
			path, ok, err := net.Route(s, d, faults)
			if err != nil {
				t.Fatalf("trial %d Route(%d,%d,%v): %v", trial, s, d, faults, err)
			}
			if ok != want {
				t.Fatalf("trial %d Route(%d,%d,%v) reachable=%v, want %v", trial, s, d, faults, ok, want)
			}
			if ok {
				validatePath(t, g, path, s, d, set)
			}
		}
	}
}

// TestRoutingStretch measures that delivered paths are not absurdly long
// (the Corollary 2 stretch is measured precisely in the bench harness; here
// we only guard against pathological blowup).
func TestRoutingStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.Grid(8, 8)
	const f = 2
	net, err := Build(g, f)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for q := 0; q < 60; q++ {
		faults := workload.RandomFaults(g, f, rng)
		set := workload.FaultSet(faults)
		s, d := rng.Intn(g.N()), rng.Intn(g.N())
		if s == d || !graph.ConnectedUnder(g, set, s, d) {
			continue
		}
		path, ok, err := net.Route(s, d, faults)
		if err != nil || !ok {
			t.Fatalf("Route(%d,%d): ok=%v err=%v", s, d, ok, err)
		}
		opt := graph.HopDistancesUnder(g, set, s)[d]
		if opt == 0 {
			continue
		}
		stretch := float64(len(path)-1) / float64(opt)
		if stretch > worst {
			worst = stretch
		}
	}
	// Tree detours on an 8×8 grid stay well below this guard.
	if worst > 40 {
		t.Fatalf("worst stretch %.1f is pathological", worst)
	}
	t.Logf("worst observed stretch: %.2f", worst)
}

func TestRouteToSelf(t *testing.T) {
	g := workload.Cycle(5)
	net, err := Build(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	path, ok, err := net.Route(3, 3, nil)
	if err != nil || !ok {
		t.Fatalf("self route: ok=%v err=%v", ok, err)
	}
	if len(path) != 1 || path[0] != 3 {
		t.Fatalf("self route path = %v", path)
	}
}

func TestRouteDisconnected(t *testing.T) {
	g := graph.New(6)
	var ids []int
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}} {
		id, err := g.AddEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	net, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := net.Route(0, 4, nil); err != nil || ok {
		t.Fatalf("cross-component route: ok=%v err=%v", ok, err)
	}
	// Cutting both edges around vertex 1 isolates it.
	if _, ok, err := net.Route(1, 0, []int{ids[0], ids[1]}); err != nil || ok {
		t.Fatalf("isolated route: ok=%v err=%v", ok, err)
	}
}

func TestTableBits(t *testing.T) {
	g := workload.Grid(6, 6)
	net, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	total, maxLocal := net.TableBits()
	if total <= 0 || maxLocal <= 0 || maxLocal > total {
		t.Fatalf("table bits: total=%d max=%d", total, maxLocal)
	}
	// Local tables are O(deg·log n): generously bounded here.
	if maxLocal > 10000 {
		t.Fatalf("max local table %d bits is not compact", maxLocal)
	}
}
