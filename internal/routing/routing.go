// Package routing implements the fault-tolerant (forbidden-set) compact
// routing scheme of Corollary 2 and a hop-by-hop packet simulator for it.
//
// Model: every node stores a compact local table (its own T′ ancestry label
// plus one interval/port entry per incident edge — O(deg·log n) bits, all
// compiled from labels). A source that knows the labels of the forbidden
// edge set F computes a route plan with core.RoutePlan: a sequence of
// fragment crossings extracted from the FTC query's own merge structure.
// Packets carry the plan (O(|F|·log n) bits); each node forwards greedily
// along the spanning tree toward the current waypoint and performs the
// non-tree crossings the plan dictates. Within a fragment, tree routing
// never meets a faulty edge — fragments are exactly the tree components of
// T − F — so the packet provably avoids F.
package routing

import (
	"errors"
	"fmt"

	"repro/internal/ancestry"
	"repro/internal/core"
	"repro/internal/graph"
)

// ErrRouting is returned when the simulator detects a malfunction (packet
// loop, crossing a forbidden edge, missing port). These indicate bugs, not
// expected runtime conditions.
var ErrRouting = errors.New("routing: forwarding failed")

// LabelSource supplies the labels the routing tables are compiled from.
// *core.Scheme (via Build) and the serve layer's scheme both satisfy it,
// which is how the daemon reuses its existing labels instead of rebuilding
// the scheme just to route.
type LabelSource interface {
	VertexLabel(v int) core.VertexLabel
	EdgeLabelByIndex(e int) core.EdgeLabel
}

// coreSource adapts *core.Scheme to LabelSource.
type coreSource struct{ s *core.Scheme }

func (c coreSource) VertexLabel(v int) core.VertexLabel    { return c.s.VertexLabel(v) }
func (c coreSource) EdgeLabelByIndex(e int) core.EdgeLabel { return c.s.EdgeLabel(e) }

// portEntry is one local-table row: the edge's port (adjacency index), the
// subtree interval it leads to (tree edges), or the virtual subdivision
// vertex preorder identifying it (non-tree edges).
type portEntry struct {
	port int
	// Tree port: interval of the child subtree in T′ (only meaningful
	// when down is true; the parent port has down == false).
	lo, hi uint32
	down   bool
	// Non-tree port: preorder of the edge's virtual vertex x_e.
	virtual uint32
}

// nodeTable is one node's routing state.
type nodeTable struct {
	self       ancestry.Label
	parentPort int
	tree       []portEntry
	virtuals   map[uint32]int // x_e preorder → port
}

// Network is a compiled routing network over a graph.
type Network struct {
	g      *graph.Graph
	scheme *core.Scheme // nil when built via NewFromLabels
	src    LabelSource
	tables []nodeTable
}

// Build compiles routing tables for g with fault budget f. The FTC labels
// are built with the deterministic scheme.
func Build(g *graph.Graph, f int) (*Network, error) {
	s, err := core.Build(g, core.Params{MaxFaults: f})
	if err != nil {
		return nil, fmt.Errorf("routing: %w", err)
	}
	net := NewFromLabels(g, coreSource{s})
	net.scheme = s
	return net, nil
}

// NewFromLabels compiles routing tables for g from an existing labeling —
// no scheme construction. src must label the same graph (same edge and
// vertex indexing) or the tables are garbage.
func NewFromLabels(g *graph.Graph, src LabelSource) *Network {
	net := &Network{g: g, src: src, tables: make([]nodeTable, g.N())}
	for v := 0; v < g.N(); v++ {
		net.tables[v] = nodeTable{
			self:       src.VertexLabel(v).Anc,
			parentPort: -1,
			virtuals:   map[uint32]int{},
		}
	}
	for v := 0; v < g.N(); v++ {
		tab := &net.tables[v]
		for port, half := range g.Adj(v) {
			el := src.EdgeLabelByIndex(half.Edge)
			// Tree edge of T′ between two real vertices ⇔ the child
			// label is a real vertex's label, i.e. matches one of the
			// two endpoints' ancestry labels.
			vAnc := net.tables[v].self
			uAnc := src.VertexLabel(half.To).Anc
			switch {
			case el.Child == uAnc:
				// Edge descends from v to half.To.
				tab.tree = append(tab.tree, portEntry{
					port: port, lo: el.Child.Pre, hi: el.Child.Post, down: true,
				})
			case el.Child == vAnc:
				tab.parentPort = port
			default:
				// Non-tree edge: Child is the virtual x_e.
				tab.virtuals[el.Child.Pre] = port
				if el.Parent == vAnc {
					// v owns x_e as a virtual child: tree-routing
					// toward x_e terminates here.
					tab.tree = append(tab.tree, portEntry{
						port: port, lo: el.Child.Pre, hi: el.Child.Post,
						down: true, virtual: el.Child.Pre,
					})
				}
			}
		}
	}
	return net
}

// Scheme exposes the underlying FTC labeling when the network was compiled
// by Build (nil for NewFromLabels networks — the caller already owns the
// labels in that case).
func (n *Network) Scheme() *core.Scheme { return n.scheme }

// TableBits returns the total and maximum per-node routing-table sizes in
// bits — the Corollary 2 metrics.
func (n *Network) TableBits() (total, maxLocal int) {
	for v := range n.tables {
		tab := &n.tables[v]
		bits := 96 // self label
		bits += 32 // parent port
		bits += len(tab.tree) * (32 + 64 + 32 + 1)
		bits += len(tab.virtuals) * (32 + 32)
		total += bits
		if bits > maxLocal {
			maxLocal = bits
		}
	}
	return total, maxLocal
}

// Route delivers a packet from s to t avoiding the forbidden edge set
// (edge indices into the graph). It returns the vertex path traversed and
// whether t is reachable; an error indicates a scheme malfunction.
func (n *Network) Route(s, t int, faults []int) ([]int, bool, error) {
	fl := make([]core.EdgeLabel, len(faults))
	faultSet := make(map[int]bool, len(faults))
	for i, e := range faults {
		fl[i] = n.src.EdgeLabelByIndex(e)
		faultSet[e] = true
	}
	plan, ok, err := core.RoutePlan(n.src.VertexLabel(s), n.src.VertexLabel(t), fl)
	if err != nil {
		return nil, false, fmt.Errorf("routing: plan: %w", err)
	}
	if !ok {
		return nil, false, nil
	}
	return n.Execute(s, t, plan, func(e int) bool { return faultSet[e] })
}

// Execute runs a precomputed route plan through the packet simulator:
// hop-by-hop forwarding from s toward t, crossing the plan's non-tree
// edges, with forbidden reporting which edge indices the packet must not
// traverse. The plan must have been computed against the same labeling the
// tables were compiled from (the serve layer guarantees this by
// generation-stamping plans). Returns the vertex path traversed and
// whether t was reached; an error indicates a scheme malfunction.
func (n *Network) Execute(s, t int, plan []core.RouteStep, forbidden func(e int) bool) ([]int, bool, error) {
	path := []int{s}
	cur := s
	hopLimit := 6*n.g.N() + 16*len(plan) + 64
	for _, step := range plan {
		for {
			if len(path) > hopLimit {
				return path, false, fmt.Errorf("%w: hop limit exceeded (loop?)", ErrRouting)
			}
			tab := &n.tables[cur]
			// Crossing condition (b): we are at the real endpoint Near
			// and the step names a virtual edge to cross.
			if tab.self.Pre == step.Near {
				if step.Far == 0 {
					break // arrived at destination
				}
				port, okPort := tab.virtuals[step.Far]
				if !okPort {
					return path, false, fmt.Errorf("%w: node %d has no port for virtual %d", ErrRouting, cur, step.Far)
				}
				cur = n.hop(cur, port, forbidden, &path)
				if cur < 0 {
					return path, false, fmt.Errorf("%w: crossing used a forbidden edge", ErrRouting)
				}
				break
			}
			// Crossing condition (a): we own the virtual child Near.
			if port, okPort := tab.virtuals[step.Near]; okPort && n.ownsVirtual(cur, step.Near) {
				cur = n.hop(cur, port, forbidden, &path)
				if cur < 0 {
					return path, false, fmt.Errorf("%w: crossing used a forbidden edge", ErrRouting)
				}
				break
			}
			// Otherwise forward along the tree toward Near.
			port := n.treePort(cur, step.Near)
			if port < 0 {
				return path, false, fmt.Errorf("%w: node %d cannot route toward %d", ErrRouting, cur, step.Near)
			}
			next := n.hop(cur, port, forbidden, &path)
			if next < 0 {
				return path, false, fmt.Errorf("%w: tree forwarding met a forbidden edge toward %d", ErrRouting, step.Near)
			}
			cur = next
		}
	}
	if cur != t {
		return path, false, fmt.Errorf("%w: terminated at %d, want %d", ErrRouting, cur, t)
	}
	return path, true, nil
}

// ownsVirtual reports whether node v is the T′ parent of virtual vertex with
// preorder p (vs merely being the far endpoint of that non-tree edge).
func (n *Network) ownsVirtual(v int, p uint32) bool {
	for _, pe := range n.tables[v].tree {
		if pe.down && pe.virtual == p {
			return true
		}
	}
	return false
}

// treePort picks the port toward preorder target: a child whose interval
// contains it, else the parent.
func (n *Network) treePort(v int, target uint32) int {
	tab := &n.tables[v]
	for _, pe := range tab.tree {
		if pe.down && pe.lo <= target && target <= pe.hi {
			return pe.port
		}
	}
	return tab.parentPort
}

// hop moves the packet across the given port, rejecting forbidden edges.
func (n *Network) hop(cur, port int, forbidden func(e int) bool, path *[]int) int {
	half := n.g.Adj(cur)[port]
	if forbidden(half.Edge) {
		return -1
	}
	*path = append(*path, half.To)
	return half.To
}
