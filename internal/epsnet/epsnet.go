// Package epsnet implements the paper's deterministic ε-net constructions
// for axis-aligned rectangles (§4.3, §7.5):
//
//   - NetFind — the divide-and-conquer algorithm of Lemma 12, producing in
//     O(|P|·log|P|·log N) time a (12·log N / |P|)-net of size at most
//     |P|·log|P| / (2·log N) (a constant fraction when N = |P|).
//   - GreedyCanonicalNet — a polynomial-time deterministic alternative used
//     where the paper invokes the optimal net of Mustafa–Dutta–Ghosh
//     [MDG18]; see DESIGN.md §3.5 for the substitution rationale.
//
// Feeding these nets to the Euler-tour embedding of non-tree edges yields
// the (S_{f,T}, k)-good sparsification hierarchy (Lemma 5): a shape in H_2f
// with ≥ γ(2f+1)²/2 points contains an axis-aligned rectangle with ≥ γ
// points, so an ε-net for rectangles hits every heavy cutset region.
package epsnet

import (
	"math"
	"sort"

	"repro/internal/euler"
)

// Point aliases the Euler-tour embedding point: (X, Y) planar coordinates
// plus the identity of the edge the point represents.
type Point = euler.Point

// lg returns log₂(max(n, 2)).
func lg(n int) float64 {
	if n < 2 {
		n = 2
	}
	return math.Log2(float64(n))
}

// NetFind implements Lemma 12. Given a point multiset pts and a size bound
// N ≥ |pts|, it returns a subset hitting every axis-aligned rectangle that
// contains at least 12·log₂N of the points. The output size is at most
// |pts|·log₂|pts| / (2·log₂N); with N = len(pts) that is at most half the
// input, which is how the hierarchy shrinks geometrically.
func NetFind(n int, pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	work := make([]Point, len(pts))
	copy(work, pts)
	// One global sort by (X, Y, Edge); recursion bisects sorted slices so
	// the vertical median line is just the middle index.
	sort.Slice(work, func(i, j int) bool {
		if work[i].X != work[j].X {
			return work[i].X < work[j].X
		}
		if work[i].Y != work[j].Y {
			return work[i].Y < work[j].Y
		}
		return work[i].Edge < work[j].Edge
	})
	logN := lg(n)
	selected := map[int]Point{} // keyed by edge id: dedupes across recursion levels
	netFindRec(work, logN, selected)
	out := make([]Point, 0, len(selected))
	for _, p := range selected {
		out = append(out, p)
	}
	// Deterministic output order.
	sort.Slice(out, func(i, j int) bool { return out[i].Edge < out[j].Edge })
	return out
}

// netFindRec processes one recursive call of Lemma 12 on x-sorted points.
func netFindRec(pts []Point, logN float64, selected map[int]Point) {
	if float64(len(pts)) < 12*logN {
		return
	}
	mid := len(pts) / 2
	m := pts[mid].X // vertical bisecting line x = M
	// Lemma 11 with ε = 1/(2·log N): chunks of 2/ε = 4·log N points by
	// y-order; per chunk keep the x-closest point on each side of the line.
	crossNet(pts, m, int(math.Ceil(4*logN)), selected)
	netFindRec(pts[:mid], logN, selected)
	netFindRec(pts[mid:], logN, selected)
}

// crossNet implements Lemma 11: a net for rectangles crossing the vertical
// line x = m. Points are re-sorted by y and cut into chunks of the given
// size; each chunk contributes the point with maximum X among those with
// X ≤ m and the point with minimum X among those with X ≥ m.
func crossNet(pts []Point, m int32, chunk int, selected map[int]Point) {
	if chunk < 1 {
		chunk = 1
	}
	byY := make([]Point, len(pts))
	copy(byY, pts)
	sort.Slice(byY, func(i, j int) bool {
		if byY[i].Y != byY[j].Y {
			return byY[i].Y < byY[j].Y
		}
		if byY[i].X != byY[j].X {
			return byY[i].X < byY[j].X
		}
		return byY[i].Edge < byY[j].Edge
	})
	for start := 0; start < len(byY); start += chunk {
		end := start + chunk
		if end > len(byY) {
			end = len(byY)
		}
		var lo, hi *Point
		for i := start; i < end; i++ {
			p := byY[i]
			if p.X <= m && (lo == nil || p.X > lo.X) {
				q := p
				lo = &q
			}
			if p.X >= m && (hi == nil || p.X < hi.X) {
				q := p
				hi = &q
			}
		}
		if lo != nil {
			selected[lo.Edge] = *lo
		}
		if hi != nil {
			selected[hi.Edge] = *hi
		}
	}
}

// NetFindThreshold returns the rectangle weight above which NetFind's output
// is guaranteed to hit: 12·log₂N points.
func NetFindThreshold(n int) int {
	return int(math.Ceil(12 * lg(n)))
}

// GreedyCanonicalNet returns a subset of pts hitting every axis-aligned
// rectangle containing at least gamma points, via greedy hitting-set over
// the canonical minimal heavy rectangles. It is the polynomial-time
// deterministic stand-in for [MDG18] (DESIGN.md §3.5): for every pair of
// y-bounds realized by input points it slides a minimal x-window of exactly
// gamma points, then greedily picks the point stabbing the most unhit
// windows. Intended for the poly(N) second scheme on moderate N (the window
// enumeration is O(N³) in the worst case).
func GreedyCanonicalNet(pts []Point, gamma int) []Point {
	if gamma < 1 {
		gamma = 1
	}
	if len(pts) < gamma {
		return nil
	}
	ys := distinctYs(pts)
	// Enumerate canonical minimal heavy rectangles as point-index sets.
	var rects [][]int
	for loi := 0; loi < len(ys); loi++ {
		for hii := loi; hii < len(ys); hii++ {
			yLo, yHi := ys[loi], ys[hii]
			// Points within the y-band, sorted by x.
			var band []int
			for i, p := range pts {
				if p.Y >= yLo && p.Y <= yHi {
					band = append(band, i)
				}
			}
			if len(band) < gamma {
				continue
			}
			sort.Slice(band, func(a, b int) bool { return pts[band[a]].X < pts[band[b]].X })
			for s := 0; s+gamma <= len(band); s++ {
				win := make([]int, gamma)
				copy(win, band[s:s+gamma])
				rects = append(rects, win)
			}
		}
	}
	// Greedy hitting set.
	hitCount := make([]int, len(pts))
	alive := make([]bool, len(rects))
	remaining := len(rects)
	for i := range rects {
		alive[i] = true
		for _, p := range rects[i] {
			hitCount[p]++
		}
	}
	var chosen []Point
	picked := make([]bool, len(pts))
	for remaining > 0 {
		best, bestCnt := -1, 0
		for i, c := range hitCount {
			if !picked[i] && c > bestCnt {
				best, bestCnt = i, c
			}
		}
		if best == -1 {
			break
		}
		picked[best] = true
		chosen = append(chosen, pts[best])
		for ri, r := range rects {
			if !alive[ri] {
				continue
			}
			covered := false
			for _, p := range r {
				if p == best {
					covered = true
					break
				}
			}
			if covered {
				alive[ri] = false
				remaining--
				for _, p := range r {
					hitCount[p]--
				}
			}
		}
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].Edge < chosen[j].Edge })
	return chosen
}

func distinctYs(pts []Point) []int32 {
	set := map[int32]bool{}
	for _, p := range pts {
		set[p.Y] = true
	}
	out := make([]int32, 0, len(set))
	for y := range set {
		out = append(out, y)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountInRect counts points of pts inside the closed rectangle
// [x1,x2]×[y1,y2] — a test/validation helper.
func CountInRect(pts []Point, x1, x2, y1, y2 int32) int {
	cnt := 0
	for _, p := range pts {
		if p.X >= x1 && p.X <= x2 && p.Y >= y1 && p.Y <= y2 {
			cnt++
		}
	}
	return cnt
}
