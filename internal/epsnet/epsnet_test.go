package epsnet

import (
	"math"
	"math/rand"
	"testing"
)

func randomPoints(rng *rand.Rand, n int, coordMax int32) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X:    1 + rng.Int31n(coordMax),
			Y:    1 + rng.Int31n(coordMax),
			Edge: i,
		}
	}
	return pts
}

// heavyRectangles generates rectangles guaranteed to contain at least
// `weight` points by growing around random point subsets. Returns fewer than
// count when weight is close to the population size.
func heavyRectangles(rng *rand.Rand, pts []Point, weight, count int) [][4]int32 {
	if weight > len(pts) {
		return nil
	}
	var out [][4]int32
	for attempt := 0; len(out) < count && attempt < 10*count; attempt++ {
		// Anchor at a random point and expand until heavy.
		c := pts[rng.Intn(len(pts))]
		x1, x2, y1, y2 := c.X, c.X, c.Y, c.Y
		grow := int32(1)
		for CountInRect(pts, x1, x2, y1, y2) < weight && grow < 1<<20 {
			x1, x2, y1, y2 = x1-grow, x2+grow, y1-grow, y2+grow
			grow *= 2
		}
		if CountInRect(pts, x1, x2, y1, y2) >= weight {
			out = append(out, [4]int32{x1, x2, y1, y2})
		}
	}
	return out
}

func hasPointIn(net []Point, r [4]int32) bool {
	for _, p := range net {
		if p.X >= r[0] && p.X <= r[1] && p.Y >= r[2] && p.Y <= r[3] {
			return true
		}
	}
	return false
}

func TestNetFindHitsHeavyRectangles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{300, 1000, 4000} {
		pts := randomPoints(rng, n, int32(4*n))
		net := NetFind(n, pts)
		weight := NetFindThreshold(n)
		rects := heavyRectangles(rng, pts, weight, 200)
		if len(rects) == 0 {
			t.Fatalf("n=%d: no heavy rectangles generated (weight %d)", n, weight)
		}
		for _, r := range rects {
			if !hasPointIn(net, r) {
				t.Fatalf("n=%d: heavy rectangle %v (weight ≥ %d) not hit by net of size %d",
					n, r, weight, len(net))
			}
		}
	}
}

// TestNetFindThinRectangles targets the adversarial case grids miss: long,
// thin rectangles (width-zero x-slabs and y-slabs).
func TestNetFindThinRectangles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 600
	// Clustered x-coordinates make thin vertical slabs heavy.
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: int32(1 + (i%10)*100), Y: rng.Int31n(10000), Edge: i}
	}
	net := NetFind(n, pts)
	weight := NetFindThreshold(n)
	// Each vertical line x = 1+k*100 holds n/10 = 60 points ≥ weight?
	if 60 < weight {
		t.Skipf("threshold %d exceeds slab population", weight)
	}
	for k := 0; k < 10; k++ {
		x := int32(1 + k*100)
		if CountInRect(pts, x, x, 0, 10000) < weight {
			continue
		}
		if !hasPointIn(net, [4]int32{x, x, 0, 10000}) {
			t.Fatalf("vertical slab x=%d not hit", x)
		}
	}
}

func TestNetFindSizeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{100, 500, 2000} {
		pts := randomPoints(rng, n, int32(2*n))
		net := NetFind(n, pts)
		bound := float64(n) * math.Log2(float64(n)) / (2 * math.Log2(float64(n)))
		if float64(len(net)) > bound {
			t.Fatalf("n=%d: net size %d exceeds bound %.1f", n, len(net), bound)
		}
		if len(net) == 0 && n >= 100 {
			t.Fatalf("n=%d: empty net is suspicious", n)
		}
	}
}

func TestNetFindShrinksGeometrically(t *testing.T) {
	// Iterating NetFind with N = |P| must reach ∅ in O(log) steps —
	// this is the hierarchy-depth property (Definition 1).
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 3000, 50000)
	depth := 0
	for len(pts) > 0 {
		next := NetFind(len(pts), pts)
		if len(next) > len(pts)/2+1 {
			t.Fatalf("level %d: %d -> %d is not a constant-fraction shrink", depth, len(pts), len(next))
		}
		pts = next
		depth++
		if depth > 40 {
			t.Fatal("hierarchy depth exceeds any reasonable log bound")
		}
	}
	if depth < 2 {
		t.Fatalf("depth = %d, expected a multi-level hierarchy", depth)
	}
}

func TestNetFindSmallInputs(t *testing.T) {
	if out := NetFind(10, nil); out != nil {
		t.Fatalf("empty input: %v", out)
	}
	pts := []Point{{X: 1, Y: 2, Edge: 0}}
	if out := NetFind(1, pts); len(out) != 0 {
		t.Fatalf("singleton below threshold should give empty net, got %v", out)
	}
}

func TestNetFindDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 500, 1000)
	a := NetFind(500, pts)
	b := NetFind(500, pts)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic size %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic output at %d", i)
		}
	}
}

func TestNetFindDuplicateCoordinates(t *testing.T) {
	// All points on one vertical line — degenerate geometry.
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{X: 7, Y: int32(i), Edge: i}
	}
	net := NetFind(200, pts)
	w := NetFindThreshold(200)
	// Any y-interval with ≥ w points must be hit.
	for lo := 0; lo+w <= 200; lo += w {
		if !hasPointIn(net, [4]int32{7, 7, int32(lo), int32(lo + w - 1)}) {
			t.Fatalf("y-interval [%d,%d] with %d points not hit", lo, lo+w-1, w)
		}
	}
}

func TestGreedyCanonicalNet(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n, gamma = 80, 8
	pts := randomPoints(rng, n, 500)
	net := GreedyCanonicalNet(pts, gamma)
	// Exhaustive-ish verification over canonical rectangle corners.
	for trial := 0; trial < 2000; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		x1, x2 := pts[i].X, pts[j].X
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		y1, y2 := pts[i].Y, pts[j].Y
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		if CountInRect(pts, x1, x2, y1, y2) >= gamma && !hasPointIn(net, [4]int32{x1, x2, y1, y2}) {
			t.Fatalf("rectangle [%d,%d]×[%d,%d] heavy but unhit (net size %d)", x1, x2, y1, y2, len(net))
		}
	}
	if len(net) == 0 || len(net) >= n {
		t.Fatalf("net size %d out of expected range", len(net))
	}
}

func TestGreedyCanonicalNetEdgeCases(t *testing.T) {
	if out := GreedyCanonicalNet(nil, 3); out != nil {
		t.Fatalf("nil input: %v", out)
	}
	pts := []Point{{X: 1, Y: 1, Edge: 0}, {X: 2, Y: 2, Edge: 1}}
	if out := GreedyCanonicalNet(pts, 5); out != nil {
		t.Fatalf("fewer points than gamma: %v", out)
	}
	// gamma = 1 must select a hitting set for every single point.
	net := GreedyCanonicalNet(pts, 1)
	if len(net) != 2 {
		t.Fatalf("gamma=1 net = %v, want both points", net)
	}
}

func BenchmarkNetFind(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 5000, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NetFind(len(pts), pts)
	}
}
