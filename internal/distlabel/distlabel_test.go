package distlabel

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func buildScheme(t *testing.T, seed int64, n int, f, kappa int) (*graph.Graph, *Scheme) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := workload.ErdosRenyi(n, 0.2, true, rng)
	workload.AssignRandomWeights(g, 60, rng)
	s, err := Build(g, Params{MaxFaults: f, Kappa: kappa})
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

func runQuery(t *testing.T, g *graph.Graph, s *Scheme, sv, tv int, faults []int, kappa int) Result {
	t.Helper()
	fl := make([]EdgeLabel, len(faults))
	for i, e := range faults {
		fl[i] = s.EdgeLabel(e)
	}
	res, err := Query(s.VertexLabel(sv), s.VertexLabel(tv), fl, g.N(), kappa)
	if err != nil {
		t.Fatalf("Query(%d,%d,%v): %v", sv, tv, faults, err)
	}
	return res
}

// TestBoundsSandwichGroundTruth validates every guarantee in Result against
// exact Dijkstra / bottleneck computations.
func TestBoundsSandwichGroundTruth(t *testing.T) {
	const kappa = 2
	for trial := 0; trial < 5; trial++ {
		g, s := buildScheme(t, int64(trial), 22+3*trial, 2, kappa)
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		for q := 0; q < 40; q++ {
			faults := workload.RandomFaults(g, rng.Intn(3), rng)
			set := workload.FaultSet(faults)
			sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
			if sv == tv {
				continue
			}
			res := runQuery(t, g, s, sv, tv, faults, kappa)
			wantConn := graph.ConnectedUnder(g, set, sv, tv)
			if res.Connected != wantConn {
				t.Fatalf("connectivity mismatch: got %v want %v", res.Connected, wantConn)
			}
			if !wantConn {
				continue
			}
			bottleneck := graph.BottleneckDistanceUnder(g, set, sv, tv)
			dist := graph.WeightedDistancesUnder(g, set, sv)[tv]
			if bottleneck > res.BottleneckUpper {
				t.Fatalf("bottleneck %d exceeds upper bound %d", bottleneck, res.BottleneckUpper)
			}
			if bottleneck < res.BottleneckLower {
				t.Fatalf("bottleneck %d below lower bound %d", bottleneck, res.BottleneckLower)
			}
			if dist > res.DistanceUpper {
				t.Fatalf("distance %d exceeds upper bound %d", dist, res.DistanceUpper)
			}
			if dist < res.DistanceLower {
				t.Fatalf("distance %d below lower bound %d", dist, res.DistanceLower)
			}
		}
	}
}

func TestUnweightedCollapsesToConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := workload.ErdosRenyi(20, 0.2, true, rng)
	s, err := Build(g, Params{MaxFaults: 2, Kappa: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Scales() != 1 {
		t.Fatalf("unweighted graph should have 1 scale, got %d", s.Scales())
	}
	res := runQuery(t, g, s, 0, g.N()-1, nil, 2)
	if !res.Connected || res.Scale != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestNonSpannerFaultsIgnorable(t *testing.T) {
	// Faults restricted to non-spanner edges must never flip connectivity
	// (that is the fault-tolerance property of the spanner).
	rng := rand.New(rand.NewSource(11))
	g := workload.ErdosRenyi(25, 0.35, true, rng)
	workload.AssignRandomWeights(g, 30, rng)
	const f = 2
	s, err := Build(g, Params{MaxFaults: f, Kappa: 2})
	if err != nil {
		t.Fatal(err)
	}
	var outside []int
	for e := 0; e < g.M(); e++ {
		if !s.sp.InSpanner[e] {
			outside = append(outside, e)
		}
	}
	if len(outside) < f {
		t.Skip("spanner kept almost everything")
	}
	faults := outside[:f]
	set := workload.FaultSet(faults)
	for q := 0; q < 30; q++ {
		sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
		res := runQuery(t, g, s, sv, tv, faults, 2)
		if res.Connected != graph.ConnectedUnder(g, set, sv, tv) {
			t.Fatalf("non-spanner faults changed the answer for (%d,%d)", sv, tv)
		}
	}
}

func TestDisconnection(t *testing.T) {
	// A weighted path: cutting an edge separates the sides.
	g := graph.New(4)
	var ids []int
	for i := 0; i < 3; i++ {
		id, err := g.AddWeightedEdge(i, i+1, int64(1)<<uint(2*i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s, err := Build(g, Params{MaxFaults: 1, Kappa: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := runQuery(t, g, s, 0, 3, []int{ids[1]}, 1)
	if res.Connected {
		t.Fatal("cut edge should disconnect")
	}
	res = runQuery(t, g, s, 0, 3, nil, 1)
	if !res.Connected {
		t.Fatal("path should be connected")
	}
	// The path bottleneck is the heaviest edge, 16: scale must bracket it.
	if res.BottleneckUpper < 16 || res.BottleneckLower > 16 {
		t.Fatalf("bottleneck 16 outside [%d,%d]", res.BottleneckLower, res.BottleneckUpper)
	}
}

func TestLabelBits(t *testing.T) {
	_, s := buildScheme(t, 77, 20, 1, 2)
	vb, eb := s.LabelBits()
	if vb <= 0 || eb <= 0 {
		t.Fatalf("label bits: %d, %d", vb, eb)
	}
	if vb >= eb {
		t.Fatalf("vertex labels (%d bits) should be far smaller than edge labels (%d bits)", vb, eb)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Build(workload.Cycle(4), Params{MaxFaults: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	if _, err := Query(VertexLabel{}, VertexLabel{}, nil, 5, 2); err == nil {
		t.Fatal("empty labels accepted")
	}
}
