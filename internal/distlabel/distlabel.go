// Package distlabel implements the fault-tolerant approximate distance
// labeling of Corollary 1. The paper obtains it from the f-FTC scheme as a
// black box via the Dory–Parter reduction whose formalism it explicitly
// omits; this implementation follows the same black-box shape (DESIGN.md
// §3.5): FTC labelings over power-of-two weight-threshold subgraphs of an
// f-fault-tolerant (2κ−1)-bottleneck spanner.
//
// A query binary-searches for the smallest scale 2^i at which s and t are
// connected under the faults. This pins the fault-tolerant bottleneck
// distance within a provable factor 2(2κ−1) and brackets the true s–t
// distance in G − F between Scale/(2κ−1)/2 and (n−1)·Scale; the measured
// stretch of the point estimate is reported in EXPERIMENTS.md (E8).
package distlabel

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spanner"
)

// Params configures Build.
type Params struct {
	// MaxFaults is the fault budget f.
	MaxFaults int
	// Kappa is the spanner stretch parameter κ ≥ 1 (stretch 2κ−1). Larger
	// κ gives sparser per-scale graphs and smaller labels, at the cost of
	// a wider bottleneck bracket.
	Kappa int
	// Kind forwards the FTC scheme variant (zero = deterministic).
	Kind core.Kind
	// Seed drives randomized FTC variants.
	Seed int64
}

// Scheme holds per-scale FTC labelings over the spanner.
type Scheme struct {
	params Params
	n      int
	scales []int64 // ascending weight thresholds (powers of two)
	ftc    []*core.Scheme
	sp     *spanner.Spanner
	// scaleOf[e] is the first scale index at which g's edge e is present
	// in the spanner, or -1 when the edge is not in the spanner.
	scaleOf []int
}

// VertexLabel carries one FTC vertex label per scale.
type VertexLabel struct {
	Scales []core.VertexLabel
}

// EdgeLabel carries one FTC edge label per scale the edge participates in.
// Faults on edges outside the spanner are provably ignorable (the spanner
// retains f+1 edge-disjoint detours at comparable bottleneck).
type EdgeLabel struct {
	InSpanner  bool
	FirstScale int
	Weight     int64
	Scales     []core.EdgeLabel
}

// Result is a distance query answer.
type Result struct {
	// Connected reports s–t connectivity in G − F.
	Connected bool
	// Scale is the smallest power-of-two threshold at which s and t are
	// connected in the spanner minus faults (0 when disconnected).
	Scale int64
	// BottleneckUpper ≥ bottleneck_{G−F}(s,t): equals Scale.
	BottleneckUpper int64
	// BottleneckLower ≤ bottleneck_{G−F}(s,t): Scale/2/(2κ−1), at least 1.
	BottleneckLower int64
	// DistanceUpper ≥ d_{G−F}(s,t): (n−1)·Scale.
	DistanceUpper int64
	// DistanceLower ≤ d_{G−F}(s,t): same as BottleneckLower.
	DistanceLower int64
}

// Build constructs the labeling. The graph must have positive integer
// weights (unweighted graphs work with all weights 1, collapsing to plain
// fault-tolerant connectivity).
func Build(g *graph.Graph, p Params) (*Scheme, error) {
	if g == nil {
		return nil, fmt.Errorf("distlabel: nil graph")
	}
	if p.Kappa < 1 {
		p.Kappa = 2
	}
	if p.MaxFaults < 0 {
		return nil, fmt.Errorf("distlabel: negative fault budget")
	}
	sp, err := spanner.BuildFT(g, p.MaxFaults, p.Kappa)
	if err != nil {
		return nil, fmt.Errorf("distlabel: %w", err)
	}
	var maxW int64 = 1
	for e := 0; e < sp.H.M(); e++ {
		if w := sp.H.Weight(e); w > maxW {
			maxW = w
		}
	}
	s := &Scheme{params: p, n: g.N(), sp: sp, scaleOf: make([]int, g.M())}
	for i := range s.scaleOf {
		s.scaleOf[i] = -1
	}
	for t := int64(1); ; t *= 2 {
		s.scales = append(s.scales, t)
		if t >= maxW {
			break
		}
	}
	for si, thr := range s.scales {
		sub := graph.New(g.N())
		// subEdgeOf[e] maps a g edge to its index in sub (dense per
		// scale; rebuilt each level).
		for hIdx := 0; hIdx < sp.H.M(); hIdx++ {
			if sp.H.Weight(hIdx) > thr {
				continue
			}
			e := sp.OrigEdge[hIdx]
			if _, err := sub.AddEdge(sp.H.Edges[hIdx].U, sp.H.Edges[hIdx].V); err != nil {
				return nil, fmt.Errorf("distlabel: scale %d: %w", si, err)
			}
			if s.scaleOf[e] == -1 {
				s.scaleOf[e] = si
			}
		}
		ftc, err := core.Build(sub, core.Params{
			MaxFaults: p.MaxFaults,
			Kind:      p.Kind,
			Seed:      p.Seed + int64(si)*7919,
		})
		if err != nil {
			return nil, fmt.Errorf("distlabel: scale %d: %w", si, err)
		}
		s.ftc = append(s.ftc, ftc)
	}
	return s, nil
}

// Scales returns the number of weight scales.
func (s *Scheme) Scales() int { return len(s.scales) }

// VertexLabel returns vertex v's distance label.
func (s *Scheme) VertexLabel(v int) VertexLabel {
	out := VertexLabel{Scales: make([]core.VertexLabel, len(s.ftc))}
	for i, f := range s.ftc {
		out.Scales[i] = f.VertexLabel(v)
	}
	return out
}

// EdgeLabel returns g-edge e's distance label.
func (s *Scheme) EdgeLabel(e int) EdgeLabel {
	first := s.scaleOf[e]
	out := EdgeLabel{InSpanner: first >= 0, FirstScale: first}
	if !out.InSpanner {
		return out
	}
	hIdx := s.sp.SpannerEdge[e]
	out.Weight = s.sp.H.Weight(hIdx)
	for si := first; si < len(s.ftc); si++ {
		// The per-scale subgraphs insert spanner edges in H-index
		// order among those under the threshold; recover the edge's
		// per-scale index by counting.
		idx := s.scaleEdgeIndex(si, hIdx)
		out.Scales = append(out.Scales, s.ftc[si].EdgeLabel(idx))
	}
	return out
}

// scaleEdgeIndex returns the per-scale FTC edge index of spanner edge hIdx.
func (s *Scheme) scaleEdgeIndex(si int, hIdx int) int {
	thr := s.scales[si]
	idx := 0
	for j := 0; j < hIdx; j++ {
		if s.sp.H.Weight(j) <= thr {
			idx++
		}
	}
	return idx
}

// LabelBits returns the total per-vertex label size in bits (sum over
// scales) and the maximum per-edge label size.
func (s *Scheme) LabelBits() (vertexBits, maxEdgeBits int) {
	for _, f := range s.ftc {
		vertexBits += core.VertexLabelBits(f.VertexLabel(0))
	}
	for e := 0; e < len(s.scaleOf); e++ {
		l := s.EdgeLabel(e)
		total := 0
		for _, el := range l.Scales {
			total += core.EdgeLabelBits(el)
		}
		if total > maxEdgeBits {
			maxEdgeBits = total
		}
	}
	return vertexBits, maxEdgeBits
}

// ErrBadQuery is returned for malformed label sets.
var ErrBadQuery = errors.New("distlabel: malformed query labels")

// Query estimates the s–t distance under faults from labels alone.
func Query(sv, tv VertexLabel, faults []EdgeLabel, n int, kappa int) (Result, error) {
	if len(sv.Scales) == 0 || len(sv.Scales) != len(tv.Scales) {
		return Result{}, fmt.Errorf("%w: scale counts differ", ErrBadQuery)
	}
	scales := len(sv.Scales)
	check := func(si int) (bool, error) {
		var fl []core.EdgeLabel
		for _, f := range faults {
			if !f.InSpanner || f.FirstScale > si {
				continue
			}
			fl = append(fl, f.Scales[si-f.FirstScale])
		}
		return core.Connected(sv.Scales[si], tv.Scales[si], fl)
	}
	// Binary search for the smallest connected scale (monotone: larger
	// scales have more edges and the same or fewer applicable faults).
	top, err := check(scales - 1)
	if err != nil {
		return Result{}, err
	}
	if !top {
		return Result{Connected: false}, nil
	}
	lo, hi := 0, scales-1
	for lo < hi {
		mid := (lo + hi) / 2
		ok, err := check(mid)
		if err != nil {
			return Result{}, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	scale := int64(1) << uint(lo)
	stretch := int64(2*kappa - 1)
	res := Result{
		Connected:       true,
		Scale:           scale,
		BottleneckUpper: scale,
		BottleneckLower: maxInt64(1, scale/2/stretch),
		DistanceUpper:   int64(n-1) * scale,
	}
	res.DistanceLower = res.BottleneckLower
	return res, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
