package spanner

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestSpannerPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := workload.ErdosRenyi(30+trial, 0.2, true, rng)
		workload.AssignRandomWeights(g, 50, rng)
		sp, err := BuildFT(g, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, cnt := graph.Components(sp.H, nil); cnt != 1 {
			t.Fatalf("f=0 spanner disconnected the graph")
		}
	}
}

// TestBottleneckGuarantee verifies the defining property: for any |F| ≤ f,
// bottleneck_{H−F}(u,v) ≤ (2κ−1) · bottleneck_{G−F}(u,v) for all pairs.
func TestBottleneckGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		g := workload.ErdosRenyi(24, 0.25, true, rng)
		workload.AssignRandomWeights(g, 40, rng)
		f := 1 + trial%3
		kappa := 1 + trial%2
		sp, err := BuildFT(g, f, kappa)
		if err != nil {
			t.Fatal(err)
		}
		stretch := int64(2*kappa - 1)
		for fs := 0; fs < 15; fs++ {
			faultsG := workload.RandomFaults(g, rng.Intn(f+1), rng)
			gSet := workload.FaultSet(faultsG)
			// Translate fault set into H edge indices.
			hSet := map[int]bool{}
			for _, e := range faultsG {
				if sp.SpannerEdge[e] >= 0 {
					hSet[sp.SpannerEdge[e]] = true
				}
			}
			for q := 0; q < 25; q++ {
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				bg := graph.BottleneckDistanceUnder(g, gSet, u, v)
				bh := graph.BottleneckDistanceUnder(sp.H, hSet, u, v)
				if bg == -1 {
					// u, v disconnected in G−F; H−F must agree (H ⊆ G
					// cannot connect more).
					if bh != -1 {
						t.Fatalf("H−F connects a pair G−F does not")
					}
					continue
				}
				if bh == -1 {
					t.Fatalf("trial %d: pair (%d,%d) disconnected in H−F but connected in G−F (f=%d κ=%d)",
						trial, u, v, f, kappa)
				}
				if bh > stretch*bg {
					t.Fatalf("bottleneck stretch violated: %d > %d·%d", bh, stretch, bg)
				}
			}
		}
	}
}

func TestSpannerSparsifies(t *testing.T) {
	// On a dense unweighted graph the spanner must drop a meaningful
	// fraction of edges once redundancy exceeds f+1.
	g := workload.Complete(20)
	sp, err := BuildFT(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.H.M() >= g.M() {
		t.Fatalf("spanner kept all %d edges of K20", g.M())
	}
	if sp.H.M() < g.N()-1 {
		t.Fatalf("spanner too sparse to span: %d edges", sp.H.M())
	}
}

func TestSpannerKeepsBridges(t *testing.T) {
	// Two triangles joined by one bridge: the bridge must be kept for any f.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	bridge, err := g.AddEdge(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f <= 3; f++ {
		sp, err := BuildFT(g, f, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !sp.InSpanner[bridge] {
			t.Fatalf("f=%d: bridge dropped", f)
		}
	}
}

func TestHigherFaultBudgetKeepsMore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.ErdosRenyi(25, 0.4, true, rng)
	m0, m2 := 0, 0
	if sp, err := BuildFT(g, 0, 2); err == nil {
		m0 = sp.H.M()
	} else {
		t.Fatal(err)
	}
	if sp, err := BuildFT(g, 2, 2); err == nil {
		m2 = sp.H.M()
	} else {
		t.Fatal(err)
	}
	if m2 < m0 {
		t.Fatalf("f=2 spanner (%d edges) smaller than f=0 spanner (%d edges)", m2, m0)
	}
}

func TestEdgeMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := workload.ErdosRenyi(20, 0.3, true, rng)
	sp, err := BuildFT(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for e := range g.Edges {
		if sp.InSpanner[e] != (sp.SpannerEdge[e] >= 0) {
			t.Fatalf("mapping inconsistency at edge %d", e)
		}
		if h := sp.SpannerEdge[e]; h >= 0 {
			if sp.OrigEdge[h] != e {
				t.Fatalf("OrigEdge[%d] = %d, want %d", h, sp.OrigEdge[h], e)
			}
			if sp.H.Edges[h] != g.Edges[e] {
				t.Fatalf("edge endpoints changed in spanner")
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := BuildFT(nil, 1, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := BuildFT(workload.Cycle(4), -1, 2); err == nil {
		t.Fatal("negative f accepted")
	}
	if _, err := BuildFT(workload.Cycle(4), 1, 0); err == nil {
		t.Fatal("kappa=0 accepted")
	}
}
