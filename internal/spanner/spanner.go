// Package spanner builds f-fault-tolerant bottleneck spanners: sparse
// subgraphs H ⊆ G such that for every fault set F with |F| ≤ f and every
// vertex pair, the bottleneck (minimax edge weight) distance in H − F is at
// most (2κ−1) times the bottleneck distance in G − F.
//
// This is the substrate for the Corollary 1 distance-labeling reduction (see
// DESIGN.md §3.5): the paper defers the reduction's formalism to Dory–Parter
// and consumes the FTC scheme as a black box; our reduction runs the FTC
// scheme over weight-threshold subgraphs of this spanner.
//
// The construction is the fault-tolerant greedy: scan edges by increasing
// weight and add (u, v, w) unless H already contains f+1 edge-disjoint u–v
// paths using only edges of weight ≤ (2κ−1)·w. Skipped edges therefore
// survive any f faults via a detour of bottleneck ≤ (2κ−1)·w, and the
// guarantee composes edge by edge along any G − F path.
package spanner

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Spanner is the result of BuildFT.
type Spanner struct {
	// H is the spanner subgraph. Vertex ids match g; H's edge indices are
	// its own — use OrigEdge / InSpanner to translate.
	H *graph.Graph
	// InSpanner[e] reports whether g's edge e was kept.
	InSpanner []bool
	// OrigEdge[i] is the g edge index of H's edge i.
	OrigEdge []int
	// SpannerEdge[e] is the H edge index of g's edge e, or -1.
	SpannerEdge []int
	// Kappa and MaxFaults echo the construction parameters.
	Kappa, MaxFaults int
}

// BuildFT constructs an f-fault-tolerant (2κ−1)-bottleneck spanner of g.
// κ ≥ 1; κ = 1 keeps every edge that is not (f+1)-redundant at its own
// weight level. Runs in O(m·(f+1)·(n+m)) time.
func BuildFT(g *graph.Graph, f, kappa int) (*Spanner, error) {
	if g == nil {
		return nil, fmt.Errorf("spanner: nil graph")
	}
	if f < 0 || kappa < 1 {
		return nil, fmt.Errorf("spanner: invalid parameters f=%d kappa=%d", f, kappa)
	}
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := g.Weight(order[a]), g.Weight(order[b])
		if wa != wb {
			return wa < wb
		}
		return order[a] < order[b]
	})

	sp := &Spanner{
		H:           graph.New(g.N()),
		InSpanner:   make([]bool, g.M()),
		SpannerEdge: make([]int, g.M()),
		Kappa:       kappa,
		MaxFaults:   f,
	}
	for i := range sp.SpannerEdge {
		sp.SpannerEdge[i] = -1
	}
	stretch := int64(2*kappa - 1)
	// kept edges in weight order, as (u, v, w) with H edge index.
	for _, e := range order {
		edge := g.Edges[e]
		w := g.Weight(e)
		limit := w * stretch
		if edgeDisjointPaths(sp.H, edge.U, edge.V, limit, f+1) >= f+1 {
			continue
		}
		hIdx, err := sp.H.AddWeightedEdge(edge.U, edge.V, w)
		if err != nil {
			return nil, fmt.Errorf("spanner: adding kept edge: %w", err)
		}
		sp.InSpanner[e] = true
		sp.SpannerEdge[e] = hIdx
		sp.OrigEdge = append(sp.OrigEdge, e)
	}
	return sp, nil
}

// edgeDisjointPaths returns min(maxPaths, max edge-disjoint u–v paths) in
// the subgraph of h restricted to edges of weight ≤ limit, via unit-capacity
// augmenting BFS.
func edgeDisjointPaths(h *graph.Graph, u, v int, limit int64, maxPaths int) int {
	if u == v {
		return maxPaths
	}
	m := h.M()
	// Residual state per undirected edge: 0 = unused, +1 = used u→v
	// direction (as stored), -1 = used reverse.
	used := make([]int8, m)
	flow := 0
	prevEdge := make([]int32, h.N())
	prevDir := make([]int8, h.N())
	for flow < maxPaths {
		for i := range prevEdge {
			prevEdge[i] = -1
		}
		prevEdge[u] = -2 // source marker
		queue := []int{u}
		found := false
	bfs:
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, half := range h.Adj(x) {
				if h.Weight(half.Edge) > limit {
					continue
				}
				e := h.Edges[half.Edge]
				// Direction +1 means traversing from e.U to e.V.
				dir := int8(1)
				if x == e.V {
					dir = -1
				}
				// Residual capacity: can traverse if the edge is not
				// already used in this direction.
				if used[half.Edge] == dir {
					continue
				}
				y := half.To
				if prevEdge[y] != -1 {
					continue
				}
				prevEdge[y] = int32(half.Edge)
				prevDir[y] = dir
				if y == v {
					found = true
					break bfs
				}
				queue = append(queue, y)
			}
		}
		if !found {
			break
		}
		// Augment along the path.
		x := v
		for x != u {
			e := int(prevEdge[x])
			dir := prevDir[x]
			if used[e] == -dir {
				used[e] = 0 // cancel a reverse traversal
			} else {
				used[e] = dir
			}
			if dir == 1 {
				x = h.Edges[e].U
			} else {
				x = h.Edges[e].V
			}
		}
		flow++
	}
	return flow
}
