package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseAndPolicies(t *testing.T) {
	r, err := Parse("a=error-once; b=error-rate:0.5 ;c=latency:1ms;d=torn-write", 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.eval("unarmed"); got != nil {
		t.Fatalf("unarmed point fired: %v", got)
	}
	// error-once: exactly one failure.
	if err := r.eval("a"); err == nil {
		t.Fatal("error-once did not fire")
	}
	for i := 0; i < 10; i++ {
		if err := r.eval("a"); err != nil {
			t.Fatalf("error-once fired twice (iteration %d): %v", i, err)
		}
	}
	if r.Fired("a") != 1 {
		t.Fatalf("Fired(a) = %d, want 1", r.Fired("a"))
	}
	// error-rate: roughly half of many evaluations fail.
	fails := 0
	for i := 0; i < 1000; i++ {
		if r.eval("b") != nil {
			fails++
		}
	}
	if fails < 350 || fails > 650 {
		t.Fatalf("error-rate:0.5 fired %d/1000", fails)
	}
	// latency: sleeps, never errors.
	start := time.Now()
	if err := r.eval("c"); err != nil {
		t.Fatalf("latency returned error: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("latency point did not sleep")
	}
	// torn-write: one strict-prefix write failure, then pass-through.
	allow, err := r.evalWrite("d", 100)
	if err == nil {
		t.Fatal("torn-write did not fire")
	}
	if allow < 0 || allow >= 100 {
		t.Fatalf("torn-write allowed %d of 100 bytes", allow)
	}
	if allow2, err2 := r.evalWrite("d", 100); err2 != nil || allow2 != 100 {
		t.Fatalf("torn-write fired twice: allow=%d err=%v", allow2, err2)
	}
	var ie *Error
	if !errors.As(err, &ie) || ie.Point != "d" {
		t.Fatalf("injected error does not unwrap to *Error: %v", err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"nopolicy",
		"p=unknown-policy",
		"p=error-rate",
		"p=error-rate:2",
		"p=latency:notaduration",
		"p=partial-write:x",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestDeterministicAcrossRegistries(t *testing.T) {
	outcomes := func(seed int64) []bool {
		r, err := Parse("p=error-rate:0.3", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.eval("p") != nil
		}
		return out
	}
	a, b := outcomes(7), outcomes(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at evaluation %d", i)
		}
	}
	c := outcomes(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical outcome streams")
	}
}

func TestGlobalArmDisarm(t *testing.T) {
	defer Disarm()
	Disarm()
	if err := Fire("p"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if allow, err := FailWrite("p", 10); err != nil || allow != 10 {
		t.Fatalf("disarmed FailWrite = (%d, %v)", allow, err)
	}
	r := New(1)
	if err := r.Set("p", "error"); err != nil {
		t.Fatal(err)
	}
	Arm(r)
	if err := Fire("p"); err == nil {
		t.Fatal("armed Fire did not fire")
	}
	Disarm()
	if err := Fire("p"); err != nil {
		t.Fatalf("re-disarmed Fire returned %v", err)
	}
}

func TestWrapWriterTornWrite(t *testing.T) {
	defer Disarm()
	r := New(3)
	if err := r.Set("w", "torn-write"); err != nil {
		t.Fatal(err)
	}
	Arm(r)
	var buf bytes.Buffer
	w := WrapWriter("w", &buf)
	payload := strings.Repeat("x", 64)
	n, err := w.Write([]byte(payload))
	if err == nil {
		t.Fatal("torn write succeeded")
	}
	if n != buf.Len() || n >= len(payload) {
		t.Fatalf("torn write reported %d bytes, buffered %d (payload %d)", n, buf.Len(), len(payload))
	}
	// Disarmed wrap returns the writer unchanged.
	Disarm()
	if w2 := WrapWriter("w", &buf); w2 != any(&buf) {
		t.Fatal("disarmed WrapWriter wrapped anyway")
	}
}
