// Package faultinject is the deterministic failpoint registry of the
// serving tier (DESIGN.md §3.16): named points threaded through the
// tier's IO seams — genlog append/fsync/compaction, /snapshot streaming
// on both ends, wire connection read/write in binserver and wireclient —
// each carrying one policy (error, error-once, error-rate, latency,
// partial-write, torn-write) driven by a per-point PRNG derived from one
// global seed, so a chaos run replays identically from its seed alone.
//
// The package is built to cost nothing when disarmed: every hook starts
// with one atomic pointer load and a nil check, and the connection/writer
// wrappers return their argument unwrapped unless a registry is armed at
// wrap time. Armed, a point that does not fire costs one map read under
// an RWMutex read lock.
//
// Arming is process-global (ftcserve -failpoints, chaos harnesses) or
// per-test via Arm/Disarm; tests that arm the global registry must not
// run in parallel with tests that probe the same seams.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Error is the injected failure: callers can unwrap to it (errors.As) to
// distinguish an injected fault from a real one in assertions.
type Error struct {
	Point  string
	Policy string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s (%s)", e.Point, e.Policy)
}

// policy kinds. A point holds exactly one policy.
const (
	kindError        = "error"
	kindLatency      = "latency"
	kindPartialWrite = "partial-write"
)

// point is one armed failpoint: a policy, a firing probability, an
// optional remaining-fire budget, and its own deterministic PRNG.
type point struct {
	name    string
	kind    string
	policy  string // the spec text, echoed in errors and String()
	rate    float64
	latency time.Duration

	mu        sync.Mutex
	rng       *rand.Rand
	remaining int64 // <0 = unlimited
	fired     uint64
}

// decide rolls the point's dice: whether this evaluation fires, consuming
// one unit of the remaining budget when it does.
func (p *point) decide() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.remaining == 0 {
		return false
	}
	if p.rate < 1 && p.rng.Float64() >= p.rate {
		return false
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.fired++
	return true
}

// tear picks how many of n bytes a firing partial write lets through:
// a uniformly random strict prefix (at least 0, at most n-1 bytes).
func (p *point) tear(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 1 {
		return 0
	}
	return p.rng.Intn(n)
}

// Registry is a set of armed failpoints sharing one seed.
type Registry struct {
	seed int64
	mu   sync.RWMutex
	pts  map[string]*point
}

// New returns an empty registry whose points derive their PRNG streams
// from seed.
func New(seed int64) *Registry {
	return &Registry{seed: seed, pts: make(map[string]*point)}
}

// Seed reports the registry's seed.
func (r *Registry) Seed() int64 { return r.seed }

// pointSeed mixes the registry seed with the point name (FNV-1a) so each
// point gets an independent, reproducible stream.
func pointSeed(seed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return seed ^ int64(h)
}

// Set arms one point from a policy spec (the part after "="):
//
//	error            — every evaluation fails
//	error-once       — exactly one evaluation fails
//	error-rate:P     — each evaluation fails with probability P
//	latency:D[:P]    — sleep D (Go duration) [with probability P]
//	partial-write:P  — a write lets a random strict prefix through, then
//	                   fails, with probability P (write seams only)
//	torn-write       — exactly one partial write (the torn-tail injection)
func (r *Registry) Set(name, policy string) error {
	p := &point{name: name, policy: policy, rate: 1, remaining: -1}
	parts := strings.Split(policy, ":")
	switch parts[0] {
	case "error":
		p.kind = kindError
	case "error-once":
		p.kind = kindError
		p.remaining = 1
	case "error-rate":
		p.kind = kindError
		if len(parts) != 2 {
			return fmt.Errorf("faultinject: %s: error-rate needs a probability", name)
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || rate < 0 || rate > 1 {
			return fmt.Errorf("faultinject: %s: bad error rate %q", name, parts[1])
		}
		p.rate = rate
	case "latency":
		p.kind = kindLatency
		if len(parts) < 2 || len(parts) > 3 {
			return fmt.Errorf("faultinject: %s: latency needs a duration", name)
		}
		d, err := time.ParseDuration(parts[1])
		if err != nil || d < 0 {
			return fmt.Errorf("faultinject: %s: bad latency %q", name, parts[1])
		}
		p.latency = d
		if len(parts) == 3 {
			rate, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || rate < 0 || rate > 1 {
				return fmt.Errorf("faultinject: %s: bad latency rate %q", name, parts[2])
			}
			p.rate = rate
		}
	case "partial-write":
		p.kind = kindPartialWrite
		if len(parts) != 2 {
			return fmt.Errorf("faultinject: %s: partial-write needs a probability", name)
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || rate < 0 || rate > 1 {
			return fmt.Errorf("faultinject: %s: bad partial-write rate %q", name, parts[1])
		}
		p.rate = rate
	case "torn-write":
		p.kind = kindPartialWrite
		p.remaining = 1
	default:
		return fmt.Errorf("faultinject: %s: unknown policy %q", name, parts[0])
	}
	p.rng = rand.New(rand.NewSource(pointSeed(r.seed, name)))
	r.mu.Lock()
	r.pts[name] = p
	r.mu.Unlock()
	return nil
}

// Parse builds a registry from a spec string: semicolon-separated
// point=policy entries, e.g.
//
//	"genlog.append=torn-write;binserver.conn.read=error-rate:0.05"
func Parse(spec string, seed int64) (*Registry, error) {
	r := New(seed)
	for _, ent := range strings.Split(spec, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, policy, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: entry %q is not point=policy", ent)
		}
		if err := r.Set(strings.TrimSpace(name), strings.TrimSpace(policy)); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// String renders the armed points back as a spec string (sorted-free;
// diagnostic only).
func (r *Registry) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	for name, p := range r.pts {
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s=%s", name, p.policy)
	}
	return b.String()
}

// Fired reports how many times the named point has fired.
func (r *Registry) Fired(name string) uint64 {
	r.mu.RLock()
	p := r.pts[name]
	r.mu.RUnlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// FiredTotal sums fire counts across every point.
func (r *Registry) FiredTotal() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total uint64
	for _, p := range r.pts {
		p.mu.Lock()
		total += p.fired
		p.mu.Unlock()
	}
	return total
}

func (r *Registry) lookup(name string) *point {
	r.mu.RLock()
	p := r.pts[name]
	r.mu.RUnlock()
	return p
}

// eval runs one evaluation of a point: latency policies sleep and return
// nil; error policies return an *Error when they fire.
func (r *Registry) eval(name string) error {
	p := r.lookup(name)
	if p == nil || !p.decide() {
		return nil
	}
	switch p.kind {
	case kindLatency:
		time.Sleep(p.latency)
		return nil
	default:
		return &Error{Point: name, Policy: p.policy}
	}
}

// evalWrite evaluates a write-shaped point over an n-byte write: allow is
// how many bytes to let through; err non-nil means the write must fail
// after allow bytes (allow == n with err == nil is the pass-through).
func (r *Registry) evalWrite(name string, n int) (allow int, err error) {
	p := r.lookup(name)
	if p == nil || !p.decide() {
		return n, nil
	}
	switch p.kind {
	case kindLatency:
		time.Sleep(p.latency)
		return n, nil
	case kindPartialWrite:
		return p.tear(n), &Error{Point: name, Policy: p.policy}
	default:
		return 0, &Error{Point: name, Policy: p.policy}
	}
}

// active is the process-global armed registry; nil when disarmed — the
// zero-cost fast path every hook checks first.
var active atomic.Pointer[Registry]

// Arm installs r as the process-global registry (nil disarms).
func Arm(r *Registry) {
	active.Store(r)
}

// Disarm removes the global registry.
func Disarm() { active.Store(nil) }

// Armed returns the global registry, nil when disarmed.
func Armed() *Registry { return active.Load() }

// Fire evaluates the named point against the global registry: nil when
// disarmed, when the point is not armed, or when its policy decides not
// to fire this time. Latency policies sleep here.
func Fire(name string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.eval(name)
}

// FailWrite evaluates a write-shaped point over an n-byte write against
// the global registry. The caller writes buf[:allow] and returns err when
// err is non-nil — which is what leaves a torn tail on disk.
func FailWrite(name string, n int) (allow int, err error) {
	r := active.Load()
	if r == nil {
		return n, nil
	}
	return r.evalWrite(name, n)
}

// errConnInjected distinguishes wrapper-injected conn failures; the
// wrapped *Error is preserved for errors.As.
var errConnInjected = errors.New("faultinject: connection fault")

// faultConn injects read/write failures into a net.Conn under the points
// "<name>.read" and "<name>.write". An injected failure also closes the
// underlying conn — a failed socket does not come back.
type faultConn struct {
	net.Conn
	read, write string
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := Fire(c.read); err != nil {
		c.Conn.Close()
		return 0, fmt.Errorf("%w: %w", errConnInjected, err)
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	allow, err := FailWrite(c.write, len(p))
	if err != nil {
		n := 0
		if allow > 0 {
			n, _ = c.Conn.Write(p[:allow])
		}
		c.Conn.Close()
		return n, fmt.Errorf("%w: %w", errConnInjected, err)
	}
	return c.Conn.Write(p)
}

// WrapConn wraps a connection with the "<name>.read"/"<name>.write"
// failpoints. Returns c unwrapped when no registry is armed at wrap time,
// so the disarmed hot path keeps the raw conn (and its TCPConn fast
// paths).
func WrapConn(name string, c net.Conn) net.Conn {
	if active.Load() == nil {
		return c
	}
	return &faultConn{Conn: c, read: name + ".read", write: name + ".write"}
}

// faultWriter injects failures (including partial writes) into a writer.
type faultWriter struct {
	w    io.Writer
	name string
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	allow, err := FailWrite(fw.name, len(p))
	if err != nil {
		n := 0
		if allow > 0 {
			n, _ = fw.w.Write(p[:allow])
		}
		return n, err
	}
	return fw.w.Write(p)
}

// WrapWriter wraps w with the named write failpoint; returns w unwrapped
// when disarmed at wrap time.
func WrapWriter(name string, w io.Writer) io.Writer {
	if active.Load() == nil {
		return w
	}
	return &faultWriter{w: w, name: name}
}

// faultReader injects read failures into a reader.
type faultReader struct {
	r    io.Reader
	name string
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if err := Fire(fr.name); err != nil {
		return 0, err
	}
	return fr.r.Read(p)
}

// WrapReader wraps r with the named read failpoint; returns r unwrapped
// when disarmed at wrap time.
func WrapReader(name string, r io.Reader) io.Reader {
	if active.Load() == nil {
		return r
	}
	return &faultReader{r: r, name: name}
}
