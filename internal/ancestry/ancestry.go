// Package ancestry implements the deterministic ancestry labeling scheme of
// Kannan, Naor, and Rudich (paper Lemma 7): each vertex of a rooted forest
// gets an O(log n)-bit label — its DFS preorder/postorder interval — such
// that the ancestor/descendant relation between any two vertices is decided
// from the two labels alone.
//
// Labels also carry the preorder of the component root so that queries
// across different trees of a forest are recognized as trivially
// disconnected (DESIGN.md §3.6).
package ancestry

import "repro/internal/graph"

// Label is a single vertex's ancestry label. Preorders are global across the
// forest and start at 1, so a zero Pre marks an invalid label.
type Label struct {
	Pre  uint32 // DFS preorder of the vertex (1-based, globally unique)
	Post uint32 // largest preorder in the vertex's subtree
	Root uint32 // preorder of the component root
}

// Valid reports whether l is a populated label.
func (l Label) Valid() bool { return l.Pre != 0 && l.Post >= l.Pre }

// IsAncestorOf reports whether l's vertex is an ancestor of m's vertex
// (inclusive: a vertex is its own ancestor). Distinct components are never
// related.
func (l Label) IsAncestorOf(m Label) bool {
	return l.Root == m.Root && l.Pre <= m.Pre && m.Pre <= l.Post
}

// Contains reports whether preorder p falls in l's subtree interval. This is
// the point-stabbing primitive the query algorithm uses to locate the
// fragment of a decoded edge endpoint (paper Proposition 3): the fragment of
// a vertex v is determined by v's preorder alone.
func (l Label) Contains(p uint32) bool { return l.Pre <= p && p <= l.Post }

// Compare implements the paper's universal decoder D^anc: it returns 1 if a
// is a proper ancestor of b, -1 if b is a proper ancestor of a, and 0
// otherwise (including a == b and distinct components).
func Compare(a, b Label) int {
	if a.Root != b.Root || a.Pre == b.Pre {
		return 0
	}
	if a.IsAncestorOf(b) {
		return 1
	}
	if b.IsAncestorOf(a) {
		return -1
	}
	return 0
}

// Labeling holds the labels of every vertex of a forest.
type Labeling struct {
	Labels []Label
	// ByPre maps a preorder back to the vertex id (ByPre[0] unused).
	ByPre []int
}

// Build computes the labeling of forest f over a graph with f's vertex
// count. The DFS visits children in Forest.Children order, so the labeling
// is deterministic given the forest. Runs in O(n).
func Build(f *graph.Forest) *Labeling {
	return BuildWithSlack(f, nil)
}

// BuildWithSlack is Build with per-vertex preorder headroom: after a
// vertex's children are numbered, slack(v) unused preorder slots are
// reserved inside the vertex's interval (just before Post). The reserved
// slots stab exactly like a fresh leaf child of v would — any number q in
// the reserved range satisfies v.Pre < q ≤ v.Post while lying outside every
// child interval — which is what lets the dynamic update path attach new
// subdivision leaves without renumbering a single existing vertex. Reserved
// slots map to -1 in ByPre. A nil slack reproduces Build exactly.
func BuildWithSlack(f *graph.Forest, slack func(v int) int) *Labeling {
	n := len(f.Parent)
	total := n + 1
	if slack != nil {
		for v := 0; v < n; v++ {
			total += slack(v)
		}
	}
	l := &Labeling{
		Labels: make([]Label, n),
		ByPre:  make([]int, total),
	}
	if slack != nil {
		for i := range l.ByPre {
			l.ByPre[i] = -1
		}
	}
	next := uint32(1)
	// Iterative DFS; the stack entry is (vertex, child cursor).
	type frame struct {
		v   int
		idx int
	}
	stack := make([]frame, 0, 64)
	finish := func(v int) {
		if slack != nil {
			next += uint32(slack(v))
		}
		l.Labels[v].Post = next - 1
	}
	for _, root := range f.Roots {
		rootPre := next
		stack = append(stack[:0], frame{v: root})
		l.Labels[root] = Label{Pre: next, Root: rootPre}
		l.ByPre[next] = root
		next++
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.idx < len(f.Children[top.v]) {
				c := f.Children[top.v][top.idx]
				top.idx++
				l.Labels[c] = Label{Pre: next, Root: rootPre}
				l.ByPre[next] = c
				next++
				stack = append(stack, frame{v: c})
				continue
			}
			finish(top.v)
			stack = stack[:len(stack)-1]
		}
	}
	return l
}

// MaxPre returns the largest preorder number the labeling spans, reserved
// slack slots included.
func (l *Labeling) MaxPre() uint32 { return uint32(len(l.ByPre) - 1) }

// Of returns vertex v's label.
func (l *Labeling) Of(v int) Label { return l.Labels[v] }
