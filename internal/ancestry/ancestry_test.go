package ancestry

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// isAncestorRef walks parent pointers — the ground truth.
func isAncestorRef(f *graph.Forest, a, b int) bool {
	for v := b; v != -1; v = f.Parent[v] {
		if v == a {
			return true
		}
	}
	return false
}

func TestAgainstParentWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(80)
		g := workload.ErdosRenyi(n, 0.08, trial%2 == 0, rng)
		f := graph.SpanningForest(g)
		l := Build(f)
		for q := 0; q < 300; q++ {
			a, b := rng.Intn(n), rng.Intn(n)
			got := l.Of(a).IsAncestorOf(l.Of(b))
			want := isAncestorRef(f, a, b)
			if got != want {
				t.Fatalf("trial %d: IsAncestorOf(%d,%d) = %v, want %v", trial, a, b, got, want)
			}
		}
	}
}

func TestCompare(t *testing.T) {
	// Path tree: 0 -> 1 -> 2.
	g := graph.New(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	f := graph.SpanningForest(g)
	l := Build(f)
	if c := Compare(l.Of(0), l.Of(2)); c != 1 {
		t.Errorf("Compare(root, leaf) = %d, want 1", c)
	}
	if c := Compare(l.Of(2), l.Of(0)); c != -1 {
		t.Errorf("Compare(leaf, root) = %d, want -1", c)
	}
	if c := Compare(l.Of(1), l.Of(1)); c != 0 {
		t.Errorf("Compare(v, v) = %d, want 0", c)
	}
}

func TestSiblingsUnrelated(t *testing.T) {
	// Star: center 0 with leaves 1..4.
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		if _, err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	l := Build(graph.SpanningForest(g))
	for a := 1; a < 5; a++ {
		for b := 1; b < 5; b++ {
			if a == b {
				continue
			}
			if Compare(l.Of(a), l.Of(b)) != 0 {
				t.Errorf("leaves %d,%d should be unrelated", a, b)
			}
		}
	}
}

func TestCrossComponent(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {2, 3}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	l := Build(graph.SpanningForest(g))
	if l.Of(0).Root == l.Of(2).Root {
		t.Error("distinct components must have distinct root ids")
	}
	if l.Of(0).IsAncestorOf(l.Of(3)) || Compare(l.Of(0), l.Of(3)) != 0 {
		t.Error("cross-component vertices must be unrelated")
	}
}

func TestLabelUniquenessAndByPre(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := workload.ErdosRenyi(64, 0.1, true, rng)
	f := graph.SpanningForest(g)
	l := Build(f)
	seen := map[uint32]bool{}
	for v := 0; v < g.N(); v++ {
		lab := l.Of(v)
		if !lab.Valid() {
			t.Fatalf("vertex %d has invalid label %+v", v, lab)
		}
		if seen[lab.Pre] {
			t.Fatalf("duplicate preorder %d", lab.Pre)
		}
		seen[lab.Pre] = true
		if l.ByPre[lab.Pre] != v {
			t.Fatalf("ByPre round trip failed for %d", v)
		}
	}
}

func TestSubtreeIntervalSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.ErdosRenyi(50, 0.1, true, rng)
	f := graph.SpanningForest(g)
	l := Build(f)
	// Subtree size from labels must match a direct count of descendants.
	size := make([]int, g.N())
	for v := range size {
		for u := 0; u < g.N(); u++ {
			if isAncestorRef(f, v, u) {
				size[v]++
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		lab := l.Of(v)
		got := int(lab.Post-lab.Pre) + 1
		if got != size[v] {
			t.Fatalf("subtree size of %d = %d from labels, want %d", v, got, size[v])
		}
	}
}

func TestZeroLabelInvalid(t *testing.T) {
	var l Label
	if l.Valid() {
		t.Error("zero label must be invalid")
	}
}
