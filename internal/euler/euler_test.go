package euler

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func buildAll(t *testing.T, g *graph.Graph) (*graph.Forest, *Tour, []Point) {
	t.Helper()
	f := graph.SpanningForest(g)
	tour := Build(f)
	return f, tour, EmbedNonTree(g, f, tour)
}

func TestTourBasicInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := workload.ErdosRenyi(60, 0.1, true, rng)
	f, tour, _ := buildAll(t, g)
	n := g.N()
	// 2(n - #roots) directed edges.
	if int(tour.Len) != 2*(n-len(f.Roots)) {
		t.Fatalf("tour length = %d, want %d", tour.Len, 2*(n-len(f.Roots)))
	}
	seen := map[int32]bool{}
	for v := 0; v < n; v++ {
		if f.Parent[v] == -1 {
			if tour.C[v] != 0 || tour.UpPos[v] != 0 {
				t.Fatalf("root %d must have zero coordinates", v)
			}
			continue
		}
		if tour.C[v] < 1 || tour.C[v] > tour.Len || tour.UpPos[v] < 1 || tour.UpPos[v] > tour.Len {
			t.Fatalf("vertex %d coordinates out of range: %d, %d", v, tour.C[v], tour.UpPos[v])
		}
		// The downward edge precedes the upward edge.
		if tour.C[v] >= tour.UpPos[v] {
			t.Fatalf("vertex %d: down %d must precede up %d", v, tour.C[v], tour.UpPos[v])
		}
		for _, p := range []int32{tour.C[v], tour.UpPos[v]} {
			if seen[p] {
				t.Fatalf("duplicate tour position %d", p)
			}
			seen[p] = true
		}
	}
}

func TestTourNesting(t *testing.T) {
	// The interval [C[v], UpPos[v]] of a child nests strictly inside its
	// parent's interval — that is what makes the geometry work.
	rng := rand.New(rand.NewSource(2))
	g := workload.ErdosRenyi(80, 0.06, true, rng)
	f, tour, _ := buildAll(t, g)
	for v := 0; v < g.N(); v++ {
		p := f.Parent[v]
		if p == -1 || f.Parent[p] == -1 {
			continue
		}
		if !(tour.C[p] < tour.C[v] && tour.UpPos[v] < tour.UpPos[p]) {
			t.Fatalf("child %d interval [%d,%d] not nested in parent %d interval [%d,%d]",
				v, tour.C[v], tour.UpPos[v], p, tour.C[p], tour.UpPos[p])
		}
	}
}

// TestLemma3 verifies the paper's Lemma 3 exhaustively over random vertex
// subsets: a non-tree edge is outgoing of S if and only if its planar point
// lies in the symmetric-difference region of the directed boundary.
func TestLemma3(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(60)
		g := workload.ErdosRenyi(n, 0.15, true, rng)
		f, tour, pts := buildAll(t, g)
		for subset := 0; subset < 40; subset++ {
			inS := make([]bool, n)
			for v := range inS {
				inS[v] = rng.Intn(2) == 0
			}
			boundary := DirectedBoundary(f, tour, inS)
			for _, pt := range pts {
				e := g.Edges[pt.Edge]
				outgoing := inS[e.U] != inS[e.V]
				inRegion := CutRegionContains(boundary, pt.X, pt.Y)
				if outgoing != inRegion {
					t.Fatalf("trial %d: edge (%d,%d) at (%d,%d): outgoing=%v inRegion=%v (|S|=%d)",
						trial, e.U, e.V, pt.X, pt.Y, outgoing, inRegion, countTrue(inS))
				}
			}
		}
	}
}

// TestLemma9 verifies the parity statement of Lemma 9: for S containing the
// root, |ET(c(v)) ∩ ∂T⃗(S)| is even exactly when v ∈ S.
func TestLemma9(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(50)
		g := workload.ErdosRenyi(n, 0.1, true, rng)
		f, tour, _ := buildAll(t, g)
		root := f.Roots[0]
		for subset := 0; subset < 30; subset++ {
			inS := make([]bool, n)
			inS[root] = true
			for v := range inS {
				if v != root {
					inS[v] = rng.Intn(2) == 0
				}
			}
			boundary := DirectedBoundary(f, tour, inS)
			for v := 0; v < n; v++ {
				if v == root {
					continue
				}
				even := countLE(boundary, tour.C[v])%2 == 0
				if even != inS[v] {
					t.Fatalf("trial %d: vertex %d parity even=%v but inS=%v", trial, v, even, inS[v])
				}
			}
		}
	}
}

func TestEmbedNonTreePointsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := workload.ErdosRenyi(50, 0.2, true, rng)
	f, _, pts := buildAll(t, g)
	nonTree := 0
	for e := range g.Edges {
		if !f.IsTreeEdge[e] {
			nonTree++
		}
	}
	if len(pts) != nonTree {
		t.Fatalf("points = %d, want %d", len(pts), nonTree)
	}
	for _, p := range pts {
		if p.X >= p.Y {
			t.Fatalf("point (%d,%d) not strictly ordered", p.X, p.Y)
		}
	}
}

func TestCountLE(t *testing.T) {
	sorted := []int32{2, 4, 4, 9}
	cases := []struct {
		v    int32
		want int
	}{{1, 0}, {2, 1}, {3, 1}, {4, 3}, {8, 3}, {9, 4}, {10, 4}}
	for _, c := range cases {
		if got := countLE(sorted, c.v); got != c.want {
			t.Errorf("countLE(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func countTrue(b []bool) int {
	n := 0
	for _, x := range b {
		if x {
			n++
		}
	}
	return n
}
