// Package euler implements the Euler-tour structure of Duan–Pettie that the
// paper uses to give cutsets a geometric form (§4.3, §7.5): every undirected
// tree edge is replaced by two opposite directed edges, the tour orders all
// directed edges, and each non-root vertex v receives the one-dimensional
// coordinate c(v) — the tour position of the edge arriving from its parent.
// A non-tree edge (u,v) then becomes the planar point (c(u), c(v)) with
// x < y, and Lemma 3 states that the outgoing non-tree edges of any vertex
// set S are exactly the points in a "checkered" symmetric difference of
// axis-aligned halfspaces determined by ∂T(S). That geometry is what the
// ε-net sparsification in internal/epsnet consumes.
package euler

import "repro/internal/graph"

// Tour holds the Euler-tour coordinates of a rooted forest.
type Tour struct {
	// C[v] is the tour position (1-based, global across the forest) of
	// the directed edge parent(v) → v, or 0 for roots.
	C []int32
	// UpPos[v] is the tour position of the directed edge v → parent(v),
	// or 0 for roots.
	UpPos []int32
	// Len is the total number of directed edges in the tour.
	Len int32
}

// Build computes the Euler tour of forest f, visiting children in
// Forest.Children order (deterministic). Runs in O(n).
func Build(f *graph.Forest) *Tour {
	n := len(f.Parent)
	t := &Tour{
		C:     make([]int32, n),
		UpPos: make([]int32, n),
	}
	pos := int32(0)
	type frame struct {
		v   int
		idx int
	}
	stack := make([]frame, 0, 64)
	for _, root := range f.Roots {
		stack = append(stack[:0], frame{v: root})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.idx < len(f.Children[top.v]) {
				c := f.Children[top.v][top.idx]
				top.idx++
				pos++
				t.C[c] = pos
				stack = append(stack, frame{v: c})
				continue
			}
			if p := f.Parent[top.v]; p != -1 {
				pos++
				t.UpPos[top.v] = pos
			}
			stack = stack[:len(stack)-1]
		}
	}
	t.Len = pos
	return t
}

// Point is the planar embedding of a non-tree edge: X < Y are the Euler
// coordinates of its endpoints; Edge is the edge index in the host graph.
type Point struct {
	X, Y int32
	Edge int
}

// EmbedNonTree maps every non-tree edge of g (under forest f) to its planar
// point. Non-tree edges incident to a root would receive coordinate 0; they
// cannot occur because a root's non-tree neighbors are non-roots and both
// endpoints of a non-tree edge are non-roots or the edge would be a tree
// edge — except for a non-tree edge touching the root itself, whose root
// endpoint has c = 0. The geometry still works: halfspace membership tests
// use c(v) ≥ a with a ≥ 1, so coordinate 0 is simply "left of everything",
// matching the fact that the root is never strictly inside any fragment
// interval.
func EmbedNonTree(g *graph.Graph, f *graph.Forest, t *Tour) []Point {
	var pts []Point
	for e, edge := range g.Edges {
		if f.IsTreeEdge[e] {
			continue
		}
		x, y := t.C[edge.U], t.C[edge.V]
		if x > y {
			x, y = y, x
		}
		pts = append(pts, Point{X: x, Y: y, Edge: e})
	}
	return pts
}

// DirectedBoundary returns the sorted tour positions of all directed tree
// edges crossing the cut (S, V∖S): for each tree edge with exactly one
// endpoint in S, both of its directed versions contribute (∂_{T⃗}(S) in the
// paper). inS must have one entry per vertex. Used by the Lemma 3 / Lemma 9
// validators and by tests of the sparsification hierarchy.
func DirectedBoundary(f *graph.Forest, t *Tour, inS []bool) []int32 {
	var out []int32
	for v, p := range f.Parent {
		if p == -1 {
			continue
		}
		if inS[v] != inS[p] {
			out = append(out, t.C[v], t.UpPos[v])
		}
	}
	sortInt32(out)
	return out
}

// CutRegionContains evaluates the right-hand side of Lemma 3 for one point:
// whether (x, y) lies in the symmetric difference of the halfspaces
// {X ≥ c(e)} and {Y ≥ c(e)} over the directed boundary edges. boundary must
// be sorted ascending.
func CutRegionContains(boundary []int32, x, y int32) bool {
	cnt := countLE(boundary, x) + countLE(boundary, y)
	return cnt%2 == 1
}

// countLE returns how many sorted values are ≤ v.
func countLE(sorted []int32, v int32) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func sortInt32(a []int32) {
	// Insertion sort: boundary lists have at most 2|∂T(S)| ≤ 2f entries
	// in production use; test helpers tolerate the quadratic corner.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
