package graph

import (
	"container/heap"
	"sort"
)

// ConnectedUnder reports whether s and t are connected in g − F, where F is
// a set of edge indices. It is the exact ground truth the labeling schemes
// are validated against.
func ConnectedUnder(g *Graph, faults map[int]bool, s, t int) bool {
	if s == t {
		return true
	}
	visited := make([]bool, g.N())
	visited[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(u) {
			if faults[h.Edge] || visited[h.To] {
				continue
			}
			if h.To == t {
				return true
			}
			visited[h.To] = true
			queue = append(queue, h.To)
		}
	}
	return false
}

// Components returns a component id per vertex of g − F and the component
// count.
func Components(g *Graph, faults map[int]bool) ([]int, int) {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	var queue []int
	for r := 0; r < g.N(); r++ {
		if comp[r] != -1 {
			continue
		}
		comp[r] = count
		queue = append(queue[:0], r)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, h := range g.Adj(u) {
				if faults[h.Edge] || comp[h.To] != -1 {
					continue
				}
				comp[h.To] = count
				queue = append(queue, h.To)
			}
		}
		count++
	}
	return comp, count
}

// HopDistancesUnder returns the single-source hop distances from s in g − F,
// with -1 for unreachable vertices.
func HopDistancesUnder(g *Graph, faults map[int]bool, s int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(u) {
			if faults[h.Edge] || dist[h.To] != -1 {
				continue
			}
			dist[h.To] = dist[u] + 1
			queue = append(queue, h.To)
		}
	}
	return dist
}

// distItem is a Dijkstra priority-queue entry.
type distItem struct {
	v int
	d int64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// WeightedDistancesUnder returns single-source shortest-path distances in
// g − F under edge weights (Dijkstra), with -1 for unreachable vertices.
func WeightedDistancesUnder(g *Graph, faults map[int]bool, s int) []int64 {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	h := &distHeap{{v: s, d: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, half := range g.Adj(it.v) {
			if faults[half.Edge] {
				continue
			}
			nd := it.d + g.Weight(half.Edge)
			if dist[half.To] == -1 || nd < dist[half.To] {
				dist[half.To] = nd
				heap.Push(h, distItem{v: half.To, d: nd})
			}
		}
	}
	return dist
}

// BottleneckDistanceUnder returns the minimax edge weight over all s–t paths
// in g − F (the fault-tolerant bottleneck distance), or -1 if disconnected.
// Computed by Kruskal-style union of edges in increasing weight order.
func BottleneckDistanceUnder(g *Graph, faults map[int]bool, s, t int) int64 {
	if s == t {
		return 0
	}
	order := make([]int, 0, g.M())
	for e := range g.Edges {
		if !faults[e] {
			order = append(order, e)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return g.Weight(order[i]) < g.Weight(order[j])
	})
	d := newDSULite(g.N())
	for _, e := range order {
		d.union(g.Edges[e].U, g.Edges[e].V)
		if d.find(s) == d.find(t) {
			return g.Weight(e)
		}
	}
	return -1
}

// dsuLite is a minimal union-find local to this file so that graph stays a
// leaf package with no internal imports.
type dsuLite struct{ p []int }

func newDSULite(n int) *dsuLite {
	d := &dsuLite{p: make([]int, n)}
	for i := range d.p {
		d.p[i] = i
	}
	return d
}

func (d *dsuLite) find(x int) int {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}

func (d *dsuLite) union(a, b int) { d.p[d.find(a)] = d.find(b) }
