package graph

import (
	"errors"
	"testing"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(4)
	if _, err := g.AddEdge(0, 0); !errors.Is(err, ErrBadEdge) {
		t.Errorf("self-loop: err = %v, want ErrBadEdge", err)
	}
	if _, err := g.AddEdge(0, 4); !errors.Is(err, ErrBadEdge) {
		t.Errorf("out of range: err = %v, want ErrBadEdge", err)
	}
	if _, err := g.AddEdge(-1, 2); !errors.Is(err, ErrBadEdge) {
		t.Errorf("negative: err = %v, want ErrBadEdge", err)
	}
	idx, err := g.AddEdge(2, 1)
	if err != nil {
		t.Fatalf("AddEdge(2,1): %v", err)
	}
	if idx != 0 {
		t.Errorf("first edge index = %d, want 0", idx)
	}
	if _, err := g.AddEdge(1, 2); !errors.Is(err, ErrBadEdge) {
		t.Errorf("duplicate (either orientation): err = %v, want ErrBadEdge", err)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("HasEdge should be orientation-independent")
	}
	if g.EdgeIndex(2, 1) != 0 {
		t.Errorf("EdgeIndex(2,1) = %d, want 0", g.EdgeIndex(2, 1))
	}
	if g.EdgeIndex(0, 3) != -1 {
		t.Errorf("EdgeIndex(0,3) = %d, want -1", g.EdgeIndex(0, 3))
	}
}

func TestEdgeNormalization(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	e := g.Edges[0]
	if e.U != 0 || e.V != 2 {
		t.Errorf("edge stored as (%d,%d), want (0,2)", e.U, e.V)
	}
	if e.Other(0) != 2 || e.Other(2) != 0 {
		t.Error("Other endpoint lookup broken")
	}
}

func TestWeights(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.Weight(0) != 1 {
		t.Errorf("unweighted Weight = %d, want 1", g.Weight(0))
	}
	if _, err := g.AddWeightedEdge(1, 2, 7); err != nil {
		t.Fatal(err)
	}
	if g.Weight(0) != 1 || g.Weight(1) != 7 {
		t.Errorf("weights = %d,%d, want 1,7", g.Weight(0), g.Weight(1))
	}
	if _, err := g.AddWeightedEdge(0, 2, 0); !errors.Is(err, ErrBadEdge) {
		t.Errorf("zero weight: err = %v, want ErrBadEdge", err)
	}
}

func TestSpanningForestPath(t *testing.T) {
	// Path 0-1-2-3 plus isolated vertex 4 and component {5,6}.
	g := New(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {5, 6}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	f := SpanningForest(g)
	if len(f.Roots) != 3 {
		t.Fatalf("roots = %v, want 3 components", f.Roots)
	}
	if f.Comp[0] != f.Comp[3] {
		t.Error("0 and 3 should share a component")
	}
	if f.Comp[0] == f.Comp[4] || f.Comp[0] == f.Comp[5] {
		t.Error("components should be distinct")
	}
	// Every non-root has a parent in the same component and the parent
	// edge actually joins them.
	for v := 0; v < 7; v++ {
		p := f.Parent[v]
		if p == -1 {
			continue
		}
		if f.Comp[p] != f.Comp[v] {
			t.Errorf("parent %d of %d in different component", p, v)
		}
		e := g.Edges[f.ParentEdge[v]]
		if (e.U != v || e.V != p) && (e.U != p || e.V != v) {
			t.Errorf("parent edge of %d does not join %d-%d", v, v, p)
		}
	}
	// Tree edge count = n - #components (for vertices present).
	tree := 0
	for _, b := range f.IsTreeEdge {
		if b {
			tree++
		}
	}
	if tree != 7-3 {
		t.Errorf("tree edges = %d, want 4", tree)
	}
}

func TestConnectedUnder(t *testing.T) {
	// Cycle 0-1-2-3-0 with chord 0-2.
	g := New(4)
	var idx [5]int
	for i, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}} {
		j, err := g.AddEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		idx[i] = j
	}
	if !ConnectedUnder(g, nil, 1, 3) {
		t.Error("connected without faults")
	}
	// Remove 1-2 and 0-1: vertex 1 isolated.
	faults := map[int]bool{idx[0]: true, idx[1]: true}
	if ConnectedUnder(g, faults, 1, 3) {
		t.Error("1 should be isolated")
	}
	if !ConnectedUnder(g, faults, 2, 3) {
		t.Error("2-3 should survive")
	}
	if !ConnectedUnder(g, faults, 1, 1) {
		t.Error("s == t is always connected")
	}
}

func TestComponentsAndDistances(t *testing.T) {
	g := New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	comp, cnt := Components(g, nil)
	if cnt != 2 {
		t.Fatalf("components = %d, want 2", cnt)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Errorf("component labels wrong: %v", comp)
	}
	d := HopDistancesUnder(g, nil, 0)
	want := []int{0, 1, 2, -1, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestWeightedAndBottleneckDistances(t *testing.T) {
	// Triangle with a heavy shortcut: 0-1 (w=10), 1-2 (w=1), 0-2 (w=2).
	g := New(3)
	type we struct {
		u, v int
		w    int64
	}
	var ids [3]int
	for i, e := range []we{{0, 1, 10}, {1, 2, 1}, {0, 2, 2}} {
		j, err := g.AddWeightedEdge(e.u, e.v, e.w)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j
	}
	d := WeightedDistancesUnder(g, nil, 0)
	if d[1] != 3 { // 0-2-1 = 2+1
		t.Errorf("d(0,1) = %d, want 3", d[1])
	}
	if b := BottleneckDistanceUnder(g, nil, 0, 1); b != 2 {
		t.Errorf("bottleneck(0,1) = %d, want 2", b)
	}
	faults := map[int]bool{ids[2]: true} // remove 0-2
	if b := BottleneckDistanceUnder(g, faults, 0, 1); b != 10 {
		t.Errorf("bottleneck(0,1) under fault = %d, want 10", b)
	}
	faults[ids[0]] = true // also remove 0-1
	if b := BottleneckDistanceUnder(g, faults, 0, 1); b != -1 {
		t.Errorf("bottleneck(0,1) disconnected = %d, want -1", b)
	}
	if b := BottleneckDistanceUnder(g, nil, 2, 2); b != 0 {
		t.Errorf("bottleneck(v,v) = %d, want 0", b)
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	if _, err := g.AddWeightedEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if _, err := c.AddWeightedEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || c.M() != 2 {
		t.Errorf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
	if c.Weight(0) != 5 {
		t.Errorf("clone weight = %d, want 5", c.Weight(0))
	}
}
