// Package graph provides the undirected-graph substrate shared by every
// other component: adjacency storage, spanning-forest construction, and
// exact (non-labeled) connectivity and distance queries used as ground truth
// in tests and experiments.
//
// Graphs are simple (no self-loops, no parallel edges): edge identifiers in
// the labeling schemes are derived from endpoint preorders (paper §3.1), so
// parallel edges would collide. The auxiliary-graph transform of §3.2 never
// introduces parallels.
package graph

import (
	"errors"
	"fmt"
)

// Half is one endpoint's view of an incident edge.
type Half struct {
	To   int // neighbor vertex
	Edge int // index into Graph.Edges
}

// Edge is an undirected edge between U and V with U < V.
type Edge struct {
	U, V int
}

// Other returns the endpoint of e that is not x.
func (e Edge) Other(x int) int {
	if x == e.U {
		return e.V
	}
	return e.U
}

// Graph is an undirected simple graph with optional positive integer edge
// weights. The zero value is an empty graph; use New to create one with a
// fixed vertex count.
type Graph struct {
	n       int
	Edges   []Edge
	Weights []int64 // nil for unweighted graphs; else len(Weights) == len(Edges)
	adj     [][]Half
	seen    map[Edge]struct{}
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:    n,
		adj:  make([][]Half, n),
		seen: make(map[Edge]struct{}),
	}
}

// ErrBadEdge is returned for self-loops, duplicate edges, or out-of-range
// endpoints.
var ErrBadEdge = errors.New("graph: invalid edge")

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// AddEdge inserts the undirected edge {u, v} and returns its index.
func (g *Graph) AddEdge(u, v int) (int, error) {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return -1, fmt.Errorf("%w: endpoint out of range (%d,%d) with n=%d", ErrBadEdge, u, v, g.n)
	}
	if u == v {
		return -1, fmt.Errorf("%w: self-loop at %d", ErrBadEdge, u)
	}
	if u > v {
		u, v = v, u
	}
	e := Edge{U: u, V: v}
	if _, dup := g.seen[e]; dup {
		return -1, fmt.Errorf("%w: duplicate edge (%d,%d)", ErrBadEdge, u, v)
	}
	g.seen[e] = struct{}{}
	idx := len(g.Edges)
	g.Edges = append(g.Edges, e)
	g.adj[u] = append(g.adj[u], Half{To: v, Edge: idx})
	g.adj[v] = append(g.adj[v], Half{To: u, Edge: idx})
	if g.Weights != nil {
		g.Weights = append(g.Weights, 1)
	}
	return idx, nil
}

// AddWeightedEdge inserts {u, v} with weight w > 0.
func (g *Graph) AddWeightedEdge(u, v int, w int64) (int, error) {
	if w <= 0 {
		return -1, fmt.Errorf("%w: non-positive weight %d", ErrBadEdge, w)
	}
	if g.Weights == nil {
		g.Weights = make([]int64, len(g.Edges))
		for i := range g.Weights {
			g.Weights[i] = 1
		}
	}
	idx, err := g.AddEdge(u, v)
	if err != nil {
		return -1, err
	}
	g.Weights[idx] = w
	return idx, nil
}

// Weight returns the weight of edge e (1 for unweighted graphs).
func (g *Graph) Weight(e int) int64 {
	if g.Weights == nil {
		return 1
	}
	return g.Weights[e]
}

// HasEdge reports whether {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := g.seen[Edge{U: u, V: v}]
	return ok
}

// EdgeIndex returns the index of edge {u,v}, or -1 if absent.
func (g *Graph) EdgeIndex(u, v int) int {
	if !g.HasEdge(u, v) {
		return -1
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return h.Edge
		}
	}
	return -1
}

// Adj returns the adjacency list of u. The slice must not be modified.
func (g *Graph) Adj(u int) []Half { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// RemoveEdge deletes the undirected edge {u, v} and returns the index it
// occupied. Every edge inserted after it shifts down by one index (Edges,
// Weights, and adjacency entries are all remapped), exactly as if the edge
// had never been inserted. Runs in O(n + m).
func (g *Graph) RemoveEdge(u, v int) (int, error) {
	if u > v {
		u, v = v, u
	}
	e := Edge{U: u, V: v}
	if _, ok := g.seen[e]; !ok {
		return -1, fmt.Errorf("%w: no edge (%d,%d) to remove", ErrBadEdge, u, v)
	}
	idx := g.EdgeIndex(u, v)
	delete(g.seen, e)
	g.Edges = append(g.Edges[:idx], g.Edges[idx+1:]...)
	if g.Weights != nil {
		g.Weights = append(g.Weights[:idx], g.Weights[idx+1:]...)
	}
	for w := range g.adj {
		hs := g.adj[w][:0]
		for _, h := range g.adj[w] {
			if h.Edge == idx {
				continue
			}
			if h.Edge > idx {
				h.Edge--
			}
			hs = append(hs, h)
		}
		g.adj[w] = hs
	}
	return idx, nil
}

// Clone returns a deep copy of g. The copy shares no storage with the
// original: adjacency lists are backed by a single fresh slab with exact
// capacities, so later appends to either graph never alias.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		n:     g.n,
		Edges: append([]Edge(nil), g.Edges...),
		adj:   make([][]Half, g.n),
		seen:  make(map[Edge]struct{}, len(g.Edges)),
	}
	if g.Weights != nil {
		out.Weights = append([]int64(nil), g.Weights...)
	}
	total := 0
	for v := range g.adj {
		total += len(g.adj[v])
	}
	slab := make([]Half, 0, total)
	for v := range g.adj {
		start := len(slab)
		slab = append(slab, g.adj[v]...)
		out.adj[v] = slab[start:len(slab):len(slab)]
	}
	for _, e := range g.Edges {
		out.seen[e] = struct{}{}
	}
	return out
}
