package graph

// Forest is a rooted spanning forest of a graph: one rooted tree per
// connected component. It fixes the tree T that the whole labeling framework
// is built around (paper §3).
type Forest struct {
	// Parent[v] is v's parent vertex, or -1 for roots.
	Parent []int
	// ParentEdge[v] is the index (into Graph.Edges) of the edge to the
	// parent, or -1 for roots.
	ParentEdge []int
	// Roots lists the root of each component in discovery order.
	Roots []int
	// Comp[v] is the index into Roots of v's component.
	Comp []int
	// IsTreeEdge[e] reports whether edge e belongs to the forest.
	IsTreeEdge []bool
	// Children[v] lists v's children in deterministic (insertion) order.
	Children [][]int
	// BFSOrder lists vertices in BFS discovery order (roots first per
	// component); every vertex appears after its parent.
	BFSOrder []int
}

// SpanningForest builds a BFS spanning forest of g. BFS keeps tree depth at
// most the diameter, which matters for the CONGEST construction (§8) and
// keeps fragment structures shallow.
func SpanningForest(g *Graph) *Forest {
	n := g.N()
	f := &Forest{
		Parent:     make([]int, n),
		ParentEdge: make([]int, n),
		Comp:       make([]int, n),
		IsTreeEdge: make([]bool, g.M()),
		Children:   make([][]int, n),
		BFSOrder:   make([]int, 0, n),
	}
	for v := range f.Parent {
		f.Parent[v] = -1
		f.ParentEdge[v] = -1
		f.Comp[v] = -1
	}
	queue := make([]int, 0, n)
	for r := 0; r < n; r++ {
		if f.Comp[r] != -1 {
			continue
		}
		comp := len(f.Roots)
		f.Roots = append(f.Roots, r)
		f.Comp[r] = comp
		queue = queue[:0]
		queue = append(queue, r)
		f.BFSOrder = append(f.BFSOrder, r)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, h := range g.Adj(u) {
				if f.Comp[h.To] != -1 {
					continue
				}
				f.Comp[h.To] = comp
				f.Parent[h.To] = u
				f.ParentEdge[h.To] = h.Edge
				f.IsTreeEdge[h.Edge] = true
				f.Children[u] = append(f.Children[u], h.To)
				f.BFSOrder = append(f.BFSOrder, h.To)
				queue = append(queue, h.To)
			}
		}
	}
	return f
}

// Depths returns the depth of each vertex in its tree (roots at 0).
func (f *Forest) Depths() []int {
	d := make([]int, len(f.Parent))
	for _, v := range f.BFSOrder {
		if f.Parent[v] >= 0 {
			d[v] = d[f.Parent[v]] + 1
		}
	}
	return d
}
