package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/rs"
	"repro/internal/workload"
)

// parityParams is one Build configuration per scheme kind, sized so that
// even the polynomial-time greedy hierarchy finishes quickly.
func parityParams() []Params {
	return []Params{
		{MaxFaults: 3, Kind: KindDetNetFind},
		{MaxFaults: 2, Kind: KindDetGreedy},
		{MaxFaults: 3, Kind: KindRandRS, Seed: 5},
		{MaxFaults: 3, Kind: KindAGM, Seed: 6},
	}
}

// TestParallelSequentialLabelParity is the acceptance gate of the parallel
// construction pipeline: for every scheme kind, a Build run on a forced
// multi-worker pool must produce byte-identical marshaled labels to a Build
// run on the sequential (single-worker) path.
func TestParallelSequentialLabelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := workload.ErdosRenyi(96, 0.09, true, rng)
	for _, p := range parityParams() {
		p := p
		t.Run(p.Kind.String(), func(t *testing.T) {
			defer func(old int) { buildWorkers = old }(buildWorkers)
			buildWorkers = 1
			seq := mustBuild(t, g, p)
			buildWorkers = 4
			par := mustBuild(t, g, p)

			for v := 0; v < g.N(); v++ {
				sb := MarshalVertexLabel(seq.VertexLabel(v))
				pb := MarshalVertexLabel(par.VertexLabel(v))
				if !bytes.Equal(sb, pb) {
					t.Fatalf("vertex %d: parallel label differs from sequential", v)
				}
			}
			for e := 0; e < g.M(); e++ {
				sb := MarshalEdgeLabel(seq.EdgeLabel(e))
				pb := MarshalEdgeLabel(par.EdgeLabel(e))
				if !bytes.Equal(sb, pb) {
					t.Fatalf("edge %d: parallel label differs from sequential", e)
				}
			}
		})
	}
}

// TestBuildMatchesDefinitionalReference re-derives every Reed–Solomon
// outdetect payload with the pre-overhaul algorithm — per level, XOR each
// level edge's power sums into both endpoint blocks with rs.Sketch.AddEdge,
// densely fold child blocks into parents in reverse preorder, copy every
// child-subtree block — and checks the optimized pipeline (power arena,
// dirty folding, leaf shortcut) reproduces it word for word.
func TestBuildMatchesDefinitionalReference(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := workload.ErdosRenyi(80, 0.1, true, rng)
	for _, p := range []Params{
		{MaxFaults: 2, Kind: KindDetNetFind},
		{MaxFaults: 2, Kind: KindRandRS, Seed: 7},
	} {
		p := p
		t.Run(p.Kind.String(), func(t *testing.T) {
			s := mustBuild(t, g, p)
			a := buildAux(g, s.Forest, 0)
			spec := s.Spec()
			stride := 2 * spec.K
			nPrime := len(a.tprime.Parent)
			preOrder := make([]int, nPrime)
			for v := 0; v < nPrime; v++ {
				preOrder[a.anc.Of(v).Pre-1] = v
			}
			slotOf := map[int]int{}
			for j, e := range a.nonTree {
				slotOf[e] = j
			}
			want := make([][]uint64, g.M())
			for e := range want {
				want[e] = make([]uint64, spec.Words())
			}
			acc := make([]uint64, nPrime*stride)
			for lvl, level := range s.Hierarchy.Levels {
				for i := range acc {
					acc[i] = 0
				}
				for _, e := range level {
					j := slotOf[e]
					id := a.idOf(j)
					rs.Sketch(acc[a.xVertex[j]*stride : (a.xVertex[j]+1)*stride]).AddEdge(id)
					rs.Sketch(acc[a.farEnd[j]*stride : (a.farEnd[j]+1)*stride]).AddEdge(id)
				}
				for i := nPrime - 1; i >= 0; i-- {
					v := preOrder[i]
					par := a.tprime.Parent[v]
					if par < 0 {
						continue
					}
					for w := 0; w < stride; w++ {
						acc[par*stride+w] ^= acc[v*stride+w]
					}
				}
				for e := range g.Edges {
					child := a.childOf[e]
					copy(want[e][lvl*stride:(lvl+1)*stride], acc[child*stride:(child+1)*stride])
				}
			}
			for e := range g.Edges {
				got := s.EdgeLabel(e).Out
				for w := range want[e] {
					if got[w] != want[e][w] {
						t.Fatalf("%s: edge %d word %d: got %#x, reference %#x", p.Kind, e, w, got[w], want[e][w])
					}
				}
			}
		})
	}
}
