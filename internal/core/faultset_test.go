package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// TestFaultSetMatchesConnectedAllGraphs is the reuse-parity suite over the
// exhaustive 5-vertex corpus (see allgraphs_test.go): for every labeled
// graph on 5 vertices and every scheme variant, a compiled FaultSet probed
// repeatedly must answer exactly like the one-shot decoder — and both must
// match ground truth. AGM runs with a high repetition count so its whp
// failure mode cannot make the parity flaky.
func TestFaultSetMatchesConnectedAllGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive graph enumeration")
	}
	const n = 5
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	kinds := []struct {
		name string
		// stride subsamples the 2^10 graph corpus for the slower kinds;
		// det-netfind (the headline scheme) covers every mask.
		stride int
		params Params
	}{
		{"det-netfind", 1, Params{MaxFaults: 1, Kind: KindDetNetFind}},
		{"det-greedy", 5, Params{MaxFaults: 1, Kind: KindDetGreedy}},
		{"rand-rs", 5, Params{MaxFaults: 1, Kind: KindRandRS, Seed: 6}},
		{"agm", 5, Params{MaxFaults: 1, Kind: KindAGM, Seed: 7, AGMReps: 48}},
	}
	for _, kr := range kinds {
		kr := kr
		t.Run(kr.name, func(t *testing.T) {
			t.Parallel()
			for mask := 0; mask < 1<<len(pairs); mask += kr.stride {
				g := graph.New(n)
				for i, p := range pairs {
					if mask>>i&1 == 1 {
						if _, err := g.AddEdge(p[0], p[1]); err != nil {
							t.Fatal(err)
						}
					}
				}
				s, err := Build(g, kr.params)
				if err != nil {
					t.Fatalf("mask %b: %v", mask, err)
				}
				for e := 0; e < g.M(); e++ {
					fl := []EdgeLabel{s.EdgeLabel(e)}
					fs, err := CompileFaults(fl)
					if err != nil {
						t.Fatalf("mask %b fault %d: CompileFaults: %v", mask, e, err)
					}
					set := workload.FaultSet([]int{e})
					for sv := 0; sv < n; sv++ {
						for tv := sv + 1; tv < n; tv++ {
							want := graph.ConnectedUnder(g, set, sv, tv)
							one, err := Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
							if err != nil {
								t.Fatalf("mask %b: Connected: %v", mask, err)
							}
							got, err := fs.Connected(s.VertexLabel(sv), s.VertexLabel(tv))
							if err != nil {
								t.Fatalf("mask %b: FaultSet.Connected: %v", mask, err)
							}
							if got != one || got != want {
								t.Fatalf("mask %b: probe(%d,%d,F={%d}): faultset=%v one-shot=%v truth=%v",
									mask, sv, tv, e, got, one, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestFaultSetReuseParityRandom exercises larger random instances across all
// four variants: several fault sets per scheme, each compiled once and
// probed many times, compared against the one-shot decoder, the batch API,
// and the session view.
func TestFaultSetReuseParityRandom(t *testing.T) {
	kinds := []struct {
		name   string
		params Params
	}{
		{"det-netfind", Params{MaxFaults: 4, Kind: KindDetNetFind}},
		{"det-greedy", Params{MaxFaults: 4, Kind: KindDetGreedy}},
		{"rand-rs", Params{MaxFaults: 4, Kind: KindRandRS, Seed: 16}},
		{"agm", Params{MaxFaults: 4, Kind: KindAGM, Seed: 17, AGMReps: 64}},
	}
	for _, kr := range kinds {
		kr := kr
		t.Run(kr.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(21))
			g := workload.ErdosRenyi(80, 0.06, true, rng)
			s := mustBuild(t, g, kr.params)
			for trial := 0; trial < 8; trial++ {
				faults := workload.TreeEdgeFaults(g, s.Forest, 1+rng.Intn(4), rng)
				fl := make([]EdgeLabel, len(faults))
				for i, e := range faults {
					fl[i] = s.EdgeLabel(e)
				}
				fs, err := CompileFaults(fl)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				sess, err := fs.Session()
				if err != nil {
					t.Fatalf("trial %d: Session: %v", trial, err)
				}
				var batch [][2]VertexLabel
				var wantBatch []bool
				for q := 0; q < 60; q++ {
					sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
					want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
					got, err := fs.Connected(s.VertexLabel(sv), s.VertexLabel(tv))
					if err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					sGot, err := sess.Connected(s.VertexLabel(sv), s.VertexLabel(tv))
					if err != nil {
						t.Fatalf("trial %d: session: %v", trial, err)
					}
					if got != want || sGot != want {
						t.Fatalf("trial %d: probe(%d,%d) faultset=%v session=%v want %v",
							trial, sv, tv, got, sGot, want)
					}
					batch = append(batch, [2]VertexLabel{s.VertexLabel(sv), s.VertexLabel(tv)})
					wantBatch = append(wantBatch, want)
				}
				gotBatch, err := fs.ConnectedBatch(batch)
				if err != nil {
					t.Fatalf("trial %d: batch: %v", trial, err)
				}
				for i := range gotBatch {
					if gotBatch[i] != wantBatch[i] {
						t.Fatalf("trial %d: batch[%d] = %v, want %v", trial, i, gotBatch[i], wantBatch[i])
					}
				}
			}
		})
	}
}

// TestFaultSetConcurrentProbes hammers one shared FaultSet from many
// goroutines — the serving scenario the redesign exists for. Run under
// `go test -race` this doubles as the engine's data-race check: the closure
// is computed once under sync.Once and read-only afterwards.
func TestFaultSetConcurrentProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := workload.ErdosRenyi(200, 0.04, true, rng)
	const f = 4
	s := mustBuild(t, g, Params{MaxFaults: f})
	faults := workload.TreeEdgeFaults(g, s.Forest, f, rng)
	fl := make([]EdgeLabel, len(faults))
	for i, e := range faults {
		fl[i] = s.EdgeLabel(e)
	}
	fs, err := CompileFaults(fl)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		want[v] = graph.ConnectedUnder(g, workload.FaultSet(faults), 0, v)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				tv := (i*7 + w*13) % g.N()
				got, err := fs.Connected(s.VertexLabel(0), s.VertexLabel(tv))
				if err != nil {
					errs <- err
					return
				}
				if got != want[tv] {
					errs <- errors.New("concurrent probe mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestFaultSetProbeZeroAllocs asserts the pooled steady state: once a
// component's closure is cached, a probe allocates nothing.
func TestFaultSetProbeZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := workload.ErdosRenyi(256, 0.04, true, rng)
	const f = 3
	s := mustBuild(t, g, Params{MaxFaults: f})
	faults := workload.TreeEdgeFaults(g, s.Forest, f, rng)
	fl := make([]EdgeLabel, len(faults))
	for i, e := range faults {
		fl[i] = s.EdgeLabel(e)
	}
	fs, err := CompileFaults(fl)
	if err != nil {
		t.Fatal(err)
	}
	sv, tv := s.VertexLabel(3), s.VertexLabel(200)
	if _, err := fs.Connected(sv, tv); err != nil { // warm the closure
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := fs.Connected(sv, tv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state probe allocates %.1f objects/op, want 0", allocs)
	}
}

// twoComponentFixture builds a graph whose spanning forest has two trees: a
// 4-cycle on {0..3} and a 4-path on {4..7}, returning the scheme plus the
// edge ids of one cycle edge (harmless) and the path's middle edge (a
// bridge whose failure disconnects {4,5} from {6,7}).
func twoComponentFixture(t *testing.T) (*Scheme, *graph.Graph, int, int) {
	t.Helper()
	g := graph.New(8)
	cycle := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	for _, e := range cycle {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	var bridge int
	for _, e := range [][2]int{{4, 5}, {5, 6}, {6, 7}} {
		id, err := g.AddEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if e == [2]int{5, 6} {
			bridge = id
		}
	}
	s := mustBuild(t, g, Params{MaxFaults: 2})
	return s, g, 0, bridge
}

// TestSessionHonorsFaultsInOtherComponents is the multi-component
// regression: the historical anchor-bound session silently dropped faults
// whose component differed from the anchor's, answering "connected" for
// vertex pairs that the dropped faults disconnect. Faults are split across
// the two spanning-forest trees; the session is anchored in the cycle
// component, yet must honor the bridge fault in the path component.
func TestSessionHonorsFaultsInOtherComponents(t *testing.T) {
	s, g, cycleEdge, bridge := twoComponentFixture(t)
	fl := []EdgeLabel{s.EdgeLabel(cycleEdge), s.EdgeLabel(bridge)}
	sess, err := NewSession(s.VertexLabel(0), fl) // anchor in the cycle
	if err != nil {
		t.Fatal(err)
	}
	set := workload.FaultSet([]int{cycleEdge, bridge})
	cases := [][2]int{{4, 7}, {4, 5}, {6, 7}, {5, 7}, {0, 2}, {0, 5}, {1, 3}}
	for _, c := range cases {
		want := graph.ConnectedUnder(g, set, c[0], c[1])
		got, err := sess.Connected(s.VertexLabel(c[0]), s.VertexLabel(c[1]))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("session probe (%d,%d) = %v, want %v (fault in non-anchor component dropped?)",
				c[0], c[1], got, want)
		}
	}
	if !testingConnectedFalse(t, sess, s, 4, 7) {
		t.Fatalf("bridge fault in non-anchor component not honored")
	}
	// Shape accounting sums over both touched components: 2 fragments in
	// the cycle tree + 2 in the path tree; the cycle closes back up (1
	// component), the path stays split (2).
	if frag := sess.Fragments(); frag != 4 {
		t.Fatalf("Fragments() = %d, want 4", frag)
	}
	if comps := sess.Components(); comps != 3 {
		t.Fatalf("Components() = %d, want 3", comps)
	}
}

func testingConnectedFalse(t *testing.T, sess *Session, s *Scheme, a, b int) bool {
	t.Helper()
	got, err := sess.Connected(s.VertexLabel(a), s.VertexLabel(b))
	if err != nil {
		t.Fatal(err)
	}
	return !got
}

// TestFaultSetMultiComponentProbes checks the FaultSet probe path directly
// on faults split across two spanning-forest trees.
func TestFaultSetMultiComponentProbes(t *testing.T) {
	s, g, cycleEdge, bridge := twoComponentFixture(t)
	fs, err := CompileFaults([]EdgeLabel{s.EdgeLabel(cycleEdge), s.EdgeLabel(bridge)})
	if err != nil {
		t.Fatal(err)
	}
	if fs.FaultComponents() != 2 {
		t.Fatalf("FaultComponents() = %d, want 2", fs.FaultComponents())
	}
	if fs.Faults() != 2 {
		t.Fatalf("Faults() = %d, want 2", fs.Faults())
	}
	set := workload.FaultSet([]int{cycleEdge, bridge})
	for a := 0; a < g.N(); a++ {
		for b := a + 1; b < g.N(); b++ {
			want := graph.ConnectedUnder(g, set, a, b)
			got, err := fs.Connected(s.VertexLabel(a), s.VertexLabel(b))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("fs.Connected(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestCompileFaultsErrors pins the compile-time validation: global budget
// across components, mixed tokens, and duplicate collapsing.
func TestCompileFaultsErrors(t *testing.T) {
	s, _, cycleEdge, bridge := twoComponentFixture(t)
	// Budget is global: MaxFaults=2 fixture, 3 distinct faults across two
	// components must overflow.
	fl := []EdgeLabel{s.EdgeLabel(cycleEdge), s.EdgeLabel(1), s.EdgeLabel(bridge)}
	if _, err := CompileFaults(fl); !errors.Is(err, ErrTooManyFaults) {
		t.Fatalf("err = %v, want ErrTooManyFaults", err)
	}
	// Duplicates collapse before the budget check.
	dup := []EdgeLabel{s.EdgeLabel(cycleEdge), s.EdgeLabel(cycleEdge), s.EdgeLabel(bridge)}
	fs, err := CompileFaults(dup)
	if err != nil {
		t.Fatalf("duplicate faults must dedupe, got %v", err)
	}
	if fs.Faults() != 2 {
		t.Fatalf("deduped Faults() = %d, want 2", fs.Faults())
	}
	// Mixed tokens are rejected at compile time.
	other := mustBuild(t, workload.Cycle(5), Params{MaxFaults: 2})
	mixed := []EdgeLabel{s.EdgeLabel(cycleEdge), other.EdgeLabel(0)}
	if _, err := CompileFaults(mixed); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("err = %v, want ErrLabelMismatch", err)
	}
	// Probing with labels from another scheme is rejected.
	fs2, err := CompileFaults([]EdgeLabel{s.EdgeLabel(cycleEdge)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Connected(other.VertexLabel(0), other.VertexLabel(1)); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("err = %v, want ErrLabelMismatch", err)
	}
	// The empty FaultSet degenerates to same-component connectivity.
	empty, err := CompileFaults(nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := empty.Connected(s.VertexLabel(0), s.VertexLabel(2))
	if err != nil || !ok {
		t.Fatalf("empty fault set same component: ok=%v err=%v", ok, err)
	}
	ok, err = empty.Connected(s.VertexLabel(0), s.VertexLabel(5))
	if err != nil || ok {
		t.Fatalf("empty fault set cross component: ok=%v err=%v", ok, err)
	}
}
