package core

import (
	"sync/atomic"
)

// labelArena is the lazy backing store of a version-3 snapshot: the two
// structure-of-arrays label sections — an offsets table plus one contiguous
// byte arena per label kind — aliased zero-copy from the snapshot bytes,
// with per-label decode caches. Loading a v3 snapshot touches no label
// bytes; a label is decoded the first time something asks for it, after
// which the decoded form is cached and every later access is one atomic
// load. Concurrent first touches may decode the same label twice; both
// decodes produce identical values and the CAS keeps exactly one, so the
// arena is safe from concurrent readers without locks.
//
// Lazy decode preserves the token/generation safety story of eager loading,
// just shifted to first touch: the snapshot header's token was already
// re-verified against the graph and parameters at load time, and each
// label's own stored token (plus fault budget and spec for edge labels) is
// checked against that header the moment the label is decoded. A label
// whose bytes are corrupt — or whose header disagrees — decodes to a
// poisoned label whose token matches neither the scheme token nor any other
// poisoned label, so every query that touches it fails fast with
// ErrLabelMismatch instead of answering from garbage. The generation stamp,
// which the wire encoding omits, is restored on decode exactly as the eager
// path restores it, so ErrStaleLabel classification across generations is
// unchanged.
type labelArena struct {
	token     uint64
	gen       uint64
	maxFaults int
	spec      OutSpec

	// vertOff/edgeOff have n+1 and m+1 entries; label i's wire form is
	// bytes[off[i]:off[i+1]]. Both arenas alias the snapshot input.
	vertOff   []uint64
	vertBytes []byte
	edgeOff   []uint64
	edgeBytes []byte

	verts []atomic.Pointer[VertexLabel]
	edges []atomic.Pointer[EdgeLabel]
}

// poisonToken derives the token of a failed lazy decode: distinct from the
// scheme token (top bit of the index space is untouched by real tokens only
// by accident, so the whole word is complemented) and distinct per label
// slot, so two poisoned labels can never validate against each other either.
// The low bit separates the vertex and edge poison spaces.
func (a *labelArena) poisonToken(idx int, edge bool) uint64 {
	t := ^a.token ^ (uint64(idx) << 1)
	if edge {
		t ^= 1
	}
	return t
}

func (a *labelArena) vertex(v int) VertexLabel {
	if p := a.verts[v].Load(); p != nil {
		return *p
	}
	l, err := UnmarshalVertexLabel(a.vertBytes[a.vertOff[v]:a.vertOff[v+1]])
	if err != nil || l.Token != a.token {
		l = VertexLabel{Token: a.poisonToken(v, false)}
	}
	l.Gen = a.gen
	a.verts[v].CompareAndSwap(nil, &l)
	return *a.verts[v].Load()
}

func (a *labelArena) edge(e int) EdgeLabel {
	if p := a.edges[e].Load(); p != nil {
		return *p
	}
	l, err := UnmarshalEdgeLabel(a.edgeBytes[a.edgeOff[e]:a.edgeOff[e+1]])
	if err != nil || l.Token != a.token || l.MaxFaults != a.maxFaults || l.Spec != a.spec {
		l = EdgeLabel{Token: a.poisonToken(e, true)}
	}
	l.Gen = a.gen
	a.edges[e].CompareAndSwap(nil, &l)
	return *a.edges[e].Load()
}

// maxEdgeLabelBits is the arena's O(m) answer to MaxEdgeLabelBits: the wire
// size of a label is exactly its arena extent, so no label needs decoding.
func (a *labelArena) maxEdgeLabelBits() int {
	maxBytes := uint64(0)
	for e := range a.edges {
		if n := a.edgeOff[e+1] - a.edgeOff[e]; n > maxBytes {
			maxBytes = n
		}
	}
	return int(8 * maxBytes)
}

// resident reports how many labels of each kind have been decoded so far —
// an observability hook for the serving layer and the lazy-load tests.
func (a *labelArena) resident() (verts, edges int) {
	for i := range a.verts {
		if a.verts[i].Load() != nil {
			verts++
		}
	}
	for i := range a.edges {
		if a.edges[i].Load() != nil {
			edges++
		}
	}
	return verts, edges
}
