package core

import (
	"fmt"
	"sort"

	"repro/internal/ancestry"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/rs"
	"repro/internal/sketch"
)

// Dynamic is the construction-side engine behind the mutable network API:
// it maintains a labeling scheme under batched edge insertions and
// deletions, recomputing only what an update dirties.
//
// Every commit produces a fresh immutable *Scheme (copy-on-write: label
// headers are re-stamped, but only labels whose content actually changed
// get new payload storage), so readers holding the previous generation keep
// a fully consistent view and generations can be swapped atomically by the
// caller. Dynamic itself is not safe for concurrent use; the public
// ftc.Network wrapper serializes commits and publishes schemes atomically.
//
// The incremental fast path applies to updates that leave the spanning
// forest intact — inserting an edge whose endpoints are already connected,
// or deleting a non-tree edge. Such an update touches exactly the labels of
// the tree edges on the two endpoint-to-LCA paths (whose subtree aggregates
// gain or lose the edge's outdetect row; GF(2) linearity makes deletion the
// same XOR as insertion) plus the updated edge itself. Everything else —
// component merges, tree-edge deletions, per-vertex slot exhaustion, or
// churn past the hierarchy's invalidation budget — falls back to a full
// (parallel) rebuild, which also resets the budget.
type Dynamic struct {
	params Params
	gen    uint64
	cur    *Scheme

	// churn counts incremental updates absorbed since the last full
	// rebuild; the hierarchy invalidation predicate bounds it.
	churn int
	// builtM is the edge count the current AGM sketch shape was sized for.
	builtM int

	// Subdivision-slot allocator over the reserved preorder blocks of the
	// current ancestry numbering. Vertex v's block is the AuxSlack slots
	// just below its Post; resNext[v] is the next never-used slot
	// (0 = not yet initialized from the label), freed[v] stacks recycled
	// slots. Reset on every full rebuild.
	resNext []uint32
	freed   map[int][]uint32
}

// DefaultAuxSlack is the per-vertex preorder headroom a Dynamic reserves
// when Params.AuxSlack is unset: up to that many incrementally-inserted
// edges can attach at any one vertex between full rebuilds.
const DefaultAuxSlack = 8

// Update is one staged mutation of the edge set.
type Update struct {
	Add  bool // true = insert {U, V}, false = delete {U, V}
	U, V int
}

// CommitReport describes one committed batch.
type CommitReport struct {
	// Gen is the generation the commit produced; Token the scheme token
	// every label of that generation is stamped with.
	Gen   uint64
	Token uint64
	// Incremental reports whether the fast path applied; Reason names the
	// fallback trigger when it did not.
	Incremental bool
	Reason      string
	// Relabeled lists the post-commit indices of edges whose label content
	// changed beyond the token/generation restamp: the dirtied tree-path
	// edges plus the inserted edges. nil with Incremental == false means
	// every label was rebuilt.
	Relabeled []int
	// Removed lists the pre-commit indices of deleted edges, ascending.
	Removed []int
	// Remap maps every pre-commit edge index to its post-commit index
	// (-1 for deleted edges); nil when indices did not shift.
	Remap []int
}

// NewDynamic builds the initial scheme (generation 1) for g. Params are as
// for Build; AuxSlack defaults to DefaultAuxSlack.
func NewDynamic(g *graph.Graph, p Params) (*Dynamic, error) {
	if p.AuxSlack == 0 {
		p.AuxSlack = DefaultAuxSlack
	}
	s, err := buildWith(g, p, 1)
	if err != nil {
		return nil, err
	}
	return &Dynamic{
		params:  s.params, // defaults resolved by buildWith
		gen:     1,
		cur:     s,
		builtM:  g.M(),
		resNext: make([]uint32, g.N()),
		freed:   map[int][]uint32{},
	}, nil
}

// Scheme returns the current immutable scheme. Schemes returned before the
// latest Commit stay valid and internally consistent; mixing their labels
// with newer generations fails with ErrStaleLabel.
func (d *Dynamic) Scheme() *Scheme { return d.cur }

// Generation returns the current generation (1 after NewDynamic).
func (d *Dynamic) Generation() uint64 { return d.gen }

// Churn returns the incremental updates absorbed since the last rebuild.
func (d *Dynamic) Churn() int { return d.churn }

// slotBlock returns vertex v's reserved preorder block [lo, hi].
func (d *Dynamic) slotBlock(v int) (lo, hi uint32) {
	post := d.cur.vertexLabels[v].Anc.Post
	return post - uint32(d.params.AuxSlack) + 1, post
}

// plan is the validated, classified form of one batch: every update
// resolved against the evolving edge set, with subdivision slots
// pre-assigned for insertions so the apply phase cannot fail. (Deletions
// need no slot here: the apply phase reads the freed slot off the edge's
// own label.)
type plan struct {
	ops    []Update
	slots  []uint32 // per add op: the assigned subdivision slot
	reason string   // non-empty forces a full rebuild
}

// classify validates the batch and decides incremental vs rebuild. It
// mutates nothing.
func (d *Dynamic) classify(batch []Update) (*plan, error) {
	p := &plan{ops: batch, slots: make([]uint32, len(batch))}
	g := d.cur.g
	forest := d.cur.Forest
	n := g.N()
	// Evolving overlay over the committed edge set: +1 added, -1 removed.
	overlay := map[graph.Edge]int8{}
	// Edges added earlier in this batch (whether or not a slot was
	// assigned — a demoted plan stops assigning), for remove-after-add.
	batchAdded := map[graph.Edge]bool{}
	// Per-vertex allocator simulation: recycled slots are popped LIFO off
	// the committed free stack, then never-used slots are taken in order.
	// Slots freed by removes in this same batch become available only at
	// the next commit (the apply phase replays exactly this simulation).
	type simAlloc struct {
		freeLeft int
		next     uint32
	}
	sim := map[int]*simAlloc{}
	getSim := func(v int) *simAlloc {
		a := sim[v]
		if a == nil {
			next := d.resNext[v]
			if next == 0 {
				next, _ = d.slotBlock(v)
			}
			a = &simAlloc{freeLeft: len(d.freed[v]), next: next}
			sim[v] = a
		}
		return a
	}
	demote := func(reason string) {
		if p.reason == "" {
			p.reason = reason
		}
	}
	for i, op := range batch {
		u, v := op.U, op.V
		if u > v {
			u, v = v, u
		}
		if u < 0 || v >= n {
			return nil, fmt.Errorf("core: update %d: endpoint out of range (%d,%d) with n=%d", i, op.U, op.V, n)
		}
		if u == v {
			return nil, fmt.Errorf("core: update %d: self-loop at %d", i, u)
		}
		e := graph.Edge{U: u, V: v}
		live := g.HasEdge(u, v)
		if o := overlay[e]; o > 0 {
			live = true
		} else if o < 0 {
			live = false
		}
		if op.Add {
			if live {
				return nil, fmt.Errorf("core: update %d: edge (%d,%d) already present", i, u, v)
			}
			overlay[e]++
			batchAdded[e] = true
			if forest.Comp[u] != forest.Comp[v] {
				demote(fmt.Sprintf("edge (%d,%d) merges two components", u, v))
				continue
			}
			// Simulate the slot allocator at the attach vertex u (= min).
			a := getSim(u)
			if a.freeLeft > 0 {
				a.freeLeft--
				p.slots[i] = d.freed[u][a.freeLeft]
			} else {
				_, hi := d.slotBlock(u)
				if a.next > hi {
					demote(fmt.Sprintf("vertex %d out of subdivision slots", u))
					continue
				}
				p.slots[i] = a.next
				a.next++
			}
		} else {
			if !live {
				return nil, fmt.Errorf("core: update %d: no edge (%d,%d) to remove", i, u, v)
			}
			overlay[e]--
			if batchAdded[e] {
				continue // added earlier in this batch: non-tree by construction
			}
			idx := g.EdgeIndex(u, v)
			if forest.IsTreeEdge[idx] {
				demote(fmt.Sprintf("edge (%d,%d) is a spanning-tree edge", u, v))
				continue
			}
		}
	}
	if p.reason != "" {
		return p, nil
	}
	// Kind-specific invalidation predicate.
	switch d.cur.spec.Kind {
	case KindAGM:
		// The sketch shape (buckets, reps) was sized for builtM edges;
		// rebuild once the live edge count drifts past ±25%.
		newM := g.M()
		for _, o := range overlay {
			newM += int(o)
		}
		if 4*newM < 3*d.builtM || 4*newM > 5*d.builtM {
			demote(fmt.Sprintf("edge count drifted to %d (sketch sized for %d)", newM, d.builtM))
		}
	default:
		if d.cur.Hierarchy.Invalidated(d.churn, len(batch), d.cur.spec.K) {
			demote(fmt.Sprintf("churn %d+%d exceeds hierarchy budget %d",
				d.churn, len(batch), hierarchy.UpdateBudget(d.cur.spec.K)))
		}
	}
	return p, nil
}

// Commit applies a batch of updates and returns the new generation's
// scheme. On error, no state changes. An empty batch is a no-op that
// returns the current scheme unchanged.
func (d *Dynamic) Commit(batch []Update) (*CommitReport, *Scheme, error) {
	if len(batch) == 0 {
		return &CommitReport{Gen: d.gen, Token: d.cur.token, Incremental: true}, d.cur, nil
	}
	p, err := d.classify(batch)
	if err != nil {
		return nil, nil, err
	}
	if p.reason != "" {
		return d.rebuild(batch, p.reason)
	}
	return d.applyIncremental(p)
}

// rebuild is the fallback path: apply the batch to a graph clone and run
// the full (parallel) construction pipeline at the next generation.
func (d *Dynamic) rebuild(batch []Update, reason string) (*CommitReport, *Scheme, error) {
	gNew := d.cur.g.Clone()
	for i, op := range batch {
		var err error
		if op.Add {
			_, err = gNew.AddEdge(op.U, op.V)
		} else {
			_, err = gNew.RemoveEdge(op.U, op.V)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("core: update %d: %w", i, err)
		}
	}
	s, err := buildWith(gNew, d.params, d.gen+1)
	if err != nil {
		return nil, nil, err
	}
	rep := &CommitReport{
		Gen:    d.gen + 1,
		Token:  s.token,
		Reason: reason,
	}
	rep.Removed, rep.Remap = edgeRemap(d.cur.g, gNew)
	d.gen++
	d.cur = s
	d.churn = 0
	d.builtM = gNew.M()
	d.resNext = make([]uint32, gNew.N())
	d.freed = map[int][]uint32{}
	return rep, s, nil
}

// applyIncremental runs the fast path for a fully incremental plan. The new
// scheme copies label headers but shares every untouched payload with the
// previous generation; dirtied labels get private payload copies before
// their first XOR.
func (d *Dynamic) applyIncremental(p *plan) (*CommitReport, *Scheme, error) {
	old := d.cur
	spec := old.spec
	gNew := old.g.Clone()
	vls := append([]VertexLabel(nil), old.vertexLabels...)
	els := append([]EdgeLabel(nil), old.edgeLabels...)

	hasRemove := false
	for _, op := range p.ops {
		if !op.Add {
			hasRemove = true
		}
	}
	// The forest's structure (parents, children, components) is untouched
	// by incremental updates, so those slices are shared; the per-edge
	// arrays are copied because insertions append to IsTreeEdge and
	// deletions splice and remap both.
	forest := &graph.Forest{
		Parent:     old.Forest.Parent,
		ParentEdge: old.Forest.ParentEdge,
		Roots:      old.Forest.Roots,
		Comp:       old.Forest.Comp,
		IsTreeEdge: append([]bool(nil), old.Forest.IsTreeEdge...),
		Children:   old.Forest.Children,
		BFSOrder:   old.Forest.BFSOrder,
	}
	var h *hierarchy.Hierarchy
	if old.Hierarchy != nil {
		h = &hierarchy.Hierarchy{Levels: append([][]int(nil), old.Hierarchy.Levels...)}
		if hasRemove {
			// Deletions splice and shift edge indices in every level.
			for i := range h.Levels {
				h.Levels[i] = append([]int(nil), h.Levels[i]...)
			}
		} else {
			// Insertions only ever append to level 0.
			h.Levels[0] = append([]int(nil), h.Levels[0]...)
		}
	}
	if hasRemove {
		forest.ParentEdge = append([]int(nil), old.Forest.ParentEdge...)
	}

	words := spec.Words()
	stride := 2 * spec.K
	agm := sketch.Spec{Reps: spec.Reps, Buckets: spec.Buckets, Seed: spec.Seed}
	// deltaFor computes the outdetect contribution of one edge id: the
	// Reed–Solomon power row (one hierarchy-level segment) or the AGM
	// sketch unit block (the full payload).
	deltaFor := func(id uint64) []uint64 {
		if spec.Kind == KindAGM {
			blk := make([]uint64, words)
			agm.AddEdge(blk, id)
			return blk
		}
		row := make([]uint64, stride)
		rs.PowerRow(row, id)
		return row
	}

	// dirtyChild marks tree-path labels by their (stable) child vertex;
	// privatized tracks which of them already got a fresh payload copy.
	dirtyChild := map[int]bool{}
	privatized := map[int]bool{}
	// xorPath folds delta into the segment at segOff of every tree edge on
	// the w → LCA(w, other) path (the edges whose child subtree contains
	// exactly one of the update's endpoints).
	xorPath := func(w, other int, delta []uint64, segOff int) {
		for !vls[w].Anc.IsAncestorOf(vls[other].Anc) {
			e := forest.ParentEdge[w]
			if !privatized[w] {
				els[e].Out = append([]uint64(nil), els[e].Out...)
				privatized[w] = true
			}
			xorInto(els[e].Out[segOff:segOff+len(delta)], delta)
			dirtyChild[w] = true
			w = forest.Parent[w]
		}
	}

	var addedEdges []graph.Edge
	alloc := map[int]int{} // slots consumed per vertex (applied on success)
	var freedSlots []struct {
		v    int
		slot uint32
	}
	for i, op := range p.ops {
		u, v := op.U, op.V
		if u > v {
			u, v = v, u
		}
		if op.Add {
			idx, err := gNew.AddEdge(u, v)
			if err != nil {
				return nil, nil, fmt.Errorf("core: internal: incremental add: %w", err)
			}
			slot := p.slots[i]
			ancU := vls[u].Anc
			id := edgeID(slot, vls[v].Anc.Pre)
			delta := deltaFor(id)
			out := make([]uint64, words)
			copy(out, delta) // the new leaf's subtree aggregate is its own row
			els = append(els, EdgeLabel{
				MaxFaults: d.params.MaxFaults,
				Spec:      spec,
				Parent:    ancU,
				Child:     ancestryLeaf(slot, ancU.Root),
				Out:       out,
			})
			if idx != len(els)-1 {
				return nil, nil, fmt.Errorf("core: internal: edge index %d != label slot %d", idx, len(els)-1)
			}
			if h != nil {
				h.Levels[0] = append(h.Levels[0], idx)
			}
			forest.IsTreeEdge = append(forest.IsTreeEdge, false)
			xorPath(u, v, delta, 0)
			xorPath(v, u, delta, 0)
			addedEdges = append(addedEdges, graph.Edge{U: u, V: v})
			alloc[u]++
		} else {
			idx := gNew.EdgeIndex(u, v)
			slot := els[idx].Child.Pre
			id := edgeID(slot, vls[v].Anc.Pre)
			delta := deltaFor(id)
			if spec.Kind == KindAGM {
				xorPath(u, v, delta, 0)
				xorPath(v, u, delta, 0)
			} else {
				for lvl := range h.Levels {
					if pos := sort.SearchInts(h.Levels[lvl], idx); pos < len(h.Levels[lvl]) && h.Levels[lvl][pos] == idx {
						off := lvl * stride
						xorPath(u, v, delta, off)
						xorPath(v, u, delta, off)
					}
				}
			}
			// Drop the edge everywhere and shift the indices above it.
			if _, err := gNew.RemoveEdge(u, v); err != nil {
				return nil, nil, fmt.Errorf("core: internal: incremental remove: %w", err)
			}
			els = append(els[:idx], els[idx+1:]...)
			if h != nil {
				for lvl := range h.Levels {
					h.Levels[lvl] = spliceShift(h.Levels[lvl], idx)
				}
			}
			forest.IsTreeEdge = append(forest.IsTreeEdge[:idx], forest.IsTreeEdge[idx+1:]...)
			for w := range forest.ParentEdge {
				if forest.ParentEdge[w] > idx {
					forest.ParentEdge[w]--
				}
			}
			for j := range addedEdges { // keep batch-add bookkeeping exact
				if addedEdges[j] == (graph.Edge{U: u, V: v}) {
					addedEdges = append(addedEdges[:j], addedEdges[j+1:]...)
					break
				}
			}
			freedSlots = append(freedSlots, struct {
				v    int
				slot uint32
			}{u, slot})
		}
	}

	s := &Scheme{
		params:       d.params,
		gen:          d.gen + 1,
		spec:         spec,
		n:            old.n,
		g:            gNew,
		vertexLabels: vls,
		edgeLabels:   els,
		Forest:       forest,
		Hierarchy:    h,
	}
	s.token = s.computeToken(gNew)
	for i := range vls {
		vls[i].Token, vls[i].Gen = s.token, s.gen
	}
	for i := range els {
		els[i].Token, els[i].Gen = s.token, s.gen
	}

	rep := &CommitReport{
		Gen:         s.gen,
		Token:       s.token,
		Incremental: true,
	}
	if hasRemove {
		rep.Removed, rep.Remap = edgeRemap(old.g, gNew)
	}
	for w := range dirtyChild {
		rep.Relabeled = append(rep.Relabeled, forest.ParentEdge[w])
	}
	for _, e := range addedEdges {
		rep.Relabeled = append(rep.Relabeled, gNew.EdgeIndex(e.U, e.V))
	}
	sort.Ints(rep.Relabeled)

	// Commit the allocator state only now that nothing can fail. This
	// replays the classify-phase simulation exactly: pop recycled slots
	// LIFO first, then advance the never-used cursor.
	for v, k := range alloc {
		fl := d.freed[v]
		pop := k
		if pop > len(fl) {
			pop = len(fl)
		}
		if pop > 0 {
			d.freed[v] = fl[:len(fl)-pop]
			k -= pop
		}
		if k > 0 {
			next := d.resNext[v]
			if next == 0 {
				next, _ = d.slotBlock(v)
			}
			d.resNext[v] = next + uint32(k)
		}
	}
	for _, f := range freedSlots {
		d.freed[f.v] = append(d.freed[f.v], f.slot)
	}
	d.gen = s.gen
	d.cur = s
	d.churn += len(p.ops)
	return rep, s, nil
}

// ancestryLeaf is the ancestry label of a fresh subdivision leaf occupying
// a single reserved preorder slot.
func ancestryLeaf(slot, root uint32) ancestry.Label {
	return ancestry.Label{Pre: slot, Post: slot, Root: root}
}

// spliceShift removes idx from the sorted index slice (if present) and
// decrements every larger entry, mirroring graph.RemoveEdge's reindexing.
func spliceShift(xs []int, idx int) []int {
	out := xs[:0]
	for _, x := range xs {
		switch {
		case x == idx:
		case x > idx:
			out = append(out, x-1)
		default:
			out = append(out, x)
		}
	}
	return out
}

// edgeRemap computes, for every pre-commit edge of old, its index in new
// (or -1 when deleted), plus the ascending list of deleted indices. Returns
// (nil, nil) remap when no edge was deleted and order is unchanged.
func edgeRemap(old, newG *graph.Graph) (removed, remap []int) {
	identity := true
	remap = make([]int, old.M())
	for i, e := range old.Edges {
		if newG.HasEdge(e.U, e.V) {
			remap[i] = newG.EdgeIndex(e.U, e.V)
			if remap[i] != i {
				identity = false
			}
		} else {
			remap[i] = -1
			identity = false
			removed = append(removed, i)
		}
	}
	if identity {
		return nil, nil
	}
	return removed, remap
}
