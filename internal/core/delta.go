package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/hierarchy"
)

// Generation deltas are the replication currency of the serving tier: one
// committed Dynamic batch, exported as exactly the information a replica
// needs to transform its copy of generation g-1 into a byte-identical copy
// of generation g without re-running any label construction.
//
// The incremental commit path already computes the minimal change set — the
// GF(2) XOR rewrites of the tree-path labels plus the fresh labels of
// inserted edges (DESIGN.md §3.10) — so an incremental delta carries the
// ordered mutation batch (replayed on the replica's graph to reproduce the
// exact post-commit edge indexing), one whole-payload XOR mask per dirtied
// surviving label, and one full label per inserted edge. XOR composes:
// however many hierarchy-level segments a label's payload was rewritten in,
// new = old ⊕ (new ⊕ old) recovers it in one pass, so the replica never
// needs the hierarchy to replay labels.
//
// A commit that fell back to a full rebuild exports a Full marker instead:
// rebuilt labels share nothing with the previous generation, so shipping
// them would be shipping a snapshot — the replica refetches one.
//
// Soundness of the replay (asserted byte-for-byte by the tests against a
// fresh build): the incremental path touches only edge-label payloads and
// the global token/generation stamps. Vertex ancestry labels, the parent and
// child ancestry of surviving edge labels, and the spanning forest are all
// invariant under an incremental commit, so copying them forward plus
// applying the XOR masks and the shipped fresh labels reproduces the
// primary's labels exactly; the recomputed token fingerprint (graph,
// parameters, generation) must then match the shipped one, which rejects
// any divergence in the replayed graph before a wrong label can be served.

// GenDelta is one committed generation, exported for replication.
type GenDelta struct {
	// PrevGen is the generation this delta applies on top of; Gen the
	// generation it produces; Token the new generation's scheme token
	// (verified by ApplyDelta against its own recomputation).
	PrevGen, Gen, Token uint64

	// Full marks a commit that fell back to a full rebuild: the delta
	// carries no labels and the replica must refetch a snapshot. Reason is
	// the fallback trigger, for operator visibility.
	Full   bool
	Reason string

	// Ops is the committed batch in order. Replaying it on the previous
	// generation's graph reproduces the post-commit edge indexing exactly
	// (insertions append, deletions splice and shift).
	Ops []Update

	// DirtyIdx lists post-commit indices of surviving edges whose payload
	// changed; DirtyXor[i] is the whole-payload XOR mask (new ⊕ old) of
	// DirtyIdx[i].
	DirtyIdx []int
	DirtyXor [][]uint64

	// AddedIdx lists post-commit indices of edges inserted by this batch
	// (and not removed again within it); AddedLabels[i] is the complete
	// fresh label of AddedIdx[i].
	AddedIdx    []int
	AddedLabels []EdgeLabel
}

// Replication sentinel errors; test with errors.Is.
var (
	// ErrFullRebuild is returned by ApplyDelta for a Full marker: the
	// generation cannot be reached by delta replay and the caller must
	// refetch a snapshot.
	ErrFullRebuild = errors.New("core: generation delta is a full-rebuild marker")
	// ErrDeltaGap is returned when a delta does not apply on top of the
	// scheme's generation (records were missed or replayed out of order).
	ErrDeltaGap = errors.New("core: generation delta does not extend this scheme")
	// ErrDeltaMismatch is returned when a delta is internally inconsistent
	// with the scheme it is applied to — the replica has diverged and must
	// refetch a snapshot rather than serve doubtful labels.
	ErrDeltaMismatch = errors.New("core: generation delta disagrees with scheme")
)

// CommitWithDelta is Commit, additionally exporting the committed batch as
// a GenDelta for log shipping. A no-op commit (empty batch) returns a nil
// delta — there is no generation change to ship.
func (d *Dynamic) CommitWithDelta(batch []Update) (*CommitReport, *GenDelta, *Scheme, error) {
	old := d.cur
	rep, s, err := d.Commit(batch)
	if err != nil {
		return nil, nil, nil, err
	}
	if s == old {
		return rep, nil, s, nil
	}
	return rep, buildDelta(old, s, rep, batch), s, nil
}

// buildDelta diffs two adjacent generations into the delta record replicas
// replay. old and new are the schemes before and after the commit described
// by rep; batch is the committed op sequence.
func buildDelta(old, new *Scheme, rep *CommitReport, batch []Update) *GenDelta {
	g := &GenDelta{
		PrevGen: old.gen,
		Gen:     rep.Gen,
		Token:   rep.Token,
		Ops:     append([]Update(nil), batch...),
	}
	if !rep.Incremental {
		g.Full = true
		g.Reason = rep.Reason
		return g
	}
	// Invert the remap so each relabeled post-commit index resolves to its
	// pre-commit label (or to "inserted" when it has no preimage).
	var preOf func(post int) int
	if rep.Remap == nil {
		preOf = func(post int) int {
			if post < old.g.M() {
				return post
			}
			return -1
		}
	} else {
		inv := make([]int, new.g.M())
		for i := range inv {
			inv[i] = -1
		}
		for pre, post := range rep.Remap {
			if post >= 0 {
				inv[post] = pre
			}
		}
		preOf = func(post int) int { return inv[post] }
	}
	for _, e := range rep.Relabeled {
		pre := preOf(e)
		if pre < 0 {
			// Inserted edge: ship the complete fresh label.
			l := new.EdgeLabel(e)
			l.Out = append([]uint64(nil), l.Out...)
			g.AddedIdx = append(g.AddedIdx, e)
			g.AddedLabels = append(g.AddedLabels, l)
			continue
		}
		oldOut := old.EdgeLabel(pre).Out
		newOut := new.EdgeLabel(e).Out
		mask := make([]uint64, len(newOut))
		for w := range mask {
			mask[w] = newOut[w] ^ oldOut[w]
		}
		g.DirtyIdx = append(g.DirtyIdx, e)
		g.DirtyXor = append(g.DirtyXor, mask)
	}
	return g
}

// ApplyDelta replays one generation delta onto a scheme (typically a
// replica's snapshot-loaded copy of the primary's previous generation),
// returning a fresh immutable scheme at the delta's generation whose labels
// are byte-identical to the primary's, plus a CommitReport equivalent to
// the primary's (so the serving layer can run the same selective cache
// evict/rebase sweep). s itself is never mutated; like every commit, the
// new generation shares untouched label payloads with the old one.
//
// A lazily-loaded scheme is materialized by the first ApplyDelta — every
// label is decoded once so the new generation owns plain label slices. The
// O(m) cost is paid once per replica process, not per record.
func ApplyDelta(s *Scheme, d *GenDelta) (*CommitReport, *Scheme, error) {
	if d.Full {
		return nil, nil, fmt.Errorf("%w: generation %d (%s)", ErrFullRebuild, d.Gen, d.Reason)
	}
	if s.gen != d.PrevGen {
		return nil, nil, fmt.Errorf("%w: scheme at generation %d, delta extends %d",
			ErrDeltaGap, s.gen, d.PrevGen)
	}
	if d.Gen != d.PrevGen+1 {
		return nil, nil, fmt.Errorf("%w: delta %d -> %d is not one generation", ErrDeltaMismatch, d.PrevGen, d.Gen)
	}
	// Replay the op sequence on a graph clone. Insertion appends and
	// deletion splices exactly as the primary's commit did, so edge
	// indices line up by construction; the hierarchy bookkeeping mirrors
	// applyIncremental (inserts join level 0, deletions splice-shift every
	// level) so a replica's scheme stays structurally sound.
	gNew := s.g.Clone()
	var h *hierarchy.Hierarchy
	if s.Hierarchy != nil {
		h = &hierarchy.Hierarchy{Levels: make([][]int, len(s.Hierarchy.Levels))}
		for i, lvl := range s.Hierarchy.Levels {
			h.Levels[i] = append([]int(nil), lvl...)
		}
	}
	for i, op := range d.Ops {
		if op.Add {
			idx, err := gNew.AddEdge(op.U, op.V)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: op %d: %v", ErrDeltaMismatch, i, err)
			}
			if h != nil {
				h.Levels[0] = append(h.Levels[0], idx)
			}
		} else {
			u, v := op.U, op.V
			if u > v {
				u, v = v, u
			}
			idx := gNew.EdgeIndex(u, v)
			if _, err := gNew.RemoveEdge(u, v); err != nil {
				return nil, nil, fmt.Errorf("%w: op %d: %v", ErrDeltaMismatch, i, err)
			}
			if h != nil {
				for lvl := range h.Levels {
					h.Levels[lvl] = spliceShift(h.Levels[lvl], idx)
				}
			}
		}
	}
	removed, remap := edgeRemap(s.g, gNew)

	words := s.spec.Words()
	els := make([]EdgeLabel, gNew.M())
	filled := make([]bool, gNew.M())
	for pre := 0; pre < s.g.M(); pre++ {
		post := pre
		if remap != nil {
			post = remap[pre]
			if post < 0 {
				continue
			}
		}
		els[post] = s.EdgeLabel(pre)
		filled[post] = true
	}
	for i, idx := range d.DirtyIdx {
		if idx < 0 || idx >= len(els) || !filled[idx] {
			return nil, nil, fmt.Errorf("%w: dirty index %d has no surviving label", ErrDeltaMismatch, idx)
		}
		mask := d.DirtyXor[i]
		if len(mask) != words || len(els[idx].Out) != words {
			return nil, nil, fmt.Errorf("%w: dirty mask %d has %d words, spec wants %d", ErrDeltaMismatch, idx, len(mask), words)
		}
		out := make([]uint64, words)
		for w := range out {
			out[w] = els[idx].Out[w] ^ mask[w]
		}
		els[idx].Out = out
	}
	for i, idx := range d.AddedIdx {
		if idx < 0 || idx >= len(els) || filled[idx] {
			return nil, nil, fmt.Errorf("%w: added index %d is not a fresh slot", ErrDeltaMismatch, idx)
		}
		l := d.AddedLabels[i]
		if l.Spec != s.spec || len(l.Out) != words {
			return nil, nil, fmt.Errorf("%w: added label %d disagrees with scheme spec", ErrDeltaMismatch, idx)
		}
		l.Out = append([]uint64(nil), l.Out...)
		l.MaxFaults = s.params.MaxFaults
		els[idx] = l
		filled[idx] = true
	}
	for idx, ok := range filled {
		if !ok {
			return nil, nil, fmt.Errorf("%w: edge %d has no label after replay", ErrDeltaMismatch, idx)
		}
	}

	vls := make([]VertexLabel, s.n)
	for v := range vls {
		vls[v] = s.VertexLabel(v)
	}

	out := &Scheme{
		params:       s.params,
		gen:          d.Gen,
		spec:         s.spec,
		n:            s.n,
		g:            gNew,
		vertexLabels: vls,
		edgeLabels:   els,
		Forest:       graph.SpanningForest(gNew),
		Hierarchy:    h,
	}
	out.token = out.computeToken(gNew)
	if out.token != d.Token {
		return nil, nil, fmt.Errorf("%w: replayed token %#x, shipped %#x (replica diverged)",
			ErrDeltaMismatch, out.token, d.Token)
	}
	for i := range vls {
		vls[i].Token, vls[i].Gen = out.token, out.gen
	}
	for i := range els {
		els[i].Token, els[i].Gen = out.token, out.gen
	}

	rep := &CommitReport{
		Gen:         d.Gen,
		Token:       out.token,
		Incremental: true,
		Relabeled:   relabeledOf(d),
		Removed:     removed,
		Remap:       remap,
	}
	return rep, out, nil
}

// relabeledOf merges a delta's dirty and added indices into the ascending
// Relabeled list a CommitReport carries.
func relabeledOf(d *GenDelta) []int {
	out := make([]int, 0, len(d.DirtyIdx)+len(d.AddedIdx))
	out = append(out, d.DirtyIdx...)
	out = append(out, d.AddedIdx...)
	insertionSort(out)
	return out
}

func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
