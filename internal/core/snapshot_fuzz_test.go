package core

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// FuzzUnmarshalScheme feeds arbitrary bytes to the snapshot decoder:
// corrupted input must produce an error — never a panic or a huge
// allocation — and any accepted input must be canonical (re-marshaling the
// loaded scheme reproduces the input bytes exactly). For version-3 input
// the offsets tables and arena bounds are validated at load; label bytes
// are only reached lazily, so the harness additionally touches every label
// of an accepted scheme: a corrupt arena slot must decode to a poisoned
// label (which every query rejects), never panic or over-allocate.
func FuzzUnmarshalScheme(f *testing.F) {
	for _, p := range []Params{
		{MaxFaults: 1},
		{MaxFaults: 2, Kind: KindRandRS, Seed: 7},
		{MaxFaults: 1, Kind: KindAGM, Seed: 7},
	} {
		s, err := Build(workload.Petersen(), p)
		if err != nil {
			f.Fatal(err)
		}
		for _, version := range []byte{2, 3} {
			data, err := s.MarshalBinaryVersion(version)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			f.Add(data[:len(data)/2])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("FTCSNP"))
	f.Add([]byte("FTCSNP\x01"))
	f.Add([]byte("FTCSNP\x02"))
	f.Add([]byte("FTCSNP\x03"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalScheme(data)
		if err != nil {
			return
		}
		// Touching every label must never panic, whatever the arena holds;
		// MaxEdgeLabelBits exercises the offsets-only path.
		for v := 0; v < s.N(); v++ {
			_ = s.VertexLabel(v)
		}
		for e := 0; e < s.Graph().M(); e++ {
			_ = s.EdgeLabel(e)
		}
		_ = s.MaxEdgeLabelBits()
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted snapshot cannot re-marshal: %v", err)
		}
		if data[6] == SnapshotVersion {
			// Current-version input must be canonical.
			if !bytes.Equal(re, data) {
				t.Fatalf("non-canonical snapshot accepted")
			}
			return
		}
		// Legacy versions re-marshal at the current version; that upgrade
		// must be a fixed point (load → save → load → save is stable).
		s2, err := UnmarshalScheme(re)
		if err != nil {
			t.Fatalf("upgraded snapshot does not load: %v", err)
		}
		re2, err := s2.MarshalBinary()
		if err != nil {
			t.Fatalf("upgraded snapshot cannot re-marshal: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("snapshot upgrade is not a fixed point")
		}
	})
}
