package core

import (
	"testing"

	"repro/internal/workload"
)

// Fuzz targets for the label unmarshalers: arbitrary bytes must never
// panic, and accepted inputs must re-marshal to the same bytes (canonical
// encoding). Under plain `go test` the seed corpus below runs as unit
// tests; `go test -fuzz=FuzzUnmarshalEdgeLabel ./internal/core` explores.

func FuzzUnmarshalVertexLabel(f *testing.F) {
	g := workload.Cycle(5)
	s, err := Build(g, Params{MaxFaults: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(MarshalVertexLabel(s.VertexLabel(0)))
	f.Add([]byte{})
	f.Add([]byte{0x56})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := UnmarshalVertexLabel(data)
		if err != nil {
			return
		}
		re := MarshalVertexLabel(l)
		if string(re) != string(data) {
			t.Fatalf("non-canonical encoding accepted: %x vs %x", data, re)
		}
	})
}

func FuzzUnmarshalEdgeLabel(f *testing.F) {
	g := workload.Cycle(5)
	s, err := Build(g, Params{MaxFaults: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(MarshalEdgeLabel(s.EdgeLabel(0)))
	f.Add([]byte{})
	f.Add([]byte{0x45, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := UnmarshalEdgeLabel(data)
		if err != nil {
			return
		}
		re := MarshalEdgeLabel(l)
		if string(re) != string(data) {
			t.Fatalf("non-canonical encoding accepted")
		}
	})
}

// FuzzDecodeOutgoing feeds arbitrary syndromes to the Reed–Solomon level
// decoder: any input must produce either a clean result or an error — never
// a panic.
func FuzzDecodeOutgoing(f *testing.F) {
	spec := OutSpec{Kind: KindDetNetFind, K: 3, Levels: 2}
	good := make([]uint64, spec.Words())
	f.Add(encodeWords(good))
	f.Fuzz(func(t *testing.T, data []byte) {
		words := decodeWords(data, spec.Words())
		_, _ = spec.DecodeOutgoing(words, spec.K)
	})
}

func encodeWords(ws []uint64) []byte {
	out := make([]byte, 8*len(ws))
	for i, w := range ws {
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(w >> (8 * b))
		}
	}
	return out
}

func decodeWords(data []byte, count int) []uint64 {
	out := make([]uint64, count)
	for i := 0; i < count; i++ {
		var w uint64
		for b := 0; b < 8; b++ {
			idx := 8*i + b
			if idx < len(data) {
				w |= uint64(data[idx]) << (8 * b)
			}
		}
		out[i] = w
	}
	return out
}
