package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// dynKinds are the scheme kinds under dynamic-update test. AGM runs with
// full-support repetitions so oracle comparisons cannot hit the whp
// failure mode.
func dynKinds(f int) map[string]Params {
	return map[string]Params{
		"det-netfind": {MaxFaults: f, Kind: KindDetNetFind},
		"det-greedy":  {MaxFaults: f, Kind: KindDetGreedy},
		"rand-rs":     {MaxFaults: f, Kind: KindRandRS, Seed: 11},
		"agm":         {MaxFaults: f, Kind: KindAGM, Seed: 11, AGMReps: 4 * f * 6},
	}
}

// pickAddable returns a random absent edge whose endpoints share a
// spanning-forest component (an incremental-eligible insertion), or ok =
// false if none is found.
func pickAddable(g *graph.Graph, forest *graph.Forest, rng *rand.Rand) (int, int, bool) {
	for try := 0; try < 200; try++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v || g.HasEdge(u, v) || forest.Comp[u] != forest.Comp[v] {
			continue
		}
		return u, v, true
	}
	return 0, 0, false
}

// pickRemovable returns a random non-tree edge, or ok = false.
func pickRemovable(g *graph.Graph, forest *graph.Forest, rng *rand.Rand) (int, int, bool) {
	for try := 0; try < 200; try++ {
		e := rng.Intn(g.M())
		if forest.IsTreeEdge[e] {
			continue
		}
		return g.Edges[e].U, g.Edges[e].V, true
	}
	return 0, 0, false
}

// verifyAgainstOracle cross-checks the scheme against the BFS oracle and
// against a from-scratch build of the same graph over seeded fault sets.
func verifyAgainstOracle(t *testing.T, s *Scheme, fresh *Scheme, rng *rand.Rand, f, trials int) {
	t.Helper()
	g := s.Graph()
	for trial := 0; trial < trials; trial++ {
		var faults []int
		switch trial % 3 {
		case 0:
			faults = workload.TreeEdgeFaults(g, s.Forest, 1+rng.Intn(f), rng)
		case 1:
			faults = workload.RandomFaults(g, 1+rng.Intn(f), rng)
		default:
			faults = workload.VertexCutFaults(g, f, rng)
		}
		fl := make([]EdgeLabel, len(faults))
		freshFl := make([]EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = s.EdgeLabel(e)
			freshFl[i] = fresh.EdgeLabel(e)
		}
		fs, err := CompileFaults(fl)
		if err != nil {
			t.Fatalf("trial %d: compile %v: %v", trial, faults, err)
		}
		for q := 0; q < 12; q++ {
			sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
			want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
			got, err := fs.Connected(s.VertexLabel(sv), s.VertexLabel(tv))
			if err != nil {
				t.Fatalf("trial %d (%d,%d|%v): %v", trial, sv, tv, faults, err)
			}
			if got != want {
				t.Fatalf("trial %d (%d,%d|%v): dynamic says %v, oracle says %v",
					trial, sv, tv, faults, got, want)
			}
			freshGot, err := Connected(fresh.VertexLabel(sv), fresh.VertexLabel(tv), freshFl)
			if err != nil {
				t.Fatalf("trial %d: fresh build: %v", trial, err)
			}
			if freshGot != want {
				t.Fatalf("trial %d: fresh build disagrees with oracle", trial)
			}
		}
	}
}

// TestDynamicUpdatesMatchOracle drives every scheme kind through a mixed
// insert/delete sequence — incremental commits and rebuild fallbacks — and
// checks each committed generation against the BFS oracle and a
// from-scratch build.
func TestDynamicUpdatesMatchOracle(t *testing.T) {
	const f = 3
	for name, p := range dynKinds(f) {
		t.Run(name, func(t *testing.T) {
			n := 90
			if p.Kind == KindDetGreedy {
				n = 36
			}
			rng := rand.New(rand.NewSource(int64(len(name))))
			g := workload.ErdosRenyi(n, 8/float64(n), true, rng)
			d, err := NewDynamic(g.Clone(), p)
			if err != nil {
				t.Fatalf("NewDynamic: %v", err)
			}
			sawIncremental, sawRebuild := false, false
			for step := 0; step < 12; step++ {
				var batch []Update
				for len(batch) < 1+rng.Intn(3) {
					cur := d.Scheme()
					if rng.Intn(2) == 0 {
						if u, v, ok := pickAddable(cur.Graph(), cur.Forest, rng); ok {
							batch = append(batch, Update{Add: true, U: u, V: v})
							continue
						}
					}
					if u, v, ok := pickRemovable(cur.Graph(), cur.Forest, rng); ok {
						batch = append(batch, Update{U: u, V: v})
						continue
					}
					break
				}
				if len(batch) == 0 {
					continue
				}
				// Drop batch-internal duplicates (the staged API's job).
				seen := map[graph.Edge]bool{}
				uniq := batch[:0]
				for _, op := range batch {
					u, v := op.U, op.V
					if u > v {
						u, v = v, u
					}
					if seen[graph.Edge{U: u, V: v}] {
						continue
					}
					seen[graph.Edge{U: u, V: v}] = true
					uniq = append(uniq, op)
				}
				rep, s, err := d.Commit(uniq)
				if err != nil {
					t.Fatalf("step %d: commit %v: %v", step, uniq, err)
				}
				if rep.Incremental {
					sawIncremental = true
				} else {
					sawRebuild = true
				}
				if s.Generation() != d.Generation() || rep.Gen != s.Generation() {
					t.Fatalf("step %d: generation bookkeeping diverged", step)
				}
				fresh, err := Build(s.Graph().Clone(), p)
				if err != nil {
					t.Fatalf("step %d: fresh build: %v", step, err)
				}
				verifyAgainstOracle(t, s, fresh, rng, f, 10)
			}
			if !sawIncremental {
				t.Error("update sequence never exercised the incremental path")
			}
			_ = sawRebuild // rebuilds depend on the random walk; incremental coverage is what matters
		})
	}
}

// stripStamp zeroes the token/generation stamp of an edge label copy so
// that byte comparisons isolate label *content*.
func stripStamp(l EdgeLabel) EdgeLabel {
	l.Token, l.Gen = 0, 0
	return l
}

// TestDynamicCleanLabelsByteStable asserts the incremental contract the
// serving cache relies on: labels outside CommitReport.Relabeled are
// byte-identical across the commit modulo the token/generation restamp.
func TestDynamicCleanLabelsByteStable(t *testing.T) {
	const f = 3
	rng := rand.New(rand.NewSource(41))
	g := workload.ErdosRenyi(120, 8/120.0, true, rng)
	d, err := NewDynamic(g.Clone(), Params{MaxFaults: f, Kind: KindDetNetFind})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 8; step++ {
		before := d.Scheme()
		beforeBytes := make([][]byte, before.Graph().M())
		for e := range beforeBytes {
			beforeBytes[e] = MarshalEdgeLabel(stripStamp(before.EdgeLabel(e)))
		}
		var op Update
		if step%2 == 0 {
			u, v, ok := pickAddable(before.Graph(), before.Forest, rng)
			if !ok {
				t.Fatalf("step %d: no addable edge", step)
			}
			op = Update{Add: true, U: u, V: v}
		} else {
			u, v, ok := pickRemovable(before.Graph(), before.Forest, rng)
			if !ok {
				t.Fatalf("step %d: no removable edge", step)
			}
			op = Update{U: u, V: v}
		}
		rep, after, err := d.Commit([]Update{op})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !rep.Incremental {
			t.Fatalf("step %d: expected incremental commit, got rebuild (%s)", step, rep.Reason)
		}
		relabeled := map[int]bool{}
		for _, e := range rep.Relabeled {
			relabeled[e] = true
		}
		for pre := range beforeBytes {
			post := pre
			if rep.Remap != nil {
				post = rep.Remap[pre]
			}
			if post < 0 {
				continue // removed
			}
			got := MarshalEdgeLabel(stripStamp(after.EdgeLabel(post)))
			if relabeled[post] {
				if bytes.Equal(got, beforeBytes[pre]) {
					t.Errorf("step %d: edge %d reported relabeled but is byte-identical", step, post)
				}
				continue
			}
			if !bytes.Equal(got, beforeBytes[pre]) {
				t.Fatalf("step %d: clean edge %d changed bytes across an incremental commit", step, post)
			}
		}
		// Vertex ancestry must never move under an incremental commit.
		for v := 0; v < after.N(); v++ {
			if before.VertexLabel(v).Anc != after.VertexLabel(v).Anc {
				t.Fatalf("step %d: vertex %d ancestry moved", step, v)
			}
		}
	}
}

// TestDynamicMergeMatchesFreshBuild is the component-merge acceptance test:
// AddEdge joining two previously disconnected components must produce
// labels byte-identical to a from-scratch build of the mutated graph at the
// same generation, for all four scheme kinds.
func TestDynamicMergeMatchesFreshBuild(t *testing.T) {
	const f = 2
	for name, p := range dynKinds(f) {
		t.Run(name, func(t *testing.T) {
			// Two components: a Petersen graph and a 6-cycle, plus an
			// isolated vertex.
			g := graph.New(17)
			for _, e := range workload.Petersen().Edges {
				if _, err := g.AddEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 6; i++ {
				if _, err := g.AddEdge(10+i, 10+(i+1)%6); err != nil {
					t.Fatal(err)
				}
			}
			d, err := NewDynamic(g.Clone(), p)
			if err != nil {
				t.Fatal(err)
			}
			rep, s, err := d.Commit([]Update{
				{Add: true, U: 3, V: 12}, // Petersen ↔ cycle
				{Add: true, U: 16, V: 0}, // isolated vertex ↔ Petersen
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Incremental {
				t.Fatal("component merge must fall back to a full rebuild")
			}
			fresh, err := buildWith(s.Graph().Clone(), d.params, rep.Gen)
			if err != nil {
				t.Fatal(err)
			}
			if fresh.Token() != s.Token() {
				t.Fatalf("token differs from fresh build: %x vs %x", s.Token(), fresh.Token())
			}
			for v := 0; v < s.N(); v++ {
				if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(fresh.VertexLabel(v))) {
					t.Fatalf("vertex %d label differs from fresh build", v)
				}
			}
			for e := 0; e < s.Graph().M(); e++ {
				if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabel(e)), MarshalEdgeLabel(fresh.EdgeLabel(e))) {
					t.Fatalf("edge %d label differs from fresh build", e)
				}
			}
			// And the merged graph answers correctly.
			rng := rand.New(rand.NewSource(7))
			verifyAgainstOracle(t, s, fresh, rng, f, 20)
		})
	}
}

// TestDynamicStaleLabelDetection asserts that mixing labels across
// generations fails fast with ErrStaleLabel (which still matches
// ErrLabelMismatch for old callers).
func TestDynamicStaleLabelDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := workload.ErdosRenyi(60, 0.1, true, rng)
	d, err := NewDynamic(g.Clone(), Params{MaxFaults: 2})
	if err != nil {
		t.Fatal(err)
	}
	old := d.Scheme()
	u, v, ok := pickAddable(old.Graph(), old.Forest, rng)
	if !ok {
		t.Fatal("no addable edge")
	}
	_, cur, err := d.Commit([]Update{{Add: true, U: u, V: v}})
	if err != nil {
		t.Fatal(err)
	}
	if cur.Generation() != 2 || old.Generation() != 1 {
		t.Fatalf("generations: old %d, cur %d", old.Generation(), cur.Generation())
	}
	// Vertex labels from different generations.
	if _, err := Connected(old.VertexLabel(0), cur.VertexLabel(1), nil); !errors.Is(err, ErrStaleLabel) {
		t.Fatalf("mixed vertex generations: got %v, want ErrStaleLabel", err)
	}
	// Fault label from the old generation against current vertices.
	fl := []EdgeLabel{old.EdgeLabel(0)}
	if _, err := Connected(cur.VertexLabel(0), cur.VertexLabel(1), fl); !errors.Is(err, ErrStaleLabel) {
		t.Fatalf("stale fault label: got %v, want ErrStaleLabel", err)
	}
	if !errors.Is(ErrStaleLabel, ErrLabelMismatch) {
		t.Fatal("ErrStaleLabel must wrap ErrLabelMismatch")
	}
	// Fault sets compiled at the old generation reject current vertices.
	fs, err := CompileFaults(fl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Connected(cur.VertexLabel(0), cur.VertexLabel(1)); !errors.Is(err, ErrStaleLabel) {
		t.Fatalf("stale fault set: got %v, want ErrStaleLabel", err)
	}
	// Mixing faults from two generations inside one compile fails too.
	if _, err := CompileFaults([]EdgeLabel{old.EdgeLabel(0), cur.EdgeLabel(1)}); !errors.Is(err, ErrStaleLabel) {
		t.Fatalf("mixed-generation compile: got %v, want ErrStaleLabel", err)
	}
	// Rebase repairs a clean fault set for the new generation.
	rebased := fs.Rebase(cur.Token(), cur.Generation())
	if _, err := rebased.Connected(cur.VertexLabel(0), cur.VertexLabel(1)); err != nil {
		t.Fatalf("rebased fault set: %v", err)
	}
	// Two separately-opened identical networks produce identical labels, so
	// their tokens agree and labels interoperate.
	d2, err := NewDynamic(g.Clone(), Params{MaxFaults: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Scheme().Token() != old.Token() {
		t.Fatal("identical histories should produce identical tokens")
	}
}

// TestDynamicFallbackTriggers exercises each rebuild trigger.
func TestDynamicFallbackTriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := workload.ErdosRenyi(60, 0.1, true, rng)
	p := Params{MaxFaults: 2, AuxSlack: 1}

	t.Run("tree-edge-removal", func(t *testing.T) {
		d, err := NewDynamic(g.Clone(), p)
		if err != nil {
			t.Fatal(err)
		}
		forest := d.Scheme().Forest
		var u, v int
		for e, tree := range forest.IsTreeEdge {
			if tree {
				u, v = g.Edges[e].U, g.Edges[e].V
				break
			}
		}
		rep, s, err := d.Commit([]Update{{U: u, V: v}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Incremental {
			t.Fatal("tree-edge removal must rebuild")
		}
		if s.Graph().HasEdge(u, v) {
			t.Fatal("edge not removed")
		}
		if rep.Remap == nil || len(rep.Removed) != 1 {
			t.Fatalf("remap/removed not reported: %+v", rep)
		}
	})

	t.Run("add-then-remove-demoted-edge", func(t *testing.T) {
		// Regression: an add that demotes the plan to a rebuild (here a
		// component merge) followed by a remove of that same edge in one
		// batch used to panic in classify (EdgeIndex -1).
		g2 := graph.New(4)
		for _, e := range [][2]int{{0, 1}, {2, 3}} {
			if _, err := g2.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		d, err := NewDynamic(g2, p)
		if err != nil {
			t.Fatal(err)
		}
		rep, s, err := d.Commit([]Update{{Add: true, U: 1, V: 2}, {U: 1, V: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Incremental {
			t.Fatal("merge-add batch must rebuild")
		}
		if s.Graph().HasEdge(1, 2) {
			t.Fatal("edge added then removed in one batch survived")
		}
	})

	t.Run("slot-exhaustion", func(t *testing.T) {
		d, err := NewDynamic(g.Clone(), p) // AuxSlack 1: second add at a vertex overflows
		if err != nil {
			t.Fatal(err)
		}
		// Find a vertex with two addable partners in its component.
		cur := d.Scheme()
		var w, a, b int
		found := false
		for w = 0; w < g.N() && !found; w++ {
			var cands []int
			for x := 0; x < g.N(); x++ {
				if x > w && !cur.Graph().HasEdge(w, x) && cur.Forest.Comp[w] == cur.Forest.Comp[x] {
					cands = append(cands, x)
				}
			}
			if len(cands) >= 2 {
				a, b = cands[0], cands[1]
				found = true
				break
			}
		}
		if !found {
			t.Skip("no vertex with two addable partners")
		}
		rep1, _, err := d.Commit([]Update{{Add: true, U: w, V: a}})
		if err != nil {
			t.Fatal(err)
		}
		if !rep1.Incremental {
			t.Fatalf("first add should be incremental, got rebuild (%s)", rep1.Reason)
		}
		rep2, _, err := d.Commit([]Update{{Add: true, U: w, V: b}})
		if err != nil {
			t.Fatal(err)
		}
		if rep2.Incremental {
			t.Fatal("second add at a slack-1 vertex must rebuild")
		}
	})

	t.Run("churn-budget", func(t *testing.T) {
		d, err := NewDynamic(g.Clone(), Params{MaxFaults: 2, AuxSlack: 64})
		if err != nil {
			t.Fatal(err)
		}
		sawRebuild := false
		for i := 0; i < 200 && !sawRebuild; i++ {
			cur := d.Scheme()
			u, v, ok := pickAddable(cur.Graph(), cur.Forest, rng)
			if !ok {
				break
			}
			rep, _, err := d.Commit([]Update{{Add: true, U: u, V: v}})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Incremental {
				sawRebuild = true
				if d.Churn() != 0 {
					t.Fatal("rebuild must reset churn")
				}
			}
		}
		if !sawRebuild {
			t.Fatal("sustained churn never triggered the hierarchy invalidation rebuild")
		}
	})
}
