package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// schemesByteIdentical asserts every label of got marshals to the same
// bytes as the corresponding label of want.
func schemesByteIdentical(t *testing.T, want, got *Scheme) {
	t.Helper()
	if got.Token() != want.Token() || got.Generation() != want.Generation() {
		t.Fatalf("token/gen: got (%#x, %d), want (%#x, %d)",
			got.Token(), got.Generation(), want.Token(), want.Generation())
	}
	if got.N() != want.N() || got.Graph().M() != want.Graph().M() {
		t.Fatalf("shape: got (%d, %d), want (%d, %d)",
			got.N(), got.Graph().M(), want.N(), want.Graph().M())
	}
	for v := 0; v < want.N(); v++ {
		if !bytes.Equal(MarshalVertexLabel(got.VertexLabel(v)), MarshalVertexLabel(want.VertexLabel(v))) {
			t.Fatalf("vertex %d label bytes diverge", v)
		}
	}
	for e := 0; e < want.Graph().M(); e++ {
		if !bytes.Equal(MarshalEdgeLabel(got.EdgeLabel(e)), MarshalEdgeLabel(want.EdgeLabel(e))) {
			t.Fatalf("edge %d label bytes diverge", e)
		}
	}
}

// driftBatch picks a small incremental-eligible batch (non-merging adds,
// non-tree removes) against the current scheme.
func driftBatch(s *Scheme, rng *rand.Rand) []Update {
	var batch []Update
	staged := map[[2]int]bool{}
	for len(batch) < 3 {
		if rng.Intn(2) == 0 {
			u, v, ok := pickAddable(s.Graph(), s.Forest, rng)
			if !ok || staged[[2]int{u, v}] || staged[[2]int{v, u}] {
				break
			}
			staged[[2]int{u, v}] = true
			batch = append(batch, Update{Add: true, U: u, V: v})
		} else {
			u, v, ok := pickRemovable(s.Graph(), s.Forest, rng)
			if !ok || staged[[2]int{u, v}] || staged[[2]int{v, u}] {
				break
			}
			staged[[2]int{u, v}] = true
			batch = append(batch, Update{U: u, V: v})
		}
	}
	return batch
}

// TestDeltaReplayByteIdentical drives a Dynamic through a run of
// incremental commits per scheme kind and checks, at every generation, that
// replaying the exported delta on the replica's copy reproduces the
// primary's labels byte for byte — both on a directly-shared scheme and on
// one that went through a v3 snapshot round trip (the replica boot path,
// exercising lazy-arena materialization).
func TestDeltaReplayByteIdentical(t *testing.T) {
	for name, p := range dynKinds(3) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			g := workload.ErdosRenyi(90, 8/90.0, true, rng)
			d, err := NewDynamic(g.Clone(), p)
			if err != nil {
				t.Fatalf("NewDynamic: %v", err)
			}
			replica := d.Scheme()
			blob, err := d.Scheme().MarshalBinary()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			lazyReplica, err := UnmarshalScheme(blob)
			if err != nil {
				t.Fatalf("load snapshot: %v", err)
			}
			steps := 0
			for gen := uint64(2); steps < 6; gen++ {
				batch := driftBatch(d.Scheme(), rng)
				if len(batch) == 0 {
					break
				}
				rep, delta, s, err := d.CommitWithDelta(batch)
				if err != nil {
					t.Fatalf("gen %d: commit: %v", gen, err)
				}
				if !rep.Incremental {
					// Rare under driftBatch (slot exhaustion); a full
					// rebuild ends the incremental run.
					if delta == nil || !delta.Full {
						t.Fatalf("gen %d: rebuild commit must export a Full marker", gen)
					}
					break
				}
				if delta == nil {
					t.Fatalf("gen %d: incremental commit exported no delta", gen)
				}
				repGot, next, err := ApplyDelta(replica, delta)
				if err != nil {
					t.Fatalf("gen %d: ApplyDelta: %v", gen, err)
				}
				if repGot.Gen != rep.Gen || repGot.Token != rep.Token {
					t.Fatalf("gen %d: replayed report (%d, %#x) != primary (%d, %#x)",
						gen, repGot.Gen, repGot.Token, rep.Gen, rep.Token)
				}
				replica = next
				schemesByteIdentical(t, s, replica)

				_, lazyNext, err := ApplyDelta(lazyReplica, delta)
				if err != nil {
					t.Fatalf("gen %d: ApplyDelta on snapshot-loaded scheme: %v", gen, err)
				}
				lazyReplica = lazyNext
				schemesByteIdentical(t, s, lazyReplica)
				steps++
			}
			if steps < 3 {
				t.Fatalf("only %d incremental generations exercised", steps)
			}
		})
	}
}

// TestDeltaFullRebuildMarker asserts a forest-breaking commit exports a
// Full marker and ApplyDelta refuses it with ErrFullRebuild.
func TestDeltaFullRebuildMarker(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.ErdosRenyi(40, 0.12, true, rng)
	d, err := NewDynamic(g.Clone(), Params{MaxFaults: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	replica := d.Scheme()
	// Deleting a tree edge breaks the spanning forest: rebuild path.
	var batch []Update
	for e := 0; e < g.M(); e++ {
		if d.Scheme().Forest.IsTreeEdge[e] {
			batch = []Update{{U: g.Edges[e].U, V: g.Edges[e].V}}
			break
		}
	}
	rep, delta, _, err := d.CommitWithDelta(batch)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if rep.Incremental {
		t.Fatal("tree-edge deletion committed incrementally")
	}
	if delta == nil || !delta.Full || delta.Reason == "" {
		t.Fatalf("want Full marker with reason, got %+v", delta)
	}
	if _, _, err := ApplyDelta(replica, delta); !errors.Is(err, ErrFullRebuild) {
		t.Fatalf("ApplyDelta(full marker) = %v, want ErrFullRebuild", err)
	}
}

// TestDeltaGapAndMismatch exercises the refusal paths: a delta applied out
// of order, and a delta whose replayed state cannot match its token.
func TestDeltaGapAndMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := workload.ErdosRenyi(60, 0.1, true, rng)
	d, err := NewDynamic(g.Clone(), Params{MaxFaults: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	replica := d.Scheme()
	var deltas []*GenDelta
	for len(deltas) < 2 {
		batch := driftBatch(d.Scheme(), rng)
		if len(batch) == 0 {
			t.Fatal("no incremental batch available")
		}
		rep, delta, _, err := d.CommitWithDelta(batch)
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		if !rep.Incremental {
			t.Fatalf("batch %v fell back to rebuild", batch)
		}
		deltas = append(deltas, delta)
	}
	if _, _, err := ApplyDelta(replica, deltas[1]); !errors.Is(err, ErrDeltaGap) {
		t.Fatalf("skipping a generation = %v, want ErrDeltaGap", err)
	}
	// Tamper with the op sequence: the replayed graph diverges and the
	// graph-op or token check must refuse it. (Label-payload corruption is
	// the genlog checksum's job — the token fingerprints the graph, the
	// parameters, and the generation, not payload bytes.)
	badOps := *deltas[0]
	badOps.Ops = append([]Update(nil), badOps.Ops...)
	badOps.Ops[0].Add = !badOps.Ops[0].Add
	if _, _, err := ApplyDelta(replica, &badOps); err == nil {
		t.Fatal("op-sequence tamper replayed without error")
	}
}

// TestDeltaNoopCommit asserts an empty batch exports no delta.
func TestDeltaNoopCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := workload.ErdosRenyi(30, 0.15, true, rng)
	d, err := NewDynamic(g.Clone(), Params{MaxFaults: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	rep, delta, _, err := d.CommitWithDelta(nil)
	if err != nil || delta != nil {
		t.Fatalf("empty commit: rep=%+v delta=%+v err=%v", rep, delta, err)
	}
}
