package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/fragments"
)

// FaultSet is a compiled, immutable fault set — the decoder-side object for
// the paper's deployment pattern of "one failure event, many probes" (§7).
// Compiling parses, validates, and deduplicates the fault labels exactly
// once, grouping them per spanning-forest root (not per anchor component, so
// probes anywhere in the graph are answered correctly), and precomputes each
// fragment's initial super-fragment state τ(S): the aggregated outdetect
// payload and the boundary fault bitset of §7.6.
//
// Probes are cheap and concurrency-safe: the first probe that touches a
// component drives the fragment growth of §7.6 to completion once (over
// pooled scratch — see queryState), caches the resulting connectivity
// partition, and every subsequent probe in that component is two interval
// stabs plus two partition lookups with zero allocations.
//
// A FaultSet is built purely from labels; it never accesses the graph.
type FaultSet struct {
	token     uint64
	gen       uint64
	hasFaults bool
	maxFaults int
	spec      OutSpec
	// faultCount is the deduplicated fault count across all components.
	faultCount int
	// comps holds one compiled component per spanning-forest root with at
	// least one fault, sorted by root preorder. |comps| ≤ f, so the probe
	// path looks components up with a linear scan.
	comps []*faultComponent
}

// faultComponent is the compiled per-spanning-tree slice of a FaultSet: the
// fragment decomposition induced by the component's faults plus the
// immutable initial super-fragment state every probe starts from.
type faultComponent struct {
	root      uint32
	spec      OutSpec
	maxFaults int
	frags     *fragments.Set
	count     int // fragments (|F_root| + 1)
	words     int // payload words per super-fragment
	cutWords  int // boundary-bitset words per super-fragment

	// Immutable initial state, flattened per fragment: probes copy these
	// into pooled scratch instead of re-aggregating label payloads.
	initSum     []uint64
	initCut     []uint64
	initCutSize []int32

	// Lazily computed full closure: closure[c] is the union-find root of
	// fragment c after every super-fragment has been grown to completion.
	// Guarded by closeOnce; read-only afterwards, so concurrent probes
	// need no further synchronization.
	closeOnce sync.Once
	closure   []int32
	closeErr  error

	// Lazily recorded crossing structure for route planning: the decoded
	// crossings of one full-closure run plus a per-fragment adjacency into
	// them (routeset.go). Guarded by routeOnce; read-only afterwards.
	routeOnce sync.Once
	routeRecs []crossRec
	routeAdj  [][]int32
	routeErr  error
}

// CompileFaults builds a FaultSet from fault-edge labels. It validates token
// consistency, normalizes every fault edge (Parent the ancestor), collapses
// duplicates (a tree edge is determined by its child endpoint), groups the
// faults per spanning-forest root, and enforces the global fault budget
// |F| ≤ f. An empty slice compiles to the trivial FaultSet, for which
// connectivity degenerates to same-component.
func CompileFaults(faults []EdgeLabel) (*FaultSet, error) {
	fs := &FaultSet{}
	if len(faults) == 0 {
		return fs, nil
	}
	fs.token = faults[0].Token
	fs.gen = faults[0].Gen
	fs.hasFaults = true
	fs.maxFaults = faults[0].MaxFaults
	fs.spec = faults[0].Spec
	for i := range faults {
		if err := checkStamp(faults[i].Token, faults[i].Gen, fs.token, fs.gen, fmt.Sprintf("fault %d tokens", i)); err != nil {
			return nil, err
		}
	}
	// Group by component root. Duplicate faults (same child preorder) keep
	// the last label, matching fragments.Build's own dedupe.
	type group struct {
		fts []fragments.Fault
		out map[uint32][]uint64
	}
	groups := map[uint32]*group{}
	var roots []uint32
	for i := range faults {
		fl := &faults[i]
		ft, err := fragments.Normalize(fl.Parent, fl.Child)
		if err != nil {
			return nil, err
		}
		g := groups[ft.Child.Root]
		if g == nil {
			g = &group{out: map[uint32][]uint64{}}
			groups[ft.Child.Root] = g
			roots = append(roots, ft.Child.Root)
		}
		g.fts = append(g.fts, ft)
		g.out[ft.Child.Pre] = fl.Out
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	words := fs.spec.Words()
	for _, root := range roots {
		g := groups[root]
		set, err := fragments.Build(g.fts)
		if err != nil {
			return nil, err
		}
		fs.faultCount += len(set.Faults)
		count := set.Count()
		cutWords := (len(set.Faults) + 63) / 64
		comp := &faultComponent{
			root:        root,
			spec:        fs.spec,
			maxFaults:   fs.maxFaults,
			frags:       set,
			count:       count,
			words:       words,
			cutWords:    cutWords,
			initSum:     make([]uint64, count*words),
			initCut:     make([]uint64, count*cutWords),
			initCutSize: make([]int32, count),
		}
		for c := 0; c < count; c++ {
			sum := comp.initSum[c*words : (c+1)*words]
			cut := comp.initCut[c*cutWords : (c+1)*cutWords]
			for _, fi := range set.Boundary[c] {
				out := g.out[set.Faults[fi].Child.Pre]
				if len(out) != words {
					return nil, fmt.Errorf("%w: inconsistent fault payloads", ErrLabelMismatch)
				}
				for w := range out {
					sum[w] ^= out[w]
				}
				cut[fi/64] ^= 1 << uint(fi%64)
			}
			comp.initCutSize[c] = int32(popcount(cut))
		}
		fs.comps = append(fs.comps, comp)
	}
	if fs.faultCount > fs.maxFaults {
		return nil, fmt.Errorf("%w: %d faults, budget %d", ErrTooManyFaults, fs.faultCount, fs.maxFaults)
	}
	return fs, nil
}

// compForRoot returns the compiled component for the given spanning-forest
// root, or nil when no fault touches that component.
func (fs *FaultSet) compForRoot(root uint32) *faultComponent {
	for _, c := range fs.comps {
		if c.root == root {
			return c
		}
	}
	return nil
}

// ensureClosed runs the fragment growth of §7.6 to completion once and
// caches the connectivity partition. Decode failures (possible for the AGM
// whp baseline, impossible for the deterministic kinds with sound
// thresholds) are cached too and returned by every probe of the component.
func (c *faultComponent) ensureClosed() error {
	c.closeOnce.Do(func() {
		q := c.acquire()
		defer releaseQueryState(q)
		if _, err := q.runFast(); err != nil {
			c.closeErr = err
			return
		}
		closure := make([]int32, c.count)
		for i := range closure {
			closure[i] = q.find(int32(i))
		}
		c.closure = closure
	})
	return c.closeErr
}

// Connected probes s–t connectivity under the compiled fault set. After the
// first probe of a component the steady-state cost is two interval stabs
// plus two partition lookups, with zero allocations; probes are safe to
// issue from concurrent goroutines.
func (fs *FaultSet) Connected(s, t VertexLabel) (bool, error) {
	if err := checkStamp(s.Token, s.Gen, t.Token, t.Gen, "vertex tokens"); err != nil {
		return false, err
	}
	if fs.hasFaults {
		if err := checkStamp(s.Token, s.Gen, fs.token, fs.gen, "vertex and fault tokens"); err != nil {
			return false, err
		}
	}
	if s.Anc.Root != t.Anc.Root {
		return false, nil
	}
	if s.Anc.Pre == t.Anc.Pre {
		return true, nil
	}
	comp := fs.compForRoot(s.Anc.Root)
	if comp == nil {
		// No fault touches this component: same root ⇒ connected.
		return true, nil
	}
	if err := comp.ensureClosed(); err != nil {
		return false, err
	}
	a := comp.closure[comp.frags.StabLabel(s.Anc)]
	b := comp.closure[comp.frags.StabLabel(t.Anc)]
	return a == b, nil
}

// ConnectedBatch answers many probes in one call. The result slice is
// allocated once; the probes themselves run on the same zero-alloc path as
// Connected.
func (fs *FaultSet) ConnectedBatch(pairs [][2]VertexLabel) ([]bool, error) {
	out := make([]bool, len(pairs))
	for i := range pairs {
		ok, err := fs.Connected(pairs[i][0], pairs[i][1])
		if err != nil {
			return nil, fmt.Errorf("pair %d: %w", i, err)
		}
		out[i] = ok
	}
	return out, nil
}

// Session forces the closure of every compiled component and returns a
// Session over the full partition — the multi-component replacement for the
// old anchor-bound NewSession.
func (fs *FaultSet) Session() (*Session, error) {
	for _, c := range fs.comps {
		if err := c.ensureClosed(); err != nil {
			return nil, err
		}
	}
	return &Session{fs: fs, token: fs.token, checkToken: fs.hasFaults}, nil
}

// Rebase returns a FaultSet that shares fs's compiled state — fragment
// decomposition, payload aggregates, and any already-computed closures —
// but expects labels stamped with the given token and generation.
//
// Rebasing is sound exactly when none of the fault edges was relabeled
// between fs's generation and the target one (the condition the serving
// layer's selective cache invalidation enforces): an update whose tree
// paths avoid every fault subtree boundary has both endpoints in a single
// fragment of this fault set, so the compiled partition of G − F is
// unchanged. See DESIGN.md §3.10.
func (fs *FaultSet) Rebase(token, gen uint64) *FaultSet {
	if !fs.hasFaults {
		return fs
	}
	out := *fs
	out.token = token
	out.gen = gen
	return &out
}

// Faults returns the deduplicated fault count across all components.
func (fs *FaultSet) Faults() int { return fs.faultCount }

// Generation returns the generation stamp of the compiled fault labels
// (0 for static schemes or an empty FaultSet).
func (fs *FaultSet) Generation() uint64 { return fs.gen }

// MaxFaults returns the budget f the fault labels were constructed for
// (0 for an empty FaultSet).
func (fs *FaultSet) MaxFaults() int { return fs.maxFaults }

// FaultComponents returns the number of spanning-forest components touched
// by at least one fault.
func (fs *FaultSet) FaultComponents() int { return len(fs.comps) }
