package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/workload"
)

func mustBuild(t testing.TB, g *graph.Graph, p Params) *Scheme {
	t.Helper()
	s, err := Build(g, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

// queryLabels gathers the labels for a query.
func queryLabels(s *Scheme, sv, tv int, faults []int) (VertexLabel, VertexLabel, []EdgeLabel) {
	fl := make([]EdgeLabel, len(faults))
	for i, e := range faults {
		fl[i] = s.EdgeLabel(e)
	}
	return s.VertexLabel(sv), s.VertexLabel(tv), fl
}

// combinations invokes fn on every subset of [0, m) with size ≤ maxSize.
func combinations(m, maxSize int, fn func([]int)) {
	var cur []int
	var rec func(start int)
	rec = func(start int) {
		fn(append([]int(nil), cur...))
		if len(cur) == maxSize {
			return
		}
		for e := start; e < m; e++ {
			cur = append(cur, e)
			rec(e + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
}

// exhaustiveCheck verifies Connected (fast and basic) against BFS ground
// truth for every (s, t, F) with |F| ≤ f — the literal meaning of full query
// support.
func exhaustiveCheck(t *testing.T, g *graph.Graph, s *Scheme, f int) {
	t.Helper()
	queries := 0
	combinations(g.M(), f, func(faults []int) {
		set := workload.FaultSet(faults)
		for sv := 0; sv < g.N(); sv++ {
			for tv := sv + 1; tv < g.N(); tv++ {
				want := graph.ConnectedUnder(g, set, sv, tv)
				sl, tl, fl := queryLabels(s, sv, tv, faults)
				got, err := Connected(sl, tl, fl)
				if err != nil {
					t.Fatalf("Connected(%d,%d,F=%v): %v", sv, tv, faults, err)
				}
				if got != want {
					t.Fatalf("Connected(%d,%d,F=%v) = %v, want %v", sv, tv, faults, got, want)
				}
				gotBasic, err := ConnectedBasic(sl, tl, fl)
				if err != nil {
					t.Fatalf("ConnectedBasic(%d,%d,F=%v): %v", sv, tv, faults, err)
				}
				if gotBasic != want {
					t.Fatalf("ConnectedBasic(%d,%d,F=%v) = %v, want %v", sv, tv, faults, gotBasic, want)
				}
				queries++
			}
		}
	})
	if queries == 0 {
		t.Fatal("no queries executed")
	}
}

func smallGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	return map[string]*graph.Graph{
		"path5":    workload.Grid(5, 1),
		"cycle6":   workload.Cycle(6),
		"k4":       workload.Complete(4),
		"k5":       workload.Complete(5),
		"grid3x3":  workload.Grid(3, 3),
		"petersen": workload.Petersen(),
		"er12":     workload.ErdosRenyi(12, 0.25, true, rng),
		"tree+2":   workload.RandomTreePlus(9, 2, rng),
	}
}

func TestExhaustiveSmallGraphsDeterministic(t *testing.T) {
	const f = 2
	for name, g := range smallGraphs(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			s := mustBuild(t, g, Params{MaxFaults: f, Kind: KindDetNetFind})
			exhaustiveCheck(t, g, s, f)
		})
	}
}

func TestExhaustiveK4ThreeFaults(t *testing.T) {
	g := workload.Complete(4)
	s := mustBuild(t, g, Params{MaxFaults: 3, Kind: KindDetNetFind})
	exhaustiveCheck(t, g, s, 3)
}

func TestExhaustiveGreedyKind(t *testing.T) {
	for _, name := range []string{"k4", "grid3x3"} {
		g := smallGraphs(t)[name]
		t.Run(name, func(t *testing.T) {
			s := mustBuild(t, g, Params{MaxFaults: 2, Kind: KindDetGreedy})
			exhaustiveCheck(t, g, s, 2)
		})
	}
}

func TestExhaustiveRandRSKind(t *testing.T) {
	g := smallGraphs(t)["petersen"]
	s := mustBuild(t, g, Params{MaxFaults: 2, Kind: KindRandRS, Seed: 7})
	exhaustiveCheck(t, g, s, 2)
}

func TestExhaustiveStrictTheoryThreshold(t *testing.T) {
	// The worst-case Lemma 5 threshold, exercised end to end on a small
	// instance (labels get large — that is the point of DESIGN.md §3.4).
	g := workload.Complete(5)
	s := mustBuild(t, g, Params{
		MaxFaults: 2,
		Kind:      KindDetNetFind,
		Threshold: hierarchy.StrictTheoryThreshold,
	})
	exhaustiveCheck(t, g, s, 2)
}

// TestStressVsGroundTruth drives random graphs, fault mixes, and vertex
// pairs through all deterministic kinds plus the randomized RS kind.
func TestStressVsGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	kinds := []Kind{KindDetNetFind, KindRandRS}
	for trial := 0; trial < 12; trial++ {
		n := 20 + rng.Intn(60)
		g := workload.ErdosRenyi(n, 0.08+rng.Float64()*0.1, trial%3 != 0, rng)
		f := 1 + rng.Intn(4)
		for _, kind := range kinds {
			s := mustBuild(t, g, Params{MaxFaults: f, Kind: kind, Seed: int64(trial)})
			forest := s.Forest
			for q := 0; q < 60; q++ {
				var faults []int
				switch q % 3 {
				case 0:
					faults = workload.RandomFaults(g, rng.Intn(f+1), rng)
				case 1:
					faults = workload.TreeEdgeFaults(g, forest, rng.Intn(f+1), rng)
				default:
					faults = workload.VertexCutFaults(g, f, rng)
				}
				sv, tv := rng.Intn(n), rng.Intn(n)
				want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
				sl, tl, fl := queryLabels(s, sv, tv, faults)
				got, err := Connected(sl, tl, fl)
				if err != nil {
					t.Fatalf("trial %d kind %v: %v", trial, kind, err)
				}
				if got != want {
					t.Fatalf("trial %d kind %v: Connected(%d,%d,%v) = %v, want %v",
						trial, kind, sv, tv, faults, got, want)
				}
			}
		}
	}
}

// TestAGMKind exercises the DP21 baseline: no wrong answers allowed, decode
// failures tolerated at a low rate (whp semantics).
func TestAGMKind(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	failures, queries := 0, 0
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(40)
		g := workload.ErdosRenyi(n, 0.12, true, rng)
		f := 1 + rng.Intn(3)
		s := mustBuild(t, g, Params{MaxFaults: f, Kind: KindAGM, Seed: int64(trial + 1)})
		for q := 0; q < 80; q++ {
			faults := workload.RandomFaults(g, rng.Intn(f+1), rng)
			sv, tv := rng.Intn(n), rng.Intn(n)
			want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
			sl, tl, fl := queryLabels(s, sv, tv, faults)
			got, err := Connected(sl, tl, fl)
			queries++
			if err != nil {
				if !errors.Is(err, ErrDecode) {
					t.Fatalf("unexpected error: %v", err)
				}
				failures++
				continue
			}
			if got != want {
				t.Fatalf("AGM wrong answer: Connected(%d,%d,%v) = %v, want %v", sv, tv, faults, got, want)
			}
		}
	}
	if failures*20 > queries {
		t.Fatalf("AGM failure rate too high: %d/%d", failures, queries)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two components; faults in one must not affect the other, and
	// cross-component queries are false.
	g := graph.New(8)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}}
	var ids []int
	for _, e := range edges {
		id, err := g.AddEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s := mustBuild(t, g, Params{MaxFaults: 2})
	sl, tl, fl := queryLabels(s, 0, 4, nil)
	if got, err := Connected(sl, tl, fl); err != nil || got {
		t.Fatalf("cross-component: got=%v err=%v", got, err)
	}
	// Vertex 3 is isolated.
	sl, tl, _ = queryLabels(s, 0, 3, nil)
	if got, err := Connected(sl, tl, nil); err != nil || got {
		t.Fatalf("isolated vertex: got=%v err=%v", got, err)
	}
	// Faults in component B don't affect component A.
	sl, tl, fl = queryLabels(s, 0, 2, []int{ids[4], ids[5]})
	if got, err := Connected(sl, tl, fl); err != nil || !got {
		t.Fatalf("faults elsewhere: got=%v err=%v", got, err)
	}
	// Within component B the faults do bite: remove 5-6 and 6-7 isolates 6.
	sl, tl, fl = queryLabels(s, 6, 4, []int{ids[4], ids[5]})
	if got, err := Connected(sl, tl, fl); err != nil || got {
		t.Fatalf("in-component faults: got=%v err=%v", got, err)
	}
}

func TestSelfQueryAndDuplicates(t *testing.T) {
	g := workload.Cycle(5)
	s := mustBuild(t, g, Params{MaxFaults: 2})
	sl, _, _ := queryLabels(s, 2, 2, nil)
	if got, err := Connected(sl, sl, nil); err != nil || !got {
		t.Fatalf("s == t: got=%v err=%v", got, err)
	}
	// The same fault label twice counts once.
	el := s.EdgeLabel(0)
	tl := s.VertexLabel(3)
	got, err := Connected(sl, tl, []EdgeLabel{el, el})
	if err != nil {
		t.Fatalf("duplicate faults: %v", err)
	}
	want := graph.ConnectedUnder(g, map[int]bool{0: true}, 2, 3)
	if got != want {
		t.Fatalf("duplicate faults: got %v, want %v", got, want)
	}
}

func TestTooManyFaults(t *testing.T) {
	g := workload.Complete(5)
	s := mustBuild(t, g, Params{MaxFaults: 1})
	sl, tl, fl := queryLabels(s, 0, 1, []int{2, 3})
	if _, err := Connected(sl, tl, fl); !errors.Is(err, ErrTooManyFaults) {
		t.Fatalf("err = %v, want ErrTooManyFaults", err)
	}
}

func TestLabelMixingRejected(t *testing.T) {
	g1 := workload.Cycle(6)
	g2 := workload.Cycle(7)
	s1 := mustBuild(t, g1, Params{MaxFaults: 1})
	s2 := mustBuild(t, g2, Params{MaxFaults: 1})
	if _, err := Connected(s1.VertexLabel(0), s2.VertexLabel(1), nil); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("cross-graph vertices: err = %v", err)
	}
	if _, err := Connected(s1.VertexLabel(0), s1.VertexLabel(1), []EdgeLabel{s2.EdgeLabel(0)}); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("cross-graph fault: err = %v", err)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := workload.ErdosRenyi(40, 0.15, true, rng)
	a := mustBuild(t, g, Params{MaxFaults: 2, Kind: KindDetNetFind})
	b := mustBuild(t, g, Params{MaxFaults: 2, Kind: KindDetNetFind})
	if a.Token() != b.Token() {
		t.Fatal("tokens differ across identical builds")
	}
	for e := 0; e < g.M(); e++ {
		ba := MarshalEdgeLabel(a.EdgeLabel(e))
		bb := MarshalEdgeLabel(b.EdgeLabel(e))
		if string(ba) != string(bb) {
			t.Fatalf("edge %d labels differ across identical builds", e)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := workload.ErdosRenyi(25, 0.2, true, rng)
	s := mustBuild(t, g, Params{MaxFaults: 2})
	for v := 0; v < g.N(); v++ {
		enc := MarshalVertexLabel(s.VertexLabel(v))
		dec, err := UnmarshalVertexLabel(enc)
		if err != nil {
			t.Fatalf("vertex %d: %v", v, err)
		}
		if dec != s.VertexLabel(v) {
			t.Fatalf("vertex %d round trip mismatch", v)
		}
	}
	for e := 0; e < g.M(); e++ {
		enc := MarshalEdgeLabel(s.EdgeLabel(e))
		dec, err := UnmarshalEdgeLabel(enc)
		if err != nil {
			t.Fatalf("edge %d: %v", e, err)
		}
		re := MarshalEdgeLabel(dec)
		if string(re) != string(enc) {
			t.Fatalf("edge %d round trip mismatch", e)
		}
	}
	// Queries through marshaled labels give the same answers.
	faults := []int{0, 1}
	sl, tl, fl := queryLabels(s, 0, g.N()-1, faults)
	want, err := Connected(sl, tl, fl)
	if err != nil {
		t.Fatal(err)
	}
	sl2, err := UnmarshalVertexLabel(MarshalVertexLabel(sl))
	if err != nil {
		t.Fatal(err)
	}
	var fl2 []EdgeLabel
	for _, l := range fl {
		d, err := UnmarshalEdgeLabel(MarshalEdgeLabel(l))
		if err != nil {
			t.Fatal(err)
		}
		fl2 = append(fl2, d)
	}
	got, err := Connected(sl2, tl, fl2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("marshaled labels changed the answer")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalVertexLabel(nil); !errors.Is(err, ErrBadLabel) {
		t.Fatalf("nil vertex: %v", err)
	}
	if _, err := UnmarshalVertexLabel([]byte{0x56, 1, 2}); !errors.Is(err, ErrBadLabel) {
		t.Fatalf("short vertex: %v", err)
	}
	if _, err := UnmarshalEdgeLabel([]byte{0x00}); !errors.Is(err, ErrBadLabel) {
		t.Fatalf("bad magic: %v", err)
	}
	g := workload.Cycle(4)
	s, err := Build(g, Params{MaxFaults: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc := MarshalEdgeLabel(s.EdgeLabel(0))
	if _, err := UnmarshalEdgeLabel(enc[:len(enc)-3]); !errors.Is(err, ErrBadLabel) {
		t.Fatalf("truncated edge: %v", err)
	}
}

func TestVertexLabelSizeIsSmall(t *testing.T) {
	// O(log n) bits per vertex: concretely a constant 21 bytes here.
	g := workload.Grid(8, 8)
	s := mustBuild(t, g, Params{MaxFaults: 3})
	if bits := VertexLabelBits(s.VertexLabel(0)); bits > 200 {
		t.Fatalf("vertex label is %d bits — should be tiny", bits)
	}
	if s.MaxEdgeLabelBits() <= 0 {
		t.Fatal("edge label size accounting broken")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Build(workload.Cycle(3), Params{MaxFaults: -1}); err == nil {
		t.Fatal("negative fault budget accepted")
	}
	if _, err := Build(workload.Cycle(3), Params{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTreeOnlyGraph(t *testing.T) {
	// A tree has no non-tree edges: any tree-edge fault disconnects.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}, {3, 5}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	s := mustBuild(t, g, Params{MaxFaults: 2})
	exhaustiveCheck(t, g, s, 2)
}

func TestZeroFaultBudget(t *testing.T) {
	g := workload.Cycle(5)
	s := mustBuild(t, g, Params{MaxFaults: 0})
	sl, tl, _ := queryLabels(s, 0, 3, nil)
	got, err := Connected(sl, tl, nil)
	if err != nil || !got {
		t.Fatalf("f=0 query: got=%v err=%v", got, err)
	}
}
