package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/ancestry"
	"repro/internal/euler"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/rs"
	"repro/internal/sketch"
)

// Params configures Build.
type Params struct {
	// MaxFaults is the fault budget f ≥ 0 the labels must support.
	MaxFaults int
	// Kind selects the outdetect substrate; zero means KindDetNetFind.
	Kind Kind
	// Seed drives the randomized kinds (sampling hierarchy, AGM hashes).
	Seed int64
	// Threshold overrides the Reed–Solomon threshold k(f, m). Nil uses
	// hierarchy.DefaultThreshold (or SamplingThreshold for KindRandRS).
	// See DESIGN.md §3.4 for the practical-vs-theory trade-off.
	Threshold func(f, m int) int
	// GreedyGamma overrides the rectangle weight of the greedy ε-net
	// (KindDetGreedy only); zero picks a default.
	GreedyGamma int
	// AGMReps overrides the repetition count of KindAGM; zero picks
	// ⌈log₂ m⌉ (whp support). Full support scales this by f.
	AGMReps int
}

// Scheme holds the labels of one construction. The labels themselves are
// self-contained; Scheme only provides access, accounting, and test hooks.
type Scheme struct {
	params Params
	token  uint64
	spec   OutSpec
	n      int

	vertexLabels []VertexLabel
	edgeLabels   []EdgeLabel

	// Construction artifacts retained for experiments and white-box
	// tests; the decoder never touches them.
	Forest    *graph.Forest
	Hierarchy *hierarchy.Hierarchy
}

// aux is the auxiliary graph G′ of §3.2: every non-tree edge e = (u, v) is
// subdivided by a fresh vertex x_e; the half (u, x_e) joins the spanning
// tree T′ (it is σ(e)) and the half (x_e, v) is the unique non-tree edge at
// x_e.
type aux struct {
	n        int // original vertex count
	forest   *graph.Forest
	tprime   *graph.Forest // spanning forest of G′ (Parent/Children/Roots/Comp only)
	anc      *ancestry.Labeling
	tour     *euler.Tour
	nonTree  []int // G edge indices of non-tree edges, ascending
	xVertex  []int // xVertex[j]: subdivision vertex of nonTree[j] in G′
	attachAt []int // attachAt[j]: the G-endpoint that parents x_e
	farEnd   []int // farEnd[j]: the other G-endpoint (reached by e′)
	// childOf[e] is the child-side T′ vertex of σ(e), for every G edge e.
	childOf []int
}

func buildAux(g *graph.Graph, f *graph.Forest) *aux {
	n := g.N()
	a := &aux{n: n, forest: f}
	for e := range g.Edges {
		if !f.IsTreeEdge[e] {
			a.nonTree = append(a.nonTree, e)
		}
	}
	nPrime := n + len(a.nonTree)
	tp := &graph.Forest{
		Parent:   make([]int, nPrime),
		Children: make([][]int, nPrime),
		Roots:    append([]int(nil), f.Roots...),
		Comp:     make([]int, nPrime),
	}
	copy(tp.Parent, f.Parent)
	copy(tp.Comp, f.Comp)
	for v := 0; v < n; v++ {
		tp.Children[v] = append([]int(nil), f.Children[v]...)
	}
	a.xVertex = make([]int, len(a.nonTree))
	a.attachAt = make([]int, len(a.nonTree))
	a.farEnd = make([]int, len(a.nonTree))
	for j, e := range a.nonTree {
		edge := g.Edges[e]
		x := n + j
		a.xVertex[j] = x
		a.attachAt[j] = edge.U
		a.farEnd[j] = edge.V
		tp.Parent[x] = edge.U
		tp.Comp[x] = f.Comp[edge.U]
		tp.Children[edge.U] = append(tp.Children[edge.U], x)
	}
	a.tprime = tp
	a.anc = ancestry.Build(tp)
	a.tour = euler.Build(tp)
	a.childOf = make([]int, g.M())
	for e, edge := range g.Edges {
		if f.IsTreeEdge[e] {
			// The child side is the endpoint whose forest parent is
			// the other endpoint.
			if f.Parent[edge.V] == edge.U {
				a.childOf[e] = edge.V
			} else {
				a.childOf[e] = edge.U
			}
		}
	}
	for j, e := range a.nonTree {
		a.childOf[e] = a.xVertex[j]
	}
	return a
}

// points returns the Euler-tour embedding of the non-tree edges of G′,
// tagged with G edge indices.
func (a *aux) points() []euler.Point {
	pts := make([]euler.Point, 0, len(a.nonTree))
	for j, e := range a.nonTree {
		x, y := a.tour.C[a.xVertex[j]], a.tour.C[a.farEnd[j]]
		if x > y {
			x, y = y, x
		}
		pts = append(pts, euler.Point{X: x, Y: y, Edge: e})
	}
	return pts
}

// idOf returns the GF(2^64) edge ID of non-tree slot j: the packed preorders
// of x_e and the far endpoint in T′.
func (a *aux) idOf(j int) uint64 {
	return edgeID(a.anc.Of(a.xVertex[j]).Pre, a.anc.Of(a.farEnd[j]).Pre)
}

// Build constructs an f-FTC labeling scheme for g (Theorem 1 / Theorem 2).
func Build(g *graph.Graph, p Params) (*Scheme, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if p.MaxFaults < 0 {
		return nil, fmt.Errorf("core: negative fault budget %d", p.MaxFaults)
	}
	if p.Kind == 0 {
		p.Kind = KindDetNetFind
	}
	f := graph.SpanningForest(g)
	a := buildAux(g, f)
	m := g.M()
	if m < 2 {
		m = 2
	}

	spec := OutSpec{Kind: p.Kind, Seed: p.Seed}
	var levels *hierarchy.Hierarchy
	pts := a.points()
	switch p.Kind {
	case KindDetNetFind, KindDetGreedy, KindRandRS:
		k := 0
		switch {
		case p.Threshold != nil:
			k = p.Threshold(p.MaxFaults, m)
		case p.Kind == KindRandRS:
			k = hierarchy.SamplingThreshold(p.MaxFaults, g.N()+len(a.nonTree))
		default:
			k = hierarchy.DefaultThreshold(p.MaxFaults, m)
		}
		if k < 1 {
			k = 1
		}
		switch p.Kind {
		case KindDetNetFind:
			levels = hierarchy.BuildNetFind(pts, k)
		case KindDetGreedy:
			gamma := p.GreedyGamma
			if gamma == 0 {
				gamma = defaultGreedyGamma(m)
			}
			levels = hierarchy.BuildGreedy(pts, gamma, k)
		case KindRandRS:
			levels = hierarchy.BuildSampling(pts, k, rand.New(rand.NewSource(p.Seed)))
		}
		spec.K = k
		spec.Levels = levels.Depth()
		if spec.Levels == 0 {
			// A tree has no non-tree edges; keep one empty level so
			// payload shapes stay nonzero and decoding is uniform.
			spec.Levels = 1
			levels = &hierarchy.Hierarchy{Levels: [][]int{nil}}
		}
	case KindAGM:
		spec.Buckets = sketch.DefaultBuckets(m)
		spec.Reps = p.AGMReps
		if spec.Reps == 0 {
			spec.Reps = defaultAGMReps(m)
		}
	default:
		return nil, fmt.Errorf("core: unknown scheme kind %d", p.Kind)
	}

	s := &Scheme{
		params:    p,
		spec:      spec,
		n:         g.N(),
		Forest:    f,
		Hierarchy: levels,
	}
	s.token = s.computeToken(g)
	s.buildLabels(g, a, levels)
	return s, nil
}

func defaultGreedyGamma(m int) int {
	g := 2
	for v := m; v > 1; v /= 2 {
		g++
	}
	return g
}

func defaultAGMReps(m int) int {
	r := 1
	for v := m; v > 1; v /= 2 {
		r++
	}
	if r < 4 {
		r = 4
	}
	return r
}

// computeToken fingerprints the graph and construction parameters so that
// the decoder can reject mixed labels.
func (s *Scheme) computeToken(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		if _, err := h.Write(buf[:]); err != nil {
			panic("core: fnv write cannot fail: " + err.Error())
		}
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	for _, e := range g.Edges {
		put(uint64(e.U)<<32 | uint64(e.V))
	}
	put(uint64(s.params.MaxFaults))
	put(uint64(s.spec.Kind))
	put(uint64(s.spec.K))
	put(uint64(s.spec.Levels))
	put(uint64(s.spec.Reps))
	put(uint64(s.spec.Buckets))
	put(uint64(s.spec.Seed))
	return h.Sum64()
}

// buildLabels computes every vertex and edge label: ancestry labels for
// vertices, and for each G edge the endpoint labels of σ(e) plus the
// outdetect subtree aggregate L^out(V_{T′}(σ(e))) of Proposition 4,
// accumulated level by level to bound peak memory.
func (s *Scheme) buildLabels(g *graph.Graph, a *aux, levels *hierarchy.Hierarchy) {
	s.vertexLabels = make([]VertexLabel, g.N())
	for v := 0; v < g.N(); v++ {
		s.vertexLabels[v] = VertexLabel{Token: s.token, Anc: a.anc.Of(v)}
	}
	words := s.spec.Words()
	s.edgeLabels = make([]EdgeLabel, g.M())
	for e := range g.Edges {
		child := a.childOf[e]
		parent := a.tprime.Parent[child]
		s.edgeLabels[e] = EdgeLabel{
			Token:     s.token,
			MaxFaults: s.params.MaxFaults,
			Spec:      s.spec,
			Parent:    a.anc.Of(parent),
			Child:     a.anc.Of(child),
			Out:       make([]uint64, words),
		}
	}

	// slotOf maps a non-tree G edge index to its slot j in a.nonTree.
	slotOf := make(map[int]int, len(a.nonTree))
	for j, e := range a.nonTree {
		slotOf[e] = j
	}
	nPrime := len(a.tprime.Parent)
	// preOrderVerts[i] = vertex with preorder i+1; reverse iteration gives
	// children-before-parents, which makes the in-place subtree XOR work.
	preOrder := make([]int, nPrime)
	for v := 0; v < nPrime; v++ {
		preOrder[a.anc.Of(v).Pre-1] = v
	}

	if s.spec.Kind == KindAGM {
		agm := sketch.Spec{Reps: s.spec.Reps, Buckets: s.spec.Buckets, Seed: s.spec.Seed}
		acc := make([]uint64, nPrime*words)
		for j := range a.nonTree {
			id := a.idOf(j)
			agm.AddEdge(acc[a.xVertex[j]*words:(a.xVertex[j]+1)*words], id)
			agm.AddEdge(acc[a.farEnd[j]*words:(a.farEnd[j]+1)*words], id)
		}
		s.foldSubtrees(g, a, preOrder, acc, words, 0)
		return
	}

	stride := 2 * s.spec.K
	acc := make([]uint64, nPrime*stride)
	for lvl, level := range levels.Levels {
		for i := range acc {
			acc[i] = 0
		}
		for _, e := range level {
			j := slotOf[e]
			id := a.idOf(j)
			addPowers(acc[a.xVertex[j]*stride:(a.xVertex[j]+1)*stride], id)
			addPowers(acc[a.farEnd[j]*stride:(a.farEnd[j]+1)*stride], id)
		}
		s.foldSubtrees(g, a, preOrder, acc, stride, lvl*stride)
	}
}

// foldSubtrees turns per-vertex payload blocks into subtree aggregates in
// place (reverse preorder pushes each vertex's block into its parent), then
// copies each G edge's child-subtree block into the edge label at dstOff.
func (s *Scheme) foldSubtrees(g *graph.Graph, a *aux, preOrder []int, acc []uint64, stride, dstOff int) {
	for i := len(preOrder) - 1; i >= 0; i-- {
		v := preOrder[i]
		p := a.tprime.Parent[v]
		if p < 0 {
			continue
		}
		src := acc[v*stride : (v+1)*stride]
		dst := acc[p*stride : (p+1)*stride]
		for w := range src {
			dst[w] ^= src[w]
		}
	}
	for e := range g.Edges {
		child := a.childOf[e]
		copy(s.edgeLabels[e].Out[dstOff:dstOff+stride], acc[child*stride:(child+1)*stride])
	}
}

// addPowers folds edge ID alpha's first len(dst) power sums into dst (the
// Reed–Solomon row of the parity-check matrix, Proposition 2).
func addPowers(dst []uint64, alpha uint64) {
	rs.Sketch(dst).AddEdge(alpha)
}

// N returns the vertex count of the labeled graph.
func (s *Scheme) N() int { return s.n }

// Spec returns the outdetect payload descriptor.
func (s *Scheme) Spec() OutSpec { return s.spec }

// MaxFaults returns the fault budget f.
func (s *Scheme) MaxFaults() int { return s.params.MaxFaults }

// Token returns the scheme fingerprint embedded in every label.
func (s *Scheme) Token() uint64 { return s.token }

// VertexLabel returns vertex v's label.
func (s *Scheme) VertexLabel(v int) VertexLabel { return s.vertexLabels[v] }

// EdgeLabel returns edge e's label. The Out slice is shared with the
// scheme's storage and must be treated as immutable; MarshalEdgeLabel / the
// public facade produce independent copies.
func (s *Scheme) EdgeLabel(e int) EdgeLabel { return s.edgeLabels[e] }
