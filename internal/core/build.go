package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ancestry"
	"repro/internal/euler"
	"repro/internal/graph"
	"repro/internal/hierarchy"
	"repro/internal/rs"
	"repro/internal/sketch"
)

// Params configures Build.
type Params struct {
	// MaxFaults is the fault budget f ≥ 0 the labels must support.
	MaxFaults int
	// Kind selects the outdetect substrate; zero means KindDetNetFind.
	Kind Kind
	// Seed drives the randomized kinds (sampling hierarchy, AGM hashes).
	Seed int64
	// Threshold overrides the Reed–Solomon threshold k(f, m). Nil uses
	// hierarchy.DefaultThreshold (or SamplingThreshold for KindRandRS).
	// See DESIGN.md §3.4 for the practical-vs-theory trade-off.
	Threshold func(f, m int) int
	// GreedyGamma overrides the rectangle weight of the greedy ε-net
	// (KindDetGreedy only); zero picks a default.
	GreedyGamma int
	// AGMReps overrides the repetition count of KindAGM; zero picks
	// ⌈log₂ m⌉ (whp support). Full support scales this by f.
	AGMReps int
	// AuxSlack reserves that many extra preorder slots per original vertex
	// in the auxiliary tree T′'s ancestry numbering. Zero (the static
	// default) numbers densely; the dynamic update path (Dynamic) builds
	// with headroom so that new subdivision leaves can be attached without
	// renumbering. AuxSlack participates in the scheme token: gapped and
	// dense labelings of the same graph are different labelings and must
	// not mix.
	AuxSlack int
}

// Scheme holds the labels of one construction. The labels themselves are
// self-contained; Scheme only provides access, accounting, and test hooks.
type Scheme struct {
	params Params
	token  uint64
	gen    uint64 // generation stamp; 0 for static builds
	spec   OutSpec
	n      int
	g      *graph.Graph

	vertexLabels []VertexLabel
	edgeLabels   []EdgeLabel

	// lazy is non-nil only for schemes loaded from a version-3 snapshot:
	// labels live in the zero-copy arena and are decoded on first touch.
	// Built (and v1/v2-loaded) schemes keep the materialized slices above.
	lazy *labelArena

	// Construction artifacts retained for experiments and white-box
	// tests; the decoder never touches them.
	Forest    *graph.Forest
	Hierarchy *hierarchy.Hierarchy
}

// aux is the auxiliary graph G′ of §3.2: every non-tree edge e = (u, v) is
// subdivided by a fresh vertex x_e; the half (u, x_e) joins the spanning
// tree T′ (it is σ(e)) and the half (x_e, v) is the unique non-tree edge at
// x_e.
type aux struct {
	n        int // original vertex count
	forest   *graph.Forest
	tprime   *graph.Forest // spanning forest of G′ (Parent/Children/Roots/Comp only)
	anc      *ancestry.Labeling
	tour     *euler.Tour
	nonTree  []int // G edge indices of non-tree edges, ascending
	xVertex  []int // xVertex[j]: subdivision vertex of nonTree[j] in G′
	attachAt []int // attachAt[j]: the G-endpoint that parents x_e
	farEnd   []int // farEnd[j]: the other G-endpoint (reached by e′)
	// childOf[e] is the child-side T′ vertex of σ(e), for every G edge e.
	childOf []int
}

func buildAux(g *graph.Graph, f *graph.Forest, slack int) *aux {
	n := g.N()
	a := &aux{n: n, forest: f}
	for e := range g.Edges {
		if !f.IsTreeEdge[e] {
			a.nonTree = append(a.nonTree, e)
		}
	}
	nPrime := n + len(a.nonTree)
	tp := &graph.Forest{
		Parent:   make([]int, nPrime),
		Children: make([][]int, nPrime),
		Roots:    append([]int(nil), f.Roots...),
		Comp:     make([]int, nPrime),
	}
	copy(tp.Parent, f.Parent)
	copy(tp.Comp, f.Comp)
	for v := 0; v < n; v++ {
		tp.Children[v] = append([]int(nil), f.Children[v]...)
	}
	a.xVertex = make([]int, len(a.nonTree))
	a.attachAt = make([]int, len(a.nonTree))
	a.farEnd = make([]int, len(a.nonTree))
	for j, e := range a.nonTree {
		edge := g.Edges[e]
		x := n + j
		a.xVertex[j] = x
		a.attachAt[j] = edge.U
		a.farEnd[j] = edge.V
		tp.Parent[x] = edge.U
		tp.Comp[x] = f.Comp[edge.U]
		tp.Children[edge.U] = append(tp.Children[edge.U], x)
	}
	a.tprime = tp
	if slack > 0 {
		a.anc = ancestry.BuildWithSlack(tp, func(v int) int {
			if v < n {
				return slack
			}
			return 0 // subdivision vertices stay leaves forever
		})
	} else {
		a.anc = ancestry.Build(tp)
	}
	a.tour = euler.Build(tp)
	a.childOf = make([]int, g.M())
	for e, edge := range g.Edges {
		if f.IsTreeEdge[e] {
			// The child side is the endpoint whose forest parent is
			// the other endpoint.
			if f.Parent[edge.V] == edge.U {
				a.childOf[e] = edge.V
			} else {
				a.childOf[e] = edge.U
			}
		}
	}
	for j, e := range a.nonTree {
		a.childOf[e] = a.xVertex[j]
	}
	return a
}

// points returns the Euler-tour embedding of the non-tree edges of G′,
// tagged with G edge indices.
func (a *aux) points() []euler.Point {
	pts := make([]euler.Point, 0, len(a.nonTree))
	for j, e := range a.nonTree {
		x, y := a.tour.C[a.xVertex[j]], a.tour.C[a.farEnd[j]]
		if x > y {
			x, y = y, x
		}
		pts = append(pts, euler.Point{X: x, Y: y, Edge: e})
	}
	return pts
}

// idOf returns the GF(2^64) edge ID of non-tree slot j: the packed preorders
// of x_e and the far endpoint in T′.
func (a *aux) idOf(j int) uint64 {
	return edgeID(a.anc.Of(a.xVertex[j]).Pre, a.anc.Of(a.farEnd[j]).Pre)
}

// Build constructs an f-FTC labeling scheme for g (Theorem 1 / Theorem 2).
func Build(g *graph.Graph, p Params) (*Scheme, error) {
	return buildWith(g, p, 0)
}

// buildWith is Build with an explicit generation stamp — the full-rebuild
// path of the dynamic update engine. gen is folded into the scheme token
// and stamped on every label; static builds pass 0.
func buildWith(g *graph.Graph, p Params, gen uint64) (*Scheme, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if p.MaxFaults < 0 {
		return nil, fmt.Errorf("core: negative fault budget %d", p.MaxFaults)
	}
	if p.AuxSlack < 0 {
		return nil, fmt.Errorf("core: negative aux slack %d", p.AuxSlack)
	}
	if p.Kind == 0 {
		p.Kind = KindDetNetFind
	}
	f := graph.SpanningForest(g)
	a := buildAux(g, f, p.AuxSlack)
	m := g.M()
	if m < 2 {
		m = 2
	}

	spec := OutSpec{Kind: p.Kind, Seed: p.Seed}
	var levels *hierarchy.Hierarchy
	pts := a.points()
	switch p.Kind {
	case KindDetNetFind, KindDetGreedy, KindRandRS:
		k := 0
		switch {
		case p.Threshold != nil:
			k = p.Threshold(p.MaxFaults, m)
		case p.Kind == KindRandRS:
			k = hierarchy.SamplingThreshold(p.MaxFaults, g.N()+len(a.nonTree))
		default:
			k = hierarchy.DefaultThreshold(p.MaxFaults, m)
		}
		if k < 1 {
			k = 1
		}
		switch p.Kind {
		case KindDetNetFind:
			levels = hierarchy.BuildNetFind(pts, k)
		case KindDetGreedy:
			gamma := p.GreedyGamma
			if gamma == 0 {
				gamma = defaultGreedyGamma(m)
			}
			levels = hierarchy.BuildGreedy(pts, gamma, k)
		case KindRandRS:
			levels = hierarchy.BuildSampling(pts, k, rand.New(rand.NewSource(p.Seed)))
		}
		spec.K = k
		spec.Levels = levels.Depth()
		if spec.Levels == 0 {
			// A tree has no non-tree edges; keep one empty level so
			// payload shapes stay nonzero and decoding is uniform.
			spec.Levels = 1
			levels = &hierarchy.Hierarchy{Levels: [][]int{nil}}
		}
	case KindAGM:
		spec.Buckets = sketch.DefaultBuckets(m)
		spec.Reps = p.AGMReps
		if spec.Reps == 0 {
			spec.Reps = defaultAGMReps(m)
		}
	default:
		return nil, fmt.Errorf("core: unknown scheme kind %d", p.Kind)
	}

	s := &Scheme{
		params:    p,
		gen:       gen,
		spec:      spec,
		n:         g.N(),
		g:         g,
		Forest:    f,
		Hierarchy: levels,
	}
	s.token = s.computeToken(g)
	s.buildLabels(g, a, levels)
	return s, nil
}

func defaultGreedyGamma(m int) int {
	g := 2
	for v := m; v > 1; v /= 2 {
		g++
	}
	return g
}

func defaultAGMReps(m int) int {
	r := 1
	for v := m; v > 1; v /= 2 {
		r++
	}
	if r < 4 {
		r = 4
	}
	return r
}

// computeToken fingerprints the graph and construction parameters so that
// the decoder can reject mixed labels.
func (s *Scheme) computeToken(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		if _, err := h.Write(buf[:]); err != nil {
			panic("core: fnv write cannot fail: " + err.Error())
		}
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	for _, e := range g.Edges {
		put(uint64(e.U)<<32 | uint64(e.V))
	}
	put(uint64(s.params.MaxFaults))
	put(uint64(s.spec.Kind))
	put(uint64(s.spec.K))
	put(uint64(s.spec.Levels))
	put(uint64(s.spec.Reps))
	put(uint64(s.spec.Buckets))
	put(uint64(s.spec.Seed))
	if s.params.AuxSlack != 0 || s.gen != 0 {
		// Dynamic-network extension: the ancestry layout (slack) and the
		// generation both change the labeling, so both must change the
		// token. Static schemes keep the historical byte stream, so their
		// tokens — and every v1 snapshot — are unchanged.
		put(uint64(s.params.AuxSlack))
		put(s.gen)
	}
	return h.Sum64()
}

// buildWorkers caps the level-folding worker pool; 0 means GOMAXPROCS.
// It is a package variable only so the equivalence tests can force a
// specific pool size (1 = sequential reference, >1 = genuinely concurrent).
var buildWorkers int

// buildLabels computes every vertex and edge label: ancestry labels for
// vertices, and for each G edge the endpoint labels of σ(e) plus the
// outdetect subtree aggregate L^out(V_{T′}(σ(e))) of Proposition 4.
//
// The Reed–Solomon kinds run the construction hot path described in
// DESIGN.md §3.7: each non-tree edge's 2k-power vector is computed exactly
// once (gf.Table-cached Horner chain) into a shared read-only arena, and the
// per-level accumulate-and-fold passes — which write to disjoint
// Out[lvl*stride:] segments — run on a bounded worker pool with reusable
// per-worker scratch.
func (s *Scheme) buildLabels(g *graph.Graph, a *aux, levels *hierarchy.Hierarchy) {
	s.vertexLabels = make([]VertexLabel, g.N())
	for v := 0; v < g.N(); v++ {
		s.vertexLabels[v] = VertexLabel{Token: s.token, Gen: s.gen, Anc: a.anc.Of(v)}
	}
	words := s.spec.Words()
	s.edgeLabels = make([]EdgeLabel, g.M())
	// One contiguous slab backs every Out slice: a single large (page-
	// zeroed) allocation instead of m small ones, and sequential locality
	// for the per-level emission pass. Labels already share scheme storage
	// by contract (see EdgeLabel); marshaling copies.
	slab := make([]uint64, g.M()*words)
	for e := range g.Edges {
		child := a.childOf[e]
		parent := a.tprime.Parent[child]
		s.edgeLabels[e] = EdgeLabel{
			Token:     s.token,
			Gen:       s.gen,
			MaxFaults: s.params.MaxFaults,
			Spec:      s.spec,
			Parent:    a.anc.Of(parent),
			Child:     a.anc.Of(child),
			Out:       slab[e*words : (e+1)*words : (e+1)*words],
		}
	}

	nPrime := len(a.tprime.Parent)
	// preOrder[i] = vertex with preorder i+1; reverse iteration gives
	// children-before-parents, which makes the in-place subtree XOR work.
	// With aux slack the numbering has reserved gaps, marked -1 and skipped
	// by the fold.
	preOrder := make([]int, a.anc.MaxPre())
	for i := range preOrder {
		preOrder[i] = -1
	}
	for v := 0; v < nPrime; v++ {
		preOrder[a.anc.Of(v).Pre-1] = v
	}

	if s.spec.Kind == KindAGM {
		agm := sketch.Spec{Reps: s.spec.Reps, Buckets: s.spec.Buckets, Seed: s.spec.Seed}
		scr := newLevelScratch(nPrime, words)
		for j := range a.nonTree {
			id := a.idOf(j)
			agm.AddEdge(scr.block(a.xVertex[j]), id)
			agm.AddEdge(scr.block(a.farEnd[j]), id)
			scr.dirty[a.xVertex[j]] = true
			scr.dirty[a.farEnd[j]] = true
		}
		s.foldSubtrees(g, a, preOrder, scr, nil, 0)
		return
	}

	stride := 2 * s.spec.K
	// slotOf[e] is the a.nonTree slot of non-tree G edge e (dense — the
	// map it replaces dominated the accumulate loop's cache profile).
	slotOf := make([]int, g.M())
	for j, e := range a.nonTree {
		slotOf[e] = j
	}
	// Only tree edges need the fold-based emission; non-tree labels are
	// written directly from the arena in runLevel.
	treeEdges := make([]int, 0, g.M()-len(a.nonTree))
	for e := range g.Edges {
		if s.Forest.IsTreeEdge[e] {
			treeEdges = append(treeEdges, e)
		}
	}
	// The power arena: powers[j*stride:(j+1)*stride] is the full
	// Reed–Solomon row (α_j, α_j², …, α_j^2k) of non-tree slot j. A
	// non-tree edge occupies every hierarchy level up to its drop-out
	// depth, so computing the row once here and XOR-folding it per level
	// replaces depth× redundant Horner chains with cheap vector XORs.
	powers := make([]uint64, len(a.nonTree)*stride)
	for j := range a.nonTree {
		rs.PowerRow(powers[j*stride:(j+1)*stride], a.idOf(j))
	}

	workers := buildWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(levels.Levels) {
		workers = len(levels.Levels)
	}
	if workers <= 1 {
		scr := newLevelScratch(nPrime, stride)
		for lvl, level := range levels.Levels {
			s.runLevel(g, a, preOrder, slotOf, treeEdges, powers, level, scr, lvl*stride)
		}
		return
	}
	// Levels are independent: level lvl reads the shared arena and writes
	// only the disjoint Out[lvl*stride:(lvl+1)*stride] segment of each
	// edge label, so a simple atomic work counter suffices.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scr := newLevelScratch(nPrime, stride)
			for {
				lvl := int(next.Add(1)) - 1
				if lvl >= len(levels.Levels) {
					return
				}
				s.runLevel(g, a, preOrder, slotOf, treeEdges, powers, levels.Levels[lvl], scr, lvl*stride)
			}
		}()
	}
	wg.Wait()
}

// levelScratch is one worker's reusable accumulation state: a per-vertex
// payload buffer plus a dirty set so that folding, emission, and re-zeroing
// touch only the vertices a level actually reached — not all of O(n′·stride)
// per level, which is what the previous shared-buffer pipeline paid.
type levelScratch struct {
	acc    []uint64
	dirty  []bool
	stride int
}

func newLevelScratch(nPrime, stride int) *levelScratch {
	return &levelScratch{
		acc:    make([]uint64, nPrime*stride),
		dirty:  make([]bool, nPrime),
		stride: stride,
	}
}

// block returns vertex v's payload block.
func (scr *levelScratch) block(v int) []uint64 {
	return scr.acc[v*scr.stride : (v+1)*scr.stride]
}

// runLevel accumulates one hierarchy level's edge rows from the power arena
// and folds them into the dstOff segment of every edge label.
//
// The subdivision vertex x_e is a leaf touched only by its own edge e, so
// its subtree aggregate at this level is exactly e's row: it is copied
// straight into e's label segment and XORed into its T′ parent (what the
// fold would have done), and x_e's scratch block is never materialized.
func (s *Scheme) runLevel(g *graph.Graph, a *aux, preOrder, slotOf, treeEdges []int, powers []uint64, level []int, scr *levelScratch, dstOff int) {
	stride := scr.stride
	for _, e := range level {
		j := slotOf[e]
		row := powers[j*stride : (j+1)*stride]
		copy(s.edgeLabels[e].Out[dstOff:dstOff+stride], row)
		xorInto(scr.block(a.attachAt[j]), row)
		xorInto(scr.block(a.farEnd[j]), row)
		scr.dirty[a.attachAt[j]] = true
		scr.dirty[a.farEnd[j]] = true
	}
	s.foldSubtrees(g, a, preOrder, scr, treeEdges, dstOff)
}

// foldSubtrees turns per-vertex payload blocks into subtree aggregates in
// place (reverse preorder pushes each dirty vertex's block into its parent),
// copies each G edge's child-subtree block into the edge label at dstOff,
// then re-zeroes exactly the dirty blocks so the scratch is ready for the
// worker's next level. Vertices never marked dirty hold all-zero blocks, so
// skipping them leaves the (pre-zeroed) label segments untouched — the
// output is byte-identical to the dense pass.
//
// emit selects which G edges to copy out: the Reed–Solomon levels pass only
// tree edges (runLevel emits non-tree labels directly from the arena), the
// AGM path passes nil meaning all edges.
func (s *Scheme) foldSubtrees(g *graph.Graph, a *aux, preOrder []int, scr *levelScratch, emit []int, dstOff int) {
	stride := scr.stride
	for i := len(preOrder) - 1; i >= 0; i-- {
		v := preOrder[i]
		if v < 0 || !scr.dirty[v] {
			continue
		}
		p := a.tprime.Parent[v]
		if p < 0 {
			continue
		}
		xorInto(scr.block(p), scr.block(v))
		scr.dirty[p] = true
	}
	if emit == nil {
		for e := range g.Edges {
			child := a.childOf[e]
			if scr.dirty[child] {
				copy(s.edgeLabels[e].Out[dstOff:dstOff+stride], scr.block(child))
			}
		}
	} else {
		for _, e := range emit {
			child := a.childOf[e]
			if scr.dirty[child] {
				copy(s.edgeLabels[e].Out[dstOff:dstOff+stride], scr.block(child))
			}
		}
	}
	for v, d := range scr.dirty {
		if d {
			clear(scr.block(v))
			scr.dirty[v] = false
		}
	}
}

// xorInto folds src into dst elementwise (GF(2) vector addition), unrolled
// four-wide so the payload strides (always ≥ 2k words) stream without
// per-element bounds checks.
func xorInto(dst, src []uint64) {
	for len(src) >= 4 && len(dst) >= 4 {
		dst[0] ^= src[0]
		dst[1] ^= src[1]
		dst[2] ^= src[2]
		dst[3] ^= src[3]
		dst, src = dst[4:], src[4:]
	}
	for w, x := range src {
		dst[w] ^= x
	}
}

// N returns the vertex count of the labeled graph.
func (s *Scheme) N() int { return s.n }

// Graph returns the labeled graph (read-only). It is retained for the
// application layers (edge-index resolution in the serving daemon) and for
// snapshotting; the decoder never touches it.
func (s *Scheme) Graph() *graph.Graph { return s.g }

// Spec returns the outdetect payload descriptor.
func (s *Scheme) Spec() OutSpec { return s.spec }

// MaxFaults returns the fault budget f.
func (s *Scheme) MaxFaults() int { return s.params.MaxFaults }

// Token returns the scheme fingerprint embedded in every label.
func (s *Scheme) Token() uint64 { return s.token }

// Generation returns the scheme's generation stamp: 0 for static builds,
// and the committed generation for schemes produced by a Dynamic network.
func (s *Scheme) Generation() uint64 { return s.gen }

// VertexLabel returns vertex v's label.
func (s *Scheme) VertexLabel(v int) VertexLabel {
	if s.lazy != nil {
		return s.lazy.vertex(v)
	}
	return s.vertexLabels[v]
}

// EdgeLabel returns edge e's label. The Out slice is shared with the
// scheme's storage and must be treated as immutable; MarshalEdgeLabel / the
// public facade produce independent copies.
func (s *Scheme) EdgeLabel(e int) EdgeLabel {
	if s.lazy != nil {
		return s.lazy.edge(e)
	}
	return s.edgeLabels[e]
}

// LazyLabels reports whether the scheme's labels live in a v3 snapshot
// arena and, if so, how many of each kind have been decoded so far —
// the observability hook behind the lazy-load tests and benchmarks.
func (s *Scheme) LazyLabels() (lazy bool, verts, edges int) {
	if s.lazy == nil {
		return false, 0, 0
	}
	verts, edges = s.lazy.resident()
	return true, verts, edges
}
