// Package core assembles the paper's f-FTC labeling framework (§3, §5–§7):
// the auxiliary-graph transform (Proposition 1), the tree-edge scheme built
// from ancestry labels plus an outdetect labeling (Lemma 1), the top-down
// hierarchy decoder (Lemma 2), and both the basic (§7.2) and the heap-driven
// fast (§7.6) query algorithms, with adaptive Reed–Solomon prefix decoding
// (Appendix B).
//
// The package is generic over the outdetect substrate: the deterministic
// Reed–Solomon hierarchies (NetFind or greedy ε-net), the randomized
// Reed–Solomon sampling hierarchy, and the AGM baseline sketch all produce
// GF(2)-linear payloads described by an OutSpec, so the surrounding
// machinery — which is exactly the part the paper inherits from Dory–Parter
// — is shared verbatim across all four scheme rows of Table 1.
package core

import (
	"errors"
	"fmt"

	"repro/internal/ancestry"
	"repro/internal/rs"
	"repro/internal/sketch"
)

// Kind selects the outdetect substrate.
type Kind uint8

const (
	// KindDetNetFind is the paper's headline scheme: Reed–Solomon
	// outdetect over the deterministic NetFind hierarchy
	// (Theorem 1, near-linear construction, O(f² log³ n)-bit labels).
	KindDetNetFind Kind = iota + 1
	// KindDetGreedy replaces NetFind with the polynomial-time greedy
	// canonical ε-net (the [MDG18] slot; see DESIGN.md §3.5).
	KindDetGreedy
	// KindRandRS keeps the Reed–Solomon outdetect but randomizes the
	// hierarchy by edge sampling (the paper's improved randomized scheme
	// with full query support, Table 1 row 3).
	KindRandRS
	// KindAGM is the Dory–Parter second scheme: randomized AGM sketches,
	// whp or full query support depending on the repetition count.
	KindAGM
)

func (k Kind) String() string {
	switch k {
	case KindDetNetFind:
		return "det-netfind"
	case KindDetGreedy:
		return "det-greedy"
	case KindRandRS:
		return "rand-rs"
	case KindAGM:
		return "agm"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Deterministic reports whether the scheme kind gives deterministic (full)
// query support.
func (k Kind) Deterministic() bool { return k == KindDetNetFind || k == KindDetGreedy }

// OutSpec describes the shape, parameters, and (for randomized kinds) seed
// of the outdetect payload carried by every edge label. It is part of each
// label so the decoder stays universal.
type OutSpec struct {
	Kind    Kind
	K       int   // Reed–Solomon threshold per hierarchy level (RS kinds)
	Levels  int   // hierarchy depth (RS kinds)
	Reps    int   // AGM repetitions
	Buckets int   // AGM sampling levels
	Seed    int64 // AGM hash seed
}

// Words returns the []uint64 length of one outdetect payload.
func (s OutSpec) Words() int {
	switch s.Kind {
	case KindAGM:
		return sketch.Spec{Reps: s.Reps, Buckets: s.Buckets, Seed: s.Seed}.Words()
	default:
		return s.Levels * 2 * s.K
	}
}

// ErrDecode wraps outdetect decoding failures: impossible for the
// deterministic kinds when the hierarchy is good (and detected rather than
// silent when a practical threshold is exceeded — DESIGN.md §3.4), and the
// measured whp failure mode for KindAGM.
var ErrDecode = errors.New("core: outdetect decoding failed")

// DecodeOutgoing recovers outgoing edge IDs from an aggregated payload.
// A nil slice with nil error means the boundary is empty. budget is the
// adaptive Reed–Solomon prefix budget (Appendix B): the number of boundary
// faults of the queried set scaled to a threshold; values ≤ 0 or ≥ K mean
// "use the full threshold". On a failed prefix decode the full threshold is
// retried before giving up, so adaptivity never costs correctness.
func (s OutSpec) DecodeOutgoing(payload []uint64, budget int) ([]uint64, error) {
	if len(payload) != s.Words() {
		return nil, fmt.Errorf("%w: payload has %d words, spec wants %d", ErrDecode, len(payload), s.Words())
	}
	if s.Kind == KindAGM {
		ids, err := sketch.Spec{Reps: s.Reps, Buckets: s.Buckets, Seed: s.Seed}.Decode(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		return ids, nil
	}
	if budget <= 0 || budget > s.K {
		budget = s.K
	}
	stride := 2 * s.K
	// Scan levels from the sparsest down (Lemma 2 / DESIGN.md §3.3): the
	// first level with a nonzero syndrome is guaranteed to hold between 1
	// and K outgoing edges.
	for lvl := s.Levels - 1; lvl >= 0; lvl-- {
		syn := rs.Sketch(payload[lvl*stride : (lvl+1)*stride])
		if syn.IsZero() {
			continue
		}
		ids, err := syn.Decode(budget)
		if err != nil && budget < s.K {
			ids, err = syn.Decode(s.K)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: level %d: %v", ErrDecode, lvl, err)
		}
		return ids, nil
	}
	return nil, nil
}

// VertexLabel is the O(log n)-bit per-vertex label: an ancestry label plus
// the scheme token that guards against mixing labels across graphs or
// constructions.
//
// Gen is the generation stamp of a dynamic network (zero for schemes built
// by Build). It is folded into Token — so labels from different generations
// never validate against each other — and carried separately, in memory
// only, so that the decoder can report the mix as ErrStaleLabel instead of
// a bare ErrLabelMismatch. The wire encoding omits it.
type VertexLabel struct {
	Token uint64
	Gen   uint64
	Anc   ancestry.Label
}

// EdgeLabel is the per-edge label: the ancestry labels of the two endpoints
// of σ(e) in the auxiliary spanning tree T′ (Parent being the endpoint
// nearer the root), the outdetect subtree aggregate of Proposition 4, and
// enough header data (spec, fault budget, token) to keep the decoder
// universal. Gen is the in-memory generation stamp (see VertexLabel).
type EdgeLabel struct {
	Token     uint64
	Gen       uint64
	MaxFaults int
	Spec      OutSpec
	Parent    ancestry.Label
	Child     ancestry.Label
	Out       []uint64
}

// edgeID packs the preorders of the two T′-endpoints of a non-tree edge into
// a nonzero GF(2^64) element: high word the smaller preorder, low word the
// larger. Preorders start at 1, so the ID is never zero and never collides
// across distinct edges.
func edgeID(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// edgeIDParts splits an edge ID back into its two endpoint preorders.
func edgeIDParts(id uint64) (uint32, uint32) {
	return uint32(id >> 32), uint32(id)
}
