package core

import "fmt"

// RouteStep is one leg of a forbidden-set route plan (Corollary 2 support).
// The router tree-routes toward the T′ preorder Near; when the current node
// either owns the virtual subdivision vertex with preorder Near, or is
// itself Near and Far is nonzero, it crosses the non-tree edge identified by
// the pair and continues with the next step. A final step has Far == 0 and
// Near == the destination's preorder.
type RouteStep struct {
	Near, Far uint32
}

// crossRec is a decoded crossing edge remembered during query growth: the
// edge's two ID parts and the (original, pre-merge) fragments they stab.
type crossRec struct {
	p1, p2 uint32
	c1, c2 int
}

// RoutePlan computes a forbidden-set route plan from s to t avoiding the
// faulty edges, using labels only. It returns (plan, true, nil) when t is
// reachable; (nil, false, nil) when provably unreachable. The plan's
// crossings hop between tree fragments exactly along a path in the fragment
// graph discovered by the §7.6 query.
func RoutePlan(s, t VertexLabel, faults []EdgeLabel) ([]RouteStep, bool, error) {
	if err := checkStamp(s.Token, s.Gen, t.Token, t.Gen, "vertex tokens"); err != nil {
		return nil, false, err
	}
	if s.Anc.Root != t.Anc.Root {
		return nil, false, nil
	}
	final := RouteStep{Near: t.Anc.Pre}
	if s.Anc.Pre == t.Anc.Pre {
		return []RouteStep{final}, true, nil
	}
	q, err := oneShotQuery(s, t, faults)
	if err != nil {
		return nil, false, err
	}
	if q == nil {
		// No relevant faults: pure tree routing.
		return []RouteStep{final}, true, nil
	}
	defer releaseQueryState(q)
	if q.fragS == q.fragT {
		// Same fragment: pure tree routing.
		return []RouteStep{final}, true, nil
	}
	q.recording = true
	ok, err := q.runFast()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	// BFS over the fragment graph induced by the recorded crossings.
	count := q.comp.frags.Count()
	adj := make([][]int, count) // record indices
	for ri, r := range q.records {
		if r.c1 == r.c2 {
			continue
		}
		adj[r.c1] = append(adj[r.c1], ri)
		adj[r.c2] = append(adj[r.c2], ri)
	}
	prev := make([]int, count) // record index that discovered the fragment
	for i := range prev {
		prev[i] = -1
	}
	visited := make([]bool, count)
	visited[q.fragS] = true
	queue := []int{int(q.fragS)}
	for len(queue) > 0 && !visited[q.fragT] {
		c := queue[0]
		queue = queue[1:]
		for _, ri := range adj[c] {
			r := q.records[ri]
			next := r.c1 + r.c2 - c
			if visited[next] {
				continue
			}
			visited[next] = true
			prev[next] = ri
			queue = append(queue, next)
		}
	}
	if !visited[q.fragT] {
		// The query proved connectivity, so the recorded crossings must
		// span s's super-fragment; failing here is an internal bug.
		return nil, false, fmt.Errorf("core: internal: fragment path missing after positive query")
	}
	// Walk back from t's fragment, emitting crossings in reverse.
	var rev []RouteStep
	c := int(q.fragT)
	for c != int(q.fragS) {
		r := q.records[prev[c]]
		from := r.c1 + r.c2 - c
		near, far := r.p1, r.p2
		if q.comp.frags.Stab(near) != from {
			near, far = far, near
		}
		rev = append(rev, RouteStep{Near: near, Far: far})
		c = from
	}
	plan := make([]RouteStep, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		plan = append(plan, rev[i])
	}
	plan = append(plan, final)
	return plan, true, nil
}
