package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// TestAllFiveVertexGraphs enumerates every labeled graph on 5 vertices
// (all 2^10 edge subsets), builds the deterministic scheme with f = 1, and
// checks every (s, t, F) query with |F| ≤ 1 against ground truth. Together
// with the f = 2/3 exhaustive suites this is the sharpest practical
// statement of "full query support": no graph topology on this vertex
// count, connected or not, produces a wrong answer.
func TestAllFiveVertexGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive graph enumeration")
	}
	const n = 5
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	queries := 0
	for mask := 0; mask < 1<<len(pairs); mask++ {
		g := graph.New(n)
		for i, p := range pairs {
			if mask>>i&1 == 1 {
				if _, err := g.AddEdge(p[0], p[1]); err != nil {
					t.Fatal(err)
				}
			}
		}
		s, err := Build(g, Params{MaxFaults: 1})
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		check := func(faults []int) {
			set := workload.FaultSet(faults)
			fl := make([]EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = s.EdgeLabel(e)
			}
			for sv := 0; sv < n; sv++ {
				for tv := sv + 1; tv < n; tv++ {
					want := graph.ConnectedUnder(g, set, sv, tv)
					got, err := Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
					if err != nil {
						t.Fatalf("mask %b (s=%d t=%d F=%v): %v", mask, sv, tv, faults, err)
					}
					if got != want {
						t.Fatalf("mask %b: Connected(%d,%d,%v) = %v, want %v", mask, sv, tv, faults, got, want)
					}
					queries++
				}
			}
		}
		check(nil)
		for e := 0; e < g.M(); e++ {
			check([]int{e})
		}
	}
	t.Logf("verified %d queries over %d graphs", queries, 1<<len(pairs))
}
