package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestSessionMatchesConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(50)
		g := workload.ErdosRenyi(n, 0.1, true, rng)
		f := 1 + rng.Intn(4)
		s := mustBuild(t, g, Params{MaxFaults: f})
		faults := workload.TreeEdgeFaults(g, s.Forest, rng.Intn(f+1), rng)
		fl := make([]EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = s.EdgeLabel(e)
		}
		sess, err := NewSession(s.VertexLabel(0), fl)
		if err != nil {
			t.Fatalf("trial %d: NewSession: %v", trial, err)
		}
		for q := 0; q < 100; q++ {
			sv, tv := rng.Intn(n), rng.Intn(n)
			got, err := sess.Connected(s.VertexLabel(sv), s.VertexLabel(tv))
			if err != nil {
				t.Fatal(err)
			}
			want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
			if got != want {
				t.Fatalf("trial %d: session Connected(%d,%d) = %v, want %v", trial, sv, tv, got, want)
			}
		}
	}
}

func TestSessionComponentCounts(t *testing.T) {
	// A path: every fault adds one component.
	g := graph.New(6)
	var ids []int
	for i := 0; i < 5; i++ {
		id, err := g.AddEdge(i, i+1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s := mustBuild(t, g, Params{MaxFaults: 2})
	fl := []EdgeLabel{s.EdgeLabel(ids[1]), s.EdgeLabel(ids[3])}
	sess, err := NewSession(s.VertexLabel(0), fl)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Fragments() != 3 {
		t.Fatalf("fragments = %d, want 3", sess.Fragments())
	}
	if sess.Components() != 3 {
		t.Fatalf("components = %d, want 3 (path faults are bridges)", sess.Components())
	}
	// A cycle closes the components back up.
	g2 := workload.Cycle(6)
	s2 := mustBuild(t, g2, Params{MaxFaults: 1})
	sess2, err := NewSession(s2.VertexLabel(0), []EdgeLabel{s2.EdgeLabel(0)})
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Components() != 1 {
		t.Fatalf("cycle minus one edge: components = %d, want 1", sess2.Components())
	}
}

func TestSessionNoFaults(t *testing.T) {
	g := workload.Cycle(5)
	s := mustBuild(t, g, Params{MaxFaults: 1})
	sess, err := NewSession(s.VertexLabel(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sess.Connected(s.VertexLabel(1), s.VertexLabel(4))
	if err != nil || !ok {
		t.Fatalf("no-fault session: ok=%v err=%v", ok, err)
	}
	if sess.Fragments() != 1 || sess.Components() != 1 {
		t.Fatalf("trivial session shape: %d/%d", sess.Fragments(), sess.Components())
	}
}

func TestSessionTokenMismatch(t *testing.T) {
	s1 := mustBuild(t, workload.Cycle(4), Params{MaxFaults: 1})
	s2 := mustBuild(t, workload.Cycle(5), Params{MaxFaults: 1})
	sess, err := NewSession(s1.VertexLabel(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connected(s1.VertexLabel(0), s2.VertexLabel(1)); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("err = %v, want ErrLabelMismatch", err)
	}
}

func BenchmarkSessionVsPerQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := workload.ErdosRenyi(256, 0.05, true, rng)
	const f = 4
	s, err := Build(g, Params{MaxFaults: f})
	if err != nil {
		b.Fatal(err)
	}
	faults := workload.TreeEdgeFaults(g, s.Forest, f, rng)
	fl := make([]EdgeLabel, len(faults))
	for i, e := range faults {
		fl[i] = s.EdgeLabel(e)
	}
	b.Run("per-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Connected(s.VertexLabel(i%g.N()), s.VertexLabel((i*7)%g.N()), fl); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		sess, err := NewSession(s.VertexLabel(0), fl)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Connected(s.VertexLabel(i%g.N()), s.VertexLabel((i*7)%g.N())); err != nil {
				b.Fatal(err)
			}
		}
	})
}
