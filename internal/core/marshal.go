package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ancestry"
)

// Labels are logically binary strings (§7.1); this file gives them a
// concrete wire form, which is also what the label-size experiments (E4)
// measure. Encoding is little-endian and versioned by a leading magic byte.

const (
	vertexMagic byte = 0x56 // 'V'
	edgeMagic   byte = 0x45 // 'E'
)

// ErrBadLabel is returned by the unmarshalers for malformed bytes.
var ErrBadLabel = errors.New("core: malformed label encoding")

func putAnc(b []byte, l ancestry.Label) []byte {
	b = binary.LittleEndian.AppendUint32(b, l.Pre)
	b = binary.LittleEndian.AppendUint32(b, l.Post)
	b = binary.LittleEndian.AppendUint32(b, l.Root)
	return b
}

func getAnc(b []byte) (ancestry.Label, []byte, error) {
	if len(b) < 12 {
		return ancestry.Label{}, nil, fmt.Errorf("%w: short ancestry field", ErrBadLabel)
	}
	return ancestry.Label{
		Pre:  binary.LittleEndian.Uint32(b),
		Post: binary.LittleEndian.Uint32(b[4:]),
		Root: binary.LittleEndian.Uint32(b[8:]),
	}, b[12:], nil
}

// MarshalVertexLabel encodes a vertex label.
func MarshalVertexLabel(l VertexLabel) []byte {
	b := make([]byte, 0, 21)
	b = append(b, vertexMagic)
	b = binary.LittleEndian.AppendUint64(b, l.Token)
	b = putAnc(b, l.Anc)
	return b
}

// UnmarshalVertexLabel decodes a vertex label.
func UnmarshalVertexLabel(b []byte) (VertexLabel, error) {
	if len(b) < 1 || b[0] != vertexMagic {
		return VertexLabel{}, fmt.Errorf("%w: missing vertex magic", ErrBadLabel)
	}
	b = b[1:]
	if len(b) < 8 {
		return VertexLabel{}, fmt.Errorf("%w: short token", ErrBadLabel)
	}
	var l VertexLabel
	l.Token = binary.LittleEndian.Uint64(b)
	var err error
	l.Anc, b, err = getAnc(b[8:])
	if err != nil {
		return VertexLabel{}, err
	}
	if len(b) != 0 {
		return VertexLabel{}, fmt.Errorf("%w: trailing bytes", ErrBadLabel)
	}
	return l, nil
}

// MarshalEdgeLabel encodes an edge label, payload included.
func MarshalEdgeLabel(l EdgeLabel) []byte {
	b := make([]byte, 0, 64+8*len(l.Out))
	b = append(b, edgeMagic)
	b = binary.LittleEndian.AppendUint64(b, l.Token)
	b = binary.LittleEndian.AppendUint32(b, uint32(l.MaxFaults))
	b = append(b, byte(l.Spec.Kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(l.Spec.K))
	b = binary.LittleEndian.AppendUint32(b, uint32(l.Spec.Levels))
	b = binary.LittleEndian.AppendUint32(b, uint32(l.Spec.Reps))
	b = binary.LittleEndian.AppendUint32(b, uint32(l.Spec.Buckets))
	b = binary.LittleEndian.AppendUint64(b, uint64(l.Spec.Seed))
	b = putAnc(b, l.Parent)
	b = putAnc(b, l.Child)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(l.Out)))
	for _, w := range l.Out {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// UnmarshalEdgeLabel decodes an edge label.
func UnmarshalEdgeLabel(b []byte) (EdgeLabel, error) {
	var l EdgeLabel
	if len(b) < 1 || b[0] != edgeMagic {
		return l, fmt.Errorf("%w: missing edge magic", ErrBadLabel)
	}
	b = b[1:]
	need := func(n int) error {
		if len(b) < n {
			return fmt.Errorf("%w: truncated edge label", ErrBadLabel)
		}
		return nil
	}
	if err := need(8 + 4 + 1 + 4 + 4 + 4 + 4 + 8); err != nil {
		return l, err
	}
	l.Token = binary.LittleEndian.Uint64(b)
	b = b[8:]
	l.MaxFaults = int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	l.Spec.Kind = Kind(b[0])
	b = b[1:]
	l.Spec.K = int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	l.Spec.Levels = int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	l.Spec.Reps = int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	l.Spec.Buckets = int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	l.Spec.Seed = int64(binary.LittleEndian.Uint64(b))
	b = b[8:]
	var err error
	l.Parent, b, err = getAnc(b)
	if err != nil {
		return l, err
	}
	l.Child, b, err = getAnc(b)
	if err != nil {
		return l, err
	}
	if err := need(4); err != nil {
		return l, err
	}
	count := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if count != l.Spec.Words() {
		return l, fmt.Errorf("%w: payload length %d does not match spec %d", ErrBadLabel, count, l.Spec.Words())
	}
	if err := need(8 * count); err != nil {
		return l, err
	}
	l.Out = make([]uint64, count)
	for i := range l.Out {
		l.Out[i] = binary.LittleEndian.Uint64(b)
		b = b[8:]
	}
	if len(b) != 0 {
		return l, fmt.Errorf("%w: trailing bytes", ErrBadLabel)
	}
	return l, nil
}

// VertexLabelBits returns the wire size of a vertex label in bits.
func VertexLabelBits(l VertexLabel) int { return 8 * len(MarshalVertexLabel(l)) }

// EdgeLabelBits returns the wire size of an edge label in bits.
func EdgeLabelBits(l EdgeLabel) int { return 8 * len(MarshalEdgeLabel(l)) }

// MaxEdgeLabelBits returns the maximum edge-label size of the scheme — the
// paper's per-edge label-size metric. For a lazily-loaded scheme the answer
// comes from the arena offsets table (a label's wire size is exactly its
// arena extent), so no label is decoded.
func (s *Scheme) MaxEdgeLabelBits() int {
	if s.lazy != nil {
		return s.lazy.maxEdgeLabelBits()
	}
	maxBits := 0
	for e := range s.edgeLabels {
		if b := EdgeLabelBits(s.edgeLabels[e]); b > maxBits {
			maxBits = b
		}
	}
	return maxBits
}
