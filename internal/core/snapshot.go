package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/hierarchy"
)

// A scheme snapshot is the persistent form of one built construction: the
// graph, the sparsification hierarchy, and every vertex and edge label, in
// one versioned, little-endian layout. Snapshots are what let a scheme
// built once be loaded by a fleet of servers ("one build, many decoders")
// without re-running construction.
//
// Wire format, version 3 (all integers little-endian):
//
//	[6]byte  magic "FTCSNP"
//	u8       version (currently 3)
//	u32 n, u32 m
//	m × (u32 u, u32 v)          graph edges, insertion order, u < v
//	u64      token              scheme fingerprint (recomputed on load)
//	u32      maxFaults
//	u8 kind, u32 k, u32 levels, u32 reps, u32 buckets, u64 seed   (OutSpec)
//	u64      generation         (v2+; 0 for static schemes)
//	u32      auxSlack           (v2+; 0 for static schemes)
//	u32      hierarchy level count (0 for AGM)
//	  per level: u32 count, count × u32 ascending edge indices
//	(n+1) × u64                 vertex label offsets (first 0, non-decreasing)
//	bytes                       vertex label arena, MarshalVertexLabel forms
//	(m+1) × u64                 edge label offsets (first 0, non-decreasing)
//	bytes                       edge label arena, MarshalEdgeLabel forms
//
// Version 3 replaced the per-label length-prefixed sections of versions 1
// and 2 (n × (u32 len, len bytes), then m of the same) with the flat
// structure-of-arrays label arena above, so that loading is O(1) in label
// bytes: the reader validates the offsets tables, aliases the two arenas
// zero-copy, and decodes each label lazily on first touch (see labelArena).
// Version 1 is version 2 without the generation/auxSlack fields; both are
// still read, eagerly, via the original path. The per-label encodings
// inside every version are the label codecs verbatim, so a loaded scheme's
// per-label marshalings are byte-identical to the original's regardless of
// version. Loading re-derives the spanning forest (deterministic from the
// graph) and re-verifies the token fingerprint against the graph,
// parameters, and generation, which rejects snapshots whose sections were
// corrupted independently; v3 label bytes are verified against that token
// on first touch instead of at load time. Any future layout change must
// bump SnapshotVersion; old readers then fail with ErrSnapshotVersion
// instead of misparsing.

// snapshotMagic begins every scheme snapshot.
var snapshotMagic = [6]byte{'F', 'T', 'C', 'S', 'N', 'P'}

// SnapshotVersion is the wire-format version written by MarshalBinary.
// Version 3 introduced the lazy structure-of-arrays label arena; version 2
// added the generation and auxSlack fields of the dynamic network
// extension. Versions 1 and 2 remain loadable.
const SnapshotVersion = 3

var (
	// ErrBadSnapshot is returned by UnmarshalScheme for malformed bytes.
	ErrBadSnapshot = errors.New("core: malformed scheme snapshot")
	// ErrSnapshotVersion is returned for a structurally sound header whose
	// version byte this build does not speak.
	ErrSnapshotVersion = errors.New("core: unsupported snapshot version")
)

// snapLimit caps the spec shape fields on load: large enough for any real
// construction (k and depth are polylog), small enough that Words() and the
// derived allocations cannot overflow or OOM on hostile input.
const snapLimit = 1 << 24

// MarshalBinary encodes the scheme as a self-contained snapshot at the
// current wire version (encoding.BinaryMarshaler).
func (s *Scheme) MarshalBinary() ([]byte, error) {
	return s.MarshalBinaryVersion(SnapshotVersion)
}

// MarshalBinaryVersion encodes the scheme at an explicit wire version.
// Version 3 is what MarshalBinary writes; versions 1 and 2 are the legacy
// eager-label layouts, retained so the compatibility tests and the load
// benchmarks can produce old-format bytes on demand. Version 1 cannot
// carry a generation or aux slack and refuses schemes that have either.
func (s *Scheme) MarshalBinaryVersion(version byte) ([]byte, error) {
	if s.g == nil {
		return nil, fmt.Errorf("core: scheme retains no graph; cannot snapshot")
	}
	if version < 1 || version > SnapshotVersion {
		return nil, fmt.Errorf("%w: cannot write version %d, this build speaks 1..%d",
			ErrSnapshotVersion, version, SnapshotVersion)
	}
	if version == 1 && (s.gen != 0 || s.params.AuxSlack != 0) {
		return nil, fmt.Errorf("core: version 1 cannot represent a dynamic scheme (gen=%d slack=%d)",
			s.gen, s.params.AuxSlack)
	}
	g := s.g
	b := make([]byte, 0, 64+16*g.M())
	b = append(b, snapshotMagic[:]...)
	b = append(b, version)
	b = binary.LittleEndian.AppendUint32(b, uint32(g.N()))
	b = binary.LittleEndian.AppendUint32(b, uint32(g.M()))
	for _, e := range g.Edges {
		b = binary.LittleEndian.AppendUint32(b, uint32(e.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(e.V))
	}
	b = binary.LittleEndian.AppendUint64(b, s.token)
	b = binary.LittleEndian.AppendUint32(b, uint32(s.params.MaxFaults))
	b = append(b, byte(s.spec.Kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.spec.K))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.spec.Levels))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.spec.Reps))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.spec.Buckets))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.spec.Seed))
	if version >= 2 {
		b = binary.LittleEndian.AppendUint64(b, s.gen)
		b = binary.LittleEndian.AppendUint32(b, uint32(s.params.AuxSlack))
	}
	if s.Hierarchy == nil {
		b = binary.LittleEndian.AppendUint32(b, 0)
	} else {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Hierarchy.Levels)))
		for _, level := range s.Hierarchy.Levels {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(level)))
			for _, e := range level {
				b = binary.LittleEndian.AppendUint32(b, uint32(e))
			}
		}
	}
	if version >= 3 {
		return s.appendArenaSections(b), nil
	}
	for v := 0; v < g.N(); v++ {
		lb := MarshalVertexLabel(s.VertexLabel(v))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(lb)))
		b = append(b, lb...)
	}
	for e := 0; e < g.M(); e++ {
		lb := MarshalEdgeLabel(s.EdgeLabel(e))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(lb)))
		b = append(b, lb...)
	}
	return b, nil
}

// appendArenaSections writes the two v3 structure-of-arrays label sections.
// A lazily-loaded scheme copies its arenas verbatim — no label is decoded,
// and a v3 load→save round trip is byte-identical by construction. A
// materialized scheme marshals each label into a fresh arena; the label
// codecs are deterministic, so both paths produce the same bytes for the
// same labels.
func (s *Scheme) appendArenaSections(b []byte) []byte {
	if a := s.lazy; a != nil {
		for _, off := range a.vertOff {
			b = binary.LittleEndian.AppendUint64(b, off)
		}
		b = append(b, a.vertBytes...)
		for _, off := range a.edgeOff {
			b = binary.LittleEndian.AppendUint64(b, off)
		}
		b = append(b, a.edgeBytes...)
		return b
	}
	// The offsets region is reserved up front and backfilled as each label
	// is appended, so the peak transient memory is one marshaled label, not
	// a second copy of the whole arena.
	appendSoA := func(b []byte, count int, marshal func(i int) []byte) []byte {
		offPos := len(b)
		b = append(b, make([]byte, 8*(count+1))...)
		start := len(b)
		for i := 0; i < count; i++ {
			b = append(b, marshal(i)...)
			binary.LittleEndian.PutUint64(b[offPos+8*(i+1):], uint64(len(b)-start))
		}
		return b
	}
	b = appendSoA(b, s.g.N(), func(i int) []byte { return MarshalVertexLabel(s.vertexLabels[i]) })
	b = appendSoA(b, s.g.M(), func(i int) []byte { return MarshalEdgeLabel(s.edgeLabels[i]) })
	return b
}

// snapReader is a bounds-checked little-endian cursor over snapshot bytes.
type snapReader struct {
	b []byte
}

func (r *snapReader) fail(what string) error {
	return fmt.Errorf("%w: %s", ErrBadSnapshot, what)
}

func (r *snapReader) u8(what string) (byte, error) {
	if len(r.b) < 1 {
		return 0, r.fail("truncated at " + what)
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *snapReader) u32(what string) (uint32, error) {
	if len(r.b) < 4 {
		return 0, r.fail("truncated at " + what)
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *snapReader) u64(what string) (uint64, error) {
	if len(r.b) < 8 {
		return 0, r.fail("truncated at " + what)
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *snapReader) bytes(n int, what string) ([]byte, error) {
	if n < 0 || len(r.b) < n {
		return nil, r.fail("truncated at " + what)
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}

// count reads a u32 element count and verifies the remaining input can hold
// at least perItem bytes per element, so a hostile length prefix cannot
// force a huge allocation before the truncation is noticed.
func (r *snapReader) count(perItem int, what string) (int, error) {
	c, err := r.u32(what)
	if err != nil {
		return 0, err
	}
	if int64(c)*int64(perItem) > int64(len(r.b)) {
		return 0, r.fail(what + " count exceeds input")
	}
	return int(c), nil
}

// UnmarshalScheme decodes a snapshot produced by MarshalBinary. The loaded
// scheme answers every query the original did — VertexLabel, EdgeLabel,
// CompileFaults — without re-running construction, and its per-label
// marshalings are byte-identical to the original's. The spanning forest is
// re-derived (deterministically) from the graph; the token fingerprint is
// recomputed and must match the stored one.
func UnmarshalScheme(data []byte) (*Scheme, error) {
	r := &snapReader{b: data}
	magic, err := r.bytes(len(snapshotMagic), "magic")
	if err != nil {
		return nil, err
	}
	if string(magic) != string(snapshotMagic[:]) {
		return nil, r.fail("missing snapshot magic")
	}
	version, err := r.u8("version")
	if err != nil {
		return nil, err
	}
	if version < 1 || version > SnapshotVersion {
		return nil, fmt.Errorf("%w: got version %d, this build speaks 1..%d",
			ErrSnapshotVersion, version, SnapshotVersion)
	}

	nU, err := r.u32("vertex count")
	if err != nil {
		return nil, err
	}
	// Every vertex contributes at least a 4-byte label length prefix later.
	if int64(nU)*4 > int64(len(r.b)) {
		return nil, r.fail("vertex count exceeds input")
	}
	n := int(nU)
	m, err := r.count(8, "edge count")
	if err != nil {
		return nil, err
	}
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, err := r.u32("edge endpoint")
		if err != nil {
			return nil, err
		}
		v, err := r.u32("edge endpoint")
		if err != nil {
			return nil, err
		}
		if u >= v {
			return nil, r.fail("edge endpoints not in canonical u < v order")
		}
		if v >= uint32(n) {
			return nil, r.fail("edge endpoint out of range")
		}
		if _, err := g.AddEdge(int(u), int(v)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
	}

	token, err := r.u64("token")
	if err != nil {
		return nil, err
	}
	maxFaults, err := r.u32("fault budget")
	if err != nil {
		return nil, err
	}
	if maxFaults > snapLimit {
		return nil, r.fail("fault budget implausibly large")
	}
	var spec OutSpec
	kindByte, err := r.u8("scheme kind")
	if err != nil {
		return nil, err
	}
	spec.Kind = Kind(kindByte)
	switch spec.Kind {
	case KindDetNetFind, KindDetGreedy, KindRandRS, KindAGM:
	default:
		return nil, r.fail("unknown scheme kind")
	}
	fields := []struct {
		dst  *int
		name string
	}{
		{&spec.K, "threshold"},
		{&spec.Levels, "level count"},
		{&spec.Reps, "repetition count"},
		{&spec.Buckets, "bucket count"},
	}
	for _, fld := range fields {
		v, err := r.u32(fld.name)
		if err != nil {
			return nil, err
		}
		if v > snapLimit {
			return nil, r.fail(fld.name + " implausibly large")
		}
		*fld.dst = int(v)
	}
	seed, err := r.u64("seed")
	if err != nil {
		return nil, err
	}
	spec.Seed = int64(seed)
	var gen uint64
	auxSlack := 0
	if version >= 2 {
		if gen, err = r.u64("generation"); err != nil {
			return nil, err
		}
		slackU, err := r.u32("aux slack")
		if err != nil {
			return nil, err
		}
		if slackU > snapLimit {
			return nil, r.fail("aux slack implausibly large")
		}
		auxSlack = int(slackU)
	}

	hLevels, err := r.count(4, "hierarchy level count")
	if err != nil {
		return nil, err
	}
	var h *hierarchy.Hierarchy
	if spec.Kind == KindAGM {
		if hLevels != 0 {
			return nil, r.fail("AGM snapshot carries a hierarchy")
		}
	} else {
		if hLevels != spec.Levels {
			return nil, r.fail("hierarchy depth disagrees with spec")
		}
		h = &hierarchy.Hierarchy{Levels: make([][]int, hLevels)}
		for lvl := 0; lvl < hLevels; lvl++ {
			c, err := r.count(4, "hierarchy level size")
			if err != nil {
				return nil, err
			}
			if c == 0 {
				continue
			}
			level := make([]int, c)
			prev := -1
			for i := range level {
				e, err := r.u32("hierarchy edge index")
				if err != nil {
					return nil, err
				}
				if int(e) >= m || int(e) <= prev {
					return nil, r.fail("hierarchy edge indices not ascending in range")
				}
				prev = int(e)
				level[i] = int(e)
			}
			h.Levels[lvl] = level
		}
	}

	s := &Scheme{
		params: Params{
			MaxFaults: int(maxFaults),
			Kind:      spec.Kind,
			Seed:      spec.Seed,
			AGMReps:   spec.Reps,
			AuxSlack:  auxSlack,
		},
		token:     token,
		gen:       gen,
		spec:      spec,
		n:         n,
		g:         g,
		Forest:    graph.SpanningForest(g),
		Hierarchy: h,
	}

	if version >= 3 {
		arena := &labelArena{
			token:     token,
			gen:       gen,
			maxFaults: int(maxFaults),
			spec:      spec,
		}
		if arena.vertOff, arena.vertBytes, err = r.soaSection(n, "vertex"); err != nil {
			return nil, err
		}
		if arena.edgeOff, arena.edgeBytes, err = r.soaSection(m, "edge"); err != nil {
			return nil, err
		}
		if len(r.b) != 0 {
			return nil, r.fail("trailing bytes")
		}
		if s.computeToken(g) != token {
			return nil, r.fail("token fingerprint mismatch (graph and parameters disagree)")
		}
		arena.verts = make([]atomic.Pointer[VertexLabel], n)
		arena.edges = make([]atomic.Pointer[EdgeLabel], m)
		s.lazy = arena
		return s, nil
	}

	vertexLabels := make([]VertexLabel, n)
	for v := 0; v < n; v++ {
		c, err := r.count(1, "vertex label length")
		if err != nil {
			return nil, err
		}
		raw, err := r.bytes(c, "vertex label")
		if err != nil {
			return nil, err
		}
		vl, err := UnmarshalVertexLabel(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: vertex %d: %v", ErrBadSnapshot, v, err)
		}
		if vl.Token != token {
			return nil, r.fail("vertex label token disagrees with header")
		}
		vertexLabels[v] = vl
	}
	edgeLabels := make([]EdgeLabel, m)
	for e := 0; e < m; e++ {
		c, err := r.count(1, "edge label length")
		if err != nil {
			return nil, err
		}
		raw, err := r.bytes(c, "edge label")
		if err != nil {
			return nil, err
		}
		el, err := UnmarshalEdgeLabel(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrBadSnapshot, e, err)
		}
		if el.Token != token || el.MaxFaults != int(maxFaults) || el.Spec != spec {
			return nil, r.fail("edge label header disagrees with snapshot header")
		}
		edgeLabels[e] = el
	}
	if len(r.b) != 0 {
		return nil, r.fail("trailing bytes")
	}
	// The wire encoding omits the in-memory generation stamp; restore it so
	// that mixing a loaded scheme's labels with a different live generation
	// is classified as ErrStaleLabel rather than a bare mismatch.
	for v := range vertexLabels {
		vertexLabels[v].Gen = gen
	}
	for e := range edgeLabels {
		edgeLabels[e].Gen = gen
	}
	s.vertexLabels = vertexLabels
	s.edgeLabels = edgeLabels
	if s.computeToken(g) != token {
		return nil, r.fail("token fingerprint mismatch (graph and labels disagree)")
	}
	return s, nil
}

// soaSection reads one v3 structure-of-arrays label section: count+1 u64
// offsets (first 0, non-decreasing) followed by an arena of exactly the
// final offset's bytes, returned as a zero-copy alias of the input. Every
// validation happens before the offsets allocation is sized, so a hostile
// table cannot force a huge allocation, and the per-slot extents are fully
// bounds-checked here so lazy decodes never re-validate them.
func (r *snapReader) soaSection(count int, what string) ([]uint64, []byte, error) {
	if int64(count+1)*8 > int64(len(r.b)) {
		return nil, nil, r.fail(what + " offsets table exceeds input")
	}
	off := make([]uint64, count+1)
	for i := range off {
		v, err := r.u64(what + " label offset")
		if err != nil {
			return nil, nil, err
		}
		if i == 0 && v != 0 {
			return nil, nil, r.fail(what + " offsets do not start at zero")
		}
		if i > 0 && v < off[i-1] {
			return nil, nil, r.fail(what + " offsets not non-decreasing")
		}
		off[i] = v
	}
	total := off[count]
	if total > uint64(len(r.b)) {
		return nil, nil, r.fail(what + " arena exceeds input")
	}
	arena, err := r.bytes(int(total), what+" label arena")
	if err != nil {
		return nil, nil, err
	}
	return off, arena, nil
}
