package core

// Session amortizes queries that share one fault set — the dominant pattern
// in practice (one failure event, many reachability probes). It is a thin
// view over a compiled FaultSet with every component's fragment closure
// forced eagerly: each probe costs two interval stabs plus two partition
// lookups and performs no allocations.
//
// Unlike the historical anchor-bound session, a Session covers every
// spanning-forest component that the fault set touches: probes for vertex
// pairs in any component are answered correctly. Build one with
// FaultSet.Session (preferred) or the compatibility constructor NewSession.
//
// A Session is still decoder-side only: it is built purely from labels.
type Session struct {
	fs *FaultSet
	// token/gen guard probes; for anchor-built sessions they are the
	// anchor's stamps so that the historical mixed-label errors are
	// preserved even for empty fault sets.
	token      uint64
	gen        uint64
	checkToken bool
}

// NewSession prepares a session from the given fault labels. The anchor is
// retained for API compatibility (it pins the scheme token when the fault
// set is empty); the session itself answers probes in every component, not
// just the anchor's.
func NewSession(anchor VertexLabel, faults []EdgeLabel) (*Session, error) {
	fs, err := CompileFaults(faults)
	if err != nil {
		return nil, err
	}
	if fs.hasFaults {
		if err := checkStamp(fs.token, fs.gen, anchor.Token, anchor.Gen, "anchor and fault tokens"); err != nil {
			return nil, err
		}
	}
	s, err := fs.Session()
	if err != nil {
		return nil, err
	}
	s.token = anchor.Token
	s.gen = anchor.Gen
	s.checkToken = true
	return s, nil
}

// Connected probes s–t connectivity under the session's fault set.
func (s *Session) Connected(sv, tv VertexLabel) (bool, error) {
	if err := checkStamp(sv.Token, sv.Gen, tv.Token, tv.Gen, "session tokens"); err != nil {
		return false, err
	}
	if s.checkToken {
		if err := checkStamp(sv.Token, sv.Gen, s.token, s.gen, "session tokens"); err != nil {
			return false, err
		}
	}
	return s.fs.Connected(sv, tv)
}

// FaultSet returns the compiled fault set backing the session.
func (s *Session) FaultSet() *FaultSet { return s.fs }

// Fragments returns the number of tree fragments the fault set induced,
// summed over every component the faults touch (1 when the fault set is
// empty or irrelevant).
func (s *Session) Fragments() int {
	if len(s.fs.comps) == 0 {
		return 1
	}
	n := 0
	for _, c := range s.fs.comps {
		n += c.count
	}
	return n
}

// Components returns the number of connected components the fragments form
// in G − F, summed over every spanning-forest component the faults touch
// (1 when the fault set is empty or irrelevant).
func (s *Session) Components() int {
	if len(s.fs.comps) == 0 {
		return 1
	}
	n := 0
	for _, c := range s.fs.comps {
		// closure entries are fully resolved roots, so the distinct roots
		// are exactly the fixed points.
		for i, r := range c.closure {
			if r == int32(i) {
				n++
			}
		}
	}
	return n
}
