package core

import "fmt"

// Session amortizes queries that share one fault set — the dominant pattern
// in practice (one failure event, many reachability probes). It runs the
// fragment discovery of §7.6 once, to completion, computing the full
// connectivity partition of the fragments; subsequent probes cost two
// interval stabs plus a union-find lookup.
//
// A Session is still decoder-side only: it is built purely from labels.
type Session struct {
	token uint64
	root  uint32
	q     *queryState
	// trivial is set when the fault set is empty/irrelevant: connectivity
	// degenerates to same-component.
	trivial bool
}

// NewSession prepares a session for the component identified by anchor (any
// vertex label in the component of interest) and the given fault labels.
func NewSession(anchor VertexLabel, faults []EdgeLabel) (*Session, error) {
	s := &Session{token: anchor.Token, root: anchor.Anc.Root}
	// Reuse the query-state construction with s = t = anchor; fragS/fragT
	// collapse but the fragment structure is what we're after.
	q, err := newQueryState(anchor, anchor, faults)
	if err != nil {
		return nil, err
	}
	if q == nil {
		s.trivial = true
		return s, nil
	}
	s.q = q
	// Drive every super-fragment to closure: repeatedly grow any live
	// super-fragment until all are closed. The total number of grow steps
	// is bounded by fragments + merges.
	for {
		progress := false
		for c := 0; c < q.frags.Count(); c++ {
			root := q.find(c)
			sf := q.super[root]
			if sf.discard || sf.closed {
				continue
			}
			ids, err := q.spec.DecodeOutgoing(sf.sum, q.adaptiveBudget(sf.cutSize))
			if err != nil {
				return nil, err
			}
			if len(ids) == 0 {
				sf.closed = true
				continue
			}
			merged := false
			for _, id := range ids {
				p1, p2 := edgeIDParts(id)
				c1 := q.find(q.frags.Stab(p1))
				c2 := q.find(q.frags.Stab(p2))
				cur := q.find(root)
				var other int
				switch {
				case c1 == cur && c2 != cur:
					other = c2
				case c2 == cur && c1 != cur:
					other = c1
				default:
					continue
				}
				q.mergeInto(cur, other)
				merged = true
			}
			if !merged {
				return nil, fmt.Errorf("%w: decoded edges do not leave the fragment", ErrDecode)
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	return s, nil
}

// Connected probes s–t connectivity under the session's fault set.
func (s *Session) Connected(sv, tv VertexLabel) (bool, error) {
	if sv.Token != s.token || tv.Token != s.token {
		return false, fmt.Errorf("%w: session token differs", ErrLabelMismatch)
	}
	if sv.Anc.Root != tv.Anc.Root {
		return false, nil
	}
	if sv.Anc.Pre == tv.Anc.Pre {
		return true, nil
	}
	if s.trivial || sv.Anc.Root != s.root {
		// No relevant faults for this component: same root ⇒ connected.
		return true, nil
	}
	a := s.q.find(s.q.frags.StabLabel(sv.Anc))
	b := s.q.find(s.q.frags.StabLabel(tv.Anc))
	return a == b, nil
}

// Fragments returns the number of tree fragments the fault set induced.
func (s *Session) Fragments() int {
	if s.trivial {
		return 1
	}
	return s.q.frags.Count()
}

// Components returns the number of connected components the fragments form
// in G − F (within the session's component of G).
func (s *Session) Components() int {
	if s.trivial {
		return 1
	}
	seen := map[int]bool{}
	for c := 0; c < s.q.frags.Count(); c++ {
		seen[s.q.find(c)] = true
	}
	return len(seen)
}
