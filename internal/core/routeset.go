package core

import "fmt"

// This file gives the compiled FaultSet the route product: RoutePlan is the
// compiled-once counterpart of the one-shot RoutePlan in route.go, exactly
// as FaultSet.Connected is the compiled counterpart of ConnectedUnder. The
// crossing structure is recorded once per component (ensureRouted) and every
// subsequent plan is a BFS over at most f+1 fragments — no label decoding.

// ensureRouted records the component's crossing structure once: a single
// full-closure run (fragS = fragT = -1 drives every super-fragment to
// completion) with recording on, so q.records ends up holding every decoded
// crossing. Every union-find merge during closure is triggered by a decoded
// crossing, and each decoded crossing is recorded before the both-inside
// skip — so the recorded set contains a spanning structure of each closure
// class, and BFS over it finds a fragment path between any two fragments
// that are connected in G − F. The same run seeds the closure partition, so
// a route-first workload never pays for a second growth.
func (c *faultComponent) ensureRouted() error {
	c.routeOnce.Do(func() {
		q := c.acquire()
		defer releaseQueryState(q)
		q.recording = true
		if _, err := q.runFast(); err != nil {
			c.routeErr = err
			return
		}
		c.closeOnce.Do(func() {
			closure := make([]int32, c.count)
			for i := range closure {
				closure[i] = q.find(int32(i))
			}
			c.closure = closure
		})
		recs := make([]crossRec, len(q.records))
		copy(recs, q.records)
		adj := make([][]int32, c.count)
		for ri, r := range recs {
			if r.c1 == r.c2 {
				continue
			}
			adj[r.c1] = append(adj[r.c1], int32(ri))
			adj[r.c2] = append(adj[r.c2], int32(ri))
		}
		c.routeRecs = recs
		c.routeAdj = adj
	})
	if c.routeErr != nil {
		return c.routeErr
	}
	// The closure may have been computed (and failed) by an earlier
	// ensureClosed before our seeding attempt ran.
	return c.closeErr
}

// RoutePlan computes a forbidden-set route plan from s to t avoiding the
// compiled fault set, using labels only. Semantics match the one-shot
// RoutePlan: (plan, true, nil) when t is reachable in G − F, (nil, false,
// nil) when provably unreachable. The first plan that touches a component
// records its crossing structure; after that a plan costs two interval
// stabs plus a BFS over ≤ f+1 fragments.
func (fs *FaultSet) RoutePlan(s, t VertexLabel) ([]RouteStep, bool, error) {
	if err := checkStamp(s.Token, s.Gen, t.Token, t.Gen, "vertex tokens"); err != nil {
		return nil, false, err
	}
	if fs.hasFaults {
		if err := checkStamp(s.Token, s.Gen, fs.token, fs.gen, "vertex and fault tokens"); err != nil {
			return nil, false, err
		}
	}
	if s.Anc.Root != t.Anc.Root {
		return nil, false, nil
	}
	final := RouteStep{Near: t.Anc.Pre}
	if s.Anc.Pre == t.Anc.Pre {
		return []RouteStep{final}, true, nil
	}
	comp := fs.compForRoot(s.Anc.Root)
	if comp == nil {
		// No fault touches this component: pure tree routing.
		return []RouteStep{final}, true, nil
	}
	if err := comp.ensureRouted(); err != nil {
		return nil, false, err
	}
	fragS := comp.frags.StabLabel(s.Anc)
	fragT := comp.frags.StabLabel(t.Anc)
	if fragS == fragT {
		return []RouteStep{final}, true, nil
	}
	if comp.closure[fragS] != comp.closure[fragT] {
		return nil, false, nil
	}
	// BFS over the recorded fragment graph, mirroring route.go.
	count := comp.frags.Count()
	prev := make([]int, count) // record index that discovered the fragment
	for i := range prev {
		prev[i] = -1
	}
	visited := make([]bool, count)
	visited[fragS] = true
	queue := make([]int, 0, count)
	queue = append(queue, fragS)
	for len(queue) > 0 && !visited[fragT] {
		c := queue[0]
		queue = queue[1:]
		for _, ri := range comp.routeAdj[c] {
			r := comp.routeRecs[ri]
			next := r.c1 + r.c2 - c
			if visited[next] {
				continue
			}
			visited[next] = true
			prev[next] = int(ri)
			queue = append(queue, next)
		}
	}
	if !visited[fragT] {
		// The closure proved connectivity, so the recorded crossings must
		// span s's closure class; failing here is an internal bug.
		return nil, false, fmt.Errorf("core: internal: fragment path missing after positive closure")
	}
	// Walk back from t's fragment, emitting crossings in reverse.
	var rev []RouteStep
	cur := fragT
	for cur != fragS {
		r := comp.routeRecs[prev[cur]]
		from := r.c1 + r.c2 - cur
		near, far := r.p1, r.p2
		if comp.frags.Stab(near) != from {
			near, far = far, near
		}
		rev = append(rev, RouteStep{Near: near, Far: far})
		cur = from
	}
	plan := make([]RouteStep, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		plan = append(plan, rev[i])
	}
	plan = append(plan, final)
	return plan, true, nil
}
