package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// snapshotKinds is one small build per scheme kind, shared by the
// round-trip tests. AGM uses full-support repetitions so connectivity
// comparisons cannot hit the whp failure mode.
func snapshotKinds(t *testing.T, g *graph.Graph, f int) map[string]*Scheme {
	t.Helper()
	out := map[string]*Scheme{}
	for name, p := range map[string]Params{
		"det-netfind": {MaxFaults: f, Kind: KindDetNetFind},
		"det-greedy":  {MaxFaults: f, Kind: KindDetGreedy},
		"rand-rs":     {MaxFaults: f, Kind: KindRandRS, Seed: 11},
		"agm":         {MaxFaults: f, Kind: KindAGM, Seed: 11, AGMReps: 4 * f * 6},
	} {
		s, err := Build(g, p)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out[name] = s
	}
	return out
}

func TestSnapshotRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.ErdosRenyi(60, 0.08, true, rng)
	const f = 3
	for name, s := range snapshotKinds(t, g, f) {
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		loaded, err := UnmarshalScheme(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		// Per-label marshalings must be byte-identical.
		for v := 0; v < g.N(); v++ {
			if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
				t.Fatalf("%s: vertex %d label differs after round trip", name, v)
			}
		}
		for e := 0; e < g.M(); e++ {
			if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabel(e)), MarshalEdgeLabel(loaded.EdgeLabel(e))) {
				t.Fatalf("%s: edge %d label differs after round trip", name, e)
			}
		}
		// Snapshot of the loaded scheme must reproduce the original bytes
		// (the canonical-encoding property the fuzz target also enforces).
		data2, err := loaded.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("%s: snapshot is not canonical: re-marshal differs", name)
		}
		// Scheme metadata survives.
		if loaded.Spec() != s.Spec() || loaded.Token() != s.Token() ||
			loaded.MaxFaults() != s.MaxFaults() || loaded.N() != s.N() {
			t.Fatalf("%s: scheme metadata differs after round trip", name)
		}
		// Connected answers match the original scheme and the BFS oracle.
		qrng := rand.New(rand.NewSource(17))
		for q := 0; q < 200; q++ {
			faults := workload.TreeEdgeFaults(g, s.Forest, 1+qrng.Intn(f), qrng)
			fl := make([]EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = loaded.EdgeLabel(e)
			}
			sv, tv := qrng.Intn(g.N()), qrng.Intn(g.N())
			got, err := Connected(loaded.VertexLabel(sv), loaded.VertexLabel(tv), fl)
			if err != nil {
				t.Fatalf("%s: query on loaded scheme: %v", name, err)
			}
			if want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv); got != want {
				t.Fatalf("%s: loaded scheme answered %v, oracle says %v", name, got, want)
			}
		}
	}
}

func TestSnapshotTreeOnlyAndEmptyGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"tree", workload.Caterpillar(6, 2)},
		{"empty", graph.New(0)},
		{"isolated", graph.New(5)},
	} {
		s, err := Build(tc.g, Params{MaxFaults: 2})
		if err != nil {
			t.Fatalf("%s: build: %v", tc.name, err)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		loaded, err := UnmarshalScheme(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", tc.name, err)
		}
		if loaded.N() != tc.g.N() || loaded.Graph().M() != tc.g.M() {
			t.Fatalf("%s: wrong shape after load", tc.name)
		}
	}
}

// TestLazyArenaCorruptLabelFailsClosed flips bits inside the v3 label
// arena: the load itself still succeeds (label bytes are lazily decoded by
// design), but every query that touches a corrupted label must fail with
// ErrLabelMismatch — never panic, and never answer from garbage.
func TestLazyArenaCorruptLabelFailsClosed(t *testing.T) {
	g := workload.Petersen()
	s, err := Build(g, Params{MaxFaults: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalScheme(append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt two label slots in place through the zero-copy alias, before
	// either is touched: the magic byte of the last edge label (decode
	// failure) and the stored token of vertex 1 (header disagreement).
	// Payload-word corruption is undetectable by construction — labels
	// carry no checksum in any wire version — so the fail-closed promise is
	// specifically about structurally bad or mis-tokened label bytes.
	a := loaded.lazy
	a.edgeBytes[a.edgeOff[g.M()-1]] ^= 0xFF
	a.vertBytes[a.vertOff[1]+1] ^= 0xFF
	lastEdge := loaded.EdgeLabel(g.M() - 1)
	if lastEdge.Token == loaded.Token() {
		t.Fatal("corrupt edge label decoded with a valid token")
	}
	badVert := loaded.VertexLabel(1)
	if badVert.Token == loaded.Token() {
		t.Fatal("corrupt vertex label decoded with a valid token")
	}
	if lastEdge.Token == badVert.Token {
		t.Fatal("distinct corrupt label slots share a poison token")
	}
	if _, err := Connected(loaded.VertexLabel(0), loaded.VertexLabel(2), []EdgeLabel{lastEdge}); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("query over corrupt edge label: got %v, want ErrLabelMismatch", err)
	}
	if _, err := Connected(loaded.VertexLabel(0), badVert, nil); !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("query over corrupt vertex label: got %v, want ErrLabelMismatch", err)
	}
	// Uncorrupted labels in the same snapshot stay fully usable.
	if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(3)), MarshalVertexLabel(loaded.VertexLabel(3))) {
		t.Fatal("clean vertex label differs under a corrupted neighbor")
	}
	if ok, err := Connected(loaded.VertexLabel(0), loaded.VertexLabel(2), []EdgeLabel{loaded.EdgeLabel(0)}); err != nil {
		t.Fatalf("clean-label query failed: %v (connected=%v)", err, ok)
	}
}

// TestLazyArenaConcurrentFirstTouch races many goroutines into the same
// cold arena (run under -race in CI): every decode must agree with the
// eager load of the same snapshot.
func TestLazyArenaConcurrentFirstTouch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := workload.ErdosRenyi(120, 0.06, true, rng)
	s, err := Build(g, Params{MaxFaults: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalScheme(data)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < g.M(); i++ {
				e := (i + w*7) % g.M()
				if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabel(e)), MarshalEdgeLabel(loaded.EdgeLabel(e))) {
					errc <- fmt.Errorf("worker %d: edge %d decode disagrees", w, e)
					return
				}
				v := (i + w*3) % g.N()
				if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
					errc <- fmt.Errorf("worker %d: vertex %d decode disagrees", w, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if _, verts, edges := loaded.LazyLabels(); verts != g.N() || edges != g.M() {
		t.Fatalf("arena not fully resident after touch-all (verts=%d edges=%d)", verts, edges)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	g := workload.Petersen()
	s, err := Build(g, Params{MaxFaults: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := UnmarshalScheme(nil); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("nil input: got %v, want ErrBadSnapshot", err)
	}
	if _, err := UnmarshalScheme(data[:len(data)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := UnmarshalScheme(append(append([]byte(nil), data...), 0)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("trailing byte: got %v, want ErrBadSnapshot", err)
	}

	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := UnmarshalScheme(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad magic: got %v, want ErrBadSnapshot", err)
	}

	// A bumped version byte must fail with ErrSnapshotVersion — the
	// contract that makes silent wire-format drift impossible.
	bad = append([]byte(nil), data...)
	bad[len(snapshotMagic)] = SnapshotVersion + 1
	if _, err := UnmarshalScheme(bad); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version: got %v, want ErrSnapshotVersion", err)
	}

	// Flipping a bit in the token must be caught by the fingerprint check.
	tokenOff := len(snapshotMagic) + 1 + 4 + 4 + 8*g.M()
	bad = append([]byte(nil), data...)
	bad[tokenOff] ^= 1
	if _, err := UnmarshalScheme(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("token flip: got %v, want ErrBadSnapshot", err)
	}
}
