package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// snapshotKinds is one small build per scheme kind, shared by the
// round-trip tests. AGM uses full-support repetitions so connectivity
// comparisons cannot hit the whp failure mode.
func snapshotKinds(t *testing.T, g *graph.Graph, f int) map[string]*Scheme {
	t.Helper()
	out := map[string]*Scheme{}
	for name, p := range map[string]Params{
		"det-netfind": {MaxFaults: f, Kind: KindDetNetFind},
		"det-greedy":  {MaxFaults: f, Kind: KindDetGreedy},
		"rand-rs":     {MaxFaults: f, Kind: KindRandRS, Seed: 11},
		"agm":         {MaxFaults: f, Kind: KindAGM, Seed: 11, AGMReps: 4 * f * 6},
	} {
		s, err := Build(g, p)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out[name] = s
	}
	return out
}

func TestSnapshotRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.ErdosRenyi(60, 0.08, true, rng)
	const f = 3
	for name, s := range snapshotKinds(t, g, f) {
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		loaded, err := UnmarshalScheme(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		// Per-label marshalings must be byte-identical.
		for v := 0; v < g.N(); v++ {
			if !bytes.Equal(MarshalVertexLabel(s.VertexLabel(v)), MarshalVertexLabel(loaded.VertexLabel(v))) {
				t.Fatalf("%s: vertex %d label differs after round trip", name, v)
			}
		}
		for e := 0; e < g.M(); e++ {
			if !bytes.Equal(MarshalEdgeLabel(s.EdgeLabel(e)), MarshalEdgeLabel(loaded.EdgeLabel(e))) {
				t.Fatalf("%s: edge %d label differs after round trip", name, e)
			}
		}
		// Snapshot of the loaded scheme must reproduce the original bytes
		// (the canonical-encoding property the fuzz target also enforces).
		data2, err := loaded.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("%s: snapshot is not canonical: re-marshal differs", name)
		}
		// Scheme metadata survives.
		if loaded.Spec() != s.Spec() || loaded.Token() != s.Token() ||
			loaded.MaxFaults() != s.MaxFaults() || loaded.N() != s.N() {
			t.Fatalf("%s: scheme metadata differs after round trip", name)
		}
		// Connected answers match the original scheme and the BFS oracle.
		qrng := rand.New(rand.NewSource(17))
		for q := 0; q < 200; q++ {
			faults := workload.TreeEdgeFaults(g, s.Forest, 1+qrng.Intn(f), qrng)
			fl := make([]EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = loaded.EdgeLabel(e)
			}
			sv, tv := qrng.Intn(g.N()), qrng.Intn(g.N())
			got, err := Connected(loaded.VertexLabel(sv), loaded.VertexLabel(tv), fl)
			if err != nil {
				t.Fatalf("%s: query on loaded scheme: %v", name, err)
			}
			if want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv); got != want {
				t.Fatalf("%s: loaded scheme answered %v, oracle says %v", name, got, want)
			}
		}
	}
}

func TestSnapshotTreeOnlyAndEmptyGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"tree", workload.Caterpillar(6, 2)},
		{"empty", graph.New(0)},
		{"isolated", graph.New(5)},
	} {
		s, err := Build(tc.g, Params{MaxFaults: 2})
		if err != nil {
			t.Fatalf("%s: build: %v", tc.name, err)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		loaded, err := UnmarshalScheme(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", tc.name, err)
		}
		if loaded.N() != tc.g.N() || loaded.Graph().M() != tc.g.M() {
			t.Fatalf("%s: wrong shape after load", tc.name)
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	g := workload.Petersen()
	s, err := Build(g, Params{MaxFaults: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := UnmarshalScheme(nil); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("nil input: got %v, want ErrBadSnapshot", err)
	}
	if _, err := UnmarshalScheme(data[:len(data)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := UnmarshalScheme(append(append([]byte(nil), data...), 0)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("trailing byte: got %v, want ErrBadSnapshot", err)
	}

	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := UnmarshalScheme(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad magic: got %v, want ErrBadSnapshot", err)
	}

	// A bumped version byte must fail with ErrSnapshotVersion — the
	// contract that makes silent wire-format drift impossible.
	bad = append([]byte(nil), data...)
	bad[len(snapshotMagic)] = SnapshotVersion + 1
	if _, err := UnmarshalScheme(bad); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version: got %v, want ErrSnapshotVersion", err)
	}

	// Flipping a bit in the token must be caught by the fingerprint check.
	tokenOff := len(snapshotMagic) + 1 + 4 + 4 + 8*g.M()
	bad = append([]byte(nil), data...)
	bad[tokenOff] ^= 1
	if _, err := UnmarshalScheme(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("token flip: got %v, want ErrBadSnapshot", err)
	}
}
