package core

import (
	"repro/internal/ancestry"
	"repro/internal/euler"
	"repro/internal/graph"
)

// AuxView is a read-only snapshot of the auxiliary-graph transform (§3.2)
// and its Euler-tour geometry (§4.3) for one graph — the material of the
// paper's Figures 1 and 2. It exists for demos, experiments, and white-box
// tests; the labeling scheme itself never exposes it.
type AuxView struct {
	// Forest is the spanning forest of the original graph.
	Forest *graph.Forest
	// TPrime is the auxiliary spanning tree T′ (original vertices
	// 0..n-1, then one subdivision vertex per non-tree edge).
	TPrime *graph.Forest
	// Anc labels T′'s vertices.
	Anc *ancestry.Labeling
	// Tour is the Euler tour of T′.
	Tour *euler.Tour
	// NonTree lists the non-tree edge indices in slot order; XVertex and
	// FarEnd give each slot's subdivision vertex and far endpoint in T′.
	NonTree []int
	XVertex []int
	FarEnd  []int
	// Points is the planar embedding of the non-tree edges (Figure 2).
	Points []euler.Point
}

// NewAuxView computes the transform for g.
func NewAuxView(g *graph.Graph) *AuxView {
	f := graph.SpanningForest(g)
	a := buildAux(g, f, 0)
	return &AuxView{
		Forest:  f,
		TPrime:  a.tprime,
		Anc:     a.anc,
		Tour:    a.tour,
		NonTree: a.nonTree,
		XVertex: a.xVertex,
		FarEnd:  a.farEnd,
		Points:  a.points(),
	}
}
