package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rs"
	"repro/internal/workload"
)

// TestCorruptedTokenRejected: flipping the token in any label must be
// detected, never silently processed.
func TestCorruptedTokenRejected(t *testing.T) {
	g := workload.Cycle(8)
	s := mustBuild(t, g, Params{MaxFaults: 2})
	sl, tl := s.VertexLabel(0), s.VertexLabel(4)
	bad := sl
	bad.Token ^= 1
	if _, err := Connected(bad, tl, nil); err == nil {
		t.Fatal("corrupted vertex token accepted")
	}
	el := s.EdgeLabel(0)
	el.Token ^= 1
	if _, err := Connected(sl, tl, []EdgeLabel{el}); err == nil {
		t.Fatal("corrupted edge token accepted")
	}
}

// TestCorruptedPayloadNeverPanics: random bit flips in the outdetect payload
// must never panic. With the fault edge's own syndrome corrupted the decoder
// either detects the inconsistency (error), or reaches a wrong-but-decodable
// state; the contract under corruption is graceful failure, not silence
// about panics.
func TestCorruptedPayloadNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := workload.ErdosRenyi(24, 0.2, true, rng)
	s := mustBuild(t, g, Params{MaxFaults: 3})
	forest := s.Forest
	for trial := 0; trial < 200; trial++ {
		faults := workload.TreeEdgeFaults(g, forest, 1+rng.Intn(3), rng)
		fl := make([]EdgeLabel, len(faults))
		for i, e := range faults {
			orig := s.EdgeLabel(e)
			copied := orig
			copied.Out = append([]uint64(nil), orig.Out...)
			// Flip a random bit in the payload.
			if len(copied.Out) > 0 {
				w := rng.Intn(len(copied.Out))
				copied.Out[w] ^= 1 << uint(rng.Intn(64))
			}
			fl[i] = copied
		}
		sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
		// Must not panic; errors are acceptable and expected.
		_, _ = Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
	}
}

// TestCorruptedAncestryHandled: garbage ancestry labels in faults must yield
// errors, not panics or silent misbehavior.
func TestCorruptedAncestryHandled(t *testing.T) {
	g := workload.Cycle(6)
	s := mustBuild(t, g, Params{MaxFaults: 2})
	el := s.EdgeLabel(0)
	el.Parent.Pre, el.Parent.Post = 999, 1000 // not an ancestor of Child
	if _, err := Connected(s.VertexLabel(0), s.VertexLabel(3), []EdgeLabel{el}); err == nil {
		t.Fatal("non-ancestor fault pair accepted")
	}
}

// TestQuickConnectivityInvariants drives testing/quick over random small
// instances: the decoder must agree with ground truth for arbitrary fault
// subsets within budget.
func TestQuickConnectivityInvariants(t *testing.T) {
	type seedCase struct {
		Seed   int64
		FaultA uint8
		FaultB uint8
		S, T   uint8
	}
	rngSchemes := map[int64]*Scheme{}
	graphs := map[int64]*graph.Graph{}
	getScheme := func(seed int64) (*graph.Graph, *Scheme) {
		seed %= 5
		if s, ok := rngSchemes[seed]; ok {
			return graphs[seed], s
		}
		rng := rand.New(rand.NewSource(seed))
		g := workload.ErdosRenyi(16+int(seed)*3, 0.25, true, rng)
		s, err := Build(g, Params{MaxFaults: 2})
		if err != nil {
			t.Fatal(err)
		}
		rngSchemes[seed] = s
		graphs[seed] = g
		return g, s
	}
	check := func(c seedCase) bool {
		g, s := getScheme(c.Seed)
		fa := int(c.FaultA) % g.M()
		fb := int(c.FaultB) % g.M()
		sv := int(c.S) % g.N()
		tv := int(c.T) % g.N()
		faults := []int{fa, fb}
		fl := []EdgeLabel{s.EdgeLabel(fa), s.EdgeLabel(fb)}
		got, err := Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
		if err != nil {
			return false
		}
		return got == graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPropSubtreeXORIdentity verifies Proposition 4 directly on built
// schemes: the outdetect sum of a fragment equals the XOR of its boundary
// edges' labels — exercised by comparing the decoder's two query paths,
// which consume that identity differently.
func TestQuickPropSubtreeXORIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := workload.ErdosRenyi(30, 0.15, true, rng)
	s := mustBuild(t, g, Params{MaxFaults: 3})
	forest := s.Forest
	for trial := 0; trial < 150; trial++ {
		faults := workload.TreeEdgeFaults(g, forest, 1+rng.Intn(3), rng)
		fl := make([]EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = s.EdgeLabel(e)
		}
		sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
		fast, errF := Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
		basic, errB := ConnectedBasic(s.VertexLabel(sv), s.VertexLabel(tv), fl)
		if (errF == nil) != (errB == nil) {
			t.Fatalf("fast/basic error disagreement: %v vs %v", errF, errB)
		}
		if errF == nil && fast != basic {
			t.Fatalf("fast=%v basic=%v for (%d,%d,%v)", fast, basic, sv, tv, faults)
		}
	}
}

// TestThresholdAblation measures DESIGN.md §3.4 directly: shrinking the
// practical threshold k must degrade into *detected* decode errors, never
// silent wrong answers.
func TestThresholdAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := workload.ErdosRenyi(60, 0.25, true, rng)
	const f = 4
	for _, divisor := range []int{1, 4, 16} {
		s, err := Build(g, Params{
			MaxFaults: f,
			Threshold: func(f, m int) int {
				k := f * f / divisor
				if k < 2 {
					k = 2
				}
				return k
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		wrong, failed := 0, 0
		forest := s.Forest
		for q := 0; q < 200; q++ {
			faults := workload.TreeEdgeFaults(g, forest, 1+rng.Intn(f), rng)
			fl := make([]EdgeLabel, len(faults))
			for i, e := range faults {
				fl[i] = s.EdgeLabel(e)
			}
			sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
			got, err := Connected(s.VertexLabel(sv), s.VertexLabel(tv), fl)
			if err != nil {
				failed++
				continue
			}
			if got != graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv) {
				wrong++
			}
		}
		if wrong > 0 {
			t.Fatalf("divisor %d: %d silent wrong answers (failures must be detected)", divisor, wrong)
		}
		t.Logf("k divisor %d: %d detected decode failures / 200", divisor, failed)
	}
}

// TestRoutePlanSteps sanity-checks the Corollary 2 witness: plans end at the
// destination and crossings reference valid preorders.
func TestRoutePlanSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := workload.ErdosRenyi(40, 0.12, true, rng)
	s := mustBuild(t, g, Params{MaxFaults: 3})
	forest := s.Forest
	for trial := 0; trial < 100; trial++ {
		faults := workload.TreeEdgeFaults(g, forest, 1+rng.Intn(3), rng)
		fl := make([]EdgeLabel, len(faults))
		for i, e := range faults {
			fl[i] = s.EdgeLabel(e)
		}
		sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
		plan, ok, err := RoutePlan(s.VertexLabel(sv), s.VertexLabel(tv), fl)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.ConnectedUnder(g, workload.FaultSet(faults), sv, tv)
		if ok != want {
			t.Fatalf("RoutePlan reachable=%v, want %v", ok, want)
		}
		if !ok {
			continue
		}
		if len(plan) == 0 || plan[len(plan)-1].Far != 0 ||
			plan[len(plan)-1].Near != s.VertexLabel(tv).Anc.Pre {
			t.Fatalf("plan does not end at destination: %+v", plan)
		}
		for _, step := range plan[:len(plan)-1] {
			if step.Near == 0 || step.Far == 0 {
				t.Fatalf("crossing step with zero preorder: %+v", step)
			}
		}
	}
}

// TestDecodeOutgoingLevelOrder is a white-box check of the Lemma 2 scan: a
// payload whose sparsest nonzero level holds one edge decodes to exactly
// that edge even if denser levels below are overloaded.
func TestDecodeOutgoingLevelOrder(t *testing.T) {
	spec := OutSpec{Kind: KindDetNetFind, K: 4, Levels: 3}
	payload := make([]uint64, spec.Words())
	stride := 2 * spec.K
	// Level 0 (densest): 9 > K edges — garbage if trusted.
	lvl0 := rs.Sketch(payload[0:stride])
	for i := 1; i <= 9; i++ {
		lvl0.AddEdge(uint64(i)<<32 | uint64(i+1))
	}
	// Level 2 (sparsest): exactly one edge.
	lvl2 := rs.Sketch(payload[2*stride : 3*stride])
	want := uint64(7)<<32 | uint64(9)
	lvl2.AddEdge(want)
	ids, err := spec.DecodeOutgoing(payload, spec.K)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != want {
		t.Fatalf("ids = %v, want [%#x]", ids, want)
	}
}
