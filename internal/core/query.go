package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/fragments"
)

// ErrLabelMismatch is returned when labels from different graphs or
// constructions are mixed in one query.
var ErrLabelMismatch = errors.New("core: labels belong to different schemes")

// ErrTooManyFaults is returned when the (deduplicated) fault set exceeds the
// budget f the labels were constructed for.
var ErrTooManyFaults = errors.New("core: fault set exceeds the labels' budget")

// Connected is the universal decoder D^con (§7.1): it decides the s–t
// connectivity of G − F purely from the labels of s, t, and the edges of F,
// using the fast query algorithm of §7.6. It never accesses the graph.
func Connected(s, t VertexLabel, faults []EdgeLabel) (bool, error) {
	return connected(s, t, faults, true)
}

// ConnectedBasic runs the simpler §7.2 query algorithm (always grow the
// fragment containing s). Primarily a cross-check and a Table 1 measurement
// point; results are always identical to Connected.
func ConnectedBasic(s, t VertexLabel, faults []EdgeLabel) (bool, error) {
	return connected(s, t, faults, false)
}

func connected(s, t VertexLabel, faults []EdgeLabel, fast bool) (bool, error) {
	if s.Token != t.Token {
		return false, fmt.Errorf("%w: vertex tokens differ", ErrLabelMismatch)
	}
	if s.Anc.Root != t.Anc.Root {
		// Different trees of the spanning forest: never connected, no
		// matter the faults.
		return false, nil
	}
	if s.Anc.Pre == t.Anc.Pre {
		return true, nil
	}
	q, err := newQueryState(s, t, faults)
	if err != nil {
		return false, err
	}
	if q == nil {
		// No relevant faults: same component ⇒ connected.
		return true, nil
	}
	if q.fragS == q.fragT {
		return true, nil
	}
	if fast {
		return q.runFast()
	}
	return q.runBasic()
}

// queryState is the per-query working set: the fragment decomposition, one
// outdetect aggregate per super-fragment, and the boundary bookkeeping of
// §7.6.
type queryState struct {
	spec         OutSpec
	maxFaults    int
	frags        *fragments.Set
	fragS, fragT int

	// Per fragment c (0..q): parent pointer for the union-find over
	// fragments, and for roots the live super-fragment state.
	parent []int
	super  []*superFrag

	// recording, when set (RoutePlan), retains every decoded crossing
	// with its endpoint fragments for route extraction.
	recording bool
	records   []crossRec
}

// superFrag is τ(S) from §7.6: the aggregated outdetect payload, the
// boundary fault bitset, and membership flags.
type superFrag struct {
	sum      []uint64
	cut      []uint64 // bitset over fault indices
	cutSize  int
	hasS     bool
	hasT     bool
	version  int
	discard  bool
	closed   bool
	fragRoot int
}

func newQueryState(s, t VertexLabel, faults []EdgeLabel) (*queryState, error) {
	var fs []fragments.Fault
	var spec OutSpec
	maxFaults := 0
	var relevant []EdgeLabel
	for i := range faults {
		fl := &faults[i]
		if fl.Token != s.Token {
			return nil, fmt.Errorf("%w: fault %d token differs", ErrLabelMismatch, i)
		}
		if fl.Child.Root != s.Anc.Root {
			continue // fault in another component: irrelevant
		}
		relevant = append(relevant, *fl)
		maxFaults = fl.MaxFaults
		spec = fl.Spec
	}
	if len(relevant) == 0 {
		return nil, nil
	}
	// One Normalize per fault feeds both the fragment set and the
	// label re-association map (deduplicated faults keyed by child pre).
	labelByChild := make(map[uint32]*EdgeLabel, len(relevant))
	for i := range relevant {
		ft, err := fragments.Normalize(relevant[i].Parent, relevant[i].Child)
		if err != nil {
			return nil, err
		}
		fs = append(fs, ft)
		labelByChild[ft.Child.Pre] = &relevant[i]
	}
	set, err := fragments.Build(fs)
	if err != nil {
		return nil, err
	}
	if len(set.Faults) > maxFaults {
		return nil, fmt.Errorf("%w: %d faults, budget %d", ErrTooManyFaults, len(set.Faults), maxFaults)
	}
	words := spec.Words()
	q := &queryState{
		spec:      spec,
		maxFaults: maxFaults,
		frags:     set,
		parent:    make([]int, set.Count()),
		super:     make([]*superFrag, set.Count()),
	}
	for c := 0; c < set.Count(); c++ {
		q.parent[c] = c
		sf := &superFrag{
			sum:      make([]uint64, words),
			cut:      make([]uint64, (len(set.Faults)+63)/64),
			fragRoot: c,
		}
		for _, fi := range set.Boundary[c] {
			fl := labelByChild[set.Faults[fi].Child.Pre]
			if fl == nil || len(fl.Out) != words {
				return nil, fmt.Errorf("%w: inconsistent fault payloads", ErrLabelMismatch)
			}
			for w := range fl.Out {
				sf.sum[w] ^= fl.Out[w]
			}
			sf.cut[fi/64] ^= 1 << uint(fi%64)
		}
		sf.cutSize = popcount(sf.cut)
		q.super[c] = sf
	}
	q.fragS = set.StabLabel(s.Anc)
	q.fragT = set.StabLabel(t.Anc)
	q.super[q.fragS].hasS = true
	q.super[q.fragT].hasT = true
	return q, nil
}

func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// find is the union-find lookup over fragment indices.
func (q *queryState) find(c int) int {
	for q.parent[c] != c {
		q.parent[c] = q.parent[q.parent[c]]
		c = q.parent[c]
	}
	return c
}

// adaptiveBudget scales the Reed–Solomon prefix budget to the actual
// boundary size of the queried super-fragment (Appendix B): the threshold
// grows as f² for the deterministic hierarchy and as f for the sampled one,
// so a boundary of b ≤ f faults needs only the correspondingly scaled
// prefix. DecodeOutgoing retries at the full threshold on failure, so this
// is purely a speed optimization.
func (q *queryState) adaptiveBudget(boundary int) int {
	if q.spec.Kind == KindAGM || q.maxFaults == 0 || boundary >= q.maxFaults {
		return q.spec.K
	}
	var scaled int
	switch q.spec.Kind {
	case KindRandRS:
		scaled = q.spec.K * boundary / q.maxFaults
	default:
		scaled = q.spec.K * boundary * boundary / (q.maxFaults * q.maxFaults)
	}
	if scaled < 4 {
		scaled = 4
	}
	if scaled > q.spec.K {
		scaled = q.spec.K
	}
	return scaled
}

// mergeInto unions the super-fragment rooted at src into the one rooted at
// dst (both must be distinct union-find roots) and returns the new root's
// state.
func (q *queryState) mergeInto(dst, src int) *superFrag {
	a, b := q.super[dst], q.super[src]
	q.parent[src] = dst
	for w := range a.sum {
		a.sum[w] ^= b.sum[w]
	}
	for w := range a.cut {
		a.cut[w] ^= b.cut[w]
	}
	a.cutSize = popcount(a.cut)
	a.hasS = a.hasS || b.hasS
	a.hasT = a.hasT || b.hasT
	a.version++
	b.discard = true
	return a
}

// growOnce decodes the outgoing edges of the super-fragment rooted at root
// and merges every discovered neighbor super-fragment into it. It returns
// (done, answer): done=true when the query is resolved.
func (q *queryState) growOnce(root int) (bool, bool, error) {
	sf := q.super[root]
	ids, err := q.spec.DecodeOutgoing(sf.sum, q.adaptiveBudget(sf.cutSize))
	if err != nil {
		return false, false, err
	}
	if len(ids) == 0 {
		// Closed: V(S) is a union of G−F components.
		if sf.hasS || sf.hasT {
			return true, false, nil
		}
		sf.discard = true
		return false, false, nil
	}
	merges := 0
	for _, id := range ids {
		p1, p2 := edgeIDParts(id)
		f1, f2 := q.frags.Stab(p1), q.frags.Stab(p2)
		if q.recording {
			q.records = append(q.records, crossRec{p1: p1, p2: p2, c1: f1, c2: f2})
		}
		c1 := q.find(f1)
		c2 := q.find(f2)
		cur := q.find(root)
		var other int
		switch {
		case c1 == cur && c2 != cur:
			other = c2
		case c2 == cur && c1 != cur:
			other = c1
		default:
			// Both endpoints already inside (an earlier id this round
			// merged the other side) — skip.
			continue
		}
		merges++
		merged := q.mergeInto(cur, other)
		if merged.hasS && merged.hasT {
			return true, true, nil
		}
	}
	if merges == 0 {
		// Every decoded edge claims to stay inside the super-fragment: a
		// genuine outgoing-edge set cannot do that, so the syndrome was
		// an undetected overload (only reachable with thresholds far
		// below the defaults). Surface it rather than looping.
		return false, false, fmt.Errorf("%w: decoded edges do not leave the fragment", ErrDecode)
	}
	return false, false, nil
}

// runBasic grows the fragment containing s until t's fragment is merged or
// the component closes (§7.2).
func (q *queryState) runBasic() (bool, error) {
	for {
		root := q.find(q.fragS)
		done, ans, err := q.growOnce(root)
		if err != nil {
			return false, err
		}
		if done {
			return ans, nil
		}
		if q.super[q.find(q.fragS)].discard {
			// s's component closed without touching t.
			return false, nil
		}
	}
}

// superHeap orders live super-fragments by boundary size (then by fragment
// root for determinism) — the §7.6 refinement.
type superHeap struct {
	q     *queryState
	items []heapItem
}

type heapItem struct {
	root    int
	version int
	cutSize int
}

func (h *superHeap) Len() int { return len(h.items) }
func (h *superHeap) Less(i, j int) bool {
	if h.items[i].cutSize != h.items[j].cutSize {
		return h.items[i].cutSize < h.items[j].cutSize
	}
	return h.items[i].root < h.items[j].root
}
func (h *superHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *superHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *superHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// runFast is the heap-driven query of §7.6: always expand the live
// super-fragment with the smallest tree boundary.
func (q *queryState) runFast() (bool, error) {
	h := &superHeap{q: q}
	for c := 0; c < q.frags.Count(); c++ {
		sf := q.super[c]
		h.items = append(h.items, heapItem{root: c, version: sf.version, cutSize: sf.cutSize})
	}
	heap.Init(h)
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		root := it.root
		sf := q.super[root]
		if sf.discard || q.find(root) != root || sf.version != it.version {
			continue // stale entry (lazy deletion)
		}
		done, ans, err := q.growOnce(root)
		if err != nil {
			return false, err
		}
		if done {
			return ans, nil
		}
		cur := q.find(root)
		csf := q.super[cur]
		if !csf.discard {
			heap.Push(h, heapItem{root: cur, version: csf.version, cutSize: csf.cutSize})
		}
	}
	// Every super-fragment closed without uniting s and t.
	return false, nil
}
