package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// ErrLabelMismatch is returned when labels from different graphs or
// constructions are mixed in one query.
var ErrLabelMismatch = errors.New("core: labels belong to different schemes")

// ErrStaleLabel is returned when labels from different generations of a
// dynamic network are mixed in one query: the topology changed under the
// older label, so answering would be meaningless. It wraps ErrLabelMismatch,
// so errors.Is(err, ErrLabelMismatch) continues to hold for existing
// callers.
var ErrStaleLabel = fmt.Errorf("%w: stale label from an earlier network generation", ErrLabelMismatch)

// ErrTooManyFaults is returned when the (deduplicated) fault set exceeds the
// budget f the labels were constructed for.
var ErrTooManyFaults = errors.New("core: fault set exceeds the labels' budget")

// checkStamp validates that two label stamps belong to the same scheme and
// generation. Generations are folded into the token, so a token match alone
// proves both — crucially, it must NOT also require the in-memory Gen
// fields to agree: the wire codecs omit Gen, so a label that round-tripped
// through Marshal/Unmarshal carries Gen 0 yet is byte-for-byte the same
// label.
//
// On a token mismatch the generation stamps (zero for static schemes) pick
// the error: differing nonzero stamps yield ErrStaleLabel. Labels carry no
// network identity, so this is a best-effort diagnosis, not proof of
// staleness — two unrelated dynamic networks whose generation counters
// happen to differ are also reported as stale. Every such error still
// wraps ErrLabelMismatch; callers reacting to ErrStaleLabel by refreshing
// labels should treat a second failure as a genuine scheme mix. what names
// the label pair for the error message.
func checkStamp(tokA, genA, tokB, genB uint64, what string) error {
	if tokA == tokB {
		return nil
	}
	if genA != 0 && genB != 0 && genA != genB {
		return fmt.Errorf("%w: %s (generation %d vs %d)", ErrStaleLabel, what, genA, genB)
	}
	return fmt.Errorf("%w: %s differ", ErrLabelMismatch, what)
}

// Connected is the universal decoder D^con (§7.1): it decides the s–t
// connectivity of G − F purely from the labels of s, t, and the edges of F,
// using the fast query algorithm of §7.6. It never accesses the graph.
//
// Connected compiles a throwaway FaultSet per call; callers probing one
// fault set repeatedly should CompileFaults once and probe the FaultSet.
func Connected(s, t VertexLabel, faults []EdgeLabel) (bool, error) {
	return connected(s, t, faults, true)
}

// ConnectedBasic runs the simpler §7.2 query algorithm (always grow the
// fragment containing s). Primarily a cross-check and a Table 1 measurement
// point; results are always identical to Connected.
func ConnectedBasic(s, t VertexLabel, faults []EdgeLabel) (bool, error) {
	return connected(s, t, faults, false)
}

func connected(s, t VertexLabel, faults []EdgeLabel, fast bool) (bool, error) {
	if err := checkStamp(s.Token, s.Gen, t.Token, t.Gen, "vertex tokens"); err != nil {
		return false, err
	}
	if s.Anc.Root != t.Anc.Root {
		// Different trees of the spanning forest: never connected, no
		// matter the faults.
		return false, nil
	}
	if s.Anc.Pre == t.Anc.Pre {
		return true, nil
	}
	q, err := oneShotQuery(s, t, faults)
	if err != nil {
		return false, err
	}
	if q == nil {
		// No relevant faults: same component ⇒ connected.
		return true, nil
	}
	defer releaseQueryState(q)
	if q.fragS == q.fragT {
		return true, nil
	}
	if fast {
		return q.runFast()
	}
	return q.runBasic()
}

// oneShotQuery is the compatibility path behind the per-call decoders
// (Connected, ConnectedBasic, RoutePlan): it compiles the faults relevant to
// s's component into a throwaway FaultSet and prepares pooled per-probe
// state with s and t marked. Returns nil when no fault is relevant.
func oneShotQuery(s, t VertexLabel, faults []EdgeLabel) (*queryState, error) {
	var relevant []EdgeLabel
	for i := range faults {
		fl := &faults[i]
		if err := checkStamp(fl.Token, fl.Gen, s.Token, s.Gen, fmt.Sprintf("fault %d and vertex tokens", i)); err != nil {
			return nil, err
		}
		if fl.Child.Root != s.Anc.Root {
			continue // fault in another component: irrelevant
		}
		relevant = append(relevant, *fl)
	}
	if len(relevant) == 0 {
		return nil, nil
	}
	fs, err := CompileFaults(relevant)
	if err != nil {
		return nil, err
	}
	comp := fs.comps[0]
	q := comp.acquire()
	q.fragS = int32(comp.frags.StabLabel(s.Anc))
	q.fragT = int32(comp.frags.StabLabel(t.Anc))
	q.flags[q.fragS] |= flagHasS
	q.flags[q.fragT] |= flagHasT
	return q, nil
}

// Super-fragment state flags (per union-find root).
const (
	flagHasS    uint8 = 1 << iota // contains s's fragment
	flagHasT                      // contains t's fragment
	flagDiscard                   // merged away or closed without s/t
)

// queryState is the per-probe working set of the §7.6 engine: a union-find
// over fragments plus, per live root, the aggregated outdetect payload, the
// boundary fault bitset, and the bookkeeping flags — all held in flat,
// reusable slices so a probe performs no per-call map or slice allocations.
// States are recycled through a package-level sync.Pool; acquire resets one
// from a component's immutable initial state.
type queryState struct {
	comp         *faultComponent
	fragS, fragT int32

	parent  []int32  // union-find parent per fragment
	sums    []uint64 // count×words aggregated payloads
	cuts    []uint64 // count×cutWords boundary bitsets
	cutSize []int32
	version []int32 // bumped on merge for lazy heap deletion
	flags   []uint8
	heap    []heapItem

	// recording, when set (RoutePlan), retains every decoded crossing
	// with its endpoint fragments for route extraction.
	recording bool
	records   []crossRec
}

type heapItem struct {
	root, version, cutSize int32
}

var qsPool = sync.Pool{New: func() any { return new(queryState) }}

// grown returns s resized to n elements, reusing capacity when possible.
func grown[T int32 | uint64 | uint8](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// acquire takes a pooled queryState and resets it to the component's initial
// super-fragment state. The copies reuse the state's capacity: a warmed pool
// serves probes without allocating.
func (c *faultComponent) acquire() *queryState {
	q := qsPool.Get().(*queryState)
	q.comp = c
	n := c.count
	q.parent = grown(q.parent, n)
	for i := range q.parent {
		q.parent[i] = int32(i)
	}
	q.sums = grown(q.sums, n*c.words)
	copy(q.sums, c.initSum)
	q.cuts = grown(q.cuts, n*c.cutWords)
	copy(q.cuts, c.initCut)
	q.cutSize = grown(q.cutSize, n)
	copy(q.cutSize, c.initCutSize)
	q.version = grown(q.version, n)
	clear(q.version)
	q.flags = grown(q.flags, n)
	clear(q.flags)
	q.heap = q.heap[:0]
	q.records = q.records[:0]
	q.recording = false
	q.fragS, q.fragT = -1, -1
	return q
}

func releaseQueryState(q *queryState) {
	q.comp = nil // don't pin the component's label payloads from the pool
	qsPool.Put(q)
}

// sum returns fragment c's payload block.
func (q *queryState) sum(c int32) []uint64 {
	w := q.comp.words
	return q.sums[int(c)*w : (int(c)+1)*w]
}

// cut returns fragment c's boundary bitset block.
func (q *queryState) cut(c int32) []uint64 {
	w := q.comp.cutWords
	return q.cuts[int(c)*w : (int(c)+1)*w]
}

func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// find is the union-find lookup over fragment indices (path halving).
func (q *queryState) find(c int32) int32 {
	for q.parent[c] != c {
		q.parent[c] = q.parent[q.parent[c]]
		c = q.parent[c]
	}
	return c
}

// adaptiveBudget scales the Reed–Solomon prefix budget to the actual
// boundary size of the queried super-fragment (Appendix B): the threshold
// grows as f² for the deterministic hierarchy and as f for the sampled one,
// so a boundary of b ≤ f faults needs only the correspondingly scaled
// prefix. DecodeOutgoing retries at the full threshold on failure, so this
// is purely a speed optimization.
func (q *queryState) adaptiveBudget(boundary int32) int {
	spec, maxFaults := q.comp.spec, q.comp.maxFaults
	if spec.Kind == KindAGM || maxFaults == 0 || int(boundary) >= maxFaults {
		return spec.K
	}
	var scaled int
	switch spec.Kind {
	case KindRandRS:
		scaled = spec.K * int(boundary) / maxFaults
	default:
		scaled = spec.K * int(boundary) * int(boundary) / (maxFaults * maxFaults)
	}
	if scaled < 4 {
		scaled = 4
	}
	if scaled > spec.K {
		scaled = spec.K
	}
	return scaled
}

// mergeInto unions the super-fragment rooted at src into the one rooted at
// dst (both must be distinct union-find roots).
func (q *queryState) mergeInto(dst, src int32) {
	q.parent[src] = dst
	xorInto(q.sum(dst), q.sum(src))
	cd, cs := q.cut(dst), q.cut(src)
	for w := range cd {
		cd[w] ^= cs[w]
	}
	q.cutSize[dst] = int32(popcount(cd))
	q.flags[dst] |= q.flags[src] & (flagHasS | flagHasT)
	q.version[dst]++
	q.flags[src] |= flagDiscard
}

// growOnce decodes the outgoing edges of the super-fragment rooted at root
// and merges every discovered neighbor super-fragment into it. It returns
// (done, answer): done=true when the query is resolved.
func (q *queryState) growOnce(root int32) (bool, bool, error) {
	ids, err := q.comp.spec.DecodeOutgoing(q.sum(root), q.adaptiveBudget(q.cutSize[root]))
	if err != nil {
		return false, false, err
	}
	if len(ids) == 0 {
		// Closed: V(S) is a union of G−F components.
		if q.flags[root]&(flagHasS|flagHasT) != 0 {
			return true, false, nil
		}
		q.flags[root] |= flagDiscard
		return false, false, nil
	}
	merges := 0
	for _, id := range ids {
		p1, p2 := edgeIDParts(id)
		f1, f2 := q.comp.frags.Stab(p1), q.comp.frags.Stab(p2)
		if q.recording {
			q.records = append(q.records, crossRec{p1: p1, p2: p2, c1: f1, c2: f2})
		}
		c1 := q.find(int32(f1))
		c2 := q.find(int32(f2))
		cur := q.find(root)
		var other int32
		switch {
		case c1 == cur && c2 != cur:
			other = c2
		case c2 == cur && c1 != cur:
			other = c1
		default:
			// Both endpoints already inside (an earlier id this round
			// merged the other side) — skip.
			continue
		}
		merges++
		q.mergeInto(cur, other)
		if q.flags[cur]&(flagHasS|flagHasT) == flagHasS|flagHasT {
			return true, true, nil
		}
	}
	if merges == 0 {
		// Every decoded edge claims to stay inside the super-fragment: a
		// genuine outgoing-edge set cannot do that, so the syndrome was
		// an undetected overload (only reachable with thresholds far
		// below the defaults). Surface it rather than looping.
		return false, false, fmt.Errorf("%w: decoded edges do not leave the fragment", ErrDecode)
	}
	return false, false, nil
}

// runBasic grows the fragment containing s until t's fragment is merged or
// the component closes (§7.2).
func (q *queryState) runBasic() (bool, error) {
	for {
		root := q.find(q.fragS)
		done, ans, err := q.growOnce(root)
		if err != nil {
			return false, err
		}
		if done {
			return ans, nil
		}
		if q.flags[q.find(q.fragS)]&flagDiscard != 0 {
			// s's component closed without touching t.
			return false, nil
		}
	}
}

// Heap over live super-fragments ordered by boundary size (then fragment
// root for determinism) — the §7.6 refinement. Hand-rolled on the pooled
// item slice instead of container/heap so pushes don't box through
// interface{}.

func heapLess(a, b heapItem) bool {
	if a.cutSize != b.cutSize {
		return a.cutSize < b.cutSize
	}
	return a.root < b.root
}

func (q *queryState) heapPush(it heapItem) {
	q.heap = append(q.heap, it)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(q.heap[i], q.heap[p]) {
			break
		}
		q.heap[i], q.heap[p] = q.heap[p], q.heap[i]
		i = p
	}
}

func (q *queryState) heapPop() heapItem {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.heap = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && heapLess(h[l], h[small]) {
			small = l
		}
		if r < n && heapLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// runFast is the heap-driven query of §7.6: always expand the live
// super-fragment with the smallest tree boundary. With no s/t fragments
// marked (fragS = fragT = -1) it drives every super-fragment to closure,
// which is how FaultSet components compute their cached partition.
func (q *queryState) runFast() (bool, error) {
	q.heap = q.heap[:0]
	for c := int32(0); int(c) < q.comp.count; c++ {
		q.heapPush(heapItem{root: c, version: 0, cutSize: q.cutSize[c]})
	}
	for len(q.heap) > 0 {
		it := q.heapPop()
		root := it.root
		if q.flags[root]&flagDiscard != 0 || q.find(root) != root || q.version[root] != it.version {
			continue // stale entry (lazy deletion)
		}
		done, ans, err := q.growOnce(root)
		if err != nil {
			return false, err
		}
		if done {
			return ans, nil
		}
		cur := q.find(root)
		if q.flags[cur]&flagDiscard == 0 {
			q.heapPush(heapItem{root: cur, version: q.version[cur], cutSize: q.cutSize[cur]})
		}
	}
	// Every super-fragment closed without uniting s and t.
	return false, nil
}
