// Package wireclient is the pipelined client side of the binary probe
// protocol (internal/serve/wire): a fixed pool of persistent connections,
// each carrying up to a bounded number of in-flight batches, with
// responses matched to requests FIFO per connection (the server answers
// in order by contract).
//
// Pipelining model: Probe/ProbeInto are synchronous per caller, but any
// number of goroutines may call concurrently — calls are spread
// round-robin over the connections, and each connection interleaves the
// writes of every caller queued on it. With more callers than
// connections, a connection's wire therefore carries several requests
// before the first response returns, which is what amortizes syscalls and
// keeps the server's frame loop fed (its response flush batches while
// requests are buffered). The Inflight bound is enforced by the pending
// queue: a caller blocks before writing once that many batches are
// unanswered on its connection.
//
// The steady-state client path is allocation-light: calls, canonical
// fault buffers, and encode buffers are pooled, and the caller may pass
// its own answer slice to ProbeInto.
//
// The client does not reconnect: a connection error fails the calls in
// flight on it and poisons the client (every later call returns the same
// error). That is the right shape for the load generator and the tests —
// a serving-tier client with retry/hedging policy belongs a layer up.
package wireclient

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/wire"
)

// Options shape a Client.
type Options struct {
	// Conns is the number of persistent connections (default 1).
	Conns int
	// Inflight is the per-connection bound on unanswered batches
	// (default 32).
	Inflight int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
}

// ServerError is a failure reported by the server in an error frame, with
// the protocol's HTTP-aligned code preserved so callers can distinguish a
// generation conflict (wire.CodeConflict) from an invalid request.
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server error %d: %s", e.Code, e.Msg)
}

// call is one in-flight probe. done is buffered so the reader never
// blocks handing off a result.
type call struct {
	id    uint64
	dst   []bool
	resp  wire.ProbeResp
	err   error
	canon []int
	frame []byte
	done  chan struct{}
}

var callPool = sync.Pool{New: func() any {
	return &call{done: make(chan struct{}, 1)}
}}

// conn is one persistent connection with its FIFO of unanswered calls.
type conn struct {
	c  net.Conn
	bw *bufio.Writer
	rd *wire.Reader

	// wmu serializes frame writes AND pending enqueues: a call must enter
	// the FIFO in the exact order its frame hits the wire, because the
	// reader matches responses positionally.
	wmu     sync.Mutex
	nextID  uint64
	pending chan *call

	err  atomic.Pointer[error]
	dead chan struct{}
}

// Client is a pool of pipelined connections to one server.
type Client struct {
	conns []*conn
	rr    atomic.Uint64
	gen   uint64
}

// Dial connects to a binary-protocol listener and performs the handshake
// on every connection.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.Inflight <= 0 {
		opts.Inflight = 32
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	cl := &Client{}
	for i := 0; i < opts.Conns; i++ {
		c, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err != nil {
			cl.Close()
			return nil, err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			// Frames are tiny; the bufio flush is the batching boundary.
			_ = tc.SetNoDelay(true)
		}
		if _, err := c.Write(wire.AppendClientHello(nil)); err != nil {
			c.Close()
			cl.Close()
			return nil, err
		}
		br := bufio.NewReaderSize(c, 64<<10)
		var hello [wire.ServerHelloLen]byte
		if _, err := io.ReadFull(br, hello[:]); err != nil {
			c.Close()
			cl.Close()
			return nil, fmt.Errorf("wireclient: handshake: %w", err)
		}
		gen, err := wire.ParseServerHello(hello[:])
		if err != nil {
			c.Close()
			cl.Close()
			return nil, err
		}
		cl.gen = gen
		cn := &conn{
			c:       c,
			bw:      bufio.NewWriterSize(c, 64<<10),
			rd:      wire.NewReader(br),
			pending: make(chan *call, opts.Inflight),
			dead:    make(chan struct{}),
		}
		cl.conns = append(cl.conns, cn)
		go cn.readLoop()
	}
	return cl, nil
}

// Generation reports the server generation observed at handshake time —
// the natural pin for index-addressed fault edges against a dynamic
// server.
func (cl *Client) Generation() uint64 { return cl.gen }

// Close tears down every connection, failing any calls still in flight.
func (cl *Client) Close() error {
	var first error
	for _, cn := range cl.conns {
		if err := cn.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Probe answers one batch: one failure event (fault edge indices, any
// order — canonicalized here, once) against a batch of s–t pairs. It is
// the allocating convenience form of ProbeInto.
func (cl *Client) Probe(faultEdges []int, pairs [][2]int) ([]bool, error) {
	out, _, _, err := cl.ProbeInto(faultEdges, pairs, nil, 0)
	return out, err
}

// ProbeInto is Probe with the answer slice and generation pin under
// caller control: out is reused (grown as needed) and returned, hit
// reports whether the server answered from an already-compiled cache
// entry, gen is the generation the answer is valid for. genPin, when
// nonzero, makes the server reject the probe with wire.CodeConflict if
// its generation differs — the edge-index stability contract of the JSON
// surface, kept identical here.
func (cl *Client) ProbeInto(faultEdges []int, pairs [][2]int, out []bool, genPin uint64) ([]bool, bool, uint64, error) {
	cn := cl.conns[int(cl.rr.Add(1))%len(cl.conns)]
	if errp := cn.err.Load(); errp != nil {
		return out, false, 0, *errp
	}
	ca := callPool.Get().(*call)
	ca.dst = out
	ca.err = nil
	// Canonicalize once, client-side: the wire carries fault edges
	// strictly ascending so the server validates (never sorts) and hashes
	// in the same pass.
	ca.canon = append(ca.canon[:0], faultEdges...)
	sort.Ints(ca.canon)
	w := 0
	for i, e := range ca.canon {
		if i == 0 || e != ca.canon[i-1] {
			ca.canon[w] = e
			w++
		}
	}
	ca.canon = ca.canon[:w]

	cn.wmu.Lock()
	cn.nextID++
	ca.id = cn.nextID
	ca.frame = wire.AppendProbe(ca.frame[:0], ca.id, genPin, ca.canon, pairs)
	// Enqueue before the bytes hit the wire so the reader's FIFO matches
	// wire order; blocking here (Inflight reached) holds wmu, which is
	// safe — the reader drains pending without ever taking wmu.
	select {
	case cn.pending <- ca:
	case <-cn.dead:
		cn.wmu.Unlock()
		err := cn.failure()
		callPool.Put(ca)
		return out, false, 0, err
	}
	_, werr := cn.bw.Write(ca.frame)
	if werr == nil {
		werr = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if werr != nil {
		cn.fail(werr)
	}

	<-ca.done
	out = ca.resp.Connected
	hit, gen, err := ca.resp.CacheHit, ca.resp.Gen, ca.err
	ca.dst = nil
	ca.resp.Connected = nil
	callPool.Put(ca)
	return out, hit, gen, err
}

// failure returns the connection's terminal error.
func (cn *conn) failure() error {
	if errp := cn.err.Load(); errp != nil {
		return *errp
	}
	return errors.New("wireclient: connection closed")
}

// fail poisons the connection and wakes everything blocked on it.
func (cn *conn) fail(err error) {
	wrapped := fmt.Errorf("wireclient: connection failed: %w", err)
	if cn.err.CompareAndSwap(nil, &wrapped) {
		close(cn.dead)
		_ = cn.c.Close()
	}
}

// readLoop matches responses to pending calls FIFO. It exits (failing all
// in-flight calls) on any read error — including the server closing the
// connection after a fatal protocol violation.
func (cn *conn) readLoop() {
	for {
		op, payload, err := cn.rd.Next()
		if err != nil {
			cn.fail(err)
			cn.drainPending()
			return
		}
		var ca *call
		select {
		case ca = <-cn.pending:
		default:
			cn.fail(errors.New("unsolicited response frame"))
			cn.drainPending()
			return
		}
		switch op {
		case wire.OpProbeResp:
			ca.err = wire.DecodeProbeResp(payload, ca.dst[:0], &ca.resp)
		case wire.OpError:
			id, code, msg, derr := wire.DecodeError(payload)
			if derr != nil {
				ca.err = derr
			} else {
				ca.resp.ID = id
				ca.err = &ServerError{Code: code, Msg: msg}
			}
		default:
			ca.err = fmt.Errorf("%w: unexpected opcode 0x%02x", wire.ErrFrame, op)
		}
		if ca.err == nil && ca.resp.ID != ca.id {
			ca.err = fmt.Errorf("%w: response id %d for request %d (pipeline desync)", wire.ErrFrame, ca.resp.ID, ca.id)
		}
		// Capture the verdict before the handoff: once done is signalled the
		// caller may recycle ca through the pool, so ca must not be touched
		// afterwards.
		ferr := ca.err
		ca.done <- struct{}{}
		if ferr != nil && errors.Is(ferr, wire.ErrFrame) {
			// A framing-level failure means the stream cannot be trusted
			// (pipeline desync, undecodable response) — drop the connection.
			cn.fail(ferr)
			cn.drainPending()
			return
		}
	}
}

// drainPending fails every call still queued after the connection died.
func (cn *conn) drainPending() {
	err := cn.failure()
	for {
		select {
		case ca := <-cn.pending:
			ca.err = err
			ca.done <- struct{}{}
		default:
			return
		}
	}
}
