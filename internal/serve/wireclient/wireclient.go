// Package wireclient is the pipelined client side of the binary probe
// protocol (internal/serve/wire): a fixed pool of persistent connections,
// each carrying up to a bounded number of in-flight batches, with
// responses matched to requests FIFO per connection (the server answers
// in order by contract).
//
// Pipelining model: Probe/ProbeInto are synchronous per caller, but any
// number of goroutines may call concurrently — calls are spread
// round-robin over the connections, and each connection interleaves the
// writes of every caller queued on it. With more callers than
// connections, a connection's wire therefore carries several requests
// before the first response returns, which is what amortizes syscalls and
// keeps the server's frame loop fed (its response flush batches while
// requests are buffered). The Inflight bound is enforced by the pending
// queue: a caller blocks before writing once that many batches are
// unanswered on its connection.
//
// The steady-state client path is allocation-light: calls, canonical
// fault buffers, and encode buffers are pooled, and the caller may pass
// its own answer slice to ProbeInto.
//
// A dropped connection — the server closing on a malformed/desynced
// frame, a network fault, a restart — fails the calls in flight on it and
// is then redialed in the background with capped exponential backoff plus
// jitter. Calls issued while a slot is down spill to the pool's live
// connections (and only fail when every slot is down), so a client
// survives server restarts without caller-side dial logic. Retry policy
// for the failed calls themselves still belongs a layer up (see
// internal/serve/front): the client never re-sends a frame whose fate is
// unknown.
package wireclient

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve/wire"
)

// Options shape a Client.
type Options struct {
	// Conns is the number of persistent connections (default 1).
	Conns int
	// Inflight is the per-connection bound on unanswered batches
	// (default 32).
	Inflight int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration

	// Dialer overrides how raw connections are made (tests inject flaky
	// in-memory listeners here). Defaults to TCP to the Dial address with
	// DialTimeout and TCP_NODELAY.
	Dialer func() (net.Conn, error)

	// ReconnectBase and ReconnectMax bound the redial backoff: attempt n
	// waits min(ReconnectBase·2ⁿ, ReconnectMax) ± 50% jitter. Defaults
	// 10ms and 2s. NoReconnect disables redialing entirely (a dead slot
	// stays dead), which is what short-lived test clients want.
	//
	// The backoff is per slot and persists across redial sessions: it only
	// resets to ReconnectBase after a reconnected slot completes one
	// exchange, so a flappy link (TCP accepts, then dies before answering
	// anything) keeps walking toward ReconnectMax instead of hammering the
	// server at ReconnectBase on every accept.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	NoReconnect   bool
}

// ErrAllDown is returned by a probe when every connection slot is down and
// awaiting redial.
var ErrAllDown = errors.New("wireclient: all connections down (reconnecting)")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("wireclient: client closed")

// ServerError is a failure reported by the server in an error frame, with
// the protocol's HTTP-aligned code preserved so callers can distinguish a
// generation conflict (wire.CodeConflict) from an invalid request.
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server error %d: %s", e.Code, e.Msg)
}

// call is one in-flight request. done is buffered so the reader never
// blocks handing off a result. routeDst is non-nil for route calls and
// names the caller-owned RouteResp the reader decodes into; connectivity
// calls (probe and vprobe, which share the response layout) decode into
// dst/resp instead.
type call struct {
	id       uint64
	dst      []bool
	resp     wire.ProbeResp
	routeDst *wire.RouteResp
	err      error
	canon    []int
	frame    []byte
	done     chan struct{}
}

var callPool = sync.Pool{New: func() any {
	return &call{done: make(chan struct{}, 1)}
}}

// conn is one persistent connection with its FIFO of unanswered calls.
type conn struct {
	c  net.Conn
	bw *bufio.Writer
	rd *wire.Reader

	// wmu serializes frame writes AND pending enqueues: a call must enter
	// the FIFO in the exact order its frame hits the wire, because the
	// reader matches responses positionally.
	wmu     sync.Mutex
	nextID  uint64
	pending chan *call

	err  atomic.Pointer[error]
	dead chan struct{}

	// onDead, when set, runs exactly once as the connection is poisoned —
	// the slot's hook that schedules the redial.
	onDead func()
	// alive latches on the first response delivered on this connection;
	// its rising edge fires onAlive — the slot's backoff reset.
	alive   atomic.Bool
	onAlive func()
}

// slot is one position in the connection pool: the live connection (nil
// while down) plus the redial state machine.
type slot struct {
	cl  *Client
	cur atomic.Pointer[conn]
	// redialing guards against stacking redial goroutines when the dead
	// hook and a probing caller race.
	redialing atomic.Bool
	// backoff carries the redial backoff (nanoseconds) across redial
	// sessions; 0 means "start from ReconnectBase". It is only reset by a
	// reconnected connection completing one exchange (conn.onAlive), so a
	// link that flaps between accept and first answer cannot collapse the
	// backoff back to base.
	backoff atomic.Int64
}

// Client is a pool of pipelined connections to one server.
type Client struct {
	slots  []*slot
	rr     atomic.Uint64
	gen    atomic.Uint64
	opts   Options
	closed atomic.Bool
	// closeMu serializes redial registration with Close: wg.Add may only
	// run while closed is false under this lock, so Close's wg.Wait can
	// never race an Add from a dead-connection hook firing concurrently.
	closeMu sync.Mutex
	// wg tracks redial goroutines so Close can be followed by test
	// teardown without leaks.
	wg sync.WaitGroup
}

// Dial connects to a binary-protocol listener and performs the handshake
// on every connection.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.Inflight <= 0 {
		opts.Inflight = 32
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.ReconnectBase <= 0 {
		opts.ReconnectBase = 10 * time.Millisecond
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = 2 * time.Second
	}
	if opts.Dialer == nil {
		opts.Dialer = func() (net.Conn, error) {
			c, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
			if err != nil {
				return nil, err
			}
			if tc, ok := c.(*net.TCPConn); ok {
				// Frames are tiny; the bufio flush is the batching boundary.
				_ = tc.SetNoDelay(true)
			}
			return c, nil
		}
	}
	cl := &Client{opts: opts}
	for i := 0; i < opts.Conns; i++ {
		sl := &slot{cl: cl}
		cn, err := cl.connect(sl)
		if err != nil {
			cl.Close()
			return nil, err
		}
		sl.cur.Store(cn)
		cl.slots = append(cl.slots, sl)
	}
	return cl, nil
}

// connect dials and handshakes one connection for sl, starting its read
// loop. The caller (or the redial loop) publishes it into the slot.
func (cl *Client) connect(sl *slot) (*conn, error) {
	c, err := cl.opts.Dialer()
	if err != nil {
		return nil, err
	}
	c = faultinject.WrapConn("wireclient.conn", c)
	if _, err := c.Write(wire.AppendClientHello(nil)); err != nil {
		c.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(c, 64<<10)
	var hello [wire.ServerHelloLen]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("wireclient: handshake: %w", err)
	}
	gen, err := wire.ParseServerHello(hello[:])
	if err != nil {
		c.Close()
		return nil, err
	}
	cl.gen.Store(gen)
	cn := &conn{
		c:       c,
		bw:      bufio.NewWriterSize(c, 64<<10),
		rd:      wire.NewReader(br),
		pending: make(chan *call, cl.opts.Inflight),
		dead:    make(chan struct{}),
		onDead:  func() { cl.scheduleRedial(sl) },
		onAlive: func() { sl.backoff.Store(0) },
	}
	go cn.readLoop()
	return cn, nil
}

// scheduleRedial starts the background redial loop for sl unless one is
// already running, reconnect is disabled, or the client is closed.
func (cl *Client) scheduleRedial(sl *slot) {
	if cl.opts.NoReconnect || cl.closed.Load() {
		return
	}
	if !sl.redialing.CompareAndSwap(false, true) {
		return
	}
	cl.closeMu.Lock()
	if cl.closed.Load() {
		cl.closeMu.Unlock()
		sl.redialing.Store(false)
		return
	}
	cl.wg.Add(1)
	cl.closeMu.Unlock()
	go func() {
		defer cl.wg.Done()
		defer sl.redialing.Store(false)
		for !cl.closed.Load() {
			// The slot's backoff persists across redial sessions and gates
			// the dial attempt itself (not just failed dials): a flappy link
			// — TCP accept, then death before a single answered frame —
			// produces a chain of "successful" dials that each enter a new
			// session, and only the sleep here keeps that chain walking
			// toward ReconnectMax. The backoff resets to zero on the first
			// completed exchange (conn.onAlive), so a healthy link that dies
			// redials immediately.
			backoff := time.Duration(sl.backoff.Load())
			if backoff > 0 {
				// Capped exponential backoff ± 50% jitter, so a restarted
				// server is not greeted by synchronized redial storms.
				time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff))))
				if cl.closed.Load() {
					return
				}
			}
			next := backoff * 2
			if next < cl.opts.ReconnectBase {
				next = cl.opts.ReconnectBase
			}
			if next > cl.opts.ReconnectMax {
				next = cl.opts.ReconnectMax
			}
			sl.backoff.Store(int64(next))
			cn, err := cl.connect(sl)
			if err == nil {
				if cl.closed.Load() {
					cn.fail(ErrClosed)
					return
				}
				sl.cur.Store(cn)
				return
			}
		}
	}()
}

// Generation reports the server generation observed at the most recent
// handshake — the natural pin for index-addressed fault edges against a
// dynamic server.
func (cl *Client) Generation() uint64 { return cl.gen.Load() }

// Close tears down every connection, failing any calls still in flight,
// and stops redialing.
func (cl *Client) Close() error {
	cl.closeMu.Lock()
	cl.closed.Store(true)
	cl.closeMu.Unlock()
	for _, sl := range cl.slots {
		if cn := sl.cur.Load(); cn != nil {
			cn.fail(ErrClosed)
		}
	}
	cl.wg.Wait()
	// A redial may have landed between the sweep and wg.Wait's return.
	for _, sl := range cl.slots {
		if cn := sl.cur.Load(); cn != nil {
			cn.fail(ErrClosed)
		}
	}
	return nil
}

// pick returns a live connection, scanning every slot round-robin and
// kicking redials for dead ones it passes over.
func (cl *Client) pick() (*conn, error) {
	if cl.closed.Load() {
		return nil, ErrClosed
	}
	start := int(cl.rr.Add(1))
	var lastErr error
	for i := 0; i < len(cl.slots); i++ {
		sl := cl.slots[(start+i)%len(cl.slots)]
		cn := sl.cur.Load()
		if cn == nil {
			cl.scheduleRedial(sl)
			continue
		}
		if errp := cn.err.Load(); errp != nil {
			lastErr = *errp
			// Unpublish the dead conn so later picks skip it fast; its
			// onDead hook has already scheduled the redial.
			sl.cur.CompareAndSwap(cn, nil)
			cl.scheduleRedial(sl)
			continue
		}
		return cn, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w: last failure: %v", ErrAllDown, lastErr)
	}
	return nil, ErrAllDown
}

// Probe answers one batch: one failure event (fault edge indices, any
// order — canonicalized here, once) against a batch of s–t pairs. It is
// the allocating convenience form of ProbeInto.
func (cl *Client) Probe(faultEdges []int, pairs [][2]int) ([]bool, error) {
	out, _, _, err := cl.ProbeInto(faultEdges, pairs, nil, 0)
	return out, err
}

// ProbeInto is Probe with the answer slice and generation pin under
// caller control: out is reused (grown as needed) and returned, hit
// reports whether the server answered from an already-compiled cache
// entry, gen is the generation the answer is valid for. genPin, when
// nonzero, makes the server reject the probe with wire.CodeConflict if
// its generation differs — the edge-index stability contract of the JSON
// surface, kept identical here.
func (cl *Client) ProbeInto(faultEdges []int, pairs [][2]int, out []bool, genPin uint64) ([]bool, bool, uint64, error) {
	return cl.ProbeIntoBudget(faultEdges, pairs, out, genPin, 0)
}

// ProbeIntoBudget is ProbeInto carrying a deadline budget: the remaining
// end-to-end time the caller is willing to wait, shipped in the frame so
// an overloaded server sheds the request (wire.CodeUnavailable) instead
// of serving it past its usefulness. Zero means no deadline.
func (cl *Client) ProbeIntoBudget(faultEdges []int, pairs [][2]int, out []bool, genPin uint64, budget time.Duration) ([]bool, bool, uint64, error) {
	ca, err := cl.exchange(wire.OpProbe, faultEdges, pairs, out, nil, genPin, budget)
	if err != nil {
		return out, false, 0, err
	}
	out = ca.resp.Connected
	hit, gen := ca.resp.CacheHit, ca.resp.Gen
	err = ca.err
	putCall(ca)
	return out, hit, gen, err
}

// VProbe answers one batch probe under VERTEX faults: one set of failed
// vertex indices against a batch of s–t pairs. approx reports degraded
// mode — the fault set's incident edges exceeded the server's budget and
// the answer came from the fault-tolerant spanner ("connected" is then
// still always sound; "disconnected" may under-report).
func (cl *Client) VProbe(faultVertices []int, pairs [][2]int) ([]bool, bool, error) {
	out, _, approx, _, err := cl.VProbeInto(faultVertices, pairs, nil, 0)
	return out, approx, err
}

// VProbeInto is VProbe with the answer slice and generation pin under
// caller control, mirroring ProbeInto.
func (cl *Client) VProbeInto(faultVertices []int, pairs [][2]int, out []bool, genPin uint64) ([]bool, bool, bool, uint64, error) {
	return cl.VProbeIntoBudget(faultVertices, pairs, out, genPin, 0)
}

// VProbeIntoBudget is VProbeInto with a deadline budget (see
// ProbeIntoBudget).
func (cl *Client) VProbeIntoBudget(faultVertices []int, pairs [][2]int, out []bool, genPin uint64, budget time.Duration) ([]bool, bool, bool, uint64, error) {
	ca, err := cl.exchange(wire.OpVProbe, faultVertices, pairs, out, nil, genPin, budget)
	if err != nil {
		return out, false, false, 0, err
	}
	out = ca.resp.Connected
	hit, approx, gen := ca.resp.CacheHit, ca.resp.Approx, ca.resp.Gen
	err = ca.err
	putCall(ca)
	return out, hit, approx, gen, err
}

// Route computes hop-by-hop route plans avoiding a forbidden edge set:
// one plan per s–t pair, decoded into the caller-owned resp (refilled in
// place, so a resp may be reused across calls). resp.Approx reports
// degraded (spanner-backed) planning; genPin has ProbeInto's semantics
// and is how a caller keeps a plan's edge indices pinned to the
// generation it resolved them against.
func (cl *Client) Route(faultEdges []int, pairs [][2]int, resp *wire.RouteResp, genPin uint64) error {
	return cl.RouteBudget(faultEdges, pairs, resp, genPin, 0)
}

// RouteBudget is Route with a deadline budget (see ProbeIntoBudget).
func (cl *Client) RouteBudget(faultEdges []int, pairs [][2]int, resp *wire.RouteResp, genPin uint64, budget time.Duration) error {
	ca, err := cl.exchange(wire.OpRoute, faultEdges, pairs, nil, resp, genPin, budget)
	if err != nil {
		return err
	}
	err = ca.err
	putCall(ca)
	return err
}

// putCall scrubs caller-owned references and pools the call.
func putCall(ca *call) {
	ca.dst = nil
	ca.routeDst = nil
	ca.resp.Connected = nil
	callPool.Put(ca)
}

// exchange runs one request/response round trip: pick a connection,
// canonicalize the fault indices, enqueue + write the frame, and wait for
// the reader's handoff. On success the returned call holds the decoded
// result (and ca.err the server's verdict); the caller extracts what it
// needs and recycles the call via putCall.
func (cl *Client) exchange(op byte, faults []int, pairs [][2]int, out []bool, routeDst *wire.RouteResp, genPin uint64, budget time.Duration) (*call, error) {
	cn, err := cl.pick()
	if err != nil {
		return nil, err
	}
	var budgetMS uint32
	if budget > 0 {
		budgetMS = uint32(budget / time.Millisecond)
		if budgetMS == 0 {
			budgetMS = 1
		}
	}
	ca := callPool.Get().(*call)
	ca.dst = out
	ca.routeDst = routeDst
	ca.err = nil
	// Canonicalize once, client-side: the wire carries fault indices
	// strictly ascending so the server validates (never sorts) and hashes
	// in the same pass.
	ca.canon = append(ca.canon[:0], faults...)
	sort.Ints(ca.canon)
	w := 0
	for i, e := range ca.canon {
		if i == 0 || e != ca.canon[i-1] {
			ca.canon[w] = e
			w++
		}
	}
	ca.canon = ca.canon[:w]

	cn.wmu.Lock()
	cn.nextID++
	ca.id = cn.nextID
	ca.frame = wire.AppendRequest(ca.frame[:0], op, ca.id, genPin, budgetMS, ca.canon, pairs)
	// Enqueue before the bytes hit the wire so the reader's FIFO matches
	// wire order; blocking here (Inflight reached) holds wmu, which is
	// safe — the reader drains pending without ever taking wmu.
	select {
	case cn.pending <- ca:
	case <-cn.dead:
		cn.wmu.Unlock()
		err := cn.failure()
		putCall(ca)
		return nil, err
	}
	_, werr := cn.bw.Write(ca.frame)
	if werr == nil {
		werr = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if werr != nil {
		cn.fail(werr)
	}

	<-ca.done
	return ca, nil
}

// failure returns the connection's terminal error.
func (cn *conn) failure() error {
	if errp := cn.err.Load(); errp != nil {
		return *errp
	}
	return errors.New("wireclient: connection closed")
}

// fail poisons the connection, wakes everything blocked on it, and fires
// the slot's redial hook.
func (cn *conn) fail(err error) {
	wrapped := fmt.Errorf("wireclient: connection failed: %w", err)
	if cn.err.CompareAndSwap(nil, &wrapped) {
		close(cn.dead)
		_ = cn.c.Close()
		if cn.onDead != nil {
			cn.onDead()
		}
	}
}

// readLoop matches responses to pending calls FIFO. It exits (failing all
// in-flight calls) on any read error — including the server closing the
// connection after a fatal protocol violation.
func (cn *conn) readLoop() {
	for {
		op, payload, err := cn.rd.Next()
		if err != nil {
			cn.fail(err)
			cn.drainPending()
			return
		}
		var ca *call
		select {
		case ca = <-cn.pending:
		default:
			cn.fail(errors.New("unsolicited response frame"))
			cn.drainPending()
			return
		}
		switch op {
		case wire.OpProbeResp, wire.OpVProbeResp:
			if ca.routeDst != nil {
				ca.err = fmt.Errorf("%w: connectivity response for a route request", wire.ErrFrame)
				break
			}
			ca.err = wire.DecodeProbeResp(payload, ca.dst[:0], &ca.resp)
		case wire.OpRouteResp:
			if ca.routeDst == nil {
				ca.err = fmt.Errorf("%w: route response for a connectivity request", wire.ErrFrame)
				break
			}
			ca.err = wire.DecodeRouteResp(payload, ca.routeDst)
			// The FIFO id check below reads resp.ID for every call shape.
			ca.resp.ID = ca.routeDst.ID
		case wire.OpError:
			id, code, msg, derr := wire.DecodeError(payload)
			if derr != nil {
				ca.err = derr
			} else {
				ca.resp.ID = id
				ca.err = &ServerError{Code: code, Msg: msg}
			}
		default:
			ca.err = fmt.Errorf("%w: unexpected opcode 0x%02x", wire.ErrFrame, op)
		}
		if ca.err == nil && ca.resp.ID != ca.id {
			ca.err = fmt.Errorf("%w: response id %d for request %d (pipeline desync)", wire.ErrFrame, ca.resp.ID, ca.id)
		}
		// Capture the verdict before the handoff: once done is signalled the
		// caller may recycle ca through the pool, so ca must not be touched
		// afterwards.
		ferr := ca.err
		ca.done <- struct{}{}
		// Any cleanly framed response — including a server-reported error —
		// proves the link completed a full exchange: reset the slot's redial
		// backoff (the flappy-link guard only trips links that never get
		// this far).
		if ferr == nil || !errors.Is(ferr, wire.ErrFrame) {
			if cn.onAlive != nil && cn.alive.CompareAndSwap(false, true) {
				cn.onAlive()
			}
		}
		if ferr != nil && errors.Is(ferr, wire.ErrFrame) {
			// A framing-level failure means the stream cannot be trusted
			// (pipeline desync, undecodable response) — drop the connection.
			cn.fail(ferr)
			cn.drainPending()
			return
		}
	}
}

// drainPending fails every call still queued after the connection died.
func (cn *conn) drainPending() {
	err := cn.failure()
	for {
		select {
		case ca := <-cn.pending:
			ca.err = err
			ca.done <- struct{}{}
		default:
			return
		}
	}
}
