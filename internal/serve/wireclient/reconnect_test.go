package wireclient

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	ftc "repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// flakyListener wraps a real server listener behind a dialer that can be
// switched off (dial attempts fail) and a kill switch that severs every
// accepted connection — a server crash and restart, in-process.
type flakyListener struct {
	t      *testing.T
	addr   string
	down   atomic.Bool
	dials  atomic.Int64
	refuse atomic.Int64
	conns  []net.Conn
	mu     chan struct{} // 1-token mutex usable from test and dialer
}

func newFlaky(t *testing.T, addr string) *flakyListener {
	fl := &flakyListener{t: t, addr: addr, mu: make(chan struct{}, 1)}
	fl.mu <- struct{}{}
	return fl
}

func (fl *flakyListener) dialer() func() (net.Conn, error) {
	return func() (net.Conn, error) {
		fl.dials.Add(1)
		if fl.down.Load() {
			fl.refuse.Add(1)
			return nil, errors.New("flaky: server down")
		}
		c, err := net.Dial("tcp", fl.addr)
		if err != nil {
			return nil, err
		}
		<-fl.mu
		fl.conns = append(fl.conns, c)
		fl.mu <- struct{}{}
		return c, nil
	}
}

// crash severs every live connection and refuses dials until restore.
func (fl *flakyListener) crash() {
	fl.down.Store(true)
	<-fl.mu
	for _, c := range fl.conns {
		c.Close()
	}
	fl.conns = nil
	fl.mu <- struct{}{}
}

func (fl *flakyListener) restore() { fl.down.Store(false) }

func testServer(t *testing.T) (*serve.Server, string, func()) {
	t.Helper()
	s, err := ftc.NewFromGraph(workload.Petersen(), ftc.WithMaxFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(s, 16)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBin(ln)
	return srv, ln.Addr().String(), func() { ln.Close() }
}

// TestReconnectAfterServerDrop drives probes through a crash/restart and
// asserts: in-flight/immediate calls fail fast (never hang), the client
// redials with backoff while the server is down, and probes succeed again
// with no caller-side dial logic once it returns.
func TestReconnectAfterServerDrop(t *testing.T) {
	_, addr, stop := testServer(t)
	defer stop()
	fl := newFlaky(t, addr)
	cl, err := Dial(addr, Options{
		Conns:         2,
		Dialer:        fl.dialer(),
		ReconnectBase: 2 * time.Millisecond,
		ReconnectMax:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pairs := [][2]int{{0, 5}, {3, 7}}
	if _, err := cl.Probe([]int{1}, pairs); err != nil {
		t.Fatalf("warm probe: %v", err)
	}

	fl.crash()
	// Every probe while down must fail promptly (dead slots, refused
	// redials) rather than hang.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("probes kept succeeding after the crash")
		}
		if _, err := cl.Probe([]int{1}, pairs); err != nil {
			break
		}
	}
	// Let the backoff loop accumulate refused attempts: proves redial is
	// periodic, not a hot spin and not a one-shot.
	base := fl.refuse.Load()
	time.Sleep(60 * time.Millisecond)
	if grew := fl.refuse.Load() - base; grew < 2 {
		t.Fatalf("only %d redial attempts while down; backoff loop not running", grew)
	}

	fl.restore()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Probe([]int{1}, pairs); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after restart")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReconnectBackoffCaps asserts the retry cadence respects the cap: with
// base 1ms and cap 8ms, n refusals take at least ~n·(cap/2 · 1/2) once
// capped, and far fewer dials happen than a hot loop would make.
func TestReconnectBackoffCaps(t *testing.T) {
	_, addr, stop := testServer(t)
	fl := newFlaky(t, addr)
	cl, err := Dial(addr, Options{
		Dialer:        fl.dialer(),
		ReconnectBase: time.Millisecond,
		ReconnectMax:  8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stop()
	fl.crash()
	for {
		if _, err := cl.Probe(nil, [][2]int{{0, 1}}); err != nil {
			break
		}
	}
	time.Sleep(100 * time.Millisecond)
	// With cap 8ms and ±50% jitter the floor per attempt is 4ms, so 100ms
	// admits at most ~25 attempts plus the uncapped warmup; a hot loop
	// would make thousands.
	if n := fl.refuse.Load(); n > 40 {
		t.Fatalf("%d redials in 100ms: backoff cap not respected", n)
	}
}

// TestNoReconnectOption asserts the opt-out: a dead client stays dead.
func TestNoReconnectOption(t *testing.T) {
	_, addr, stop := testServer(t)
	defer stop()
	fl := newFlaky(t, addr)
	cl, err := Dial(addr, Options{Dialer: fl.dialer(), NoReconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fl.crash()
	fl.restore() // server is back, but the client must not redial
	for {
		if _, err := cl.Probe(nil, [][2]int{{0, 1}}); err != nil {
			break
		}
	}
	dials := fl.dials.Load()
	time.Sleep(30 * time.Millisecond)
	if _, err := cl.Probe(nil, [][2]int{{0, 1}}); err == nil {
		t.Fatal("NoReconnect client recovered")
	}
	if fl.dials.Load() != dials {
		t.Fatal("NoReconnect client dialed")
	}
}

// TestBackoffResetAfterRecovery is the flappy-link guard regression test:
// the redial backoff persists per slot across sessions (a link that
// accepts TCP but dies before answering must keep backing off, not hot
// loop), yet a successful reconnect plus ONE completed exchange resets it
// — so a crash after real recovery is redialed at the base cadence, not
// at the previously grown backoff.
func TestBackoffResetAfterRecovery(t *testing.T) {
	_, addr, stop := testServer(t)
	defer stop()
	fl := newFlaky(t, addr)
	cl, err := Dial(addr, Options{
		Dialer:        fl.dialer(),
		ReconnectBase: 25 * time.Millisecond,
		ReconnectMax:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	pairs := [][2]int{{0, 5}}
	if _, err := cl.Probe(nil, pairs); err != nil {
		t.Fatalf("warm probe: %v", err)
	}

	// Grow the backoff well past base: with base 25ms, ~500ms down pushes
	// the stored per-slot backoff to several hundred milliseconds.
	fl.crash()
	for {
		if _, err := cl.Probe(nil, pairs); err != nil {
			break
		}
	}
	time.Sleep(500 * time.Millisecond)

	fl.restore()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Probe(nil, pairs); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after restore")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The completed exchange must have reset the slot's backoff: the next
	// crash gets its first redial attempt at ~base, not at the grown
	// value (which by now would be >= 200ms).
	dialsBefore := fl.dials.Load()
	fl.crash()
	start := time.Now()
	deadline = time.Now().Add(2 * time.Second)
	for fl.dials.Load() == dialsBefore {
		if time.Now().After(deadline) {
			t.Fatal("no redial attempt after second crash")
		}
		time.Sleep(time.Millisecond)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Fatalf("first redial after recovery took %v; backoff was not reset by the completed exchange", d)
	}
}
