// Package serve is the probe-serving layer behind cmd/ftcserve: an HTTP
// handler that answers batched s–t connectivity probes against one scheme,
// with a sharded LRU of compiled core.FaultSets so that repeated probes of
// the same failure event hit the zero-alloc steady-state path instead of
// re-compiling the fault labels per request (the "one failure event, many
// probes" deployment pattern of §7), and so that concurrent probes of
// different events scale with cores instead of funneling through one
// global mutex (shardedCache). The request pipeline canonicalizes and
// hashes each request body exactly once into pooled scratch and answers
// the whole batch per cache stab (probeScratch).
//
// A server can also be generation-aware: opened over a mutable network
// (ftc.Network) it additionally serves POST /update, committing a batch of
// edge insertions/deletions as a new generation and sweeping the fault-set
// cache selectively — only entries containing a relabeled or removed edge
// are evicted; every other entry is rebased to the new generation with its
// warm closure intact (sound because an update whose tree paths avoid a
// fault set's subtree boundaries cannot change that fault set's
// connectivity partition; DESIGN.md §3.10).
//
// The package lives below the commands so the daemon (cmd/ftcserve) and the
// load generator (cmd/ftcbench serve) share one implementation, and so the
// cache's concurrency can be exercised directly under -race.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/serve/genlog"
	"repro/internal/serve/products"
)

// Scheme is the read-side surface the server needs: label access plus the
// graph for resolving client-facing edge endpoints to edge indices.
// *ftc.Scheme, *ftc.LoadedScheme, and ftc.Network snapshots all satisfy it.
type Scheme interface {
	Graph() *graph.Graph
	MaxFaults() int
	Generation() uint64
	VertexLabel(v int) core.VertexLabel
	EdgeLabelByIndex(e int) core.EdgeLabel
}

// Updatable is the construction-side surface of a dynamic network:
// committing one batch of endpoint-pair mutations. *ftc.Network satisfies
// it.
type Updatable interface {
	CommitBatch(add, remove [][2]int) (*core.CommitReport, error)
}

// UpdatableWithDelta is the replication-capable superset: a commit that
// additionally exports the generation delta for log shipping. *ftc.Network
// satisfies it; a server with a generation log attached uses this path so
// every committed generation lands in the log.
type UpdatableWithDelta interface {
	Updatable
	CommitBatchWithDelta(add, remove [][2]int) (*core.CommitReport, *core.GenDelta, error)
}

// Snapshotter is the optional scheme surface behind GET /snapshot: any
// view whose schemes can serialize themselves (ftc.Scheme, ftc.Network
// snapshots, the replica adapter) makes the server a snapshot source for
// replica bootstrap.
type Snapshotter interface {
	Save(w io.Writer) error
}

// ReplicaStatus is the replication telemetry a tailing replica feeds its
// server for /healthz and /metrics (see the Replicator in replica.go).
type ReplicaStatus struct {
	// State is "syncing" (bootstrapping or catching up), "ok" (streaming
	// at the primary's head), or "disconnected" (redialing the primary).
	State string `json:"state"`
	// SourceGen is the newest generation observed from the primary;
	// LocalGen the replica's serving generation. Lag in generations is
	// SourceGen - LocalGen.
	SourceGen uint64 `json:"source_generation"`
	LocalGen  uint64 `json:"local_generation"`
	// BytesReceived / BytesApplied are cumulative log-record payload
	// bytes; their difference is the replication lag in bytes.
	BytesReceived uint64 `json:"bytes_received"`
	BytesApplied  uint64 `json:"bytes_applied"`
	// RecordsApplied counts delta records replayed onto the serving
	// scheme; SnapshotLoads counts full snapshot (re)fetches — 1 after a
	// clean boot, unchanged across a kill/restart that caught up from the
	// log alone.
	RecordsApplied uint64 `json:"records_applied"`
	SnapshotLoads  uint64 `json:"snapshot_loads"`
	// CatchingUp is true from bootstrap (or a snapshot refetch) until the
	// replica first reaches zero generation lag. /healthz reports 503
	// while it is set, so fronts and load balancers never route to a
	// replica that has not yet served the primary's head once.
	CatchingUp bool `json:"catching_up"`
}

// LagGenerations is the replication lag in generations.
func (rs ReplicaStatus) LagGenerations() uint64 {
	if rs.SourceGen < rs.LocalGen {
		return 0
	}
	return rs.SourceGen - rs.LocalGen
}

// Server serves connectivity probes for one scheme — static, or dynamic
// with generation-aware cache invalidation.
type Server struct {
	view  func() Scheme // consistent immutable snapshot per call
	upd   Updatable     // nil for static schemes
	cache *shardedCache
	start time.Time

	// Query products (DESIGN.md §3.15): vcache is the vertex-fault
	// namespace of the fault-set cache — same sharded machinery, keys from
	// wire.VertexFaultKey so an edge set and a vertex set can never
	// collide. It is deliberately NOT swept by updates: vertex canon are
	// vertex indices (stable names, unlike edge indices), and get()'s
	// generation compare replaces stale entries with fresh uncompiled ones
	// on next access, which recompile against current labels. products
	// hands out the per-generation routing tables and degraded-mode
	// spanner.
	vcache   *shardedCache
	products *products.Products

	// updMu serializes commits with their cache sweeps so sweeps apply in
	// generation order.
	updMu sync.Mutex

	probes   atomic.Uint64
	requests atomic.Uint64
	updates  atomic.Uint64

	// Per-product counters: route legs and vertex-fault pairs answered
	// (either mode), and degraded-mode pairs across both products.
	routePlans    atomic.Uint64
	vprobes       atomic.Uint64
	approxAnswers atomic.Uint64

	// Replication surface: the generation log this (primary) server
	// appends to and streams from, the subscriber hub waking OpLogSub
	// connections on append, and the status callback a tailing replica
	// installs. commits counts committed generations from any source —
	// local /update commits and replayed replica records alike.
	genlog        *genlog.Log
	commits       atomic.Uint64
	logAppended   atomic.Uint64
	snapFailures  atomic.Uint64
	logMu         sync.Mutex
	logSubs       map[chan struct{}]struct{}
	binAddr       atomic.Pointer[string]
	replicaStatus atomic.Pointer[func() ReplicaStatus]

	// Binary-protocol surface (binserver.go): frame counters plus the
	// connection registry ShutdownBin drains.
	binRequests atomic.Uint64
	frameErrors atomic.Uint64
	binInflight atomic.Int64
	binConns    atomic.Int64
	binMu       sync.Mutex
	binOpen     map[net.Conn]struct{}
	binDraining bool

	// Overload protection (DESIGN.md §3.16): when admitMax > 0 the probe
	// surfaces admit at most that many concurrent batches across HTTP and
	// binary connections combined; excess requests are shed immediately
	// (HTTP 503 + Retry-After, wire CodeUnavailable) instead of queueing
	// without bound. connQueueMax bounds the bytes a single pipelined
	// binary connection may hold buffered awaiting service.
	admitMax     atomic.Int64
	connQueueMax atomic.Int64
	httpInflight atomic.Int64
	shedHTTP     atomic.Uint64
	shedBin      atomic.Uint64
	shedDeadline atomic.Uint64
}

// New returns a server over the static scheme sch with a sharded LRU
// holding up to cacheSize compiled fault sets (minimum 1). The shard count
// is picked from the capacity (defaultCacheShards); NewWithShards pins it.
func New(sch Scheme, cacheSize int) *Server {
	return NewWithShards(sch, cacheSize, 0)
}

// NewWithShards is New with an explicit cache shard count (rounded down to
// a power of two; 0 picks the default; 1 reproduces the historical
// single-lock LRU, which is what the load benchmark compares against).
func NewWithShards(sch Scheme, cacheSize, shards int) *Server {
	return NewDynamicWithShards(func() Scheme { return sch }, nil, cacheSize, shards)
}

// NewDynamic returns a generation-aware server. view must return the
// current immutable snapshot (e.g. ftc.Network.Snapshot); upd, when
// non-nil, enables POST /update and is used to commit batches. Probes
// racing an update are retried once against the fresh generation, so
// clients see either the old or the new topology, never an error from the
// race itself.
func NewDynamic(view func() Scheme, upd Updatable, cacheSize int) *Server {
	return NewDynamicWithShards(view, upd, cacheSize, 0)
}

// NewDynamicWithShards is NewDynamic with an explicit cache shard count
// (see NewWithShards).
func NewDynamicWithShards(view func() Scheme, upd Updatable, cacheSize, shards int) *Server {
	return &Server{
		view:     view,
		upd:      upd,
		cache:    newShardedCache(cacheSize, shards),
		vcache:   newShardedCache(cacheSize, shards),
		products: products.New(),
		start:    time.Now(),
	}
}

// AttachGenLog makes the server a replication primary: every /update
// commit is exported as a generation delta, appended to l, and pushed to
// OpLogSub subscribers on the binary listener. The server's Updatable must
// implement UpdatableWithDelta (ftc.Network does); attach before serving.
func (s *Server) AttachGenLog(l *genlog.Log) error {
	if s.upd == nil {
		return errors.New("serve: generation log requires a dynamic server")
	}
	if _, ok := s.upd.(UpdatableWithDelta); !ok {
		return errors.New("serve: updatable does not export generation deltas")
	}
	s.genlog = l
	return nil
}

// GenLog returns the attached generation log (nil on non-primaries).
func (s *Server) GenLog() *genlog.Log { return s.genlog }

// MaybeCompactGenLog runs one retention check against the attached
// generation log, compacting if the policy has tripped. The commit path
// runs this automatically after every /update; call it directly at
// startup, when a pre-existing log may already exceed the policy.
func (s *Server) MaybeCompactGenLog() {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	s.maybeCompactGenLogLocked()
}

// maybeCompactGenLogLocked is MaybeCompactGenLog under updMu: with
// commits serialized, s.view() is the just-committed snapshot, so the
// checkpoint generation equals the log's head and every retained record
// is at or below it. Compaction failures are logged, not fatal — the
// server keeps serving and retention simply re-trips on the next commit.
func (s *Server) maybeCompactGenLogLocked() {
	if s.genlog == nil {
		return
	}
	through, ok := s.genlog.CompactTarget()
	if !ok {
		return
	}
	sch := s.view()
	sv, ok := sch.(Snapshotter)
	if !ok {
		return
	}
	res, err := s.genlog.Compact(through, sch.Generation(), sv.Save)
	if err != nil {
		log.Printf("serve: genlog compaction through generation %d failed: %v", through, err)
		return
	}
	if res.Dropped > 0 {
		log.Printf("serve: genlog compacted through generation %d: dropped %d records, retained %d, reclaimed %d bytes, checkpoint at generation %d",
			through, res.Dropped, res.Retained, res.BytesReclaimed, res.CheckpointGen)
	}
}

// SetAdmission installs the overload-protection bounds: maxInflight caps
// concurrently admitted probe batches across the HTTP and binary surfaces
// combined (0 disables the gate), and maxConnQueue caps the bytes one
// pipelined binary connection may hold buffered awaiting service (0
// disables; frames beyond the cap are shed with CodeUnavailable, the
// connection stays up). Callable at any time, including while serving.
func (s *Server) SetAdmission(maxInflight, maxConnQueue int) {
	s.admitMax.Store(int64(maxInflight))
	s.connQueueMax.Store(int64(maxConnQueue))
}

// admitHTTP reserves an admission slot for one HTTP probe batch, shedding
// with 503 + Retry-After when the server is over its in-flight cap. The
// caller must releaseHTTP after answering iff admitHTTP returned true.
func (s *Server) admitHTTP(w http.ResponseWriter) bool {
	inflight := s.httpInflight.Add(1)
	if max := s.admitMax.Load(); max > 0 && inflight+s.binInflight.Load() > max {
		s.httpInflight.Add(-1)
		s.shedHTTP.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "overloaded: probe shed, retry later"})
		return false
	}
	return true
}

func (s *Server) releaseHTTP() { s.httpInflight.Add(-1) }

// SetBinAddr advertises the binary listener's address in /healthz, so a
// replica pointed at the HTTP address alone can discover where to tail the
// log, and a front can discover where to probe.
func (s *Server) SetBinAddr(addr string) { s.binAddr.Store(&addr) }

// SetReplicaStatusFn installs the telemetry callback a tailing replica
// feeds /healthz and /metrics from.
func (s *Server) SetReplicaStatusFn(fn func() ReplicaStatus) { s.replicaStatus.Store(&fn) }

// subscribeLog registers an OpLogSub connection for append wakeups. The
// channel has capacity 1 and is signalled with a non-blocking send, so an
// arbitrarily slow subscriber coalesces notifications instead of blocking
// the update path.
func (s *Server) subscribeLog() (ch chan struct{}, cancel func()) {
	ch = make(chan struct{}, 1)
	s.logMu.Lock()
	if s.logSubs == nil {
		s.logSubs = make(map[chan struct{}]struct{})
	}
	s.logSubs[ch] = struct{}{}
	s.logMu.Unlock()
	return ch, func() {
		s.logMu.Lock()
		delete(s.logSubs, ch)
		s.logMu.Unlock()
	}
}

// notifyLogSubs wakes every OpLogSub connection after an append.
func (s *Server) notifyLogSubs() {
	s.logMu.Lock()
	for ch := range s.logSubs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	s.logMu.Unlock()
}

// ApplyReplicatedCommit runs the selective cache sweep for a commit report
// replayed from the generation log — the replica-side twin of the /update
// path's sweep, under the same lock so sweeps apply in generation order.
func (s *Server) ApplyReplicatedCommit(rep *core.CommitReport) (evicted, rebased int) {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	s.commits.Add(1)
	return s.cache.applyUpdate(rep)
}

// FaultSet resolves the given fault edge indices against the current
// snapshot to a compiled FaultSet, serving it from the cache when the same
// failure event was compiled before at the same generation. The cache key
// is a hash of the canonical (sorted, deduplicated) fault edge indices —
// for a fixed generation these determine the fault labels one-to-one, so
// any client-side ordering or duplication of one failure event maps to one
// entry, and a cache hit touches no labels at all. The hit flag reports
// whether the cache already held the compiled set.
func (s *Server) FaultSet(faultEdges []int) (*core.FaultSet, bool, error) {
	return s.faultSetFor(s.view(), faultEdges)
}

// faultSetFor is FaultSet against one explicit snapshot, so a probe
// resolves fault labels and vertex labels from the same generation.
func (s *Server) faultSetFor(sch Scheme, faultEdges []int) (*core.FaultSet, bool, error) {
	return s.faultSetCanon(sch, canonicalize(append([]int(nil), faultEdges...)))
}

// canonicalize sorts and deduplicates a fault-edge slice in place — the
// canonical form every cache key, collision check, and compile works from.
func canonicalize(edges []int) []int {
	sort.Ints(edges)
	return dedupeSorted(edges)
}

// faultSetCanon resolves an already-canonicalized fault-edge slice: the
// request pipeline canonicalizes (and hashes) each request body exactly
// once into pooled scratch, then answers the whole batch off this one
// cache stab. canon is not retained — the cache copies it on insert — so
// callers may pool it.
func (s *Server) faultSetCanon(sch Scheme, canon []int) (*core.FaultSet, bool, error) {
	return s.faultSetCanonKey(sch, canon, cacheKey(canon))
}

// faultSetCanonKey is faultSetCanon with the cache key precomputed — the
// binary protocol hashes the canonical fault edges while decoding the
// frame (wire.DecodeProbe), so the serving path never hashes twice.
func (s *Server) faultSetCanonKey(sch Scheme, canon []int, key uint64) (*core.FaultSet, bool, error) {
	m := sch.Graph().M()
	// Validate before touching the cache: invalid events must not insert
	// permanently-erroring entries that evict compiled valid fault sets.
	for _, e := range canon {
		if e < 0 || e >= m {
			return nil, false, fmt.Errorf("fault edge index %d out of range (m=%d)", e, m)
		}
	}
	// Distinct edges are distinct faults in every scheme kind, so the
	// budget check is exact here and CompileFaults would reject too.
	if budget := sch.MaxFaults(); len(canon) > budget {
		return nil, false, fmt.Errorf("%w: %d faults, budget %d", core.ErrTooManyFaults, len(canon), budget)
	}
	compile := func() (*core.FaultSet, error) {
		labels := make([]core.EdgeLabel, len(canon))
		for i, e := range canon {
			labels[i] = sch.EdgeLabelByIndex(e)
		}
		return core.CompileFaults(labels)
	}
	ent, hit := s.cache.get(key, canon, sch.Generation())
	if ent == nil {
		// Key collision with a different fault set: serve correctness over
		// caching and compile a one-off set.
		fs, err := compile()
		return fs, false, err
	}
	ent.once.Do(func() {
		ent.fs, ent.err = compile()
		ent.compiled.Store(true)
	})
	return ent.fs, hit, ent.err
}

func dedupeSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// ConnectedRequest is the wire form of a POST /connected batch probe: one
// failure event (edges by [u,v] endpoint pair and/or by edge index), many
// s–t vertex pairs.
//
// On a dynamic server, fault edge *indices* are generation-scoped: an
// /update that removes an edge shifts every higher index down, so an index
// cached by a client denotes a different edge afterwards. Clients holding
// indices across updates should pin the generation they resolved them
// against via Generation — a mismatched pin is rejected with 409 instead
// of silently probing the wrong edges. The [u,v] endpoint form needs no
// pin; endpoints are stable names.
type ConnectedRequest struct {
	Faults     [][2]int `json:"faults,omitempty"`
	FaultEdges []int    `json:"fault_edges,omitempty"`
	Pairs      [][2]int `json:"pairs"`
	Generation uint64   `json:"generation,omitempty"`
}

// ConnectedResponse answers a batch probe.
type ConnectedResponse struct {
	Connected  []bool `json:"connected"`
	Faults     int    `json:"faults"`
	CacheHit   bool   `json:"cache_hit"`
	Generation uint64 `json:"generation"`
}

// UpdateRequest is the wire form of a POST /update batch: edges to insert
// and delete, by [u,v] endpoint pair, committed as one generation.
type UpdateRequest struct {
	Add    [][2]int `json:"add,omitempty"`
	Remove [][2]int `json:"remove,omitempty"`
}

// UpdateResponse reports a committed update batch.
type UpdateResponse struct {
	Generation   uint64 `json:"generation"`
	Incremental  bool   `json:"incremental"`
	Reason       string `json:"reason,omitempty"`
	Relabeled    int    `json:"relabeled"`
	Removed      int    `json:"removed"`
	CacheEvicted int    `json:"cache_evicted"`
	CacheRebased int    `json:"cache_rebased"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a request body.
const maxRequestBytes = 1 << 20

// Handler returns the HTTP surface of the server:
//
//	POST /connected  — batch probe (ConnectedRequest → ConnectedResponse)
//	POST /route      — forbidden-set route plans (RouteRequest → RouteResponse)
//	POST /vconnected — batch probe under vertex faults (VConnectedRequest → VConnectedResponse)
//	POST /update     — commit a topology batch (dynamic servers only)
//	GET  /healthz    — liveness plus scheme shape
//	GET  /stats      — serving and cache counters
//	GET  /metrics    — the same counters in Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /connected", s.handleConnected)
	mux.HandleFunc("POST /route", s.handleRoute)
	mux.HandleFunc("POST /vconnected", s.handleVConnected)
	if s.upd != nil {
		mux.HandleFunc("POST /update", s.handleUpdate)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	return mux
}

// handleSnapshot streams a binary snapshot — the replica bootstrap path.
// When the generation log carries a compaction checkpoint, the checkpoint
// is served (with an exact Content-Length, since its size is known): its
// generation is covered by the log's retained window — the two are updated
// atomically under the log's lock — so a replica bootstrapping from it can
// always tail; if a later compaction outruns a slow bootstrap the tail gets
// CodeGone and the replica refetches, converging on a newer checkpoint.
// Otherwise the current generation's live snapshot is streamed from the
// immutable view, consistent under concurrent commits.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.genlog != nil {
		if r, info, err := s.genlog.OpenCheckpoint(); err == nil {
			defer r.Close()
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", fmt.Sprint(info.Payload))
			w.Header().Set("X-Ftc-Generation", fmt.Sprint(info.Gen))
			if _, err := io.Copy(faultinject.WrapWriter("snapshot.stream", w), r); err != nil {
				s.abortSnapshotStream(w, info.Gen, err)
			}
			return
		} else if !errors.Is(err, genlog.ErrNoCheckpoint) {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "checkpoint open failed: " + err.Error()})
			return
		}
	}
	sch := s.view()
	sv, ok := sch.(Snapshotter)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "scheme does not support snapshots"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Ftc-Generation", fmt.Sprint(sch.Generation()))
	if err := sv.Save(faultinject.WrapWriter("snapshot.stream", w)); err != nil {
		s.abortSnapshotStream(w, sch.Generation(), err)
	}
}

// abortSnapshotStream cuts a /snapshot response whose body failed
// mid-stream. The 200 and headers are already gone, so the only correct
// move is to make the truncation visible to the client: hijack and close
// the connection when possible, otherwise panic with http.ErrAbortHandler
// so net/http resets the stream (the HTTP/2 path, where ResponseWriter is
// not a Hijacker). Either way the replica sees a short/invalid body —
// which it rejects at decode or token verification — instead of silently
// applying a truncated snapshot.
func (s *Server) abortSnapshotStream(w http.ResponseWriter, gen uint64, err error) {
	s.snapFailures.Add(1)
	log.Printf("serve: snapshot stream at generation %d failed mid-body: %v", gen, err)
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// probeScratch is the pooled per-request state of the /connected pipeline:
// the decoded request (whose slices the JSON decoder refills in place), the
// canonical fault slice reused across the batch, the answer slice, and the
// response-encoding buffer. Pooling these drops the steady-state probe path
// from one allocation per field per request to near-zero — the remaining
// allocations are the JSON decoder itself and net/http's own bookkeeping
// (see BenchmarkHandleConnected).
type probeScratch struct {
	req   ConnectedRequest
	resp  ConnectedResponse
	canon []int
	out   []bool
	enc   bytes.Buffer // encoded response bytes
}

var probeScratchPool = sync.Pool{New: func() any {
	return &probeScratch{out: make([]bool, 0, 16)}
}}

func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.admitHTTP(w) {
		return
	}
	defer s.releaseHTTP()
	// Failpoint "serve.probe": slow (or fail) the admitted probe while it
	// holds its admission slot — how overload tests occupy the gate.
	if err := faultinject.Fire("serve.probe"); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	sc := probeScratchPool.Get().(*probeScratch)
	defer probeScratchPool.Put(sc)
	sc.req.Faults = sc.req.Faults[:0]
	sc.req.FaultEdges = sc.req.FaultEdges[:0]
	sc.req.Pairs = sc.req.Pairs[:0]
	sc.req.Generation = 0
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc.req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	// A probe that races a commit can observe labels from two generations
	// (the cache entry from one, vertex labels from the next) and fails
	// fast with ErrStaleLabel; one retry against a fresh snapshot settles
	// it on the new generation.
	for attempt := 0; ; attempt++ {
		status, err := s.probeOnce(sc)
		if err != nil && errors.Is(err, core.ErrStaleLabel) && attempt == 0 {
			continue
		}
		if err != nil {
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		s.probes.Add(uint64(len(sc.req.Pairs)))
		writeJSONBuf(w, http.StatusOK, &sc.resp, &sc.enc)
		return
	}
}

// probeOnce answers one batch probe against one consistent snapshot into
// sc.resp: the request body is canonicalized and hashed exactly once, the
// cache is stabbed exactly once, and the whole batch of pairs is answered
// against that one compiled FaultSet over the pooled answer slice.
func (s *Server) probeOnce(sc *probeScratch) (int, error) {
	req := &sc.req
	sch := s.view()
	g := sch.Graph()
	n := g.N()
	if req.Generation != 0 && req.Generation != sch.Generation() {
		return http.StatusConflict, fmt.Errorf("request pinned to generation %d, server at %d (edge indices may have shifted)",
			req.Generation, sch.Generation())
	}
	sc.canon = append(sc.canon[:0], req.FaultEdges...)
	for _, uv := range req.Faults {
		e := -1
		if uv[0] >= 0 && uv[0] < n && uv[1] >= 0 && uv[1] < n {
			e = g.EdgeIndex(uv[0], uv[1])
		}
		if e < 0 {
			return http.StatusBadRequest, fmt.Errorf("no edge (%d,%d)", uv[0], uv[1])
		}
		sc.canon = append(sc.canon, e)
	}
	for _, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return http.StatusBadRequest, fmt.Errorf("vertex pair (%d,%d) out of range (n=%d)", p[0], p[1], n)
		}
	}
	sc.canon = canonicalize(sc.canon)
	fs, hit, err := s.faultSetCanon(sch, sc.canon)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, core.ErrDecode) {
			// AGM whp decode failure: a server-side limitation of the
			// scheme, not a client error.
			status = http.StatusInternalServerError
		}
		if errors.Is(err, core.ErrStaleLabel) {
			status = http.StatusConflict
		}
		return status, err
	}
	sc.out = sc.out[:0]
	for i, p := range req.Pairs {
		ok, err := fs.Connected(sch.VertexLabel(p[0]), sch.VertexLabel(p[1]))
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, core.ErrStaleLabel) {
				status = http.StatusConflict
			}
			return status, fmt.Errorf("pair %d: %w", i, err)
		}
		sc.out = append(sc.out, ok)
	}
	sc.resp = ConnectedResponse{
		Connected:  sc.out,
		Faults:     fs.Faults(),
		CacheHit:   hit,
		Generation: sch.Generation(),
	}
	return http.StatusOK, nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	// Serialize commit + cache sweep so sweeps apply in generation order;
	// probes keep flowing against whichever snapshot they grabbed. The
	// deferred unlock keeps the update path alive even if a commit panics
	// (net/http recovers handler panics, and a stuck updMu would deadlock
	// every later /update).
	rep, evicted, rebased, err := func() (*core.CommitReport, int, int, error) {
		s.updMu.Lock()
		defer s.updMu.Unlock()
		var rep *core.CommitReport
		var delta *core.GenDelta
		var err error
		if s.genlog != nil {
			rep, delta, err = s.upd.(UpdatableWithDelta).CommitBatchWithDelta(req.Add, req.Remove)
		} else {
			rep, err = s.upd.CommitBatch(req.Add, req.Remove)
		}
		if err != nil {
			return nil, 0, 0, err
		}
		if delta != nil {
			// Append before the sweep so a subscriber woken by the notify
			// can never observe a generation the log does not yet carry.
			if _, err := s.genlog.Append(delta); err != nil {
				// The commit is already published; an unloggable commit is
				// an operator-level failure (disk). Report it loudly — the
				// local server keeps serving the new generation either way.
				return nil, 0, 0, fmt.Errorf("generation %d committed but genlog append failed: %w", rep.Gen, err)
			}
			s.logAppended.Add(1)
		}
		evicted, rebased := s.cache.applyUpdate(rep)
		// Retention check after the commit is fully applied: updMu
		// guarantees s.view() here is the just-committed generation, so
		// the checkpoint is taken at the log's head.
		s.maybeCompactGenLogLocked()
		return rep, evicted, rebased, nil
	}()
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	if s.genlog != nil {
		s.notifyLogSubs()
	}
	s.updates.Add(1)
	s.commits.Add(1)
	writeJSON(w, http.StatusOK, UpdateResponse{
		Generation:   rep.Gen,
		Incremental:  rep.Incremental,
		Reason:       rep.Reason,
		Relabeled:    len(rep.Relabeled),
		Removed:      len(rep.Removed),
		CacheEvicted: evicted,
		CacheRebased: rebased,
	})
}

// Healthz is the GET /healthz payload. Role is "static", "primary" (a
// generation log is attached), or "replica" (tailing one); Replication is
// present only on replicas and carries the catch-up state — a replica
// reports status "syncing" until it is streaming at the primary's head, so
// fleet tooling can gate traffic on status == "ok".
type Healthz struct {
	Status      string         `json:"status"`
	N           int            `json:"n"`
	M           int            `json:"m"`
	MaxFaults   int            `json:"max_faults"`
	Generation  uint64         `json:"generation"`
	Dynamic     bool           `json:"dynamic"`
	Role        string         `json:"role"`
	BinAddr     string         `json:"bin_addr,omitempty"`
	LogFirstGen uint64         `json:"log_first_generation,omitempty"`
	LogLastGen  uint64         `json:"log_last_generation,omitempty"`
	LogRecords  int            `json:"log_records,omitempty"`
	LogCkptGen  uint64         `json:"log_checkpoint_generation,omitempty"`
	Replication *ReplicaStatus `json:"replication,omitempty"`
	// CatchingUp mirrors Replication.CatchingUp at the top level; when
	// set the handler answers 503 so "healthy" == "HTTP 200" for fronts.
	CatchingUp bool `json:"catching_up,omitempty"`
	// ReplicaLagGenerations surfaces the replication lag where fronts
	// already look, so lag-weighted routing needs no second request.
	ReplicaLagGenerations uint64 `json:"replica_lag_generations,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	sch := s.view()
	h := Healthz{
		Status:     "ok",
		N:          sch.Graph().N(),
		M:          sch.Graph().M(),
		MaxFaults:  sch.MaxFaults(),
		Generation: sch.Generation(),
		Dynamic:    s.upd != nil,
		Role:       "static",
	}
	if addr := s.binAddr.Load(); addr != nil {
		h.BinAddr = *addr
	}
	if s.genlog != nil {
		h.Role = "primary"
		lst := s.genlog.Stats()
		h.LogFirstGen, h.LogLastGen = lst.FirstGen, lst.LastGen
		h.LogRecords = lst.Records
		h.LogCkptGen = lst.CheckpointGen
	}
	status := http.StatusOK
	if fnp := s.replicaStatus.Load(); fnp != nil {
		h.Role = "replica"
		rs := (*fnp)()
		h.Replication = &rs
		h.ReplicaLagGenerations = rs.LagGenerations()
		if rs.State != "ok" {
			h.Status = "syncing"
		}
		// A replica that has never reached the primary's head is not
		// servable: report 503 until the first full catch-up, so a
		// front's health probe (or a load balancer's) excludes it
		// without parsing the body.
		if rs.CatchingUp {
			h.CatchingUp = true
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, h)
}

// Stats is the GET /stats payload. CacheShards breaks the aggregate cache
// counters down per shard — occupancy skew across shards is the first
// thing to look at when hit rates drop after an /update storm.
type Stats struct {
	Requests      uint64       `json:"requests"`
	BinRequests   uint64       `json:"bin_requests"`
	BinConns      int64        `json:"bin_connections"`
	BinInflight   int64        `json:"bin_inflight_batches"`
	FrameErrors   uint64       `json:"frame_decode_errors"`
	Probes        uint64       `json:"probes"`
	Updates       uint64       `json:"updates"`
	Commits       uint64       `json:"update_commits"`
	LogAppended   uint64       `json:"genlog_records_appended"`
	LogRecords    int          `json:"genlog_records,omitempty"`
	LogFileBytes  int64        `json:"genlog_file_bytes,omitempty"`
	LogCompact    uint64       `json:"genlog_compactions,omitempty"`
	LogReclaimed  uint64       `json:"genlog_bytes_reclaimed,omitempty"`
	LogCkptGen    uint64       `json:"genlog_checkpoint_generation,omitempty"`
	SnapFailures  uint64       `json:"snapshot_stream_failures"`
	ShedHTTP      uint64       `json:"requests_shed_http"`
	ShedBin       uint64       `json:"requests_shed_bin"`
	ShedDeadline  uint64       `json:"requests_shed_deadline"`
	Generation    uint64       `json:"generation"`
	CacheHits     uint64       `json:"cache_hits"`
	CacheMisses   uint64       `json:"cache_misses"`
	CacheEvicted  uint64       `json:"cache_evicted_by_update"`
	CacheRebased  uint64       `json:"cache_rebased_by_update"`
	CacheCapEvict uint64       `json:"cache_evictions"`
	CacheSize     int          `json:"cache_size"`
	CacheCapacity int          `json:"cache_capacity"`
	CacheShards   []ShardStats `json:"cache_shards"`

	// Query-product breakdown (§3.15): route legs and vertex-fault pairs
	// answered, degraded-mode pairs, and the vertex cache-key namespace's
	// own counters (the edge namespace is the Cache* block above).
	RoutePlans     uint64       `json:"route_plans"`
	VProbes        uint64       `json:"vprobes"`
	ApproxAnswers  uint64       `json:"approx_answers"`
	VCacheHits     uint64       `json:"vcache_hits"`
	VCacheMisses   uint64       `json:"vcache_misses"`
	VCacheCapEvict uint64       `json:"vcache_evictions"`
	VCacheSize     int          `json:"vcache_size"`
	VCacheCapacity int          `json:"vcache_capacity"`
	VCacheShards   []ShardStats `json:"vcache_shards"`

	UptimeSeconds float64 `json:"uptime_seconds"`

	// Replica is non-nil when this server tails a primary.
	Replica *ReplicaStatus `json:"replica,omitempty"`
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	hits, misses, evicted, rebased, capEvicted, size, capacity, per := s.cache.stats()
	vhits, vmisses, _, _, vcapEvicted, vsize, vcapacity, vper := s.vcache.stats()
	st := Stats{
		Requests:      s.requests.Load(),
		BinRequests:   s.binRequests.Load(),
		BinConns:      s.binConns.Load(),
		BinInflight:   s.binInflight.Load(),
		FrameErrors:   s.frameErrors.Load(),
		Probes:        s.probes.Load(),
		Updates:       s.updates.Load(),
		Commits:       s.commits.Load(),
		LogAppended:   s.logAppended.Load(),
		SnapFailures:  s.snapFailures.Load(),
		ShedHTTP:      s.shedHTTP.Load(),
		ShedBin:       s.shedBin.Load(),
		ShedDeadline:  s.shedDeadline.Load(),
		Generation:    s.view().Generation(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheEvicted:  evicted,
		CacheRebased:  rebased,
		CacheCapEvict: capEvicted,
		CacheSize:     size,
		CacheCapacity: capacity,
		CacheShards:   per,

		RoutePlans:     s.routePlans.Load(),
		VProbes:        s.vprobes.Load(),
		ApproxAnswers:  s.approxAnswers.Load(),
		VCacheHits:     vhits,
		VCacheMisses:   vmisses,
		VCacheCapEvict: vcapEvicted,
		VCacheSize:     vsize,
		VCacheCapacity: vcapacity,
		VCacheShards:   vper,

		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.genlog != nil {
		lst := s.genlog.Stats()
		st.LogRecords = lst.Records
		st.LogFileBytes = lst.FileBytes
		st.LogCompact = lst.Compactions
		st.LogReclaimed = lst.BytesReclaimed
		st.LogCkptGen = lst.CheckpointGen
	}
	if fnp := s.replicaStatus.Load(); fnp != nil {
		rs := (*fnp)()
		st.Replica = &rs
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONBuf is writeJSON over a pooled buffer: the hot /connected path
// encodes into scratch and hands the kernel one contiguous write.
func writeJSONBuf(w http.ResponseWriter, status int, v any, buf *bytes.Buffer) {
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}
