// Package serve is the probe-serving layer behind cmd/ftcserve: an HTTP
// handler that answers batched s–t connectivity probes against one loaded
// scheme, with an LRU of compiled core.FaultSets so that repeated probes of
// the same failure event hit the zero-alloc steady-state path instead of
// re-compiling the fault labels per request (the "one failure event, many
// probes" deployment pattern of §7).
//
// The package lives below the commands so the daemon (cmd/ftcserve) and the
// load generator (cmd/ftcbench serve) share one implementation, and so the
// cache's concurrency can be exercised directly under -race.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Scheme is the read-side surface the server needs: label access plus the
// graph for resolving client-facing edge endpoints to edge indices. Both
// *ftc.Scheme and *ftc.LoadedScheme satisfy it.
type Scheme interface {
	Graph() *graph.Graph
	MaxFaults() int
	VertexLabel(v int) core.VertexLabel
	EdgeLabelByIndex(e int) core.EdgeLabel
}

// Server serves connectivity probes for one scheme.
type Server struct {
	sch   Scheme
	n, m  int
	cache *lruCache
	start time.Time

	probes   atomic.Uint64
	requests atomic.Uint64
}

// New returns a server over sch with an LRU holding up to cacheSize
// compiled fault sets (minimum 1).
func New(sch Scheme, cacheSize int) *Server {
	return &Server{
		sch:   sch,
		n:     sch.Graph().N(),
		m:     sch.Graph().M(),
		cache: newLRUCache(cacheSize),
		start: time.Now(),
	}
}

// FaultSet resolves the given fault edge indices to a compiled FaultSet,
// serving it from the LRU when the same failure event was compiled before.
// The cache key is a hash of the canonical (sorted, deduplicated) fault
// edge indices — for a fixed scheme these determine the fault labels
// one-to-one, so any client-side ordering or duplication of one failure
// event maps to one entry, and a cache hit touches no labels at all. The
// hit flag reports whether the cache already held the compiled set.
func (s *Server) FaultSet(faultEdges []int) (*core.FaultSet, bool, error) {
	canon := append([]int(nil), faultEdges...)
	sort.Ints(canon)
	canon = dedupeSorted(canon)
	// Validate before touching the cache: invalid events must not insert
	// permanently-erroring entries that evict compiled valid fault sets.
	for _, e := range canon {
		if e < 0 || e >= s.m {
			return nil, false, fmt.Errorf("fault edge index %d out of range (m=%d)", e, s.m)
		}
	}
	// Distinct edges are distinct faults in every scheme kind, so the
	// budget check is exact here and CompileFaults would reject too.
	if budget := s.sch.MaxFaults(); len(canon) > budget {
		return nil, false, fmt.Errorf("%w: %d faults, budget %d", core.ErrTooManyFaults, len(canon), budget)
	}
	var buf [8]byte
	h := fnv.New64a()
	for _, e := range canon {
		binary.LittleEndian.PutUint64(buf[:], uint64(e))
		h.Write(buf[:])
	}
	compile := func() (*core.FaultSet, error) {
		labels := make([]core.EdgeLabel, len(canon))
		for i, e := range canon {
			labels[i] = s.sch.EdgeLabelByIndex(e)
		}
		return core.CompileFaults(labels)
	}
	ent, hit := s.cache.get(h.Sum64(), canon)
	if ent == nil {
		// Key collision with a different fault set: serve correctness over
		// caching and compile a one-off set.
		fs, err := compile()
		return fs, false, err
	}
	ent.once.Do(func() {
		ent.fs, ent.err = compile()
	})
	return ent.fs, hit, ent.err
}

func dedupeSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// ConnectedRequest is the wire form of a POST /connected batch probe: one
// failure event (edges by [u,v] endpoint pair and/or by edge index), many
// s–t vertex pairs.
type ConnectedRequest struct {
	Faults     [][2]int `json:"faults,omitempty"`
	FaultEdges []int    `json:"fault_edges,omitempty"`
	Pairs      [][2]int `json:"pairs"`
}

// ConnectedResponse answers a batch probe.
type ConnectedResponse struct {
	Connected []bool `json:"connected"`
	Faults    int    `json:"faults"`
	CacheHit  bool   `json:"cache_hit"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a /connected request body.
const maxRequestBytes = 1 << 20

// Handler returns the HTTP surface of the server:
//
//	POST /connected — batch probe (ConnectedRequest → ConnectedResponse)
//	GET  /healthz   — liveness plus scheme shape
//	GET  /stats     — serving and cache counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /connected", s.handleConnected)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req ConnectedRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	edges := append([]int(nil), req.FaultEdges...)
	g := s.sch.Graph()
	for _, uv := range req.Faults {
		e := -1
		if uv[0] >= 0 && uv[0] < s.n && uv[1] >= 0 && uv[1] < s.n {
			e = g.EdgeIndex(uv[0], uv[1])
		}
		if e < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("no edge (%d,%d)", uv[0], uv[1])})
			return
		}
		edges = append(edges, e)
	}
	for _, p := range req.Pairs {
		if p[0] < 0 || p[0] >= s.n || p[1] < 0 || p[1] >= s.n {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("vertex pair (%d,%d) out of range (n=%d)", p[0], p[1], s.n)})
			return
		}
	}
	fs, hit, err := s.FaultSet(edges)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, core.ErrDecode) {
			// AGM whp decode failure: a server-side limitation of the
			// scheme, not a client error.
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	out := make([]bool, len(req.Pairs))
	for i, p := range req.Pairs {
		ok, err := fs.Connected(s.sch.VertexLabel(p[0]), s.sch.VertexLabel(p[1]))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("pair %d: %v", i, err)})
			return
		}
		out[i] = ok
	}
	s.probes.Add(uint64(len(req.Pairs)))
	writeJSON(w, http.StatusOK, ConnectedResponse{Connected: out, Faults: fs.Faults(), CacheHit: hit})
}

// Healthz is the GET /healthz payload.
type Healthz struct {
	Status    string `json:"status"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	MaxFaults int    `json:"max_faults"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Healthz{Status: "ok", N: s.n, M: s.m, MaxFaults: s.sch.MaxFaults()})
}

// Stats is the GET /stats payload.
type Stats struct {
	Requests      uint64  `json:"requests"`
	Probes        uint64  `json:"probes"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheSize     int     `json:"cache_size"`
	CacheCapacity int     `json:"cache_capacity"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	hits, misses, size, capacity := s.cache.stats()
	return Stats{
		Requests:      s.requests.Load(),
		Probes:        s.probes.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheSize:     size,
		CacheCapacity: capacity,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
