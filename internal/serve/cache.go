package serve

import (
	"math/bits"
	"runtime"

	"repro/internal/core"
)

// shardedCache spreads the compiled fault-set cache over a power-of-two
// number of independent lruCache shards so that the read path scales with
// cores: a probe locks only the shard its canonical fault-label hash maps
// to, and probes of different failure events proceed in parallel instead of
// funneling through one global mutex. Each shard keeps the full LRU,
// generation, collision, and singleflight-compile semantics of lruCache
// (the compile itself always ran outside the lock; sharding narrows what
// the lock protects to one shard's bookkeeping).
//
// The update sweep is sharded too: applyUpdate walks the shards one at a
// time, so a /update commit only ever stalls probes of one shard while the
// other shards keep serving. Per-entry soundness is unchanged — the sweep
// and the probe path reason about each entry's generation independently,
// so the order in which shards are swept cannot be observed beyond the
// staleness the unsharded cache already tolerated (a probe that races the
// sweep finds either the old entry, which it replaces, or the rebased one).
//
// The requested capacity is divided evenly across shards (shards never
// exceed the capacity, so every shard holds at least one entry and the
// total never exceeds the request). Hit/miss/evict/rebase counters live in
// the shards as atomics; stats aggregates them without stopping the world.
type shardedCache struct {
	shards []*lruCache
	mask   uint64
}

// maxCacheShards bounds the shard count: past the core count sharding buys
// no parallelism, and 64 shards puts the lock-contention ceiling three
// orders of magnitude above a single mutex — far beyond the fleet sizes
// the daemon targets.
const maxCacheShards = 64

// defaultCacheShards picks the shard count for a capacity when the caller
// does not: the largest power of two that keeps at least 16 entries per
// shard, capped by maxCacheShards. Small caches (tests, tiny deployments)
// get one shard and behave exactly like the historical single-lock LRU;
// the ftcserve default of 256 gets 16.
func defaultCacheShards(capacity int) int {
	want := capacity / 16
	if want > maxCacheShards {
		want = maxCacheShards
	}
	if c := runtime.GOMAXPROCS(0) * 4; want > c {
		want = c
	}
	if want < 1 {
		want = 1
	}
	return floorPow2(want)
}

func floorPow2(n int) int {
	if n < 1 {
		return 1
	}
	return 1 << (bits.Len(uint(n)) - 1)
}

// newShardedCache builds a cache of the given total capacity split over
// the given shard count (0 = defaultCacheShards; non-powers of two are
// rounded down; shards are clamped so each holds at least one entry).
// When the capacity does not divide evenly, the remainder is spread one
// entry each over the first shards, so the total always equals the
// request.
func newShardedCache(capacity, shards int) *shardedCache {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = defaultCacheShards(capacity)
	}
	shards = floorPow2(shards)
	if shards > maxCacheShards {
		shards = maxCacheShards
	}
	for shards > capacity {
		shards >>= 1
	}
	c := &shardedCache{
		shards: make([]*lruCache, shards),
		mask:   uint64(shards - 1),
	}
	per, extra := capacity/shards, capacity%shards
	for i := range c.shards {
		cap := per
		if i < extra {
			cap++
		}
		c.shards[i] = newLRUCache(cap)
	}
	return c
}

func (c *shardedCache) shardFor(key uint64) *lruCache {
	return c.shards[key&c.mask]
}

// get is lruCache.get against the owning shard.
func (c *shardedCache) get(key uint64, canon []int, gen uint64) (*cacheEntry, bool) {
	return c.shardFor(key).get(key, canon, gen)
}

// applyUpdate sweeps every shard in turn, locking one at a time.
//
// A rebased entry's canonical indices can be remapped, which moves its key
// — possibly across shards. The per-shard sweep re-homes entries within
// their shard only, so a cross-shard mover is evicted instead of rebased:
// strictly less warm state retained than the unsharded sweep, never less
// sound (the entry recompiles on next use). Same-shard movers keep the
// full rebase path.
func (c *shardedCache) applyUpdate(rep *core.CommitReport) (evicted, rebased int) {
	for i, sh := range c.shards {
		e, r := sh.applyUpdateSharded(rep, c.mask, uint64(i))
		evicted += e
		rebased += r
	}
	return evicted, rebased
}

// ShardStats is the per-shard slice of the cache counters surfaced by
// GET /stats.
type ShardStats struct {
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

func (c *shardedCache) stats() (hits, misses, evicted, rebased, capEvicted uint64, size, capacity int, per []ShardStats) {
	per = make([]ShardStats, len(c.shards))
	for i, sh := range c.shards {
		h, m, e, r, ce, s, cp := sh.stats()
		per[i] = ShardStats{Size: s, Capacity: cp, Hits: h, Misses: m}
		hits += h
		misses += m
		evicted += e
		rebased += r
		capEvicted += ce
		size += s
		capacity += cp
	}
	return
}
