package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/serve/products"
	"repro/internal/serve/wire"
)

// The query-product endpoints (DESIGN.md §3.15): POST /route answers
// forbidden-set route plans, POST /vconnected answers s–t probes under
// vertex faults. Both ride the serving layer's existing disciplines —
// compile-once fault sets behind the sharded cache (the route product
// shares the edge namespace with /connected, since a route plan lives on
// the same compiled FaultSet; the vertex product gets its own key
// namespace), generation stamping with the ErrStaleLabel retry-once, and
// pooled per-request scratch.
//
// Degraded mode: a fault set beyond the scheme's f budget flips the
// answer source to the per-generation spanner view (products package) and
// marks the response "confidence": "approx" instead of refusing with 422.

// Confidence markers carried by query-product responses.
const (
	ConfidenceExact  = "exact"
	ConfidenceApprox = "approx"
)

// RouteRequest is the wire form of a POST /route batch: one forbidden
// edge set (by [u,v] endpoint pair and/or edge index — same
// generation-pinning rules as ConnectedRequest), many (source, target)
// pairs to plan routes for.
type RouteRequest struct {
	Faults     [][2]int `json:"faults,omitempty"`
	FaultEdges []int    `json:"fault_edges,omitempty"`
	Pairs      [][2]int `json:"pairs"`
	Generation uint64   `json:"generation,omitempty"`
}

// RouteLeg is one answered route: whether the target is reachable in
// G − F and, if so, the full hop-by-hop vertex path the plan's execution
// traversed (source first, target last). The path is the packet
// simulator's actual trajectory, so it never crosses a forbidden edge.
type RouteLeg struct {
	Reachable bool  `json:"reachable"`
	Path      []int `json:"path,omitempty"`
}

// RouteResponse answers a batch of route-plan queries.
type RouteResponse struct {
	Routes     []RouteLeg `json:"routes"`
	Faults     int        `json:"faults"`
	CacheHit   bool       `json:"cache_hit"`
	Confidence string     `json:"confidence"`
	Generation uint64     `json:"generation"`
}

// VConnectedRequest is the wire form of a POST /vconnected batch probe:
// one set of failed vertices, many s–t pairs. Vertex indices are stable
// names (vertices are never removed), so no endpoint-pair form is needed;
// Generation optionally pins the answer generation like ConnectedRequest.
type VConnectedRequest struct {
	FaultVertices []int    `json:"fault_vertices"`
	Pairs         [][2]int `json:"pairs"`
	Generation    uint64   `json:"generation,omitempty"`
}

// VConnectedResponse answers a batch vertex-fault probe. Faults is the
// canonical failed-vertex count; FaultEdges the deduplicated incident
// edge count the exact reduction compiled (0 in degraded mode, where
// nothing is compiled).
type VConnectedResponse struct {
	Connected  []bool `json:"connected"`
	Faults     int    `json:"faults"`
	FaultEdges int    `json:"fault_edges,omitempty"`
	CacheHit   bool   `json:"cache_hit"`
	Confidence string `json:"confidence"`
	Generation uint64 `json:"generation"`
}

// vertexFaultSetCanonKey is the vertex-namespace twin of faultSetCanonKey:
// resolve a canonical (sorted, deduplicated) failed-vertex slice to a
// compiled FaultSet via the §1.4 reduction (a vertex failure is the
// failure of all its incident edges), serving repeats from the vertex
// cache. Over-budget sets compile to an ErrTooManyFaults entry — cached
// deliberately, because unlike an invalid request it is a legitimate,
// serveable query: the memoized classification routes warm repeats
// straight to the degraded path without re-walking adjacencies.
func (s *Server) vertexFaultSetCanonKey(sch Scheme, canon []int, key uint64) (*core.FaultSet, bool, error) {
	g := sch.Graph()
	n := g.N()
	// Range-validate before touching the cache, mirroring the edge path.
	for _, v := range canon {
		if v < 0 || v >= n {
			return nil, false, fmt.Errorf("fault vertex index %d out of range (n=%d)", v, n)
		}
	}
	compile := func() (*core.FaultSet, error) {
		edges := products.VertexFaultEdges(g, canon)
		if budget := sch.MaxFaults(); len(edges) > budget {
			return nil, fmt.Errorf("%w: %d incident fault edges, budget %d", core.ErrTooManyFaults, len(edges), budget)
		}
		labels := make([]core.EdgeLabel, len(edges))
		for i, e := range edges {
			labels[i] = sch.EdgeLabelByIndex(e)
		}
		return core.CompileFaults(labels)
	}
	ent, hit := s.vcache.get(key, canon, sch.Generation())
	if ent == nil {
		fs, err := compile()
		return fs, false, err
	}
	ent.once.Do(func() {
		ent.fs, ent.err = compile()
		ent.compiled.Store(true)
	})
	return ent.fs, hit, ent.err
}

// forbiddenCanon returns the Execute-forbidden predicate over a sorted
// canonical edge slice: one binary search per hop, no map allocation.
func forbiddenCanon(canon []int) func(e int) bool {
	return func(e int) bool {
		i := sort.SearchInts(canon, e)
		return i < len(canon) && canon[i] == e
	}
}

// routeScratch is the pooled per-request state of the /route pipeline,
// mirroring probeScratch.
type routeScratch struct {
	req   RouteRequest
	resp  RouteResponse
	canon []int
	legs  []RouteLeg
	enc   bytes.Buffer
}

var routeScratchPool = sync.Pool{New: func() any { return &routeScratch{} }}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.admitHTTP(w) {
		return
	}
	defer s.releaseHTTP()
	sc := routeScratchPool.Get().(*routeScratch)
	defer routeScratchPool.Put(sc)
	sc.req.Faults = sc.req.Faults[:0]
	sc.req.FaultEdges = sc.req.FaultEdges[:0]
	sc.req.Pairs = sc.req.Pairs[:0]
	sc.req.Generation = 0
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc.req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	for attempt := 0; ; attempt++ {
		status, err := s.routeOnce(sc)
		if err != nil && errors.Is(err, core.ErrStaleLabel) && attempt == 0 {
			continue
		}
		if err != nil {
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		s.routePlans.Add(uint64(len(sc.req.Pairs)))
		writeJSONBuf(w, http.StatusOK, &sc.resp, &sc.enc)
		return
	}
}

// routeOnce answers one batch of route queries against one consistent
// snapshot into sc.resp. Exact mode plans on the cached FaultSet (edge
// namespace, shared with /connected) and executes each plan through the
// per-generation routing tables; the response path is the simulator's
// actual trajectory. Over-budget forbidden sets take the degraded path.
func (s *Server) routeOnce(sc *routeScratch) (int, error) {
	req := &sc.req
	sch := s.view()
	g := sch.Graph()
	n := g.N()
	if req.Generation != 0 && req.Generation != sch.Generation() {
		return http.StatusConflict, fmt.Errorf("request pinned to generation %d, server at %d (edge indices may have shifted)",
			req.Generation, sch.Generation())
	}
	sc.canon = append(sc.canon[:0], req.FaultEdges...)
	for _, uv := range req.Faults {
		e := -1
		if uv[0] >= 0 && uv[0] < n && uv[1] >= 0 && uv[1] < n {
			e = g.EdgeIndex(uv[0], uv[1])
		}
		if e < 0 {
			return http.StatusBadRequest, fmt.Errorf("no edge (%d,%d)", uv[0], uv[1])
		}
		sc.canon = append(sc.canon, e)
	}
	for _, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return http.StatusBadRequest, fmt.Errorf("vertex pair (%d,%d) out of range (n=%d)", p[0], p[1], n)
		}
	}
	sc.canon = canonicalize(sc.canon)
	m := g.M()
	for _, e := range sc.canon {
		if e < 0 || e >= m {
			return http.StatusUnprocessableEntity, fmt.Errorf("fault edge index %d out of range (m=%d)", e, m)
		}
	}
	view := s.products.For(sch, sch.Generation())
	sc.legs = sc.legs[:0]
	if len(sc.canon) > sch.MaxFaults() {
		// Degraded mode: plan on the spanner instead of refusing.
		for _, p := range req.Pairs {
			path, ok, err := view.ApproxRoute(sc.canon, p[0], p[1])
			if err != nil {
				return http.StatusInternalServerError, err
			}
			sc.legs = append(sc.legs, RouteLeg{Reachable: ok, Path: path})
		}
		s.approxAnswers.Add(uint64(len(req.Pairs)))
		sc.resp = RouteResponse{
			Routes:     sc.legs,
			Faults:     len(sc.canon),
			CacheHit:   false,
			Confidence: ConfidenceApprox,
			Generation: sch.Generation(),
		}
		return http.StatusOK, nil
	}
	fs, hit, err := s.faultSetCanon(sch, sc.canon)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, core.ErrDecode) {
			status = http.StatusInternalServerError
		}
		if errors.Is(err, core.ErrStaleLabel) {
			status = http.StatusConflict
		}
		return status, err
	}
	net := view.Net()
	forbidden := forbiddenCanon(sc.canon)
	for i, p := range req.Pairs {
		plan, ok, err := fs.RoutePlan(sch.VertexLabel(p[0]), sch.VertexLabel(p[1]))
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, core.ErrStaleLabel) {
				status = http.StatusConflict
			}
			return status, fmt.Errorf("pair %d: %w", i, err)
		}
		if !ok {
			sc.legs = append(sc.legs, RouteLeg{})
			continue
		}
		path, reached, err := net.Execute(p[0], p[1], plan, forbidden)
		if err != nil || !reached {
			return http.StatusInternalServerError, fmt.Errorf("pair %d: route execution failed: %v", i, err)
		}
		sc.legs = append(sc.legs, RouteLeg{Reachable: true, Path: path})
	}
	sc.resp = RouteResponse{
		Routes:     sc.legs,
		Faults:     fs.Faults(),
		CacheHit:   hit,
		Confidence: ConfidenceExact,
		Generation: sch.Generation(),
	}
	return http.StatusOK, nil
}

// vprobeScratch is the pooled per-request state of the /vconnected
// pipeline.
type vprobeScratch struct {
	req   VConnectedRequest
	resp  VConnectedResponse
	canon []int
	out   []bool
	enc   bytes.Buffer
}

var vprobeScratchPool = sync.Pool{New: func() any {
	return &vprobeScratch{out: make([]bool, 0, 16)}
}}

func (s *Server) handleVConnected(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.admitHTTP(w) {
		return
	}
	defer s.releaseHTTP()
	sc := vprobeScratchPool.Get().(*vprobeScratch)
	defer vprobeScratchPool.Put(sc)
	sc.req.FaultVertices = sc.req.FaultVertices[:0]
	sc.req.Pairs = sc.req.Pairs[:0]
	sc.req.Generation = 0
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc.req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	for attempt := 0; ; attempt++ {
		status, err := s.vprobeOnce(sc)
		if err != nil && errors.Is(err, core.ErrStaleLabel) && attempt == 0 {
			continue
		}
		if err != nil {
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		s.vprobes.Add(uint64(len(sc.req.Pairs)))
		writeJSONBuf(w, http.StatusOK, &sc.resp, &sc.enc)
		return
	}
}

// vprobeOnce answers one batch vertex-fault probe against one consistent
// snapshot into sc.resp: one vertex-cache stab, then either the compiled
// exact path (failed-endpoint check + FaultSet probes) or the degraded
// spanner path when the incident edge set exceeds the budget.
func (s *Server) vprobeOnce(sc *vprobeScratch) (int, error) {
	req := &sc.req
	sch := s.view()
	n := sch.Graph().N()
	if req.Generation != 0 && req.Generation != sch.Generation() {
		return http.StatusConflict, fmt.Errorf("request pinned to generation %d, server at %d",
			req.Generation, sch.Generation())
	}
	for _, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return http.StatusBadRequest, fmt.Errorf("vertex pair (%d,%d) out of range (n=%d)", p[0], p[1], n)
		}
	}
	sc.canon = canonicalize(append(sc.canon[:0], req.FaultVertices...))
	fs, hit, err := s.vertexFaultSetCanonKey(sch, sc.canon, wire.VertexFaultKey(sc.canon))
	if err != nil {
		if errors.Is(err, core.ErrTooManyFaults) {
			// Degraded mode: answer from the spanner with the failed
			// vertices deleted, marked approx.
			view := s.products.For(sch, sch.Generation())
			out, aerr := view.ApproxConnectedVertices(sc.canon, req.Pairs, sc.out[:0])
			if aerr != nil {
				return http.StatusInternalServerError, aerr
			}
			sc.out = out
			s.approxAnswers.Add(uint64(len(req.Pairs)))
			sc.resp = VConnectedResponse{
				Connected:  sc.out,
				Faults:     len(sc.canon),
				CacheHit:   hit,
				Confidence: ConfidenceApprox,
				Generation: sch.Generation(),
			}
			return http.StatusOK, nil
		}
		status := http.StatusUnprocessableEntity
		if errors.Is(err, core.ErrDecode) {
			status = http.StatusInternalServerError
		}
		if errors.Is(err, core.ErrStaleLabel) {
			status = http.StatusConflict
		}
		return status, err
	}
	sc.out = sc.out[:0]
	for i, p := range req.Pairs {
		// A failed endpoint is disconnected from everything, including
		// itself (matching the root package's VertexFaultSet semantics).
		if products.HasVertex(sc.canon, p[0]) || products.HasVertex(sc.canon, p[1]) {
			sc.out = append(sc.out, false)
			continue
		}
		ok, err := fs.Connected(sch.VertexLabel(p[0]), sch.VertexLabel(p[1]))
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, core.ErrStaleLabel) {
				status = http.StatusConflict
			}
			return status, fmt.Errorf("pair %d: %w", i, err)
		}
		sc.out = append(sc.out, ok)
	}
	sc.resp = VConnectedResponse{
		Connected:  sc.out,
		Faults:     len(sc.canon),
		FaultEdges: fs.Faults(),
		CacheHit:   hit,
		Confidence: ConfidenceExact,
		Generation: sch.Generation(),
	}
	return http.StatusOK, nil
}

// routeFrameOnce is routeOnce for the binary surface: the forbidden set
// arrived canonical with the edge-namespace key precomputed
// (wire.DecodeRoute). The response is size-checked against the frame cap
// — route paths, unlike bitmaps, can outgrow it on huge graphs, in which
// case the client is pointed at the HTTP surface.
func (s *Server) routeFrameOnce(sc *FrameScratch) (uint16, error) {
	sch := s.view()
	g := sch.Graph()
	n := g.N()
	if sc.req.GenPin != 0 && sc.req.GenPin != sch.Generation() {
		return wire.CodeConflict, fmt.Errorf("request pinned to generation %d, server at %d (edge indices may have shifted)",
			sc.req.GenPin, sch.Generation())
	}
	for _, p := range sc.req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return wire.CodeBadRequest, fmt.Errorf("vertex pair (%d,%d) out of range (n=%d)", p[0], p[1], n)
		}
	}
	m := g.M()
	for _, e := range sc.req.Faults {
		if e >= m {
			return wire.CodeUnprocessable, fmt.Errorf("fault edge index %d out of range (m=%d)", e, m)
		}
	}
	view := s.products.For(sch, sch.Generation())
	sc.reach = sc.reach[:0]
	sc.paths = sc.paths[:0]
	approx := len(sc.req.Faults) > sch.MaxFaults()
	hit := false
	faults := len(sc.req.Faults)
	if approx {
		for _, p := range sc.req.Pairs {
			path, ok, err := view.ApproxRoute(sc.req.Faults, p[0], p[1])
			if err != nil {
				return wire.CodeInternal, err
			}
			sc.reach = append(sc.reach, ok)
			sc.paths = append(sc.paths, path)
		}
		s.approxAnswers.Add(uint64(len(sc.req.Pairs)))
	} else {
		fs, cacheHit, err := s.faultSetCanonKey(sch, sc.req.Faults, sc.req.Key)
		if err != nil {
			code := wire.CodeUnprocessable
			if errors.Is(err, core.ErrDecode) {
				code = wire.CodeInternal
			}
			if errors.Is(err, core.ErrStaleLabel) {
				code = wire.CodeConflict
			}
			return code, err
		}
		hit = cacheHit
		faults = fs.Faults()
		net := view.Net()
		forbidden := forbiddenCanon(sc.req.Faults)
		for i, p := range sc.req.Pairs {
			plan, ok, err := fs.RoutePlan(sch.VertexLabel(p[0]), sch.VertexLabel(p[1]))
			if err != nil {
				code := wire.CodeInternal
				if errors.Is(err, core.ErrStaleLabel) {
					code = wire.CodeConflict
				}
				return code, fmt.Errorf("pair %d: %w", i, err)
			}
			if !ok {
				sc.reach = append(sc.reach, false)
				sc.paths = append(sc.paths, nil)
				continue
			}
			path, reached, err := net.Execute(p[0], p[1], plan, forbidden)
			if err != nil || !reached {
				return wire.CodeInternal, fmt.Errorf("pair %d: route execution failed: %v", i, err)
			}
			sc.reach = append(sc.reach, true)
			sc.paths = append(sc.paths, path)
		}
	}
	if wire.RouteRespSize(sc.paths) > wire.MaxFrameBytes {
		return wire.CodeUnprocessable, errors.New("route response exceeds the binary frame cap; use the HTTP surface")
	}
	sc.resp = wire.AppendRouteResp(sc.resp[:0], sc.req.ID, hit, approx, sch.Generation(), faults, sc.reach, sc.paths)
	return 0, nil
}

// vprobeFrameOnce is vprobeOnce for the binary surface: the failed
// vertices arrived canonical with the vertex-namespace key precomputed
// (wire.DecodeVProbe).
func (s *Server) vprobeFrameOnce(sc *FrameScratch) (uint16, error) {
	sch := s.view()
	n := sch.Graph().N()
	if sc.req.GenPin != 0 && sc.req.GenPin != sch.Generation() {
		return wire.CodeConflict, fmt.Errorf("request pinned to generation %d, server at %d",
			sc.req.GenPin, sch.Generation())
	}
	for _, p := range sc.req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return wire.CodeBadRequest, fmt.Errorf("vertex pair (%d,%d) out of range (n=%d)", p[0], p[1], n)
		}
	}
	fs, hit, err := s.vertexFaultSetCanonKey(sch, sc.req.Faults, sc.req.Key)
	if err != nil {
		if errors.Is(err, core.ErrTooManyFaults) {
			view := s.products.For(sch, sch.Generation())
			out, aerr := view.ApproxConnectedVertices(sc.req.Faults, sc.req.Pairs, sc.out[:0])
			if aerr != nil {
				return wire.CodeInternal, aerr
			}
			sc.out = out
			s.approxAnswers.Add(uint64(len(sc.req.Pairs)))
			sc.resp = wire.AppendVProbeResp(sc.resp[:0], sc.req.ID, hit, true, sch.Generation(), len(sc.req.Faults), sc.out)
			return 0, nil
		}
		code := wire.CodeUnprocessable
		if errors.Is(err, core.ErrDecode) {
			code = wire.CodeInternal
		}
		if errors.Is(err, core.ErrStaleLabel) {
			code = wire.CodeConflict
		}
		return code, err
	}
	sc.out = sc.out[:0]
	for i, p := range sc.req.Pairs {
		if products.HasVertex(sc.req.Faults, p[0]) || products.HasVertex(sc.req.Faults, p[1]) {
			sc.out = append(sc.out, false)
			continue
		}
		ok, err := fs.Connected(sch.VertexLabel(p[0]), sch.VertexLabel(p[1]))
		if err != nil {
			code := wire.CodeInternal
			if errors.Is(err, core.ErrStaleLabel) {
				code = wire.CodeConflict
			}
			return code, fmt.Errorf("pair %d: %w", i, err)
		}
		sc.out = append(sc.out, ok)
	}
	sc.resp = wire.AppendVProbeResp(sc.resp[:0], sc.req.ID, hit, false, sch.Generation(), len(sc.req.Faults), sc.out)
	return 0, nil
}
