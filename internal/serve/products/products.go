// Package products is the query-product layer of the serving tier
// (DESIGN.md §3.15): the per-generation compiled state behind the daemon's
// /route and /vconnected endpoints and their degraded (approximate) mode.
//
// The serve layer keeps exactly one Products value. Each generation gets a
// View — a lazily compiled bundle of the routing tables (Corollary 2,
// reusing the daemon's existing labels via routing.NewFromLabels) and the
// f-fault-tolerant bottleneck spanner that backs approximate answers. Both
// are compiled at most once per generation, on first use, behind
// sync.Once: route plans and vertex probes ride the same
// compile-once/reuse-many discipline as the FaultSet cache.
//
// Degraded mode: a fault set larger than the scheme's f budget cannot be
// answered exactly (the labels only encode f-fault detectability), so the
// View answers from the spanner H ⊆ G instead, built with the same budget
// f and κ = 1. Soundness is one-sided: a path found in H − F is a real
// path in G − F (H's edges are G's edges), so "connected"/"reachable" is
// always correct; "disconnected" may be wrong when the fault set exceeds
// what H's redundancy covers. Responses carry `"confidence": "approx"` so
// callers can tell.
package products

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// Scheme is the label surface the products compile from — identical to the
// serve package's Scheme interface (declared here too so serve can depend
// on products without a cycle).
type Scheme interface {
	Graph() *graph.Graph
	MaxFaults() int
	Generation() uint64
	VertexLabel(v int) core.VertexLabel
	EdgeLabelByIndex(e int) core.EdgeLabel
}

// Products hands out the per-generation View, swapping to a fresh one when
// the serving scheme's generation moves. Safe for concurrent use.
type Products struct {
	mu  sync.Mutex
	cur atomic.Pointer[View]
}

// New returns an empty Products.
func New() *Products { return &Products{} }

// For returns the View for the given scheme snapshot at generation gen,
// creating it if the current one is for another generation. The fast path
// is one atomic load.
func (p *Products) For(sch Scheme, gen uint64) *View {
	if v := p.cur.Load(); v != nil && v.gen == gen {
		return v
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if v := p.cur.Load(); v != nil && v.gen == gen {
		return v
	}
	v := &View{gen: gen, sch: sch, g: sch.Graph()}
	p.cur.Store(v)
	return v
}

// View is the compiled query-product state of one generation. All fields
// build lazily and at most once; a View is immutable once its pieces are
// built, so probes share it freely.
type View struct {
	gen uint64
	sch Scheme
	g   *graph.Graph

	tabOnce sync.Once
	net     *routing.Network

	spanOnce sync.Once
	span     *spanner.Spanner
	spanErr  error
}

// Generation returns the generation the View was compiled for.
func (v *View) Generation() uint64 { return v.gen }

// Net returns the routing network (compiling the per-node tables from the
// daemon's labels on first use).
func (v *View) Net() *routing.Network {
	v.tabOnce.Do(func() {
		v.net = routing.NewFromLabels(v.g, v.sch)
	})
	return v.net
}

// Spanner returns the f-FT bottleneck spanner backing degraded mode
// (building it on first use; κ = 1 keeps the guarantee tightest).
func (v *View) Spanner() (*spanner.Spanner, error) {
	v.spanOnce.Do(func() {
		v.span, v.spanErr = spanner.BuildFT(v.g, v.sch.MaxFaults(), 1)
	})
	return v.span, v.spanErr
}

// VertexFaultEdges gathers the deduplicated incident edge indices of the
// failed vertices — the §1.4 reduction (a vertex failure is the failure of
// all its incident edges). The result is sorted ascending. verts must be
// in range.
func VertexFaultEdges(g *graph.Graph, verts []int) []int {
	seen := map[int]bool{}
	var edges []int
	for _, v := range verts {
		for _, half := range g.Adj(v) {
			if !seen[half.Edge] {
				seen[half.Edge] = true
				edges = append(edges, half.Edge)
			}
		}
	}
	sort.Ints(edges)
	return edges
}

// HasVertex reports whether canon (sorted ascending) contains v — the
// failed-endpoint check for vertex-fault probes.
func HasVertex(canon []int, v int) bool {
	i := sort.SearchInts(canon, v)
	return i < len(canon) && canon[i] == v
}

// forbiddenH maps a forbidden G-edge set onto the spanner: a []bool over
// H's edge indices. G edges absent from H are simply not representable —
// skipping them is sound because H − F only shrinks further.
func (v *View) forbiddenH(sp *spanner.Spanner, faultEdges []int) []bool {
	blocked := make([]bool, sp.H.M())
	for _, e := range faultEdges {
		if he := sp.SpannerEdge[e]; he >= 0 {
			blocked[he] = true
		}
	}
	return blocked
}

// ApproxConnectedEdges answers s–t connectivity pairs under an over-budget
// EDGE fault set from the spanner: BFS on H − F. Appends onto out.
func (v *View) ApproxConnectedEdges(faultEdges []int, pairs [][2]int, out []bool) ([]bool, error) {
	sp, err := v.Spanner()
	if err != nil {
		return nil, err
	}
	blocked := v.forbiddenH(sp, faultEdges)
	for _, p := range pairs {
		out = append(out, bfsConnected(sp.H, blocked, nil, p[0], p[1]))
	}
	return out, nil
}

// ApproxConnectedVertices answers s–t connectivity pairs under an
// over-budget VERTEX fault set from the spanner: BFS on H minus the failed
// vertices. canonVerts must be sorted ascending. Appends onto out.
func (v *View) ApproxConnectedVertices(canonVerts []int, pairs [][2]int, out []bool) ([]bool, error) {
	sp, err := v.Spanner()
	if err != nil {
		return nil, err
	}
	dead := make([]bool, v.g.N())
	for _, fv := range canonVerts {
		dead[fv] = true
	}
	for _, p := range pairs {
		if dead[p[0]] || dead[p[1]] {
			out = append(out, false)
			continue
		}
		out = append(out, bfsConnected(sp.H, nil, dead, p[0], p[1]))
	}
	return out, nil
}

// ApproxRoute finds an s–t path under an over-budget edge fault set by BFS
// in H − F. A found path is a real route in G − F (every H edge is a
// non-forbidden G edge); (nil, false) means no path exists in H − F, which
// may under-report reachability — hence the approx marker.
func (v *View) ApproxRoute(faultEdges []int, s, t int) ([]int, bool, error) {
	sp, err := v.Spanner()
	if err != nil {
		return nil, false, err
	}
	blocked := v.forbiddenH(sp, faultEdges)
	if s == t {
		return []int{s}, true, nil
	}
	h := sp.H
	parent := make([]int, h.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[s] = s
	queue := []int{s}
	for len(queue) > 0 && parent[t] < 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, half := range h.Adj(cur) {
			if blocked[half.Edge] || parent[half.To] >= 0 {
				continue
			}
			parent[half.To] = cur
			queue = append(queue, half.To)
		}
	}
	if parent[t] < 0 {
		return nil, false, nil
	}
	var rev []int
	for cur := t; cur != s; cur = parent[cur] {
		rev = append(rev, cur)
	}
	rev = append(rev, s)
	path := make([]int, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path, true, nil
}

// bfsConnected is plain BFS over h with blocked edges and/or dead vertices
// (either may be nil). The degraded path allocates freely — it only runs
// for over-budget fault sets, which are off the zero-alloc steady state by
// definition.
func bfsConnected(h *graph.Graph, blockedEdge []bool, dead []bool, s, t int) bool {
	if s == t {
		return true
	}
	visited := make([]bool, h.N())
	visited[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, half := range h.Adj(cur) {
			if blockedEdge != nil && blockedEdge[half.Edge] {
				continue
			}
			if visited[half.To] || (dead != nil && dead[half.To]) {
				continue
			}
			if half.To == t {
				return true
			}
			visited[half.To] = true
			queue = append(queue, half.To)
		}
	}
	return false
}
