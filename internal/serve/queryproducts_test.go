package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	ftc "repro"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/serve/wireclient"
	"repro/internal/workload"
)

func postProduct(t *testing.T, url string, req, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// checkPath asserts a route response path is a real s→t walk in G − F:
// every consecutive hop is an existing edge outside the forbidden set.
func checkPath(t *testing.T, g *graph.Graph, set map[int]bool, path []int, s, tv int) {
	t.Helper()
	if len(path) == 0 || path[0] != s || path[len(path)-1] != tv {
		t.Fatalf("path %v does not go %d→%d", path, s, tv)
	}
	for i := 1; i < len(path); i++ {
		e := g.EdgeIndex(path[i-1], path[i])
		if e < 0 {
			t.Fatalf("path %v uses non-edge (%d,%d)", path, path[i-1], path[i])
		}
		if set[e] {
			t.Fatalf("path %v crosses forbidden edge %d", path, e)
		}
	}
}

func TestHandlerRouteExact(t *testing.T) {
	const n, f = 80, 3
	sch := buildScheme(t, n, f, 11)
	g := sch.Graph()
	srv := serve.New(sch, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		faults := workload.TreeEdgeFaults(g, sch.Inner().Forest, 1+rng.Intn(f), rng)
		set := workload.FaultSet(faults)
		req := serve.RouteRequest{FaultEdges: faults}
		for q := 0; q < 6; q++ {
			req.Pairs = append(req.Pairs, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		req.Pairs = append(req.Pairs, [2]int{5, 5}) // s == t leg
		var out serve.RouteResponse
		if resp := postProduct(t, ts.URL+"/route", req, &out); resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: status %d", trial, resp.StatusCode)
		}
		if out.Confidence != serve.ConfidenceExact || out.Generation != sch.Generation() {
			t.Fatalf("trial %d: confidence %q gen %d", trial, out.Confidence, out.Generation)
		}
		if len(out.Routes) != len(req.Pairs) {
			t.Fatalf("trial %d: %d legs for %d pairs", trial, len(out.Routes), len(req.Pairs))
		}
		for i, p := range req.Pairs {
			want := graph.ConnectedUnder(g, set, p[0], p[1])
			leg := out.Routes[i]
			if leg.Reachable != want {
				t.Fatalf("trial %d leg %d (%d,%d): reachable %v, want %v", trial, i, p[0], p[1], leg.Reachable, want)
			}
			if leg.Reachable {
				checkPath(t, g, set, leg.Path, p[0], p[1])
			} else if leg.Path != nil {
				t.Fatalf("trial %d leg %d: unreachable leg carries a path %v", trial, i, leg.Path)
			}
		}
		// The same forbidden set planned again must hit the shared cache.
		var warm serve.RouteResponse
		if resp := postProduct(t, ts.URL+"/route", req, &warm); resp.StatusCode != http.StatusOK || !warm.CacheHit {
			t.Fatalf("trial %d: warm route missed the cache", trial)
		}
	}
	st := srv.Stats()
	if st.RoutePlans == 0 || st.ApproxAnswers != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRouteSharesConnectedCache pins the namespace design: /route and
// /connected compile the same fault set once — whichever runs second sees
// a cache hit.
func TestRouteSharesConnectedCache(t *testing.T) {
	sch := buildScheme(t, 60, 3, 13)
	srv := serve.New(sch, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := serve.ConnectedRequest{FaultEdges: []int{1, 4}, Pairs: [][2]int{{0, 9}}}
	if resp, out := postConnected(t, ts.URL, req); resp.StatusCode != http.StatusOK || out.CacheHit {
		t.Fatalf("cold probe: status %d hit %v", resp.StatusCode, out.CacheHit)
	}
	var rout serve.RouteResponse
	rreq := serve.RouteRequest{FaultEdges: []int{4, 1, 1}, Pairs: [][2]int{{0, 9}}}
	if resp := postProduct(t, ts.URL+"/route", rreq, &rout); resp.StatusCode != http.StatusOK {
		t.Fatalf("route status %d", resp.StatusCode)
	}
	if !rout.CacheHit {
		t.Fatal("route after probe of the same fault set missed the shared cache")
	}
}

func TestHandlerRouteDegraded(t *testing.T) {
	const n, f = 80, 3
	sch := buildScheme(t, n, f, 14)
	g := sch.Graph()
	srv := serve.New(sch, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(15))
	faults := workload.RandomFaults(g, 2*f, rng) // over budget
	if len(faults) <= f {
		t.Fatalf("want over-budget fault set, got %d ≤ %d", len(faults), f)
	}
	set := workload.FaultSet(faults)
	req := serve.RouteRequest{FaultEdges: faults}
	for q := 0; q < 10; q++ {
		req.Pairs = append(req.Pairs, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	var out serve.RouteResponse
	if resp := postProduct(t, ts.URL+"/route", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (over-budget must degrade, not fail)", resp.StatusCode)
	}
	if out.Confidence != serve.ConfidenceApprox {
		t.Fatalf("confidence %q, want approx", out.Confidence)
	}
	for i, p := range req.Pairs {
		leg := out.Routes[i]
		if leg.Reachable {
			// One-sided soundness: a degraded path is a real G−F path.
			checkPath(t, g, set, leg.Path, p[0], p[1])
		} else if graph.ConnectedUnder(g, set, p[0], p[1]) {
			// Under-reporting is allowed by the contract; log for visibility.
			t.Logf("leg %d: spanner under-reported reachability (allowed)", i)
		}
	}
	if st := srv.Stats(); st.ApproxAnswers == 0 {
		t.Fatalf("approx answers not counted: %+v", st)
	}
}

func TestHandlerVConnectedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := workload.ErdosRenyi(50, 0.12, true, rng)
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	sch, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(2*maxDeg))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(sch, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for trial := 0; trial < 25; trial++ {
		dead := map[int]bool{}
		req := serve.VConnectedRequest{}
		for len(dead) < 2 {
			v := rng.Intn(g.N())
			if !dead[v] {
				dead[v] = true
				req.FaultVertices = append(req.FaultVertices, v)
			}
		}
		var want []bool
		for q := 0; q < 8; q++ {
			sv, tv := rng.Intn(g.N()), rng.Intn(g.N())
			req.Pairs = append(req.Pairs, [2]int{sv, tv})
			w := connectedWithoutVertices(g, dead, sv, tv)
			want = append(want, w)
		}
		var out serve.VConnectedResponse
		if resp := postProduct(t, ts.URL+"/vconnected", req, &out); resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: status %d", trial, resp.StatusCode)
		}
		if out.Confidence != serve.ConfidenceExact || out.Faults != len(dead) || out.FaultEdges == 0 {
			t.Fatalf("trial %d: %+v", trial, out)
		}
		for i := range want {
			if out.Connected[i] != want[i] {
				t.Fatalf("trial %d pair %d (%v dead): got %v want %v",
					trial, i, req.FaultVertices, out.Connected[i], want[i])
			}
		}
		var warm serve.VConnectedResponse
		if resp := postProduct(t, ts.URL+"/vconnected", req, &warm); resp.StatusCode != http.StatusOK || !warm.CacheHit {
			t.Fatalf("trial %d: warm vprobe missed the vertex cache", trial)
		}
	}
	st := srv.Stats()
	if st.VProbes == 0 || st.VCacheHits == 0 || st.VCacheMisses == 0 {
		t.Fatalf("vertex stats not counting: %+v", st)
	}
}

// connectedWithoutVertices is the vertex-fault ground truth: failed
// endpoints are disconnected from everything (including themselves), and
// a vertex failure fails all its incident edges.
func connectedWithoutVertices(g *graph.Graph, dead map[int]bool, s, t int) bool {
	if dead[s] || dead[t] {
		return false
	}
	faults := map[int]bool{}
	for v := range dead {
		for _, h := range g.Adj(v) {
			faults[h.Edge] = true
		}
	}
	return graph.ConnectedUnder(g, faults, s, t)
}

func TestHandlerVConnectedDegraded(t *testing.T) {
	// The wheel's hub has degree n−1 ≫ f: failing it must degrade, not 422.
	g := workload.Wheel(24)
	sch, err := ftc.NewFromGraph(g, ftc.WithMaxFaults(3))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(sch, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hub := 0
	if g.Degree(hub) <= 3 {
		t.Fatalf("test graph: hub degree %d not over budget", g.Degree(hub))
	}
	req := serve.VConnectedRequest{
		FaultVertices: []int{hub},
		Pairs:         [][2]int{{1, 2}, {1, 12}, {hub, 1}, {3, 3}},
	}
	var out serve.VConnectedResponse
	if resp := postProduct(t, ts.URL+"/vconnected", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (over-budget vertex set must degrade)", resp.StatusCode)
	}
	if out.Confidence != serve.ConfidenceApprox || out.Faults != 1 || out.FaultEdges != 0 {
		t.Fatalf("degraded response: %+v", out)
	}
	dead := map[int]bool{hub: true}
	for i, p := range req.Pairs {
		if out.Connected[i] && !connectedWithoutVertices(g, dead, p[0], p[1]) {
			t.Fatalf("pair %d: degraded mode answered connected for a disconnected pair", i)
		}
	}
	if out.Connected[2] {
		t.Fatal("failed endpoint answered connected")
	}
	// The over-budget classification is memoized: the warm repeat reports
	// a vertex-cache hit.
	var warm serve.VConnectedResponse
	if resp := postProduct(t, ts.URL+"/vconnected", req, &warm); resp.StatusCode != http.StatusOK || !warm.CacheHit {
		t.Fatalf("warm degraded vprobe missed the vertex cache (hit=%v)", warm.CacheHit)
	}
}

// TestBinQueryProductsMatchHTTP drives the same route and vertex-probe
// requests through both surfaces and requires identical answers.
func TestBinQueryProductsMatchHTTP(t *testing.T) {
	const n, f = 60, 3
	sch := buildScheme(t, n, f, 31)
	g := sch.Graph()
	srv := serve.New(sch, 32)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	addr := binListener(t, srv)

	cl, err := wireclient.Dial(addr, wireclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(32))
	var rresp wire.RouteResp
	for trial := 0; trial < 20; trial++ {
		faults := workload.RandomFaults(g, rng.Intn(2*f), rng)
		pairs := make([][2]int, 1+rng.Intn(6))
		for i := range pairs {
			pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
		}

		var hr serve.RouteResponse
		if resp := postProduct(t, ts.URL+"/route", serve.RouteRequest{FaultEdges: faults, Pairs: pairs}, &hr); resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: route status %d", trial, resp.StatusCode)
		}
		if err := cl.Route(faults, pairs, &rresp, 0); err != nil {
			t.Fatalf("trial %d: bin route: %v", trial, err)
		}
		if rresp.Approx != (hr.Confidence == serve.ConfidenceApprox) || rresp.Gen != hr.Generation || rresp.Faults != hr.Faults {
			t.Fatalf("trial %d: surfaces disagree: bin %+v http %+v", trial, rresp, hr)
		}
		for i := range pairs {
			if rresp.Reachable[i] != hr.Routes[i].Reachable {
				t.Fatalf("trial %d leg %d: reachable bin %v http %v", trial, i, rresp.Reachable[i], hr.Routes[i].Reachable)
			}
			if len(rresp.Paths[i]) != len(hr.Routes[i].Path) {
				t.Fatalf("trial %d leg %d: paths differ: bin %v http %v", trial, i, rresp.Paths[i], hr.Routes[i].Path)
			}
			for j := range rresp.Paths[i] {
				if rresp.Paths[i][j] != hr.Routes[i].Path[j] {
					t.Fatalf("trial %d leg %d: paths differ: bin %v http %v", trial, i, rresp.Paths[i], hr.Routes[i].Path)
				}
			}
		}

		verts := []int{rng.Intn(n), rng.Intn(n)}
		var hv serve.VConnectedResponse
		if resp := postProduct(t, ts.URL+"/vconnected", serve.VConnectedRequest{FaultVertices: verts, Pairs: pairs}, &hv); resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: vconnected status %d", trial, resp.StatusCode)
		}
		out, _, approx, gen, err := cl.VProbeInto(verts, pairs, nil, 0)
		if err != nil {
			t.Fatalf("trial %d: bin vprobe: %v", trial, err)
		}
		if approx != (hv.Confidence == serve.ConfidenceApprox) || gen != hv.Generation {
			t.Fatalf("trial %d: vprobe surfaces disagree: approx %v/%q gen %d/%d", trial, approx, hv.Confidence, gen, hv.Generation)
		}
		for i := range pairs {
			if out[i] != hv.Connected[i] {
				t.Fatalf("trial %d pair %d: bin %v http %v", trial, i, out[i], hv.Connected[i])
			}
		}
	}
}

// TestMetricsQueryProducts hits the product endpoints and asserts the new
// series appear on /metrics.
func TestMetricsQueryProducts(t *testing.T) {
	sch := buildScheme(t, 40, 2, 41)
	srv := serve.New(sch, 8)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var rout serve.RouteResponse
	postProduct(t, ts.URL+"/route", serve.RouteRequest{Pairs: [][2]int{{0, 1}}}, &rout)
	var vout serve.VConnectedResponse
	postProduct(t, ts.URL+"/vconnected", serve.VConnectedRequest{FaultVertices: nil, Pairs: [][2]int{{0, 1}}}, &vout)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, series := range []string{
		"ftcserve_route_plans_total 1",
		"ftcserve_vprobes_total 1",
		"ftcserve_approx_answers_total 0",
		"ftcserve_vcache_hits_total",
		"ftcserve_vcache_misses_total",
		"ftcserve_vcache_entries",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("metrics missing %q", series)
		}
	}
}
