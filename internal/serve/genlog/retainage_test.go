package genlog

import (
	"path/filepath"
	"testing"
	"time"
)

// TestCompactTargetMaxAge drives the time-based retention policy with a
// fake clock: records expire by append age, the MinRetain floor holds, and
// the parallel timestamp window survives a compaction.
func TestCompactTargetMaxAge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.log")
	l, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()

	base := time.Unix(1_000_000, 0)
	clock := base
	l.now = func() time.Time { return clock }

	// Gens 2..11, appended one minute apart: record i at base + i·1m.
	for i, d := range synthDeltas(10, 1) {
		clock = base.Add(time.Duration(i) * time.Minute)
		if _, err := l.Append(d); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}

	// Nothing has aged past a generous bound.
	l.SetRetention(Retention{MaxAge: time.Hour, MinRetain: 3})
	if _, ok := l.CompactTarget(); ok {
		t.Fatal("age retention tripped with every record inside MaxAge")
	}

	// At base+12m with MaxAge 5m the cutoff is base+7m: records 0..6 are
	// expired (gens 2..8), so compact through gen 8.
	l.SetRetention(Retention{MaxAge: 5 * time.Minute, MinRetain: 3})
	clock = base.Add(12 * time.Minute)
	through, ok := l.CompactTarget()
	if !ok || through != 8 {
		t.Fatalf("CompactTarget = (%d, %v), want (8, true)", through, ok)
	}

	// MinRetain floors the window even when everything has expired.
	l.SetRetention(Retention{MaxAge: time.Nanosecond, MinRetain: 3})
	clock = base.Add(24 * time.Hour)
	through, ok = l.CompactTarget()
	if !ok || through != 8 {
		t.Fatalf("fully expired CompactTarget = (%d, %v), want (8, true)", through, ok)
	}
	l.SetRetention(Retention{MaxAge: time.Nanosecond, MinRetain: 10})
	if _, ok := l.CompactTarget(); ok {
		t.Fatal("age retention tripped with the whole window inside MinRetain")
	}

	// Compact through gen 8 and make sure the timestamp window moved with
	// the records: survivors are gens 9..11 at base + 7m/8m/9m.
	if _, err := l.Compact(8, 11, saveBytes([]byte("snap"))); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	l.SetRetention(Retention{MaxAge: 5 * time.Minute, MinRetain: 1})
	clock = base.Add(8*time.Minute + 30*time.Second) // cutoff base+3m30s: none expired... of the survivors
	if _, ok := l.CompactTarget(); ok {
		t.Fatal("age retention tripped on surviving records inside MaxAge")
	}
	clock = base.Add(20 * time.Minute) // cutoff base+15m: gens 9 and 10 expired
	through, ok = l.CompactTarget()
	if !ok || through != 10 {
		t.Fatalf("post-compaction CompactTarget = (%d, %v), want (10, true)", through, ok)
	}
}

// TestMaxAgeStampsRecoveredRecords pins the Open behavior: recovered
// records carry no durable timestamps, so they age from Open and an
// age-only policy must not trip the moment an old log is reopened.
func TestMaxAgeStampsRecoveredRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.log")
	l := writeLog(t, path, synthDeltas(6, 1))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	l2.SetRetention(Retention{MaxAge: time.Minute, MinRetain: 1})
	if _, ok := l2.CompactTarget(); ok {
		t.Fatal("age retention tripped immediately after reopening an old log")
	}
	// Once the fake clock outruns MaxAge, the recovered records expire.
	opened := time.Now()
	l2.now = func() time.Time { return opened.Add(time.Hour) }
	through, ok := l2.CompactTarget()
	if !ok || through != 6 {
		t.Fatalf("aged reopen CompactTarget = (%d, %v), want (6, true)", through, ok)
	}
}
