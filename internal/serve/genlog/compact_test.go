package genlog

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
)

// Checkpoint/compaction fixtures: the sidecar format and the truncated log
// layout are both pinned. Any change to either alters these bytes and must
// ship regenerated fixtures under a bumped version.
const (
	goldenCkptPath      = "testdata/golden_genlog_compacted_v1.ckpt"
	goldenCompactedPath = "testdata/golden_genlog_compacted_v1"
)

// synthDeltas fabricates n contiguous full-marker deltas starting at
// generation start+1 — cheap fuel for policy and race tests that never
// replay them.
func synthDeltas(n int, start uint64) []*core.GenDelta {
	ds := make([]*core.GenDelta, 0, n)
	for i := 0; i < n; i++ {
		g := start + uint64(i)
		ds = append(ds, &core.GenDelta{
			PrevGen: g, Gen: g + 1, Token: uint64(i) * 7,
			Full: true, Reason: "synthetic",
		})
	}
	return ds
}

func saveBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

// TestCompactTargetPolicy exercises the retention trip conditions.
func TestCompactTargetPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.log")
	l := writeLog(t, path, synthDeltas(10, 1)) // gens 2..11
	defer l.Close()

	if _, ok := l.CompactTarget(); ok {
		t.Fatal("retention tripped with no policy set")
	}
	l.SetRetention(Retention{MaxRecords: 20, MinRetain: 3})
	if _, ok := l.CompactTarget(); ok {
		t.Fatal("retention tripped below MaxRecords")
	}
	l.SetRetention(Retention{MaxRecords: 4, MinRetain: 3})
	through, ok := l.CompactTarget()
	if !ok {
		t.Fatal("retention did not trip with 10 records > MaxRecords 4")
	}
	// Keep the newest 3 records (gens 9..11): compact through gen 8.
	if through != 8 {
		t.Fatalf("CompactTarget = %d, want 8 (keep newest 3 of gens 2..11)", through)
	}

	// Byte-based policy: a tiny cap trips immediately, and MinRetain still
	// floors the window.
	l.SetRetention(Retention{MaxBytes: 1, MinRetain: 5})
	through, ok = l.CompactTarget()
	if !ok || through != 6 {
		t.Fatalf("byte policy CompactTarget = (%d, %v), want (6, true)", through, ok)
	}

	// A window already at MinRetain never trips, however small the caps.
	l.SetRetention(Retention{MaxRecords: 1, MaxBytes: 1, MinRetain: 10})
	if _, ok := l.CompactTarget(); ok {
		t.Fatal("retention tripped with the whole window inside MinRetain")
	}
}

// TestCompactErrors asserts the compaction guard rails: a checkpoint below
// the compaction point and a cut that would empty the window are refused,
// and a cut below coverage is a no-op.
func TestCompactErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.log")
	l := writeLog(t, path, synthDeltas(5, 1)) // gens 2..6
	defer l.Close()

	if _, err := l.Compact(4, 3, saveBytes([]byte("x"))); !errors.Is(err, ErrCompact) {
		t.Fatalf("Compact(through=4, ckpt=3) = %v, want ErrCompact", err)
	}
	if _, err := l.Compact(6, 6, saveBytes([]byte("x"))); !errors.Is(err, ErrCompact) {
		t.Fatalf("Compact dropping entire window = %v, want ErrCompact", err)
	}
	res, err := l.Compact(1, 6, saveBytes([]byte("x")))
	if err != nil || res.Dropped != 0 || res.Retained != 5 {
		t.Fatalf("no-op Compact = (%+v, %v), want 0 dropped / 5 retained", res, err)
	}
	if _, ok := l.Checkpoint(); ok {
		t.Fatal("no-op compaction wrote a checkpoint")
	}
}

// TestGoldenCheckpointCompatibility locks the checkpoint sidecar format and
// the compacted log layout: the fixed golden run compacted through gen 3
// with a gen-5 checkpoint must reproduce the committed fixture bytes, the
// fixture sidecar must parse and its payload decode to the gen-5 scheme,
// and the compacted fixture must reopen with its checkpoint attached — the
// open-after-compaction compatibility contract.
func TestGoldenCheckpointCompatibility(t *testing.T) {
	d, deltas := buildGoldenRun(t)
	path := filepath.Join(t.TempDir(), "gen.log")
	l := writeLog(t, path, deltas) // gens 2..5
	s := d.Scheme()                // generation 5
	snap, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Compact(3, s.Generation(), saveBytes(snap))
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.Dropped != 2 || res.Retained != 2 || res.CheckpointGen != 5 || res.BytesReclaimed <= 0 {
		t.Fatalf("Compact = %+v, want 2 dropped / 2 retained / checkpoint 5 / bytes reclaimed", res)
	}
	l.Close()

	gotLog, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gotCkpt, err := os.ReadFile(CheckpointPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCompactedPath, gotLog, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCkptPath, gotCkpt, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes) and %s (%d bytes)",
			goldenCompactedPath, len(gotLog), goldenCkptPath, len(gotCkpt))
	}
	wantLog, err := os.ReadFile(goldenCompactedPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	wantCkpt, err := os.ReadFile(goldenCkptPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(gotLog, wantLog) {
		t.Fatalf("compacted log bytes diverge from %s (%d vs %d bytes): the layout changed — bump Version and regenerate with -update",
			goldenCompactedPath, len(gotLog), len(wantLog))
	}
	if !bytes.Equal(gotCkpt, wantCkpt) {
		t.Fatalf("checkpoint bytes diverge from %s (%d vs %d bytes): the sidecar format changed — bump CkptVersion and regenerate with -update",
			goldenCkptPath, len(gotCkpt), len(wantCkpt))
	}

	// The fixture sidecar must parse (magic/version/CRC) and its payload
	// must decode to the primary's gen-5 scheme.
	info, err := parseCheckpoint(wantCkpt)
	if err != nil {
		t.Fatalf("parseCheckpoint(fixture): %v", err)
	}
	if info.Gen != 5 || info.Payload != int64(len(snap)) {
		t.Fatalf("fixture checkpoint = %+v, want gen 5 / %d payload bytes", info, len(snap))
	}
	sc, err := core.UnmarshalScheme(wantCkpt[ckptHeaderLen:])
	if err != nil {
		t.Fatalf("checkpoint payload decode: %v", err)
	}
	if sc.Generation() != 5 || sc.Token() != s.Token() {
		t.Fatalf("checkpoint payload at (gen %d, token %#x), want (5, %#x)",
			sc.Generation(), sc.Token(), s.Token())
	}

	// Open-after-compaction: the fixture log must reopen with the sidecar
	// attached, serve only the retained window, and accept further appends.
	gl, err := Open(goldenCompactedPath)
	if err != nil {
		t.Fatalf("Open(compacted fixture): %v", err)
	}
	defer gl.Close()
	if first, last := gl.Bounds(); first != 4 || last != 5 {
		t.Fatalf("compacted bounds = (%d, %d), want (4, 5)", first, last)
	}
	ck, ok := gl.Checkpoint()
	if !ok || ck.Gen != 5 {
		t.Fatalf("reopened checkpoint = (%+v, %v), want gen 5", ck, ok)
	}
	if _, ok := gl.After(2); ok {
		t.Fatal("After(2) served below the compacted window")
	}
	if recs, ok := gl.After(ck.Gen); !ok || len(recs) != 0 {
		t.Fatalf("After(checkpoint gen) = (%d, %v), want empty ok — a checkpoint-bootstrapped replica must be able to tail", len(recs), ok)
	}
	r, ri, err := gl.OpenCheckpoint()
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	payload, err := io.ReadAll(r)
	r.Close()
	if err != nil || int64(len(payload)) != ri.Payload || !bytes.Equal(payload, snap) {
		t.Fatalf("OpenCheckpoint streamed %d bytes (err %v), want the %d-byte snapshot", len(payload), err, len(snap))
	}
}

// TestCompactBoundsWindow drives a long synthetic run through the policy
// and asserts the file and in-memory window stay bounded while the
// checkpoint tracks the head — the retention invariant the serve layer
// relies on.
func TestCompactBoundsWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetRetention(Retention{MaxRecords: 8, MinRetain: 3})

	var maxLen int
	var maxBytes int64
	for _, d := range synthDeltas(100, 1) {
		if _, err := l.Append(d); err != nil {
			t.Fatal(err)
		}
		if through, ok := l.CompactTarget(); ok {
			if _, err := l.Compact(through, d.Gen, saveBytes([]byte("snapshot"))); err != nil {
				t.Fatal(err)
			}
			// The checkpoint must stay within the retained window's
			// coverage so After(ckptGen) always succeeds.
			ck, _ := l.Checkpoint()
			if _, ok := l.After(ck.Gen); !ok {
				t.Fatalf("After(checkpoint gen %d) refused right after compaction", ck.Gen)
			}
		}
		st := l.Stats()
		if st.Records > maxLen {
			maxLen = st.Records
		}
		if st.FileBytes > maxBytes {
			maxBytes = st.FileBytes
		}
	}
	st := l.Stats()
	if maxLen > 9 { // MaxRecords + the append that trips the policy
		t.Fatalf("in-memory window peaked at %d records, policy caps at 8", maxLen)
	}
	if st.Compactions == 0 || st.BytesReclaimed == 0 {
		t.Fatalf("no compactions recorded: %+v", st)
	}
	if st.LastGen != 101 || st.CheckpointGen == 0 {
		t.Fatalf("final stats %+v, want head 101 with a checkpoint", st)
	}
	// File bound: header + ~9 max-window records; synthetic records are
	// tiny, so 4KB is generous — the point is it did not grow with 100
	// appends.
	if maxBytes > 4096 {
		t.Fatalf("log file peaked at %d bytes under an 8-record policy", maxBytes)
	}
}

// TestAfterCompactRace interleaves After backfills (reading record
// payloads, as the wire streamLog loop does) with Append and Compact under
// -race: the regression test for the use-after-truncate hazard — Compact
// must never mutate a backing array an in-flight backfill still aliases.
func TestAfterCompactRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetRetention(Retention{MaxRecords: 24, MinRetain: 8})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var sink byte
			for {
				select {
				case <-stop:
					_ = sink
					return
				default:
				}
				first, last := l.Bounds()
				if last == 0 {
					continue
				}
				// Subscribe anywhere in (and just below) the window; below
				// coverage must be refused, in coverage must yield records
				// whose payloads stay readable across concurrent Compacts.
				gen := first - 1 + uint64(rng.Int63n(int64(last-first)+2))
				recs, ok := l.After(gen)
				if !ok {
					continue
				}
				prev := gen
				for _, rec := range recs {
					if rec.Gen <= prev {
						t.Errorf("After(%d) out of order: gen %d after %d", gen, rec.Gen, prev)
						return
					}
					prev = rec.Gen
					for _, b := range rec.Payload {
						sink ^= b
					}
				}
			}
		}(int64(w))
	}

	for _, d := range synthDeltas(300, 1) {
		if _, err := l.Append(d); err != nil {
			t.Fatal(err)
		}
		if through, ok := l.CompactTarget(); ok {
			if _, err := l.Compact(through, d.Gen, saveBytes([]byte("snapshot"))); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
