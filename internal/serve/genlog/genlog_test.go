package genlog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "regenerate golden log fixtures")

// goldenPath pins the record format: any layout change alters these bytes
// and must ship a fixture regenerated under a bumped Version.
const goldenPath = "testdata/golden_genlog_v1"

// buildGoldenRun drives a deterministic Dynamic through a fixed commit
// sequence — incremental batches, a forest-breaking rebuild (full marker),
// and a post-rebuild incremental batch — returning the deltas in order and
// the scheme before each commit.
func buildGoldenRun(t *testing.T) (*core.Dynamic, []*core.GenDelta) {
	t.Helper()
	g := workload.Petersen()
	d, err := core.NewDynamic(g.Clone(), core.Params{MaxFaults: 2, Kind: core.KindDetNetFind})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	// Petersen is 3-regular and connected: every absent pair is an
	// incremental-eligible insertion, and inserted edges are non-tree.
	batches := [][]core.Update{
		{{Add: true, U: 0, V: 2}, {Add: true, U: 1, V: 3}},
		{{U: 0, V: 2}, {Add: true, U: 4, V: 6}},
		nil, // placeholder: forest-breaking removal picked below
		{{Add: true, U: 0, V: 2}},
	}
	var deltas []*core.GenDelta
	for i, batch := range batches {
		if batch == nil {
			cur := d.Scheme()
			for e := 0; e < cur.Graph().M(); e++ {
				if cur.Forest.IsTreeEdge[e] {
					batch = []core.Update{{U: cur.Graph().Edges[e].U, V: cur.Graph().Edges[e].V}}
					break
				}
			}
		}
		rep, delta, _, err := d.CommitWithDelta(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if delta == nil {
			t.Fatalf("batch %d: no delta", i)
		}
		if i == 2 && rep.Incremental {
			t.Fatalf("batch %d: tree-edge removal committed incrementally", i)
		}
		deltas = append(deltas, delta)
	}
	return d, deltas
}

func writeLog(t *testing.T, path string, deltas []*core.GenDelta) *Log {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, d := range deltas {
		if _, err := l.Append(d); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	return l
}

// TestGoldenLogCompatibility locks the on-disk record format: the fixed
// commit sequence must encode to the committed fixture bytes, and the
// fixture must decode back to deltas that replay byte-identically.
func TestGoldenLogCompatibility(t *testing.T) {
	_, deltas := buildGoldenRun(t)
	if *updateGolden {
		tmp := filepath.Join(t.TempDir(), "golden")
		l := writeLog(t, tmp, deltas)
		l.Close()
		data, err := os.ReadFile(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes, %d records)", goldenPath, len(data), len(deltas))
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	tmp := filepath.Join(t.TempDir(), "golden")
	l := writeLog(t, tmp, deltas)
	defer l.Close()
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("log bytes diverge from %s (%d vs %d bytes): the record format changed — bump Version and regenerate with -update",
			goldenPath, len(got), len(want))
	}

	// The fixture must also load and replay: generations 2 and 3 replay
	// incrementally onto a fresh build of the golden base graph.
	gl, err := Open(goldenPath)
	if err != nil {
		t.Fatalf("Open(golden): %v", err)
	}
	defer gl.Close()
	if first, last := gl.Bounds(); first != 2 || last != 5 {
		t.Fatalf("golden bounds = (%d, %d), want (2, 5)", first, last)
	}
	base, err := core.NewDynamic(workload.Petersen(), core.Params{MaxFaults: 2, Kind: core.KindDetNetFind})
	if err != nil {
		t.Fatal(err)
	}
	replica := base.Scheme()
	recs, ok := gl.After(1)
	if !ok || len(recs) != 4 {
		t.Fatalf("After(1) = %d records, ok=%v", len(recs), ok)
	}
	for _, rec := range recs[:2] {
		d, err := DecodeDelta(rec.Payload)
		if err != nil {
			t.Fatalf("decode gen %d: %v", rec.Gen, err)
		}
		_, next, err := core.ApplyDelta(replica, d)
		if err != nil {
			t.Fatalf("replay gen %d: %v", rec.Gen, err)
		}
		replica = next
	}
	if d, err := DecodeDelta(recs[2].Payload); err != nil || !d.Full {
		t.Fatalf("golden record 3 must be a full marker (delta=%+v, err=%v)", d, err)
	}
}

// TestLogRoundTripAndReplay appends live deltas, reopens the file, and
// asserts the decoded records replay the primary's generations with
// byte-identical labels — the genlog reader contract.
func TestLogRoundTripAndReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := workload.ErdosRenyi(70, 8/70.0, true, rng)
	d, err := core.NewDynamic(g.Clone(), core.Params{MaxFaults: 3, Kind: core.KindRandRS, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	replica := d.Scheme()
	path := filepath.Join(t.TempDir(), "gen.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	for committed < 5 {
		var batch []core.Update
		cur := d.Scheme()
		for e := 0; e < cur.Graph().M() && len(batch) < 2; e++ {
			if !cur.Forest.IsTreeEdge[e] && rng.Intn(3) == 0 {
				batch = append(batch, core.Update{U: cur.Graph().Edges[e].U, V: cur.Graph().Edges[e].V})
			}
		}
		if len(batch) == 0 {
			continue
		}
		rep, delta, _, err := d.CommitWithDelta(batch)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Incremental {
			t.Fatalf("non-tree removals %v fell back: %s", batch, rep.Reason)
		}
		if _, err := l.Append(delta); err != nil {
			t.Fatal(err)
		}
		committed++
	}
	l.Close()

	// Reopen (validates every checksum) and replay everything.
	l2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.Len() != committed {
		t.Fatalf("reopened log has %d records, want %d", l2.Len(), committed)
	}
	recs, ok := l2.After(replica.Generation())
	if !ok {
		t.Fatal("After(base gen) refused")
	}
	for _, rec := range recs {
		delta, err := DecodeDelta(rec.Payload)
		if err != nil {
			t.Fatalf("decode gen %d: %v", rec.Gen, err)
		}
		_, next, err := core.ApplyDelta(replica, delta)
		if err != nil {
			t.Fatalf("replay gen %d: %v", rec.Gen, err)
		}
		replica = next
	}
	primary := d.Scheme()
	if replica.Token() != primary.Token() || replica.Generation() != primary.Generation() {
		t.Fatalf("replayed to (%#x, %d), primary at (%#x, %d)",
			replica.Token(), replica.Generation(), primary.Token(), primary.Generation())
	}
	for e := 0; e < primary.Graph().M(); e++ {
		if !bytes.Equal(core.MarshalEdgeLabel(replica.EdgeLabel(e)), core.MarshalEdgeLabel(primary.EdgeLabel(e))) {
			t.Fatalf("edge %d label bytes diverge after replay", e)
		}
	}
}

// TestTornTailTruncated simulates a crash mid-append: a torn trailing
// record is dropped on reopen, intact records survive, and appending
// continues from the surviving generation.
func TestTornTailTruncated(t *testing.T) {
	_, deltas := buildGoldenRun(t)
	path := filepath.Join(t.TempDir(), "gen.log")
	l := writeLog(t, path, deltas[:2])
	l.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []string{"header", "payload", "checksum"} {
		data := append([]byte(nil), whole...)
		switch cut {
		case "header":
			data = append(data, 0x99, 0x01) // 2 bytes of a next record header
		case "payload":
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[:], 100) // claims 100 payload bytes
			data = append(data, hdr[:]...)
			data = append(data, bytes.Repeat([]byte{0xab}, 40)...) // only 40 present
		case "checksum":
			// Full-length final record with a wrong checksum: torn write
			// where the payload bytes landed but are garbage.
			payload := EncodeDelta(deltas[2])
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:], 0xdeadbeef)
			data = append(data, hdr[:]...)
			data = append(data, payload...)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path)
		if err != nil {
			t.Fatalf("%s: reopen: %v", cut, err)
		}
		if l.Len() != 2 {
			t.Fatalf("%s: %d records survive, want 2", cut, l.Len())
		}
		if _, err := l.Append(deltas[2]); err != nil {
			t.Fatalf("%s: append after truncation: %v", cut, err)
		}
		if _, last := l.Bounds(); last != deltas[2].Gen {
			t.Fatalf("%s: last gen %d after re-append", cut, last)
		}
		l.Close()
	}
}

// TestMidFileCorruptionRejected asserts a checksum mismatch that is not the
// final record fails Open outright.
func TestMidFileCorruptionRejected(t *testing.T) {
	_, deltas := buildGoldenRun(t)
	path := filepath.Join(t.TempDir(), "gen.log")
	l := writeLog(t, path, deltas[:3])
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload.
	data[headerLen+recHeaderLen+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(corrupt) = %v, want ErrCorrupt", err)
	}
}

// TestGenOrderEnforced asserts Append refuses gaps and stale records.
func TestGenOrderEnforced(t *testing.T) {
	_, deltas := buildGoldenRun(t)
	path := filepath.Join(t.TempDir(), "gen.log")
	l := writeLog(t, path, deltas[:1])
	defer l.Close()
	if _, err := l.Append(deltas[2]); !errors.Is(err, ErrGenOrder) {
		t.Fatalf("gap append = %v, want ErrGenOrder", err)
	}
	if _, err := l.Append(deltas[0]); !errors.Is(err, ErrGenOrder) {
		t.Fatalf("duplicate append = %v, want ErrGenOrder", err)
	}
}

// TestAfterBelowCoverage asserts a subscriber older than the log's first
// record is refused (it must refetch a snapshot).
func TestAfterBelowCoverage(t *testing.T) {
	d, deltas := buildGoldenRun(t)
	_ = d
	path := filepath.Join(t.TempDir(), "gen.log")
	l := writeLog(t, path, deltas[2:]) // log starts at the gen-4 full marker
	defer l.Close()
	if _, ok := l.After(1); ok {
		t.Fatal("After(1) served despite missing generations 2-3")
	}
	recs, ok := l.After(3)
	if !ok || len(recs) != 2 {
		t.Fatalf("After(3) = (%d, %v), want 2 records", len(recs), ok)
	}
	recs, ok = l.After(99)
	if !ok || len(recs) != 0 {
		t.Fatalf("After(99) = (%d, %v), want empty ok", len(recs), ok)
	}
}

// TestOversizedDeltaDemoted asserts a delta above MaxRecordBytes lands as a
// full marker rather than an unbounded record.
func TestOversizedDeltaDemoted(t *testing.T) {
	huge := &core.GenDelta{
		PrevGen: 1, Gen: 2, Token: 42,
		Ops:      []core.Update{{Add: true, U: 0, V: 1}},
		DirtyIdx: []int{0},
		DirtyXor: [][]uint64{make([]uint64, (MaxRecordBytes/8)+1024)},
	}
	path := filepath.Join(t.TempDir(), "gen.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec, err := l.Append(huge)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Payload) > 1024 {
		t.Fatalf("oversized delta not demoted (%d-byte record)", len(rec.Payload))
	}
	d, err := DecodeDelta(rec.Payload)
	if err != nil || !d.Full || d.Gen != 2 || d.Token != 42 {
		t.Fatalf("demoted record = %+v, %v; want full marker at gen 2", d, err)
	}
}

// TestTornWriteFailpointRecovers injects a torn write through the
// "genlog.append" failpoint — a strict prefix of the record lands on disk
// and Append fails — then asserts Open truncates the torn tail and the
// log accepts the same delta again: the crash-recovery path under fault
// injection matches the hand-corrupted fixtures above.
func TestTornWriteFailpointRecovers(t *testing.T) {
	defer faultinject.Disarm()
	_, deltas := buildGoldenRun(t)
	path := filepath.Join(t.TempDir(), "gen.log")
	l := writeLog(t, path, deltas[:2])

	r := faultinject.New(11)
	if err := r.Set("genlog.append", "torn-write"); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(r)
	if _, err := l.Append(deltas[2]); err == nil {
		t.Fatal("append under torn-write failpoint succeeded")
	}
	faultinject.Disarm()
	l.Close()

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer reopened.Close()
	if reopened.Len() != 2 {
		t.Fatalf("%d records survive torn write, want 2", reopened.Len())
	}
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Size() >= st.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", st.Size(), st2.Size())
	}
	if _, err := reopened.Append(deltas[2]); err != nil {
		t.Fatalf("re-append after recovery: %v", err)
	}
	if _, last := reopened.Bounds(); last != deltas[2].Gen {
		t.Fatalf("last gen %d after re-append, want %d", last, deltas[2].Gen)
	}
}
