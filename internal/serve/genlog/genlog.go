// Package genlog is the append-only generation log behind the replicated
// serving tier: the primary appends one record per committed Network
// generation — the GenDelta exported by the commit, or a full-rebuild
// marker — and replicas tail the records (from the file, or shipped
// verbatim over the wire) to replay the primary's generations
// byte-for-byte without snapshot reloads.
//
// File layout (all integers little-endian):
//
//	magic   [4]byte  "FTCG"
//	version u8       1
//	records ...
//
// Each record:
//
//	length   u32   payload byte count
//	checksum u32   IEEE CRC-32 of the payload
//	payload  bytes (self-describing; see EncodeDelta)
//
// Record payload, version 1:
//
//	prevGen u64
//	gen     u64
//	token   u64
//	flags   u8    bit 0: full-rebuild marker
//
// then, for a full marker:
//
//	reasonLen u16, reason bytes
//
// or, for an incremental delta:
//
//	nOps    u32, nOps × { add u8, u u32, v u32 }
//	words   u32   payload words per XOR mask
//	nDirty  u32, nDirty × { idx u32, mask words×u64 }
//	nAdded  u32, nAdded × { idx u32, blobLen u32, MarshalEdgeLabel blob }
//
// The payload is the unit shipped over the wire (OpLogRecord frames carry
// it verbatim), so wire subscribers and file readers decode identically.
// Any change to this layout must bump the version byte and the record
// version constant — the golden-fixture test enforces it.
//
// Durability model: records are written with a single Write call and
// fsynced before Append returns, so a record is either fully present or
// (after a crash mid-append) detectably torn. Open scans the file,
// validates every checksum, and truncates a torn or corrupt tail rather
// than serving doubtful records; corruption below the tail is an error.
package genlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/core"
)

// Version is the log format version, bumped on any layout change.
const Version = 1

var magic = [4]byte{'F', 'T', 'C', 'G'}

const headerLen = 5 // magic + version byte
const recHeaderLen = 8

// MaxRecordBytes bounds a single record payload. An incremental delta
// whose encoding exceeds it is demoted to a full-rebuild marker on append
// — replicas refetch a snapshot instead of streaming an unbounded frame —
// so wire frames and reader buffers stay bounded.
const MaxRecordBytes = 16 << 20

// Sentinel errors; test with errors.Is.
var (
	ErrBadMagic   = errors.New("genlog: bad magic")
	ErrBadVersion = errors.New("genlog: unsupported version")
	ErrCorrupt    = errors.New("genlog: corrupt record")
	ErrBadRecord  = errors.New("genlog: malformed record payload")
	ErrGenOrder   = errors.New("genlog: generations out of order")
)

// Record is one log entry held in memory: the generation it produces plus
// its encoded payload, shipped verbatim to wire subscribers.
type Record struct {
	PrevGen uint64
	Gen     uint64
	Payload []byte
}

// Log is an append-only generation log backed by one file. All records are
// kept in memory (they are deltas, small by construction) so subscription
// backfill never seeks the file; the file is the durable copy.
//
// A Log is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	records []Record
}

// Open opens or creates the log at path, validating every existing record
// and truncating a torn tail left by a crashed append.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f}
	if err := l.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// scan loads and validates the whole file, writing the header if the file
// is empty and truncating a torn tail.
func (l *Log) scan() error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		var hdr [headerLen]byte
		copy(hdr[:], magic[:])
		hdr[4] = Version
		if _, err := l.f.Write(hdr[:]); err != nil {
			return err
		}
		return l.f.Sync()
	}
	if len(data) < headerLen || [4]byte(data[:4]) != magic {
		return ErrBadMagic
	}
	if data[4] != Version {
		return fmt.Errorf("%w: file version %d, want %d", ErrBadVersion, data[4], Version)
	}
	off := headerLen
	good := off
	for off < len(data) {
		if len(data)-off < recHeaderLen {
			break // torn tail: header cut short
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxRecordBytes {
			return fmt.Errorf("%w: record at offset %d claims %d bytes", ErrCorrupt, off, n)
		}
		if len(data)-off-recHeaderLen < n {
			break // torn tail: payload cut short
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != sum {
			// A checksum mismatch on the last record is a torn write and
			// is dropped; anything with records after it is corruption.
			if off+recHeaderLen+n == len(data) {
				break
			}
			return fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		prevGen, gen, err := peekGens(payload)
		if err != nil {
			return err
		}
		if err := l.checkOrder(prevGen, gen); err != nil {
			return err
		}
		l.records = append(l.records, Record{PrevGen: prevGen, Gen: gen, Payload: append([]byte(nil), payload...)})
		off += recHeaderLen + n
		good = off
	}
	if good < len(data) {
		if err := l.f.Truncate(int64(good)); err != nil {
			return err
		}
	}
	if _, err := l.f.Seek(int64(good), io.SeekStart); err != nil {
		return err
	}
	return nil
}

// checkOrder enforces that a record extends the log's last generation.
func (l *Log) checkOrder(prevGen, gen uint64) error {
	if gen != prevGen+1 {
		return fmt.Errorf("%w: record %d -> %d is not one generation", ErrGenOrder, prevGen, gen)
	}
	if n := len(l.records); n > 0 && prevGen != l.records[n-1].Gen {
		return fmt.Errorf("%w: record extends generation %d, log ends at %d",
			ErrGenOrder, prevGen, l.records[n-1].Gen)
	}
	return nil
}

// Append encodes and durably appends one committed delta. A delta whose
// encoding exceeds MaxRecordBytes is demoted to a full-rebuild marker.
// Append returns the record as kept in memory (shipped verbatim to
// subscribers).
func (l *Log) Append(d *core.GenDelta) (Record, error) {
	payload := EncodeDelta(d)
	if len(payload) > MaxRecordBytes {
		payload = EncodeDelta(&core.GenDelta{
			PrevGen: d.PrevGen, Gen: d.Gen, Token: d.Token,
			Full: true, Reason: "record too large for log shipping",
		})
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkOrder(d.PrevGen, d.Gen); err != nil {
		return Record{}, err
	}
	buf := make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderLen:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return Record{}, err
	}
	if err := l.f.Sync(); err != nil {
		return Record{}, err
	}
	rec := Record{PrevGen: d.PrevGen, Gen: d.Gen, Payload: payload}
	l.records = append(l.records, rec)
	return rec, nil
}

// Len returns the record count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Bounds returns the first and last generation the log can produce (0, 0
// when empty). A subscriber at generation g can be served iff
// first-1 ≤ g; anything older must refetch a snapshot.
func (l *Log) Bounds() (first, last uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return 0, 0
	}
	return l.records[0].Gen, l.records[len(l.records)-1].Gen
}

// After returns the records with Gen > gen, oldest first. The returned
// slice aliases the log's immutable in-memory records; callers must not
// modify payloads. ok is false when gen is below the log's coverage (the
// subscriber must refetch a snapshot instead).
func (l *Log) After(gen uint64) (recs []Record, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return nil, true
	}
	if gen+1 < l.records[0].PrevGen+1 { // gen < firstPrevGen, overflow-safe
		return nil, false
	}
	lo, hi := 0, len(l.records)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.records[mid].Gen <= gen {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return l.records[lo:len(l.records):len(l.records)], true
}

// Close closes the backing file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// --- payload codec ---

const (
	flagFull = 1 << 0
)

// EncodeDelta encodes one delta as a version-1 record payload.
func EncodeDelta(d *core.GenDelta) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, d.PrevGen)
	b = binary.LittleEndian.AppendUint64(b, d.Gen)
	b = binary.LittleEndian.AppendUint64(b, d.Token)
	if d.Full {
		b = append(b, flagFull)
		b = binary.LittleEndian.AppendUint16(b, uint16(min(len(d.Reason), 1<<16-1)))
		b = append(b, d.Reason[:min(len(d.Reason), 1<<16-1)]...)
		return b
	}
	b = append(b, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.Ops)))
	for _, op := range d.Ops {
		add := byte(0)
		if op.Add {
			add = 1
		}
		b = append(b, add)
		b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.V))
	}
	words := 0
	if len(d.DirtyXor) > 0 {
		words = len(d.DirtyXor[0])
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(words))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.DirtyIdx)))
	for i, idx := range d.DirtyIdx {
		b = binary.LittleEndian.AppendUint32(b, uint32(idx))
		for _, w := range d.DirtyXor[i] {
			b = binary.LittleEndian.AppendUint64(b, w)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.AddedIdx)))
	for i, idx := range d.AddedIdx {
		b = binary.LittleEndian.AppendUint32(b, uint32(idx))
		blob := core.MarshalEdgeLabel(d.AddedLabels[i])
		b = binary.LittleEndian.AppendUint32(b, uint32(len(blob)))
		b = append(b, blob...)
	}
	return b
}

// DecodeDelta decodes a version-1 record payload.
func DecodeDelta(payload []byte) (*core.GenDelta, error) {
	p := payload
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("%w: truncated", ErrBadRecord)
		}
		return nil
	}
	if err := need(25); err != nil {
		return nil, err
	}
	d := &core.GenDelta{
		PrevGen: binary.LittleEndian.Uint64(p),
		Gen:     binary.LittleEndian.Uint64(p[8:]),
		Token:   binary.LittleEndian.Uint64(p[16:]),
	}
	flags := p[24]
	p = p[25:]
	if flags&^byte(flagFull) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadRecord, flags)
	}
	if flags&flagFull != 0 {
		d.Full = true
		if err := need(2); err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if err := need(n); err != nil {
			return nil, err
		}
		d.Reason = string(p[:n])
		p = p[n:]
		if len(p) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(p))
		}
		return d, nil
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nOps := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if err := need(nOps * 9); err != nil {
		return nil, err
	}
	d.Ops = make([]core.Update, nOps)
	for i := range d.Ops {
		d.Ops[i] = core.Update{
			Add: p[0] != 0,
			U:   int(binary.LittleEndian.Uint32(p[1:])),
			V:   int(binary.LittleEndian.Uint32(p[5:])),
		}
		if p[0] > 1 {
			return nil, fmt.Errorf("%w: op %d has add byte %d", ErrBadRecord, i, p[0])
		}
		p = p[9:]
	}
	if err := need(8); err != nil {
		return nil, err
	}
	words := int(binary.LittleEndian.Uint32(p))
	nDirty := int(binary.LittleEndian.Uint32(p[4:]))
	p = p[8:]
	if words > 1<<20 || nDirty > 1<<28 {
		return nil, fmt.Errorf("%w: implausible dirty shape (%d × %d words)", ErrBadRecord, nDirty, words)
	}
	if err := need(nDirty * (4 + 8*words)); err != nil {
		return nil, err
	}
	d.DirtyIdx = make([]int, nDirty)
	d.DirtyXor = make([][]uint64, nDirty)
	for i := 0; i < nDirty; i++ {
		d.DirtyIdx[i] = int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		mask := make([]uint64, words)
		for w := range mask {
			mask[w] = binary.LittleEndian.Uint64(p)
			p = p[8:]
		}
		d.DirtyXor[i] = mask
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nAdded := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if nAdded > 1<<28 {
		return nil, fmt.Errorf("%w: implausible added count %d", ErrBadRecord, nAdded)
	}
	d.AddedIdx = make([]int, 0, nAdded)
	d.AddedLabels = make([]core.EdgeLabel, 0, nAdded)
	for i := 0; i < nAdded; i++ {
		if err := need(8); err != nil {
			return nil, err
		}
		idx := int(binary.LittleEndian.Uint32(p))
		blobLen := int(binary.LittleEndian.Uint32(p[4:]))
		p = p[8:]
		if err := need(blobLen); err != nil {
			return nil, err
		}
		l, err := core.UnmarshalEdgeLabel(p[:blobLen])
		if err != nil {
			return nil, fmt.Errorf("%w: added label %d: %v", ErrBadRecord, i, err)
		}
		p = p[blobLen:]
		d.AddedIdx = append(d.AddedIdx, idx)
		d.AddedLabels = append(d.AddedLabels, l)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(p))
	}
	return d, nil
}

// peekGens extracts (prevGen, gen) from a payload without a full decode.
func peekGens(payload []byte) (prevGen, gen uint64, err error) {
	if len(payload) < 25 {
		return 0, 0, fmt.Errorf("%w: truncated", ErrBadRecord)
	}
	return binary.LittleEndian.Uint64(payload), binary.LittleEndian.Uint64(payload[8:]), nil
}
