// Package genlog is the append-only generation log behind the replicated
// serving tier: the primary appends one record per committed Network
// generation — the GenDelta exported by the commit, or a full-rebuild
// marker — and replicas tail the records (from the file, or shipped
// verbatim over the wire) to replay the primary's generations
// byte-for-byte without snapshot reloads.
//
// File layout (all integers little-endian):
//
//	magic   [4]byte  "FTCG"
//	version u8       1
//	records ...
//
// Each record:
//
//	length   u32   payload byte count
//	checksum u32   IEEE CRC-32 of the payload
//	payload  bytes (self-describing; see EncodeDelta)
//
// Record payload, version 1:
//
//	prevGen u64
//	gen     u64
//	token   u64
//	flags   u8    bit 0: full-rebuild marker
//
// then, for a full marker:
//
//	reasonLen u16, reason bytes
//
// or, for an incremental delta:
//
//	nOps    u32, nOps × { add u8, u u32, v u32 }
//	words   u32   payload words per XOR mask
//	nDirty  u32, nDirty × { idx u32, mask words×u64 }
//	nAdded  u32, nAdded × { idx u32, blobLen u32, MarshalEdgeLabel blob }
//
// The payload is the unit shipped over the wire (OpLogRecord frames carry
// it verbatim), so wire subscribers and file readers decode identically.
// Any change to this layout must bump the version byte and the record
// version constant — the golden-fixture test enforces it.
//
// Durability model: records are written with a single Write call and
// fsynced before Append returns, so a record is either fully present or
// (after a crash mid-append) detectably torn. Open scans the file,
// validates every checksum, and truncates a torn or corrupt tail rather
// than serving doubtful records; corruption below the tail is an error.
//
// # Compaction
//
// Left alone, the log grows without bound in two dimensions: the file
// gains a record per commit and the in-memory window keeps every record.
// A Retention policy bounds both: when the window exceeds MaxRecords (or
// the file exceeds MaxBytes, or records older than MaxAge linger outside
// the MinRetain window), the serve layer compacts the log — it first
// writes a checkpoint (the primary's binary scheme snapshot at the current
// generation) to a sidecar file at path+".ckpt", then truncates the
// compacted prefix from both the file and memory, keeping the newest
// MinRetain records. Age is tracked in memory (the FTCG v1 record format
// carries no timestamps): a record's age runs from its Append, and records
// recovered by Open age from the moment the log was opened.
//
// Checkpoint sidecar layout (all integers little-endian):
//
//	magic   [4]byte "FTCC"
//	version u8      1
//	gen     u64     generation the snapshot captures
//	length  u64     snapshot payload byte count
//	crc     u32     IEEE CRC-32 of the payload
//	payload bytes   core scheme snapshot (ftc.Save / MarshalBinary bytes)
//
// Both the checkpoint and the rewritten log are written to a temp file,
// fsynced, and renamed into place — each is atomically either the old or
// the new version. The checkpoint is committed BEFORE the log is
// truncated, so at every instant (including across a crash between the
// two renames) the invariant holds that After(checkpointGen) is within
// the log's coverage: a replica bootstrapping from the checkpoint can
// always tail the remaining records. See DESIGN.md §3.14 for the full
// atomicity argument.
package genlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// Version is the log format version, bumped on any layout change.
const Version = 1

var magic = [4]byte{'F', 'T', 'C', 'G'}

const headerLen = 5 // magic + version byte
const recHeaderLen = 8

// MaxRecordBytes bounds a single record payload. An incremental delta
// whose encoding exceeds it is demoted to a full-rebuild marker on append
// — replicas refetch a snapshot instead of streaming an unbounded frame —
// so wire frames and reader buffers stay bounded.
const MaxRecordBytes = 16 << 20

// CkptVersion is the checkpoint sidecar format version, bumped on any
// layout change.
const CkptVersion = 1

var ckptMagic = [4]byte{'F', 'T', 'C', 'C'}

// ckptHeaderLen is magic + version + gen + length + crc.
const ckptHeaderLen = 4 + 1 + 8 + 8 + 4

// Sentinel errors; test with errors.Is.
var (
	ErrBadMagic     = errors.New("genlog: bad magic")
	ErrBadVersion   = errors.New("genlog: unsupported version")
	ErrCorrupt      = errors.New("genlog: corrupt record")
	ErrBadRecord    = errors.New("genlog: malformed record payload")
	ErrGenOrder     = errors.New("genlog: generations out of order")
	ErrNoCheckpoint = errors.New("genlog: no checkpoint")
	ErrCompact      = errors.New("genlog: invalid compaction")
)

// Record is one log entry held in memory: the generation it produces plus
// its encoded payload, shipped verbatim to wire subscribers.
type Record struct {
	PrevGen uint64
	Gen     uint64
	Payload []byte
}

// Retention is the compaction policy. The zero value disables compaction
// (the historical unbounded behavior).
type Retention struct {
	// MaxRecords compacts the log when the retained window exceeds this
	// many records (0 = unbounded).
	MaxRecords int
	// MaxBytes compacts the log when the file exceeds this many bytes
	// (0 = unbounded).
	MaxBytes int64
	// MaxAge compacts records older than this out of the log (0 =
	// unbounded). Ages are measured against in-memory append times — the
	// record format carries no timestamps — so records that predate the
	// current process age from Open, and an age-only policy trips at the
	// first append (or CompactTarget poll) after expiry, not the instant
	// of it.
	MaxAge time.Duration
	// MinRetain is how many of the newest records every compaction keeps —
	// the replay window for subscribers slightly behind the head. Values
	// below 1 are treated as 1 so the log never empties.
	MinRetain int
}

// Enabled reports whether the policy can ever trip.
func (r Retention) Enabled() bool { return r.MaxRecords > 0 || r.MaxBytes > 0 || r.MaxAge > 0 }

func (r Retention) minRetain() int {
	if r.MinRetain < 1 {
		return 1
	}
	return r.MinRetain
}

// CheckpointInfo describes the current checkpoint sidecar.
type CheckpointInfo struct {
	Gen     uint64 // generation the snapshot captures
	Payload int64  // snapshot payload bytes (excluding the sidecar header)
}

// CompactResult reports one compaction.
type CompactResult struct {
	Dropped        int    // records removed from the window
	Retained       int    // records kept
	BytesReclaimed int64  // log file shrinkage
	CheckpointGen  uint64 // generation of the checkpoint written
}

// Stats is a point-in-time snapshot of the log's bounds and compaction
// counters, the source for /healthz and /metrics on a primary.
type Stats struct {
	FirstGen       uint64
	LastGen        uint64
	Records        int
	FileBytes      int64
	Compactions    uint64
	BytesReclaimed uint64
	CheckpointGen  uint64 // 0 when no checkpoint exists
}

// Log is an append-only generation log backed by one file. The retained
// records are kept in memory (they are deltas, small by construction) so
// subscription backfill never seeks the file; the file is the durable
// copy. With a Retention policy set, both the file and the in-memory
// window are bounded by checkpoint-and-truncate compaction.
//
// A Log is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records []Record
	// times[i] is when records[i] entered this process (Append time, or
	// Open time for recovered records) — the clock MaxAge retention reads.
	times []time.Time
	now   func() time.Time // injectable for retention tests

	ret       Retention
	fileBytes int64

	compactions    uint64
	bytesReclaimed uint64
	ckpt           CheckpointInfo
	hasCkpt        bool
}

// Open opens or creates the log at path, validating every existing record
// and truncating a torn tail left by a crashed append. A checkpoint
// sidecar at path+".ckpt", if present, is validated (magic, version,
// payload CRC) and republished through Checkpoint/OpenCheckpoint.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, path: path, now: time.Now}
	if err := l.scan(); err != nil {
		f.Close()
		return nil, err
	}
	// Recovered records have no durable timestamps; age them from now.
	openedAt := l.now()
	l.times = make([]time.Time, len(l.records))
	for i := range l.times {
		l.times[i] = openedAt
	}
	if err := l.loadCheckpoint(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// SetRetention installs (or replaces) the compaction policy. It does not
// compact by itself — the owner checks CompactTarget after appends (and
// once at startup) and drives Compact with a snapshot writer.
func (l *Log) SetRetention(r Retention) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ret = r
}

// CheckpointPath returns the checkpoint sidecar path for a log path.
func CheckpointPath(logPath string) string { return logPath + ".ckpt" }

// loadCheckpoint validates an existing checkpoint sidecar. A missing
// sidecar is fine (no checkpoint yet); a malformed one is an error — the
// rename-based write discipline never leaves a torn sidecar, so damage
// means real corruption and a compacted log without its checkpoint cannot
// bootstrap replicas.
func (l *Log) loadCheckpoint() error {
	data, err := os.ReadFile(CheckpointPath(l.path))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	info, err := parseCheckpoint(data)
	if err != nil {
		return err
	}
	l.ckpt, l.hasCkpt = info, true
	return nil
}

// parseCheckpoint validates a complete checkpoint file's bytes.
func parseCheckpoint(data []byte) (CheckpointInfo, error) {
	if len(data) < ckptHeaderLen || [4]byte(data[:4]) != ckptMagic {
		return CheckpointInfo{}, fmt.Errorf("%w: bad checkpoint magic", ErrBadMagic)
	}
	if data[4] != CkptVersion {
		return CheckpointInfo{}, fmt.Errorf("%w: checkpoint version %d, want %d", ErrBadVersion, data[4], CkptVersion)
	}
	gen := binary.LittleEndian.Uint64(data[5:])
	n := binary.LittleEndian.Uint64(data[13:])
	sum := binary.LittleEndian.Uint32(data[21:])
	payload := data[ckptHeaderLen:]
	if uint64(len(payload)) != n {
		return CheckpointInfo{}, fmt.Errorf("%w: checkpoint claims %d payload bytes, has %d", ErrCorrupt, n, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return CheckpointInfo{}, fmt.Errorf("%w: checkpoint payload checksum mismatch", ErrCorrupt)
	}
	return CheckpointInfo{Gen: gen, Payload: int64(n)}, nil
}

// scan loads and validates the whole file, writing the header if the file
// is empty and truncating a torn tail.
func (l *Log) scan() error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		var hdr [headerLen]byte
		copy(hdr[:], magic[:])
		hdr[4] = Version
		if _, err := l.f.Write(hdr[:]); err != nil {
			return err
		}
		l.fileBytes = headerLen
		return l.f.Sync()
	}
	if len(data) < headerLen || [4]byte(data[:4]) != magic {
		return ErrBadMagic
	}
	if data[4] != Version {
		return fmt.Errorf("%w: file version %d, want %d", ErrBadVersion, data[4], Version)
	}
	off := headerLen
	good := off
	for off < len(data) {
		if len(data)-off < recHeaderLen {
			break // torn tail: header cut short
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxRecordBytes {
			return fmt.Errorf("%w: record at offset %d claims %d bytes", ErrCorrupt, off, n)
		}
		if len(data)-off-recHeaderLen < n {
			break // torn tail: payload cut short
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != sum {
			// A checksum mismatch on the last record is a torn write and
			// is dropped; anything with records after it is corruption.
			if off+recHeaderLen+n == len(data) {
				break
			}
			return fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		prevGen, gen, err := peekGens(payload)
		if err != nil {
			return err
		}
		if err := l.checkOrder(prevGen, gen); err != nil {
			return err
		}
		l.records = append(l.records, Record{PrevGen: prevGen, Gen: gen, Payload: append([]byte(nil), payload...)})
		off += recHeaderLen + n
		good = off
	}
	if good < len(data) {
		if err := l.f.Truncate(int64(good)); err != nil {
			return err
		}
	}
	if _, err := l.f.Seek(int64(good), io.SeekStart); err != nil {
		return err
	}
	l.fileBytes = int64(good)
	return nil
}

// checkOrder enforces that a record extends the log's last generation.
func (l *Log) checkOrder(prevGen, gen uint64) error {
	if gen != prevGen+1 {
		return fmt.Errorf("%w: record %d -> %d is not one generation", ErrGenOrder, prevGen, gen)
	}
	if n := len(l.records); n > 0 && prevGen != l.records[n-1].Gen {
		return fmt.Errorf("%w: record extends generation %d, log ends at %d",
			ErrGenOrder, prevGen, l.records[n-1].Gen)
	}
	return nil
}

// Append encodes and durably appends one committed delta. A delta whose
// encoding exceeds MaxRecordBytes is demoted to a full-rebuild marker.
// Append returns the record as kept in memory (shipped verbatim to
// subscribers).
func (l *Log) Append(d *core.GenDelta) (Record, error) {
	payload := EncodeDelta(d)
	if len(payload) > MaxRecordBytes {
		payload = EncodeDelta(&core.GenDelta{
			PrevGen: d.PrevGen, Gen: d.Gen, Token: d.Token,
			Full: true, Reason: "record too large for log shipping",
		})
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkOrder(d.PrevGen, d.Gen); err != nil {
		return Record{}, err
	}
	buf := make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderLen:], payload)
	// Failpoint "genlog.append": a torn-write policy writes a strict
	// prefix of the record and fails — the crash-shaped injection whose
	// on-disk tail Open's scan must truncate away.
	if allow, ferr := faultinject.FailWrite("genlog.append", len(buf)); ferr != nil {
		if allow > 0 {
			_, _ = l.f.Write(buf[:allow])
		}
		return Record{}, ferr
	}
	if _, err := l.f.Write(buf); err != nil {
		return Record{}, err
	}
	// Failpoint "genlog.fsync": error injection fails the append after the
	// bytes are written; latency injection models a slow disk.
	if err := faultinject.Fire("genlog.fsync"); err != nil {
		return Record{}, err
	}
	if err := l.f.Sync(); err != nil {
		return Record{}, err
	}
	l.fileBytes += int64(len(buf))
	rec := Record{PrevGen: d.PrevGen, Gen: d.Gen, Payload: payload}
	l.records = append(l.records, rec)
	l.times = append(l.times, l.now())
	return rec, nil
}

// Len returns the record count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Bounds returns the first and last generation the log can produce (0, 0
// when empty). A subscriber at generation g can be served iff
// first-1 ≤ g; anything older must refetch a snapshot.
func (l *Log) Bounds() (first, last uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return 0, 0
	}
	return l.records[0].Gen, l.records[len(l.records)-1].Gen
}

// After returns the records with Gen > gen, oldest first. The returned
// slice aliases the log's immutable in-memory records; callers must not
// modify payloads. The alias stays valid across concurrent Append and
// Compact calls: the capacity is clamped so appends never write into the
// returned window, and compaction installs a freshly copied backing array
// instead of shifting records within the old one — the old array (and any
// in-flight wire backfill iterating it) is left untouched. ok is false
// when gen is below the log's coverage (the subscriber must refetch a
// snapshot instead).
func (l *Log) After(gen uint64) (recs []Record, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return nil, true
	}
	if gen+1 < l.records[0].PrevGen+1 { // gen < firstPrevGen, overflow-safe
		return nil, false
	}
	lo, hi := 0, len(l.records)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.records[mid].Gen <= gen {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return l.records[lo:len(l.records):len(l.records)], true
}

// Close closes the backing file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Stats snapshots the log's bounds and compaction counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Records:        len(l.records),
		FileBytes:      l.fileBytes,
		Compactions:    l.compactions,
		BytesReclaimed: l.bytesReclaimed,
	}
	if len(l.records) > 0 {
		st.FirstGen = l.records[0].Gen
		st.LastGen = l.records[len(l.records)-1].Gen
	}
	if l.hasCkpt {
		st.CheckpointGen = l.ckpt.Gen
	}
	return st
}

// Checkpoint returns the current checkpoint metadata, ok=false when no
// compaction has produced one yet.
func (l *Log) Checkpoint() (CheckpointInfo, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckpt, l.hasCkpt
}

// OpenCheckpoint opens the checkpoint sidecar for streaming, positioned at
// the start of the snapshot payload, together with its metadata. The open
// happens under the log's lock, so the returned reader is pinned to a
// checkpoint that was consistent with the retained window at that instant
// — a compaction renaming a newer sidecar over the path cannot disturb
// bytes already opened. Returns ErrNoCheckpoint when none exists.
func (l *Log) OpenCheckpoint() (r io.ReadCloser, info CheckpointInfo, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.hasCkpt {
		return nil, CheckpointInfo{}, ErrNoCheckpoint
	}
	f, err := os.Open(CheckpointPath(l.path))
	if err != nil {
		return nil, CheckpointInfo{}, err
	}
	if _, err := f.Seek(ckptHeaderLen, io.SeekStart); err != nil {
		f.Close()
		return nil, CheckpointInfo{}, err
	}
	return f, l.ckpt, nil
}

// CompactTarget reports whether the retention policy has tripped and, if
// so, the generation to compact through (everything at or below it is
// dropped, keeping the newest MinRetain records). The caller then drives
// Compact with a snapshot of the current generation.
func (l *Log) CompactTarget() (throughGen uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.ret.Enabled() {
		return 0, false
	}
	keep := l.ret.minRetain()
	if len(l.records) <= keep {
		return 0, false
	}
	tripped := (l.ret.MaxRecords > 0 && len(l.records) > l.ret.MaxRecords) ||
		(l.ret.MaxBytes > 0 && l.fileBytes > l.ret.MaxBytes)
	if tripped {
		return l.records[len(l.records)-keep-1].Gen, true
	}
	if l.ret.MaxAge > 0 {
		// Drop the expired prefix, never reaching into the MinRetain
		// window — the same hysteresis floor the size policies honor.
		cutoff := l.now().Add(-l.ret.MaxAge)
		exp := 0
		for exp < len(l.records)-keep && l.times[exp].Before(cutoff) {
			exp++
		}
		if exp > 0 {
			return l.records[exp-1].Gen, true
		}
	}
	return 0, false
}

// Compact checkpoints and truncates the log: it writes a checkpoint — the
// snapshot produced by save, which must capture generation ckptGen — to
// the sidecar path, then drops every record with Gen ≤ throughGen from
// both the file and the in-memory window. ckptGen must be at least
// throughGen (otherwise a replica bootstrapped from the checkpoint could
// land below the retained window's coverage) and at least one record must
// survive. Both files are replaced by atomic rename, checkpoint first, so
// a crash between the two leaves a longer-than-necessary log, never an
// uncovered checkpoint.
//
// Compact holds the log's lock for the duration, blocking appends and
// backfills while the snapshot is written; the serve layer calls it from
// the commit path (already serialized), so the stall is one commit's.
func (l *Log) Compact(throughGen, ckptGen uint64, save func(io.Writer) error) (CompactResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ckptGen < throughGen {
		return CompactResult{}, fmt.Errorf("%w: checkpoint generation %d below compaction point %d",
			ErrCompact, ckptGen, throughGen)
	}
	// cut = first retained index.
	cut := 0
	for cut < len(l.records) && l.records[cut].Gen <= throughGen {
		cut++
	}
	if cut == 0 {
		return CompactResult{Retained: len(l.records)}, nil
	}
	if cut == len(l.records) {
		return CompactResult{}, fmt.Errorf("%w: compaction through %d would drop the entire window",
			ErrCompact, throughGen)
	}
	// Failpoint "genlog.compact": fail the compaction before the
	// checkpoint is cut — retention re-trips on the next commit, which is
	// the recovery path the chaos harness exercises.
	if err := faultinject.Fire("genlog.compact"); err != nil {
		return CompactResult{}, err
	}
	if err := l.writeCheckpoint(ckptGen, save); err != nil {
		return CompactResult{}, fmt.Errorf("genlog: checkpoint: %w", err)
	}
	newSize, err := l.rewriteLog(cut)
	if err != nil {
		return CompactResult{}, fmt.Errorf("genlog: truncate: %w", err)
	}
	reclaimed := l.fileBytes - newSize
	// Install a freshly copied backing array: slices handed out by After
	// (in-flight wire backfills) keep aliasing the old, untouched array —
	// this copy is what makes After safe against use-after-truncate.
	l.records = append(make([]Record, 0, len(l.records)-cut), l.records[cut:]...)
	l.times = append(make([]time.Time, 0, len(l.times)-cut), l.times[cut:]...)
	l.fileBytes = newSize
	l.compactions++
	l.bytesReclaimed += uint64(reclaimed)
	return CompactResult{
		Dropped:        cut,
		Retained:       len(l.records),
		BytesReclaimed: reclaimed,
		CheckpointGen:  ckptGen,
	}, nil
}

// writeCheckpoint writes the sidecar atomically: payload to a temp file
// through a CRC-tracking writer, header backfilled, fsync, rename.
func (l *Log) writeCheckpoint(gen uint64, save func(io.Writer) error) error {
	dst := CheckpointPath(l.path)
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after a successful rename
	var hdr [ckptHeaderLen]byte
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	cw := &crcWriter{w: f}
	if err := save(cw); err != nil {
		f.Close()
		return err
	}
	copy(hdr[:4], ckptMagic[:])
	hdr[4] = CkptVersion
	binary.LittleEndian.PutUint64(hdr[5:], gen)
	binary.LittleEndian.PutUint64(hdr[13:], uint64(cw.n))
	binary.LittleEndian.PutUint32(hdr[21:], cw.sum)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	l.ckpt = CheckpointInfo{Gen: gen, Payload: cw.n}
	l.hasCkpt = true
	return nil
}

// rewriteLog writes header + records[cut:] to a temp file, fsyncs, renames
// it over the log path, and swaps the live file handle. Returns the new
// file size.
func (l *Log) rewriteLog(cut int) (int64, error) {
	tmp := l.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp)
	var hdr [headerLen]byte
	copy(hdr[:], magic[:])
	hdr[4] = Version
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return 0, err
	}
	var rh [recHeaderLen]byte
	for _, rec := range l.records[cut:] {
		binary.LittleEndian.PutUint32(rh[:], uint32(len(rec.Payload)))
		binary.LittleEndian.PutUint32(rh[4:], crc32.ChecksumIEEE(rec.Payload))
		if _, err := f.Write(rh[:]); err != nil {
			f.Close()
			return 0, err
		}
		if _, err := f.Write(rec.Payload); err != nil {
			f.Close()
			return 0, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	size, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return 0, err
	}
	nf, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := nf.Seek(size, io.SeekStart); err != nil {
		nf.Close()
		return 0, err
	}
	l.f.Close()
	l.f = nf
	return size, nil
}

// crcWriter tees writes into an IEEE CRC-32 and a byte count.
type crcWriter struct {
	w   io.Writer
	sum uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// --- payload codec ---

const (
	flagFull = 1 << 0
)

// EncodeDelta encodes one delta as a version-1 record payload.
func EncodeDelta(d *core.GenDelta) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, d.PrevGen)
	b = binary.LittleEndian.AppendUint64(b, d.Gen)
	b = binary.LittleEndian.AppendUint64(b, d.Token)
	if d.Full {
		b = append(b, flagFull)
		b = binary.LittleEndian.AppendUint16(b, uint16(min(len(d.Reason), 1<<16-1)))
		b = append(b, d.Reason[:min(len(d.Reason), 1<<16-1)]...)
		return b
	}
	b = append(b, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.Ops)))
	for _, op := range d.Ops {
		add := byte(0)
		if op.Add {
			add = 1
		}
		b = append(b, add)
		b = binary.LittleEndian.AppendUint32(b, uint32(op.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(op.V))
	}
	words := 0
	if len(d.DirtyXor) > 0 {
		words = len(d.DirtyXor[0])
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(words))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.DirtyIdx)))
	for i, idx := range d.DirtyIdx {
		b = binary.LittleEndian.AppendUint32(b, uint32(idx))
		for _, w := range d.DirtyXor[i] {
			b = binary.LittleEndian.AppendUint64(b, w)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.AddedIdx)))
	for i, idx := range d.AddedIdx {
		b = binary.LittleEndian.AppendUint32(b, uint32(idx))
		blob := core.MarshalEdgeLabel(d.AddedLabels[i])
		b = binary.LittleEndian.AppendUint32(b, uint32(len(blob)))
		b = append(b, blob...)
	}
	return b
}

// DecodeDelta decodes a version-1 record payload.
func DecodeDelta(payload []byte) (*core.GenDelta, error) {
	p := payload
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("%w: truncated", ErrBadRecord)
		}
		return nil
	}
	if err := need(25); err != nil {
		return nil, err
	}
	d := &core.GenDelta{
		PrevGen: binary.LittleEndian.Uint64(p),
		Gen:     binary.LittleEndian.Uint64(p[8:]),
		Token:   binary.LittleEndian.Uint64(p[16:]),
	}
	flags := p[24]
	p = p[25:]
	if flags&^byte(flagFull) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadRecord, flags)
	}
	if flags&flagFull != 0 {
		d.Full = true
		if err := need(2); err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if err := need(n); err != nil {
			return nil, err
		}
		d.Reason = string(p[:n])
		p = p[n:]
		if len(p) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(p))
		}
		return d, nil
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nOps := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if err := need(nOps * 9); err != nil {
		return nil, err
	}
	d.Ops = make([]core.Update, nOps)
	for i := range d.Ops {
		d.Ops[i] = core.Update{
			Add: p[0] != 0,
			U:   int(binary.LittleEndian.Uint32(p[1:])),
			V:   int(binary.LittleEndian.Uint32(p[5:])),
		}
		if p[0] > 1 {
			return nil, fmt.Errorf("%w: op %d has add byte %d", ErrBadRecord, i, p[0])
		}
		p = p[9:]
	}
	if err := need(8); err != nil {
		return nil, err
	}
	words := int(binary.LittleEndian.Uint32(p))
	nDirty := int(binary.LittleEndian.Uint32(p[4:]))
	p = p[8:]
	if words > 1<<20 || nDirty > 1<<28 {
		return nil, fmt.Errorf("%w: implausible dirty shape (%d × %d words)", ErrBadRecord, nDirty, words)
	}
	if err := need(nDirty * (4 + 8*words)); err != nil {
		return nil, err
	}
	d.DirtyIdx = make([]int, nDirty)
	d.DirtyXor = make([][]uint64, nDirty)
	for i := 0; i < nDirty; i++ {
		d.DirtyIdx[i] = int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		mask := make([]uint64, words)
		for w := range mask {
			mask[w] = binary.LittleEndian.Uint64(p)
			p = p[8:]
		}
		d.DirtyXor[i] = mask
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nAdded := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if nAdded > 1<<28 {
		return nil, fmt.Errorf("%w: implausible added count %d", ErrBadRecord, nAdded)
	}
	d.AddedIdx = make([]int, 0, nAdded)
	d.AddedLabels = make([]core.EdgeLabel, 0, nAdded)
	for i := 0; i < nAdded; i++ {
		if err := need(8); err != nil {
			return nil, err
		}
		idx := int(binary.LittleEndian.Uint32(p))
		blobLen := int(binary.LittleEndian.Uint32(p[4:]))
		p = p[8:]
		if err := need(blobLen); err != nil {
			return nil, err
		}
		l, err := core.UnmarshalEdgeLabel(p[:blobLen])
		if err != nil {
			return nil, fmt.Errorf("%w: added label %d: %v", ErrBadRecord, i, err)
		}
		p = p[blobLen:]
		d.AddedIdx = append(d.AddedIdx, idx)
		d.AddedLabels = append(d.AddedLabels, l)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(p))
	}
	return d, nil
}

// peekGens extracts (prevGen, gen) from a payload without a full decode.
func peekGens(payload []byte) (prevGen, gen uint64, err error) {
	if len(payload) < 25 {
		return 0, 0, fmt.Errorf("%w: truncated", ErrBadRecord)
	}
	return binary.LittleEndian.Uint64(payload), binary.LittleEndian.Uint64(payload[8:]), nil
}
