// Package wire is the binary probe protocol of the serving layer:
// length-prefixed request/response frames over persistent connections, the
// hot-path alternative to the JSON HTTP surface (DESIGN.md §3.12). The
// protocol exists because at warm-cache steady state the probe itself is
// ~15ns while each HTTP request pays a JSON decode/encode — serialization,
// not the scheme, bounds serving throughput.
//
// Design rules, all in service of a zero-allocation steady state:
//
//   - Fault edges are canonical ON THE WIRE: a probe frame must carry its
//     fault edge indices strictly ascending (sorted, deduplicated). The
//     client canonicalizes once when building the frame; the server
//     validates ascending order during decode — an O(count) comparison —
//     and computes the fault-set cache key incrementally from the same
//     pass, so a fault set is hashed and canonicalized exactly once per
//     frame. FaultKey here is the single source of truth for that hash;
//     the serve cache derives its key from it.
//
//   - Frames are read zero-copy: Reader peeks frames directly out of the
//     underlying bufio buffer whenever they fit (the common case — a
//     batch-16 probe frame is ~150 bytes against a 64KB buffer), falling
//     back to one reused scratch buffer for oversized frames. Decoding
//     aliases nothing and refills caller-owned slices in place.
//
//   - Responses answer a batch of pairs as a bitmap, so a batch-16
//     response is 34 bytes where the JSON form is ~100.
//
// Connection lifecycle: the client opens with a 5-byte hello (magic +
// version); the server answers with magic + version + its current
// generation, then both sides exchange frames. Responses are written in
// request order per connection, which is what makes pipelining trivial —
// a client may keep any number of requests in flight and match responses
// FIFO (request ids are echoed as a cross-check, not a matching key).
//
// Frame layout (all integers little-endian):
//
//	u32 payload length | u8 opcode | payload
//
//	OpProbe payload:
//	  u64 id | u64 generation pin (0 = none) | u32 nFaults | u32 nPairs
//	  u32 deadline budget in ms (0 = none)
//	  nFaults × u32 fault edge index (strictly ascending)
//	  nPairs  × (u32 s, u32 t)
//
//	The deadline budget is the requester's remaining end-to-end budget at
//	send time; a server that cannot start serving the frame within it
//	answers OpError CodeUnavailable instead of holding the request in a
//	queue past its usefulness (DESIGN.md §3.16).
//
//	OpProbeResp payload:
//	  u64 id | u8 flags (bit0 = cache hit) | u64 generation
//	  u32 nFaults (canonical count) | u32 nPairs | ⌈nPairs/8⌉ bitmap bytes
//
//	OpError payload:
//	  u64 id | u16 code (HTTP-aligned) | message bytes
//
//	OpLogSub payload (replication tailing, client → server):
//	  u64 afterGen — stream generation-log records with gen > afterGen
//
//	OpLogRecord payload (server → client):
//	  one genlog record payload, verbatim (self-describing; see the
//	  genlog package for its layout and versioning)
//
//	OpRoute payload (query product, DESIGN.md §3.15):
//	  identical layout to OpProbe — the forbidden set is fault EDGE
//	  indices (strictly ascending) and the pairs are (source, target).
//
//	OpRouteResp payload:
//	  u64 id | u8 flags (bit0 = cache hit, bit1 = approx) | u64 generation
//	  u32 nFaults (canonical count) | u32 nRoutes
//	  nRoutes × ( u8 reachable | u32 pathLen | pathLen × u32 vertex )
//
//	OpVProbe payload:
//	  identical layout to OpProbe, but the fault indices are VERTEX
//	  indices (strictly ascending). The incremental hash uses the
//	  vertex-namespace seed (VertexFaultKey), so an edge fault set and a
//	  vertex fault set with the same indices can never share a cache key.
//
//	OpVProbeResp payload:
//	  identical layout to OpProbeResp, plus bit1 of the flags byte marks
//	  an approximate (degraded-mode) answer.
//
// A connection that sends OpLogSub switches to push mode: the server
// streams OpLogRecord frames (backlog, then live appends) and accepts no
// further requests on that connection. Log records may exceed the normal
// frame cap; a tailing client raises its Reader cap via SetMaxFrame.
//
// Any layout change must bump Version; a mismatched hello fails the
// handshake instead of misparsing frames. New opcodes are additive: a
// server that predates one answers OpError CodeBadRequest and drops the
// connection, which a client treats as "feature unsupported".
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version exchanged in the hello. Bump on any
// frame-layout change. Version 2 added the u32 deadline-budget field to
// the probe-layout request frames.
const Version = 2

// magic opens both hello messages.
var magic = [4]byte{'F', 'T', 'C', 'W'}

// Opcodes. Responses have the high bit clear too — the opcode namespace is
// shared so a Reader can hand any frame to the right decoder.
const (
	OpProbe      byte = 0x01 // client → server batch probe
	OpProbeResp  byte = 0x02 // server → client batch answer
	OpError      byte = 0x03 // server → client failure report
	OpLogSub     byte = 0x04 // client → server genlog subscription
	OpLogRecord  byte = 0x05 // server → client genlog record push
	OpRoute      byte = 0x06 // client → server batch route-plan request
	OpRouteResp  byte = 0x07 // server → client route plans
	OpVProbe     byte = 0x08 // client → server batch vertex-fault probe
	OpVProbeResp byte = 0x09 // server → client vertex-fault answers
)

// Error codes carried by OpError frames, aligned with the HTTP handler's
// status codes so the two protocol surfaces report failures identically.
const (
	CodeBadRequest    uint16 = 400
	CodeConflict      uint16 = 409 // generation pin mismatch / stale label
	CodeGone          uint16 = 410 // genlog no longer covers the requested gen
	CodeUnprocessable uint16 = 422 // invalid fault set (budget, range)
	CodeInternal      uint16 = 500
	CodeUnavailable   uint16 = 503 // overload shed / deadline budget exhausted
)

// MaxFrameBytes bounds one frame's payload, mirroring the HTTP handler's
// request-body cap. A peer announcing a larger frame is malformed and the
// connection is dropped before any allocation is sized from the length.
const MaxFrameBytes = 1 << 20

// frameHeaderLen is the u32 length prefix plus the opcode byte.
const frameHeaderLen = 5

// probeFixedLen is the fixed part of an OpProbe payload: id, generation
// pin, the two counts, and the deadline budget.
const probeFixedLen = 8 + 8 + 4 + 4 + 4

// ErrFrame is returned for any malformed frame or handshake.
var ErrFrame = errors.New("wire: malformed frame")

// ErrTooLarge is returned when a length prefix exceeds MaxFrameBytes.
var ErrTooLarge = fmt.Errorf("%w: frame exceeds %d bytes", ErrFrame, MaxFrameBytes)

// fnv64Offset/fnv64Prime are the FNV-1a 64 parameters (hash/fnv inlined so
// the per-frame key needs no hasher allocation).
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

// FaultKey hashes a canonical (strictly ascending) fault-edge index slice:
// FNV-1a over each index as 8 little-endian bytes. This is the fault-set
// cache key — the serve layer's cache derives its key from this function,
// and DecodeProbe computes the identical value incrementally while
// validating the frame, so the serving path never hashes twice.
func FaultKey(canon []int) uint64 {
	h := fnv64Offset
	for _, e := range canon {
		h = faultKeyStep(h, uint64(e))
	}
	return h
}

// faultKeyStep folds one index (as 8 LE bytes) into an FNV-1a state.
func faultKeyStep(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnv64Prime
	}
	return h
}

// vertexKeySeed is the FNV state after folding a namespace tag byte into
// the standard offset basis. Vertex-fault cache keys start from this seed
// instead of fnv64Offset, so a vertex fault set {3, 7} and an edge fault
// set {3, 7} hash to unrelated keys even inside shared cache machinery.
var vertexKeySeed = faultKeyStep(fnv64Offset, uint64('V'))

// VertexFaultKey hashes a canonical (strictly ascending) fault-VERTEX
// index slice into the vertex cache-key namespace. DecodeVProbe computes
// the identical value incrementally while validating the frame.
func VertexFaultKey(canon []int) uint64 {
	h := vertexKeySeed
	for _, v := range canon {
		h = faultKeyStep(h, uint64(v))
	}
	return h
}

// AppendClientHello appends the 5-byte client hello.
func AppendClientHello(b []byte) []byte {
	b = append(b, magic[:]...)
	return append(b, Version)
}

// ClientHelloLen is the size of the client hello.
const ClientHelloLen = 5

// ServerHelloLen is the size of the server hello.
const ServerHelloLen = 13

// ParseClientHello validates a client hello.
func ParseClientHello(b []byte) error {
	if len(b) != ClientHelloLen || string(b[:4]) != string(magic[:]) {
		return fmt.Errorf("%w: bad client hello", ErrFrame)
	}
	if b[4] != Version {
		return fmt.Errorf("%w: protocol version %d, want %d", ErrFrame, b[4], Version)
	}
	return nil
}

// AppendServerHello appends the 13-byte server hello carrying the server's
// current generation.
func AppendServerHello(b []byte, gen uint64) []byte {
	b = append(b, magic[:]...)
	b = append(b, Version)
	return binary.LittleEndian.AppendUint64(b, gen)
}

// ParseServerHello validates a server hello and returns the generation.
func ParseServerHello(b []byte) (uint64, error) {
	if len(b) != ServerHelloLen || string(b[:4]) != string(magic[:]) {
		return 0, fmt.Errorf("%w: bad server hello", ErrFrame)
	}
	if b[4] != Version {
		return 0, fmt.Errorf("%w: protocol version %d, want %d", ErrFrame, b[4], Version)
	}
	return binary.LittleEndian.Uint64(b[5:]), nil
}

// ProbeReq is one decoded probe frame. Faults and Pairs are refilled in
// place by DecodeProbe, so a long-lived ProbeReq makes the decode path
// allocation-free; Key is the fault-set cache key (FaultKey of Faults),
// computed during decode.
type ProbeReq struct {
	ID     uint64
	GenPin uint64
	Faults []int
	Pairs  [][2]int
	Key    uint64
	// BudgetMS is the requester's remaining end-to-end deadline budget in
	// milliseconds at send time (0 = no deadline). Servers shed with
	// CodeUnavailable instead of serving past it.
	BudgetMS uint32
}

// AppendRequest appends one complete probe-layout request frame (header +
// payload) under the given opcode — the shared encoder behind
// AppendProbe, AppendRoute, and AppendVProbe, which differ only in opcode
// and in what the fault indices mean. budgetMS is the remaining deadline
// budget (0 = none).
func AppendRequest(b []byte, op byte, id, genPin uint64, budgetMS uint32, faults []int, pairs [][2]int) []byte {
	payload := probeFixedLen + 4*len(faults) + 8*len(pairs)
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	b = append(b, op)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = binary.LittleEndian.AppendUint64(b, genPin)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(faults)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(pairs)))
	b = binary.LittleEndian.AppendUint32(b, budgetMS)
	for _, e := range faults {
		b = binary.LittleEndian.AppendUint32(b, uint32(e))
	}
	for _, p := range pairs {
		b = binary.LittleEndian.AppendUint32(b, uint32(p[0]))
		b = binary.LittleEndian.AppendUint32(b, uint32(p[1]))
	}
	return b
}

// AppendProbe appends one complete probe frame (header + payload). faults
// must already be canonical — strictly ascending — which the pipelined
// client guarantees by sorting and deduplicating once per call; the server
// rejects non-canonical frames.
func AppendProbe(b []byte, id, genPin uint64, faults []int, pairs [][2]int) []byte {
	return AppendRequest(b, OpProbe, id, genPin, 0, faults, pairs)
}

// AppendRoute appends one complete route-plan request frame. Same layout
// and canonical-form rules as AppendProbe; the forbidden set is fault edge
// indices and each pair is a (source, target) route query.
func AppendRoute(b []byte, id, genPin uint64, faults []int, pairs [][2]int) []byte {
	return AppendRequest(b, OpRoute, id, genPin, 0, faults, pairs)
}

// AppendVProbe appends one complete vertex-fault probe frame. Same layout
// and canonical-form rules as AppendProbe, except the fault indices are
// vertex indices.
func AppendVProbe(b []byte, id, genPin uint64, vertices []int, pairs [][2]int) []byte {
	return AppendRequest(b, OpVProbe, id, genPin, 0, vertices, pairs)
}

// decodeProbeLike decodes a probe-layout payload into req, hashing the
// fault indices incrementally from seed (the cache-key namespace).
func decodeProbeLike(payload []byte, req *ProbeReq, seed uint64) error {
	if len(payload) < probeFixedLen {
		return fmt.Errorf("%w: truncated probe header", ErrFrame)
	}
	req.ID = binary.LittleEndian.Uint64(payload)
	req.GenPin = binary.LittleEndian.Uint64(payload[8:])
	nFaults := int(binary.LittleEndian.Uint32(payload[16:]))
	nPairs := int(binary.LittleEndian.Uint32(payload[20:]))
	req.BudgetMS = binary.LittleEndian.Uint32(payload[24:])
	if want := probeFixedLen + 4*nFaults + 8*nPairs; nFaults < 0 || nPairs < 0 || want != len(payload) {
		return fmt.Errorf("%w: probe counts disagree with payload length", ErrFrame)
	}
	rest := payload[probeFixedLen:]
	req.Faults = req.Faults[:0]
	key := seed
	prev := int64(-1)
	for i := 0; i < nFaults; i++ {
		e := binary.LittleEndian.Uint32(rest[4*i:])
		if int64(e) <= prev {
			return fmt.Errorf("%w: fault indices not strictly ascending (canonical form required)", ErrFrame)
		}
		prev = int64(e)
		req.Faults = append(req.Faults, int(e))
		key = faultKeyStep(key, uint64(e))
	}
	req.Key = key
	rest = rest[4*nFaults:]
	req.Pairs = req.Pairs[:0]
	for i := 0; i < nPairs; i++ {
		req.Pairs = append(req.Pairs, [2]int{
			int(binary.LittleEndian.Uint32(rest[8*i:])),
			int(binary.LittleEndian.Uint32(rest[8*i+4:])),
		})
	}
	return nil
}

// DecodeProbe decodes an OpProbe payload into req, reusing req's slices.
// The fault edges must be strictly ascending — the canonical form — or the
// frame is rejected; req.Key is left as FaultKey(req.Faults), computed in
// the same pass. The counts are validated against the payload length
// before any slice is grown, so a hostile frame cannot force a large
// allocation.
func DecodeProbe(payload []byte, req *ProbeReq) error {
	return decodeProbeLike(payload, req, fnv64Offset)
}

// DecodeRoute decodes an OpRoute payload. The layout is OpProbe's, and so
// is the cache-key namespace: route plans live on the same compiled
// edge-fault sets as connectivity probes, so req.Key is FaultKey(Faults).
func DecodeRoute(payload []byte, req *ProbeReq) error {
	return decodeProbeLike(payload, req, fnv64Offset)
}

// DecodeVProbe decodes an OpVProbe payload. The layout is OpProbe's, but
// the fault indices are vertices and req.Key is VertexFaultKey(Faults) —
// the vertex cache-key namespace.
func DecodeVProbe(payload []byte, req *ProbeReq) error {
	return decodeProbeLike(payload, req, vertexKeySeed)
}

// probeRespFixedLen is the fixed part of an OpProbeResp payload.
const probeRespFixedLen = 8 + 1 + 8 + 4 + 4

// flagCacheHit marks a response served from an already-compiled cache
// entry. flagApprox marks a degraded-mode answer — the fault set exceeded
// the scheme's f budget and the answer came from the spanner-backed
// approximation (DESIGN.md §3.15) instead of an exact decode.
const (
	flagCacheHit = 1 << 0
	flagApprox   = 1 << 1
)

// appendConnResp appends one complete connectivity-bitmap response frame
// under the given opcode — shared by OpProbeResp and OpVProbeResp, which
// have identical layouts.
func appendConnResp(b []byte, op byte, id uint64, hit, approx bool, gen uint64, faults int, connected []bool) []byte {
	payload := probeRespFixedLen + (len(connected)+7)/8
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	b = append(b, op)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = append(b, respFlags(hit, approx))
	b = binary.LittleEndian.AppendUint64(b, gen)
	b = binary.LittleEndian.AppendUint32(b, uint32(faults))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(connected)))
	var cur byte
	for i, ok := range connected {
		if ok {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if len(connected)%8 != 0 {
		b = append(b, cur)
	}
	return b
}

func respFlags(hit, approx bool) byte {
	var flags byte
	if hit {
		flags |= flagCacheHit
	}
	if approx {
		flags |= flagApprox
	}
	return flags
}

// AppendProbeResp appends one complete probe response frame. The connected
// answers are packed as a bitmap, LSB-first within each byte.
func AppendProbeResp(b []byte, id uint64, hit bool, gen uint64, faults int, connected []bool) []byte {
	return appendConnResp(b, OpProbeResp, id, hit, false, gen, faults, connected)
}

// AppendVProbeResp appends one complete vertex-fault probe response frame:
// OpProbeResp's layout under OpVProbeResp, with the approx flag available.
func AppendVProbeResp(b []byte, id uint64, hit, approx bool, gen uint64, faults int, connected []bool) []byte {
	return appendConnResp(b, OpVProbeResp, id, hit, approx, gen, faults, connected)
}

// ProbeResp is one decoded probe response. Connected is refilled in place
// from the caller-passed destination slice. Approx mirrors the frame's
// degraded-mode flag (always false on OpProbeResp).
type ProbeResp struct {
	ID        uint64
	CacheHit  bool
	Approx    bool
	Gen       uint64
	Faults    int
	Connected []bool
}

// DecodeProbeResp decodes an OpProbeResp or OpVProbeResp payload (they
// share a layout), unpacking the bitmap into dst (reused, returned inside
// resp.Connected).
func DecodeProbeResp(payload []byte, dst []bool, resp *ProbeResp) error {
	if len(payload) < probeRespFixedLen {
		return fmt.Errorf("%w: truncated probe response", ErrFrame)
	}
	resp.ID = binary.LittleEndian.Uint64(payload)
	resp.CacheHit = payload[8]&flagCacheHit != 0
	resp.Approx = payload[8]&flagApprox != 0
	resp.Gen = binary.LittleEndian.Uint64(payload[9:])
	resp.Faults = int(binary.LittleEndian.Uint32(payload[17:]))
	nPairs := int(binary.LittleEndian.Uint32(payload[21:]))
	bitmap := payload[probeRespFixedLen:]
	if nPairs < 0 || len(bitmap) != (nPairs+7)/8 {
		return fmt.Errorf("%w: probe response bitmap disagrees with pair count", ErrFrame)
	}
	dst = dst[:0]
	for i := 0; i < nPairs; i++ {
		dst = append(dst, bitmap[i/8]&(1<<(i%8)) != 0)
	}
	resp.Connected = dst
	return nil
}

// routeRespFixedLen is the fixed part of an OpRouteResp payload.
const routeRespFixedLen = 8 + 1 + 8 + 4 + 4

// RouteRespSize computes the encoded payload size of a route response —
// the server checks it against MaxFrameBytes before encoding, since route
// paths (unlike connectivity bitmaps) can be long.
func RouteRespSize(paths [][]int) int {
	n := routeRespFixedLen
	for _, p := range paths {
		n += 1 + 4 + 4*len(p)
	}
	return n
}

// AppendRouteResp appends one complete route response frame. reachable and
// paths are parallel per-pair slices; an unreachable pair's path is
// ignored (encoded empty).
func AppendRouteResp(b []byte, id uint64, hit, approx bool, gen uint64, faults int, reachable []bool, paths [][]int) []byte {
	payload := routeRespFixedLen
	for i, p := range paths {
		payload += 1 + 4
		if reachable[i] {
			payload += 4 * len(p)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	b = append(b, OpRouteResp)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = append(b, respFlags(hit, approx))
	b = binary.LittleEndian.AppendUint64(b, gen)
	b = binary.LittleEndian.AppendUint32(b, uint32(faults))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(paths)))
	for i, p := range paths {
		if reachable[i] {
			b = append(b, 1)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
			for _, v := range p {
				b = binary.LittleEndian.AppendUint32(b, uint32(v))
			}
		} else {
			b = append(b, 0)
			b = binary.LittleEndian.AppendUint32(b, 0)
		}
	}
	return b
}

// RouteResp is one decoded route response. Reachable and Paths are
// parallel per-pair slices; an unreachable pair has a nil path.
type RouteResp struct {
	ID        uint64
	CacheHit  bool
	Approx    bool
	Gen       uint64
	Faults    int
	Reachable []bool
	Paths     [][]int
}

// DecodeRouteResp decodes an OpRouteResp payload. Each pathLen is
// validated against the remaining payload before its slice is allocated,
// so a hostile frame cannot force a large allocation.
func DecodeRouteResp(payload []byte, resp *RouteResp) error {
	if len(payload) < routeRespFixedLen {
		return fmt.Errorf("%w: truncated route response", ErrFrame)
	}
	resp.ID = binary.LittleEndian.Uint64(payload)
	resp.CacheHit = payload[8]&flagCacheHit != 0
	resp.Approx = payload[8]&flagApprox != 0
	resp.Gen = binary.LittleEndian.Uint64(payload[9:])
	resp.Faults = int(binary.LittleEndian.Uint32(payload[17:]))
	nRoutes := int(binary.LittleEndian.Uint32(payload[21:]))
	rest := payload[routeRespFixedLen:]
	resp.Reachable = resp.Reachable[:0]
	resp.Paths = resp.Paths[:0]
	for i := 0; i < nRoutes; i++ {
		if len(rest) < 5 {
			return fmt.Errorf("%w: truncated route leg", ErrFrame)
		}
		ok := rest[0] != 0
		pathLen := int(binary.LittleEndian.Uint32(rest[1:]))
		rest = rest[5:]
		if pathLen < 0 || len(rest) < 4*pathLen {
			return fmt.Errorf("%w: route path length disagrees with payload", ErrFrame)
		}
		var path []int
		if ok {
			path = make([]int, pathLen)
			for j := range path {
				path[j] = int(binary.LittleEndian.Uint32(rest[4*j:]))
			}
		}
		rest = rest[4*pathLen:]
		resp.Reachable = append(resp.Reachable, ok)
		resp.Paths = append(resp.Paths, path)
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: route response trailing bytes", ErrFrame)
	}
	return nil
}

// AppendError appends one complete error frame.
func AppendError(b []byte, id uint64, code uint16, msg string) []byte {
	if len(msg) > MaxFrameBytes-16 {
		msg = msg[:MaxFrameBytes-16]
	}
	payload := 8 + 2 + len(msg)
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	b = append(b, OpError)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = binary.LittleEndian.AppendUint16(b, code)
	return append(b, msg...)
}

// DecodeError decodes an OpError payload. The message is copied into a
// string — the error path may allocate.
func DecodeError(payload []byte) (id uint64, code uint16, msg string, err error) {
	if len(payload) < 10 {
		return 0, 0, "", fmt.Errorf("%w: truncated error frame", ErrFrame)
	}
	return binary.LittleEndian.Uint64(payload),
		binary.LittleEndian.Uint16(payload[8:]),
		string(payload[10:]), nil
}

// AppendLogSub appends a framed OpLogSub subscription request: stream
// genlog records with gen > afterGen.
func AppendLogSub(b []byte, afterGen uint64) []byte {
	b = binary.LittleEndian.AppendUint32(b, 8)
	b = append(b, OpLogSub)
	return binary.LittleEndian.AppendUint64(b, afterGen)
}

// DecodeLogSub decodes an OpLogSub payload.
func DecodeLogSub(payload []byte) (afterGen uint64, err error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: log-sub payload %d bytes, want 8", ErrFrame, len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// AppendLogRecord appends a framed OpLogRecord carrying one genlog record
// payload verbatim. The payload is self-describing; no inner envelope.
func AppendLogRecord(b []byte, record []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(record)))
	b = append(b, OpLogRecord)
	return append(b, record...)
}

// Reader reads frames off a connection. Frames that fit the bufio buffer
// are returned as direct aliases of it (zero-copy): the payload is valid
// only until the next call to Next, which discards it. Oversized frames
// fall back to one reused scratch buffer.
type Reader struct {
	br       *bufio.Reader
	scratch  []byte
	pending  int // bytes of the previously returned frame still to discard
	maxFrame int // payload cap; 0 = MaxFrameBytes
}

// NewReader wraps an existing bufio.Reader (so the caller controls buffer
// size and can interleave handshake reads).
func NewReader(br *bufio.Reader) *Reader {
	return &Reader{br: br}
}

// SetMaxFrame raises (or lowers) the per-frame payload cap from the
// default MaxFrameBytes. Genlog-tailing connections raise it to the log's
// record bound; request/response connections keep the default.
func (r *Reader) SetMaxFrame(n int) { r.maxFrame = n }

// Buffered reports how many bytes are ready without blocking — the frame
// loop uses it to batch response flushes while requests are still queued
// (the pipelining fast path).
func (r *Reader) Buffered() int {
	return r.br.Buffered() - r.pending
}

// Next returns the next frame's opcode and payload. The payload is valid
// only until the following Next call. Errors are either IO errors from the
// connection or ErrFrame-wrapped protocol violations; both mean the
// connection must be dropped (framing cannot be resynchronized).
func (r *Reader) Next() (op byte, payload []byte, err error) {
	if r.pending > 0 {
		if _, err := r.br.Discard(r.pending); err != nil {
			return 0, nil, err
		}
		r.pending = 0
	}
	hdr, err := r.br.Peek(frameHeaderLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	op = hdr[4]
	limit := uint32(MaxFrameBytes)
	if r.maxFrame > 0 {
		limit = uint32(r.maxFrame)
	}
	if n > limit {
		return 0, nil, ErrTooLarge
	}
	total := frameHeaderLen + int(n)
	if total <= r.br.Size() {
		buf, err := r.br.Peek(total)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
		r.pending = total
		return op, buf[frameHeaderLen:], nil
	}
	// Oversized frame: copy through the reused scratch buffer. The length
	// was already bounded by MaxFrameBytes above.
	if _, err := r.br.Discard(frameHeaderLen); err != nil {
		return 0, nil, err
	}
	if cap(r.scratch) < int(n) {
		r.scratch = make([]byte, n)
	}
	buf := r.scratch[:n]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return op, buf, nil
}
