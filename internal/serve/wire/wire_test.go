package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"io"
	"math/rand"
	"testing"
)

// TestFaultKeyMatchesHashFnv pins FaultKey to the stdlib FNV-1a it inlines:
// the serving cache was keyed by hash/fnv before the wire package became
// the source of truth, so any drift here would silently split the cache
// between the two protocol surfaces.
func TestFaultKeyMatchesHashFnv(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		canon := make([]int, rng.Intn(20))
		prev := -1
		for i := range canon {
			prev += 1 + rng.Intn(50)
			canon[i] = prev
		}
		h := fnv.New64a()
		var buf [8]byte
		for _, e := range canon {
			binary.LittleEndian.PutUint64(buf[:], uint64(e))
			h.Write(buf[:])
		}
		if got, want := FaultKey(canon), h.Sum64(); got != want {
			t.Fatalf("FaultKey(%v) = %#x, hash/fnv gives %#x", canon, got, want)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	if err := ParseClientHello(AppendClientHello(nil)); err != nil {
		t.Fatalf("client hello round trip: %v", err)
	}
	gen, err := ParseServerHello(AppendServerHello(nil, 42))
	if err != nil || gen != 42 {
		t.Fatalf("server hello round trip: gen=%d err=%v", gen, err)
	}
	bad := AppendClientHello(nil)
	bad[4] = Version + 1
	if err := ParseClientHello(bad); !errors.Is(err, ErrFrame) {
		t.Fatalf("version mismatch accepted: %v", err)
	}
	if _, err := ParseServerHello([]byte("FTCW")); !errors.Is(err, ErrFrame) {
		t.Fatalf("short server hello accepted: %v", err)
	}
}

func TestProbeRoundTrip(t *testing.T) {
	faults := []int{1, 5, 9, 200}
	pairs := [][2]int{{0, 1}, {7, 3}, {100, 100}}
	frame := AppendProbe(nil, 77, 3, faults, pairs)

	var req ProbeReq
	if err := DecodeProbe(frame[frameHeaderLen:], &req); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if req.ID != 77 || req.GenPin != 3 {
		t.Fatalf("id/genPin: got %d/%d", req.ID, req.GenPin)
	}
	if len(req.Faults) != len(faults) {
		t.Fatalf("faults: got %v", req.Faults)
	}
	for i := range faults {
		if req.Faults[i] != faults[i] {
			t.Fatalf("faults: got %v want %v", req.Faults, faults)
		}
	}
	if len(req.Pairs) != len(pairs) {
		t.Fatalf("pairs: got %v", req.Pairs)
	}
	for i := range pairs {
		if req.Pairs[i] != pairs[i] {
			t.Fatalf("pairs: got %v want %v", req.Pairs, pairs)
		}
	}
	if req.Key != FaultKey(faults) {
		t.Fatalf("incremental key %#x != FaultKey %#x", req.Key, FaultKey(faults))
	}
}

func TestDecodeProbeRejectsNonCanonical(t *testing.T) {
	var req ProbeReq
	for _, faults := range [][]int{{5, 5}, {9, 3}, {0, 1, 1}} {
		frame := AppendProbe(nil, 1, 0, faults, nil)
		if err := DecodeProbe(frame[frameHeaderLen:], &req); !errors.Is(err, ErrFrame) {
			t.Fatalf("non-canonical faults %v accepted: %v", faults, err)
		}
	}
}

func TestDecodeProbeRejectsHostileCounts(t *testing.T) {
	// A frame that announces huge counts but carries no bytes for them must
	// be rejected before any slice is grown to the announced size.
	payload := make([]byte, probeFixedLen)
	binary.LittleEndian.PutUint32(payload[16:], 1<<30) // nFaults
	binary.LittleEndian.PutUint32(payload[20:], 1<<30) // nPairs
	var req ProbeReq
	if err := DecodeProbe(payload, &req); !errors.Is(err, ErrFrame) {
		t.Fatalf("hostile counts accepted: %v", err)
	}
	if cap(req.Faults) > 0 || cap(req.Pairs) > 0 {
		t.Fatalf("hostile counts grew slices: faults cap %d, pairs cap %d", cap(req.Faults), cap(req.Pairs))
	}
}

func TestProbeRespRoundTrip(t *testing.T) {
	for _, nPairs := range []int{0, 1, 7, 8, 9, 16, 100} {
		connected := make([]bool, nPairs)
		for i := range connected {
			if i%3 == 0 {
				connected[i] = true
			}
		}
		frame := AppendProbeResp(nil, 9, true, 5, 2, connected)
		var resp ProbeResp
		if err := DecodeProbeResp(frame[frameHeaderLen:], nil, &resp); err != nil {
			t.Fatalf("nPairs=%d decode: %v", nPairs, err)
		}
		if resp.ID != 9 || !resp.CacheHit || resp.Gen != 5 || resp.Faults != 2 {
			t.Fatalf("nPairs=%d header fields: %+v", nPairs, resp)
		}
		if len(resp.Connected) != nPairs {
			t.Fatalf("nPairs=%d got %d answers", nPairs, len(resp.Connected))
		}
		for i := range connected {
			if resp.Connected[i] != connected[i] {
				t.Fatalf("nPairs=%d answer %d: got %v want %v", nPairs, i, resp.Connected[i], connected[i])
			}
		}
	}
}

// TestRouteAndVProbeRoundTrip covers the query-product request codecs:
// same payload layout as probes, different opcode and — for vertex faults
// — a different cache-key namespace.
func TestRouteAndVProbeRoundTrip(t *testing.T) {
	faults := []int{2, 3, 11}
	pairs := [][2]int{{1, 9}, {4, 4}}

	var req ProbeReq
	frame := AppendRoute(nil, 5, 7, faults, pairs)
	if frame[frameHeaderLen-1] != OpRoute {
		t.Fatalf("route opcode: %#x", frame[frameHeaderLen-1])
	}
	if err := DecodeRoute(frame[frameHeaderLen:], &req); err != nil {
		t.Fatalf("route decode: %v", err)
	}
	if req.ID != 5 || req.GenPin != 7 || req.Key != FaultKey(faults) {
		t.Fatalf("route fields: %+v (want key %#x)", req, FaultKey(faults))
	}

	frame = AppendVProbe(nil, 6, 0, faults, pairs)
	if frame[frameHeaderLen-1] != OpVProbe {
		t.Fatalf("vprobe opcode: %#x", frame[frameHeaderLen-1])
	}
	if err := DecodeVProbe(frame[frameHeaderLen:], &req); err != nil {
		t.Fatalf("vprobe decode: %v", err)
	}
	if req.Key != VertexFaultKey(faults) {
		t.Fatalf("vprobe key %#x, want VertexFaultKey %#x", req.Key, VertexFaultKey(faults))
	}
	// The namespaces must never collide for the same canonical indices.
	if FaultKey(faults) == VertexFaultKey(faults) {
		t.Fatalf("edge and vertex key namespaces collide on %v", faults)
	}
}

func TestVProbeRespRoundTrip(t *testing.T) {
	connected := []bool{true, false, true, true}
	frame := AppendVProbeResp(nil, 12, true, true, 9, 3, connected)
	if frame[frameHeaderLen-1] != OpVProbeResp {
		t.Fatalf("opcode: %#x", frame[frameHeaderLen-1])
	}
	var resp ProbeResp
	if err := DecodeProbeResp(frame[frameHeaderLen:], nil, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.ID != 12 || !resp.CacheHit || !resp.Approx || resp.Gen != 9 || resp.Faults != 3 {
		t.Fatalf("fields: %+v", resp)
	}
	for i := range connected {
		if resp.Connected[i] != connected[i] {
			t.Fatalf("answer %d: got %v", i, resp.Connected[i])
		}
	}
	// The exact probe response must decode with Approx false.
	frame = AppendProbeResp(nil, 1, false, 2, 1, connected)
	if err := DecodeProbeResp(frame[frameHeaderLen:], nil, &resp); err != nil || resp.Approx {
		t.Fatalf("exact probe resp: approx=%v err=%v", resp.Approx, err)
	}
}

func TestRouteRespRoundTrip(t *testing.T) {
	reach := []bool{true, false, true}
	paths := [][]int{{0, 4, 2}, nil, {7}}
	frame := AppendRouteResp(nil, 3, true, false, 8, 2, reach, paths)
	if want, got := RouteRespSize(paths), len(frame)-frameHeaderLen; got != want {
		t.Fatalf("RouteRespSize %d, encoded payload %d", want, got)
	}
	var resp RouteResp
	if err := DecodeRouteResp(frame[frameHeaderLen:], &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.ID != 3 || !resp.CacheHit || resp.Approx || resp.Gen != 8 || resp.Faults != 2 {
		t.Fatalf("fields: %+v", resp)
	}
	if len(resp.Reachable) != 3 || !resp.Reachable[0] || resp.Reachable[1] || !resp.Reachable[2] {
		t.Fatalf("reachable: %v", resp.Reachable)
	}
	if len(resp.Paths) != 3 || resp.Paths[1] != nil {
		t.Fatalf("paths: %v", resp.Paths)
	}
	for i, want := range paths {
		if len(resp.Paths[i]) != len(want) {
			t.Fatalf("path %d: got %v want %v", i, resp.Paths[i], want)
		}
		for j := range want {
			if resp.Paths[i][j] != want[j] {
				t.Fatalf("path %d: got %v want %v", i, resp.Paths[i], want)
			}
		}
	}
}

func TestDecodeRouteRespRejectsHostileLengths(t *testing.T) {
	// Announce one route whose path length points far past the payload:
	// the decoder must reject before allocating the announced size.
	frame := AppendRouteResp(nil, 1, false, false, 1, 0, []bool{true}, [][]int{{1, 2}})
	payload := append([]byte(nil), frame[frameHeaderLen:]...)
	binary.LittleEndian.PutUint32(payload[routeRespFixedLen+1:], 1<<30)
	var resp RouteResp
	if err := DecodeRouteResp(payload, &resp); !errors.Is(err, ErrFrame) {
		t.Fatalf("hostile path length accepted: %v", err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	frame := AppendError(nil, 4, CodeConflict, "stale")
	id, code, msg, err := DecodeError(frame[frameHeaderLen:])
	if err != nil || id != 4 || code != CodeConflict || msg != "stale" {
		t.Fatalf("error round trip: id=%d code=%d msg=%q err=%v", id, code, msg, err)
	}
}

// TestReaderZeroCopyAndScratch exercises both Reader paths: small frames
// peeked out of the bufio buffer, and a frame larger than the buffer
// forced through the scratch fallback.
func TestReaderZeroCopyAndScratch(t *testing.T) {
	var stream []byte
	stream = AppendProbe(stream, 1, 0, []int{2, 4}, [][2]int{{0, 1}})
	big := make([]int, 500) // 4*500 B payload > the 256 B buffer below
	for i := range big {
		big[i] = i
	}
	stream = AppendProbe(stream, 2, 0, big, nil)
	stream = AppendError(stream, 3, CodeInternal, "x")

	r := NewReader(bufio.NewReaderSize(bytes.NewReader(stream), 256))
	var req ProbeReq

	op, payload, err := r.Next()
	if err != nil || op != OpProbe {
		t.Fatalf("frame 1: op=%#x err=%v", op, err)
	}
	if err := DecodeProbe(payload, &req); err != nil || req.ID != 1 {
		t.Fatalf("frame 1 decode: id=%d err=%v", req.ID, err)
	}

	op, payload, err = r.Next()
	if err != nil || op != OpProbe {
		t.Fatalf("frame 2 (oversized): op=%#x err=%v", op, err)
	}
	if err := DecodeProbe(payload, &req); err != nil || req.ID != 2 || len(req.Faults) != len(big) {
		t.Fatalf("frame 2 decode: id=%d nFaults=%d err=%v", req.ID, len(req.Faults), err)
	}

	op, payload, err = r.Next()
	if err != nil || op != OpError {
		t.Fatalf("frame 3: op=%#x err=%v", op, err)
	}
	if id, _, _, err := DecodeError(payload); err != nil || id != 3 {
		t.Fatalf("frame 3 decode: id=%d err=%v", id, err)
	}

	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestReaderTruncatedAndOversized(t *testing.T) {
	full := AppendProbe(nil, 1, 0, []int{1, 2, 3}, [][2]int{{0, 1}})
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bufio.NewReader(bytes.NewReader(full[:cut])))
		if _, _, err := r.Next(); err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) accepted", cut, len(full))
		}
	}

	// A length prefix beyond MaxFrameBytes fails before any read of the
	// announced payload.
	hostile := binary.LittleEndian.AppendUint32(nil, MaxFrameBytes+1)
	hostile = append(hostile, OpProbe)
	r := NewReader(bufio.NewReader(bytes.NewReader(hostile)))
	if _, _, err := r.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized length prefix: %v", err)
	}
}

// TestDecodeAllocFree guards the steady-state decode paths: with warm
// scratch, neither probe decode nor response decode allocates.
func TestDecodeAllocFree(t *testing.T) {
	frame := AppendProbe(nil, 1, 0, []int{3, 8, 11}, [][2]int{{0, 5}, {2, 2}})
	var req ProbeReq
	if err := DecodeProbe(frame[frameHeaderLen:], &req); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeProbe(frame[frameHeaderLen:], &req); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm DecodeProbe allocates %v/op", n)
	}

	respFrame := AppendProbeResp(nil, 1, false, 1, 3, []bool{true, false, true})
	var resp ProbeResp
	dst := make([]bool, 0, 16)
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeProbeResp(respFrame[frameHeaderLen:], dst, &resp); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm DecodeProbeResp allocates %v/op", n)
	}
}

// FuzzWireFrame feeds arbitrary bytes through the full frame pipeline —
// Reader framing plus every payload decoder — asserting it never panics
// and never allocates a buffer sized from an unvalidated length prefix.
func FuzzWireFrame(f *testing.F) {
	f.Add(AppendProbe(nil, 1, 0, []int{1, 2}, [][2]int{{0, 1}}))
	f.Add(AppendProbeResp(nil, 1, true, 2, 2, []bool{true, false, true}))
	f.Add(AppendError(nil, 1, CodeBadRequest, "bad"))
	f.Add(binary.LittleEndian.AppendUint32(nil, MaxFrameBytes+1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, OpProbe})
	trunc := AppendProbe(nil, 9, 9, []int{5, 6, 7}, nil)
	f.Add(trunc[:len(trunc)-3])
	// Query-product opcodes: well-formed, truncated, and hostile-length
	// seeds for each.
	f.Add(AppendRoute(nil, 2, 1, []int{0, 3}, [][2]int{{1, 2}}))
	f.Add(AppendVProbe(nil, 3, 0, []int{4}, [][2]int{{0, 5}, {6, 6}}))
	f.Add(AppendVProbeResp(nil, 4, false, true, 3, 1, []bool{false, true}))
	routeResp := AppendRouteResp(nil, 5, true, false, 2, 1, []bool{true, false}, [][]int{{0, 1, 2}, nil})
	f.Add(routeResp)
	f.Add(routeResp[:len(routeResp)-4])
	hostile := append([]byte(nil), routeResp...)
	binary.LittleEndian.PutUint32(hostile[frameHeaderLen+routeRespFixedLen+1:], 1<<31)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bufio.NewReaderSize(bytes.NewReader(data), 512))
		var req ProbeReq
		var resp ProbeResp
		var rresp RouteResp
		for {
			op, payload, err := r.Next()
			if err != nil {
				return // framing rejected — fine, as long as nothing panicked
			}
			if len(payload) > MaxFrameBytes {
				t.Fatalf("payload of %d bytes escaped MaxFrameBytes", len(payload))
			}
			switch op {
			case OpProbe:
				if err := DecodeProbe(payload, &req); err == nil {
					if FaultKey(req.Faults) != req.Key {
						t.Fatalf("incremental key mismatch for %v", req.Faults)
					}
				}
			case OpRoute:
				if err := DecodeRoute(payload, &req); err == nil {
					if FaultKey(req.Faults) != req.Key {
						t.Fatalf("route key mismatch for %v", req.Faults)
					}
				}
			case OpVProbe:
				if err := DecodeVProbe(payload, &req); err == nil {
					if VertexFaultKey(req.Faults) != req.Key {
						t.Fatalf("vertex key mismatch for %v", req.Faults)
					}
				}
			case OpProbeResp, OpVProbeResp:
				_ = DecodeProbeResp(payload, resp.Connected, &resp)
			case OpRouteResp:
				_ = DecodeRouteResp(payload, &rresp)
			case OpError:
				_, _, _, _ = DecodeError(payload)
			}
		}
	})
}

func TestLogSubRoundTrip(t *testing.T) {
	frame := AppendLogSub(nil, 0xdeadbeefcafe)
	r := NewReader(bufio.NewReader(bytes.NewReader(frame)))
	op, payload, err := r.Next()
	if err != nil || op != OpLogSub {
		t.Fatalf("Next = (%#x, %v)", op, err)
	}
	after, err := DecodeLogSub(payload)
	if err != nil || after != 0xdeadbeefcafe {
		t.Fatalf("DecodeLogSub = (%#x, %v)", after, err)
	}
	if _, err := DecodeLogSub(payload[:4]); err == nil {
		t.Fatal("short log-sub payload accepted")
	}
}

func TestLogRecordFrameAndMaxFrame(t *testing.T) {
	// A record above the default cap must be rejected at the default cap
	// and accepted once the tailing client raises it.
	record := bytes.Repeat([]byte{0x5a}, MaxFrameBytes+512)
	frame := AppendLogRecord(nil, record)

	r := NewReader(bufio.NewReader(bytes.NewReader(frame)))
	if _, _, err := r.Next(); err == nil {
		t.Fatal("oversized log record passed the default frame cap")
	}

	r = NewReader(bufio.NewReader(bytes.NewReader(frame)))
	r.SetMaxFrame(MaxFrameBytes * 2)
	op, payload, err := r.Next()
	if err != nil || op != OpLogRecord {
		t.Fatalf("Next with raised cap = (%#x, %v)", op, err)
	}
	if !bytes.Equal(payload, record) {
		t.Fatal("log record payload mangled in framing")
	}
}
