package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
	"repro/internal/workload"
)

// discardResponseWriter swallows the response so the benchmark measures
// the serving pipeline, not httptest's recorder bookkeeping.
type discardResponseWriter struct{ h http.Header }

func (w *discardResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}
func (w *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardResponseWriter) WriteHeader(int)             {}

// BenchmarkHandleConnected measures the warm batch-probe pipeline at the
// handler level — JSON decode, canonicalize+hash, one cache stab, batch
// answer, JSON encode — with allocs/op as the tracked number. The pooled
// probeScratch keeps the steady state at a handful of small allocations
// (the JSON decoder, the per-iteration request body plumbing) regardless
// of batch size; before the pooling it was one allocation per slice per
// request plus the encoder's buffer.
func BenchmarkHandleConnected(b *testing.B) {
	sch := buildScheme(b, 256, 3, 11)
	g := sch.Graph()
	srv := serve.New(sch, 64)
	h := srv.Handler()

	faults := workload.TreeEdgeFaults(g, sch.Inner().Forest, 3, rand.New(rand.NewSource(4)))
	req := serve.ConnectedRequest{FaultEdges: faults}
	for q := 0; q < 16; q++ {
		req.Pairs = append(req.Pairs, [2]int{(q * 7) % 256, (q * 13) % 256})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the cache so every measured request is the steady state.
	warm := httptest.NewRequest(http.MethodPost, "/connected", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
	}

	proto := httptest.NewRequest(http.MethodPost, "/connected", http.NoBody)
	var w discardResponseWriter
	reader := bytes.NewReader(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reader.Reset(body)
		r := proto.Clone(proto.Context())
		r.Body = io.NopCloser(reader)
		h.ServeHTTP(&w, r)
	}
}

// BenchmarkServerFaultSetWarm measures the probe-layer hot path alone —
// the per-probe cost the sharded cache is designed around: one cache stab
// resolving the compiled FaultSet plus one zero-alloc Connected probe.
func BenchmarkServerFaultSetWarm(b *testing.B) {
	sch := buildScheme(b, 256, 3, 11)
	g := sch.Graph()
	srv := serve.New(sch, 64)
	faults := workload.TreeEdgeFaults(g, sch.Inner().Forest, 3, rand.New(rand.NewSource(4)))
	if _, _, err := srv.FaultSet(faults); err != nil {
		b.Fatal(err)
	}
	s, t := sch.VertexLabel(0), sch.VertexLabel(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, _, err := srv.FaultSet(faults)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fs.Connected(s, t); err != nil {
			b.Fatal(err)
		}
	}
}
