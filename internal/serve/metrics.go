package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// The Prometheus-format metrics surface: GET /metrics renders the same
// counters as /stats in the text exposition format, hand-rolled (no
// client library dependency — the format is lines of `name{labels} value`
// with # HELP / # TYPE preambles). This is the first piece of the
// replicated-tier ops story: a fleet of ftcserve replicas becomes
// scrapeable by any standard Prometheus/Grafana stack, and the per-shard
// cache counters make occupancy skew after an /update storm visible
// without shelling into the box.

// metricsNamespace prefixes every exported series.
const metricsNamespace = "ftcserve"

// handleMetrics renders the serving counters in Prometheus text format.
// The exposition is rebuilt per scrape from the same atomics /stats reads
// — scrapes never take the cache shard locks beyond the size reads /stats
// already performs.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	var b strings.Builder
	b.Grow(2048)

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			metricsNamespace, name, help, metricsNamespace, name, metricsNamespace, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n%s_%s %s\n",
			metricsNamespace, name, help, metricsNamespace, name, metricsNamespace, name,
			strconv.FormatFloat(v, 'g', -1, 64))
	}

	counter("probes_total", "Connectivity probes answered (pairs, both protocols).", st.Probes)
	counter("route_plans_total", "Route-plan legs answered (both protocols, either confidence).", st.RoutePlans)
	counter("vprobes_total", "Vertex-fault probes answered (pairs, both protocols, either confidence).", st.VProbes)
	counter("approx_answers_total", "Degraded-mode (spanner-backed) answers across all query products.", st.ApproxAnswers)
	counter("http_requests_total", "POST /connected requests received.", st.Requests)
	counter("bin_requests_total", "Binary-protocol frames received.", st.BinRequests)
	counter("updates_total", "POST /update batches committed.", st.Updates)
	counter("frame_decode_errors_total", "Binary frames rejected as malformed.", st.FrameErrors)
	counter("update_commits_total", "Generations committed (local /update commits plus replayed replica records).", st.Commits)
	counter("genlog_records_appended_total", "Generation-log records appended by this primary.", st.LogAppended)
	counter("snapshot_stream_failures_total", "GET /snapshot responses aborted mid-body after a stream error.", st.SnapFailures)
	counter("cache_evicted_by_update_total", "Cache entries evicted by update sweeps.", st.CacheEvicted)
	counter("cache_rebased_by_update_total", "Cache entries rebased across generations by update sweeps.", st.CacheRebased)
	counter("cache_evictions_total", "Cache entries displaced by capacity pressure (LRU evictions).", st.CacheCapEvict)
	// Shed counters carry a surface label so one dashboard panel shows
	// where overload pressure lands: the HTTP admission gate, the binary
	// admission/queue gates, or the per-frame deadline budget.
	fmt.Fprintf(&b, "# HELP %s_requests_shed_total Requests shed by overload protection, by surface.\n# TYPE %s_requests_shed_total counter\n",
		metricsNamespace, metricsNamespace)
	fmt.Fprintf(&b, "%s_requests_shed_total{surface=\"http\"} %d\n", metricsNamespace, st.ShedHTTP)
	fmt.Fprintf(&b, "%s_requests_shed_total{surface=\"bin\"} %d\n", metricsNamespace, st.ShedBin)
	fmt.Fprintf(&b, "%s_requests_shed_total{surface=\"deadline\"} %d\n", metricsNamespace, st.ShedDeadline)
	gauge("generation", "Current scheme generation.", float64(st.Generation))
	gauge("bin_connections", "Open binary-protocol connections.", float64(st.BinConns))
	gauge("bin_inflight_batches", "Binary-protocol frames currently being served.", float64(st.BinInflight))
	gauge("cache_capacity_entries", "Total fault-set cache capacity.", float64(st.CacheCapacity))
	gauge("uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())

	// Generation-log retention series, present only on a primary.
	if s.genlog != nil {
		counter("genlog_compactions_total", "Checkpoint-and-truncate compactions of the generation log.", st.LogCompact)
		counter("genlog_bytes_reclaimed_total", "Log-file bytes reclaimed by compaction.", st.LogReclaimed)
		gauge("genlog_records", "Records currently retained in the generation log window.", float64(st.LogRecords))
		gauge("genlog_file_bytes", "Current size of the generation-log file.", float64(st.LogFileBytes))
		gauge("genlog_checkpoint_generation", "Generation of the latest compaction checkpoint (0 when none).", float64(st.LogCkptGen))
	}

	// Replication series, present only on a tailing replica.
	if st.Replica != nil {
		rs := *st.Replica
		gauge("replica_lag_generations", "Generations behind the primary's observed head.", float64(rs.LagGenerations()))
		gauge("replica_lag_bytes", "Log-record bytes received but not yet applied.", float64(rs.BytesReceived-rs.BytesApplied))
		counter("replica_records_applied_total", "Generation-log records replayed onto the serving scheme.", rs.RecordsApplied)
		counter("replica_snapshot_loads_total", "Full snapshot (re)fetches from the primary.", rs.SnapshotLoads)
	}

	// Per-shard cache series: hit-rate collapse or occupancy skew across
	// shards is the first thing to look at when latency regresses after an
	// /update storm.
	perShard := func(name, help, typ string, get func(ShardStats) float64) {
		fmt.Fprintf(&b, "# HELP %s_%s %s\n# TYPE %s_%s %s\n",
			metricsNamespace, name, help, metricsNamespace, name, typ)
		for i, sh := range st.CacheShards {
			fmt.Fprintf(&b, "%s_%s{shard=\"%d\"} %s\n",
				metricsNamespace, name, i, strconv.FormatFloat(get(sh), 'g', -1, 64))
		}
	}
	perShard("cache_hits_total", "Fault-set cache hits per shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.Hits) })
	perShard("cache_misses_total", "Fault-set cache misses per shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.Misses) })
	perShard("cache_entries", "Compiled fault sets held per shard.", "gauge",
		func(sh ShardStats) float64 { return float64(sh.Size) })

	// The vertex-fault cache gets its own series (not a label on the edge
	// cache's) so existing dashboards and scrape checks keep their shapes.
	perVShard := func(name, help, typ string, get func(ShardStats) float64) {
		fmt.Fprintf(&b, "# HELP %s_%s %s\n# TYPE %s_%s %s\n",
			metricsNamespace, name, help, metricsNamespace, name, typ)
		for i, sh := range st.VCacheShards {
			fmt.Fprintf(&b, "%s_%s{shard=\"%d\"} %s\n",
				metricsNamespace, name, i, strconv.FormatFloat(get(sh), 'g', -1, 64))
		}
	}
	perVShard("vcache_hits_total", "Vertex-fault-set cache hits per shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.Hits) })
	perVShard("vcache_misses_total", "Vertex-fault-set cache misses per shard.", "counter",
		func(sh ShardStats) float64 { return float64(sh.Misses) })
	perVShard("vcache_entries", "Compiled vertex-fault sets held per shard.", "gauge",
		func(sh ShardStats) float64 { return float64(sh.Size) })

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
