package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/serve/genlog"
	"repro/internal/serve/wire"
)

// The replica side of the replication tier: a Replicator boots a serving
// scheme from the primary's GET /snapshot, then tails the primary's
// generation log over the binary listener (OpLogSub) and replays each
// delta record through core.ApplyDelta, publishing the resulting scheme
// atomically and sweeping the local fault-set cache through the same
// ApplyReplicatedCommit path a local commit would take. Replay is
// byte-identical to the primary's labels (delta_test.go, replica_test.go),
// so a replica answers probes indistinguishably from the primary at any
// generation it has reached.
//
// A stopped replica keeps its scheme: Stop/Start cycles resume the tail at
// the local generation and catch up from the log alone — SnapshotLoads
// only moves when the log no longer covers the replica (CodeGone), the
// primary ships a full-rebuild marker, or delta replay fails.

// replicaScheme adapts *core.Scheme to the serving surface. core.Scheme
// names its edge accessor EdgeLabel; the serve interface (shared with the
// root package's lazy LoadedScheme) calls it EdgeLabelByIndex. It also
// makes the replica a Snapshotter, so replicas can chain (a replica can
// bootstrap another replica).
type replicaScheme struct{ s *core.Scheme }

func (r replicaScheme) Graph() *graph.Graph                { return r.s.Graph() }
func (r replicaScheme) MaxFaults() int                     { return r.s.MaxFaults() }
func (r replicaScheme) Generation() uint64                 { return r.s.Generation() }
func (r replicaScheme) VertexLabel(v int) core.VertexLabel { return r.s.VertexLabel(v) }
func (r replicaScheme) EdgeLabelByIndex(e int) core.EdgeLabel {
	return r.s.EdgeLabel(e)
}

func (r replicaScheme) Save(w io.Writer) error {
	b, err := r.s.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReplicatorOptions tunes a Replicator. The zero value is usable.
type ReplicatorOptions struct {
	// CacheSize / CacheShards size the replica's fault-set cache
	// (defaults: 256 entries, automatic sharding).
	CacheSize   int
	CacheShards int

	// RedialBase / RedialMax bound the exponential backoff between tail
	// sessions after a connection failure (defaults 50ms / 2s).
	RedialBase time.Duration
	RedialMax  time.Duration

	// SnapRefetchBase / SnapRefetchMax bound a separate exponential
	// backoff applied to consecutive snapshot refetches (defaults 250ms /
	// 5s). The redial backoff resets whenever a session applies a record,
	// which a compacting primary keeps satisfying — without this second
	// clock a replica that repeatedly lands below the retained window
	// (CodeGone) would tight-loop full snapshot downloads.
	SnapRefetchBase time.Duration
	SnapRefetchMax  time.Duration

	// HTTPClient fetches /snapshot and /healthz from the primary
	// (default: a client with a 30s timeout for healthz; snapshots
	// stream without a deadline).
	HTTPClient *http.Client

	// Dialer opens the log-tail connection (default net.Dial "tcp").
	// Tests inject failures here.
	Dialer func(addr string) (net.Conn, error)

	// BinAddr overrides the binary-listener address advertised by the
	// primary's /healthz. Needed when the primary's advertised address is
	// not reachable from the replica (NAT, test harnesses).
	BinAddr string
}

func (o *ReplicatorOptions) fill() {
	if o.CacheSize <= 0 {
		o.CacheSize = 256
	}
	if o.RedialBase <= 0 {
		o.RedialBase = 50 * time.Millisecond
	}
	if o.RedialMax < o.RedialBase {
		o.RedialMax = 2 * time.Second
		if o.RedialMax < o.RedialBase {
			o.RedialMax = o.RedialBase
		}
	}
	if o.SnapRefetchBase <= 0 {
		o.SnapRefetchBase = 250 * time.Millisecond
	}
	if o.SnapRefetchMax < o.SnapRefetchBase {
		o.SnapRefetchMax = 5 * time.Second
		if o.SnapRefetchMax < o.SnapRefetchBase {
			o.SnapRefetchMax = o.SnapRefetchBase
		}
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
}

// Replicator tails one primary and owns the replica's Server. Construct
// with NewReplicator (which performs the initial snapshot bootstrap
// synchronously), serve HTTP/binary traffic from Server(), and call Start
// to begin tailing. Stop halts the tail without discarding the scheme;
// a subsequent Start resumes from the local generation.
type Replicator struct {
	primary string // primary's HTTP base URL, e.g. http://127.0.0.1:8080
	opts    ReplicatorOptions
	srv     *Server

	cur atomic.Pointer[core.Scheme] // the serving scheme; never nil after New

	// needSnapshot forces the next tail session to refetch /snapshot
	// before subscribing (set on full-rebuild markers, log gaps, CodeGone,
	// and replay failures).
	needSnapshot atomic.Bool

	// caughtUp latches true the first time a live tail session observes
	// zero generation lag after a bootstrap (or refetch). Until then the
	// replica's /healthz answers 503 with catching_up set: a freshly
	// loaded snapshot may be a stale checkpoint, so loading it is not yet
	// proof of being servable at the primary's head.
	caughtUp atomic.Bool

	state          atomic.Pointer[string]
	sourceGen      atomic.Uint64
	bytesReceived  atomic.Uint64
	bytesApplied   atomic.Uint64
	recordsApplied atomic.Uint64
	snapshotLoads  atomic.Uint64

	mu      sync.Mutex
	running bool
	stopCh  chan struct{}
	conn    net.Conn // the live tail connection, closed by Stop
	wg      sync.WaitGroup
}

// NewReplicator fetches the primary's current snapshot, loads it, and
// returns a Replicator whose Server answers probes at that generation.
// Tailing does not start until Start is called.
func NewReplicator(primaryURL string, opts ReplicatorOptions) (*Replicator, error) {
	opts.fill()
	r := &Replicator{primary: primaryURL, opts: opts}
	r.setState("syncing")
	r.srv = NewDynamicWithShards(func() Scheme {
		return replicaScheme{r.cur.Load()}
	}, nil, opts.CacheSize, opts.CacheShards)
	r.srv.SetReplicaStatusFn(r.Status)
	if err := r.bootstrap(); err != nil {
		return nil, fmt.Errorf("replica bootstrap: %w", err)
	}
	return r, nil
}

// Server is the replica's serving surface (HTTP handler, binary listener,
// stats). Its /healthz reports role "replica" with this Replicator's
// status.
func (r *Replicator) Server() *Server { return r.srv }

// Scheme is the currently served scheme snapshot.
func (r *Replicator) Scheme() *core.Scheme { return r.cur.Load() }

// Status snapshots the replication telemetry.
func (r *Replicator) Status() ReplicaStatus {
	var local uint64
	if s := r.cur.Load(); s != nil {
		local = s.Generation()
	}
	return ReplicaStatus{
		State:          *r.state.Load(),
		SourceGen:      r.sourceGen.Load(),
		LocalGen:       local,
		BytesReceived:  r.bytesReceived.Load(),
		BytesApplied:   r.bytesApplied.Load(),
		RecordsApplied: r.recordsApplied.Load(),
		SnapshotLoads:  r.snapshotLoads.Load(),
		CatchingUp:     !r.caughtUp.Load(),
	}
}

func (r *Replicator) setState(s string) { r.state.Store(&s) }

// observeSource records a newly observed primary head generation
// (monotonic max).
func (r *Replicator) observeSource(gen uint64) {
	for {
		old := r.sourceGen.Load()
		if gen <= old || r.sourceGen.CompareAndSwap(old, gen) {
			return
		}
	}
}

// Start launches the tail loop. It returns an error if already running.
func (r *Replicator) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		return errors.New("replicator already running")
	}
	r.running = true
	r.stopCh = make(chan struct{})
	r.wg.Add(1)
	go r.run(r.stopCh)
	return nil
}

// Stop halts the tail loop and waits for it to exit. The scheme and cache
// are kept; probes keep being answered at the last applied generation.
func (r *Replicator) Stop() {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return
	}
	r.running = false
	close(r.stopCh)
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.mu.Unlock()
	r.wg.Wait()
	r.setState("disconnected")
}

// setConn publishes the live tail connection so Stop can sever a blocked
// read. Returns false (and closes the conn) when Stop already won.
func (r *Replicator) setConn(stop chan struct{}, c net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-stop:
		c.Close()
		return false
	default:
	}
	r.conn = c
	return true
}

func (r *Replicator) clearConn(c net.Conn) {
	r.mu.Lock()
	if r.conn == c {
		r.conn = nil
	}
	r.mu.Unlock()
	c.Close()
}

func stopped(stop chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// run is the tail loop: one session per connection, exponential backoff
// with ±50% jitter between failed sessions, reset after a session that
// applied at least one record. Sessions that end needing a snapshot
// refetch (CodeGone, full-rebuild marker, failed bootstrap) run a second,
// slower backoff clock: applying records resets the redial backoff, so
// under retention pressure it alone would let a slow replica hammer
// /snapshot in a tight fetch→fall-behind→CodeGone loop.
func (r *Replicator) run(stop chan struct{}) {
	defer r.wg.Done()
	backoff := r.opts.RedialBase
	var snapBackoff time.Duration // 0 = previous session needed no refetch
	for !stopped(stop) {
		applied, err := r.tailOnce(stop)
		if stopped(stop) {
			return
		}
		if err != nil {
			r.setState("disconnected")
		}
		if applied > 0 {
			backoff = r.opts.RedialBase
		}
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		if errors.Is(err, errSnapshotNeeded) {
			if snapBackoff == 0 {
				snapBackoff = r.opts.SnapRefetchBase
			}
			if s := snapBackoff/2 + time.Duration(rand.Int63n(int64(snapBackoff))); s > sleep {
				sleep = s
			}
			if snapBackoff *= 2; snapBackoff > r.opts.SnapRefetchMax {
				snapBackoff = r.opts.SnapRefetchMax
			}
		} else {
			snapBackoff = 0
		}
		select {
		case <-stop:
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > r.opts.RedialMax {
			backoff = r.opts.RedialMax
		}
	}
}

// errSnapshotNeeded signals that the log cannot carry the replica forward
// and the next session must refetch a snapshot.
var errSnapshotNeeded = errors.New("snapshot refetch needed")

// tailOnce runs one tail session: (re)bootstrap if flagged, resolve the
// primary's binary address, subscribe after the local generation, and
// apply records until the connection drops or Stop closes it. Returns how
// many records were applied.
func (r *Replicator) tailOnce(stop chan struct{}) (applied int, err error) {
	if r.needSnapshot.Load() {
		if err := r.bootstrap(); err != nil {
			// needSnapshot stays set; mark the error so run() applies the
			// refetch backoff to the retry (a short/rejected snapshot body
			// lands here and must not tight-loop downloads either).
			return 0, fmt.Errorf("%w: %v", errSnapshotNeeded, err)
		}
	}
	addr, err := r.resolveBinAddrRetry(stop)
	if err != nil {
		return 0, err
	}
	conn, err := r.opts.Dialer(addr)
	if err != nil {
		return 0, err
	}
	if !r.setConn(stop, conn) {
		return 0, nil
	}
	defer r.clearConn(conn)

	if _, err := conn.Write(wire.AppendClientHello(nil)); err != nil {
		return 0, fmt.Errorf("log-tail hello: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var hello [wire.ServerHelloLen]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return 0, fmt.Errorf("log-tail hello: %w", err)
	}
	head, err := wire.ParseServerHello(hello[:])
	if err != nil {
		return 0, err
	}
	r.observeSource(head)

	local := r.cur.Load().Generation()
	if _, err := conn.Write(wire.AppendLogSub(nil, local)); err != nil {
		return 0, err
	}
	r.setState("syncing")
	r.refreshState(true)

	rd := wire.NewReader(br)
	// Log records can exceed probe frames; accept anything the log itself
	// could hold plus framing slack.
	rd.SetMaxFrame(genlog.MaxRecordBytes + 64)
	for {
		op, payload, err := rd.Next()
		if err != nil {
			if stopped(stop) {
				return applied, nil
			}
			return applied, err
		}
		switch op {
		case wire.OpLogRecord:
			r.bytesReceived.Add(uint64(len(payload)))
			if err := r.applyRecord(payload); err != nil {
				if errors.Is(err, errSnapshotNeeded) {
					r.needSnapshot.Store(true)
				}
				return applied, err
			}
			applied++
			r.bytesApplied.Add(uint64(len(payload)))
			r.recordsApplied.Add(1)
			r.refreshState(true)
		case wire.OpError:
			_, code, msg, derr := wire.DecodeError(payload)
			if derr != nil {
				return applied, derr
			}
			if code == wire.CodeGone {
				// The primary's log starts after our generation: only a
				// fresh snapshot can carry us forward.
				r.needSnapshot.Store(true)
				return applied, fmt.Errorf("%w: %s", errSnapshotNeeded, msg)
			}
			return applied, fmt.Errorf("log-tail error %d: %s", code, msg)
		default:
			return applied, fmt.Errorf("log-tail: unexpected opcode 0x%02x", op)
		}
	}
}

// applyRecord decodes one log record and replays it onto the serving
// scheme. Records at or below the local generation (possible when the
// subscription raced a concurrent append) are skipped; anything the delta
// path cannot replay escalates to a snapshot refetch.
func (r *Replicator) applyRecord(payload []byte) error {
	d, err := genlog.DecodeDelta(payload)
	if err != nil {
		return fmt.Errorf("log record decode: %w", err)
	}
	r.observeSource(d.Gen)
	cur := r.cur.Load()
	if d.Gen <= cur.Generation() {
		return nil
	}
	if d.Full {
		return fmt.Errorf("%w: full-rebuild marker at generation %d (%s)",
			errSnapshotNeeded, d.Gen, d.Reason)
	}
	rep, next, err := core.ApplyDelta(cur, d)
	if err != nil {
		// ErrDeltaGap, ErrDeltaMismatch, or any replay failure: the log
		// cannot carry this replica forward from its current generation.
		return fmt.Errorf("%w: applying delta %d->%d: %v",
			errSnapshotNeeded, d.PrevGen, d.Gen, err)
	}
	// Publish the scheme before sweeping: a probe racing the sweep sees
	// either its old-generation cache entry (replaced on mismatch) or the
	// swept cache — both sound, same as the primary's /update path.
	r.cur.Store(next)
	r.srv.ApplyReplicatedCommit(rep)
	return nil
}

// refreshState flips the health state to "ok" once the local generation
// has reached every generation observed from the primary. fromTail marks
// a live tail session: only then does zero lag latch caughtUp (clearing
// /healthz's catching_up 503) — bootstrap alone proves a snapshot loaded,
// not that the replica has served the primary's head.
func (r *Replicator) refreshState(fromTail bool) {
	if r.cur.Load().Generation() >= r.sourceGen.Load() {
		r.setState("ok")
		if fromTail {
			r.caughtUp.Store(true)
		}
	} else {
		r.setState("syncing")
	}
}

// bootstrap fetches GET /snapshot from the primary, loads it, publishes it
// as the serving scheme, and drops the entire fault-set cache (a snapshot
// reload is a full-rebuild commit as far as cached fault sets are
// concerned).
func (r *Replicator) bootstrap() error {
	resp, err := r.opts.HTTPClient.Get(r.primary + "/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET /snapshot: %s: %s", resp.Status, body)
	}
	// Failpoint "replica.snapshot": the receive side of the bootstrap
	// stream — a mid-body failure here must reject the snapshot, never
	// load a truncated one.
	data, err := io.ReadAll(faultinject.WrapReader("replica.snapshot", resp.Body))
	if err != nil {
		return fmt.Errorf("GET /snapshot: %w", err)
	}
	s, err := core.UnmarshalScheme(data)
	if err != nil {
		return fmt.Errorf("snapshot decode: %w", err)
	}
	r.cur.Store(s)
	r.srv.ApplyReplicatedCommit(&core.CommitReport{
		Gen:    s.Generation(),
		Token:  s.Token(),
		Reason: "snapshot reload",
	})
	r.snapshotLoads.Add(1)
	r.bytesReceived.Add(uint64(len(data)))
	r.bytesApplied.Add(uint64(len(data)))
	r.observeSource(s.Generation())
	r.needSnapshot.Store(false)
	r.caughtUp.Store(false)
	r.refreshState(false)
	return nil
}

// resolveBinAddrRetry wraps resolveBinAddr with a few jittered retries on
// the snapshot-refetch backoff clock: at replica start the primary's
// /healthz can be briefly down (process restarting, listener racing the
// HTTP server), and failing the whole tail session for that would double
// the outer redial clock for a hiccup that clears in milliseconds.
func (r *Replicator) resolveBinAddrRetry(stop chan struct{}) (string, error) {
	backoff := r.opts.SnapRefetchBase
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
			select {
			case <-stop:
				return "", lastErr
			case <-time.After(sleep):
			}
			if backoff *= 2; backoff > r.opts.SnapRefetchMax {
				backoff = r.opts.SnapRefetchMax
			}
		}
		addr, err := r.resolveBinAddr()
		if err == nil {
			return addr, nil
		}
		lastErr = err
	}
	return "", lastErr
}

// resolveBinAddr asks the primary's /healthz for its binary-listener
// address (unless pinned by options), substituting the primary's host when
// the listener advertises a wildcard address.
func (r *Replicator) resolveBinAddr() (string, error) {
	if r.opts.BinAddr != "" {
		return r.opts.BinAddr, nil
	}
	resp, err := r.opts.HTTPClient.Get(r.primary + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return "", fmt.Errorf("GET /healthz: %w", err)
	}
	if h.Generation > 0 {
		r.observeSource(h.Generation)
	}
	if h.BinAddr == "" {
		return "", errors.New("primary /healthz advertises no binary listener (bin_addr)")
	}
	host, port, err := net.SplitHostPort(h.BinAddr)
	if err != nil {
		return "", fmt.Errorf("primary bin_addr %q: %w", h.BinAddr, err)
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		if u, uerr := urlHost(r.primary); uerr == nil {
			host = u
		}
	}
	return net.JoinHostPort(host, port), nil
}

// urlHost extracts the host (no port) from an http(s) base URL.
func urlHost(base string) (string, error) {
	rest := base
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	if host, _, err := net.SplitHostPort(rest); err == nil {
		return host, nil
	}
	return rest, nil // no port in URL
}
