package serve_test

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/wire"
	"repro/internal/serve/wireclient"
)

// binListener starts the framed-protocol side of srv on an ephemeral port
// and tears it down (listener close + graceful drain) at test end.
func binListener(t *testing.T, srv *serve.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.ServeBin(ln); err != nil {
			t.Errorf("ServeBin: %v", err)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.ShutdownBin(ctx)
		<-done
	})
	return ln.Addr().String()
}

// TestBinMatchesHTTP drives the same probes through both protocol surfaces
// of one server and requires identical answers, cache-hit flags converging
// on the shared cache, and identical generations.
func TestBinMatchesHTTP(t *testing.T) {
	const n, f = 80, 3
	sch := buildScheme(t, n, f, 1)
	srv := serve.New(sch, 32)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	addr := binListener(t, srv)

	cl, err := wireclient.Dial(addr, wireclient.Options{Conns: 2, Inflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Generation() != sch.Generation() {
		t.Fatalf("handshake generation %d, scheme at %d", cl.Generation(), sch.Generation())
	}

	m := sch.Graph().M()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		faults := make([]int, rng.Intn(f+1))
		for i := range faults {
			faults[i] = rng.Intn(m)
		}
		pairs := make([][2]int, 1+rng.Intn(16))
		for i := range pairs {
			pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
		}
		resp, httpOut := postConnected(t, ts.URL, serve.ConnectedRequest{FaultEdges: faults, Pairs: pairs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: HTTP status %d", trial, resp.StatusCode)
		}
		binOut, hit, gen, err := cl.ProbeInto(faults, pairs, nil, 0)
		if err != nil {
			t.Fatalf("trial %d: bin probe: %v", trial, err)
		}
		if gen != httpOut.Generation {
			t.Fatalf("trial %d: bin generation %d, HTTP %d", trial, gen, httpOut.Generation)
		}
		// The HTTP probe above compiled (or hit) the shared cache entry, so
		// the bin probe of the same event must hit.
		if !hit {
			t.Fatalf("trial %d: bin probe missed a cache entry HTTP just populated (faults %v)", trial, faults)
		}
		if len(binOut) != len(httpOut.Connected) {
			t.Fatalf("trial %d: %d bin answers, %d HTTP", trial, len(binOut), len(httpOut.Connected))
		}
		for i := range binOut {
			if binOut[i] != httpOut.Connected[i] {
				t.Fatalf("trial %d pair %d: bin %v, HTTP %v (faults %v, pair %v)",
					trial, i, binOut[i], httpOut.Connected[i], faults, pairs[i])
			}
		}
	}

	st := srv.Stats()
	if st.BinRequests == 0 {
		t.Fatal("bin_requests counter never moved")
	}
}

// TestBinErrorFrames exercises the failure surface: out-of-range pairs,
// fault budget violations, and generation-pin mismatches must come back as
// typed error frames with the HTTP-aligned codes, without wedging the
// connection for later valid probes.
func TestBinErrorFrames(t *testing.T) {
	const n, f = 60, 2
	sch := buildScheme(t, n, f, 3)
	srv := serve.New(sch, 16)
	addr := binListener(t, srv)
	cl, err := wireclient.Dial(addr, wireclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	wantCode := func(tag string, err error, code uint16) {
		t.Helper()
		var se *wireclient.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("%s: want ServerError, got %v", tag, err)
		}
		if se.Code != code {
			t.Fatalf("%s: code %d, want %d (%s)", tag, se.Code, code, se.Msg)
		}
	}

	_, err = cl.Probe(nil, [][2]int{{0, n}})
	wantCode("pair out of range", err, wire.CodeBadRequest)

	_, err = cl.Probe([]int{0, 1, 2}, [][2]int{{0, 1}}) // budget is 2
	wantCode("fault budget", err, wire.CodeUnprocessable)

	_, err = cl.Probe([]int{sch.Graph().M()}, [][2]int{{0, 1}})
	wantCode("fault edge out of range", err, wire.CodeUnprocessable)

	_, _, _, err = cl.ProbeInto(nil, [][2]int{{0, 1}}, nil, sch.Generation()+7)
	wantCode("generation pin", err, wire.CodeConflict)

	// The connection survives typed errors: a valid probe still answers.
	if _, err := cl.Probe(nil, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("valid probe after error frames: %v", err)
	}

	// A matching pin is accepted.
	if _, _, _, err := cl.ProbeInto(nil, [][2]int{{0, 1}}, nil, sch.Generation()); err != nil {
		t.Fatalf("matching generation pin rejected: %v", err)
	}
}

// TestBinMalformedFrameDropsConnection sends a corrupt frame down a raw
// connection and requires the server to answer with an error frame, close
// the connection, and count the decode error — without affecting a second,
// well-behaved connection.
func TestBinMalformedFrameDropsConnection(t *testing.T) {
	sch := buildScheme(t, 40, 2, 5)
	srv := serve.New(sch, 16)
	addr := binListener(t, srv)

	good, err := wireclient.Dial(addr, wireclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write(wire.AppendClientHello(nil)); err != nil {
		t.Fatal(err)
	}
	hello := make([]byte, wire.ServerHelloLen)
	if _, err := io.ReadFull(raw, hello); err != nil {
		t.Fatal(err)
	}
	// Valid header, non-canonical fault edges: decodes as a frame, fails
	// DecodeProbe, must be answered with OpError and then dropped.
	bad := wire.AppendProbe(nil, 1, 0, []int{5, 5}, nil)
	if _, err := raw.Write(bad); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	total := 0
	for {
		n, err := raw.Read(buf[total:])
		total += n
		if err != nil {
			break // server closed after the error frame — expected
		}
	}
	if total < 5 || buf[4] != wire.OpError {
		t.Fatalf("want an OpError frame before close, got %d bytes (op %#x)", total, buf[4])
	}

	if st := srv.Stats(); st.FrameErrors == 0 {
		t.Fatal("frame_decode_errors counter never moved")
	}
	if _, err := good.Probe(nil, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("well-behaved connection affected by peer's protocol violation: %v", err)
	}
}

// TestBinUpdateChurnRace is the binary-protocol analog of
// TestUpdateChurnRace (run under -race): pipelined clients hammer the
// frame path while /update batches churn the topology. Every answer must
// come from a single generation — the ErrStaleLabel retry makes straddling
// probes settle, so clients see old or new topology, never an error from
// the race, except the explicit generation-conflict code when they pin.
func TestBinUpdateChurnRace(t *testing.T) {
	const n, f = 120, 3
	nw := openNetwork(t, n, f, 11)
	srv := dynamicServer(t, nw, 64)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	addr := binListener(t, srv)

	cl, err := wireclient.Dial(addr, wireclient.Options{Conns: 3, Inflight: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	m0 := nw.Snapshot().Graph().M()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Updater: churn random non-tree-critical edges via the HTTP surface
	// (the two surfaces share the commit path and cache sweep).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 40; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			// Alternate add/remove of the same endpoint pair; failures
			// (parallel edge, missing edge) are fine — some batches commit.
			status, _ := postJSON[serve.UpdateResponse](t, ts.URL+"/update", serve.UpdateRequest{Add: [][2]int{{u, v}}})
			if status == http.StatusOK {
				postJSON[serve.UpdateResponse](t, ts.URL+"/update", serve.UpdateRequest{Remove: [][2]int{{u, v}}})
			}
		}
	}()

	// Probers: pipelined batches against shifting generations. Fault
	// indices are bounded by the initial edge count minus headroom churn;
	// an index that lands out of range mid-churn comes back as a typed
	// error, which is acceptable — what is not acceptable is a transport
	// error, a desync, or a mixed-generation answer (ErrStaleLabel escaping
	// the retry).
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			out := make([]bool, 0, 8)
			for i := 0; i < 300; i++ {
				faults := make([]int, rng.Intn(f+1))
				for j := range faults {
					faults[j] = rng.Intn(m0 - f) // stay below initial m to keep most probes valid
				}
				pairs := make([][2]int, 1+rng.Intn(8))
				for j := range pairs {
					pairs[j] = [2]int{rng.Intn(n), rng.Intn(n)}
				}
				var err error
				out, _, _, err = cl.ProbeInto(faults, pairs, out, 0)
				if err != nil {
					var se *wireclient.ServerError
					if errors.As(err, &se) {
						continue // typed rejection mid-churn is fine
					}
					t.Errorf("prober: transport/protocol failure: %v", err)
					return
				}
				if len(out) != len(pairs) {
					t.Errorf("prober: %d answers for %d pairs", len(out), len(pairs))
					return
				}
			}
		}(int64(w) * 7)
	}

	wg.Wait()
	close(stop)
}

// TestShutdownBinGraceful checks the drain path: after ShutdownBin no new
// connections are served, and a client blocked idle on a persistent
// connection is cleanly disconnected rather than wedged.
func TestShutdownBinGraceful(t *testing.T) {
	sch := buildScheme(t, 40, 2, 8)
	srv := serve.New(sch, 16)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeBin(ln) }()

	cl, err := wireclient.Dial(ln.Addr().String(), wireclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Probe(nil, [][2]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}

	ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	srv.ShutdownBin(ctx)
	if time.Since(start) > 3*time.Second {
		t.Fatalf("drain of an idle connection took %v (deadline poke not working?)", time.Since(start))
	}
	<-done

	// The drained connection is dead: the next probe fails instead of
	// hanging.
	if _, err := cl.Probe(nil, [][2]int{{0, 1}}); err == nil {
		t.Fatal("probe succeeded on a drained connection")
	}
}

// TestMetricsEndpoint scrapes GET /metrics after traffic on both protocol
// surfaces and checks the Prometheus exposition carries the counters.
func TestMetricsEndpoint(t *testing.T) {
	sch := buildScheme(t, 60, 2, 13)
	srv := serve.New(sch, 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	addr := binListener(t, srv)

	if resp, _ := postConnected(t, ts.URL, serve.ConnectedRequest{FaultEdges: []int{1}, Pairs: [][2]int{{0, 1}}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP probe: %d", resp.StatusCode)
	}
	cl, err := wireclient.Dial(addr, wireclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Probe([]int{1}, [][2]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()

	for _, want := range []string{
		"ftcserve_probes_total 2",
		"ftcserve_http_requests_total 1",
		"ftcserve_bin_requests_total 1",
		"ftcserve_frame_decode_errors_total 0",
		"ftcserve_bin_connections 1",
		`ftcserve_cache_hits_total{shard="`,
		`ftcserve_cache_misses_total{shard="`,
		"# TYPE ftcserve_generation gauge",
		"# TYPE ftcserve_probes_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}

// TestHandleFrameAllocs is the acceptance bar of the binary protocol: at
// warm-cache steady state one pipelined batch-16 probe must cost at most 4
// allocations end to end through the serving path (the JSON path costs 16;
// see BenchmarkHandleConnected). In practice the frame path is
// allocation-free once scratch is warm.
func TestHandleFrameAllocs(t *testing.T) {
	sch := buildScheme(t, 1024, 4, 21)
	srv := serve.New(sch, 64)

	faults := []int{3, 99, 512}
	pairs := make([][2]int, 16)
	rng := rand.New(rand.NewSource(4))
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(1024), rng.Intn(1024)}
	}
	frame := wire.AppendProbe(nil, 1, 0, faults, pairs)
	payload := frame[5:]
	var sc serve.FrameScratch
	if resp, fatal := srv.HandleFrame(&sc, wire.OpProbe, payload); fatal || len(resp) == 0 {
		t.Fatalf("warmup frame failed (fatal=%v)", fatal)
	}

	n := testing.AllocsPerRun(500, func() {
		if _, fatal := srv.HandleFrame(&sc, wire.OpProbe, payload); fatal {
			t.Fatal("frame rejected")
		}
	})
	if n > 4 {
		t.Fatalf("warm frame probe allocates %v/op, acceptance bar is 4", n)
	}
	t.Logf("warm batch-16 frame probe: %v allocs/op", n)
}
